#include "serving/score_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/multi_domain_nmcdr.h"
#include "core/nmcdr_model.h"
#include "obs/metrics.h"
#include "serving/ab_test.h"
#include "serving/inference_server.h"
#include "serving/model_snapshot.h"
#include "tests/test_util.h"

namespace nmcdr {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// One trained two-domain NMCDR model plus its frozen snapshot, shared by
/// every test in this file (training once keeps the suite fast).
struct PairFixture {
  std::unique_ptr<ExperimentData> data;
  std::unique_ptr<NmcdrModel> model;
  ModelSnapshot snapshot;
};

PairFixture& Pair() {
  static PairFixture* fixture = [] {
    // NMCDR_LINT_ALLOW(naked-new): leaked on purpose — the fixture must
    // survive until the last test and dodge static-destruction order.
    auto* f = new PairFixture;
    f->data = testing_util::TinyData();
    NmcdrConfig config;
    config.hidden_dim = 8;
    f->model = std::make_unique<NmcdrModel>(f->data->View(), config, 1, 5e-3f);
    testing_util::TrainLossTrend(f->model.get(), *f->data, 20);
    EXPECT_TRUE(ModelSnapshot::FreezePair(f->model.get(),
                                          f->data->scenario(), &f->snapshot));
    return f;
  }();
  return *fixture;
}

DomainSide SideOf(int d) { return d == 0 ? DomainSide::kZ : DomainSide::kZbar; }

std::vector<int> AllItems(const ModelSnapshot& snapshot, int d) {
  std::vector<int> items(snapshot.domain(d).frozen.num_items());
  for (size_t i = 0; i < items.size(); ++i) items[i] = static_cast<int>(i);
  return items;
}

/// Trainer-path reference scores: the full autograd Score() for one user
/// against every given item.
std::vector<float> TrainerScores(NmcdrModel* model, int d, int user,
                                 const std::vector<int>& items) {
  const std::vector<int> users(items.size(), user);
  return model->Score(SideOf(d), users, items);
}

/// Reference ranking: full sort under the shared total order.
std::vector<std::pair<float, int>> BruteForceRank(
    const std::vector<float>& scores, const std::vector<int>& items) {
  std::vector<std::pair<float, int>> ranked;
  for (size_t i = 0; i < items.size(); ++i) {
    ranked.emplace_back(scores[i], items[i]);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const std::pair<float, int>& a, const std::pair<float, int>& b) {
              return RanksBefore(a.first, a.second, b.first, b.second);
            });
  return ranked;
}

TEST(ModelSnapshotTest, FreezeRejectsUnsupportedModel) {
  PairFixture& f = Pair();
  testing_util::PolicyModel policy(
      "policy", [](DomainSide, int, int) { return 0.f; });
  ModelSnapshot snapshot;
  EXPECT_FALSE(
      ModelSnapshot::FreezePair(&policy, f.data->scenario(), &snapshot));
}

TEST(ModelSnapshotTest, FrozenScoreBitEqualsTrainerScore) {
  PairFixture& f = Pair();
  for (int d = 0; d < 2; ++d) {
    const FrozenDomainState& frozen = f.snapshot.domain(d).frozen;
    const std::vector<int> users = {0, 1, 2, 3, 5, 0};
    const std::vector<int> items = {3, 2, 1, 0, 7, 3};
    EXPECT_EQ(frozen.Score(users, items),
              f.model->Score(SideOf(d), users, items))
        << "domain " << d;
  }
}

TEST(ModelSnapshotTest, SaveLoadRoundTripIsBitExact) {
  PairFixture& f = Pair();
  const std::string path = TempPath("pair.snapshot");
  ASSERT_TRUE(f.snapshot.Save(path));
  ModelSnapshot loaded;
  ASSERT_TRUE(ModelSnapshot::Load(path, &loaded));
  EXPECT_TRUE(f.snapshot.Equals(loaded));

  // The loaded snapshot serves identical recommendations.
  ScoreEngine original(&f.snapshot);
  ScoreEngine restored(&loaded);
  RecRequest request;
  request.user = 3;
  request.k = 5;
  const Recommendation a = original.TopK(request);
  const Recommendation b = restored.TopK(request);
  EXPECT_EQ(a.items, b.items);
  EXPECT_EQ(a.scores, b.scores);
}

TEST(ModelSnapshotTest, LoadRejectsBadMagic) {
  const std::string path = TempPath("bad_magic.snapshot");
  std::ofstream(path, std::ios::binary) << "NOTASNAP garbage bytes";
  ModelSnapshot snapshot;
  EXPECT_FALSE(ModelSnapshot::Load(path, &snapshot));
}

TEST(ModelSnapshotTest, LoadRejectsTruncatedFile) {
  PairFixture& f = Pair();
  const std::string path = TempPath("truncated.snapshot");
  ASSERT_TRUE(f.snapshot.Save(path));
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path, std::ios::binary)
      << contents.substr(0, contents.size() / 2);
  ModelSnapshot snapshot;
  EXPECT_FALSE(ModelSnapshot::Load(path, &snapshot));
}

TEST(ModelSnapshotTest, ResolveUserFollowsIdentityLinks) {
  PairFixture& f = Pair();
  const CdrScenario& scenario = f.data->scenario();
  int linked = -1, unlinked = -1;
  for (int v = 0; v < scenario.zbar.num_users; ++v) {
    if (scenario.zbar_to_z[v] >= 0 && linked < 0) linked = v;
    if (scenario.zbar_to_z[v] < 0 && unlinked < 0) unlinked = v;
  }
  ASSERT_GE(linked, 0);
  ASSERT_GE(unlinked, 0);
  EXPECT_EQ(f.snapshot.ResolveUser(1, linked, 0), scenario.zbar_to_z[linked]);
  EXPECT_EQ(f.snapshot.ResolveUser(1, unlinked, 0), -1);
  EXPECT_EQ(f.snapshot.ResolveUser(0, 4, 0), 4);  // same-domain identity
}

TEST(ScoreEngineTest, ExactModeBitEqualsTrainerScores) {
  PairFixture& f = Pair();
  ScoreEngine engine(&f.snapshot, {ScoreEngine::Mode::kExact, 16});
  for (int d = 0; d < 2; ++d) {
    const std::vector<int> items = AllItems(f.snapshot, d);
    for (int user : {0, 7, 19}) {
      EXPECT_EQ(engine.ScoreCandidates(d, user, items),
                TrainerScores(f.model.get(), d, user, items))
          << "domain " << d << " user " << user;
    }
  }
}

TEST(ScoreEngineTest, FastModeTracksExactScoresClosely) {
  PairFixture& f = Pair();
  ScoreEngine exact(&f.snapshot, {ScoreEngine::Mode::kExact, 256});
  ScoreEngine fast(&f.snapshot, {ScoreEngine::Mode::kFast, 256});
  for (int d = 0; d < 2; ++d) {
    const std::vector<int> items = AllItems(f.snapshot, d);
    const std::vector<float> a = exact.ScoreCandidates(d, 2, items);
    const std::vector<float> b = fast.ScoreCandidates(d, 2, items);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      // Only first-layer summation rounding may differ.
      EXPECT_NEAR(a[i], b[i], 1e-4f) << "domain " << d << " item " << i;
    }
  }
}

TEST(ScoreEngineTest, TopKMatchesBruteForceTrainerRankingOnEveryDomain) {
  // The acceptance property: heap-based retrieval over the frozen
  // snapshot reproduces the full-autograd brute-force ranking exactly.
  PairFixture& f = Pair();
  ScoreEngine engine(&f.snapshot, {ScoreEngine::Mode::kExact, 32});
  for (int d = 0; d < 2; ++d) {
    const std::vector<int> items = AllItems(f.snapshot, d);
    for (int user : {0, 3, 11, 24}) {
      const auto ranked = BruteForceRank(
          TrainerScores(f.model.get(), d, user, items), items);
      RecRequest request;
      request.target_domain = request.user_domain = d;
      request.user = user;
      request.k = 10;
      const Recommendation rec = engine.TopK(request);
      ASSERT_EQ(rec.items.size(), 10u);
      EXPECT_FALSE(rec.cold_start);
      for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(rec.items[i], ranked[i].second)
            << "domain " << d << " user " << user << " rank " << i;
        EXPECT_EQ(rec.scores[i], ranked[i].first);
      }
    }
  }
}

TEST(ScoreEngineTest, TopKRespectsExclusionSet) {
  PairFixture& f = Pair();
  ScoreEngine engine(&f.snapshot, {ScoreEngine::Mode::kExact, 32});
  RecRequest request;
  request.user = 6;
  request.k = 5;
  const Recommendation unfiltered = engine.TopK(request);
  // Exclude the current top-3: the tail of the old ranking must shift up.
  request.exclude = {unfiltered.items[0], unfiltered.items[1],
                     unfiltered.items[2]};
  const Recommendation filtered = engine.TopK(request);
  ASSERT_EQ(filtered.items.size(), 5u);
  for (int item : request.exclude) {
    EXPECT_EQ(std::count(filtered.items.begin(), filtered.items.end(), item),
              0);
  }
  EXPECT_EQ(filtered.items[0], unfiltered.items[3]);
  EXPECT_EQ(filtered.items[1], unfiltered.items[4]);
}

TEST(ScoreEngineTest, KLargerThanCatalogReturnsFullRanking) {
  PairFixture& f = Pair();
  ScoreEngine engine(&f.snapshot, {ScoreEngine::Mode::kExact, 32});
  RecRequest request;
  request.user = 1;
  request.k = 10000;
  const Recommendation rec = engine.TopK(request);
  EXPECT_EQ(static_cast<int>(rec.items.size()),
            f.snapshot.domain(0).frozen.num_items());
  for (size_t i = 1; i < rec.items.size(); ++i) {
    EXPECT_TRUE(RanksBefore(rec.scores[i - 1], rec.items[i - 1],
                            rec.scores[i], rec.items[i]));
  }
}

TEST(ScoreEngineTest, ColdStartUserServedThroughTargetDomainHead) {
  PairFixture& f = Pair();
  const CdrScenario& scenario = f.data->scenario();
  int unlinked = -1;
  for (int v = 0; v < scenario.zbar.num_users; ++v) {
    if (scenario.zbar_to_z[v] < 0) {
      unlinked = v;
      break;
    }
  }
  ASSERT_GE(unlinked, 0);
  ScoreEngine engine(&f.snapshot, {ScoreEngine::Mode::kExact, 32});
  RecRequest request;
  request.target_domain = 0;
  request.user_domain = 1;
  request.user = unlinked;
  request.k = 5;
  const Recommendation rec = engine.TopK(request);
  EXPECT_TRUE(rec.cold_start);
  ASSERT_EQ(rec.items.size(), 5u);
  for (float s : rec.scores) EXPECT_TRUE(std::isfinite(s));
  EXPECT_GE(engine.counters().cold_start_requests, 1);
}

TEST(ScoreEngineTest, LinkedCrossDomainRequestEqualsNativeRequest) {
  PairFixture& f = Pair();
  const CdrScenario& scenario = f.data->scenario();
  int linked = -1;
  for (int v = 0; v < scenario.zbar.num_users; ++v) {
    if (scenario.zbar_to_z[v] >= 0) {
      linked = v;
      break;
    }
  }
  ASSERT_GE(linked, 0);
  ScoreEngine engine(&f.snapshot, {ScoreEngine::Mode::kExact, 32});
  RecRequest cross;
  cross.target_domain = 0;
  cross.user_domain = 1;
  cross.user = linked;
  cross.k = 5;
  RecRequest native = cross;
  native.user_domain = 0;
  native.user = scenario.zbar_to_z[linked];
  const Recommendation a = engine.TopK(cross);
  const Recommendation b = engine.TopK(native);
  EXPECT_FALSE(a.cold_start);
  EXPECT_EQ(a.items, b.items);
  EXPECT_EQ(a.scores, b.scores);
}

TEST(ScoreEngineTest, CountersTrackUsage) {
  PairFixture& f = Pair();
  ScoreEngine engine(&f.snapshot, {ScoreEngine::Mode::kFast, 32});
  const std::vector<int> candidates = {0, 1, 2, 3, 4};
  engine.ScoreCandidates(0, 0, candidates);
  RecRequest request;
  request.user = 0;
  request.k = 3;
  engine.TopK(request);
  const ScoreEngine::Counters counters = engine.counters();
  EXPECT_EQ(counters.requests, 2);
  EXPECT_EQ(counters.pairs_scored,
            5 + f.snapshot.domain(0).frozen.num_items());
}

TEST(ScoreEngineTest, TopKBatchMatchesIndividualRequests) {
  PairFixture& f = Pair();
  ScoreEngine engine(&f.snapshot, {ScoreEngine::Mode::kFast, 64});
  std::vector<RecRequest> requests;
  for (int i = 0; i < 6; ++i) {
    RecRequest request;
    request.target_domain = request.user_domain = i % 2;
    request.user = i * 3;
    request.k = 4;
    requests.push_back(request);
  }
  const std::vector<Recommendation> batch = engine.TopKBatch(requests);
  ASSERT_EQ(batch.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    const Recommendation single = engine.TopK(requests[i]);
    EXPECT_EQ(batch[i].items, single.items);
    EXPECT_EQ(batch[i].scores, single.scores);
  }
}

/// A 3-domain ServingWorld frozen through the multi-domain model: the
/// engine must agree with brute force on every domain of the world.
TEST(ScoreEngineTest, MultiDomainTopKMatchesBruteForceOnEveryDomain) {
  std::vector<ServingWorld::DomainSpec> specs(3);
  specs[0].data = {"A", 0, 22, 4.0, 0.9};
  specs[1].data = {"B", 0, 18, 3.0, 0.9};
  specs[2].data = {"C", 0, 20, 3.5, 0.9};
  ServingWorld world(specs, /*num_persons=*/220,
                     /*membership_prob=*/{0.7, 0.4, 0.5},
                     /*latent_dim=*/6, /*preference_sharpness=*/4.0, 11);
  MultiDomainView view;
  view.num_persons = 220;
  std::vector<std::unique_ptr<InteractionGraph>> graphs;
  for (int d = 0; d < 3; ++d) {
    const DomainData& data = world.domain(d);
    graphs.push_back(std::make_unique<InteractionGraph>(
        data.num_users, data.num_items, data.interactions));
    view.domains.push_back(&data);
    view.train_graphs.push_back(graphs.back().get());
    std::vector<int> to_person(data.num_users);
    for (int u = 0; u < data.num_users; ++u) {
      to_person[u] = world.PersonOfUser(d, u);
    }
    view.user_to_person.push_back(std::move(to_person));
  }
  view.CheckConsistency();

  NmcdrConfig config;
  config.hidden_dim = 8;
  config.mlp_hidden = {16};
  MultiDomainNmcdrModel model(view, config, 1, 1e-3f);
  ModelSnapshot snapshot;
  ASSERT_TRUE(ModelSnapshot::FreezeMultiDomain(&model, view, &snapshot));
  ASSERT_EQ(snapshot.num_domains(), 3);

  ScoreEngine engine(&snapshot, {ScoreEngine::Mode::kExact, 16});
  for (int d = 0; d < 3; ++d) {
    const std::vector<int> items = AllItems(snapshot, d);
    for (int user : {0, 2, 5}) {
      const std::vector<int> users(items.size(), user);
      const auto ranked =
          BruteForceRank(model.Score(d, users, items), items);
      RecRequest request;
      request.target_domain = request.user_domain = d;
      request.user = user;
      request.k = 8;
      const Recommendation rec = engine.TopK(request);
      ASSERT_EQ(rec.items.size(), 8u);
      for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(rec.items[i], ranked[i].second)
            << "domain " << d << " user " << user << " rank " << i;
        EXPECT_EQ(rec.scores[i], ranked[i].first);
      }
    }
  }

  // Person links from the world survive the freeze.
  for (int u = 0; u < world.NumUsers(0); ++u) {
    const int person = world.PersonOfUser(0, u);
    EXPECT_EQ(snapshot.ResolveUser(0, u, 1), world.UserOfPerson(1, person));
  }
}

TEST(InferenceServerTest, ConcurrentResultsIdenticalToDirectEngine) {
  PairFixture& f = Pair();
  ScoreEngine engine(&f.snapshot, {ScoreEngine::Mode::kFast, 64});
  InferenceServer::Options options;
  options.num_threads = 4;
  options.max_batch = 4;
  InferenceServer server(&engine, options);

  std::vector<RecRequest> requests;
  for (int i = 0; i < 64; ++i) {
    RecRequest request;
    request.target_domain = i % 2;
    request.user_domain = (i % 3 == 0) ? 1 - request.target_domain
                                       : request.target_domain;
    request.user = i % 12;
    request.k = 3 + i % 5;
    requests.push_back(request);
  }
  std::vector<std::future<Recommendation>> futures;
  for (const RecRequest& request : requests) {
    futures.push_back(server.Submit(request));
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    const Recommendation got = futures[i].get();
    const Recommendation want = engine.TopK(requests[i]);
    EXPECT_EQ(got.items, want.items) << "request " << i;
    EXPECT_EQ(got.scores, want.scores) << "request " << i;
    EXPECT_EQ(got.cold_start, want.cold_start) << "request " << i;
  }
  server.Stop();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_submitted, 64);
  EXPECT_EQ(stats.requests_served, 64);
  EXPECT_GE(stats.batches, 16);  // max_batch caps every drain at 4
  EXPECT_LE(stats.max_batch_size, 4);
  EXPECT_GE(stats.max_latency_ms, stats.MeanLatencyMs());
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(InferenceServerTest, RecommendBlocksAndMatchesTopK) {
  PairFixture& f = Pair();
  ScoreEngine engine(&f.snapshot, {ScoreEngine::Mode::kFast, 64});
  InferenceServer server(&engine);
  const Recommendation got = server.Recommend(1, 2, 6);
  RecRequest request;
  request.target_domain = request.user_domain = 1;
  request.user = 2;
  request.k = 6;
  const Recommendation want = engine.TopK(request);
  EXPECT_EQ(got.items, want.items);
  EXPECT_EQ(got.scores, want.scores);
}

TEST(InferenceServerTest, StopDrainsQueueAndLeavesNoActiveDrainers) {
  PairFixture& f = Pair();
  ScoreEngine engine(&f.snapshot, {ScoreEngine::Mode::kFast, 64});
  InferenceServer::Options options;
  options.num_threads = 3;
  options.max_batch = 2;
  InferenceServer server(&engine, options);

  // Burst-submit, then stop immediately: Stop() must block until every
  // queued request has been served through the shared pool — no work is
  // dropped and no drainer task outlives the server.
  std::vector<std::future<Recommendation>> futures;
  for (int i = 0; i < 32; ++i) {
    RecRequest request;
    request.target_domain = request.user_domain = i % 2;
    request.user = i % 12;
    request.k = 4;
    futures.push_back(server.Submit(request));
  }
  server.Stop();
  EXPECT_EQ(server.active_drainers(), 0);

  for (std::future<Recommendation>& future : futures) {
    EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_FALSE(future.get().items.empty());
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_submitted, 32);
  EXPECT_EQ(stats.requests_served, 32);
}

TEST(InferenceServerTest, LatencyQuantilesAreMonotoneUnderLoad) {
  PairFixture& f = Pair();
  ScoreEngine engine(&f.snapshot, {ScoreEngine::Mode::kFast, 64});
  InferenceServer::Options options;
  options.num_threads = 4;
  options.max_batch = 4;
  InferenceServer server(&engine, options);

  std::vector<std::future<Recommendation>> futures;
  for (int i = 0; i < 128; ++i) {
    RecRequest request;
    request.target_domain = request.user_domain = i % 2;
    request.user = i % 12;
    request.k = 5;
    futures.push_back(server.Submit(request));
  }
  for (std::future<Recommendation>& future : futures) future.get();
  server.Stop();

  const ServerStats stats = server.stats();
  // Quantiles come from the serving.latency_ms histogram; they are
  // bucket-interpolated estimates but must be monotone and bounded by
  // the observed extremes.
  EXPECT_GT(stats.p50_latency_ms, 0.0);
  EXPECT_LE(stats.p50_latency_ms, stats.p95_latency_ms);
  EXPECT_LE(stats.p95_latency_ms, stats.p99_latency_ms);
  EXPECT_LE(stats.p99_latency_ms, stats.max_latency_ms);
  const std::string text = stats.ToString();
  EXPECT_NE(text.find("p50"), std::string::npos) << text;
  EXPECT_NE(text.find("p99"), std::string::npos) << text;
}

TEST(InferenceServerTest, CountersAreMonotoneAcrossConcurrentScrapes) {
  PairFixture& f = Pair();
  ScoreEngine engine(&f.snapshot, {ScoreEngine::Mode::kFast, 64});
  InferenceServer::Options options;
  options.num_threads = 3;
  options.max_batch = 4;
  InferenceServer server(&engine, options);

  // Scrape stats() while requests are in flight: every counter must be
  // non-decreasing from one scrape to the next, and served never
  // overtakes submitted.
  int64_t last_submitted = 0;
  int64_t last_served = 0;
  int64_t last_batches = 0;
  std::vector<std::future<Recommendation>> futures;
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 16; ++i) {
      RecRequest request;
      request.target_domain = request.user_domain = i % 2;
      request.user = (round * 16 + i) % 12;
      request.k = 4;
      futures.push_back(server.Submit(request));
    }
    const ServerStats stats = server.stats();
    EXPECT_GE(stats.requests_submitted, last_submitted);
    EXPECT_GE(stats.requests_served, last_served);
    EXPECT_GE(stats.batches, last_batches);
    EXPECT_LE(stats.requests_served, stats.requests_submitted);
    last_submitted = stats.requests_submitted;
    last_served = stats.requests_served;
    last_batches = stats.batches;
  }
  for (std::future<Recommendation>& future : futures) future.get();
  server.Stop();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_submitted, 128);
  EXPECT_EQ(stats.requests_served, 128);
  EXPECT_GE(stats.requests_submitted, last_submitted);
}

TEST(InferenceServerTest, SharedRegistryReceivesServingMetrics) {
  PairFixture& f = Pair();
  ScoreEngine engine(&f.snapshot, {ScoreEngine::Mode::kFast, 64});
  obs::MetricsRegistry registry;
  InferenceServer::Options options;
  options.num_threads = 2;
  options.metrics = &registry;
  InferenceServer server(&engine, options);
  server.Recommend(0, 0, 4);
  server.Recommend(1, 1, 4);
  server.Stop();
  EXPECT_EQ(registry.GetCounter("serving.requests_submitted").Value(), 2);
  EXPECT_EQ(registry.GetCounter("serving.requests_served").Value(), 2);
  EXPECT_EQ(
      registry
          .GetHistogram("serving.latency_ms",
                        obs::MetricsRegistry::DefaultLatencyBucketsMs())
          .Count(),
      2);
}

TEST(InferenceServerTest, StopIsIdempotentAndFailsLateSubmits) {
  PairFixture& f = Pair();
  ScoreEngine engine(&f.snapshot, {ScoreEngine::Mode::kFast, 64});
  InferenceServer server(&engine);
  server.Recommend(0, 0, 2);
  server.Stop();
  server.Stop();  // second stop is a no-op
  RecRequest request;
  request.user = 1;
  request.k = 2;
  std::future<Recommendation> future = server.Submit(request);
  EXPECT_THROW(future.get(), std::runtime_error);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_served, 1);
  EXPECT_EQ(stats.requests_submitted, 1);  // the late submit never queued
}

}  // namespace
}  // namespace nmcdr
