#include "core/multi_domain_nmcdr.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "serving/ab_test.h"

namespace nmcdr {
namespace {

/// Builds a 3-domain world and the MultiDomainView over it.
struct TriDomainFixture {
  std::unique_ptr<ServingWorld> world;
  std::vector<std::unique_ptr<InteractionGraph>> graphs;
  MultiDomainView view;

  explicit TriDomainFixture(uint64_t seed = 11, int persons = 220) {
    std::vector<ServingWorld::DomainSpec> specs(3);
    specs[0].data = {"A", 0, 22, 4.0, 0.9};
    specs[1].data = {"B", 0, 18, 3.0, 0.9};
    specs[2].data = {"C", 0, 20, 3.5, 0.9};
    world = std::make_unique<ServingWorld>(
        specs, persons, std::vector<double>{0.7, 0.4, 0.5},
        /*latent_dim=*/6, /*preference_sharpness=*/4.0, seed);
    view.num_persons = persons;
    for (int d = 0; d < 3; ++d) {
      const DomainData& data = world->domain(d);
      graphs.push_back(std::make_unique<InteractionGraph>(
          data.num_users, data.num_items, data.interactions));
      view.domains.push_back(&data);
      view.train_graphs.push_back(graphs.back().get());
      std::vector<int> to_person(data.num_users);
      for (int u = 0; u < data.num_users; ++u) {
        to_person[u] = world->PersonOfUser(d, u);
      }
      view.user_to_person.push_back(std::move(to_person));
    }
    view.CheckConsistency();
  }

  LabeledBatch DrawBatch(int d, Rng* rng, int size = 32) const {
    const DomainData& data = world->domain(d);
    NegativeSampler sampler(view.train_graphs[d]);
    LabeledBatch batch;
    int added = 0, attempts = 0;
    while (added < size / 2 && attempts++ < size * 20) {
      const Interaction pos =
          data.interactions[rng->NextUint64(data.interactions.size())];
      // Heavy users of tiny catalogs may have interacted with every item;
      // they admit no negative, so skip them.
      if (view.train_graphs[d]->UserDegree(pos.user) >= data.num_items) {
        continue;
      }
      batch.users.push_back(pos.user);
      batch.items.push_back(pos.item);
      batch.labels.push_back(1.f);
      batch.users.push_back(pos.user);
      batch.items.push_back(sampler.SampleNegative(pos.user, rng));
      batch.labels.push_back(0.f);
      ++added;
    }
    return batch;
  }
};

NmcdrConfig TinyConfig() {
  NmcdrConfig config;
  config.hidden_dim = 8;
  config.mlp_hidden = {16};
  return config;
}

TEST(MultiDomainViewTest, ConsistencyChecks) {
  TriDomainFixture fixture;
  MultiDomainView bad = fixture.view;
  bad.user_to_person[0][0] = bad.num_persons + 5;  // out of range
  EXPECT_DEATH(bad.CheckConsistency(), "CHECK");
}

TEST(MultiDomainNmcdrTest, TrainsAcrossThreeDomains) {
  TriDomainFixture fixture;
  MultiDomainNmcdrModel model(fixture.view, TinyConfig(), 1, 5e-3f);
  EXPECT_EQ(model.num_domains(), 3);
  EXPECT_GT(model.ParameterCount(), 0);

  Rng rng(3);
  float first = 0.f, last = 0.f;
  const int steps = 60;
  for (int s = 0; s < steps; ++s) {
    std::vector<LabeledBatch> batches;
    for (int d = 0; d < 3; ++d) {
      batches.push_back(fixture.DrawBatch(d, &rng));
    }
    const float loss = model.TrainStep(batches);
    EXPECT_TRUE(std::isfinite(loss));
    if (s < 5) first += loss / 5.f;
    if (s >= steps - 5) last += loss / 5.f;
  }
  EXPECT_LT(last, first);
}

TEST(MultiDomainNmcdrTest, ScoreShapesAndDeterminism) {
  TriDomainFixture fixture;
  MultiDomainNmcdrModel model(fixture.view, TinyConfig(), 1, 1e-3f);
  for (int d = 0; d < 3; ++d) {
    const std::vector<float> a = model.Score(d, {0, 1}, {0, 1});
    const std::vector<float> b = model.Score(d, {0, 1}, {0, 1});
    ASSERT_EQ(a.size(), 2u);
    EXPECT_EQ(a, b);
    for (float s : a) EXPECT_TRUE(std::isfinite(s));
  }
}

TEST(MultiDomainNmcdrTest, EmptyBatchesSafe) {
  TriDomainFixture fixture;
  MultiDomainNmcdrModel model(fixture.view, TinyConfig(), 1, 1e-3f);
  EXPECT_EQ(model.TrainStep({LabeledBatch{}, LabeledBatch{}, LabeledBatch{}}),
            0.f);
  // Single-domain batch also fine.
  Rng rng(5);
  std::vector<LabeledBatch> batches(3);
  batches[1] = fixture.DrawBatch(1, &rng);
  EXPECT_TRUE(std::isfinite(model.TrainStep(batches)));
}

TEST(MultiDomainNmcdrTest, CrossDomainSignalFlowsToLinkedUsers) {
  // Training ONLY on domains 1 and 2 must still move domain-0 scores of
  // persons present in those domains (through the inter-matching bridge).
  TriDomainFixture fixture;
  MultiDomainNmcdrModel model(fixture.view, TinyConfig(), 1, 5e-3f);
  // A domain-0 user also present in domain 1:
  int linked_user = -1;
  for (int u = 0; u < fixture.world->domain(0).num_users && linked_user < 0;
       ++u) {
    const int person = fixture.view.user_to_person[0][u];
    if (fixture.world->UserOfPerson(1, person) >= 0) linked_user = u;
  }
  ASSERT_GE(linked_user, 0);
  const std::vector<float> before = model.Score(0, {linked_user}, {0});
  Rng rng(7);
  for (int s = 0; s < 10; ++s) {
    std::vector<LabeledBatch> batches(3);
    batches[1] = fixture.DrawBatch(1, &rng);
    batches[2] = fixture.DrawBatch(2, &rng);
    model.TrainStep(batches);
  }
  const std::vector<float> after = model.Score(0, {linked_user}, {0});
  EXPECT_NE(before[0], after[0]);
}

TEST(MultiDomainNmcdrTest, TwoDomainViewMatchesPairwiseSemantics) {
  // K=2 is the paper's setting; the model must run there too.
  TriDomainFixture fixture;
  MultiDomainView pair;
  pair.num_persons = fixture.view.num_persons;
  for (int d = 0; d < 2; ++d) {
    pair.domains.push_back(fixture.view.domains[d]);
    pair.train_graphs.push_back(fixture.view.train_graphs[d]);
    pair.user_to_person.push_back(fixture.view.user_to_person[d]);
  }
  MultiDomainNmcdrModel model(pair, TinyConfig(), 1, 5e-3f);
  Rng rng(9);
  std::vector<LabeledBatch> batches;
  for (int d = 0; d < 2; ++d) batches.push_back(fixture.DrawBatch(d, &rng));
  EXPECT_TRUE(std::isfinite(model.TrainStep(batches)));
}

TEST(MultiDomainNmcdrTest, AblationFlagsApply) {
  TriDomainFixture fixture;
  for (int variant = 0; variant < 3; ++variant) {
    NmcdrConfig config = TinyConfig();
    if (variant == 0) config.use_intra = false;
    if (variant == 1) config.use_inter = false;
    if (variant == 2) config.use_complement = false;
    MultiDomainNmcdrModel model(fixture.view, config, 1, 5e-3f);
    Rng rng(11);
    std::vector<LabeledBatch> batches;
    for (int d = 0; d < 3; ++d) batches.push_back(fixture.DrawBatch(d, &rng));
    EXPECT_TRUE(std::isfinite(model.TrainStep(batches)));
  }
}

}  // namespace
}  // namespace nmcdr
