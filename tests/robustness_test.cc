// Randomized robustness sweep: many small random scenario shapes pushed
// through the full pipeline (generate -> split -> graphs -> NMCDR train
// step -> score -> evaluate). Guards the stack against degenerate shapes:
// single-item domains, zero overlap, extreme activity skew.

#include <cmath>

#include <gtest/gtest.h>

#include "core/nmcdr_model.h"
#include "tests/test_util.h"

namespace nmcdr {
namespace {

class RandomScenarioSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomScenarioSweep, FullPipelineStaysFinite) {
  Rng meta(GetParam());
  SyntheticScenarioSpec spec;
  spec.name = "fuzz";
  spec.z.name = "A";
  spec.z.num_users = static_cast<int>(meta.UniformInt(5, 90));
  spec.z.num_items = static_cast<int>(meta.UniformInt(2, 60));
  spec.z.mean_extra_interactions = meta.UniformDouble() * 8.0;
  spec.z.item_popularity_exponent = 0.5 + meta.UniformDouble();
  spec.zbar.name = "B";
  spec.zbar.num_users = static_cast<int>(meta.UniformInt(5, 90));
  spec.zbar.num_items = static_cast<int>(meta.UniformInt(2, 60));
  spec.zbar.mean_extra_interactions = meta.UniformDouble() * 8.0;
  spec.zbar.item_popularity_exponent = 0.5 + meta.UniformDouble();
  spec.num_overlapping = static_cast<int>(meta.UniformInt(
      0, std::min(spec.z.num_users, spec.zbar.num_users)));
  spec.item_clusters = static_cast<int>(meta.UniformInt(0, 6));
  spec.seed = GetParam() * 31 + 1;

  CdrScenario scenario = GenerateScenario(spec);
  scenario.CheckConsistency();
  Rng rng(GetParam());
  scenario = ApplyOverlapRatio(scenario, meta.UniformDouble(), &rng);
  ExperimentData data(std::move(scenario), GetParam() + 7);

  NmcdrConfig config;
  config.hidden_dim = 8;
  config.mlp_hidden = {8};
  NmcdrModel model(data.View(), config, GetParam(), 5e-3f);

  TrainConfig train;
  train.epochs = 1;
  train.batch_size = 32;
  Trainer trainer(data.View(), train);
  const TrainSummary summary = trainer.Train(&model);
  EXPECT_TRUE(std::isfinite(summary.final_loss));

  // Scoring every (first user, first item) style probe stays finite.
  const std::vector<float> scores = model.Score(
      DomainSide::kZ, {0, data.scenario().z.num_users - 1},
      {0, data.scenario().z.num_items - 1});
  for (float s : scores) EXPECT_TRUE(std::isfinite(s));

  // Evaluation never crashes; users may be zero in degenerate shapes.
  EvalConfig eval;
  eval.num_negatives = 10;
  const ScenarioMetrics metrics = EvaluateScenario(
      &model, data.full_graph_z(), data.full_graph_zbar(), data.split_z(),
      data.split_zbar(), EvalPhase::kTest, eval);
  EXPECT_GE(metrics.z.hr, 0.0);
  EXPECT_LE(metrics.z.hr, 1.0);
  EXPECT_GE(metrics.zbar.ndcg, 0.0);
  EXPECT_LE(metrics.zbar.ndcg, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomScenarioSweep,
                         ::testing::Range<uint64_t>(1, 13));

TEST(DegenerateShapesTest, SingleItemDomains) {
  SyntheticScenarioSpec spec;
  spec.z = {"A", 10, 1, 0.0, 1.0};
  spec.zbar = {"B", 10, 1, 0.0, 1.0};
  spec.num_overlapping = 5;
  spec.min_interactions = 1;
  CdrScenario scenario = GenerateScenario(spec);
  EXPECT_EQ(scenario.z.num_items, 1);
  // With one item, every user interacts with it exactly once: no user has
  // 3+ interactions, so leave-one-out yields no test users — and that must
  // be handled quietly.
  ExperimentData data(std::move(scenario), 3);
  EXPECT_TRUE(data.split_z().TestUsers().empty());
}

TEST(DegenerateShapesTest, ZeroOverlapEndToEnd) {
  SyntheticScenarioSpec spec = testing_util::TinySpec();
  spec.num_overlapping = 0;
  ExperimentData data(GenerateScenario(spec), 3);
  NmcdrConfig config;
  config.hidden_dim = 8;
  NmcdrModel model(data.View(), config, 1, 5e-3f);
  const auto [first, last] = testing_util::TrainLossTrend(&model, data, 15);
  EXPECT_TRUE(std::isfinite(last));
  (void)first;
}

TEST(DegenerateShapesTest, EveryUserIsTail) {
  // K_head above the max degree: the head pool is empty; the intra
  // component must still run (zero head message).
  auto data = testing_util::TinyData();
  NmcdrConfig config;
  config.hidden_dim = 8;
  config.k_head = 1000000;
  NmcdrModel model(data->View(), config, 1, 5e-3f);
  const auto [first, last] = testing_util::TrainLossTrend(&model, *data, 10);
  EXPECT_TRUE(std::isfinite(last));
  (void)first;
}

TEST(DegenerateShapesTest, EveryUserIsHead) {
  auto data = testing_util::TinyData();
  NmcdrConfig config;
  config.hidden_dim = 8;
  config.k_head = 0;
  NmcdrModel model(data->View(), config, 1, 5e-3f);
  const auto [first, last] = testing_util::TrainLossTrend(&model, *data, 10);
  EXPECT_TRUE(std::isfinite(last));
  (void)first;
}

}  // namespace
}  // namespace nmcdr
