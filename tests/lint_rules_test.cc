// Unit tests for the nmcdr_lint analyzer (tools/lint): every rule must
// fire on a synthetic violation and stay quiet on conforming code. The
// integration-level `lint_test` CTest (tools/CMakeLists.txt) additionally
// runs the driver over the real tree.
#include "tools/lint/lint.h"

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace nmcdr {
namespace lint {
namespace {

std::vector<Diagnostic> RunLint(const std::string& path,
                            const std::string& content) {
  return LintFileSet({Preprocess(path, content)});
}

int CountRule(const std::vector<Diagnostic>& diags, const std::string& rule) {
  int n = 0;
  for (const Diagnostic& d : diags) {
    if (d.rule == rule) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Preprocess (lexer-lite)
// ---------------------------------------------------------------------------

TEST(PreprocessTest, BlanksLineCommentsIntoCommentChannel) {
  SourceFile f = Preprocess("src/a.cc", "int x;  // tail comment\n");
  ASSERT_GE(f.code.size(), 1u);
  EXPECT_EQ(f.code[0].find("tail"), std::string::npos);
  EXPECT_NE(f.comments[0].find("tail comment"), std::string::npos);
}

TEST(PreprocessTest, BlanksBlockCommentsAcrossLines) {
  SourceFile f = Preprocess("src/a.cc", "int a; /* first\nsecond */ int b;\n");
  EXPECT_EQ(f.code[0].find("first"), std::string::npos);
  EXPECT_EQ(f.code[1].find("second"), std::string::npos);
  EXPECT_NE(f.code[1].find("int b;"), std::string::npos);
  EXPECT_NE(f.comments[0].find("first"), std::string::npos);
  EXPECT_NE(f.comments[1].find("second"), std::string::npos);
}

TEST(PreprocessTest, BlanksStringAndCharLiterals) {
  SourceFile f = Preprocess(
      "src/a.cc", "const char* s = \"delete assert(x)\"; char c = 'x';\n");
  EXPECT_EQ(f.code[0].find("assert"), std::string::npos);
  EXPECT_EQ(f.code[0].find("delete"), std::string::npos);
}

TEST(PreprocessTest, BlanksRawStringLiterals) {
  SourceFile f = Preprocess(
      "src/a.cc", "const char* s = R\"(assert(1) rand())\"; int y;\n");
  EXPECT_EQ(f.code[0].find("assert"), std::string::npos);
  EXPECT_NE(f.code[0].find("int y;"), std::string::npos);
}

TEST(PreprocessTest, PreservesLineCount) {
  SourceFile f = Preprocess("src/a.cc", "a\nb\nc\n");
  EXPECT_EQ(f.code.size(), 3u);
  EXPECT_EQ(f.comments.size(), 3u);
}

// ---------------------------------------------------------------------------
// include-guard
// ---------------------------------------------------------------------------

TEST(ExpectedGuardTest, StripsSrcPrefixAndMangles) {
  EXPECT_EQ(ExpectedGuard("src/util/check.h"), "NMCDR_UTIL_CHECK_H_");
  EXPECT_EQ(ExpectedGuard("tests/test_util.h"), "NMCDR_TESTS_TEST_UTIL_H_");
  EXPECT_EQ(ExpectedGuard("bench/bench_util.h"), "NMCDR_BENCH_BENCH_UTIL_H_");
  EXPECT_EQ(ExpectedGuard("tools/lint/lint.h"), "NMCDR_TOOLS_LINT_LINT_H_");
}

TEST(IncludeGuardTest, FiresOnMismatchedGuard) {
  const auto diags = RunLint("src/util/foo.h",
                         "#ifndef WRONG_GUARD_H_\n#define WRONG_GUARD_H_\n"
                         "#endif\n");
  EXPECT_EQ(CountRule(diags, "include-guard"), 1);
}

TEST(IncludeGuardTest, FiresOnMissingGuard) {
  const auto diags = RunLint("src/util/foo.h", "int x;\n");
  EXPECT_EQ(CountRule(diags, "include-guard"), 1);
}

TEST(IncludeGuardTest, FiresOnMissingDefine) {
  const auto diags = RunLint("src/util/foo.h",
                         "#ifndef NMCDR_UTIL_FOO_H_\nint x;\n#endif\n");
  EXPECT_EQ(CountRule(diags, "include-guard"), 1);
}

TEST(IncludeGuardTest, QuietOnConformingHeader) {
  const auto diags = RunLint("src/util/foo.h",
                         "#ifndef NMCDR_UTIL_FOO_H_\n"
                         "#define NMCDR_UTIL_FOO_H_\n"
                         "int x;\n"
                         "#endif  // NMCDR_UTIL_FOO_H_\n");
  EXPECT_EQ(CountRule(diags, "include-guard"), 0);
}

TEST(IncludeGuardTest, IgnoresNonHeaders) {
  const auto diags = RunLint("src/util/foo.cc", "int x;\n");
  EXPECT_EQ(CountRule(diags, "include-guard"), 0);
}

// ---------------------------------------------------------------------------
// using-namespace-header
// ---------------------------------------------------------------------------

TEST(UsingNamespaceTest, FiresInHeader) {
  const auto diags = RunLint("src/util/foo.h",
                         "#ifndef NMCDR_UTIL_FOO_H_\n"
                         "#define NMCDR_UTIL_FOO_H_\n"
                         "using namespace std;\n"
                         "#endif\n");
  EXPECT_EQ(CountRule(diags, "using-namespace-header"), 1);
}

TEST(UsingNamespaceTest, QuietInSourceFileAndOnAliases) {
  EXPECT_EQ(CountRule(RunLint("src/util/foo.cc", "using namespace std;\n"),
                      "using-namespace-header"),
            0);
  const auto diags = RunLint("src/util/foo.h",
                         "#ifndef NMCDR_UTIL_FOO_H_\n"
                         "#define NMCDR_UTIL_FOO_H_\n"
                         "namespace fs = std::filesystem;\n"
                         "using std::vector;\n"
                         "#endif\n");
  EXPECT_EQ(CountRule(diags, "using-namespace-header"), 0);
}

// ---------------------------------------------------------------------------
// banned-rand / banned-assert
// ---------------------------------------------------------------------------

TEST(BannedRandTest, FiresOnRandAndSrand) {
  EXPECT_EQ(CountRule(RunLint("src/a.cc", "int x = rand();\n"), "banned-rand"), 1);
  EXPECT_EQ(CountRule(RunLint("src/a.cc", "int x = std::rand();\n"),
                      "banned-rand"),
            1);
  EXPECT_EQ(CountRule(RunLint("src/a.cc", "srand(42);\n"), "banned-rand"), 1);
}

TEST(BannedRandTest, QuietOnSubstringsAndComments) {
  EXPECT_EQ(CountRule(RunLint("src/a.cc", "int y = operand(x);\n"), "banned-rand"),
            0);
  EXPECT_EQ(CountRule(RunLint("src/a.cc", "// rand() is banned here\n"),
                      "banned-rand"),
            0);
  EXPECT_EQ(CountRule(RunLint("src/a.cc", "Rng rng(91);\n"), "banned-rand"), 0);
}

TEST(BannedAssertTest, FiresOnAssertOnly) {
  EXPECT_EQ(CountRule(RunLint("src/a.cc", "assert(x > 0);\n"), "banned-assert"),
            1);
  EXPECT_EQ(CountRule(RunLint("src/a.cc", "static_assert(sizeof(int) == 4);\n"),
                      "banned-assert"),
            0);
  EXPECT_EQ(CountRule(RunLint("tests/a.cc", "ASSERT_EQ(a, b);\n"),
                      "banned-assert"),
            0);
}

// ---------------------------------------------------------------------------
// banned-thread
// ---------------------------------------------------------------------------

TEST(BannedThreadTest, FiresOnThreadConstructionAndAsync) {
  EXPECT_EQ(CountRule(RunLint("src/a.cc", "std::thread t([] {});\n"),
                      "banned-thread"),
            1);
  EXPECT_EQ(CountRule(RunLint("src/a.h",
                          "#ifndef NMCDR_A_H_\n#define NMCDR_A_H_\n"
                          "std::vector<std::thread> workers_;\n#endif\n"),
                      "banned-thread"),
            1);
  EXPECT_EQ(CountRule(RunLint("src/a.cc", "std::jthread t([] {});\n"),
                      "banned-thread"),
            1);
  EXPECT_EQ(CountRule(RunLint("src/a.cc",
                          "auto f = std::async(std::launch::async, fn);\n"),
                      "banned-thread"),
            1);
  EXPECT_EQ(CountRule(RunLint("tests/a.cc", "std::thread t(fn);\n"),
                      "banned-thread"),
            1);
}

TEST(BannedThreadTest, AllowsHardwareConcurrencyAndThisThread) {
  EXPECT_EQ(CountRule(RunLint("src/a.cc",
                          "unsigned n = std::thread::hardware_concurrency();\n"),
                      "banned-thread"),
            0);
  EXPECT_EQ(CountRule(RunLint("src/a.cc",
                          "std::this_thread::yield();\n"),
                      "banned-thread"),
            0);
  EXPECT_EQ(CountRule(RunLint("src/a.cc", "#include <thread>\n"),
                      "banned-thread"),
            0);
}

TEST(BannedThreadTest, ExemptsThreadPoolAndHonorsAllow) {
  EXPECT_EQ(CountRule(RunLint("src/util/thread_pool.cc",
                          "std::thread worker(fn);\n"),
                      "banned-thread"),
            0);
  EXPECT_EQ(CountRule(RunLint("src/util/thread_pool.h",
                          "#ifndef NMCDR_UTIL_THREAD_POOL_H_\n"
                          "#define NMCDR_UTIL_THREAD_POOL_H_\n"
                          "std::vector<std::thread> workers_;\n#endif\n"),
                      "banned-thread"),
            0);
  EXPECT_EQ(CountRule(RunLint("src/a.cc",
                          "std::thread t(fn);  "
                          "// NMCDR_LINT_ALLOW(banned-thread): fixture\n"),
                      "banned-thread"),
            0);
}

// ---------------------------------------------------------------------------
// banned-chrono
// ---------------------------------------------------------------------------

TEST(BannedChronoTest, FiresOnClockNowOutsideObsAndUtil) {
  EXPECT_EQ(CountRule(RunLint("src/serving/a.cc",
                          "auto t = std::chrono::steady_clock::now();\n"),
                      "banned-chrono"),
            1);
  EXPECT_EQ(CountRule(RunLint("src/train/a.cc",
                          "auto t = std::chrono::system_clock::now();\n"),
                      "banned-chrono"),
            1);
  EXPECT_EQ(CountRule(RunLint("tools/a.cpp",
                          "auto t = high_resolution_clock::now();\n"),
                      "banned-chrono"),
            1);
  EXPECT_EQ(CountRule(RunLint("tests/a.cc",
                          "auto t = steady_clock::now();\n"),
                      "banned-chrono"),
            1);
  // Whitespace around the scope operator does not hide the call.
  EXPECT_EQ(CountRule(RunLint("src/core/a.cc",
                          "auto t = std::chrono::steady_clock :: now();\n"),
                      "banned-chrono"),
            1);
}

TEST(BannedChronoTest, AllowsClockTypeWithoutSamplingIt) {
  EXPECT_EQ(CountRule(RunLint("src/serving/a.h",
                          "#ifndef NMCDR_SERVING_A_H_\n"
                          "#define NMCDR_SERVING_A_H_\n"
                          "using Clock = std::chrono::steady_clock;\n"
                          "#endif\n"),
                      "banned-chrono"),
            0);
  EXPECT_EQ(CountRule(RunLint("src/a.cc",
                          "std::chrono::steady_clock::time_point start_;\n"),
                      "banned-chrono"),
            0);
  EXPECT_EQ(CountRule(RunLint("src/a.cc",
                          "std::this_thread::sleep_for("
                          "std::chrono::milliseconds(5));\n"),
                      "banned-chrono"),
            0);
}

TEST(BannedChronoTest, ExemptsObsAndUtilAndHonorsAllow) {
  EXPECT_EQ(CountRule(RunLint("src/obs/obs.cc",
                          "auto t = std::chrono::steady_clock::now();\n"),
                      "banned-chrono"),
            0);
  EXPECT_EQ(CountRule(RunLint("src/util/stopwatch.h",
                          "#ifndef NMCDR_UTIL_STOPWATCH_H_\n"
                          "#define NMCDR_UTIL_STOPWATCH_H_\n"
                          "auto t = Clock::now();\n"
                          "using Clock = std::chrono::steady_clock;\n"
                          "#endif\n"),
                      "banned-chrono"),
            0);
  EXPECT_EQ(CountRule(RunLint("src/serving/a.cc",
                          "auto t = std::chrono::steady_clock::now();  "
                          "// NMCDR_LINT_ALLOW(banned-chrono): fixture\n"),
                      "banned-chrono"),
            0);
}

// ---------------------------------------------------------------------------
// iostream-header
// ---------------------------------------------------------------------------

TEST(IostreamHeaderTest, FiresOnlyInSrcHeaders) {
  const std::string body =
      "#define GUARD\n#include <iostream>\n";  // guard noise irrelevant
  EXPECT_EQ(CountRule(RunLint("src/tensor/hot.h",
                          "#ifndef NMCDR_TENSOR_HOT_H_\n"
                          "#define NMCDR_TENSOR_HOT_H_\n"
                          "#include <iostream>\n"
                          "#endif\n"),
                      "iostream-header"),
            1);
  EXPECT_EQ(CountRule(RunLint("src/tensor/hot.cc", body), "iostream-header"), 0);
  EXPECT_EQ(CountRule(RunLint("tools/lint/a.h",
                          "#ifndef NMCDR_TOOLS_LINT_A_H_\n"
                          "#define NMCDR_TOOLS_LINT_A_H_\n"
                          "#include <iostream>\n"
                          "#endif\n"),
                      "iostream-header"),
            0);
}

// ---------------------------------------------------------------------------
// naked-new
// ---------------------------------------------------------------------------

TEST(NakedNewTest, FiresOnNewAndDelete) {
  EXPECT_EQ(CountRule(RunLint("src/a.cc", "int* p = new int;\n"), "naked-new"), 1);
  EXPECT_EQ(CountRule(RunLint("src/a.cc", "delete p;\n"), "naked-new"), 1);
  EXPECT_EQ(CountRule(RunLint("src/a.cc", "delete[] p;\n"), "naked-new"), 1);
}

TEST(NakedNewTest, AllowsDeletedSpecialMembers) {
  EXPECT_EQ(CountRule(RunLint("src/a.h",
                          "#ifndef NMCDR_A_H_\n#define NMCDR_A_H_\n"
                          "struct T { T(const T&) = delete; };\n"
                          "#endif\n"),
                      "naked-new"),
            0);
}

TEST(NakedNewTest, QuietOnIdentifiersContainingNew) {
  EXPECT_EQ(CountRule(RunLint("src/a.cc", "int renew = news + 1;\n"), "naked-new"),
            0);
}

TEST(NakedNewTest, SuppressedBySameLineAllowComment) {
  EXPECT_EQ(
      CountRule(RunLint("src/a.cc",
                    "T* t = new T;  // NMCDR_LINT_ALLOW(naked-new): leaky\n"),
                "naked-new"),
      0);
}

TEST(NakedNewTest, SuppressedByCommentBlockAbove) {
  EXPECT_EQ(CountRule(RunLint("src/a.cc",
                          "// NMCDR_LINT_ALLOW(naked-new): intentional leaky\n"
                          "// singleton, never destroyed.\n"
                          "T* t = new T;\n"),
                      "naked-new"),
            0);
}

TEST(NakedNewTest, SuppressionIsRuleSpecific) {
  EXPECT_EQ(
      CountRule(RunLint("src/a.cc",
                    "T* t = new T;  // NMCDR_LINT_ALLOW(banned-rand): wrong\n"),
                "naked-new"),
      1);
}

// ---------------------------------------------------------------------------
// guarded-by
// ---------------------------------------------------------------------------

std::string ServingHeader(const std::string& members) {
  return "#ifndef NMCDR_SERVING_SYNTH_H_\n"
         "#define NMCDR_SERVING_SYNTH_H_\n"
         "#include <mutex>\n"
         "namespace nmcdr {\n"
         "class Synth {\n"
         " public:\n"
         "  void Poke();\n"
         " private:\n" +
         members +
         "};\n"
         "}  // namespace nmcdr\n"
         "#endif\n";
}

TEST(GuardedByTest, FiresOnAnnotationNamingUnknownMutex) {
  const auto diags =
      RunLint("src/serving/synth.h",
          ServingHeader("  std::mutex mu_;\n"
                        "  int a_ = 0;  // GUARDED_BY(mu_)\n"
                        "  int b_ = 0;  // GUARDED_BY(other_mu_)\n"));
  EXPECT_EQ(CountRule(diags, "guarded-by"), 2);  // unknown + mu_ never locked
}

TEST(GuardedByTest, FiresOnMutexWithoutAnnotations) {
  const auto diags = RunLint("src/serving/synth.h",
                         ServingHeader("  std::mutex mu_;\n  int a_ = 0;\n"));
  EXPECT_EQ(CountRule(diags, "guarded-by"), 1);
}

TEST(GuardedByTest, FiresOnAnnotatedMutexNeverLocked) {
  const auto diags =
      RunLint("src/serving/synth.h",
          ServingHeader("  std::mutex mu_;\n"
                        "  int a_ = 0;  // GUARDED_BY(mu_)\n"));
  EXPECT_EQ(CountRule(diags, "guarded-by"), 1);
}

TEST(GuardedByTest, QuietWhenLockedInSiblingImpl) {
  SourceFile header = Preprocess(
      "src/serving/synth.h",
      ServingHeader("  std::mutex mu_;\n"
                    "  int a_ = 0;  // GUARDED_BY(mu_)\n"));
  SourceFile impl = Preprocess(
      "src/serving/synth.cc",
      "#include <mutex>\n"
      "void Synth::Poke() { std::lock_guard<std::mutex> lock(mu_); }\n");
  const auto diags = LintFileSet({header, impl});
  EXPECT_EQ(CountRule(diags, "guarded-by"), 0);
}

TEST(GuardedByTest, QuietWhenLockedInHeaderItself) {
  const auto diags =
      RunLint("src/serving/synth.h",
          ServingHeader("  void Touch() { std::lock_guard<std::mutex> l(mu_); "
                        "++a_; }\n"
                        "  std::mutex mu_;\n"
                        "  int a_ = 0;  // GUARDED_BY(mu_)\n"));
  EXPECT_EQ(CountRule(diags, "guarded-by"), 0);
}

TEST(GuardedByTest, IgnoresNonServingPaths) {
  const auto diags =
      RunLint("src/core/synth.h",
          "#ifndef NMCDR_CORE_SYNTH_H_\n#define NMCDR_CORE_SYNTH_H_\n"
          "class C { std::mutex mu_; };\n#endif\n");
  EXPECT_EQ(CountRule(diags, "guarded-by"), 0);
}

// The real serving headers must satisfy the rule as written (regression
// canary: if someone adds an unannotated mutex the tree-level lint_test
// fails; this test documents the rule firing shape instead).
TEST(GuardedByTest, EnumClassDoesNotConfuseClassParser) {
  const auto diags =
      RunLint("src/serving/synth.h",
          "#ifndef NMCDR_SERVING_SYNTH_H_\n#define NMCDR_SERVING_SYNTH_H_\n"
          "enum class Mode { kA, kB };\n#endif\n");
  EXPECT_EQ(CountRule(diags, "guarded-by"), 0);
}

// ---------------------------------------------------------------------------
// rcu-only-publish
// ---------------------------------------------------------------------------

TEST(RcuOnlyPublishTest, FiresOnAssignResetAndSwapInServing) {
  EXPECT_EQ(CountRule(RunLint("src/serving/engine.cc",
                          "void F() { snapshot_ = next; }\n"),
                      "rcu-only-publish"),
            1);
  EXPECT_EQ(CountRule(RunLint("src/serving/engine.cc",
                          "void F() { current_snapshot_.reset(); }\n"),
                      "rcu-only-publish"),
            1);
  EXPECT_EQ(CountRule(RunLint("src/serving/engine.cc",
                          "void F() { snapshot_.swap(other); }\n"),
                      "rcu-only-publish"),
            1);
}

TEST(RcuOnlyPublishTest, AllowsReadsInitListsAndComparisons) {
  EXPECT_EQ(CountRule(RunLint("src/serving/engine.cc",
                          "Engine::Engine(const S* s) : snapshot_(s) {}\n"
                          "int Engine::N() { return snapshot_->n(); }\n"
                          "bool Engine::Same(const S* s) {\n"
                          "  return snapshot_ == s && snapshot_ != nullptr;\n"
                          "}\n"),
                      "rcu-only-publish"),
            0);
}

TEST(RcuOnlyPublishTest, IgnoresOtherMembersAndNonServingPaths) {
  // snapshot_version continues as an identifier — unrelated field.
  EXPECT_EQ(CountRule(RunLint("src/serving/engine.cc",
                          "void F() { r.snapshot_version = v; }\n"),
                      "rcu-only-publish"),
            0);
  EXPECT_EQ(CountRule(RunLint("src/core/engine.cc",
                          "void F() { snapshot_ = next; }\n"),
                      "rcu-only-publish"),
            0);
}

TEST(RcuOnlyPublishTest, ExemptsRegistryAndHonorsAllow) {
  EXPECT_EQ(
      CountRule(RunLint("src/serving/cluster/snapshot_registry.cc",
                    "void R::Publish(P next) { current_snapshot_ = next; }\n"),
                "rcu-only-publish"),
      0);
  EXPECT_EQ(
      CountRule(
          RunLint("src/serving/engine.cc",
              "void F() { snapshot_ = n; }  "
              "// NMCDR_LINT_ALLOW(rcu-only-publish): test-only override\n"),
          "rcu-only-publish"),
      0);
}

// ---------------------------------------------------------------------------
// include-layering / include-cycle
// ---------------------------------------------------------------------------

TEST(IncludeGraphTest, PreprocessKeepsIncludePaths) {
  SourceFile f = Preprocess("src/a.cc", "#include \"util/check.h\"\n");
  EXPECT_NE(f.code[0].find("util/check.h"), std::string::npos);
}

TEST(IncludeLayeringTest, FiresWhenLowerLayerIncludesHigher) {
  // tensor (layer 1) including train (layer 6) inverts the declared order.
  SourceFile low = Preprocess("src/tensor/synth.cc",
                              "#include \"train/registry.h\"\n");
  SourceFile high = Preprocess(
      "src/train/registry.h",
      "#ifndef NMCDR_TRAIN_REGISTRY_H_\n#define NMCDR_TRAIN_REGISTRY_H_\n"
      "#endif\n");
  const auto diags = LintFileSet({low, high});
  EXPECT_EQ(CountRule(diags, "include-layering"), 1);
}

TEST(IncludeLayeringTest, QuietOnDownwardAndSameLayerIncludes) {
  SourceFile train = Preprocess("src/train/synth.cc",
                                "#include \"eval/metrics.h\"\n"
                                "#include \"baselines/common.h\"\n");
  SourceFile eval = Preprocess(
      "src/eval/metrics.h",
      "#ifndef NMCDR_EVAL_METRICS_H_\n#define NMCDR_EVAL_METRICS_H_\n"
      "#endif\n");
  SourceFile base = Preprocess(
      "src/baselines/common.h",
      "#ifndef NMCDR_BASELINES_COMMON_H_\n#define NMCDR_BASELINES_COMMON_H_\n"
      "#endif\n");
  const auto diags = LintFileSet({train, eval, base});
  EXPECT_EQ(CountRule(diags, "include-layering"), 0);
}

TEST(IncludeLayeringTest, FlagsModuleWithNoDeclaredLayer) {
  SourceFile f = Preprocess("src/mystery/synth.cc",
                            "#include \"util/check.h\"\n");
  SourceFile util = Preprocess(
      "src/util/check.h",
      "#ifndef NMCDR_UTIL_CHECK_H_\n#define NMCDR_UTIL_CHECK_H_\n#endif\n");
  const auto diags = LintFileSet({f, util});
  EXPECT_EQ(CountRule(diags, "include-layering"), 1);
}

TEST(IncludeLayeringTest, IgnoresExternalAndUnresolvedIncludes) {
  SourceFile f = Preprocess("src/tensor/synth.cc",
                            "#include <vector>\n"
                            "#include \"third_party/nothere.h\"\n");
  const auto diags = LintFileSet({f});
  EXPECT_EQ(CountRule(diags, "include-layering"), 0);
}

TEST(IncludeCycleTest, FiresOnTwoFileCycle) {
  SourceFile a = Preprocess(
      "src/core/a.h",
      "#ifndef NMCDR_CORE_A_H_\n#define NMCDR_CORE_A_H_\n"
      "#include \"core/b.h\"\n#endif\n");
  SourceFile b = Preprocess(
      "src/core/b.h",
      "#ifndef NMCDR_CORE_B_H_\n#define NMCDR_CORE_B_H_\n"
      "#include \"core/a.h\"\n#endif\n");
  const auto diags = LintFileSet({a, b});
  EXPECT_EQ(CountRule(diags, "include-cycle"), 1);
}

TEST(IncludeCycleTest, ReportsFullChainOnThreeFileCycle) {
  SourceFile a = Preprocess(
      "src/core/a.h",
      "#ifndef NMCDR_CORE_A_H_\n#define NMCDR_CORE_A_H_\n"
      "#include \"core/b.h\"\n#endif\n");
  SourceFile b = Preprocess(
      "src/core/b.h",
      "#ifndef NMCDR_CORE_B_H_\n#define NMCDR_CORE_B_H_\n"
      "#include \"core/c.h\"\n#endif\n");
  SourceFile c = Preprocess(
      "src/core/c.h",
      "#ifndef NMCDR_CORE_C_H_\n#define NMCDR_CORE_C_H_\n"
      "#include \"core/a.h\"\n#endif\n");
  const auto diags = LintFileSet({a, b, c});
  ASSERT_EQ(CountRule(diags, "include-cycle"), 1);
  for (const Diagnostic& d : diags) {
    if (d.rule != "include-cycle") continue;
    EXPECT_NE(d.message.find("src/core/a.h"), std::string::npos);
    EXPECT_NE(d.message.find("src/core/b.h"), std::string::npos);
    EXPECT_NE(d.message.find("src/core/c.h"), std::string::npos);
  }
}

TEST(IncludeCycleTest, QuietOnDiamondDag) {
  SourceFile top = Preprocess("src/core/top.cc",
                              "#include \"core/l.h\"\n#include \"core/r.h\"\n");
  SourceFile l = Preprocess(
      "src/core/l.h",
      "#ifndef NMCDR_CORE_L_H_\n#define NMCDR_CORE_L_H_\n"
      "#include \"core/base.h\"\n#endif\n");
  SourceFile r = Preprocess(
      "src/core/r.h",
      "#ifndef NMCDR_CORE_R_H_\n#define NMCDR_CORE_R_H_\n"
      "#include \"core/base.h\"\n#endif\n");
  SourceFile base = Preprocess(
      "src/core/base.h",
      "#ifndef NMCDR_CORE_BASE_H_\n#define NMCDR_CORE_BASE_H_\n#endif\n");
  const auto diags = LintFileSet({top, l, r, base});
  EXPECT_EQ(CountRule(diags, "include-cycle"), 0);
}

// ---------------------------------------------------------------------------
// Concurrency passes (fixture-driven)
//
// The fixtures live in tests/lint_fixtures/ (deliberate violations, never
// compiled, skipped by the tree-wide driver). Each is read from disk and
// re-pathed under a synthetic src/serving/ prefix so the concurrency
// passes apply.
// ---------------------------------------------------------------------------

std::string ReadFixture(const std::string& name) {
  const std::string path =
      std::string(NMCDR_SOURCE_DIR) + "/tests/lint_fixtures/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

SourceFile Fixture(const std::string& name) {
  return Preprocess("src/serving/" + name, ReadFixture(name));
}

std::vector<Diagnostic> RunConcurrency(const std::vector<SourceFile>& files) {
  LintOptions options;
  options.concurrency = true;
  return LintFileSet(files, options);
}

TEST(LockOrderTest, CycleAcrossTwoFilesReportsBothAcquisitionSites) {
  const auto diags = RunConcurrency(
      {Fixture("lock_order_cycle_a.cc"), Fixture("lock_order_cycle_b.cc")});
  ASSERT_EQ(CountRule(diags, "lock-order"), 1);
  for (const Diagnostic& d : diags) {
    if (d.rule != "lock-order") continue;
    EXPECT_NE(d.message.find("potential deadlock"), std::string::npos);
    EXPECT_NE(d.message.find("Alpha::mu_"), std::string::npos);
    EXPECT_NE(d.message.find("Beta::mu_"), std::string::npos);
    // Both edges carry their acquisition sites, one in each file.
    EXPECT_NE(d.message.find("src/serving/lock_order_cycle_a.cc"),
              std::string::npos);
    EXPECT_NE(d.message.find("src/serving/lock_order_cycle_b.cc"),
              std::string::npos);
  }
}

TEST(LockOrderTest, ConsistentOrderIsQuiet) {
  const auto diags = RunConcurrency({Fixture("lock_order_clean.cc")});
  EXPECT_EQ(CountRule(diags, "lock-order"), 0);
}

TEST(LockOrderTest, GraphExposesNodesAndEdges) {
  LockOrderGraph graph = BuildLockOrderGraph({Fixture("lock_order_clean.cc")});
  ASSERT_EQ(graph.nodes.size(), 2u);
  EXPECT_EQ(graph.nodes[0], "Mono::mu_");
  EXPECT_EQ(graph.nodes[1], "Mono::nu_");
  ASSERT_EQ(graph.edges.size(), 1u);  // deduped across First/Second
  EXPECT_EQ(graph.edges[0].from, "Mono::mu_");
  EXPECT_EQ(graph.edges[0].to, "Mono::nu_");
  const std::string dot = LockOrderDot(graph);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"Mono::mu_\" -> \"Mono::nu_\""), std::string::npos);
  const std::string text = LockOrderText(graph);
  EXPECT_NE(text.find("edge Mono::mu_ -> Mono::nu_"), std::string::npos);
}

TEST(LockOrderTest, ConcurrencyRulesNeedTheOptIn) {
  // Without LintOptions::concurrency the same cycle is not reported.
  const auto diags = LintFileSet(
      {Fixture("lock_order_cycle_a.cc"), Fixture("lock_order_cycle_b.cc")});
  EXPECT_EQ(CountRule(diags, "lock-order"), 0);
}

TEST(ThreadAnnotationTest, BadFixtureFiresEveryShape) {
  const auto diags = RunConcurrency({Fixture("annotation_bad.cc")});
  // Unknown mutex name, REQUIRES self-lock, REQUIRES caller without the
  // lock, EXCLUDES caller with the lock.
  ASSERT_EQ(CountRule(diags, "thread-annotation"), 4);
  std::string all;
  for (const Diagnostic& d : diags) all += d.message + "\n";
  EXPECT_NE(all.find("ghost_mu_"), std::string::npos);
  EXPECT_NE(all.find("self-deadlock"), std::string::npos);
  EXPECT_NE(all.find("requires Gamma::mu_ held"), std::string::npos);
  EXPECT_NE(all.find("with Gamma::mu_ held"), std::string::npos);
}

TEST(ThreadAnnotationTest, HonoredContractsAreQuiet) {
  const auto diags = RunConcurrency({Fixture("annotation_good.cc")});
  EXPECT_EQ(CountRule(diags, "thread-annotation"), 0);
}

TEST(RcuReadScopeTest, EscapesFire) {
  const auto diags = RunConcurrency({Fixture("rcu_escape_bad.cc")});
  // Direct member store, returned .get() pointer, local copied to member.
  ASSERT_EQ(CountRule(diags, "rcu-read-scope"), 3);
  std::string all;
  for (const Diagnostic& d : diags) all += d.message + "\n";
  EXPECT_NE(all.find("kept_"), std::string::npos);
  EXPECT_NE(all.find("escapes via return"), std::string::npos);
  EXPECT_NE(all.find("cached_"), std::string::npos);
}

TEST(RcuReadScopeTest, LocalScopedSnapshotIsQuiet) {
  const auto diags = RunConcurrency({Fixture("rcu_scope_good.cc")});
  EXPECT_EQ(CountRule(diags, "rcu-read-scope"), 0);
}

TEST(RcuReadScopeTest, OnlyAppliesUnderServing) {
  // The same escaping code outside src/serving/ is not this rule's
  // business (nothing there speaks the SnapshotRegistry protocol).
  const auto diags = RunConcurrency(
      {Preprocess("src/core/rcu_escape_bad.cc", ReadFixture("rcu_escape_bad.cc"))});
  EXPECT_EQ(CountRule(diags, "rcu-read-scope"), 0);
}

TEST(PoolBlockingTest, BlockingAndDispatchHeldMutexFire) {
  const auto diags = RunConcurrency({Fixture("pool_blocking_bad.cc")});
  // sleep_for in pool-reachable code + re-lock of the dispatch-held mu_.
  ASSERT_EQ(CountRule(diags, "pool-blocking"), 2);
  std::string all;
  for (const Diagnostic& d : diags) all += d.message + "\n";
  EXPECT_NE(all.find("sleep_for"), std::string::npos);
  EXPECT_NE(all.find("held around a ThreadPool dispatch"), std::string::npos);
}

TEST(PoolBlockingTest, DispatchOutsideLockIsQuiet) {
  const auto diags = RunConcurrency({Fixture("pool_blocking_good.cc")});
  EXPECT_EQ(CountRule(diags, "pool-blocking"), 0);
}

// ---------------------------------------------------------------------------
// Multi-rule NMCDR_LINT_ALLOW suppressions
// ---------------------------------------------------------------------------

TEST(MultiRuleAllowTest, CommaListSuppressesEachNamedRule) {
  const auto diags = RunLint(
      "src/a.cc",
      "T* t = new T; assert(t);  "
      "// NMCDR_LINT_ALLOW(naked-new, banned-assert): fixture\n");
  EXPECT_EQ(CountRule(diags, "naked-new"), 0);
  EXPECT_EQ(CountRule(diags, "banned-assert"), 0);
}

TEST(MultiRuleAllowTest, UnlistedRuleStillFires) {
  const auto diags = RunLint(
      "src/a.cc",
      "T* t = new T; int r = rand();  "
      "// NMCDR_LINT_ALLOW(naked-new, banned-assert): fixture\n");
  EXPECT_EQ(CountRule(diags, "naked-new"), 0);
  EXPECT_EQ(CountRule(diags, "banned-rand"), 1);
}

TEST(MultiRuleAllowTest, CommentBlockAboveSuppressesMultipleRules) {
  const auto diags = RunLint(
      "src/a.cc",
      "// NMCDR_LINT_ALLOW(naked-new, banned-rand): seeded fixture\n"
      "T* t = new T(rand());\n");
  EXPECT_EQ(CountRule(diags, "naked-new"), 0);
  EXPECT_EQ(CountRule(diags, "banned-rand"), 0);
}

TEST(MultiRuleAllowTest, SuppressesConcurrencyRules) {
  std::string content = ReadFixture("pool_blocking_bad.cc");
  const std::string needle = "std::this_thread::sleep_for";
  const size_t pos = content.find(needle);
  ASSERT_NE(pos, std::string::npos);
  const size_t line_start = content.rfind('\n', pos) + 1;
  content.insert(line_start,
                 "  // NMCDR_LINT_ALLOW(pool-blocking): fixture\n");
  const auto diags =
      RunConcurrency({Preprocess("src/serving/pool_blocking_bad.cc", content)});
  // The sleep_for finding is suppressed; the dispatch-held re-lock stays.
  EXPECT_EQ(CountRule(diags, "pool-blocking"), 1);
}

// ---------------------------------------------------------------------------
// Hot-path passes (fixture-driven)
//
// Same pattern as the concurrency fixtures: deliberate violations under
// tests/lint_fixtures/, re-pathed to src/serving/ so the hot-path passes
// apply, run through LintFileSet with LintOptions::hotpath.
// ---------------------------------------------------------------------------

std::vector<Diagnostic> RunHotpath(const std::vector<SourceFile>& files) {
  LintOptions options;
  options.hotpath = true;
  return LintFileSet(files, options);
}

TEST(HotAllocTest, BadFixtureFiresEveryAllocationShape) {
  const auto diags = RunHotpath({Fixture("hot_alloc_bad.cc")});
  // new, make_unique, push_back (no reserve), resize, std::string,
  // to_string, sized std::vector — one finding each.
  EXPECT_EQ(CountRule(diags, "hot-alloc"), 7);
  for (const Diagnostic& d : diags) {
    if (d.rule != "hot-alloc") continue;
    // Every finding carries its hot-reachability provenance.
    EXPECT_NE(d.message.find("hot via"), std::string::npos) << d.message;
    EXPECT_NE(d.message.find("AllocEngine::Serve"), std::string::npos)
        << d.message;
  }
}

TEST(HotAllocTest, ScratchPatternsAreQuiet) {
  // NMCDR_COLD Prepare() plus reserve-then-push_back in the hot body.
  const auto diags = RunHotpath({Fixture("hot_alloc_good.cc")});
  EXPECT_EQ(CountRule(diags, "hot-alloc"), 0);
}

TEST(HotAllocTest, ArenaAllocAndResetAreSanctionedInHotCode) {
  // BumpArena::Alloc / ResetStep are implicitly cold: a hot caller is
  // legal and their growth-machinery bodies are never scanned.
  const auto diags = RunHotpath({Fixture("arena_hot_good.cc")});
  EXPECT_EQ(CountRule(diags, "hot-alloc"), 0);
  EXPECT_EQ(CountRule(diags, "throw-hot"), 0);
}

TEST(HotAllocTest, TwoFileTransitiveReachabilityCarriesTheChain) {
  const auto diags =
      RunHotpath({Fixture("hot_reach_a.cc"), Fixture("hot_reach_b.cc")});
  // FeedWorker::Grow is hot only through FeedRoot::Drive (other file);
  // its `new` is the only finding — the NMCDR_COLD Refill is pruned.
  ASSERT_EQ(CountRule(diags, "hot-alloc"), 1);
  for (const Diagnostic& d : diags) {
    if (d.rule != "hot-alloc") continue;
    EXPECT_NE(d.file.find("hot_reach_b.cc"), std::string::npos);
    EXPECT_NE(d.message.find("FeedRoot::Drive -> FeedWorker::Grow"),
              std::string::npos)
        << d.message;
  }
}

TEST(HotAllocTest, ColdCalleeIsNotScannedWithoutTheHotRoot) {
  // hot_reach_b.cc alone has no hot root: nothing fires, including the
  // cold Refill's resize.
  const auto diags = RunHotpath({Fixture("hot_reach_b.cc")});
  EXPECT_EQ(CountRule(diags, "hot-alloc"), 0);
}

TEST(HotAllocTest, NeedsTheOptIn) {
  const auto diags = LintFileSet({Fixture("hot_alloc_bad.cc")});
  EXPECT_EQ(CountRule(diags, "hot-alloc"), 0);
  EXPECT_EQ(CountRule(diags, "throw-hot"), 0);
}

TEST(ThrowHotTest, BadFixtureFiresThrowAndCheck) {
  const auto diags = RunHotpath({Fixture("throw_hot_bad.cc")});
  // One `throw`, one NMCDR_CHECK_GE.
  EXPECT_EQ(CountRule(diags, "throw-hot"), 2);
}

TEST(ThrowHotTest, DcheckCoreAndColdCheckWrapperAreQuiet) {
  const auto diags = RunHotpath({Fixture("throw_hot_good.cc")});
  EXPECT_EQ(CountRule(diags, "throw-hot"), 0);
}

TEST(ArgCopyTest, BadFixtureFiresOnEveryByValueHeavyParam) {
  const auto diags = RunHotpath({Fixture("arg_copy_bad.cc")});
  // Matrix, std::vector, std::string — by value, never moved.
  EXPECT_EQ(CountRule(diags, "arg-copy"), 3);
}

TEST(ArgCopyTest, ConstRefWrappersAndSinksAreQuiet) {
  const auto diags = RunHotpath({Fixture("arg_copy_good.cc")});
  EXPECT_EQ(CountRule(diags, "arg-copy"), 0);
}

TEST(ReserveBeforeGrowthTest, BadFixtureFiresInBracedAndBracelessLoops) {
  const auto diags = RunHotpath({Fixture("reserve_growth_bad.cc")});
  EXPECT_EQ(CountRule(diags, "reserve-before-growth"), 2);
}

TEST(ReserveBeforeGrowthTest, ReserveSingleShotAndDequeAreQuiet) {
  const auto diags = RunHotpath({Fixture("reserve_growth_good.cc")});
  EXPECT_EQ(CountRule(diags, "reserve-before-growth"), 0);
}

TEST(HotPathAllowTest, SuppressesAFindingOnTheFlaggedLine) {
  std::string content = ReadFixture("hot_alloc_bad.cc");
  const std::string needle = "new int[4]";
  const size_t pos = content.find(needle);
  ASSERT_NE(pos, std::string::npos);
  const size_t line_start = content.rfind('\n', pos) + 1;
  content.insert(line_start,
                 "  // NMCDR_LINT_ALLOW(hot-alloc): fixture\n");
  const auto diags =
      RunHotpath({Preprocess("src/serving/hot_alloc_bad.cc", content)});
  EXPECT_EQ(CountRule(diags, "hot-alloc"), 6);  // only the new is suppressed
}

TEST(HotPathGraphTest, ExposesRootsEdgesAndRenderings) {
  HotPathGraph graph = BuildHotPathGraph(
      {Fixture("hot_reach_a.cc"), Fixture("hot_reach_b.cc")});
  bool found_root = false, found_transitive = false;
  for (const HotPathNode& n : graph.nodes) {
    if (n.key == "FeedRoot::Drive") {
      found_root = true;
      EXPECT_TRUE(n.root);
    }
    if (n.key == "FeedWorker::Grow") {
      found_transitive = true;
      EXPECT_FALSE(n.root);
    }
    EXPECT_NE(n.key, "FeedWorker::Refill");  // cold: pruned
  }
  EXPECT_TRUE(found_root);
  EXPECT_TRUE(found_transitive);
  bool found_edge = false;
  for (const HotPathEdge& e : graph.edges) {
    if (e.from == "FeedRoot::Drive" && e.to == "FeedWorker::Grow") {
      found_edge = true;
    }
  }
  EXPECT_TRUE(found_edge);
  ASSERT_EQ(graph.sites.size(), 1u);
  EXPECT_EQ(graph.sites[0].rule, "hot-alloc");
  const std::string dot = HotPathDot(graph);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"FeedRoot::Drive\" -> \"FeedWorker::Grow\""),
            std::string::npos);
  const std::string text = HotPathText(graph);
  EXPECT_NE(text.find("FeedRoot::Drive"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Rule catalogue + driver exit codes
// ---------------------------------------------------------------------------

TEST(ListRulesTest, CataloguesEveryRuleWithConcurrencyTail) {
  const std::vector<RuleInfo>& rules = ListRules();
  ASSERT_GE(rules.size(), 20u);
  int concurrency = 0;
  int hotpath = 0;
  for (const RuleInfo& r : rules) {
    EXPECT_FALSE(r.id.empty());
    EXPECT_FALSE(r.summary.empty());
    if (r.concurrency_only) ++concurrency;
    if (r.hotpath_only) ++hotpath;
  }
  EXPECT_EQ(concurrency, 4);
  EXPECT_EQ(hotpath, 4);
  EXPECT_EQ(rules.back().id, "reserve-before-growth");
  EXPECT_TRUE(rules.back().hotpath_only);
}

int RunDriver(const std::string& args) {
  const std::string cmd =
      std::string(NMCDR_LINT_BIN) + " " + args + " >/dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  EXPECT_TRUE(WIFEXITED(status)) << cmd;
  return WEXITSTATUS(status);
}

class DriverExitCodeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("nmcdr_lint_exit_" + std::to_string(::getpid()));
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_ / "src");
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  void WriteFile(const std::string& rel, const std::string& content) {
    std::ofstream out(root_ / rel, std::ios::binary);
    out << content;
  }

  std::filesystem::path root_;
};

TEST_F(DriverExitCodeTest, CleanTreeExitsZero) {
  WriteFile("src/ok.cc", "int x = 0;\n");
  EXPECT_EQ(RunDriver(root_.string() + " src"), 0);
  EXPECT_EQ(RunDriver("--concurrency " + root_.string() + " src"), 0);
}

TEST_F(DriverExitCodeTest, ViolationExitsOne) {
  WriteFile("src/bad.cc", "void F() { assert(1 == 1); }\n");
  EXPECT_EQ(RunDriver(root_.string() + " src"), 1);
}

TEST_F(DriverExitCodeTest, MissingDirectoryExitsTwo) {
  EXPECT_EQ(RunDriver(root_.string() + " nope"), 2);
}

TEST_F(DriverExitCodeTest, UnknownFlagExitsTwo) {
  EXPECT_EQ(RunDriver("--bogus"), 2);
}

TEST_F(DriverExitCodeTest, ListRulesExitsZero) {
  EXPECT_EQ(RunDriver("--list-rules"), 0);
}

TEST_F(DriverExitCodeTest, HotpathViolationExitsOneOnlyWithTheFlag) {
  WriteFile("src/hot.cc",
            "class E {\n"
            " public:\n"
            "  void Serve() NMCDR_HOT;\n"
            "};\n"
            "void E::Serve() { int n = 3; (void)std::to_string(n); }\n");
  EXPECT_EQ(RunDriver("--hotpath " + root_.string() + " src"), 1);
  EXPECT_EQ(RunDriver(root_.string() + " src"), 0);
}

TEST_F(DriverExitCodeTest, FixtureDirectoriesAreSkipped) {
  std::filesystem::create_directories(root_ / "src" / "lint_fixtures");
  WriteFile("src/lint_fixtures/bad.cc", "void F() { assert(1 == 1); }\n");
  EXPECT_EQ(RunDriver(root_.string() + " src"), 0);
}

}  // namespace
}  // namespace lint
}  // namespace nmcdr
