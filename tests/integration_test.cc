// End-to-end integration tests across the full stack: data generation,
// splitting, training, evaluation, and the experiment driver.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/embedding_stats.h"
#include "core/nmcdr_model.h"
#include "tests/test_util.h"
#include "train/registry.h"

namespace nmcdr {
namespace {

using testing_util::PolicyModel;
using testing_util::TinySpec;

TEST(IntegrationTest, TrainedNmcdrBeatsRandomPolicy) {
  ExperimentData data(GenerateScenario(TinySpec()), 3);
  NmcdrConfig config;
  config.hidden_dim = 8;
  NmcdrModel model(data.View(), config, 1, 5e-3f);
  TrainConfig train;
  train.epochs = 2;
  train.min_total_steps = 250;
  train.batch_size = 128;
  Trainer trainer(data.View(), train, &data.full_graph_z(),
                  &data.full_graph_zbar());
  trainer.Train(&model);

  EvalConfig eval;
  eval.num_negatives = 30;
  const ScenarioMetrics trained = EvaluateScenario(
      &model, data.full_graph_z(), data.full_graph_zbar(), data.split_z(),
      data.split_zbar(), EvalPhase::kTest, eval);

  Rng rng(9);
  PolicyModel random_policy("rand", [&rng](DomainSide, int, int) {
    return static_cast<float>(rng.UniformDouble());
  });
  const ScenarioMetrics random_result = EvaluateScenario(
      &random_policy, data.full_graph_z(), data.full_graph_zbar(),
      data.split_z(), data.split_zbar(), EvalPhase::kTest, eval);

  EXPECT_GT(trained.z.hr + trained.zbar.hr,
            random_result.z.hr + random_result.zbar.hr);
}

TEST(IntegrationTest, RunExperimentProducesCompleteResult) {
  RegisterAllModels();
  ExperimentData data(GenerateScenario(TinySpec()), 3);
  CommonHyper hyper;
  hyper.embed_dim = 8;
  TrainConfig train;
  train.epochs = 1;
  train.min_total_steps = 60;
  EvalConfig eval;
  eval.num_negatives = 20;
  const ExperimentResult result = RunExperiment(
      data, ModelRegistry::Instance().Get("NMCDR"), hyper, train, eval);
  EXPECT_EQ(result.model_name, "NMCDR");
  EXPECT_GT(result.parameter_count, 0);
  EXPECT_GT(result.test.z.num_users, 0);
  EXPECT_GT(result.test.zbar.num_users, 0);
  EXPECT_GE(result.test.z.hr, 0.0);
  EXPECT_LE(result.test.z.hr, 1.0);
  EXPECT_GT(result.training.train_seconds, 0.0);
}

TEST(IntegrationTest, OverlapMaskingPreservesEvaluationUsers) {
  // Masking identity links must not change which users are evaluated
  // (only the knowledge available for transfer).
  CdrScenario base = GenerateScenario(TinySpec());
  Rng rng(5);
  ExperimentData full(base, 3);
  ExperimentData masked(ApplyOverlapRatio(base, 0.01, &rng), 3);
  EXPECT_EQ(full.split_z().TestUsers(), masked.split_z().TestUsers());
}

TEST(IntegrationTest, ExperimentDeterministicForSeeds) {
  RegisterAllModels();
  CommonHyper hyper;
  hyper.embed_dim = 8;
  TrainConfig train;
  train.epochs = 1;
  train.min_total_steps = 40;
  EvalConfig eval;
  eval.num_negatives = 20;
  ExperimentData data_a(GenerateScenario(TinySpec()), 3);
  ExperimentData data_b(GenerateScenario(TinySpec()), 3);
  const ExperimentResult a = RunExperiment(
      data_a, ModelRegistry::Instance().Get("LR"), hyper, train, eval);
  const ExperimentResult b = RunExperiment(
      data_b, ModelRegistry::Instance().Get("LR"), hyper, train, eval);
  EXPECT_DOUBLE_EQ(a.test.z.hr, b.test.z.hr);
  EXPECT_DOUBLE_EQ(a.test.zbar.ndcg, b.test.zbar.ndcg);
}

TEST(IntegrationTest, TestPositivesNeverAppearInTrainGraph) {
  // Leakage guard: the message-passing graph must not contain held-out
  // interactions.
  ExperimentData data(GenerateScenario(TinySpec()), 3);
  for (int u = 0; u < data.scenario().z.num_users; ++u) {
    const int test_item = data.split_z().test_item[u];
    if (test_item >= 0) {
      EXPECT_FALSE(data.train_graph_z().HasInteraction(u, test_item));
    }
    const int valid_item = data.split_z().valid_item[u];
    if (valid_item >= 0) {
      EXPECT_FALSE(data.train_graph_z().HasInteraction(u, valid_item));
    }
  }
}

TEST(IntegrationTest, FullGraphContainsAllInteractions) {
  ExperimentData data(GenerateScenario(TinySpec()), 3);
  EXPECT_EQ(data.full_graph_z().num_edges(),
            static_cast<int64_t>(data.scenario().z.interactions.size()));
}

TEST(IntegrationTest, StageRepsTailAlignmentComputable) {
  // The Fig. 5 pipeline end-to-end: train briefly, compute stage reps,
  // verify the separation statistic is finite at every stage.
  ExperimentData data(GenerateScenario(TinySpec()), 3);
  NmcdrConfig config;
  config.hidden_dim = 8;
  NmcdrModel model(data.View(), config, 1, 5e-3f);
  testing_util::TrainLossTrend(&model, data, 40);
  const NmcdrModel::StageReps reps = model.ComputeStageReps(DomainSide::kZ);
  std::vector<bool> is_head(data.scenario().z.num_users);
  bool any_head = false, any_tail = false;
  for (int u = 0; u < data.scenario().z.num_users; ++u) {
    is_head[u] = data.train_graph_z().UserDegree(u) > config.k_head;
    (is_head[u] ? any_head : any_tail) = true;
  }
  ASSERT_TRUE(any_head && any_tail);
  for (const Matrix* stage : {&reps.g1, &reps.g3, &reps.g4}) {
    const HeadTailSeparation sep = ComputeHeadTailSeparation(*stage, is_head);
    EXPECT_TRUE(std::isfinite(sep.separation_score));
  }
}

}  // namespace
}  // namespace nmcdr
