#include "eval/evaluator.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace nmcdr {
namespace {

using testing_util::PolicyModel;
using testing_util::TinyData;

TEST(EvaluatorTest, OracleThatPrefersHeldOutGetsPerfectScore) {
  auto data = TinyData();
  const DomainSplit& split = data->split_z();
  PolicyModel oracle("oracle", [&split](DomainSide side, int user, int item) {
    if (side != DomainSide::kZ) return 0.f;
    return split.test_item[user] == item ? 1.f : 0.f;
  });
  EvalConfig config;
  const RankingMetrics m = EvaluateRanking(
      &oracle, DomainSide::kZ, data->full_graph_z(), split, EvalPhase::kTest,
      config);
  EXPECT_GT(m.num_users, 0);
  EXPECT_DOUBLE_EQ(m.hr, 1.0);
  EXPECT_DOUBLE_EQ(m.ndcg, 1.0);
}

TEST(EvaluatorTest, AdversaryThatHatesHeldOutScoresZero) {
  auto data = TinyData();
  const DomainSplit& split = data->split_z();
  PolicyModel adversary("adv", [&split](DomainSide, int user, int item) {
    return split.test_item[user] == item ? -1.f : 1.f;
  });
  EvalConfig config;
  config.num_negatives = 30;
  const RankingMetrics m = EvaluateRanking(
      &adversary, DomainSide::kZ, data->full_graph_z(), split,
      EvalPhase::kTest, config);
  EXPECT_DOUBLE_EQ(m.hr, 0.0);
  EXPECT_DOUBLE_EQ(m.ndcg, 0.0);
}

TEST(EvaluatorTest, ValidationPhaseUsesValidItems) {
  auto data = TinyData();
  const DomainSplit& split = data->split_z();
  PolicyModel valid_oracle("v", [&split](DomainSide, int user, int item) {
    return split.valid_item[user] == item ? 1.f : 0.f;
  });
  EvalConfig config;
  const RankingMetrics m = EvaluateRanking(
      &valid_oracle, DomainSide::kZ, data->full_graph_z(), split,
      EvalPhase::kValidation, config);
  EXPECT_DOUBLE_EQ(m.hr, 1.0);
}

TEST(EvaluatorTest, CandidatesDeterministicAcrossModels) {
  // Two models that score identically must get identical metrics — the
  // candidate sets are a pure function of (seed, user).
  auto data = TinyData();
  Rng noise_rng(3);
  std::vector<float> fixed_noise(100000);
  for (float& v : fixed_noise) v = noise_rng.Uniform(0.f, 1.f);
  auto score = [&fixed_noise](DomainSide, int user, int item) {
    return fixed_noise[(user * 131 + item * 7919) % fixed_noise.size()];
  };
  PolicyModel a("a", score), b("b", score);
  EvalConfig config;
  const RankingMetrics ma = EvaluateRanking(
      &a, DomainSide::kZ, data->full_graph_z(), data->split_z(),
      EvalPhase::kTest, config);
  const RankingMetrics mb = EvaluateRanking(
      &b, DomainSide::kZ, data->full_graph_z(), data->split_z(),
      EvalPhase::kTest, config);
  EXPECT_DOUBLE_EQ(ma.hr, mb.hr);
  EXPECT_DOUBLE_EQ(ma.ndcg, mb.ndcg);
}

TEST(EvaluatorTest, RandomPolicyNearExpectedHitRate) {
  auto data = TinyData();
  Rng rng(5);
  PolicyModel random_policy("r", [&rng](DomainSide, int, int) {
    return static_cast<float>(rng.UniformDouble());
  });
  EvalConfig config;
  config.num_negatives = 19;  // HR@10 of random over 20 candidates = 0.5
  const RankingMetrics m = EvaluateRanking(
      &random_policy, DomainSide::kZ, data->full_graph_z(), data->split_z(),
      EvalPhase::kTest, config);
  EXPECT_NEAR(m.hr, 0.5, 0.15);
}

TEST(EvaluatorTest, NegativeCountClampedOnTinyItemSpaces) {
  auto data = TinyData();
  EvalConfig config;
  config.num_negatives = 10000;  // far more than the 40-item catalog
  PolicyModel any("any", [](DomainSide, int, int) { return 0.f; });
  const RankingMetrics m = EvaluateRanking(
      &any, DomainSide::kZ, data->full_graph_z(), data->split_z(),
      EvalPhase::kTest, config);
  EXPECT_GT(m.num_users, 0);  // users still evaluated via clamping
}

TEST(EvaluatorTest, SmallScoreBatchChunksGiveSameResult) {
  auto data = TinyData();
  const DomainSplit& split = data->split_z();
  PolicyModel oracle("oracle", [&split](DomainSide, int user, int item) {
    return split.test_item[user] == item ? 1.f : 0.f;
  });
  EvalConfig small_chunks;
  small_chunks.score_batch = 25;  // forces many chunks
  const RankingMetrics m = EvaluateRanking(
      &oracle, DomainSide::kZ, data->full_graph_z(), split, EvalPhase::kTest,
      small_chunks);
  EXPECT_DOUBLE_EQ(m.hr, 1.0);
}

TEST(EvaluatorTest, GroupedEvaluationPartitionsUsers) {
  auto data = TinyData();
  const DomainSplit& split = data->split_z();
  PolicyModel oracle("oracle", [&split](DomainSide, int user, int item) {
    return split.test_item[user] == item ? 1.f : 0.f;
  });
  EvalConfig config;
  // Partition by parity; group sizes must sum to the ungrouped count and
  // the oracle is perfect in both groups.
  const std::vector<RankingMetrics> groups = EvaluateRankingGrouped(
      &oracle, DomainSide::kZ, data->full_graph_z(), split, EvalPhase::kTest,
      config, [](int user) { return user % 2; }, 2);
  const RankingMetrics all = EvaluateRanking(
      &oracle, DomainSide::kZ, data->full_graph_z(), split, EvalPhase::kTest,
      config);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].num_users + groups[1].num_users, all.num_users);
  EXPECT_DOUBLE_EQ(groups[0].hr, 1.0);
  EXPECT_DOUBLE_EQ(groups[1].hr, 1.0);
}

TEST(EvaluatorTest, GroupedUsesSameCandidatesAsUngrouped) {
  // A deterministic scorer must get identical aggregate NDCG whether
  // evaluated grouped (then merged) or ungrouped.
  auto data = TinyData();
  PolicyModel scorer("s", [](DomainSide, int user, int item) {
    return static_cast<float>(((user * 131 + item * 7919) % 97) / 97.0);
  });
  EvalConfig config;
  const std::vector<RankingMetrics> groups = EvaluateRankingGrouped(
      &scorer, DomainSide::kZ, data->full_graph_z(), data->split_z(),
      EvalPhase::kTest, config, [](int) { return 0; }, 1);
  const RankingMetrics all = EvaluateRanking(
      &scorer, DomainSide::kZ, data->full_graph_z(), data->split_z(),
      EvalPhase::kTest, config);
  EXPECT_EQ(groups[0].num_users, all.num_users);
  EXPECT_NEAR(groups[0].ndcg, all.ndcg, 1e-12);
}

TEST(EvaluatorTest, EvaluateScenarioCoversBothDomains) {
  auto data = TinyData();
  PolicyModel any("any", [](DomainSide, int, int) { return 1.f; });
  EvalConfig config;
  const ScenarioMetrics m = EvaluateScenario(
      &any, data->full_graph_z(), data->full_graph_zbar(), data->split_z(),
      data->split_zbar(), EvalPhase::kTest, config);
  EXPECT_GT(m.z.num_users, 0);
  EXPECT_GT(m.zbar.num_users, 0);
}

}  // namespace
}  // namespace nmcdr
