// Tests for the semantic tensor-program verifier: the meta-tensor
// abstract interpreter (autograd/meta.h), the model analyzer
// (verify/analyzer.h), and the registry-completeness invariant tying
// ops.cc, the shape-rule table, and the gradient-check suite together.

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/meta.h"
#include "autograd/ops.h"
#include "serving/model_snapshot.h"
#include "tests/test_util.h"
#include "train/registry.h"
#include "verify/analyzer.h"
#include "verify/op_suite.h"

namespace nmcdr {
namespace {

using ag::MetaError;
using ag::MetaErrorKind;
using ag::MetaModeGuard;
using ag::MetaTraceScope;
using ag::Tensor;

// ---------------------------------------------------------------------------
// Meta-tensor abstract interpretation
// ---------------------------------------------------------------------------

TEST(MetaMode, InfersShapesWithoutRunningKernels) {
  Rng rng(1);
  Tensor a{Matrix::Gaussian(3, 4, &rng), true};
  Tensor w{Matrix::Gaussian(4, 2, &rng), true};
  // Real execution fixes the expected shapes.
  Tensor real = Sigmoid(MatMul(a, w));
  ASSERT_EQ(real.rows(), 3);
  ASSERT_EQ(real.cols(), 2);

  MetaModeGuard meta;
  Tensor symbolic = Sigmoid(MatMul(a, w));
  EXPECT_EQ(symbolic.rows(), real.rows());
  EXPECT_EQ(symbolic.cols(), real.cols());
  // Meta outputs carry zero storage — shape only, no kernel ran.
  EXPECT_EQ(symbolic.value().At(0, 0), 0.f);
  EXPECT_EQ(symbolic.node()->op, std::string("Sigmoid"));
}

// The tentpole acceptance case: a dimension bug seeded into a graph is
// caught at graph-construction time — before any Backward() call — with a
// provenance chain naming the offending op and the parameter it came from.
TEST(MetaMode, SeededShapeBugCaughtStaticallyWithProvenance) {
  MetaModeGuard meta;
  Tensor table{Matrix(100, 16), true};
  table.node()->name = "z.user_emb";
  Tensor emb = Embedding(table, {5, 17, 3});  // [3,16]
  Tensor w{Matrix(8, 8), true};               // seeded bug: should be [16,8]
  w.node()->name = "mlp.w0";

  try {
    MatMul(emb, w);  // throws here, at construction — Backward never runs
    FAIL() << "shape contradiction was not caught";
  } catch (const MetaError& e) {
    EXPECT_EQ(e.kind(), MetaErrorKind::kShapeMismatch);
    EXPECT_EQ(e.op(), "MatMul");
    const std::string what = e.what();
    // The violated contract, with the exact dimensions...
    EXPECT_NE(what.find("inner dimensions 16 vs 8"), std::string::npos) << what;
    // ...and the provenance chain of each input, through the op graph down
    // to the named leaf parameters.
    EXPECT_NE(what.find("input 0: Embedding[3x16] <- leaf 'z.user_emb'[100x16]"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("input 1: leaf 'mlp.w0'[8x8]"), std::string::npos)
        << what;
  }
}

TEST(MetaMode, IdBoundsViolationCaughtWithTableShape) {
  MetaModeGuard meta;
  Tensor table{Matrix(10, 4), true};
  try {
    Embedding(table, {3, 12});  // id 12 out of range for 10 rows
    FAIL() << "out-of-range gather was not caught";
  } catch (const MetaError& e) {
    EXPECT_EQ(e.kind(), MetaErrorKind::kShapeMismatch);
    const std::string what = e.what();
    EXPECT_NE(what.find("id range [3, 12] exceeds table rows 10"),
              std::string::npos)
        << what;
  }
}

TEST(MetaMode, UnregisteredOpThrowsFromMetaOp) {
  MetaModeGuard meta;
  Tensor x{Matrix(2, 2), true};
  try {
    ag::MetaOp("NoSuchOp", {x});
    FAIL() << "unregistered op was not rejected";
  } catch (const MetaError& e) {
    EXPECT_EQ(e.kind(), MetaErrorKind::kUnregisteredOp);
    EXPECT_EQ(e.op(), "NoSuchOp");
  }
}

TEST(MetaMode, FallbackTraceFlagsKernelOpWithoutShapeRule) {
  // A future op without a meta branch reaches MakeOpNode with its kernel
  // output; the trace must flag the missing rule instead of throwing.
  MetaModeGuard meta;
  MetaTraceScope trace;
  Tensor x{Matrix(2, 3), true};
  Tensor out = ag::MakeOpNode("SynthFutureOp", Matrix(2, 3), {x}, nullptr);
  EXPECT_EQ(out.rows(), 2);
  ASSERT_EQ(trace.unregistered_ops().size(), 1u);
  EXPECT_EQ(trace.unregistered_ops()[0], "SynthFutureOp");
}

TEST(MetaMode, BackwardIsStructuralNoOp) {
  MetaModeGuard meta;
  Tensor x{Matrix(3, 3), true};
  Tensor loss = Sum(Relu(x));
  ag::Backward(loss);  // must not touch gradients or crash
  EXPECT_TRUE(x.grad().empty());
}

TEST(MetaMode, TraceCountsOpsAndActivationFootprint) {
  MetaModeGuard meta;
  MetaTraceScope trace;
  Tensor a{Matrix(4, 8), true};
  Tensor w{Matrix(8, 2), true};
  Sigmoid(MatMul(a, w));
  EXPECT_EQ(trace.op_counts().at("MatMul"), 1);
  EXPECT_EQ(trace.op_counts().at("Sigmoid"), 1);
  EXPECT_EQ(trace.total_output_elements(), 8 + 8);  // two [4,2] outputs
}

// ---------------------------------------------------------------------------
// Registry completeness: ops.cc is the authoritative op list
// ---------------------------------------------------------------------------

/// Every op-name string literal passed to MetaOp / MakeOpNode in ops.cc.
std::set<std::string> OpsDeclaredInSource() {
  const std::string path = std::string(NMCDR_SOURCE_DIR) +
                           "/src/autograd/ops.cc";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string src = buffer.str();

  std::set<std::string> ops;
  for (const std::string& marker : {std::string("MetaOp(\""),
                                    std::string("MakeOpNode(\"")}) {
    size_t pos = src.find(marker);
    while (pos != std::string::npos) {
      const size_t begin = pos + marker.size();
      const size_t end = src.find('"', begin);
      if (end != std::string::npos) ops.insert(src.substr(begin, end - begin));
      pos = src.find(marker, begin);
    }
  }
  return ops;
}

TEST(RegistryCompleteness, EveryOpInSourceHasAShapeRule) {
  const std::set<std::string> declared = OpsDeclaredInSource();
  ASSERT_FALSE(declared.empty());
  for (const std::string& op : declared) {
    EXPECT_TRUE(ag::HasShapeRule(op))
        << "op '" << op << "' in ops.cc has no shape rule; register one in "
        << "autograd/meta.cc";
  }
}

TEST(RegistryCompleteness, EveryOpInSourceHasGradCheckCoverage) {
  const std::set<std::string> declared = OpsDeclaredInSource();
  const std::vector<std::string> checked = verify::GradCheckedOps();
  const std::set<std::string> checked_set(checked.begin(), checked.end());
  for (const std::string& op : declared) {
    EXPECT_TRUE(checked_set.count(op) != 0)
        << "op '" << op << "' in ops.cc has no gradient-check coverage; add "
        << "an OpCase to verify/op_suite.cc";
  }
}

TEST(RegistryCompleteness, NoOrphanShapeRules) {
  const std::set<std::string> declared = OpsDeclaredInSource();
  for (const std::string& op : ag::RegisteredShapeRuleOps()) {
    EXPECT_TRUE(declared.count(op) != 0)
        << "shape rule for '" << op << "' matches no op in ops.cc";
  }
}

TEST(RegistryCompleteness, CoverageAuditIsClean) {
  EXPECT_TRUE(verify::AuditOpCoverage().empty());
}

// ---------------------------------------------------------------------------
// Model analyzer
// ---------------------------------------------------------------------------

TEST(Analyzer, EveryRegisteredModelAuditsCleanOnTinyData) {
  RegisterAllModels();
  auto data = testing_util::TinyData();
  const CommonHyper hyper;
  for (const std::string& name : ModelRegistry::Instance().Names()) {
    if (name == "BrokenSynth") continue;  // synthetic fixture of the test below
    const verify::ModelAudit audit =
        verify::AuditModel(name, *data, "tiny", hyper);
    EXPECT_TRUE(audit.findings.empty()) << name << ": "
                                        << audit.findings[0].ToString();
    EXPECT_GT(audit.parameter_count, 0) << name;
    EXPECT_GT(audit.activation_elements, 0) << name;
    EXPECT_FALSE(audit.op_counts.empty()) << name;
  }
}

TEST(Analyzer, AuditReportsShapeContradictionWithProvenance) {
  // A deliberately broken model: its TrainStep multiplies mismatched
  // parameter matrices. The audit must surface the contradiction as a
  // finding (with the op chain), not crash, and before any Backward().
  class BrokenModel : public RecModel {
   public:
    explicit BrokenModel(Rng* rng)
        : a_(store_.Register("broken.a", Matrix::Gaussian(4, 8, rng))),
          b_(store_.Register("broken.b", Matrix::Gaussian(4, 8, rng))) {}
    std::string name() const override { return "Broken"; }
    float TrainStep(const LabeledBatch&, const LabeledBatch&) override {
      Tensor out = MatMul(a_, b_);  // [4,8] x [4,8]: inner dims disagree
      return Sum(out).value().At(0, 0);
    }
    std::vector<float> Score(DomainSide, const std::vector<int>& users,
                             const std::vector<int>&) override {
      return std::vector<float>(users.size(), 0.f);
    }
    ag::ParameterStore* params() override { return &store_; }

   private:
    ag::ParameterStore store_;
    Tensor a_;
    Tensor b_;
  };

  RegisterAllModels();
  ModelRegistry::Instance().Register(
      "BrokenSynth", [](const ScenarioView&, const CommonHyper&, float) {
        static Rng rng(3);
        return std::make_unique<BrokenModel>(&rng);
      });
  auto data = testing_util::TinyData();
  const verify::ModelAudit audit =
      verify::AuditModel("BrokenSynth", *data, "tiny", CommonHyper{});
  ASSERT_FALSE(audit.findings.empty());
  const verify::Finding& f = audit.findings[0];
  EXPECT_EQ(f.kind, verify::Finding::Kind::kShapeContradiction);
  EXPECT_EQ(f.op, "MatMul");
  EXPECT_NE(f.message.find("inner dimensions 8 vs 4"), std::string::npos)
      << f.message;
  EXPECT_NE(f.message.find("leaf 'broken.a'[4x8]"), std::string::npos)
      << f.message;
}

// ---------------------------------------------------------------------------
// Snapshot shape validation against the same rules
// ---------------------------------------------------------------------------

TEST(SnapshotShapes, FrozenNmcdrSnapshotValidatesCleanly) {
  RegisterAllModels();
  auto data = testing_util::TinyData();
  const CommonHyper hyper;
  auto model = ModelRegistry::Instance().Get("NMCDR")(data->View(), hyper,
                                                      /*lr=*/1e-3f);
  ModelSnapshot snapshot;
  ASSERT_TRUE(
      ModelSnapshot::FreezePair(model.get(), data->scenario(), &snapshot));
  EXPECT_TRUE(verify::VerifySnapshotShapes(snapshot).empty());
}

TEST(SnapshotShapes, StaleHeadRejectedWithDimensionDiff) {
  RegisterAllModels();
  auto data = testing_util::TinyData();
  const CommonHyper hyper;
  auto model = ModelRegistry::Instance().Get("NMCDR")(data->View(), hyper,
                                                      /*lr=*/1e-3f);
  ModelSnapshot snapshot;
  ASSERT_TRUE(
      ModelSnapshot::FreezePair(model.get(), data->scenario(), &snapshot));
  // Simulate a stale snapshot: the head was trained at a different
  // embedding dim than the tables (the object itself is non-const; the
  // accessor is just read-only).
  FrozenPredictionHead& head =
      const_cast<SnapshotDomain&>(snapshot.domain(0)).frozen.head;
  head.w0_user = Matrix(head.w0_user.rows() + 4, head.w0_user.cols());
  const std::vector<verify::Finding> findings =
      verify::VerifySnapshotShapes(snapshot);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].kind, verify::Finding::Kind::kSnapshotShape);
  EXPECT_EQ(findings[0].op, "MatMul");
  EXPECT_NE(findings[0].message.find("inner dimensions"), std::string::npos)
      << findings[0].message;
}

}  // namespace
}  // namespace nmcdr
