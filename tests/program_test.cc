// Tests for the graph-program optimizer stack (src/program + the bump
// arena + the fused kernels): the bump arena's steady-state-zero-growth
// contract, bit-exactness of the fused kernels against the op-by-op
// sequences they replace, record/replay bitwise equality on hand-built
// tapes and on a real model, the zero-allocation steady state the arena
// plan buys (ISSUE-9's acceptance criterion), deterministic eager
// fallback on stream divergence, and the static SpMM gather plans.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "autograd/ops.h"
#include "autograd/tensor.h"
#include "core/nmcdr_model.h"
#include "program/program.h"
#include "tensor/arena.h"
#include "tensor/backend.h"
#include "tensor/matrix_ops.h"
#include "tensor/rng.h"
#include "tests/test_util.h"
#include "train/trainer.h"
#include "util/thread_pool.h"

namespace nmcdr {
namespace {

Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < m.size(); ++i) {
    m.data()[i] = rng->Bernoulli(0.125) ? 0.f : rng->Uniform(-2.f, 2.f);
  }
  return m;
}

::testing::AssertionResult BitEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ::testing::AssertionFailure()
           << "shape mismatch: " << a.rows() << "x" << a.cols() << " vs "
           << b.rows() << "x" << b.cols();
  }
  if (a.size() > 0 && std::memcmp(a.data(), b.data(),
                                  sizeof(float) * a.size()) != 0) {
    for (int i = 0; i < a.size(); ++i) {
      if (std::memcmp(&a.data()[i], &b.data()[i], sizeof(float)) != 0) {
        return ::testing::AssertionFailure()
               << "first differing element " << i << ": " << a.data()[i]
               << " vs " << b.data()[i];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

// ---------------------------------------------------------------------------
// BumpArena

TEST(BumpArenaTest, ReserveCoversSteadyStateAllocs) {
  BumpArena arena;
  arena.Reserve(1024 * sizeof(float));
  EXPECT_GE(arena.capacity_bytes(), 1024 * sizeof(float));
  const int64_t growth_after_reserve = arena.growth_events();

  for (int step = 0; step < 5; ++step) {
    float* a = arena.Alloc(256);
    float* b = arena.Alloc(512);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(arena.step_bytes(), (256 + 512) * sizeof(float));
    arena.ResetStep();
    EXPECT_EQ(arena.step_bytes(), 0u);
  }
  // Reserve sized the arena; per-step traffic within it never grows.
  EXPECT_EQ(arena.growth_events(), growth_after_reserve);
  EXPECT_EQ(arena.steps(), 5);
  EXPECT_GE(arena.peak_bytes(), (256 + 512) * sizeof(float));
}

TEST(BumpArenaTest, AllocBeyondReserveGrowsAndCounts) {
  BumpArena arena;
  arena.Reserve(16 * sizeof(float));
  const int64_t before = arena.growth_events();
  (void)arena.Alloc(16);
  // Far past any minimum block grain: must append a block (reserve miss).
  const size_t big_floats = arena.capacity_bytes() / sizeof(float) + 1024;
  float* big = arena.Alloc(big_floats);
  ASSERT_NE(big, nullptr);
  EXPECT_GT(arena.growth_events(), before);
  EXPECT_GE(arena.capacity_bytes(), big_floats * sizeof(float));
}

TEST(BumpArenaTest, StorageIsReusedAcrossSteps) {
  BumpArena arena;
  arena.Reserve(64 * sizeof(float));
  float* first = arena.Alloc(64);
  arena.ResetStep();
  float* second = arena.Alloc(64);
  // Same bytes handed out again — the whole point of the bump plan.
  EXPECT_EQ(first, second);
}

TEST(BumpArenaTest, ScopedMatricesBorrowAndCopiesOwnHeap) {
  BumpArena arena;
  arena.Reserve(1024 * sizeof(float));
  (void)arena.Alloc(1);  // fault in the reserved block
  arena.ResetStep();

  Matrix copy;
  {
    ArenaScope scope(&arena);
    const int64_t heap_before = Matrix::HeapAllocCount();
    Matrix borrowed(4, 4, 2.5f);
    // Arena-backed: no heap traffic for the matrix storage.
    EXPECT_EQ(Matrix::HeapAllocCount(), heap_before);
    EXPECT_GT(arena.step_bytes(), 0u);
    // Copies must own heap storage so they survive ResetStep.
    copy = borrowed;
    EXPECT_GT(Matrix::HeapAllocCount(), heap_before);
  }
  arena.ResetStep();
  ASSERT_EQ(copy.size(), 16);
  for (int i = 0; i < copy.size(); ++i) EXPECT_EQ(copy.data()[i], 2.5f);
}

// ---------------------------------------------------------------------------
// Fused kernels: bit-exact against the op-by-op sequences they replace,
// under both backends at several pool sizes.

const int kPoolSizes[] = {1, 2, 3, 5};

template <typename Fn>
void ForEachParallelBackend(Fn check) {
  const SerialBackend& serial = SerialKernelBackend();
  for (int pool_size : kPoolSizes) {
    SCOPED_TRACE("pool size " + std::to_string(pool_size));
    ThreadPool pool(pool_size);
    const ParallelBackend parallel(&pool);
    check(serial, parallel);
  }
}

TEST(FusedKernelTest, MatMulBiasActMatchesComposedOps) {
  Rng rng(11);
  const int shapes[][3] = {{1, 1, 1}, {3, 5, 7}, {7, 3, 2}, {33, 9, 17}};
  const FusedAct acts[] = {FusedAct::kNone, FusedAct::kRelu,
                           FusedAct::kSigmoid, FusedAct::kTanh};
  for (const auto& s : shapes) {
    const Matrix a = RandomMatrix(s[0], s[1], &rng);
    const Matrix b = RandomMatrix(s[1], s[2], &rng);
    const Matrix bias = RandomMatrix(1, s[2], &rng);
    for (FusedAct act : acts) {
      for (bool with_bias : {false, true}) {
        SCOPED_TRACE(std::to_string(s[0]) + "x" + std::to_string(s[1]) +
                     "x" + std::to_string(s[2]) + " act " +
                     std::to_string(static_cast<int>(act)) +
                     (with_bias ? " +bias" : ""));
        const SerialBackend& serial = SerialKernelBackend();
        // Composed reference: the exact eager sequence the fusion replaces.
        Matrix want(s[0], s[2]);
        serial.MatMulAccumInto(a, b, &want);
        if (with_bias) want = serial.AddRowBroadcast(want, bias);
        if (act == FusedAct::kRelu) want = serial.Relu(want);
        if (act == FusedAct::kSigmoid) want = serial.Sigmoid(want);
        if (act == FusedAct::kTanh) want = serial.Tanh(want);

        Matrix got_serial(s[0], s[2]);
        serial.FusedMatMulBiasActInto(a, b, with_bias ? &bias : nullptr, act,
                                      &got_serial);
        EXPECT_TRUE(BitEqual(want, got_serial));

        ForEachParallelBackend([&](const SerialBackend&,
                                   const ParallelBackend& parallel) {
          Matrix got_parallel(s[0], s[2]);
          parallel.FusedMatMulBiasActInto(a, b, with_bias ? &bias : nullptr,
                                          act, &got_parallel);
          EXPECT_TRUE(BitEqual(want, got_parallel));
        });
      }
    }
  }
}

TEST(FusedKernelTest, PlannedTransGemmsMatchReferenceKernels) {
  Rng rng(17);
  // Odd shapes walk every tail-tile width (32/16/8/4/1 float, 8/4/2/1
  // double); RandomMatrix's zeros exercise the av == 0 skip both kernels
  // share.
  const int shapes[][3] = {{1, 1, 1},   {2, 3, 2},    {7, 5, 9},
                           {16, 16, 16}, {33, 17, 21}, {64, 31, 33}};
  for (const auto& s : shapes) {
    SCOPED_TRACE(std::to_string(s[0]) + "x" + std::to_string(s[1]) + "x" +
                 std::to_string(s[2]));
    const SerialBackend& serial = SerialKernelBackend();
    // TransA: A is [k, m], grad-like B is [k, n].
    const Matrix a = RandomMatrix(s[0], s[1], &rng);
    const Matrix g = RandomMatrix(s[0], s[2], &rng);
    const Matrix want_ta = serial.MatMulTransA(a, g);
    EXPECT_TRUE(BitEqual(want_ta, serial.PlannedMatMulTransA(a, g)));
    // TransB: grad-like A is [m, n], B is [j, n].
    const Matrix gy = RandomMatrix(s[0], s[1], &rng);
    const Matrix b = RandomMatrix(s[2], s[1], &rng);
    const Matrix want_tb = serial.MatMulTransB(gy, b);
    EXPECT_TRUE(BitEqual(want_tb, serial.PlannedMatMulTransB(gy, b)));

    ForEachParallelBackend(
        [&](const SerialBackend&, const ParallelBackend& parallel) {
          EXPECT_TRUE(BitEqual(want_ta, parallel.PlannedMatMulTransA(a, g)));
          EXPECT_TRUE(BitEqual(want_tb, parallel.PlannedMatMulTransB(gy, b)));
        });
  }
}

TEST(FusedKernelTest, EltwiseChainMatchesComposedOps) {
  Rng rng(13);
  const Matrix a = RandomMatrix(9, 7, &rng);
  const Matrix s1 = RandomMatrix(9, 7, &rng);
  const Matrix s2 = RandomMatrix(9, 7, &rng);
  const Matrix s3 = RandomMatrix(9, 7, &rng);

  // One chain exercising every EltwiseOp, in an order whose intermediate
  // values stay finite.
  std::vector<EltwiseStep> steps;
  steps.push_back({EltwiseOp::kAddMat, false, 0.f, s1.data()});
  steps.push_back({EltwiseOp::kSubMat, false, 0.f, s2.data()});
  steps.push_back({EltwiseOp::kSubMat, true, 0.f, s3.data()});  // side - cur
  steps.push_back({EltwiseOp::kMulMat, false, 0.f, s1.data()});
  steps.push_back({EltwiseOp::kScale, false, 0.25f, nullptr});
  steps.push_back({EltwiseOp::kAddScalar, false, -0.5f, nullptr});
  steps.push_back({EltwiseOp::kTanh, false, 0.f, nullptr});
  steps.push_back({EltwiseOp::kOneMinus, false, 0.f, nullptr});
  steps.push_back({EltwiseOp::kSoftplus, false, 0.f, nullptr});
  steps.push_back({EltwiseOp::kSigmoid, false, 0.f, nullptr});
  steps.push_back({EltwiseOp::kExp, false, 0.f, nullptr});
  steps.push_back({EltwiseOp::kRelu, false, 0.f, nullptr});

  const SerialBackend& serial = SerialKernelBackend();
  // Composed reference via the separate eager kernels.
  Matrix want = serial.Add(a, s1);
  want = serial.Sub(want, s2);
  want = serial.Sub(s3, want);
  want = serial.Hadamard(want, s1);
  want = serial.Scale(want, 0.25f);
  want = serial.AddScalar(want, -0.5f);
  want = serial.Tanh(want);
  want = serial.Scale(serial.AddScalar(want, -1.f), -1.f);  // 1 - x
  want = serial.Softplus(want);
  want = serial.Sigmoid(want);
  want = serial.Exp(want);
  want = serial.Relu(want);

  Matrix got(9, 7);
  serial.FusedEltwiseInto(a, steps.data(), static_cast<int>(steps.size()),
                          &got);
  EXPECT_TRUE(BitEqual(want, got));

  ForEachParallelBackend([&](const SerialBackend&,
                             const ParallelBackend& parallel) {
    Matrix got_parallel(9, 7);
    parallel.FusedEltwiseInto(a, steps.data(),
                              static_cast<int>(steps.size()), &got_parallel);
    EXPECT_TRUE(BitEqual(want, got_parallel));
  });
}

// ---------------------------------------------------------------------------
// GraphProgram record/replay on hand-built tapes.

/// One "training step" of a tiny fusable tape: relu(w*x + b) summed, plus
/// an eltwise chain on the side. Returns the loss tensor after Backward.
struct TapeResult {
  float loss = 0.f;
  Matrix grad_w;
  Matrix grad_b;
};

TapeResult RunTinyTape(const Matrix& w_val, const Matrix& b_val,
                       const Matrix& x_val) {
  ag::Tensor w(w_val, /*requires_grad=*/true);
  ag::Tensor b(b_val, /*requires_grad=*/true);
  ag::Tensor x(x_val);
  ag::Tensor h = ag::Relu(ag::AddRowBroadcast(ag::MatMul(x, w), b));
  ag::Tensor g = ag::Sigmoid(ag::Scale(ag::Add(h, h), 0.5f));
  ag::Tensor loss = ag::Sum(ag::Hadamard(h, g));
  ag::Backward(loss);
  TapeResult out;
  out.loss = loss.value().data()[0];
  out.grad_w = w.grad();  // copies own heap storage — survive the arena
  out.grad_b = b.grad();
  return out;
}

TEST(GraphProgramTest, ReplayOfHandBuiltTapeIsBitwiseEager) {
  Rng rng(17);
  const Matrix w = RandomMatrix(6, 4, &rng);
  const Matrix b = RandomMatrix(1, 4, &rng);
  std::vector<Matrix> xs;
  for (int i = 0; i < 4; ++i) xs.push_back(RandomMatrix(5, 6, &rng));

  // Eager reference for every step.
  std::vector<TapeResult> want;
  for (const Matrix& x : xs) want.push_back(RunTinyTape(w, b, x));

  prog::GraphProgram program;
  {
    prog::GraphProgram::RecordScope record(&program);
    const TapeResult got = RunTinyTape(w, b, xs[0]);
    EXPECT_EQ(want[0].loss, got.loss);
  }
  ASSERT_TRUE(program.compiled());
  ASSERT_TRUE(program.usable());
  const prog::ProgramStats stats = program.stats();
  EXPECT_GT(stats.fusion_groups, 0);
  EXPECT_GT(stats.fused_ops, 0);
  EXPECT_GT(stats.arena_reserved_bytes, 0);

  for (size_t i = 1; i < xs.size(); ++i) {
    SCOPED_TRACE("replay step " + std::to_string(i));
    prog::GraphProgram::ReplayScope replay(&program);
    const TapeResult got = RunTinyTape(w, b, xs[i]);
    EXPECT_EQ(want[i].loss, got.loss);  // bitwise, not approximately
    EXPECT_TRUE(BitEqual(want[i].grad_w, got.grad_w));
    EXPECT_TRUE(BitEqual(want[i].grad_b, got.grad_b));
    EXPECT_TRUE(replay.replayed());
  }
  EXPECT_EQ(program.stats().replay_steps, 3);
  EXPECT_EQ(program.stats().fallback_steps, 0);
}

TEST(GraphProgramTest, DivergentReplayFallsBackToEagerAndRetires) {
  Rng rng(19);
  const Matrix a_val = RandomMatrix(4, 3, &rng);
  const Matrix b_val = RandomMatrix(4, 3, &rng);

  auto add_step = [&]() {
    ag::Tensor a(a_val, true);
    ag::Tensor b(b_val, true);
    ag::Tensor loss = ag::Sum(ag::Relu(ag::Add(a, b)));
    ag::Backward(loss);
    return loss.value().data()[0];
  };
  auto sub_step = [&](Matrix* grad_a) {
    ag::Tensor a(a_val, true);
    ag::Tensor b(b_val, true);
    ag::Tensor loss = ag::Sum(ag::Relu(ag::Sub(a, b)));
    ag::Backward(loss);
    *grad_a = a.grad();
    return loss.value().data()[0];
  };

  Matrix want_grad_a;
  const float want_sub = sub_step(&want_grad_a);

  prog::GraphProgram program;
  {
    prog::GraphProgram::RecordScope record(&program);
    (void)add_step();
  }
  ASSERT_TRUE(program.usable());

  // The live stream leads with Sub where Add was recorded: the program
  // must retire and let the step finish eagerly with exact results.
  Matrix got_grad_a;
  float got_sub = 0.f;
  {
    prog::GraphProgram::ReplayScope replay(&program);
    got_sub = sub_step(&got_grad_a);
    EXPECT_FALSE(replay.replayed());
  }
  EXPECT_EQ(want_sub, got_sub);
  EXPECT_TRUE(BitEqual(want_grad_a, got_grad_a));
  EXPECT_FALSE(program.usable());
  EXPECT_TRUE(program.stats().dead);
  EXPECT_EQ(program.stats().fallback_steps, 1);

  // A retired program's ReplayScope is a pass-through forever after.
  {
    prog::GraphProgram::ReplayScope replay(&program);
    Matrix again;
    EXPECT_EQ(want_sub, sub_step(&again));
    EXPECT_FALSE(replay.replayed());
  }
}

TEST(GraphProgramTest, SpMMPlanBackwardMatchesEager) {
  Rng rng(23);
  // 5x4 adjacency with an empty row and duplicate-column rows — the
  // gather plan must reproduce MultiplyTransposed's accumulation order.
  std::vector<std::vector<std::pair<int, float>>> rows(5);
  rows[0] = {{0, 0.5f}, {2, 1.5f}};
  rows[1] = {};
  rows[2] = {{1, -1.f}, {2, 0.25f}, {3, 2.f}};
  rows[3] = {{0, 1.f}};
  rows[4] = {{2, -0.75f}, {3, 0.125f}};
  auto adj = std::make_shared<const CsrMatrix>(5, 4, rows);

  auto spmm_step = [&](const Matrix& x_val, Matrix* grad_x) {
    ag::Tensor x(x_val, /*requires_grad=*/true);
    ag::Tensor y = ag::SpMM(adj, x);
    ag::Tensor loss = ag::Sum(ag::Hadamard(y, y));
    ag::Backward(loss);
    *grad_x = x.grad();
    return loss.value().data()[0];
  };

  std::vector<Matrix> xs;
  for (int i = 0; i < 3; ++i) xs.push_back(RandomMatrix(4, 6, &rng));

  std::vector<float> want_loss(xs.size());
  std::vector<Matrix> want_grad(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    want_loss[i] = spmm_step(xs[i], &want_grad[i]);
  }

  prog::GraphProgram program;
  {
    prog::GraphProgram::RecordScope record(&program);
    Matrix g;
    EXPECT_EQ(want_loss[0], spmm_step(xs[0], &g));
  }
  ASSERT_TRUE(program.usable());
  EXPECT_EQ(program.stats().spmm_plans, 1);

  for (size_t i = 1; i < xs.size(); ++i) {
    SCOPED_TRACE("replay step " + std::to_string(i));
    prog::GraphProgram::ReplayScope replay(&program);
    Matrix got_grad;
    EXPECT_EQ(want_loss[i], spmm_step(xs[i], &got_grad));
    EXPECT_TRUE(BitEqual(want_grad[i], got_grad));
    EXPECT_TRUE(replay.replayed());
  }
}

// ---------------------------------------------------------------------------
// End to end on a real model: fused trainer steps are bitwise-eager, and
// steady-state replay performs zero heap allocations for tensor storage.

TEST(GraphProgramTest, RealModelReplayIsBitwiseEagerAndAllocationFree) {
  NmcdrConfig model_config;
  model_config.hidden_dim = 8;
  model_config.mlp_hidden = {16};

  auto data = testing_util::TinyData();
  NmcdrModel eager(data->View(), model_config, /*seed=*/3, 1e-3f);
  NmcdrModel fused(data->View(), model_config, /*seed=*/3, 1e-3f);

  // Identical fixed batches for both twins, every step.
  auto probe = [](const DomainSplit& split) {
    LabeledBatch b;
    const int n = std::min<int>(16, static_cast<int>(split.train.size()));
    for (int i = 0; i < n; ++i) {
      b.users.push_back(split.train[i].user);
      b.items.push_back(split.train[i].item);
      b.labels.push_back(i % 2 == 0 ? 1.f : 0.f);
    }
    return b;
  };
  const LabeledBatch batch_z = probe(data->split_z());
  const LabeledBatch batch_zbar = probe(data->split_zbar());

  constexpr int kSteps = 8;
  std::vector<float> eager_loss;
  for (int i = 0; i < kSteps; ++i) {
    eager_loss.push_back(eager.TrainStep(batch_z, batch_zbar));
  }

  prog::GraphProgram program;
  {
    prog::GraphProgram::RecordScope record(&program);
    EXPECT_EQ(eager_loss[0], fused.TrainStep(batch_z, batch_zbar));
  }
  ASSERT_TRUE(program.compiled());
  const prog::ProgramStats compiled = program.stats();
  EXPECT_GT(compiled.instrs, 0);
  EXPECT_GT(compiled.fusion_groups, 0);
  EXPECT_GT(compiled.spmm_plans, 0);
  EXPECT_GT(compiled.arena_reserved_bytes, 0);

  int64_t heap_after_warmup = 0;
  for (int i = 1; i < kSteps; ++i) {
    SCOPED_TRACE("replay step " + std::to_string(i));
    // Two warm-up replays let every lazily sized buffer (optimizer state,
    // grad shapes, group bookkeeping capacity) reach steady state.
    if (i == 3) heap_after_warmup = Matrix::HeapAllocCount();
    prog::GraphProgram::ReplayScope replay(&program);
    EXPECT_EQ(eager_loss[i], fused.TrainStep(batch_z, batch_zbar));
    EXPECT_TRUE(replay.replayed());
  }
  // ISSUE-9 acceptance: zero per-op heap allocations for tensor storage in
  // the steady state — the heap counter must not move across the post-
  // warm-up replay steps, and the arena never outgrew its compile-time
  // reservation.
  EXPECT_EQ(Matrix::HeapAllocCount(), heap_after_warmup);
  const prog::ProgramStats final_stats = program.stats();
  EXPECT_EQ(final_stats.replay_steps, kSteps - 1);
  EXPECT_EQ(final_stats.fallback_steps, 0);
  EXPECT_EQ(final_stats.arena_growth_events, 0);
  EXPECT_LE(final_stats.arena_peak_bytes, final_stats.arena_reserved_bytes);
}

/// The trainer honors TrainConfig::fusion: a fused run and an eager run of
/// the same model land on the bit-identical final loss.
TEST(GraphProgramTest, TrainerFusionToggleIsBitwiseNeutral) {
  NmcdrConfig model_config;
  model_config.hidden_dim = 8;
  model_config.mlp_hidden = {16};

  auto run = [&](bool fusion) {
    auto data = testing_util::TinyData();
    NmcdrModel model(data->View(), model_config, /*seed=*/3, 1e-3f);
    TrainConfig config;
    config.epochs = 2;
    config.batch_size = 64;
    config.fusion = fusion;
    Trainer trainer(data->View(), config);
    return trainer.Train(&model).final_loss;
  };

  EXPECT_EQ(run(/*fusion=*/true), run(/*fusion=*/false));
}

}  // namespace
}  // namespace nmcdr
