#include "data/loader.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace nmcdr {
namespace {

class LoaderTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }
};

TEST_F(LoaderTest, RoundTripPreservesScenario) {
  SyntheticScenarioSpec spec;
  spec.name = "roundtrip";
  spec.z = {"A", 40, 20, 3.0, 1.0};
  spec.zbar = {"B", 30, 15, 2.0, 1.0};
  spec.num_overlapping = 10;
  spec.seed = 3;
  const CdrScenario original = GenerateScenario(spec);

  const std::string path = TempPath("scenario.tsv");
  ASSERT_TRUE(SaveScenario(original, path));

  CdrScenario loaded;
  ASSERT_TRUE(LoadScenario(path, &loaded));
  EXPECT_EQ(loaded.name, original.name);
  EXPECT_EQ(loaded.z.num_users, original.z.num_users);
  EXPECT_EQ(loaded.z.num_items, original.z.num_items);
  ASSERT_EQ(loaded.z.interactions.size(), original.z.interactions.size());
  for (size_t i = 0; i < loaded.z.interactions.size(); ++i) {
    EXPECT_EQ(loaded.z.interactions[i], original.z.interactions[i]);
  }
  EXPECT_EQ(loaded.z_to_zbar, original.z_to_zbar);
  EXPECT_EQ(loaded.zbar_to_z, original.zbar_to_z);
}

TEST_F(LoaderTest, LoadFailsOnMissingFile) {
  CdrScenario scenario;
  EXPECT_FALSE(LoadScenario(TempPath("does_not_exist.tsv"), &scenario));
}

TEST_F(LoaderTest, LoadFailsOnBadMagic) {
  const std::string path = TempPath("bad_magic.tsv");
  std::ofstream(path) << "NOT_A_SCENARIO\tfoo\n";
  CdrScenario scenario;
  EXPECT_FALSE(LoadScenario(path, &scenario));
}

TEST_F(LoaderTest, LoadFailsOnTruncatedFile) {
  SyntheticScenarioSpec spec;
  spec.z = {"A", 10, 5, 2.0, 1.0};
  spec.zbar = {"B", 10, 5, 2.0, 1.0};
  spec.num_overlapping = 2;
  const CdrScenario original = GenerateScenario(spec);
  const std::string path = TempPath("truncated.tsv");
  ASSERT_TRUE(SaveScenario(original, path));
  // Truncate to half.
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  std::ofstream(path) << contents.substr(0, contents.size() / 2);
  CdrScenario scenario;
  EXPECT_FALSE(LoadScenario(path, &scenario));
}

TEST_F(LoaderTest, SaveFailsOnUnwritablePath) {
  SyntheticScenarioSpec spec;
  spec.z = {"A", 5, 5, 2.0, 1.0};
  spec.zbar = {"B", 5, 5, 2.0, 1.0};
  spec.num_overlapping = 1;
  EXPECT_FALSE(SaveScenario(GenerateScenario(spec),
                            "/nonexistent_dir/file.tsv"));
}

}  // namespace
}  // namespace nmcdr
