// Finite-difference verification of every autograd op's backward pass,
// driven by the auto-enumerating op suite (src/verify/op_suite.h): the
// suite table is the single registration point for an op's gradient
// coverage, and the analyzer cross-checks it against the shape-rule
// registry, so a new op cannot ship without appearing here.

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/meta.h"
#include "verify/op_suite.h"

namespace nmcdr {
namespace verify {
namespace {

using ag::Tensor;

/// One gtest case per suite entry, so failures name the offending op
/// cluster directly.
class OpSuiteGradCheck : public ::testing::TestWithParam<size_t> {};

TEST_P(OpSuiteGradCheck, FiniteDifferencesMatchBackward) {
  const OpCase& c = OpSuite()[GetParam()];
  SCOPED_TRACE(c.name);
  for (const GradCheckIssue& issue : RunGradCheck(c)) {
    ADD_FAILURE() << issue.case_name << ": " << issue.detail;
  }
}

std::string CaseName(const ::testing::TestParamInfo<size_t>& info) {
  return OpSuite()[info.param].name;
}

INSTANTIATE_TEST_SUITE_P(AllOps, OpSuiteGradCheck,
                         ::testing::Range<size_t>(0, OpSuite().size()),
                         CaseName);

// Every backward pass must verify under BOTH kernel backends — the
// finite-difference machinery assumes nothing about the backend beyond
// determinism, and the backends are bit-exact by contract, so a failure
// here is a backend bug rather than a gradient bug.

TEST(OpSuiteBackends, GradChecksPassUnderSerialBackend) {
  for (const GradCheckIssue& issue :
       RunAllGradChecks(&SerialKernelBackend())) {
    ADD_FAILURE() << issue.case_name << ": " << issue.detail;
  }
}

TEST(OpSuiteBackends, GradChecksPassUnderParallelBackend) {
  for (const GradCheckIssue& issue :
       RunAllGradChecks(&ParallelKernelBackend())) {
    ADD_FAILURE() << issue.case_name << ": " << issue.detail;
  }
}

// The suite must cover every op the shape-rule registry knows, and vice
// versa — the two tables enumerate the same op set by construction.
TEST(OpSuiteCoverage, SuiteAndShapeRulesEnumerateTheSameOps) {
  const std::vector<std::string> rules = ag::RegisteredShapeRuleOps();
  const std::vector<std::string> checked = GradCheckedOps();
  EXPECT_EQ(rules, checked);
}

// Behavioural invariants of the tape that the per-op checks don't touch.

TEST(GradCheck, GradientAccumulatesWhenInputReused) {
  // y = x + x -> dy/dx = 2.
  Tensor x{Matrix::FromRows({{3.f}}), true};
  Tensor loss = Sum(Add(x, x));
  ag::Backward(loss);
  EXPECT_NEAR(x.grad().At(0, 0), 2.f, 1e-6f);
}

TEST(GradCheck, NoGradGuardProducesLeaf) {
  Tensor x{Matrix::FromRows({{1.f}}), true};
  ag::NoGradGuard guard;
  Tensor y = Scale(x, 2.f);
  EXPECT_FALSE(y.requires_grad());
}

TEST(GradCheck, DetachStopsGradient) {
  Tensor x{Matrix::FromRows({{2.f}}), true};
  Tensor y = Scale(x.Detach(), 3.f);
  EXPECT_FALSE(y.requires_grad());
}

}  // namespace
}  // namespace verify
}  // namespace nmcdr
