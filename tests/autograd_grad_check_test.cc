// Finite-difference verification of every autograd op's backward pass.
// Each op's output is reduced to a scalar through a fixed random weighting,
// gradients are computed analytically via Backward(), and every input
// coordinate is perturbed centrally to compare.

#include <cmath>
#include <functional>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"

namespace nmcdr {
namespace ag {
namespace {

using BuildFn = std::function<Tensor(const std::vector<Tensor>&)>;

/// Rebuilds the graph from scratch and returns the weighted-sum loss value.
float LossValue(const std::vector<Matrix>& values, const BuildFn& build,
                const Matrix& mix_weights) {
  std::vector<Tensor> inputs;
  inputs.reserve(values.size());
  for (const Matrix& v : values) inputs.emplace_back(v, /*requires_grad=*/true);
  Tensor out = build(inputs);
  Tensor loss = Sum(Hadamard(out, Tensor(mix_weights)));
  return loss.value().At(0, 0);
}

/// Central-difference gradient check on every entry of every input.
void CheckGradients(std::vector<Matrix> values, const BuildFn& build,
                    float eps = 1e-2f, float tol = 8e-3f) {
  // Build once to learn the output shape, then fix the mixing weights.
  std::vector<Tensor> probe;
  for (const Matrix& v : values) probe.emplace_back(v, true);
  Tensor probe_out = build(probe);
  Rng rng(99);
  Matrix mix = Matrix::Gaussian(probe_out.rows(), probe_out.cols(), &rng);

  // Analytic gradients.
  std::vector<Tensor> inputs;
  for (const Matrix& v : values) inputs.emplace_back(v, true);
  Tensor out = build(inputs);
  Tensor loss = Sum(Hadamard(out, Tensor(mix)));
  Backward(loss);

  for (size_t i = 0; i < values.size(); ++i) {
    const Matrix& grad = inputs[i].grad();
    ASSERT_FALSE(grad.empty()) << "input " << i << " received no gradient";
    for (int e = 0; e < values[i].size(); ++e) {
      std::vector<Matrix> plus = values, minus = values;
      plus[i].data()[e] += eps;
      minus[i].data()[e] -= eps;
      const float numeric =
          (LossValue(plus, build, mix) - LossValue(minus, build, mix)) /
          (2.f * eps);
      const float analytic = grad.data()[e];
      const float scale = std::max({1.f, std::fabs(numeric),
                                    std::fabs(analytic)});
      EXPECT_NEAR(analytic / scale, numeric / scale, tol)
          << "input " << i << " entry " << e;
    }
  }
}

Matrix Rand(int r, int c, uint64_t seed, float scale = 1.f) {
  Rng rng(seed);
  return Matrix::Gaussian(r, c, &rng, 0.f, scale);
}

TEST(GradCheck, MatMul) {
  CheckGradients({Rand(3, 4, 1), Rand(4, 2, 2)}, [](const auto& in) {
    return MatMul(in[0], in[1]);
  });
}

TEST(GradCheck, AddSubHadamard) {
  CheckGradients({Rand(3, 3, 1), Rand(3, 3, 2)}, [](const auto& in) {
    return Hadamard(Sub(Add(in[0], in[1]), in[1]), in[1]);
  });
}

TEST(GradCheck, AddRowBroadcast) {
  CheckGradients({Rand(4, 3, 1), Rand(1, 3, 2)}, [](const auto& in) {
    return AddRowBroadcast(in[0], in[1]);
  });
}

TEST(GradCheck, ScaleAddScalarOneMinus) {
  CheckGradients({Rand(2, 3, 1)}, [](const auto& in) {
    return OneMinus(AddScalar(Scale(in[0], -1.7f), 0.4f));
  });
}

TEST(GradCheck, ReluAwayFromKink) {
  // Shift inputs away from 0 so finite differences are valid.
  Matrix m = Rand(3, 3, 5);
  for (int i = 0; i < m.size(); ++i) {
    if (std::fabs(m.data()[i]) < 0.1f) m.data()[i] = 0.5f;
  }
  CheckGradients({m}, [](const auto& in) { return Relu(in[0]); });
}

TEST(GradCheck, SigmoidTanhSoftplus) {
  CheckGradients({Rand(2, 4, 7)}, [](const auto& in) {
    return Softplus(Tanh(Sigmoid(in[0])));
  });
}

TEST(GradCheck, SoftmaxRows) {
  CheckGradients({Rand(3, 5, 9)},
                 [](const auto& in) { return SoftmaxRows(in[0]); });
}

TEST(GradCheck, ConcatCols) {
  CheckGradients({Rand(3, 2, 1), Rand(3, 4, 2)}, [](const auto& in) {
    return ConcatCols(in[0], in[1]);
  });
}

TEST(GradCheck, SliceCols) {
  CheckGradients({Rand(3, 6, 1)},
                 [](const auto& in) { return SliceCols(in[0], 2, 3); });
}

TEST(GradCheck, EmbeddingWithRepeatedIds) {
  CheckGradients({Rand(5, 3, 1)}, [](const auto& in) {
    return Embedding(in[0], {4, 0, 4, 2});
  });
}

TEST(GradCheck, Transpose) {
  CheckGradients({Rand(3, 4, 2)}, [](const auto& in) {
    return MatMul(Transpose(in[0]), in[0]);
  });
}

TEST(GradCheck, SegmentMeanRows) {
  auto lists = std::make_shared<std::vector<std::vector<int>>>(
      std::vector<std::vector<int>>{{0, 2}, {}, {1, 1, 3}});
  CheckGradients({Rand(4, 3, 3)}, [lists](const auto& in) {
    return SegmentMeanRows(in[0], lists);
  });
}

TEST(GradCheck, SpMM) {
  auto csr = std::make_shared<CsrMatrix>(
      3, 4,
      std::vector<std::vector<std::pair<int, float>>>{
          {{0, 0.5f}, {2, 0.5f}}, {}, {{1, 1.f}, {3, -2.f}}});
  CheckGradients({Rand(4, 3, 4)},
                 [csr](const auto& in) { return SpMM(csr, in[0]); });
}

TEST(GradCheck, Reductions) {
  CheckGradients({Rand(3, 3, 5)}, [](const auto& in) {
    return ConcatCols(Sum(in[0]), ConcatCols(Mean(in[0]), SumSquares(in[0])));
  });
}

TEST(GradCheck, ColMeanAndTileRows) {
  CheckGradients({Rand(4, 3, 6)}, [](const auto& in) {
    return TileRows(ColMean(in[0]), 5);
  });
}

TEST(GradCheck, RowDot) {
  CheckGradients({Rand(4, 3, 1), Rand(4, 3, 2)}, [](const auto& in) {
    return RowDot(in[0], in[1]);
  });
}

TEST(GradCheck, ScaleRows) {
  CheckGradients({Rand(4, 3, 1), Rand(4, 1, 2)}, [](const auto& in) {
    return ScaleRows(in[0], in[1]);
  });
}

TEST(GradCheck, BceWithLogits) {
  const std::vector<float> labels = {1.f, 0.f, 1.f, 0.f};
  CheckGradients({Rand(4, 1, 8)}, [labels](const auto& in) {
    return BceWithLogits(in[0], labels);
  });
}

TEST(GradCheck, BprLoss) {
  CheckGradients({Rand(4, 1, 1), Rand(4, 1, 2)}, [](const auto& in) {
    return BprLoss(in[0], in[1]);
  });
}

TEST(GradCheck, NeighborAttention) {
  auto cand = std::make_shared<std::vector<std::vector<int>>>(
      std::vector<std::vector<int>>{{0, 1, 3}, {}, {2, 4}});
  CheckGradients(
      {Rand(3, 4, 1, 0.5f), Rand(5, 4, 2, 0.5f)},
      [cand](const auto& in) { return NeighborAttention(in[0], in[1], cand); },
      /*eps=*/5e-3f, /*tol=*/1.5e-2f);
}

TEST(GradCheck, ComposedGatingBlock) {
  // The Eq. 10/16 gating pattern end-to-end.
  CheckGradients({Rand(3, 4, 1, 0.5f), Rand(3, 4, 2, 0.5f),
                  Rand(4, 4, 3, 0.5f), Rand(4, 4, 4, 0.5f)},
                 [](const auto& in) {
                   Tensor gate = Sigmoid(
                       Add(MatMul(in[0], in[2]), MatMul(in[1], in[3])));
                   return Tanh(Add(Hadamard(OneMinus(gate), in[0]),
                                   Hadamard(gate, in[1])));
                 });
}

TEST(GradCheck, GradientAccumulatesWhenInputReused) {
  // y = x + x -> dy/dx = 2.
  Tensor x{Matrix::FromRows({{3.f}}), true};
  Tensor loss = Sum(Add(x, x));
  Backward(loss);
  EXPECT_NEAR(x.grad().At(0, 0), 2.f, 1e-6f);
}

TEST(GradCheck, NoGradGuardProducesLeaf) {
  Tensor x{Matrix::FromRows({{1.f}}), true};
  NoGradGuard guard;
  Tensor y = Scale(x, 2.f);
  EXPECT_FALSE(y.requires_grad());
}

TEST(GradCheck, DetachStopsGradient) {
  Tensor x{Matrix::FromRows({{2.f}}), true};
  Tensor y = Scale(x.Detach(), 3.f);
  EXPECT_FALSE(y.requires_grad());
}

}  // namespace
}  // namespace ag
}  // namespace nmcdr
