#include "bench/bench_util.h"

#include <cstdlib>
#include <fstream>

#include <gtest/gtest.h>

namespace nmcdr {
namespace bench {
namespace {

TEST(BenchUtilTest, TrainConfigScalesWithBenchScale) {
  const TrainConfig smoke = DefaultTrainConfig(BenchScale::kSmoke);
  const TrainConfig small = DefaultTrainConfig(BenchScale::kSmall);
  const TrainConfig full = DefaultTrainConfig(BenchScale::kFull);
  EXPECT_LT(smoke.min_total_steps, small.min_total_steps);
  EXPECT_LT(small.min_total_steps, full.min_total_steps);
  EXPECT_EQ(small.eval_every, -1);  // auto validation checkpoints
  EXPECT_GT(small.early_stop_patience, 0);
}

TEST(BenchUtilTest, ModelListDefaultsToPaperOrder) {
  unsetenv("NMCDR_BENCH_MODELS");
  const std::vector<std::string> models = BenchModelList();
  ASSERT_EQ(models.size(), 12u);
  EXPECT_EQ(models.front(), "LR");
  EXPECT_EQ(models.back(), "NMCDR");
}

TEST(BenchUtilTest, ModelListEnvOverride) {
  setenv("NMCDR_BENCH_MODELS", "NMCDR,LR", 1);
  EXPECT_EQ(BenchModelList(), (std::vector<std::string>{"NMCDR", "LR"}));
  setenv("NMCDR_BENCH_MODELS", "", 1);
  EXPECT_EQ(BenchModelList().size(), 12u);  // empty -> default
  unsetenv("NMCDR_BENCH_MODELS");
}

TEST(BenchUtilTest, CsvRoundTripOfCells) {
  std::vector<CellResult> cells(2);
  cells[0].model = "NMCDR";
  cells[0].overlap_ratio = 0.5;
  cells[0].ndcg_z = 11.26;
  cells[1].model = "LR";
  cells[1].overlap_ratio = 0.5;
  const std::string path = ::testing::TempDir() + "/cells.csv";
  WriteCellsCsv(path, cells, "Test Table");
  std::ifstream in(path);
  std::string header, row1;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, row1));
  EXPECT_NE(header.find("ndcg_z"), std::string::npos);
  EXPECT_NE(row1.find("NMCDR"), std::string::npos);
  EXPECT_NE(row1.find("11.26"), std::string::npos);
}

TEST(BenchUtilTest, PrintOverlapTableDoesNotCrashOnSparseCells) {
  // Missing (model, ratio) combinations render as zeros rather than
  // crashing — guards the bench against partially filled grids.
  std::vector<CellResult> cells(1);
  cells[0].model = "NMCDR";
  cells[0].overlap_ratio = 0.1;
  cells[0].ndcg_z = 5.0;
  PrintOverlapTable("partial", cells, {0.1, 0.5}, {"NMCDR", "LR"}, true);
  PrintOverlapTable("partial", cells, {0.1, 0.5}, {"NMCDR", "LR"}, false);
}

}  // namespace
}  // namespace bench
}  // namespace nmcdr
