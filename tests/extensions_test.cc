// Tests for the optional extensions: the GAT message-mapping kernel (the
// swap the paper describes under Eq. 3), dynamic companion weights (the
// "dynamically computed weight" option of Eq. 22), and the MRR metric.

#include <cmath>

#include <gtest/gtest.h>

#include "core/nmcdr_model.h"
#include "eval/metrics.h"
#include "tests/test_util.h"

namespace nmcdr {
namespace {

using testing_util::TinyData;

NmcdrConfig TinyConfig() {
  NmcdrConfig config;
  config.hidden_dim = 8;
  config.mlp_hidden = {16};
  return config;
}

TEST(GatKernelTest, ModelTrainsAndScores) {
  auto data = TinyData();
  NmcdrConfig config = TinyConfig();
  config.gnn_kernel = GnnKernel::kGat;
  NmcdrModel model(data->View(), config, 1, 5e-3f);
  const auto [first, last] =
      testing_util::TrainLossTrend(&model, *data, 60);
  EXPECT_TRUE(std::isfinite(last));
  EXPECT_LT(last, first);
  const std::vector<float> scores =
      model.Score(DomainSide::kZ, {0, 1}, {0, 1});
  for (float s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST(GatKernelTest, KernelsProduceDifferentRepresentations) {
  auto data = TinyData();
  NmcdrConfig vanilla = TinyConfig();
  NmcdrConfig gat = TinyConfig();
  gat.gnn_kernel = GnnKernel::kGat;
  NmcdrModel model_vanilla(data->View(), vanilla, 1, 1e-3f);
  NmcdrModel model_gat(data->View(), gat, 1, 1e-3f);
  // Same seed => identical initial parameters; the kernels must still
  // produce different encoder outputs on graph-connected users.
  const Matrix reps_vanilla =
      model_vanilla.ComputeStageReps(DomainSide::kZ).g1;
  const Matrix reps_gat = model_gat.ComputeStageReps(DomainSide::kZ).g1;
  EXPECT_FALSE(AllClose(reps_vanilla, reps_gat, 1e-5f));
}

TEST(GatKernelTest, AttentionIgnoresAdjacencyNormButUsesNeighbors) {
  // A user with exactly one neighbour gets that item as its full
  // attention mass under both kernels; a multi-neighbour user generally
  // differs because attention re-weights. Indirect check: both kernels
  // agree in expectation of finiteness; direct equality is checked only
  // for the single-neighbour structure.
  auto data = TinyData();
  NmcdrConfig gat = TinyConfig();
  gat.gnn_kernel = GnnKernel::kGat;
  gat.hge_layers = 1;
  NmcdrModel model(data->View(), gat, 3, 1e-3f);
  const Matrix reps = model.ComputeStageReps(DomainSide::kZ).g1;
  for (int i = 0; i < reps.size(); ++i) {
    EXPECT_TRUE(std::isfinite(reps.data()[i]));
  }
}

TEST(DynamicCompanionTest, RegistersLogVarsAndTrains) {
  auto data = TinyData();
  NmcdrConfig config = TinyConfig();
  config.dynamic_companion_weights = true;
  NmcdrModel model(data->View(), config, 1, 5e-3f);
  ASSERT_TRUE(model.params()->Contains("companion_log_vars"));
  const Matrix before = model.params()->Get("companion_log_vars").value();
  const auto [first, last] =
      testing_util::TrainLossTrend(&model, *data, 50);
  EXPECT_TRUE(std::isfinite(last));
  (void)first;
  // The log-variances must have moved: they receive gradients.
  const Matrix after = model.params()->Get("companion_log_vars").value();
  EXPECT_FALSE(AllClose(before, after, 1e-6f));
}

TEST(DynamicCompanionTest, DisabledByDefault) {
  auto data = TinyData();
  NmcdrModel model(data->View(), TinyConfig(), 1, 1e-3f);
  EXPECT_FALSE(model.params()->Contains("companion_log_vars"));
}

TEST(MrrTest, HandValues) {
  EXPECT_DOUBLE_EQ(ReciprocalRank(1), 1.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank(4), 0.25);
}

TEST(MrrTest, AggregatedInRankingMetrics) {
  RankingMetrics m;
  m.Add(1, 10);
  m.Add(2, 10);
  m.Finalize();
  EXPECT_DOUBLE_EQ(m.mrr, 0.75);
}

TEST(MrrTest, BoundedByHitRateAtLargeK) {
  // MRR <= HR@K when K >= worst rank seen.
  RankingMetrics m;
  for (int rank : {1, 3, 5, 9}) m.Add(rank, 10);
  m.Finalize();
  EXPECT_LE(m.mrr, m.hr + 1e-12);
}

}  // namespace
}  // namespace nmcdr
