#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"
#include "util/csv_writer.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace nmcdr {
namespace {

TEST(TablePrinterTest, AlignsColumnsAndCounts) {
  TablePrinter table;
  table.SetHeader({"Method", "NDCG"});
  table.AddRow({"NMCDR", "11.26"});
  table.AddRow({"LR", "5.25"});
  EXPECT_EQ(table.NumRows(), 2);
  const std::string out = table.ToString();
  EXPECT_NE(out.find("NMCDR"), std::string::npos);
  EXPECT_NE(out.find("| Method"), std::string::npos);
  // All lines same width.
  std::istringstream iss(out);
  std::string line;
  size_t width = 0;
  while (std::getline(iss, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter table;
  table.SetHeader({"A", "B", "C"});
  table.AddRow({"x"});
  EXPECT_NE(table.ToString().find("x"), std::string::npos);
}

TEST(TablePrinterTest, SeparatorRendered) {
  TablePrinter table;
  table.SetHeader({"A"});
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  // Header sep + top + bottom + middle = 4 separator lines.
  const std::string out = table.ToString();
  int seps = 0;
  std::istringstream iss(out);
  std::string line;
  while (std::getline(iss, line)) {
    if (!line.empty() && line[0] == '+') ++seps;
  }
  EXPECT_EQ(seps, 4);
}

TEST(TablePrinterTest, TrailingSeparatorNotDuplicated) {
  TablePrinter table;
  table.SetHeader({"A"});
  table.AddRow({"1"});
  table.AddSeparator();  // trailing: must not double the closing border
  const std::string out = table.ToString();
  EXPECT_EQ(out.find("+\n+"), std::string::npos);
}

TEST(TablePrinterDeathTest, RowBeforeHeaderAborts) {
  TablePrinter table;
  EXPECT_DEATH(table.AddRow({"x"}), "CHECK");
}

TEST(FormatFloatTest, Precision) {
  EXPECT_EQ(FormatFloat(9.2561, 2), "9.26");
  EXPECT_EQ(FormatFloat(-1.0, 0), "-1");
  EXPECT_EQ(FormatFloat(0.5, 3), "0.500");
}

TEST(CsvWriterTest, QuotesSpecialCharacters) {
  const std::string path = ::testing::TempDir() + "/test.csv";
  {
    CsvWriter csv(path);
    ASSERT_TRUE(csv.ok());
    csv.WriteRow({"plain", "with,comma", "with\"quote"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "plain,\"with,comma\",\"with\"\"quote\"");
}

TEST(CsvWriterTest, FailsGracefullyOnBadPath) {
  CsvWriter csv("/nonexistent_dir/x.csv");
  EXPECT_FALSE(csv.ok());
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  double sink_val = 0;
  volatile double* sink = &sink_val;
  for (int i = 0; i < 100000; ++i) *sink = *sink + i;
  EXPECT_GT(watch.ElapsedSeconds(), 0.0);
  EXPECT_NEAR(watch.ElapsedMillis(), watch.ElapsedSeconds() * 1e3,
              watch.ElapsedMillis() * 0.5 + 1.0);
  const double before = watch.ElapsedSeconds();
  watch.Restart();
  EXPECT_LE(watch.ElapsedSeconds(), before + 1.0);
}

TEST(LoggingTest, LevelFilteringAndRestore) {
  const LogLevel original = MinLogLevel();
  SetMinLogLevel(LogLevel::kError);
  EXPECT_EQ(MinLogLevel(), LogLevel::kError);
  LOG_INFO << "suppressed";   // must not crash
  LOG_ERROR << "emitted";     // must not crash
  SetMinLogLevel(original);
}

TEST(CheckMacrosTest, PassingChecksAreSilent) {
  NMCDR_CHECK(true);
  NMCDR_CHECK_EQ(1, 1);
  NMCDR_CHECK_LT(1, 2);
  NMCDR_CHECK_GE(2, 2);
}

TEST(CheckMacrosDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(NMCDR_CHECK(false), "CHECK");
  EXPECT_DEATH(NMCDR_CHECK_EQ(1, 2), "1 vs. 2");
}

}  // namespace
}  // namespace nmcdr
