#include "eval/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace nmcdr {
namespace {

TEST(RankTest, TopWhenNoNegativeBeats) {
  EXPECT_EQ(RankOfPositive(1.0f, {0.5f, 0.2f, 0.9f}), 1);
}

TEST(RankTest, CountsStrictlyHigher) {
  EXPECT_EQ(RankOfPositive(0.5f, {0.6f, 0.4f, 0.7f}), 3);
}

TEST(RankTest, TiesCountAgainstPositive) {
  // Conservative convention: equal scores push the positive down.
  EXPECT_EQ(RankOfPositive(0.5f, {0.5f, 0.5f}), 3);
}

TEST(RankTest, EmptyNegativesIsRankOne) {
  EXPECT_EQ(RankOfPositive(0.5f, {}), 1);
}

TEST(HitRateTest, ThresholdAtK) {
  EXPECT_DOUBLE_EQ(HitRateAtK(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(HitRateAtK(11, 10), 0.0);
  EXPECT_DOUBLE_EQ(HitRateAtK(1, 10), 1.0);
}

TEST(NdcgTest, HandValues) {
  EXPECT_DOUBLE_EQ(NdcgAtK(1, 10), 1.0);
  EXPECT_NEAR(NdcgAtK(2, 10), 1.0 / std::log2(3.0), 1e-12);
  EXPECT_NEAR(NdcgAtK(10, 10), 1.0 / std::log2(11.0), 1e-12);
  EXPECT_DOUBLE_EQ(NdcgAtK(11, 10), 0.0);
}

TEST(NdcgTest, MonotoneDecreasingInRank) {
  for (int rank = 1; rank < 10; ++rank) {
    EXPECT_GT(NdcgAtK(rank, 10), NdcgAtK(rank + 1, 10));
  }
}

TEST(RankingMetricsTest, AggregationAndFinalize) {
  RankingMetrics m;
  m.Add(1, 10);   // hr 1, ndcg 1
  m.Add(11, 10);  // hr 0, ndcg 0
  m.Finalize();
  EXPECT_EQ(m.num_users, 2);
  EXPECT_DOUBLE_EQ(m.hr, 0.5);
  EXPECT_DOUBLE_EQ(m.ndcg, 0.5);
}

TEST(RankingMetricsTest, FinalizeOnEmptyIsSafe) {
  RankingMetrics m;
  m.Finalize();
  EXPECT_EQ(m.num_users, 0);
  EXPECT_DOUBLE_EQ(m.hr, 0.0);
}

TEST(MetricsDeathTest, InvalidRankAborts) {
  EXPECT_DEATH(HitRateAtK(0, 10), "CHECK");
  EXPECT_DEATH(NdcgAtK(0, 10), "CHECK");
}

}  // namespace
}  // namespace nmcdr
