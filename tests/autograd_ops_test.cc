// Forward-value and graph-bookkeeping tests for the autograd ops (the
// backward passes are covered by autograd_grad_check_test.cc).

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "autograd/ops.h"

namespace nmcdr {
namespace ag {
namespace {

Tensor Leaf(std::vector<std::vector<float>> rows, bool requires_grad = true) {
  return Tensor(Matrix::FromRows(std::move(rows)), requires_grad);
}

TEST(AutogradOpsTest, MatMulValue) {
  Tensor c = MatMul(Leaf({{1, 2}}), Leaf({{3}, {4}}));
  EXPECT_EQ(c.value().At(0, 0), 11.f);
}

TEST(AutogradOpsTest, ArithmeticValues) {
  Tensor a = Leaf({{1, -2}});
  Tensor b = Leaf({{3, 5}});
  EXPECT_TRUE(AllClose(Add(a, b).value(), Matrix::FromRows({{4, 3}})));
  EXPECT_TRUE(AllClose(Sub(a, b).value(), Matrix::FromRows({{-2, -7}})));
  EXPECT_TRUE(AllClose(Hadamard(a, b).value(), Matrix::FromRows({{3, -10}})));
  EXPECT_TRUE(AllClose(Scale(a, 2.f).value(), Matrix::FromRows({{2, -4}})));
  EXPECT_TRUE(
      AllClose(AddScalar(a, 1.f).value(), Matrix::FromRows({{2, -1}})));
  EXPECT_TRUE(AllClose(OneMinus(a).value(), Matrix::FromRows({{0, 3}})));
}

TEST(AutogradOpsTest, NonlinearityValues) {
  Tensor a = Leaf({{0.f, 1.f}});
  EXPECT_NEAR(Sigmoid(a).value().At(0, 0), 0.5f, 1e-6f);
  EXPECT_NEAR(Tanh(a).value().At(0, 1), std::tanh(1.f), 1e-6f);
  EXPECT_NEAR(Softplus(a).value().At(0, 0), std::log(2.f), 1e-6f);
  EXPECT_NEAR(Exp(a).value().At(0, 1), std::exp(1.f), 1e-5f);
  EXPECT_EQ(Relu(Leaf({{-3.f, 3.f}})).value().At(0, 0), 0.f);
}

TEST(AutogradOpsTest, ReductionValues) {
  Tensor a = Leaf({{1, 2}, {3, 4}});
  EXPECT_EQ(Sum(a).value().At(0, 0), 10.f);
  EXPECT_EQ(Mean(a).value().At(0, 0), 2.5f);
  EXPECT_EQ(SumSquares(a).value().At(0, 0), 30.f);
  EXPECT_TRUE(AllClose(ColMean(a).value(), Matrix::FromRows({{2, 3}})));
}

TEST(AutogradOpsTest, ShapeOps) {
  Tensor a = Leaf({{1, 2, 3}});
  EXPECT_TRUE(AllClose(TileRows(a, 2).value(),
                       Matrix::FromRows({{1, 2, 3}, {1, 2, 3}})));
  EXPECT_TRUE(AllClose(SliceCols(a, 1, 2).value(),
                       Matrix::FromRows({{2, 3}})));
  EXPECT_TRUE(AllClose(Transpose(a).value(),
                       Matrix::FromRows({{1}, {2}, {3}})));
  Tensor b = Leaf({{9}});
  EXPECT_TRUE(AllClose(ConcatCols(b, Leaf({{8, 7}})).value(),
                       Matrix::FromRows({{9, 8, 7}})));
}

TEST(AutogradOpsTest, EmbeddingAndScaleRows) {
  Tensor table = Leaf({{1, 1}, {2, 2}, {3, 3}});
  EXPECT_TRUE(AllClose(Embedding(table, {2, 2, 0}).value(),
                       Matrix::FromRows({{3, 3}, {3, 3}, {1, 1}})));
  Tensor rows = Leaf({{1, 2}, {3, 4}});
  Tensor scales = Leaf({{2}, {0}});
  EXPECT_TRUE(AllClose(ScaleRows(rows, scales).value(),
                       Matrix::FromRows({{2, 4}, {0, 0}})));
}

TEST(AutogradOpsTest, BceValueMatchesClosedForm) {
  // z=0, y=1: loss = log(2). z=0, y=0: loss = log(2).
  Tensor logits = Leaf({{0.f}, {0.f}});
  const float loss = BceWithLogits(logits, {1.f, 0.f}).value().At(0, 0);
  EXPECT_NEAR(loss, std::log(2.f), 1e-6f);
}

TEST(AutogradOpsTest, BceExtremeLogitsStable) {
  Tensor logits = Leaf({{80.f}, {-80.f}});
  const float good = BceWithLogits(logits, {1.f, 0.f}).value().At(0, 0);
  EXPECT_NEAR(good, 0.f, 1e-5f);
  const float bad =
      BceWithLogits(Leaf({{80.f}, {-80.f}}), {0.f, 1.f}).value().At(0, 0);
  EXPECT_NEAR(bad, 80.f, 1e-3f);
  EXPECT_FALSE(std::isnan(bad));
}

TEST(AutogradOpsTest, BprValue) {
  // pos - neg = 1 -> loss = softplus(-1) = log(1 + e^-1).
  const float loss =
      BprLoss(Leaf({{2.f}}), Leaf({{1.f}})).value().At(0, 0);
  EXPECT_NEAR(loss, std::log1p(std::exp(-1.f)), 1e-6f);
}

TEST(AutogradOpsTest, NeighborAttentionUniformOverIdenticalItems) {
  // All candidate items identical -> attention output equals that item.
  Tensor users = Leaf({{1.f, 0.f}});
  Tensor items = Leaf({{0.5f, 0.5f}, {0.5f, 0.5f}, {9.f, 9.f}});
  auto cand = std::make_shared<std::vector<std::vector<int>>>(
      std::vector<std::vector<int>>{{0, 1}});
  Tensor out = NeighborAttention(users, items, cand);
  EXPECT_NEAR(out.value().At(0, 0), 0.5f, 1e-6f);
  EXPECT_NEAR(out.value().At(0, 1), 0.5f, 1e-6f);
}

TEST(AutogradOpsTest, NeighborAttentionPrefersAlignedItem) {
  Tensor users = Leaf({{10.f, 0.f}});
  Tensor items = Leaf({{1.f, 0.f}, {0.f, 1.f}});
  auto cand = std::make_shared<std::vector<std::vector<int>>>(
      std::vector<std::vector<int>>{{0, 1}});
  Tensor out = NeighborAttention(users, items, cand);
  // Attention mass concentrates on item 0 (dot 10 vs 0).
  EXPECT_GT(out.value().At(0, 0), 0.99f);
  EXPECT_LT(out.value().At(0, 1), 0.01f);
}

TEST(AutogradOpsTest, SegmentMeanValue) {
  Tensor table = Leaf({{2, 0}, {4, 2}, {0, 0}});
  auto lists = std::make_shared<std::vector<std::vector<int>>>(
      std::vector<std::vector<int>>{{0, 1}, {}});
  Tensor out = SegmentMeanRows(table, lists);
  EXPECT_TRUE(AllClose(out.value(), Matrix::FromRows({{3, 1}, {0, 0}})));
}

// ------------------------------------------------- graph bookkeeping

TEST(AutogradGraphTest, RequiresGradPropagates) {
  Tensor a = Leaf({{1.f}}, /*requires_grad=*/true);
  Tensor b = Leaf({{2.f}}, /*requires_grad=*/false);
  EXPECT_TRUE(Add(a, b).requires_grad());
  EXPECT_FALSE(Add(b, b).requires_grad());
}

TEST(AutogradGraphTest, DiamondGraphAccumulatesOnce) {
  // loss = sum(x*x + x*x): dx = 4x.
  Tensor x = Leaf({{3.f}});
  Tensor sq = Hadamard(x, x);
  Backward(Sum(Add(sq, sq)));
  EXPECT_NEAR(x.grad().At(0, 0), 12.f, 1e-5f);
}

TEST(AutogradGraphTest, BackwardTwiceAccumulates) {
  Tensor x = Leaf({{1.f}});
  Tensor loss = Sum(Scale(x, 3.f));
  Backward(loss);
  EXPECT_NEAR(x.grad().At(0, 0), 3.f, 1e-6f);
  Tensor loss2 = Sum(Scale(x, 3.f));
  Backward(loss2);
  EXPECT_NEAR(x.grad().At(0, 0), 6.f, 1e-6f);  // accumulation semantics
  x.ZeroGrad();
  EXPECT_EQ(x.grad().At(0, 0), 0.f);
}

TEST(AutogradGraphTest, DeepChainBackwardIterative) {
  // 3000-deep chain: the iterative topological sort must not overflow any
  // recursion limit.
  Tensor x = Leaf({{1.f}});
  Tensor h = x;
  for (int i = 0; i < 3000; ++i) h = AddScalar(h, 1.f);
  Backward(Sum(h));
  EXPECT_NEAR(x.grad().At(0, 0), 1.f, 1e-6f);
  EXPECT_NEAR(h.value().At(0, 0), 3001.f, 1e-3f);
}

TEST(AutogradGraphDeathTest, BackwardRequiresScalar) {
  Tensor x = Leaf({{1.f, 2.f}});
  Tensor y = Scale(x, 2.f);
  EXPECT_DEATH(Backward(y), "CHECK");
}

TEST(AutogradGraphDeathTest, UndefinedTensorAborts) {
  Tensor undefined;
  EXPECT_FALSE(undefined.defined());
  EXPECT_DEATH(undefined.value(), "CHECK");
}

}  // namespace
}  // namespace ag
}  // namespace nmcdr
