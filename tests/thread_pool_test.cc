// Unit tests for the shared worker pool (src/util/thread_pool.h): startup
// and clamping, ParallelFor chunk determinism and coverage, exception
// propagation, re-entrancy (nested ParallelFor runs inline), Submit, and
// the shared-pool configuration surface.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

namespace nmcdr {
namespace {

TEST(ThreadPoolTest, StartsRequestedWorkersAndClampsToOne) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
  ThreadPool one(0);
  EXPECT_EQ(one.num_threads(), 1);
  ThreadPool negative(-4);
  EXPECT_EQ(negative.num_threads(), 1);
}

TEST(ThreadPoolTest, SubmitRunsTaskOnWorker) {
  ThreadPool pool(2);
  std::promise<int> promise;
  std::future<int> future = promise.get_future();
  pool.Submit([&promise] { promise.set_value(42); });
  EXPECT_EQ(future.get(), 42);
  EXPECT_GE(pool.tasks_executed(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(0, kN, /*grain=*/1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "element " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndReversedRanges) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  pool.ParallelFor(7, 3, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

/// Collects the chunk boundaries a ParallelFor produced, sorted by begin.
std::vector<std::pair<int64_t, int64_t>> Chunks(ThreadPool* pool,
                                                int64_t begin, int64_t end,
                                                int64_t grain) {
  std::mutex mu;
  std::vector<std::pair<int64_t, int64_t>> chunks;
  pool->ParallelFor(begin, end, grain, [&](int64_t b, int64_t e) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(b, e);
  });
  std::sort(chunks.begin(), chunks.end());
  return chunks;
}

TEST(ThreadPoolTest, ChunksAreDeterministicContiguousAndGrainBounded) {
  ThreadPool pool(4);
  const auto first = Chunks(&pool, 0, 100, 30);
  // floor(100 / 30) = 3 chunks, each at least the grain of 30 long.
  ASSERT_EQ(first.size(), 3u);
  int64_t expect_begin = 0;
  for (const auto& [b, e] : first) {
    EXPECT_EQ(b, expect_begin);
    EXPECT_GE(e - b, 30);
    expect_begin = e;
  }
  EXPECT_EQ(expect_begin, 100);
  // Chunk sizes differ by at most one.
  const std::pair<int64_t, int64_t> want_first{0, 34};
  EXPECT_EQ(first[0], want_first);
  // Boundaries are a pure function of (range, grain, num_threads): reruns
  // split identically regardless of scheduling.
  for (int rep = 0; rep < 5; ++rep) {
    EXPECT_EQ(Chunks(&pool, 0, 100, 30), first);
  }
}

TEST(ThreadPoolTest, LargeGrainCollapsesToSingleInlineChunk) {
  ThreadPool pool(4);
  const auto chunks = Chunks(&pool, 0, 10, 100);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].first, 0);
  EXPECT_EQ(chunks[0].second, 10);
}

TEST(ThreadPoolTest, ChunkCountIsBoundedByPoolSize) {
  ThreadPool pool(2);
  EXPECT_EQ(Chunks(&pool, 0, 1000, 1).size(), 2u);
  ThreadPool wide(8);
  EXPECT_EQ(Chunks(&wide, 0, 6, 1).size(), 6u);
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100, 1,
                       [](int64_t begin, int64_t) {
                         if (begin == 0) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // Every chunk still completed; the pool serves later work normally.
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(0, 100, 1, [&](int64_t begin, int64_t end) {
    int64_t local = 0;
    for (int64_t i = begin; i < end; ++i) local += i;
    sum.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 100 * 99 / 2);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64 * 8);
  pool.ParallelFor(0, 64, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      // A worker issuing ParallelFor on its own pool must not block on
      // tasks behind it in the queue — the nested call runs inline.
      pool.ParallelFor(0, 8, 1, [&, i](int64_t b, int64_t e) {
        for (int64_t j = b; j < e; ++j) {
          hits[i * 8 + j].fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "element " << i;
  }
}

TEST(ThreadPoolTest, ParallelForFromSubmittedTaskCompletes) {
  ThreadPool pool(2);
  std::promise<int64_t> promise;
  std::future<int64_t> future = promise.get_future();
  pool.Submit([&pool, &promise] {
    int64_t sum = 0;
    pool.ParallelFor(0, 50, 1, [&sum](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) sum += i;  // inline: no race
    });
    promise.set_value(sum);
  });
  EXPECT_EQ(future.get(), 50 * 49 / 2);
}

TEST(ThreadPoolTest, TasksExecutedCountsChunks) {
  ThreadPool pool(4);
  const int64_t before = pool.tasks_executed();
  pool.ParallelFor(0, 100, 1, [](int64_t, int64_t) {});
  EXPECT_EQ(pool.tasks_executed(), before + 4);
}

TEST(SharedThreadPoolTest, SharedIsAStableSingleton) {
  ThreadPool* shared = ThreadPool::Shared();
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(ThreadPool::Shared(), shared);
  EXPECT_GE(shared->num_threads(), 1);
  EXPECT_EQ(ThreadPool::SharedThreads(), shared->num_threads());
}

TEST(SharedThreadPoolTest, SetSharedThreadsFailsAfterStart) {
  ThreadPool::Shared();  // force startup
  EXPECT_FALSE(ThreadPool::SetSharedThreads(8));
}

}  // namespace
}  // namespace nmcdr
