// Tests for the observability layer (src/obs/): histogram bucket boundary
// semantics, per-thread shard folding under real ThreadPool::Shared()
// contention (run under TSan by CI's tsan job and reproduce.sh smoke),
// disabled-mode zero-allocation, the NMCDR_OBS_V1 JSON export (validated
// by a minimal JSON parser), and the instrumentation scopes.

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <new>  // NMCDR_LINT_ALLOW(naked-new): header name, not an expression
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"
#include "src/util/thread_pool.h"

// ---------------------------------------------------------------------------
// Allocation counter: global operator new/delete overrides counting every
// heap allocation in the process. The zero-allocation tests read the
// counter around a probe region on a single thread with no concurrent
// work, so a nonzero delta is attributable to the probes.
// ---------------------------------------------------------------------------

namespace {
std::atomic<int64_t> g_allocations{0};
}  // namespace

// The pair is matched (new mallocs, delete frees), but GCC's
// -Wmismatched-new-delete can't see through the replacement and flags
// the free() as mismatched.
#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

// NMCDR_LINT_ALLOW(naked-new): global allocation hook, not an ownership site
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

// NMCDR_LINT_ALLOW(naked-new): global allocation hook, not an ownership site
void operator delete(void* p) noexcept { std::free(p); }
// NMCDR_LINT_ALLOW(naked-new): global allocation hook, not an ownership site
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif

namespace nmcdr {
namespace {

// ---------------------------------------------------------------------------
// Counter / Gauge
// ---------------------------------------------------------------------------

TEST(ObsCounterTest, AddAndFold) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.GetCounter("c");
  EXPECT_EQ(c.Value(), 0);
  c.Add(1);
  c.Add(41);
  EXPECT_EQ(c.Value(), 42);
  EXPECT_EQ(&reg.GetCounter("c"), &c);  // same name -> same metric
}

TEST(ObsCounterTest, FoldsShardsWrittenByPoolThreads) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.GetCounter("contended");
  constexpr int64_t kIters = 20000;
  // Every pool worker lands in some shard; the fold must see every Add
  // exactly once regardless of which thread made it.
  ThreadPool::Shared()->ParallelFor(0, kIters, /*grain=*/64,
                                    [&](int64_t, int64_t) {});
  ThreadPool::Shared()->ParallelFor(
      0, kIters, /*grain=*/64,
      [&](int64_t begin, int64_t end) { c.Add(end - begin); });
  EXPECT_EQ(c.Value(), kIters);
}

TEST(ObsGaugeTest, LastWriteWins) {
  obs::MetricsRegistry reg;
  obs::Gauge& g = reg.GetGauge("g");
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(2.5);
  g.Set(-1.25);
  EXPECT_EQ(g.Value(), -1.25);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(ObsHistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.GetHistogram("h", {1.0, 2.0, 4.0});
  // Bucket i counts values <= boundaries[i]; above the last boundary is
  // the overflow bucket.
  h.Record(0.5);   // bucket 0
  h.Record(1.0);   // bucket 0 (boundary value belongs to its own bucket)
  h.Record(1.5);   // bucket 1
  h.Record(2.0);   // bucket 1
  h.Record(2.001); // bucket 2
  h.Record(4.0);   // bucket 2
  h.Record(4.5);   // overflow
  const std::vector<int64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 2);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(h.Count(), 7);
  EXPECT_DOUBLE_EQ(h.Min(), 0.5);
  EXPECT_DOUBLE_EQ(h.Max(), 4.5);
  EXPECT_NEAR(h.Sum(), 0.5 + 1.0 + 1.5 + 2.0 + 2.001 + 4.0 + 4.5, 1e-12);
}

TEST(ObsHistogramTest, EmptyHistogramReportsZeros) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.GetHistogram("h", {1.0});
  EXPECT_EQ(h.Count(), 0);
  EXPECT_EQ(h.Sum(), 0.0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Min(), 0.0);
  EXPECT_EQ(h.Max(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(ObsHistogramTest, QuantilesAreMonotoneAndClampedToObservedRange) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.GetLatencyHistogram("lat");
  for (int i = 1; i <= 1000; ++i) h.Record(i * 0.01);  // 0.01 .. 10.0
  const double p50 = h.Quantile(0.50);
  const double p95 = h.Quantile(0.95);
  const double p99 = h.Quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.Max());
  EXPECT_GE(p50, h.Min());
  // Interpolation error is bounded by one bucket width around the true
  // quantile (buckets double, so check a loose band).
  EXPECT_NEAR(p50, 5.0, 3.0);
  EXPECT_GT(p99, p50);
  // Quantiles that land in the overflow bucket report the observed max.
  obs::Histogram& tiny = reg.GetHistogram("tiny", {1.0});
  tiny.Record(100.0);
  tiny.Record(200.0);
  EXPECT_DOUBLE_EQ(tiny.Quantile(0.99), 200.0);
}

TEST(ObsHistogramTest, FoldsShardsWrittenByPoolThreads) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.GetHistogram("contended", {10.0, 100.0, 1000.0});
  constexpr int64_t kSamples = 10000;
  ThreadPool::Shared()->ParallelFor(
      0, kSamples, /*grain=*/32, [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          h.Record(static_cast<double>(i % 2000));
        }
      });
  EXPECT_EQ(h.Count(), kSamples);
  int64_t bucket_total = 0;
  for (const int64_t c : h.BucketCounts()) bucket_total += c;
  EXPECT_EQ(bucket_total, kSamples);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 1999.0);
}

TEST(ObsRegistryTest, ResetZeroesMetricsButKeepsRegistrations) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.GetCounter("c");
  obs::Gauge& g = reg.GetGauge("g");
  obs::Histogram& h = reg.GetHistogram("h", {1.0});
  c.Add(5);
  g.Set(1.0);
  h.Record(0.5);
  reg.Reset();
  EXPECT_EQ(c.Value(), 0);
  EXPECT_EQ(g.Value(), 0.0);
  EXPECT_EQ(h.Count(), 0);
  EXPECT_EQ(h.Min(), 0.0);
  // References stay valid and usable after Reset.
  c.Add(1);
  EXPECT_EQ(reg.GetCounter("c").Value(), 1);
}

// ---------------------------------------------------------------------------
// Disabled-mode zero cost
// ---------------------------------------------------------------------------

TEST(ObsDisabledTest, ScopesAllocateNothingWhenMetricsDisabled) {
  obs::MetricsEnabledGuard metrics_off(false);
  obs::ProfilingEnabledGuard profiling_off(false);
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.GetHistogram("h", {1.0});
  obs::OpStats& stats = obs::OpStats::ForName("ZeroAllocProbe");
  const int64_t fwd_before = stats.forward_calls.load();

  const int64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    const obs::KernelScope ks(obs::Kernel::kMatMulAccumInto, 123);
    const obs::OpScope os(stats);
    const obs::ScopedTimer t(&h);
    const obs::TraceSpan span("disabled", reg);
  }
  const int64_t after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0) << "disabled scopes must not allocate";
  EXPECT_EQ(stats.forward_calls.load(), fwd_before);
  EXPECT_EQ(h.Count(), 0);
  EXPECT_EQ(reg.Counters().size(), 0u) << "disabled TraceSpan must not "
                                          "register span metrics";
}

TEST(ObsDisabledTest, CounterAddItselfNeverAllocates) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.GetCounter("hot");
  c.Add(1);  // warm the thread's shard slot
  const int64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) c.Add(1);
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0);
}

TEST(ObsDisabledTest, FlagGuardsRestorePriorState) {
  const bool prior = obs::MetricsEnabled();
  {
    obs::MetricsEnabledGuard off(false);
    EXPECT_FALSE(obs::MetricsEnabled());
    {
      obs::MetricsEnabledGuard on(true);
      // When the layer is compiled out, MetricsEnabled() is constant
      // false no matter what the runtime flag says.
      EXPECT_EQ(obs::MetricsEnabled(), obs::kObsCompiled);
    }
    EXPECT_FALSE(obs::MetricsEnabled());
  }
  EXPECT_EQ(obs::MetricsEnabled(), prior);
}

// ---------------------------------------------------------------------------
// Instrumentation scopes (enabled)
// ---------------------------------------------------------------------------

TEST(ObsScopeTest, KernelScopeCountsCallsAndFlops) {
  if (!obs::kObsCompiled) GTEST_SKIP() << "observability compiled out";
  obs::MetricsEnabledGuard metrics_on(true);
  obs::ResetOpAndKernelStats();
  {
    const obs::KernelScope a(obs::Kernel::kRowSum, 100);
    const obs::KernelScope b(obs::Kernel::kRowSum, 23);
  }
  bool found = false;
  for (const obs::KernelStatsRow& row : obs::SnapshotKernelStats()) {
    if (row.kernel == obs::Kernel::kRowSum) {
      EXPECT_EQ(row.calls, 2);
      EXPECT_EQ(row.flops, 123);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  obs::ResetOpAndKernelStats();
}

TEST(ObsScopeTest, OpScopeCountsForwardAndRecordBackwardAggregates) {
  if (!obs::kObsCompiled) GTEST_SKIP() << "observability compiled out";
  obs::MetricsEnabledGuard metrics_on(true);
  obs::OpStats& stats = obs::OpStats::ForName("ObsScopeTestOp");
  const int64_t fwd0 = stats.forward_calls.load();
  { const obs::OpScope scope(stats); }
  { const obs::OpScope scope(stats); }
  EXPECT_EQ(stats.forward_calls.load() - fwd0, 2);

  const int64_t bwd0 = stats.backward_calls.load();
  const int64_t bwd_ns0 = stats.backward_ns.load();
  obs::RecordBackward("ObsScopeTestOp", 500);
  obs::RecordBackward("ObsScopeTestOp", 700);
  EXPECT_EQ(stats.backward_calls.load() - bwd0, 2);
  EXPECT_EQ(stats.backward_ns.load() - bwd_ns0, 1200);
}

TEST(ObsScopeTest, ProfilingRecordsWallTime) {
  if (!obs::kObsCompiled) GTEST_SKIP() << "observability compiled out";
  obs::MetricsEnabledGuard metrics_on(true);
  obs::ProfilingEnabledGuard profiling_on(true);
  obs::OpStats& stats = obs::OpStats::ForName("ObsProfiledOp");
  const int64_t ns0 = stats.forward_ns.load();
  {
    const obs::OpScope scope(stats);
    // Burn a little time so the probe records a strictly positive span.
    volatile double sink = 0.0;
    for (int i = 0; i < 50000; ++i) sink = sink + i * 1e-9;
  }
  EXPECT_GT(stats.forward_ns.load(), ns0);
}

TEST(ObsScopeTest, TraceSpanRecordsCountAndSeconds) {
  if (!obs::kObsCompiled) GTEST_SKIP() << "observability compiled out";
  obs::MetricsEnabledGuard metrics_on(true);
  obs::MetricsRegistry reg;
  { const obs::TraceSpan span("phase", reg); }
  { const obs::TraceSpan span("phase", reg); }
  EXPECT_EQ(reg.GetCounter("span.phase.count").Value(), 2);
  obs::Histogram& h = reg.GetHistogram(
      "span.phase.seconds", obs::MetricsRegistry::DefaultTimeBucketsSeconds());
  EXPECT_EQ(h.Count(), 2);
  EXPECT_GE(h.Min(), 0.0);
}

// ---------------------------------------------------------------------------
// JSON export: NMCDR_OBS_V1 round-trip through a minimal JSON parser
// ---------------------------------------------------------------------------

/// Minimal recursive-descent JSON well-formedness checker (objects,
/// arrays, strings, numbers, booleans, null). Returns true when the whole
/// input is exactly one valid value.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}
  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek('}')) return true;
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Expect(':')) return false;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek('}')) return true;
      if (!Expect(',')) return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek(']')) return true;
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(']')) return true;
      if (!Expect(',')) return false;
    }
  }
  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    return Expect('"');
  }
  bool Number() {
    const size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }
  bool Peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

TEST(ObsExportTest, DumpJsonIsValidAndSchemaVersioned) {
  obs::MetricsEnabledGuard metrics_on(true);
  obs::MetricsRegistry reg;
  reg.GetCounter("alpha.requests").Add(7);
  reg.GetGauge("beta.loss").Set(0.5);
  obs::Histogram& h = reg.GetLatencyHistogram("gamma.latency_ms");
  h.Record(0.2);
  h.Record(3.0);
  const std::string json = obs::DumpJson(reg);

  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"schema\": \"NMCDR_OBS_V1\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha.requests\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"beta.loss\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"gamma.latency_ms\""), std::string::npos);
  for (const char* key :
       {"\"counters\"", "\"gauges\"", "\"histograms\"", "\"ops\"",
        "\"kernels\"", "\"count\"", "\"p50\"", "\"p95\"", "\"p99\"",
        "\"buckets\"", "\"le\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(ObsExportTest, JsonEscapesMetricNames) {
  obs::MetricsRegistry reg;
  reg.GetCounter("weird\"name\\with\ncontrol").Add(1);
  const std::string json = obs::DumpJson(reg);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("weird\\\"name\\\\with\\ncontrol"), std::string::npos);
}

TEST(ObsExportTest, EmptyRegistryStillValidJson) {
  obs::MetricsRegistry reg;
  const std::string json = obs::DumpJson(reg);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("NMCDR_OBS_V1"), std::string::npos);
}

TEST(ObsExportTest, DumpTextMentionsEveryMetric) {
  obs::MetricsEnabledGuard metrics_on(true);
  obs::MetricsRegistry reg;
  reg.GetCounter("requests").Add(3);
  reg.GetGauge("loss").Set(1.5);
  reg.GetLatencyHistogram("latency_ms").Record(1.0);
  const std::string text = obs::DumpText(reg);
  EXPECT_NE(text.find("requests = 3"), std::string::npos) << text;
  EXPECT_NE(text.find("loss = 1.5"), std::string::npos) << text;
  EXPECT_NE(text.find("latency_ms"), std::string::npos) << text;
  EXPECT_NE(text.find("p99"), std::string::npos) << text;
}

}  // namespace
}  // namespace nmcdr
