#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "data/presets.h"
#include "graph/interaction_graph.h"

namespace nmcdr {
namespace {

SyntheticScenarioSpec TestSpec() {
  SyntheticScenarioSpec spec;
  spec.name = "test";
  spec.z = {"A", 120, 50, 6.0, 1.0};
  spec.zbar = {"B", 90, 40, 4.0, 1.0};
  spec.num_overlapping = 30;
  spec.seed = 7;
  return spec;
}

TEST(SyntheticTest, SizesMatchSpec) {
  CdrScenario s = GenerateScenario(TestSpec());
  EXPECT_EQ(s.z.num_users, 120);
  EXPECT_EQ(s.z.num_items, 50);
  EXPECT_EQ(s.zbar.num_users, 90);
  EXPECT_EQ(s.NumOverlapping(), 30);
  s.CheckConsistency();
}

TEST(SyntheticTest, OverlappingUsersAreLowIdsInBothDomains) {
  CdrScenario s = GenerateScenario(TestSpec());
  for (int u = 0; u < 30; ++u) {
    EXPECT_EQ(s.z_to_zbar[u], u);
    EXPECT_EQ(s.zbar_to_z[u], u);
  }
  for (int u = 30; u < s.z.num_users; ++u) EXPECT_EQ(s.z_to_zbar[u], -1);
}

TEST(SyntheticTest, EveryUserHasMinInteractions) {
  SyntheticScenarioSpec spec = TestSpec();
  spec.min_interactions = 3;
  CdrScenario s = GenerateScenario(spec);
  std::map<int, int> count;
  for (const Interaction& e : s.z.interactions) ++count[e.user];
  for (int u = 0; u < s.z.num_users; ++u) {
    EXPECT_GE(count[u], 3) << "user " << u;
  }
}

TEST(SyntheticTest, DeterministicForSeed) {
  CdrScenario a = GenerateScenario(TestSpec());
  CdrScenario b = GenerateScenario(TestSpec());
  ASSERT_EQ(a.z.interactions.size(), b.z.interactions.size());
  EXPECT_TRUE(std::equal(a.z.interactions.begin(), a.z.interactions.end(),
                         b.z.interactions.begin()));
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticScenarioSpec spec = TestSpec();
  CdrScenario a = GenerateScenario(spec);
  spec.seed = 8;
  CdrScenario b = GenerateScenario(spec);
  EXPECT_FALSE(a.z.interactions.size() == b.z.interactions.size() &&
               std::equal(a.z.interactions.begin(), a.z.interactions.end(),
                          b.z.interactions.begin()));
}

TEST(SyntheticTest, LongTailExists) {
  // With heavy-tailed activity there must be both head users (many
  // interactions) and a majority of tail users.
  SyntheticScenarioSpec spec = TestSpec();
  spec.z.num_users = 400;
  spec.z.mean_extra_interactions = 8.0;
  CdrScenario s = GenerateScenario(spec);
  InteractionGraph g(s.z.num_users, s.z.num_items, s.z.interactions);
  const int heads = static_cast<int>(g.HeadUsers(15).size());
  const int tails = static_cast<int>(g.TailUsers(15).size());
  EXPECT_GT(heads, 0);
  EXPECT_GT(tails, heads);  // tail users are the majority (§I)
}

TEST(SyntheticTest, ItemPopularityIsSkewed) {
  CdrScenario s = GenerateScenario(TestSpec());
  InteractionGraph g(s.z.num_users, s.z.num_items, s.z.interactions);
  std::vector<int> degrees;
  for (int v = 0; v < g.num_items(); ++v) degrees.push_back(g.ItemDegree(v));
  std::sort(degrees.rbegin(), degrees.rend());
  // Top 20% of items should hold well above 20% of interactions.
  int64_t top = 0, total = 0;
  for (size_t i = 0; i < degrees.size(); ++i) {
    total += degrees[i];
    if (i < degrees.size() / 5) top += degrees[i];
  }
  EXPECT_GT(static_cast<double>(top) / total, 0.3);
}

TEST(SyntheticTest, GroundTruthShapes) {
  SyntheticGroundTruth gt;
  CdrScenario s = GenerateScenario(TestSpec(), &gt);
  EXPECT_EQ(gt.z_user_latent.rows(), s.z.num_users);
  EXPECT_EQ(gt.z_item_latent.rows(), s.z.num_items);
  EXPECT_EQ(gt.zbar_user_latent.rows(), s.zbar.num_users);
  EXPECT_EQ(gt.z_user_latent.cols(), 8);
  // Affinity accessible and finite.
  EXPECT_TRUE(std::isfinite(gt.AffinityZ(0, 0)));
  EXPECT_TRUE(std::isfinite(gt.AffinityZbar(0, 0)));
}

TEST(SyntheticTest, OverlappedUsersShareCrossDomainTaste) {
  // With high correlation, an overlapped person's Z and Z̄ latents must be
  // far more aligned than two random users' latents.
  SyntheticScenarioSpec spec = TestSpec();
  spec.cross_domain_correlation = 0.9;
  SyntheticGroundTruth gt;
  GenerateScenario(spec, &gt);
  auto dot_rows = [&](const Matrix& a, int ra, const Matrix& b, int rb) {
    double acc = 0.0;
    for (int c = 0; c < a.cols(); ++c) {
      acc += static_cast<double>(a.At(ra, c)) * b.At(rb, c);
    }
    return acc;
  };
  double linked = 0.0, unlinked = 0.0;
  for (int u = 0; u < 30; ++u) {
    linked += dot_rows(gt.z_user_latent, u, gt.zbar_user_latent, u);
    unlinked += dot_rows(gt.z_user_latent, u + 40, gt.zbar_user_latent, u + 40);
  }
  EXPECT_GT(linked, unlinked + 1.0);
}

TEST(SyntheticTest, ClusteredItemsAreMoreSimilarWithinCluster) {
  // cluster_noise -> 0 puts items exactly on centroids; verify clustering
  // tightens item similarity vs the unclustered generator.
  SyntheticScenarioSpec spec = TestSpec();
  spec.item_clusters = 4;
  spec.cluster_noise = 0.1;
  SyntheticGroundTruth clustered;
  GenerateScenario(spec, &clustered);
  spec.item_clusters = 0;
  SyntheticGroundTruth flat;
  GenerateScenario(spec, &flat);
  auto max_abs_cosine = [](const Matrix& items) {
    double best = -1.0;
    for (int i = 0; i < std::min(items.rows(), 20); ++i) {
      for (int j = i + 1; j < std::min(items.rows(), 20); ++j) {
        double dot = 0, ni = 0, nj = 0;
        for (int c = 0; c < items.cols(); ++c) {
          dot += static_cast<double>(items.At(i, c)) * items.At(j, c);
          ni += static_cast<double>(items.At(i, c)) * items.At(i, c);
          nj += static_cast<double>(items.At(j, c)) * items.At(j, c);
        }
        best = std::max(best, dot / std::sqrt(ni * nj + 1e-12));
      }
    }
    return best;
  };
  EXPECT_GT(max_abs_cosine(clustered.z_item_latent), 0.9);
}

TEST(PresetsTest, ScaleMonotonicity) {
  for (auto spec_fn : {MusicMovieSpec, ClothSportSpec, PhoneElecSpec,
                       LoanFundSpec}) {
    const SyntheticScenarioSpec smoke = spec_fn(BenchScale::kSmoke);
    const SyntheticScenarioSpec small = spec_fn(BenchScale::kSmall);
    const SyntheticScenarioSpec full = spec_fn(BenchScale::kFull);
    EXPECT_LE(smoke.z.num_users, small.z.num_users);
    EXPECT_LT(small.z.num_users, full.z.num_users);
    EXPECT_LE(smoke.num_overlapping, small.num_overlapping);
  }
}

TEST(PresetsTest, AllScenarioSpecsInPaperOrder) {
  const auto specs = AllScenarioSpecs(BenchScale::kSmall);
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].name, "Music-Movie");
  EXPECT_EQ(specs[1].name, "Cloth-Sport");
  EXPECT_EQ(specs[2].name, "Phone-Elec");
  EXPECT_EQ(specs[3].name, "Loan-Fund");
}

TEST(PresetsTest, BenchScaleFromEnvParsesValues) {
  setenv("NMCDR_BENCH_SCALE", "smoke", 1);
  EXPECT_EQ(BenchScaleFromEnv(), BenchScale::kSmoke);
  setenv("NMCDR_BENCH_SCALE", "full", 1);
  EXPECT_EQ(BenchScaleFromEnv(), BenchScale::kFull);
  setenv("NMCDR_BENCH_SCALE", "garbage", 1);
  EXPECT_EQ(BenchScaleFromEnv(), BenchScale::kSmall);
  unsetenv("NMCDR_BENCH_SCALE");
  EXPECT_EQ(BenchScaleFromEnv(), BenchScale::kSmall);
}

TEST(PresetsTest, LoanFundPreservesHighItemDegreeRegime) {
  // The Table V discussion hinges on very high average interactions per
  // item in the financial scenario relative to the Amazon ones.
  CdrScenario loan_fund = GenerateScenario(LoanFundSpec(BenchScale::kSmall));
  CdrScenario phone_elec = GenerateScenario(PhoneElecSpec(BenchScale::kSmall));
  InteractionGraph loan(loan_fund.z.num_users, loan_fund.z.num_items,
                        loan_fund.z.interactions);
  InteractionGraph phone(phone_elec.z.num_users, phone_elec.z.num_items,
                         phone_elec.z.interactions);
  EXPECT_GT(loan.AverageItemInteractions(),
            3.0 * phone.AverageItemInteractions());
}

}  // namespace
}  // namespace nmcdr
