#include "tensor/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace nmcdr {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, BoundedUniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(13), 13u);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, GaussianWithMeanStddev) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.f, 2.f);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, SampleDiscreteRespectsWeights) {
  Rng rng(9);
  std::vector<double> weights = {1.0, 3.0, 0.0};
  int counts[3] = {0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.SampleDiscrete(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.75, 0.02);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(13);
  for (int k : {0, 1, 5, 50, 100}) {
    std::vector<int> sample = rng.SampleWithoutReplacement(100, k);
    ASSERT_EQ(static_cast<int>(sample.size()), k);
    std::set<int> unique(sample.begin(), sample.end());
    EXPECT_EQ(static_cast<int>(unique.size()), k);
    for (int v : sample) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 100);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(13);
  std::vector<int> sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(ZipfSamplerTest, PmfSumsToOneAndDecreases) {
  ZipfSampler zipf(50, 1.1);
  double total = 0.0;
  for (int r = 0; r < 50; ++r) {
    total += zipf.Pmf(r);
    if (r > 0) {
      EXPECT_LE(zipf.Pmf(r), zipf.Pmf(r - 1) + 1e-12);
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, EmpiricalMatchesPmf) {
  ZipfSampler zipf(10, 1.0);
  Rng rng(21);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(&rng)];
  for (int r = 0; r < 10; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / n, zipf.Pmf(r), 0.01);
  }
}

/// Property sweep: bounded draws stay in range for many bounds.
class RngBoundSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngBoundSweep, AlwaysBelowBound) {
  Rng rng(GetParam());
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextUint64(bound), bound);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngBoundSweep,
                         ::testing::Values(1, 2, 3, 99, 12345, 0xDEADBEEF));

}  // namespace
}  // namespace nmcdr
