// Byte-level robustness of ModelSnapshot::Load (satellite of the semantic
// verifier): truncated, magic-corrupted, dimension-corrupted, and
// NaN-injected NMCDRSV1 files must be rejected with a descriptive error —
// never a crash, never NaN scores, never partial state.

#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/nmcdr_model.h"
#include "serving/model_snapshot.h"
#include "tests/test_util.h"

namespace nmcdr {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// One frozen snapshot plus its on-disk bytes, shared across the file's
/// tests (freezing once keeps the suite fast).
struct SnapshotFixture {
  std::unique_ptr<ExperimentData> data;
  ModelSnapshot snapshot;
  std::string bytes;  // the Save()d file, byte for byte
};

SnapshotFixture& Fixture() {
  static SnapshotFixture* fixture = [] {
    // NMCDR_LINT_ALLOW(naked-new): leaked on purpose — survives until the
    // last test and dodges static-destruction order.
    auto* f = new SnapshotFixture;
    f->data = testing_util::TinyData();
    NmcdrConfig config;
    config.hidden_dim = 8;
    NmcdrModel model(f->data->View(), config, 1, 5e-3f);
    testing_util::TrainLossTrend(&model, *f->data, 5);
    EXPECT_TRUE(
        ModelSnapshot::FreezePair(&model, f->data->scenario(), &f->snapshot));
    const std::string path = TempPath("snapshot_fixture.nmcdr");
    EXPECT_TRUE(f->snapshot.Save(path));
    std::ifstream in(path, std::ios::binary);
    f->bytes.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
    EXPECT_GT(f->bytes.size(), 24u);
    return f;
  }();
  return *fixture;
}

/// Writes `bytes` to a fresh temp file and returns its path.
std::string WriteBytes(const std::string& name, const std::string& bytes) {
  const std::string path = TempPath(name);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return path;
}

/// Byte offset of domain 0's user_reps `rows` field:
/// magic(8) + num_domains(4) + num_persons(4) + name length(4) + name.
size_t UserRepsRowsOffset() {
  return 8 + 4 + 4 + 4 + Fixture().snapshot.domain(0).name.size();
}

void PutU32(std::string* bytes, size_t offset, uint32_t value) {
  std::memcpy(bytes->data() + offset, &value, sizeof(value));
}

uint32_t GetU32(const std::string& bytes, size_t offset) {
  uint32_t value = 0;
  std::memcpy(&value, bytes.data() + offset, sizeof(value));
  return value;
}

TEST(SnapshotValidation, RoundTripLoadsCleanly) {
  const std::string path = WriteBytes("snap_roundtrip.nmcdr", Fixture().bytes);
  ModelSnapshot loaded;
  std::string error;
  ASSERT_TRUE(ModelSnapshot::Load(path, &loaded, &error)) << error;
  EXPECT_TRUE(error.empty());
  EXPECT_TRUE(loaded.Equals(Fixture().snapshot));
}

TEST(SnapshotValidation, MissingFileFailsWithReason) {
  ModelSnapshot loaded;
  std::string error;
  EXPECT_FALSE(
      ModelSnapshot::Load(TempPath("does_not_exist.nmcdr"), &loaded, &error));
  EXPECT_EQ(error, "cannot open file");
}

TEST(SnapshotValidation, CorruptMagicRejected) {
  std::string bytes = Fixture().bytes;
  bytes[0] = 'X';
  const std::string path = WriteBytes("snap_badmagic.nmcdr", bytes);
  ModelSnapshot loaded;
  std::string error;
  EXPECT_FALSE(ModelSnapshot::Load(path, &loaded, &error));
  EXPECT_EQ(error, "bad magic (not an NMCDRSV1 snapshot)");
}

TEST(SnapshotValidation, EveryTruncationPointFailsCleanly) {
  const std::string& good = Fixture().bytes;
  // Representative prefixes: empty, mid-magic, mid-header, mid-domain-0,
  // and a file missing only its tail (mid-domain-1).
  const size_t cuts[] = {0,  4,  10, UserRepsRowsOffset() + 6,
                         good.size() / 2, good.size() - 5};
  for (const size_t cut : cuts) {
    SCOPED_TRACE("truncated to " + std::to_string(cut) + " bytes");
    const std::string path =
        WriteBytes("snap_cut_" + std::to_string(cut) + ".nmcdr",
                   good.substr(0, cut));
    ModelSnapshot loaded;
    std::string error;
    EXPECT_FALSE(ModelSnapshot::Load(path, &loaded, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_EQ(loaded.num_domains(), 0);  // no partial state
  }
}

TEST(SnapshotValidation, AbsurdDimensionFieldRejected) {
  std::string bytes = Fixture().bytes;
  PutU32(&bytes, UserRepsRowsOffset(), 0xFFFFFFFFu);
  const std::string path = WriteBytes("snap_absurd_dims.nmcdr", bytes);
  ModelSnapshot loaded;
  std::string error;
  EXPECT_FALSE(ModelSnapshot::Load(path, &loaded, &error));
  EXPECT_EQ(error, "truncated domain 0");
}

TEST(SnapshotValidation, InconsistentDimensionsRejectedWithExactDiff) {
  // Swap user_reps' rows/cols fields: the float payload size is unchanged,
  // so the stream stays aligned and the file parses — but the table no
  // longer matches item_reps, and Load must say exactly how.
  std::string bytes = Fixture().bytes;
  const size_t at = UserRepsRowsOffset();
  const uint32_t rows = GetU32(bytes, at);
  const uint32_t cols = GetU32(bytes, at + 4);
  ASSERT_NE(rows, cols);
  PutU32(&bytes, at, cols);
  PutU32(&bytes, at + 4, rows);
  const std::string path = WriteBytes("snap_swapped_dims.nmcdr", bytes);
  ModelSnapshot loaded;
  std::string error;
  EXPECT_FALSE(ModelSnapshot::Load(path, &loaded, &error));
  const std::string expected =
      "domain '" + Fixture().snapshot.domain(0).name + "': user_reps [" +
      std::to_string(cols) + "x" + std::to_string(rows) +
      "] and item_reps " + "[" +
      std::to_string(Fixture().snapshot.domain(0).frozen.item_reps.rows()) +
      "x" +
      std::to_string(Fixture().snapshot.domain(0).frozen.item_reps.cols()) +
      "] disagree on the representation dim";
  EXPECT_EQ(error, expected);
  EXPECT_EQ(loaded.num_domains(), 0);
}

TEST(SnapshotValidation, NanInjectionRejectedWithCoordinates) {
  std::string bytes = Fixture().bytes;
  const uint32_t quiet_nan = 0x7FC00000u;
  PutU32(&bytes, UserRepsRowsOffset() + 8, quiet_nan);  // first float
  const std::string path = WriteBytes("snap_nan.nmcdr", bytes);
  ModelSnapshot loaded;
  std::string error;
  EXPECT_FALSE(ModelSnapshot::Load(path, &loaded, &error));
  EXPECT_NE(error.find("non-finite value"), std::string::npos) << error;
  EXPECT_NE(error.find("user_reps(0,0)"), std::string::npos) << error;
}

TEST(SnapshotValidation, FailedLoadLeavesTargetUntouched) {
  // A target already holding a good snapshot must be unchanged when Load
  // rejects a file.
  const std::string good_path =
      WriteBytes("snap_keep_good.nmcdr", Fixture().bytes);
  ModelSnapshot target;
  ASSERT_TRUE(ModelSnapshot::Load(good_path, &target));
  std::string bytes = Fixture().bytes;
  bytes.resize(bytes.size() / 3);
  const std::string bad_path = WriteBytes("snap_keep_bad.nmcdr", bytes);
  std::string error;
  EXPECT_FALSE(ModelSnapshot::Load(bad_path, &target, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_TRUE(target.Equals(Fixture().snapshot));
}

}  // namespace
}  // namespace nmcdr
