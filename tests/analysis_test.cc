#include <cmath>

#include <gtest/gtest.h>

#include "analysis/embedding_stats.h"
#include "analysis/tsne.h"

namespace nmcdr {
namespace {

TEST(EmbeddingStatsTest, HandComputedSeparation) {
  // Heads at (0,0) and (0,2); tails at (10,0) and (10,2).
  Matrix emb = Matrix::FromRows({{0, 0}, {0, 2}, {10, 0}, {10, 2}});
  const std::vector<bool> is_head = {true, true, false, false};
  const HeadTailSeparation sep = ComputeHeadTailSeparation(emb, is_head);
  EXPECT_EQ(sep.num_head, 2);
  EXPECT_EQ(sep.num_tail, 2);
  EXPECT_NEAR(sep.centroid_distance, 10.0, 1e-6);
  EXPECT_NEAR(sep.head_spread, 1.0, 1e-6);
  EXPECT_NEAR(sep.tail_spread, 1.0, 1e-6);
  EXPECT_NEAR(sep.separation_score, 10.0, 1e-6);
}

TEST(EmbeddingStatsTest, AlignedGroupsScoreNearZero) {
  Rng rng(1);
  Matrix emb = Matrix::Gaussian(200, 4, &rng);
  std::vector<bool> is_head(200);
  for (int i = 0; i < 200; ++i) is_head[i] = i % 2 == 0;
  const HeadTailSeparation sep = ComputeHeadTailSeparation(emb, is_head);
  // Random split of one distribution: centroids nearly coincide.
  EXPECT_LT(sep.separation_score, 0.3);
}

TEST(EmbeddingStatsTest, SeparationDetectsShiftedGroups) {
  Rng rng(2);
  Matrix emb = Matrix::Gaussian(100, 4, &rng);
  std::vector<bool> is_head(100);
  for (int i = 0; i < 100; ++i) {
    is_head[i] = i < 50;
    if (!is_head[i]) {
      for (int c = 0; c < 4; ++c) emb.At(i, c) += 5.f;
    }
  }
  const HeadTailSeparation shifted = ComputeHeadTailSeparation(emb, is_head);
  EXPECT_GT(shifted.separation_score, 2.0);
}

TEST(EmbeddingStatsDeathTest, SingleGroupAborts) {
  Matrix emb(3, 2);
  EXPECT_DEATH(ComputeHeadTailSeparation(emb, {true, true, true}), "CHECK");
}

TEST(TsneTest, OutputShape) {
  Rng rng(3);
  Matrix points = Matrix::Gaussian(40, 6, &rng);
  TsneConfig config;
  config.iterations = 60;
  Matrix embedded = Tsne(points, config);
  EXPECT_EQ(embedded.rows(), 40);
  EXPECT_EQ(embedded.cols(), 2);
  for (int i = 0; i < embedded.size(); ++i) {
    EXPECT_TRUE(std::isfinite(embedded.data()[i]));
  }
}

TEST(TsneTest, WellSeparatedClustersStaySeparated) {
  Rng rng(4);
  const int per_cluster = 25;
  Matrix points(2 * per_cluster, 5);
  for (int i = 0; i < per_cluster; ++i) {
    for (int c = 0; c < 5; ++c) {
      points.At(i, c) = rng.Gaussian(0.f, 0.2f);
      points.At(per_cluster + i, c) = rng.Gaussian(8.f, 0.2f);
    }
  }
  TsneConfig config;
  config.iterations = 250;
  config.perplexity = 10;
  Matrix y = Tsne(points, config);
  std::vector<bool> is_first(2 * per_cluster);
  for (int i = 0; i < per_cluster; ++i) is_first[i] = true;
  const HeadTailSeparation sep = ComputeHeadTailSeparation(y, is_first);
  EXPECT_GT(sep.separation_score, 1.5);
}

TEST(TsneTest, DeterministicForSeed) {
  Rng rng(5);
  Matrix points = Matrix::Gaussian(20, 4, &rng);
  TsneConfig config;
  config.iterations = 50;
  Matrix a = Tsne(points, config);
  Matrix b = Tsne(points, config);
  EXPECT_TRUE(AllClose(a, b, 1e-6f));
}

}  // namespace
}  // namespace nmcdr
