#include "serving/ab_test.h"

#include <gtest/gtest.h>

namespace nmcdr {
namespace {

ServingWorld MakeWorld(uint64_t seed = 11) {
  std::vector<ServingWorld::DomainSpec> specs(3);
  specs[0].data = {"Loan", 0, 30, 5.0, 0.9};
  specs[0].target_base_cvr = 0.10;
  specs[1].data = {"Fund", 0, 20, 3.0, 0.9};
  specs[1].target_base_cvr = 0.06;
  specs[2].data = {"Account", 0, 25, 4.0, 0.9};
  specs[2].target_base_cvr = 0.02;
  return ServingWorld(specs, /*num_persons=*/400,
                      /*membership_prob=*/{0.8, 0.3, 0.5},
                      /*latent_dim=*/6, /*preference_sharpness=*/4.0, seed);
}

TEST(ServingWorldTest, DomainsPopulated) {
  ServingWorld world = MakeWorld();
  ASSERT_EQ(world.num_domains(), 3);
  for (int d = 0; d < 3; ++d) {
    EXPECT_GT(world.NumUsers(d), 0);
    EXPECT_FALSE(world.domain(d).interactions.empty());
  }
  EXPECT_EQ(world.domain_name(0), "Loan");
}

TEST(ServingWorldTest, PersonUserMappingIsConsistent) {
  ServingWorld world = MakeWorld();
  for (int d = 0; d < 3; ++d) {
    for (int u = 0; u < world.NumUsers(d); ++u) {
      const int person = world.PersonOfUser(d, u);
      EXPECT_EQ(world.UserOfPerson(d, person), u);
    }
  }
}

TEST(ServingWorldTest, EveryPersonJoinsAtLeastOneDomain) {
  ServingWorld world = MakeWorld();
  for (int p = 0; p < 400; ++p) {
    bool member = false;
    for (int d = 0; d < 3; ++d) {
      if (world.UserOfPerson(d, p) >= 0) member = true;
    }
    EXPECT_TRUE(member) << "person " << p;
  }
}

TEST(ServingWorldTest, ConversionProbabilityInUnitInterval) {
  ServingWorld world = MakeWorld();
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const int d = static_cast<int>(rng.NextUint64(3));
    const int u = static_cast<int>(rng.NextUint64(world.NumUsers(d)));
    const int v =
        static_cast<int>(rng.NextUint64(world.domain(d).num_items));
    const double p = world.ConversionProbability(d, u, v);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(ServingWorldTest, BaseCvrCalibrationNearTarget) {
  ServingWorld world = MakeWorld();
  Rng rng(5);
  const double targets[3] = {0.10, 0.06, 0.02};
  for (int d = 0; d < 3; ++d) {
    double mean = 0.0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
      const int u = static_cast<int>(rng.NextUint64(world.NumUsers(d)));
      const int v =
          static_cast<int>(rng.NextUint64(world.domain(d).num_items));
      mean += world.ConversionProbability(d, u, v);
    }
    mean /= n;
    EXPECT_NEAR(mean, targets[d], targets[d] * 0.4) << "domain " << d;
  }
}

TEST(ServingWorldTest, PairScenarioOverlapsAreCommonPersons) {
  ServingWorld world = MakeWorld();
  const CdrScenario pair = world.MakePairScenario(0, 1);
  pair.CheckConsistency();
  int expected = 0;
  for (int p = 0; p < 400; ++p) {
    if (world.UserOfPerson(0, p) >= 0 && world.UserOfPerson(1, p) >= 0) {
      ++expected;
    }
  }
  EXPECT_EQ(pair.NumOverlapping(), expected);
  EXPECT_GT(expected, 0);
}

TEST(ServingWorldTest, ItemPopularitySumsToInteractions) {
  ServingWorld world = MakeWorld();
  const std::vector<int> pop = world.ItemPopularity(0);
  int64_t total = 0;
  for (int c : pop) total += c;
  EXPECT_EQ(total, static_cast<int64_t>(world.domain(0).interactions.size()));
}

TEST(AbTestTest, OracleBeatsRandomRanker) {
  ServingWorld world = MakeWorld();
  Ranker oracle = [&world](int d, int user, const std::vector<int>& cands) {
    std::vector<float> scores(cands.size());
    for (size_t i = 0; i < cands.size(); ++i) {
      scores[i] =
          static_cast<float>(world.ConversionProbability(d, user, cands[i]));
    }
    return scores;
  };
  Rng noise(7);
  Ranker random_ranker = [&noise](int, int, const std::vector<int>& cands) {
    std::vector<float> scores(cands.size());
    for (float& s : scores) s = static_cast<float>(noise.UniformDouble());
    return scores;
  };
  AbTestConfig config;
  config.days = 6;
  config.impressions_per_day_per_domain = 800;
  const std::vector<GroupResult> results =
      RunAbTest(world, {{"oracle", oracle}, {"random", random_ranker}},
                config);
  ASSERT_EQ(results.size(), 2u);
  for (int d = 0; d < 3; ++d) {
    EXPECT_GT(results[0].cvr[d], results[1].cvr[d]) << "domain " << d;
  }
}

TEST(AbTestTest, TrafficSplitRoughlyEqual) {
  ServingWorld world = MakeWorld();
  Ranker any = [](int, int, const std::vector<int>& cands) {
    return std::vector<float>(cands.size(), 0.f);
  };
  AbTestConfig config;
  config.days = 4;
  config.impressions_per_day_per_domain = 1000;
  const auto results = RunAbTest(
      world, {{"a", any}, {"b", any}, {"c", any}, {"d", any}}, config);
  int64_t total = 0;
  for (const GroupResult& r : results) total += r.impressions[0];
  for (const GroupResult& r : results) {
    EXPECT_NEAR(static_cast<double>(r.impressions[0]) / total, 0.25, 0.08);
  }
}

TEST(AbTestTest, PopularityRankerPrefersPopular) {
  ServingWorld world = MakeWorld();
  Ranker pop = PopularityRanker(world);
  const std::vector<int> popularity = world.ItemPopularity(0);
  int best = 0, worst = 0;
  for (size_t v = 1; v < popularity.size(); ++v) {
    if (popularity[v] > popularity[best]) best = static_cast<int>(v);
    if (popularity[v] < popularity[worst]) worst = static_cast<int>(v);
  }
  const std::vector<float> scores = pop(0, 0, {best, worst});
  EXPECT_GT(scores[0], scores[1]);
}

TEST(AbTestTest, DeterministicForSeed) {
  ServingWorld world = MakeWorld();
  Ranker any = [](int, int, const std::vector<int>& cands) {
    std::vector<float> s(cands.size());
    for (size_t i = 0; i < cands.size(); ++i) {
      s[i] = static_cast<float>(cands[i] % 7);
    }
    return s;
  };
  AbTestConfig config;
  config.days = 2;
  config.impressions_per_day_per_domain = 300;
  const auto a = RunAbTest(world, {{"g", any}}, config);
  const auto b = RunAbTest(world, {{"g", any}}, config);
  EXPECT_EQ(a[0].cvr, b[0].cvr);
}

}  // namespace
}  // namespace nmcdr
