#include <gtest/gtest.h>

#include <cmath>

#include "core/complementing.h"
#include "core/hetero_encoder.h"
#include "core/inter_matching.h"
#include "core/intra_matching.h"
#include "core/prediction.h"
#include "graph/interaction_graph.h"

namespace nmcdr {
namespace {

constexpr int kDim = 8;

TEST(HeteroEncoderTest, OutputShapeAndFiniteness) {
  ag::ParameterStore store;
  Rng rng(1);
  HeteroGraphEncoder encoder(&store, "enc", kDim, 2, &rng);
  InteractionGraph graph(4, 5, {{0, 0}, {0, 1}, {1, 2}, {2, 3}, {3, 4}});
  ag::Tensor users{Matrix::Gaussian(4, kDim, &rng, 0.f, 0.1f), true};
  ag::Tensor items{Matrix::Gaussian(5, kDim, &rng, 0.f, 0.1f), true};
  ag::Tensor out = encoder.Forward(users, items,
                                   graph.NormalizedUserItemAdj(),
                                   graph.NormalizedItemUserAdj());
  EXPECT_EQ(out.rows(), 4);
  EXPECT_EQ(out.cols(), kDim);
  for (int i = 0; i < out.value().size(); ++i) {
    EXPECT_TRUE(std::isfinite(out.value().data()[i]));
  }
}

TEST(HeteroEncoderTest, ZeroDegreeUserKeepsResidualIdentityPath) {
  // A user with no interactions receives no aggregated message; with the
  // residual convention its representation stays anchored at its
  // embedding plus the self transform.
  ag::ParameterStore store;
  Rng rng(2);
  HeteroGraphEncoder encoder(&store, "enc", kDim, 1, &rng);
  InteractionGraph graph(2, 2, {{0, 0}});  // user 1 isolated
  Matrix user_values = Matrix::Gaussian(2, kDim, &rng, 0.f, 0.1f);
  ag::Tensor users{user_values, true};
  ag::Tensor items{Matrix::Gaussian(2, kDim, &rng, 0.f, 0.1f), true};
  ag::Tensor out = encoder.Forward(users, items,
                                   graph.NormalizedUserItemAdj(),
                                   graph.NormalizedItemUserAdj());
  // The isolated user's output differs from the raw embedding only by the
  // (deterministic) self-message delta; crucially it is finite and the
  // residual keeps it within a bounded distance of the embedding.
  for (int c = 0; c < kDim; ++c) {
    EXPECT_TRUE(std::isfinite(out.value().At(1, c)));
  }
}

TEST(HeteroEncoderTest, GradientsReachEmbeddings) {
  ag::ParameterStore store;
  Rng rng(3);
  HeteroGraphEncoder encoder(&store, "enc", kDim, 2, &rng);
  InteractionGraph graph(3, 3, {{0, 0}, {1, 1}, {2, 2}, {0, 2}});
  ag::Tensor users = store.Register("u", Matrix::Gaussian(3, kDim, &rng));
  ag::Tensor items = store.Register("v", Matrix::Gaussian(3, kDim, &rng));
  ag::Tensor out = encoder.Forward(users, items,
                                   graph.NormalizedUserItemAdj(),
                                   graph.NormalizedItemUserAdj());
  ag::Backward(ag::Sum(out));
  EXPECT_FALSE(users.grad().empty());
  EXPECT_FALSE(items.grad().empty());
  EXPECT_GT(users.grad().FrobeniusNorm(), 0.f);
  EXPECT_GT(items.grad().FrobeniusNorm(), 0.f);
}

TEST(IntraMatchingTest, EmptyPoolsReduceToResidual) {
  // With both pools empty, messages are zero, the gate outputs tanh of a
  // bias-path constant; the residual keeps the result finite and
  // row-wise equal across users receiving identical (zero) messages.
  ag::ParameterStore store;
  Rng rng(4);
  IntraMatchingComponent intra(&store, "intra", kDim, &rng,
                               /*gate_fusion=*/true,
                               /*shared_transform=*/false);
  Matrix input = Matrix::Gaussian(5, kDim, &rng, 0.f, 0.1f);
  ag::Tensor users{input, true};
  ag::Tensor out = intra.Forward(users, {}, {});
  ASSERT_EQ(out.rows(), 5);
  // delta = out - input must be the same for every row (global message).
  for (int r = 1; r < 5; ++r) {
    for (int c = 0; c < kDim; ++c) {
      const float d0 = out.value().At(0, c) - input.At(0, c);
      const float dr = out.value().At(r, c) - input.At(r, c);
      EXPECT_NEAR(d0, dr, 1e-5f);
    }
  }
}

TEST(IntraMatchingTest, HeadAndTailMessagesDiffer) {
  ag::ParameterStore store;
  Rng rng(5);
  IntraMatchingComponent intra(&store, "intra", kDim, &rng, true, false);
  Matrix input = Matrix::Gaussian(6, kDim, &rng, 0.f, 0.5f);
  ag::Tensor users{input, true};
  ag::Tensor head_only = intra.Forward(users, {0, 1}, {});
  ag::Tensor tail_only = intra.Forward(users, {}, {0, 1});
  // Same sampled users routed through different transforms => different
  // outputs (the W_head vs W_tail distinction of Eq. 8).
  EXPECT_FALSE(AllClose(head_only.value(), tail_only.value(), 1e-4f));
}

TEST(IntraMatchingTest, SharedTransformCollapsesDistinction) {
  ag::ParameterStore store;
  Rng rng(6);
  IntraMatchingComponent intra(&store, "intra", kDim, &rng, true,
                               /*shared_transform=*/true);
  Matrix input = Matrix::Gaussian(6, kDim, &rng, 0.f, 0.5f);
  ag::Tensor users{input, true};
  ag::Tensor head_only = intra.Forward(users, {2, 3}, {});
  ag::Tensor tail_only = intra.Forward(users, {}, {2, 3});
  // With one shared transform the message paths coincide up to the gate's
  // own (head/tail-specific) mixing; the raw pooled messages are equal, so
  // outputs built from swapped pools must agree when gates are disabled.
  ag::ParameterStore store2;
  Rng rng2(6);
  IntraMatchingComponent no_gate(&store2, "intra", kDim, &rng2,
                                 /*gate_fusion=*/false, true);
  ag::Tensor a = no_gate.Forward(users, {2, 3}, {});
  ag::Tensor b = no_gate.Forward(users, {}, {2, 3});
  EXPECT_TRUE(AllClose(a.value(), b.value(), 1e-5f));
  (void)head_only;
  (void)tail_only;
}

TEST(InterMatchingTest, NonOverlappedUsersGetNoSelfMessage) {
  ag::ParameterStore store;
  Rng rng(7);
  InterMatchingComponent inter(&store, "inter", kDim, &rng, true);
  ag::Tensor w_own = store.Register("wo", Matrix::Xavier(kDim, kDim, &rng));
  ag::Tensor w_other = store.Register("wx", Matrix::Xavier(kDim, kDim, &rng));
  Matrix input = Matrix::Gaussian(4, kDim, &rng, 0.f, 0.5f);
  ag::Tensor users{input, true};
  ag::Tensor other{Matrix::Gaussian(3, kDim, &rng, 0.f, 0.5f), true};

  // Users 0,1 linked; 2,3 not. With an empty other-sample, the only
  // cross-domain signal is the self message, so unlinked users must see an
  // identical (user-independent) delta while linked users differ.
  const std::vector<int> links = {0, 2, -1, -1};
  ag::Tensor out = inter.Forward(users, other, links, {}, w_own, w_other);
  auto delta = [&](int r, int c) {
    return out.value().At(r, c) - 0.f;  // absolute output compared below
  };
  (void)delta;
  // Outputs for users 2 and 3 follow the same linear map of their inputs:
  // out = tanh-gate(u W_own) + u. Verify by recomputing for user 3 with
  // user 2's input: swap rows and compare.
  Matrix swapped = input;
  for (int c = 0; c < kDim; ++c) {
    std::swap(swapped.At(2, c), swapped.At(3, c));
  }
  ag::Tensor users_swapped{swapped, true};
  ag::Tensor out_swapped =
      inter.Forward(users_swapped, other, links, {}, w_own, w_other);
  for (int c = 0; c < kDim; ++c) {
    EXPECT_NEAR(out.value().At(2, c), out_swapped.value().At(3, c), 1e-5f);
    EXPECT_NEAR(out.value().At(3, c), out_swapped.value().At(2, c), 1e-5f);
  }
}

TEST(InterMatchingTest, LinkedUserReactsToCounterpart) {
  ag::ParameterStore store;
  Rng rng(8);
  InterMatchingComponent inter(&store, "inter", kDim, &rng, true);
  ag::Tensor w_own = store.Register("wo", Matrix::Xavier(kDim, kDim, &rng));
  ag::Tensor w_other = store.Register("wx", Matrix::Xavier(kDim, kDim, &rng));
  ag::Tensor users{Matrix::Gaussian(2, kDim, &rng, 0.f, 0.5f), true};
  Matrix other_a = Matrix::Gaussian(2, kDim, &rng, 0.f, 0.5f);
  Matrix other_b = other_a;
  for (int c = 0; c < kDim; ++c) other_b.At(0, c) += 1.f;

  const std::vector<int> links = {0, -1};
  ag::Tensor out_a = inter.Forward(users, ag::Tensor(other_a, true), links,
                                   {}, w_own, w_other);
  ag::Tensor out_b = inter.Forward(users, ag::Tensor(other_b, true), links,
                                   {}, w_own, w_other);
  // Linked user 0 changes; unlinked user 1 does not.
  bool user0_changed = false;
  for (int c = 0; c < kDim; ++c) {
    if (std::fabs(out_a.value().At(0, c) - out_b.value().At(0, c)) > 1e-6f) {
      user0_changed = true;
    }
    EXPECT_NEAR(out_a.value().At(1, c), out_b.value().At(1, c), 1e-6f);
  }
  EXPECT_TRUE(user0_changed);
}

TEST(ComplementingTest, CandidateListsContainObservedNeighbors) {
  InteractionGraph graph(3, 10,
                         {{0, 1}, {0, 2}, {1, 3}, {2, 4}, {1, 1}, {2, 1}});
  Rng rng(9);
  auto candidates =
      BuildComplementCandidates(graph, /*extra=*/4, /*observed_only=*/false,
                                &rng);
  ASSERT_EQ(candidates->size(), 3u);
  for (int u = 0; u < 3; ++u) {
    const std::vector<int>& list = (*candidates)[u];
    // Prefix equals the observed neighbours.
    const std::vector<int>& observed = graph.UserNeighbors(u);
    ASSERT_GE(list.size(), observed.size());
    for (size_t i = 0; i < observed.size(); ++i) {
      EXPECT_EQ(list[i], observed[i]);
    }
    // Extras are non-observed and unique.
    std::set<int> seen;
    for (size_t i = observed.size(); i < list.size(); ++i) {
      EXPECT_FALSE(graph.HasInteraction(u, list[i]));
      EXPECT_TRUE(seen.insert(list[i]).second);
    }
  }
}

TEST(ComplementingTest, ObservedOnlyModeAddsNothing) {
  InteractionGraph graph(2, 10, {{0, 1}, {1, 2}, {1, 3}});
  Rng rng(10);
  auto candidates = BuildComplementCandidates(graph, 5, true, &rng);
  EXPECT_EQ((*candidates)[0], graph.UserNeighbors(0));
  EXPECT_EQ((*candidates)[1], graph.UserNeighbors(1));
}

TEST(ComplementingTest, ForwardChangesUsersWithCandidates) {
  ag::ParameterStore store;
  Rng rng(11);
  ComplementingComponent comp(&store, "comp", kDim, &rng);
  ag::Tensor users{Matrix::Gaussian(2, kDim, &rng, 0.f, 0.5f), true};
  ag::Tensor items{Matrix::Gaussian(6, kDim, &rng, 0.f, 0.5f), true};
  auto candidates = std::make_shared<std::vector<std::vector<int>>>(
      std::vector<std::vector<int>>{{0, 1, 5}, {}});
  ag::Tensor out = comp.Forward(users, items, candidates);
  EXPECT_EQ(out.rows(), 2);
  EXPECT_FALSE(AllClose(out.value(), users.value(), 1e-6f));
}

TEST(PredictionLayerTest, LogitsShapeAndGradients) {
  ag::ParameterStore store;
  Rng rng(12);
  PredictionLayer pred(&store, "pred", kDim, {16}, &rng);
  ag::Tensor u = store.Register("u", Matrix::Gaussian(7, kDim, &rng));
  ag::Tensor v = store.Register("v", Matrix::Gaussian(7, kDim, &rng));
  ag::Tensor logits = pred.Forward(u, v);
  EXPECT_EQ(logits.rows(), 7);
  EXPECT_EQ(logits.cols(), 1);
  ag::Backward(ag::Sum(logits));
  EXPECT_GT(u.grad().FrobeniusNorm(), 0.f);
  EXPECT_GT(v.grad().FrobeniusNorm(), 0.f);
}

TEST(PredictionLayerTest, MatchingTermFavorsAlignedPairs) {
  // At init the product path is a plain inner product, so an aligned
  // (u ~= v) pair must out-score an anti-aligned one on average.
  ag::ParameterStore store;
  Rng rng(13);
  PredictionLayer pred(&store, "pred", kDim, {16}, &rng);
  Matrix base = Matrix::Gaussian(1, kDim, &rng, 0.f, 1.f);
  Matrix anti = base;
  for (int c = 0; c < kDim; ++c) anti.At(0, c) = -anti.At(0, c);
  ag::Tensor u{base};
  const float aligned = pred.Forward(u, ag::Tensor(base)).value().At(0, 0);
  const float opposed = pred.Forward(u, ag::Tensor(anti)).value().At(0, 0);
  EXPECT_GT(aligned, opposed);
}

}  // namespace
}  // namespace nmcdr
