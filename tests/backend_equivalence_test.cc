// Bit-exactness fuzz for the kernel backends (src/tensor/backend.h): every
// KernelBackend entry point must produce byte-identical results under the
// serial backend, under the explicitly vectorized backend (register-blocked
// SIMD GEMM family), and under the parallel backend at several pool sizes,
// including 0-row, 1-row, and ragged-tail shapes — tails are where SIMD
// remainder handling breaks first. This is the enforcement arm of the
// backend contract — training and serving results must not depend on the
// backend or thread count. Trainer-level tests close the loop end to end:
// identical final loss serial vs vector vs parallel, across the model zoo.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/nmcdr_model.h"
#include "obs/obs.h"
#include "tensor/backend.h"
#include "tensor/matrix_ops.h"
#include "tensor/rng.h"
#include "tests/test_util.h"
#include "train/registry.h"
#include "util/thread_pool.h"

namespace nmcdr {
namespace {

/// Uniform entries in [-2, 2) with ~1/8 exact zeros, so the GEMMs' `av ==
/// 0.f` skip path is exercised by the fuzz.
Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < m.size(); ++i) {
    m.data()[i] = rng->Bernoulli(0.125) ? 0.f : rng->Uniform(-2.f, 2.f);
  }
  return m;
}

/// Strictly positive entries for Log.
Matrix RandomPositiveMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < m.size(); ++i) m.data()[i] = rng->Uniform(0.1f, 3.f);
  return m;
}

std::vector<int> RandomIds(int count, int table_rows, Rng* rng) {
  std::vector<int> ids(count);
  // Duplicates are likely by construction — ScatterAddRows must keep
  // colliding updates in serial order.
  for (int& id : ids) id = static_cast<int>(rng->NextUint64(table_rows));
  return ids;
}

::testing::AssertionResult BitEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ::testing::AssertionFailure()
           << "shape mismatch: " << a.rows() << "x" << a.cols() << " vs "
           << b.rows() << "x" << b.cols();
  }
  if (a.size() > 0 && std::memcmp(a.data(), b.data(),
                                  sizeof(float) * a.size()) != 0) {
    for (int i = 0; i < a.size(); ++i) {
      if (std::memcmp(&a.data()[i], &b.data()[i], sizeof(float)) != 0) {
        return ::testing::AssertionFailure()
               << "first differing element " << i << ": " << a.data()[i]
               << " vs " << b.data()[i];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// Pool sizes the parallel backend is fuzzed at. 1 (degenerate), 2/3
/// (ragged splits of most shapes), 5 (more chunks than some dimensions).
const int kPoolSizes[] = {1, 2, 3, 5};

/// (rows, cols) shapes covering empty, single-row/col, and ragged tails
/// (sizes not divisible by typical chunk counts).
const int kShapes[][2] = {{0, 4}, {1, 1},  {1, 7},  {3, 5},
                          {7, 3}, {5, 17}, {33, 9}, {64, 1}};

/// Runs `check(serial, other)` once with the vector backend and once per
/// fuzzed pool size with the parallel backend, so every call site fuzzes
/// all non-reference backends against the serial reference.
template <typename Fn>
void ForEachCheckedBackend(Fn check) {
  const SerialBackend& serial = SerialKernelBackend();
  {
    SCOPED_TRACE("vector backend");
    check(serial, VectorKernelBackend());
  }
  for (int pool_size : kPoolSizes) {
    SCOPED_TRACE("pool size " + std::to_string(pool_size));
    ThreadPool pool(pool_size);
    const ParallelBackend parallel(&pool);
    check(serial, parallel);
  }
}

TEST(BackendEquivalenceTest, MatMulFamily) {
  Rng rng(11);
  ForEachCheckedBackend([&](const KernelBackend& s, const KernelBackend& p) {
    for (const auto& shape : kShapes) {
      const int m = shape[0], k = shape[1];
      const int n = 1 + static_cast<int>(rng.NextUint64(19));
      const Matrix a = RandomMatrix(m, k, &rng);
      const Matrix b = RandomMatrix(k, n, &rng);
      SCOPED_TRACE(std::to_string(m) + "x" + std::to_string(k) + " * " +
                   std::to_string(k) + "x" + std::to_string(n));

      Matrix out_s = RandomMatrix(m, n, &rng);  // accumulate onto noise
      Matrix out_p = out_s;
      s.MatMulAccumInto(a, b, &out_s);
      p.MatMulAccumInto(a, b, &out_p);
      EXPECT_TRUE(BitEqual(out_s, out_p));

      const Matrix ta = RandomMatrix(k, m, &rng);
      const Matrix tb = RandomMatrix(k, n, &rng);
      EXPECT_TRUE(BitEqual(s.MatMulTransA(ta, tb), p.MatMulTransA(ta, tb)));

      const Matrix bb = RandomMatrix(n, k, &rng);
      EXPECT_TRUE(BitEqual(s.MatMulTransB(a, bb), p.MatMulTransB(a, bb)));

      EXPECT_TRUE(BitEqual(s.Transpose(a), p.Transpose(a)));
    }
  });
}

TEST(BackendEquivalenceTest, ElementwiseAndBroadcast) {
  Rng rng(12);
  ForEachCheckedBackend([&](const KernelBackend& s, const KernelBackend& p) {
    for (const auto& shape : kShapes) {
      const int r = shape[0], c = shape[1];
      SCOPED_TRACE(std::to_string(r) + "x" + std::to_string(c));
      const Matrix a = RandomMatrix(r, c, &rng);
      const Matrix b = RandomMatrix(r, c, &rng);
      EXPECT_TRUE(BitEqual(s.Add(a, b), p.Add(a, b)));
      EXPECT_TRUE(BitEqual(s.Sub(a, b), p.Sub(a, b)));
      EXPECT_TRUE(BitEqual(s.Hadamard(a, b), p.Hadamard(a, b)));
      EXPECT_TRUE(BitEqual(s.Axpby(a, 1.7f, b, -0.3f),
                           p.Axpby(a, 1.7f, b, -0.3f)));
      EXPECT_TRUE(BitEqual(s.Scale(a, -2.5f), p.Scale(a, -2.5f)));
      EXPECT_TRUE(BitEqual(s.AddScalar(a, 0.75f), p.AddScalar(a, 0.75f)));

      Matrix acc_s = RandomMatrix(r, c, &rng);
      Matrix acc_p = acc_s;
      s.AxpyInto(a, 0.5f, &acc_s);
      p.AxpyInto(a, 0.5f, &acc_p);
      EXPECT_TRUE(BitEqual(acc_s, acc_p));

      const Matrix row = RandomMatrix(1, c, &rng);
      EXPECT_TRUE(BitEqual(s.AddRowBroadcast(a, row),
                           p.AddRowBroadcast(a, row)));
      EXPECT_TRUE(BitEqual(s.ConcatCols(a, b), p.ConcatCols(a, b)));
    }
  });
}

TEST(BackendEquivalenceTest, Activations) {
  Rng rng(13);
  ForEachCheckedBackend([&](const KernelBackend& s, const KernelBackend& p) {
    for (const auto& shape : kShapes) {
      const int r = shape[0], c = shape[1];
      SCOPED_TRACE(std::to_string(r) + "x" + std::to_string(c));
      const Matrix a = RandomMatrix(r, c, &rng);
      EXPECT_TRUE(BitEqual(s.Relu(a), p.Relu(a)));
      EXPECT_TRUE(BitEqual(s.Sigmoid(a), p.Sigmoid(a)));
      EXPECT_TRUE(BitEqual(s.Tanh(a), p.Tanh(a)));
      EXPECT_TRUE(BitEqual(s.Softplus(a), p.Softplus(a)));
      EXPECT_TRUE(BitEqual(s.Exp(a), p.Exp(a)));
      const Matrix pos = RandomPositiveMatrix(r, c, &rng);
      EXPECT_TRUE(BitEqual(s.Log(pos), p.Log(pos)));
      if (c > 0) {
        EXPECT_TRUE(BitEqual(s.SoftmaxRows(a), p.SoftmaxRows(a)));
      }
    }
  });
}

TEST(BackendEquivalenceTest, Reductions) {
  Rng rng(14);
  ForEachCheckedBackend([&](const KernelBackend& s, const KernelBackend& p) {
    for (const auto& shape : kShapes) {
      const int r = shape[0], c = shape[1];
      SCOPED_TRACE(std::to_string(r) + "x" + std::to_string(c));
      const Matrix a = RandomMatrix(r, c, &rng);
      const Matrix b = RandomMatrix(r, c, &rng);
      EXPECT_TRUE(BitEqual(s.RowSum(a), p.RowSum(a)));
      EXPECT_TRUE(BitEqual(s.RowDot(a, b), p.RowDot(a, b)));
      EXPECT_TRUE(BitEqual(s.ColSum(a), p.ColSum(a)));
    }
  });
}

TEST(BackendEquivalenceTest, GatherAndScatter) {
  Rng rng(15);
  ForEachCheckedBackend([&](const KernelBackend& s, const KernelBackend& p) {
    const int table_rows = 23;
    for (int cols : {1, 5, 16}) {
      const Matrix table = RandomMatrix(table_rows, cols, &rng);
      for (int count : {0, 1, 7, 64}) {
        SCOPED_TRACE(std::to_string(count) + " ids, " + std::to_string(cols) +
                     " cols");
        const std::vector<int> ids = RandomIds(count, table_rows, &rng);
        EXPECT_TRUE(BitEqual(s.GatherRows(table, ids),
                             p.GatherRows(table, ids)));

        const Matrix src = RandomMatrix(count, cols, &rng);
        Matrix out_s = RandomMatrix(table_rows, cols, &rng);
        Matrix out_p = out_s;
        s.ScatterAddRows(src, ids, &out_s);
        p.ScatterAddRows(src, ids, &out_p);
        EXPECT_TRUE(BitEqual(out_s, out_p));
      }
    }
  });
}

/// The fused kernels (graph-program replay path): the GEMM+bias+activation
/// epilogue in every activation variant with and without bias, the fused
/// elementwise chain, and the planned backward GEMMs — all bit-exact with
/// serial under the vector backend (whose epilogues run inside the SIMD
/// tile cores) and the parallel backend at every pool size.
TEST(BackendEquivalenceTest, FusedEpilogues) {
  Rng rng(17);
  const FusedAct kActs[] = {FusedAct::kNone, FusedAct::kRelu,
                            FusedAct::kSigmoid, FusedAct::kTanh};
  ForEachCheckedBackend([&](const KernelBackend& s, const KernelBackend& p) {
    for (const auto& shape : kShapes) {
      const int m = shape[0], k = shape[1];
      const int n = 1 + static_cast<int>(rng.NextUint64(19));
      const Matrix a = RandomMatrix(m, k, &rng);
      const Matrix b = RandomMatrix(k, n, &rng);
      const Matrix bias = RandomMatrix(1, n, &rng);
      SCOPED_TRACE(std::to_string(m) + "x" + std::to_string(k) + " * " +
                   std::to_string(k) + "x" + std::to_string(n));
      for (const FusedAct act : kActs) {
        SCOPED_TRACE("act " + std::to_string(static_cast<int>(act)));
        for (const Matrix* bias_arg : {&bias, static_cast<const Matrix*>(
                                                  nullptr)}) {
          Matrix out_s(m, n);
          Matrix out_p(m, n);
          s.FusedMatMulBiasActInto(a, b, bias_arg, act, &out_s);
          p.FusedMatMulBiasActInto(a, b, bias_arg, act, &out_p);
          EXPECT_TRUE(BitEqual(out_s, out_p));
        }
      }

      const Matrix ta = RandomMatrix(k, m, &rng);
      const Matrix tb = RandomMatrix(k, n, &rng);
      EXPECT_TRUE(BitEqual(s.PlannedMatMulTransA(ta, tb),
                           p.PlannedMatMulTransA(ta, tb)));
      const Matrix bb = RandomMatrix(n, k, &rng);
      EXPECT_TRUE(BitEqual(s.PlannedMatMulTransB(a, bb),
                           p.PlannedMatMulTransB(a, bb)));

      // A representative fused elementwise chain (the sigmoid-BCE shape):
      // sigmoid(cur), then side - cur, then scale.
      const Matrix side = RandomMatrix(m, k, &rng);
      EltwiseStep steps[3];
      steps[0].op = EltwiseOp::kSigmoid;
      steps[1].op = EltwiseOp::kSubMat;
      steps[1].rhs = true;
      steps[1].side = side.data();
      steps[2].op = EltwiseOp::kScale;
      steps[2].scalar = 0.5f;
      Matrix ew_s(m, k);
      Matrix ew_p(m, k);
      s.FusedEltwiseInto(a, steps, 3, &ew_s);
      p.FusedEltwiseInto(a, steps, 3, &ew_p);
      EXPECT_TRUE(BitEqual(ew_s, ew_p));
    }
  });
}

TEST(BackendEquivalenceTest, BackendGuardSelectsPerThread) {
  Rng rng(16);
  const Matrix a = RandomMatrix(4, 4, &rng);
  {
    BackendGuard guard(&SerialKernelBackend());
    EXPECT_STREQ(CurrentBackend().name(), "serial");
    {
      BackendGuard nested(&ParallelKernelBackend());
      EXPECT_STREQ(CurrentBackend().name(), "parallel");
      BackendGuard noop(nullptr);  // keeps whatever is current
      EXPECT_STREQ(CurrentBackend().name(), "parallel");
    }
    EXPECT_STREQ(CurrentBackend().name(), "serial");
    // Dispatchers follow the guard; result identical either way.
    EXPECT_TRUE(BitEqual(Add(a, a), SerialKernelBackend().Add(a, a)));
  }
}

TEST(BackendEquivalenceTest, BackendForThreadsMapsKnob) {
  EXPECT_EQ(BackendForThreads(0), nullptr);
  EXPECT_EQ(BackendForThreads(1), &SerialKernelBackend());
  EXPECT_EQ(BackendForThreads(4), &ParallelKernelBackend());
}

/// End-to-end determinism: the same model trained with the serial backend
/// and with the parallel backend (shared pool) reaches the bit-identical
/// final loss — the whole forward/backward/update chain is backend-proof.
TEST(BackendEquivalenceTest, TrainerFinalLossIdenticalAcrossBackends) {
  NmcdrConfig model_config;
  model_config.hidden_dim = 8;
  model_config.mlp_hidden = {16};

  auto run = [&](int threads) {
    auto data = testing_util::TinyData();
    NmcdrModel model(data->View(), model_config, /*seed=*/3, 1e-3f);
    TrainConfig config;
    config.epochs = 2;
    config.batch_size = 64;
    config.threads = threads;
    Trainer trainer(data->View(), config);
    return trainer.Train(&model).final_loss;
  };

  const float serial_loss = run(1);
  const float parallel_loss = run(4);
  EXPECT_EQ(serial_loss, parallel_loss);  // bitwise, not approximately
}

/// The vector backend end to end, across the model zoo: every registered
/// model trained with the register-blocked SIMD kernels (BackendGuard
/// pinning the vector backend; TrainConfig::threads = 0 inherits it)
/// reaches the bit-identical final loss of the serial run. This is the
/// trainer-level arm of the vector bit-exactness contract — the same
/// guarantee NMCDR_BACKEND=vector relies on in the release-vector CI leg.
TEST(BackendEquivalenceTest, TrainerFinalLossIdenticalVectorAcrossModels) {
  RegisterAllModels();
  CommonHyper hyper;
  hyper.embed_dim = 8;
  hyper.mlp_hidden = {16};
  hyper.seed = 3;

  for (const std::string& name : ModelRegistry::Instance().Names()) {
    SCOPED_TRACE("model " + name);
    auto run = [&](const KernelBackend* backend) {
      BackendGuard guard(backend);
      auto data = testing_util::TinyData();
      auto model = ModelRegistry::Instance().Get(name)(data->View(), hyper,
                                                       /*lr=*/1e-3f);
      TrainConfig config;
      config.epochs = 2;
      config.batch_size = 64;
      config.threads = 0;  // inherit the guard's backend
      Trainer trainer(data->View(), config, &data->full_graph_z(),
                      &data->full_graph_zbar());
      return trainer.Train(model.get()).final_loss;
    };

    const float serial_loss = run(&SerialKernelBackend());
    const float vector_loss = run(&VectorKernelBackend());
    EXPECT_EQ(serial_loss, vector_loss);  // bitwise, not approximately
  }
}

/// Graph-program fusion is numerics-neutral: every registered model
/// trained with the compiled fused program (TrainConfig::fusion) reaches
/// the bit-identical final loss of a fully eager run — under the serial
/// backend and under the parallel backend. This is the model-zoo-wide
/// enforcement arm of the src/program bitwise contract; models whose op
/// streams the compiler cannot cover fall back to eager and must still
/// match trivially.
TEST(BackendEquivalenceTest, TrainerFinalLossIdenticalFusedVsEager) {
  RegisterAllModels();
  CommonHyper hyper;
  hyper.embed_dim = 8;
  hyper.mlp_hidden = {16};
  hyper.seed = 3;

  for (const std::string& name : ModelRegistry::Instance().Names()) {
    SCOPED_TRACE("model " + name);
    auto run = [&](bool fusion, int threads) {
      auto data = testing_util::TinyData();
      auto model = ModelRegistry::Instance().Get(name)(data->View(), hyper,
                                                       /*lr=*/1e-3f);
      TrainConfig config;
      config.epochs = 2;
      config.batch_size = 64;
      config.threads = threads;
      config.fusion = fusion;
      Trainer trainer(data->View(), config, &data->full_graph_z(),
                      &data->full_graph_zbar());
      return trainer.Train(model.get()).final_loss;
    };

    const float eager_serial = run(/*fusion=*/false, /*threads=*/1);
    const float fused_serial = run(/*fusion=*/true, /*threads=*/1);
    const float eager_parallel = run(/*fusion=*/false, /*threads=*/4);
    const float fused_parallel = run(/*fusion=*/true, /*threads=*/4);
    EXPECT_EQ(eager_serial, fused_serial);      // bitwise, not approximately
    EXPECT_EQ(eager_parallel, fused_parallel);
    EXPECT_EQ(eager_serial, eager_parallel);
  }
}

/// Observability is read-only: training with metrics + profiling enabled
/// must produce the bit-identical final loss as training with both
/// disabled. The probes (KernelScope, OpScope, TraceSpan, backward
/// timing) may only observe — never perturb — the numeric path.
TEST(BackendEquivalenceTest, TrainerFinalLossIdenticalWithObsOnAndOff) {
  NmcdrConfig model_config;
  model_config.hidden_dim = 8;
  model_config.mlp_hidden = {16};

  auto run = [&](bool metrics, bool profiling) {
    obs::MetricsEnabledGuard metrics_guard(metrics);
    obs::ProfilingEnabledGuard profiling_guard(profiling);
    auto data = testing_util::TinyData();
    NmcdrModel model(data->View(), model_config, /*seed=*/3, 1e-3f);
    TrainConfig config;
    config.epochs = 2;
    config.batch_size = 64;
    config.threads = 2;
    Trainer trainer(data->View(), config);
    return trainer.Train(&model).final_loss;
  };

  const float off_loss = run(/*metrics=*/false, /*profiling=*/false);
  const float metrics_loss = run(/*metrics=*/true, /*profiling=*/false);
  const float profiled_loss = run(/*metrics=*/true, /*profiling=*/true);
  EXPECT_EQ(off_loss, metrics_loss);    // bitwise, not approximately
  EXPECT_EQ(off_loss, profiled_loss);
}

}  // namespace
}  // namespace nmcdr
