#include "train/registry.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace nmcdr {
namespace {

TEST(ModelRegistryTest, RegisterAllIsIdempotent) {
  RegisterAllModels();
  const size_t count = ModelRegistry::Instance().Names().size();
  RegisterAllModels();  // re-registration replaces, never duplicates
  EXPECT_EQ(ModelRegistry::Instance().Names().size(), count);
}

TEST(ModelRegistryTest, NamesPreserveRegistrationOrder) {
  RegisterAllModels();
  const std::vector<std::string> names = ModelRegistry::Instance().Names();
  // The paper-order list is a subset in order (the registry may contain
  // test stubs registered by other suites).
  size_t cursor = 0;
  for (const std::string& expected : PaperModelOrder()) {
    while (cursor < names.size() && names[cursor] != expected) ++cursor;
    EXPECT_LT(cursor, names.size()) << "missing " << expected;
  }
}

TEST(ModelRegistryTest, ReplacementTakesEffect) {
  RegisterAllModels();
  int calls = 0;
  ModelRegistry::Instance().Register(
      "StubModel", [&calls](const ScenarioView& view, const CommonHyper&,
                            float) -> std::unique_ptr<RecModel> {
        ++calls;
        return std::make_unique<testing_util::PolicyModel>(
            "StubModel", [](DomainSide, int, int) { return 0.f; });
        (void)view;
      });
  auto data = testing_util::TinyData();
  CommonHyper hyper;
  auto model =
      ModelRegistry::Instance().Get("StubModel")(data->View(), hyper, 0.f);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(model->name(), "StubModel");
  // Replace with a different stub.
  ModelRegistry::Instance().Register(
      "StubModel", [](const ScenarioView&, const CommonHyper&,
                      float) -> std::unique_ptr<RecModel> {
        return std::make_unique<testing_util::PolicyModel>(
            "StubModel2", [](DomainSide, int, int) { return 1.f; });
      });
  auto replaced =
      ModelRegistry::Instance().Get("StubModel")(data->View(), hyper, 0.f);
  EXPECT_EQ(replaced->name(), "StubModel2");
}

TEST(ModelRegistryDeathTest, UnknownNameAborts) {
  EXPECT_DEATH(ModelRegistry::Instance().Get("no-such-model"), "CHECK");
}

TEST(ScenarioViewTest, AccessorsRouteBySide) {
  auto data = testing_util::TinyData();
  const ScenarioView view = data->View();
  EXPECT_EQ(&view.domain(DomainSide::kZ), &data->scenario().z);
  EXPECT_EQ(&view.domain(DomainSide::kZbar), &data->scenario().zbar);
  EXPECT_EQ(&view.train_graph(DomainSide::kZ), &data->train_graph_z());
  EXPECT_EQ(&view.split(DomainSide::kZbar), &data->split_zbar());
}

TEST(LabeledBatchTest, SizeAndEmpty) {
  LabeledBatch batch;
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.size(), 0);
  batch.users = {1, 2};
  batch.items = {3, 4};
  batch.labels = {1.f, 0.f};
  EXPECT_FALSE(batch.empty());
  EXPECT_EQ(batch.size(), 2);
}

}  // namespace
}  // namespace nmcdr
