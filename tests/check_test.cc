// Death-path coverage for src/util/check.h: the always-on NMCDR_CHECK*
// family must abort with a useful diagnostic, and the NMCDR_DCHECK*
// family must be exactly as strong in NMCDR_DEBUG_CHECKS builds and
// completely free (condition unevaluated) otherwise.
#include "util/check.h"

#include <string>

#include "gtest/gtest.h"

namespace nmcdr {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  NMCDR_CHECK(true);
  NMCDR_CHECK_EQ(2, 2);
  NMCDR_CHECK_NE(2, 3);
  NMCDR_CHECK_LT(1, 2);
  NMCDR_CHECK_LE(2, 2);
  NMCDR_CHECK_GT(3, 2);
  NMCDR_CHECK_GE(3, 3);
}

TEST(CheckDeathTest, CheckAbortsWithCondition) {
  EXPECT_DEATH(NMCDR_CHECK(1 == 2), "CHECK\\(1 == 2\\)");
}

TEST(CheckDeathTest, CheckOpReportsOperands) {
  const int a = 1;
  const int b = 2;
  EXPECT_DEATH(NMCDR_CHECK_EQ(a, b), "\\(1 vs. 2\\)");
  EXPECT_DEATH(NMCDR_CHECK_GT(a, b), "CHECK\\(a > b\\)");
}

TEST(CheckDeathTest, CheckReportsFileAndLine) {
  EXPECT_DEATH(NMCDR_CHECK(false), "check_test.cc");
}

TEST(CheckTest, DcheckEvaluatesOnlyInDebugChecksBuilds) {
  bool evaluated = false;
  NMCDR_DCHECK(([&] {
    evaluated = true;
    return true;
  })());
  EXPECT_EQ(evaluated, NmcdrDebugChecksEnabled());

  bool op_evaluated = false;
  const auto observed = [&] {
    op_evaluated = true;
    return 1;
  };
  NMCDR_DCHECK_EQ(observed(), 1);
  EXPECT_EQ(op_evaluated, NmcdrDebugChecksEnabled());
}

TEST(CheckDeathTest, DcheckAbortsOnlyInDebugChecksBuilds) {
  if (NmcdrDebugChecksEnabled()) {
    EXPECT_DEATH(NMCDR_DCHECK(false), "CHECK\\(false\\)");
    EXPECT_DEATH(NMCDR_DCHECK_EQ(1, 2), "\\(1 vs. 2\\)");
  } else {
    NMCDR_DCHECK(false);  // compiled out: must not abort
    NMCDR_DCHECK_EQ(1, 2);
    NMCDR_DCHECK_LT(5, 1);
  }
}

}  // namespace
}  // namespace nmcdr
