#include "tensor/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

namespace nmcdr {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.size(), 12);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 4; ++c) EXPECT_EQ(m.At(r, c), 0.f);
  }
}

TEST(MatrixTest, FillConstructorAndFill) {
  Matrix m(2, 2, 3.5f);
  EXPECT_EQ(m.At(1, 1), 3.5f);
  m.Fill(-1.f);
  EXPECT_EQ(m.Sum(), -4.f);
  m.SetZero();
  EXPECT_EQ(m.Sum(), 0.f);
}

TEST(MatrixTest, FromRows) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.At(0, 2), 3.f);
  EXPECT_EQ(m.At(1, 0), 4.f);
}

TEST(MatrixTest, Identity) {
  Matrix eye = Matrix::Identity(3);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(eye.At(r, c), r == c ? 1.f : 0.f);
    }
  }
}

TEST(MatrixTest, RowPointerMatchesAt) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_EQ(m.row(1)[0], 3.f);
  m.row(1)[1] = 9.f;
  EXPECT_EQ(m.At(1, 1), 9.f);
}

TEST(MatrixTest, SumMeanMinMax) {
  Matrix m = Matrix::FromRows({{1, -2}, {3, 4}});
  EXPECT_EQ(m.Sum(), 6.f);
  EXPECT_EQ(m.Mean(), 1.5f);
  EXPECT_EQ(m.Min(), -2.f);
  EXPECT_EQ(m.Max(), 4.f);
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix m = Matrix::FromRows({{3, 4}});
  EXPECT_NEAR(m.FrobeniusNorm(), 5.f, 1e-6f);
}

TEST(MatrixTest, SpectralNormDiagonal) {
  Matrix m = Matrix::FromRows({{3, 0}, {0, 2}});
  EXPECT_NEAR(m.SpectralNorm(), 3.f, 1e-3f);
}

TEST(MatrixTest, SpectralNormBoundedByFrobenius) {
  Rng rng(4);
  Matrix m = Matrix::Gaussian(6, 5, &rng);
  const float spectral = m.SpectralNorm();
  EXPECT_LE(spectral, m.FrobeniusNorm() + 1e-4f);
  EXPECT_GT(spectral, 0.f);
}

TEST(MatrixTest, GaussianMoments) {
  Rng rng(8);
  Matrix m = Matrix::Gaussian(100, 100, &rng, 2.f, 0.5f);
  EXPECT_NEAR(m.Mean(), 2.f, 0.02f);
}

TEST(MatrixTest, XavierWithinBound) {
  Rng rng(8);
  const int in = 30, out = 20;
  Matrix m = Matrix::Xavier(in, out, &rng);
  const float bound = std::sqrt(6.f / (in + out));
  EXPECT_GE(m.Min(), -bound);
  EXPECT_LE(m.Max(), bound);
}

TEST(MatrixTest, SameShapeAndAllClose) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = Matrix::FromRows({{1, 2.0000001f}});
  Matrix c = Matrix::FromRows({{1}, {2}});
  EXPECT_TRUE(a.SameShape(b));
  EXPECT_FALSE(a.SameShape(c));
  EXPECT_TRUE(AllClose(a, b));
  EXPECT_FALSE(AllClose(a, c));
  EXPECT_FALSE(AllClose(a, Matrix::FromRows({{1, 3}})));
}

TEST(MatrixTest, CopyIsDeep) {
  Matrix a(2, 2, 1.f);
  Matrix b = a;
  b.At(0, 0) = 9.f;
  EXPECT_EQ(a.At(0, 0), 1.f);
}

TEST(MatrixDeathTest, OutOfRangeAccessAborts) {
  Matrix m(2, 2);
  EXPECT_DEATH(m.At(2, 0), "CHECK");
  EXPECT_DEATH(m.At(0, -1), "CHECK");
}

TEST(MatrixTest, DebugStringMentionsShape) {
  Matrix m(3, 4);
  EXPECT_NE(m.DebugString().find("3x4"), std::string::npos);
}

}  // namespace
}  // namespace nmcdr
