#include "graph/interaction_graph.h"

#include <set>

#include <gtest/gtest.h>

#include "graph/sampling.h"

namespace nmcdr {
namespace {

InteractionGraph MakeGraph() {
  // user 0: items {0,1,2}; user 1: item {1}; user 2: none.
  return InteractionGraph(3, 4, {{0, 0}, {0, 1}, {0, 2}, {1, 1}});
}

TEST(InteractionGraphTest, BasicAccessors) {
  InteractionGraph g = MakeGraph();
  EXPECT_EQ(g.num_users(), 3);
  EXPECT_EQ(g.num_items(), 4);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.UserDegree(0), 3);
  EXPECT_EQ(g.UserDegree(2), 0);
  EXPECT_EQ(g.ItemDegree(1), 2);
  EXPECT_EQ(g.ItemDegree(3), 0);
}

TEST(InteractionGraphTest, DuplicateEdgesCollapsed) {
  InteractionGraph g(2, 2, {{0, 1}, {0, 1}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.UserDegree(0), 1);
  EXPECT_EQ(g.ItemDegree(1), 1);
}

TEST(InteractionGraphTest, NeighborsSorted) {
  InteractionGraph g(1, 5, {{0, 4}, {0, 1}, {0, 3}});
  EXPECT_EQ(g.UserNeighbors(0), (std::vector<int>{1, 3, 4}));
}

TEST(InteractionGraphTest, HasInteraction) {
  InteractionGraph g = MakeGraph();
  EXPECT_TRUE(g.HasInteraction(0, 2));
  EXPECT_FALSE(g.HasInteraction(1, 0));
  EXPECT_FALSE(g.HasInteraction(2, 0));
}

TEST(InteractionGraphTest, HeadTailPartitionByThreshold) {
  InteractionGraph g = MakeGraph();
  // K_head = 2: head iff degree > 2 (see header re. the Eq. 5 typo).
  EXPECT_EQ(g.HeadUsers(2), (std::vector<int>{0}));
  EXPECT_EQ(g.TailUsers(2), (std::vector<int>{1, 2}));
  // Partition property for all thresholds.
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(g.HeadUsers(k).size() + g.TailUsers(k).size(), 3u);
  }
}

TEST(InteractionGraphTest, AverageItemInteractions) {
  InteractionGraph g = MakeGraph();
  EXPECT_DOUBLE_EQ(g.AverageItemInteractions(), 1.0);  // 4 edges / 4 items
}

TEST(InteractionGraphTest, NormalizedUserItemAdjRowsSumToOne) {
  InteractionGraph g = MakeGraph();
  auto adj = g.NormalizedUserItemAdj();
  EXPECT_EQ(adj->rows(), 3);
  EXPECT_EQ(adj->cols(), 4);
  Matrix ones(4, 1, 1.f);
  Matrix row_sums = adj->Multiply(ones);
  EXPECT_NEAR(row_sums.At(0, 0), 1.f, 1e-6f);
  EXPECT_NEAR(row_sums.At(1, 0), 1.f, 1e-6f);
  EXPECT_NEAR(row_sums.At(2, 0), 0.f, 1e-6f);  // zero-degree user
}

TEST(InteractionGraphTest, NormalizedItemUserAdjRowsSumToOne) {
  InteractionGraph g = MakeGraph();
  auto adj = g.NormalizedItemUserAdj();
  EXPECT_EQ(adj->rows(), 4);
  Matrix ones(3, 1, 1.f);
  Matrix row_sums = adj->Multiply(ones);
  EXPECT_NEAR(row_sums.At(1, 0), 1.f, 1e-6f);
  EXPECT_NEAR(row_sums.At(3, 0), 0.f, 1e-6f);
}

TEST(InteractionGraphTest, AdjacencyAggregationMatchesMeanOfNeighbors) {
  InteractionGraph g = MakeGraph();
  Matrix item_feat = Matrix::FromRows({{2}, {4}, {6}, {100}});
  Matrix agg = g.NormalizedUserItemAdj()->Multiply(item_feat);
  EXPECT_NEAR(agg.At(0, 0), 4.f, 1e-5f);   // mean(2,4,6)
  EXPECT_NEAR(agg.At(1, 0), 4.f, 1e-5f);   // item 1 only
}

TEST(InteractionGraphDeathTest, OutOfRangeEdgeAborts) {
  EXPECT_DEATH(InteractionGraph(1, 1, {{0, 1}}), "CHECK");
  EXPECT_DEATH(InteractionGraph(1, 1, {{-1, 0}}), "CHECK");
}

// ----------------------------------------------------------------- sampling

TEST(NegativeSamplerTest, NeverReturnsInteracted) {
  InteractionGraph g = MakeGraph();
  NegativeSampler sampler(&g);
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const int neg = sampler.SampleNegative(0, &rng);
    EXPECT_FALSE(g.HasInteraction(0, neg));
    EXPECT_EQ(neg, 3);  // only non-interacted item of user 0
  }
}

TEST(NegativeSamplerTest, BatchNegativesDistinctAndExcluded) {
  InteractionGraph g(1, 50, {{0, 0}});
  NegativeSampler sampler(&g);
  Rng rng(2);
  std::vector<int> negs = sampler.SampleNegatives(0, 10, {5, 6}, &rng);
  ASSERT_EQ(negs.size(), 10u);
  std::set<int> unique(negs.begin(), negs.end());
  EXPECT_EQ(unique.size(), 10u);
  EXPECT_EQ(unique.count(0), 0u);
  EXPECT_EQ(unique.count(5), 0u);
  EXPECT_EQ(unique.count(6), 0u);
}

TEST(MatchingPoolsTest, PartitionAndThreshold) {
  InteractionGraph g = MakeGraph();
  MatchingPools pools = BuildMatchingPools(g, 2);
  EXPECT_EQ(pools.head_users, (std::vector<int>{0}));
  EXPECT_EQ(pools.tail_users, (std::vector<int>{1, 2}));
}

TEST(SamplePoolTest, ReturnsWholePoolWhenSmall) {
  Rng rng(3);
  const std::vector<int> pool = {7, 8, 9};
  EXPECT_EQ(SamplePool(pool, 10, &rng), pool);
  EXPECT_EQ(SamplePool(pool, 3, &rng), pool);
}

TEST(SamplePoolTest, SamplesSubsetWithoutReplacement) {
  Rng rng(4);
  std::vector<int> pool;
  for (int i = 0; i < 100; ++i) pool.push_back(i * 2);
  std::vector<int> sample = SamplePool(pool, 20, &rng);
  ASSERT_EQ(sample.size(), 20u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (int v : sample) EXPECT_EQ(v % 2, 0);
}

}  // namespace
}  // namespace nmcdr
