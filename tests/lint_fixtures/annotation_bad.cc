// thread-annotation fixture (firing), four shapes:
//  1. an annotation naming a mutex the class does not declare,
//  2. a NMCDR_REQUIRES(mu_) body re-locking mu_ (self-deadlock),
//  3. a caller invoking a REQUIRES(mu_) method without holding mu_,
//  4. a caller invoking an EXCLUDES(mu_) method while holding mu_.
#include <mutex>

#include "util/thread_annotations.h"

class Gamma {
 public:
  void Caller();
  void NeedsLock() NMCDR_REQUIRES(mu_);
  void SelfLock() NMCDR_REQUIRES(mu_);
  void TakesLock() NMCDR_EXCLUDES(mu_);
  void Phantom() NMCDR_REQUIRES(ghost_mu_);

 private:
  std::mutex mu_;
  int value_ = 0;
};

void Gamma::Caller() {
  NeedsLock();
  std::lock_guard<std::mutex> lock(mu_);
  TakesLock();
}

void Gamma::NeedsLock() { ++value_; }

void Gamma::SelfLock() {
  std::lock_guard<std::mutex> lock(mu_);
  ++value_;
}

void Gamma::TakesLock() {
  std::lock_guard<std::mutex> lock(mu_);
  ++value_;
}

void Gamma::Phantom() { ++value_; }
