// lock-order fixture (firing), file B: the mirror of
// lock_order_cycle_a.cc — Beta locks Beta::mu_ then calls back into
// Alpha::LockA, closing the Alpha::mu_ -> Beta::mu_ -> Alpha::mu_ cycle.
#include <mutex>

class Alpha;

class Beta {
 public:
  void LockB();
  void CrossBA();

 private:
  Alpha* peer_;
  std::mutex mu_;
};

void Beta::LockB() { std::lock_guard<std::mutex> lock(mu_); }

void Beta::CrossBA() {
  std::lock_guard<std::mutex> lock(mu_);
  peer_->LockA();
}
