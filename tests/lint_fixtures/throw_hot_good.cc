// Fixture: the sanctioned hot-path validation split — NMCDR_DCHECK* in
// the hot core (compiled out unless NMCDR_DEBUG_CHECKS), NMCDR_CHECK*
// only in the cold public wrapper. [throw-hot] must stay quiet.
class CheckedEngine {
 public:
  int Submit(int n) NMCDR_COLD;
  int Serve(int n) NMCDR_HOT;
};

int CheckedEngine::Submit(int n) {
  NMCDR_CHECK_GE(n, 0);  // cold edge validation, legal
  return Serve(n);
}

int CheckedEngine::Serve(int n) {
  NMCDR_DCHECK_GE(n, 0);  // debug-only, legal in hot code
  return n + 1;
}
