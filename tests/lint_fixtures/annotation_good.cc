// thread-annotation fixture (passing): the same contract shapes as
// annotation_bad.cc with every contract honored — the REQUIRES method is
// called under the lock and never re-locks, the EXCLUDES method is
// called without the lock.
#include <mutex>

#include "util/thread_annotations.h"

class Delta {
 public:
  void Caller();
  void NeedsLock() NMCDR_REQUIRES(mu_);
  void TakesLock() NMCDR_EXCLUDES(mu_);

 private:
  std::mutex mu_;
  int value_ = 0;
};

void Delta::Caller() {
  TakesLock();
  std::lock_guard<std::mutex> lock(mu_);
  NeedsLock();
}

void Delta::NeedsLock() { ++value_; }

void Delta::TakesLock() {
  std::lock_guard<std::mutex> lock(mu_);
  ++value_;
}
