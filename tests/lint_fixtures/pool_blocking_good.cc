// pool-blocking fixture (passing): the dispatch happens after the lock
// scope closes, and the pool task locks mu_ briefly without blocking —
// the retire/dispatch handshake pattern used by the real servers.
#include <mutex>

class Pooler {
 public:
  void Kick();
  void Work();

 private:
  std::mutex mu_;
  int pending_ = 0;
};

void Pooler::Kick() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  ThreadPool::Shared()->Submit([this] { Work(); });
}

void Pooler::Work() {
  std::lock_guard<std::mutex> lock(mu_);
  --pending_;
}
