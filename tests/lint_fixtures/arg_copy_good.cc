// Fixture: the legal parameter shapes — const&, pointers, cheap wrapper
// types, and by-value sinks that std::move into a member. [arg-copy]
// must stay quiet.
#include <memory>
#include <string>
#include <utility>
#include <vector>

float SumAll(const Matrix& rows) { return rows.At(0, 0); }

int CountIds(const std::vector<int>& ids) {
  return static_cast<int>(ids.size());
}

void Publish(std::shared_ptr<int> snapshot) { (void)snapshot; }

class NameHolder {
 public:
  explicit NameHolder(std::string name) : name_(std::move(name)) {}

  void Adopt(std::vector<int> ids) {
    ids_ = std::move(ids);  // sink: by-value then moved stays legal
  }

 private:
  std::string name_;
  std::vector<int> ids_;
};
