// lock-order fixture (passing): two mutexes always taken in the same
// mu_ -> nu_ order, from two different functions. The graph has the
// edge; there is no cycle.
#include <mutex>

class Mono {
 public:
  void First();
  void Second();

 private:
  std::mutex mu_;
  std::mutex nu_;
};

void Mono::First() {
  std::lock_guard<std::mutex> outer(mu_);
  std::lock_guard<std::mutex> inner(nu_);
}

void Mono::Second() {
  std::lock_guard<std::mutex> outer(mu_);
  std::lock_guard<std::mutex> inner(nu_);
}
