// Fixture (pairs with hot_reach_b.cc): the hot root. FeedRoot::Drive is
// annotated NMCDR_HOT and calls FeedWorker::Grow, defined in the other
// file — the allocation there must be reported with a two-file
// provenance chain.
class FeedRoot {
 public:
  void Drive(int n) NMCDR_HOT;
};

void FeedRoot::Drive(int n) {
  FeedWorker::Grow(n);
}
