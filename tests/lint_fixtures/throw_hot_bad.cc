// Fixture: [throw-hot] shapes — a throw and an always-armed NMCDR_CHECK
// inside an NMCDR_HOT method.
class ThrowEngine {
 public:
  int Serve(int n) NMCDR_HOT;
};

int ThrowEngine::Serve(int n) {
  NMCDR_CHECK_GE(n, 0);  // armed in Release: formats + aborts
  if (n > 100) throw n;  // unwinding in steady-state request work
  return n;
}
