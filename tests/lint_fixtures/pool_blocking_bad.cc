// pool-blocking fixture (firing): Kick dispatches a ThreadPool task
// while holding mu_, and the task (Work) both re-locks mu_ — the
// dispatcher can deadlock against its own pool — and calls sleep_for,
// blocking a shared pool thread.
#include <chrono>
#include <mutex>
#include <thread>

class Pooler {
 public:
  void Kick();
  void Work();

 private:
  std::mutex mu_;
};

void Pooler::Kick() {
  std::lock_guard<std::mutex> lock(mu_);
  ThreadPool::Shared()->Submit([this] { Work(); });
}

void Pooler::Work() {
  std::lock_guard<std::mutex> lock(mu_);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}
