// Fixture: the sanctioned growth shapes — reserve before the loop, a
// push_back outside any loop, and a deque receiver (chunked growth, no
// reserve() to call). [reserve-before-growth] must stay quiet.
#include <deque>
#include <vector>

std::vector<int> Evens(int n) {
  std::vector<int> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    if (i % 2 == 0) out.push_back(i);
  }
  return out;
}

std::vector<int> Single(int n) {
  std::vector<int> out;
  out.push_back(n);  // not inside a for loop
  return out;
}

std::deque<int> Queue(int n) {
  std::deque<int> pending;
  for (int i = 0; i < n; ++i) pending.push_back(i);  // deque exempt
  return pending;
}
