// Fixture: the bump arena is the sanctioned hot-path allocator. A hot
// function may call BumpArena::Alloc / BumpArena::ResetStep freely; their
// bodies (the amortized block-growth machinery) are pruned like
// NMCDR_COLD. [hot-alloc] and [throw-hot] must stay quiet.
#include <vector>

class BumpArena {
 public:
  float* Alloc(unsigned long elems);
  void ResetStep();

 private:
  std::vector<float*> blocks_;
};

float* BumpArena::Alloc(unsigned long elems) {
  // Growth machinery: would fire [hot-alloc] twice if scanned.
  float* block = new float[elems];
  blocks_.push_back(block);
  return block;
}

void BumpArena::ResetStep() {
  NMCDR_CHECK(!blocks_.empty());  // would fire [throw-hot] if scanned
}

class ArenaEngine {
 public:
  float* Step(unsigned long n) NMCDR_HOT;

 private:
  BumpArena arena_;
};

float* ArenaEngine::Step(unsigned long n) {
  arena_.ResetStep();
  return arena_.Alloc(n);
}
