// Fixture: the sanctioned zero-alloc serving patterns — a NMCDR_COLD
// Prepare() owning all growth, and reserve-then-push_back scratch reuse
// inside the hot method. [hot-alloc] must stay quiet.
#include <vector>

class ScratchEngine {
 public:
  void Prepare(int n) NMCDR_COLD;
  void Serve(int n) NMCDR_HOT;

 private:
  std::vector<int> scratch_;
};

void ScratchEngine::Prepare(int n) {
  // Cold: amortized capacity growth is this function's whole job.
  scratch_.resize(n);
  scratch_.push_back(0);
}

void ScratchEngine::Serve(int n) {
  Prepare(n);  // cold callee is pruned, not descended into
  scratch_.clear();
  scratch_.reserve(n);
  for (int i = 0; i < n; ++i) {
    scratch_.push_back(i);  // legal: prior same-receiver reserve
  }
}
