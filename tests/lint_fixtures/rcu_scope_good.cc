// rcu-read-scope fixture (passing): the snapshot from Acquire() stays
// local to the acquiring scope — used for one batch, then dropped.
#include <memory>

class Reader {
 public:
  int Score();

 private:
  Registry registry_;
};

int Reader::Score() {
  const std::shared_ptr<const Snapshot> snap = registry_.Acquire();
  int total = snap->TopK();
  return total;
}
