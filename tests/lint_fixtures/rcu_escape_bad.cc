// rcu-read-scope fixture (firing): snapshots from Acquire() escape the
// acquiring scope three ways — stored straight into a member, returned
// as a raw .get() pointer, and copied from a local into a member.
#include <memory>

class Holder {
 public:
  void Keep();
  const Snapshot* Raw();
  void Leak();

 private:
  Registry registry_;
  std::shared_ptr<const Snapshot> kept_;
  std::shared_ptr<const Snapshot> cached_;
};

void Holder::Keep() {
  kept_ = registry_.Acquire();
}

const Snapshot* Holder::Raw() {
  std::shared_ptr<const Snapshot> snap = registry_.Acquire();
  return snap.get();
}

void Holder::Leak() {
  auto local = registry_.Acquire();
  cached_ = local;
}
