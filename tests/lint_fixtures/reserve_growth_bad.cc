// Fixture: [reserve-before-growth] — looped push_back with no prior
// same-receiver reserve(). The rule applies to cold code too, so no
// NMCDR_HOT annotation is needed.
#include <vector>

std::vector<int> Evens(int n) {
  std::vector<int> out;
  for (int i = 0; i < n; ++i) {
    if (i % 2 == 0) out.push_back(i);
  }
  return out;
}

std::vector<int> Odds(int n) {
  std::vector<int> out;
  for (int i = 0; i < n; ++i) out.push_back(2 * i + 1);  // braceless body
  return out;
}
