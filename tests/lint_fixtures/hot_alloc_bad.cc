// Fixture: every [hot-alloc] shape inside an NMCDR_HOT method. Never
// compiled; exercised by lint_rules_test (HotAllocTest).
#include <memory>
#include <string>
#include <vector>

class AllocEngine {
 public:
  void Serve(int n) NMCDR_HOT;

 private:
  std::vector<int> items_;
};

void AllocEngine::Serve(int n) {
  int* raw = new int[4];                    // operator new
  auto owned = std::make_unique<int>(7);    // make_unique
  items_.push_back(n);                      // growth without prior reserve
  items_.resize(n);                         // resize always flags
  std::string label("req");                 // std::string construction
  std::to_string(n);                        // to_string
  std::vector<float> tmp(n);                // sized vector construction
  (void)raw;
  (void)owned;
  (void)label;
  (void)tmp;
}
