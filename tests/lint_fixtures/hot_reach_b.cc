// Fixture (pairs with hot_reach_a.cc): hot only transitively — no
// annotation here; FeedWorker::Grow is reached from FeedRoot::Drive in
// the other file. FeedWorker::Refill is NMCDR_COLD, so its allocations
// are pruned out of the closure even though Grow calls it.
#include <vector>

class FeedWorker {
 public:
  static void Grow(int n);
  static void Refill(int n) NMCDR_COLD;
};

void FeedWorker::Grow(int n) {
  Refill(n);
  int* scratch = new int[8];  // flagged, chain Drive -> Grow
  (void)scratch;
}

void FeedWorker::Refill(int n) {
  std::vector<int> pool;
  pool.resize(n);  // cold: pruned, never reported
}
