// Fixture: [arg-copy] shapes — heavy types passed by value with no sink
// move. Applies tree-wide (no NMCDR_HOT needed).
#include <string>
#include <vector>

float SumAll(Matrix rows) {  // heavy nominal type by value
  return rows.At(0, 0);
}

int CountIds(std::vector<int> ids) {  // container by value, never moved
  return static_cast<int>(ids.size());
}

int NameLength(std::string name) {  // string by value, never moved
  return static_cast<int>(name.size());
}
