// lock-order fixture (firing), file A of a two-file cycle: Alpha locks
// its own mu_ and then calls into Beta (which locks Beta::mu_), while
// lock_order_cycle_b.cc does the mirror image — Alpha::mu_ -> Beta::mu_
// -> Alpha::mu_ is a potential deadlock.
#include <mutex>

class Beta;

class Alpha {
 public:
  void LockA();
  void CrossAB();

 private:
  Beta* peer_;
  std::mutex mu_;
};

void Alpha::LockA() { std::lock_guard<std::mutex> lock(mu_); }

void Alpha::CrossAB() {
  std::lock_guard<std::mutex> lock(mu_);
  peer_->LockB();
}
