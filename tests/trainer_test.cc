#include "train/trainer.h"

#include <gtest/gtest.h>

#include "core/nmcdr_model.h"
#include "tests/test_util.h"

namespace nmcdr {
namespace {

using testing_util::TinyData;

NmcdrConfig TinyConfig() {
  NmcdrConfig config;
  config.hidden_dim = 8;
  config.mlp_hidden = {16};
  return config;
}

TEST(TrainerTest, LossDecreasesOverTraining) {
  auto data = TinyData();
  NmcdrModel model(data->View(), TinyConfig(), /*seed=*/1, 5e-3f);
  const auto [first, last] =
      testing_util::TrainLossTrend(&model, *data, /*steps=*/120);
  EXPECT_LT(last, first);
}

TEST(TrainerTest, RunsConfiguredEpochs) {
  auto data = TinyData();
  NmcdrModel model(data->View(), TinyConfig(), 1, 1e-3f);
  TrainConfig config;
  config.epochs = 3;
  config.batch_size = 64;
  Trainer trainer(data->View(), config);
  const TrainSummary summary = trainer.Train(&model);
  EXPECT_EQ(summary.epochs_run, 3);
  EXPECT_GT(summary.train_seconds, 0.0);
}

TEST(TrainerTest, MinTotalStepsRaisesEpochCount) {
  auto data = TinyData();
  NmcdrModel model(data->View(), TinyConfig(), 1, 1e-3f);
  TrainConfig config;
  config.epochs = 1;
  config.batch_size = 64;
  // steps/epoch = ceil(max_train / 32); force many more total steps.
  config.min_total_steps = 100;
  Trainer trainer(data->View(), config);
  const TrainSummary summary = trainer.Train(&model);
  const int steps_per_epoch = static_cast<int>(
      (std::max(data->split_z().train.size(),
                data->split_zbar().train.size()) + 31) / 32);
  EXPECT_GE(summary.epochs_run * steps_per_epoch, 100);
}

TEST(TrainerTest, ValidationTrackingReportsBestHr) {
  auto data = TinyData();
  NmcdrModel model(data->View(), TinyConfig(), 1, 5e-3f);
  TrainConfig config;
  config.epochs = 4;
  config.batch_size = 64;
  config.eval_every = 1;
  Trainer trainer(data->View(), config, &data->full_graph_z(),
                  &data->full_graph_zbar());
  const TrainSummary summary = trainer.Train(&model);
  EXPECT_GT(summary.best_valid_hr, 0.0);
}

TEST(TrainerTest, EarlyStoppingHalts) {
  auto data = TinyData();
  NmcdrModel model(data->View(), TinyConfig(), 1, 0.f);  // lr 0: no progress
  TrainConfig config;
  config.epochs = 50;
  config.batch_size = 64;
  config.eval_every = 1;
  config.early_stop_patience = 2;
  Trainer trainer(data->View(), config, &data->full_graph_z(),
                  &data->full_graph_zbar());
  const TrainSummary summary = trainer.Train(&model);
  // First eval sets the best; two stale evals stop at epoch 3.
  EXPECT_LE(summary.epochs_run, 4);
}

TEST(TrainerTest, BestCheckpointRestoredAfterDegradation) {
  // A model whose Score quality degrades monotonically with every train
  // step: the trainer must restore the parameters of the earliest (best)
  // evaluation.
  class DegradingModel : public RecModel {
   public:
    explicit DegradingModel(const DomainSplit* split) : split_(split) {
      quality_ = store_.Register("q", Matrix(1, 1, 10.f));
    }
    std::string name() const override { return "degrading"; }
    float TrainStep(const LabeledBatch&, const LabeledBatch&) override {
      quality_.mutable_value().At(0, 0) -= 1.f;
      return 0.f;
    }
    std::vector<float> Score(DomainSide, const std::vector<int>& users,
                             const std::vector<int>& items) override {
      // With positive quality, prefer the held-out item; with negative
      // quality, prefer everything else.
      const float q = quality_.value().At(0, 0);
      std::vector<float> out(users.size());
      for (size_t i = 0; i < users.size(); ++i) {
        const bool is_held_out = split_->test_item[users[i]] == items[i] ||
                                 split_->valid_item[users[i]] == items[i];
        out[i] = is_held_out ? q : 0.f;
      }
      return out;
    }
    ag::ParameterStore* params() override { return &store_; }
    float quality() const { return quality_.value().At(0, 0); }

   private:
    const DomainSplit* split_;
    ag::ParameterStore store_;
    ag::Tensor quality_;
  };

  auto data = TinyData();
  DegradingModel model(&data->split_z());
  TrainConfig config;
  config.epochs = 12;
  config.batch_size = 1000000;  // 1 step per epoch
  config.eval_every = 1;
  Trainer trainer(data->View(), config, &data->full_graph_z(),
                  &data->full_graph_zbar());
  trainer.Train(&model);
  // After 12 degradation steps quality would be -2; the restored best
  // checkpoint is from epoch 1 (quality 9).
  EXPECT_NEAR(model.quality(), 9.f, 1e-5f);
}

TEST(TrainerTest, BatchesHaveConfiguredNegativeRatio) {
  // Inspect batches via a capturing model.
  class CapturingModel : public RecModel {
   public:
    std::string name() const override { return "capture"; }
    float TrainStep(const LabeledBatch& z, const LabeledBatch& zbar) override {
      for (const LabeledBatch* b : {&z, &zbar}) {
        int pos = 0, neg = 0;
        for (float label : b->labels) (label > 0.5f ? pos : neg)++;
        EXPECT_EQ(neg, pos * 3);
      }
      ++steps;
      return 0.f;
    }
    std::vector<float> Score(DomainSide, const std::vector<int>& users,
                             const std::vector<int>&) override {
      return std::vector<float>(users.size(), 0.f);
    }
    ag::ParameterStore* params() override { return &store_; }
    int steps = 0;

   private:
    ag::ParameterStore store_;
  };

  auto data = TinyData();
  CapturingModel model;
  TrainConfig config;
  config.epochs = 1;
  config.batch_size = 64;
  config.negatives_per_positive = 3;
  Trainer trainer(data->View(), config);
  trainer.Train(&model);
  EXPECT_GT(model.steps, 0);
}

TEST(TrainerTest, NegativesAreTrueNegatives) {
  class NegCheckModel : public RecModel {
   public:
    explicit NegCheckModel(const InteractionGraph* graph) : graph_(graph) {}
    std::string name() const override { return "negcheck"; }
    float TrainStep(const LabeledBatch& z, const LabeledBatch&) override {
      for (int i = 0; i < z.size(); ++i) {
        if (z.labels[i] < 0.5f) {
          EXPECT_FALSE(graph_->HasInteraction(z.users[i], z.items[i]));
        } else {
          EXPECT_TRUE(graph_->HasInteraction(z.users[i], z.items[i]));
        }
      }
      return 0.f;
    }
    std::vector<float> Score(DomainSide, const std::vector<int>& users,
                             const std::vector<int>&) override {
      return std::vector<float>(users.size(), 0.f);
    }
    ag::ParameterStore* params() override { return &store_; }

   private:
    const InteractionGraph* graph_;
    ag::ParameterStore store_;
  };

  auto data = TinyData();
  NegCheckModel model(&data->train_graph_z());
  TrainConfig config;
  config.epochs = 2;
  config.batch_size = 32;
  Trainer trainer(data->View(), config);
  trainer.Train(&model);
}

}  // namespace
}  // namespace nmcdr
