// Tests for the int8 quantized serving mode: the per-row quantizer
// (serving/quantized_snapshot), artifact round-trips and corruption
// rejection, ranking agreement with the exact engine, and the
// sharded-quantized == monolithic-quantized bit-identity that per-row
// quantization guarantees.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serving/cluster/shard_layout.h"
#include "serving/cluster/sharded_snapshot.h"
#include "serving/model_snapshot.h"
#include "serving/quantized_snapshot.h"
#include "serving/score_engine.h"
#include "tensor/matrix.h"
#include "tensor/rng.h"

namespace nmcdr {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Matrix RandomMatrix(int rows, int cols, uint64_t seed, float lo = -2.f,
                    float hi = 2.f) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      m.At(r, c) = lo + static_cast<float>(rng.UniformDouble()) * (hi - lo);
    }
  }
  return m;
}

ModelSnapshot SmallSnapshot(uint64_t seed = 11) {
  SyntheticSnapshotSpec spec;
  spec.num_domains = 2;
  spec.users_per_domain = 60;
  spec.items_per_domain = 400;
  spec.dim = 16;
  spec.hidden = 16;
  spec.overlap = 0.3f;
  spec.seed = seed;
  return ModelSnapshot::MakeSynthetic(spec);
}

TEST(QuantizeRowsTest, DequantErrorBoundedByHalfScale) {
  const Matrix m = RandomMatrix(40, 33, 3);
  const QuantizedRows q = QuantizeRows(m);
  ASSERT_EQ(q.rows, 40);
  ASSERT_EQ(q.cols, 33);
  for (int r = 0; r < q.rows; ++r) {
    ASSERT_TRUE(std::isfinite(q.scale[r]));
    ASSERT_GT(q.scale[r], 0.f);
    const int8_t* codes = q.row(r);
    int32_t sum = 0;
    for (int c = 0; c < q.cols; ++c) {
      const float dequant =
          q.scale[r] * (static_cast<float>(codes[c]) - q.zero[r]);
      // Half a quantization step, plus slack for the float scale cast.
      EXPECT_NEAR(dequant, m.At(r, c), 0.51f * q.scale[r] + 1e-6f)
          << "row " << r << " col " << c;
      sum += codes[c];
    }
    EXPECT_EQ(sum, q.qsum[r]);
  }
}

TEST(QuantizeRowsTest, ConstantAndZeroRows) {
  Matrix m(2, 8);
  for (int c = 0; c < 8; ++c) {
    m.At(0, c) = 3.25f;  // constant row
    m.At(1, c) = 0.f;    // all-zero row
  }
  const QuantizedRows q = QuantizeRows(m);
  for (int c = 0; c < 8; ++c) {
    EXPECT_NEAR(q.scale[0] * (q.row(0)[c] - q.zero[0]), 3.25f, 3.25f / 126.f);
    EXPECT_EQ(q.row(1)[c], 0);
  }
  EXPECT_EQ(q.zero[1], 0);
  EXPECT_EQ(q.qsum[1], 0);
}

TEST(QuantizeRowsTest, VectorQuantizerMatchesRowQuantizer) {
  const Matrix m = RandomMatrix(7, 19, 9);
  const QuantizedRows q = QuantizeRows(m);
  std::vector<int8_t> codes(19);
  for (int r = 0; r < 7; ++r) {
    float scale = 0.f;
    int32_t zero = 0, qsum = 0;
    QuantizeVectorInto(m.row(r), 19, codes.data(), &scale, &zero, &qsum);
    EXPECT_EQ(scale, q.scale[r]);
    EXPECT_EQ(zero, q.zero[r]);
    EXPECT_EQ(qsum, q.qsum[r]);
    for (int c = 0; c < 19; ++c) EXPECT_EQ(codes[c], q.row(r)[c]);
  }
}

TEST(QuantizedSnapshotTest, SaveLoadRoundTrip) {
  const ModelSnapshot snapshot = SmallSnapshot();
  const QuantizedSnapshot quant = QuantizedSnapshot::Quantize(snapshot);
  std::string why;
  ASSERT_TRUE(quant.Matches(snapshot, &why)) << why;

  const std::string path = TempPath("quant_roundtrip.bin");
  ASSERT_TRUE(quant.Save(path));
  QuantizedSnapshot loaded;
  std::string error;
  ASSERT_TRUE(QuantizedSnapshot::Load(path, &loaded, &error)) << error;
  EXPECT_TRUE(loaded.Equals(quant));
  EXPECT_TRUE(loaded.Matches(snapshot, &error)) << error;
}

TEST(QuantizedSnapshotTest, MatchesRejectsWrongGeometry) {
  const QuantizedSnapshot quant =
      QuantizedSnapshot::Quantize(SmallSnapshot(11));
  SyntheticSnapshotSpec other;
  other.num_domains = 2;
  other.users_per_domain = 60;
  other.items_per_domain = 300;  // different catalog size
  other.dim = 16;
  other.hidden = 16;
  std::string why;
  EXPECT_FALSE(quant.Matches(ModelSnapshot::MakeSynthetic(other), &why));
  EXPECT_NE(why.find("item count"), std::string::npos) << why;
}

/// Overwrites `count` bytes at `offset` of the file with `value`.
void CorruptFile(const std::string& path, size_t offset, int count,
                 char value) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.good());
  f.seekp(static_cast<std::streamoff>(offset));
  for (int i = 0; i < count; ++i) f.put(value);
  ASSERT_TRUE(f.good());
}

TEST(QuantizedSnapshotTest, LoadRejectsCorruptScale) {
  const ModelSnapshot snapshot = SmallSnapshot();
  const QuantizedSnapshot quant = QuantizedSnapshot::Quantize(snapshot);
  const std::string path = TempPath("quant_corrupt_scale.bin");
  ASSERT_TRUE(quant.Save(path));

  // Layout: 8-byte magic, u32 domain count, then domain 0's item_first
  // table: u32 rows, u32 cols, rows*cols codes, then the scales. Zeroing
  // the first scale makes it non-positive — Load must reject.
  const size_t codes =
      static_cast<size_t>(quant.domain(0).item_first.rows) *
      quant.domain(0).item_first.cols;
  const size_t scale_offset = 8 + 4 + 4 + 4 + codes;
  CorruptFile(path, scale_offset, 4, 0);

  QuantizedSnapshot loaded;
  std::string error;
  EXPECT_FALSE(QuantizedSnapshot::Load(path, &loaded, &error));
  EXPECT_NE(error.find("scale"), std::string::npos) << error;
  // A rejected file never leaves partial state.
  EXPECT_EQ(loaded.num_domains(), 0);
}

TEST(QuantizedSnapshotTest, LoadRejectsCorruptCodes) {
  const QuantizedSnapshot quant = QuantizedSnapshot::Quantize(SmallSnapshot());
  const std::string path = TempPath("quant_corrupt_codes.bin");
  ASSERT_TRUE(quant.Save(path));
  // Flip a handful of code bytes: the stored row code-sum no longer
  // matches the codes, which the integrity check catches.
  CorruptFile(path, 8 + 4 + 4 + 4, 8, 0x55);
  QuantizedSnapshot loaded;
  std::string error;
  EXPECT_FALSE(QuantizedSnapshot::Load(path, &loaded, &error));
  EXPECT_NE(error.find("code sum"), std::string::npos) << error;
}

TEST(QuantizedSnapshotTest, LoadRejectsBadMagicAndTruncation) {
  const QuantizedSnapshot quant = QuantizedSnapshot::Quantize(SmallSnapshot());
  const std::string path = TempPath("quant_bad_magic.bin");
  ASSERT_TRUE(quant.Save(path));
  CorruptFile(path, 0, 1, 'X');
  QuantizedSnapshot loaded;
  std::string error;
  EXPECT_FALSE(QuantizedSnapshot::Load(path, &loaded, &error));
  EXPECT_NE(error.find("magic"), std::string::npos) << error;

  // Truncation: rewrite intact, then chop the tail off.
  ASSERT_TRUE(quant.Save(path));
  {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    ASSERT_GT(bytes.size(), 100u);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_FALSE(QuantizedSnapshot::Load(path, &loaded, &error));
}

/// Fraction of the exact top-k the quantized top-k recovered, averaged
/// over requests.
double OverlapAtK(const ScoreEngine& exact, const ScoreEngine& quant,
                  int domain, int users, int k) {
  double total = 0.0;
  for (int u = 0; u < users; ++u) {
    RecRequest request;
    request.target_domain = domain;
    request.user_domain = domain;
    request.user = u;
    request.k = k;
    const Recommendation e = exact.TopK(request);
    const Recommendation q = quant.TopK(request);
    std::vector<int> e_items = e.items, q_items = q.items;
    std::sort(e_items.begin(), e_items.end());
    std::sort(q_items.begin(), q_items.end());
    std::vector<int> common;
    std::set_intersection(e_items.begin(), e_items.end(), q_items.begin(),
                          q_items.end(), std::back_inserter(common));
    total += static_cast<double>(common.size()) / k;
  }
  return total / users;
}

TEST(QuantizedEngineTest, RankingAgreesWithExact) {
  const ModelSnapshot snapshot = SmallSnapshot();
  ScoreEngine::Options exact_opts;
  exact_opts.mode = ScoreEngine::Mode::kExact;
  const ScoreEngine exact(&snapshot, exact_opts);
  ScoreEngine::Options quant_opts;
  quant_opts.mode = ScoreEngine::Mode::kQuantized;
  const ScoreEngine quant(&snapshot, quant_opts);

  // The CI gate holds the full-scale bench to overlap@10 >= 0.99; this
  // unit bound is looser (tiny catalog, so each rank swap costs 10%).
  for (int d = 0; d < snapshot.num_domains(); ++d) {
    EXPECT_GE(OverlapAtK(exact, quant, d, /*users=*/40, /*k=*/10), 0.9);
  }

  // Scores themselves stay close in absolute terms.
  std::vector<int> candidates;
  for (int i = 0; i < snapshot.domain(0).num_items(); ++i) {
    candidates.push_back(i);
  }
  const std::vector<float> se = exact.ScoreCandidates(0, 7, candidates);
  const std::vector<float> sq = quant.ScoreCandidates(0, 7, candidates);
  float max_abs = 0.f;
  for (float s : se) max_abs = std::max(max_abs, std::fabs(s));
  for (size_t i = 0; i < se.size(); ++i) {
    EXPECT_NEAR(sq[i], se[i], 0.05f * std::max(1.f, max_abs)) << "item " << i;
  }
}

TEST(QuantizedEngineTest, LoadedArtifactServesIdentically) {
  const ModelSnapshot snapshot = SmallSnapshot();
  ScoreEngine::Options options;
  options.mode = ScoreEngine::Mode::kQuantized;
  const ScoreEngine fresh(&snapshot, options);

  const std::string path = TempPath("quant_artifact.bin");
  ASSERT_TRUE(fresh.quantized().Save(path));
  QuantizedSnapshot loaded;
  std::string error;
  ASSERT_TRUE(QuantizedSnapshot::Load(path, &loaded, &error)) << error;
  const ScoreEngine served(&snapshot, options, std::move(loaded));

  std::vector<int> candidates;
  for (int i = 0; i < snapshot.domain(1).num_items(); i += 3) {
    candidates.push_back(i);
  }
  for (int u = 0; u < 10; ++u) {
    const std::vector<float> a = fresh.ScoreCandidates(1, u, candidates);
    const std::vector<float> b = served.ScoreCandidates(1, u, candidates);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(QuantizedClusterTest, ShardedBitIdenticalToMonolithic) {
  const ModelSnapshot snapshot = SmallSnapshot(23);
  ScoreEngine::Options engine_opts;
  engine_opts.mode = ScoreEngine::Mode::kQuantized;
  const ScoreEngine engine(&snapshot, engine_opts);

  std::vector<RecRequest> requests;
  for (int u = 0; u < 25; ++u) {
    RecRequest request;
    request.target_domain = u % 2;
    request.user_domain = (u % 3 == 0) ? 1 - (u % 2) : u % 2;
    request.user = u;
    request.k = 10;
    if (u % 4 == 0) request.exclude = {1, 5, 17, 101};
    requests.push_back(request);
  }

  for (int shards : {1, 3, 4}) {
    cluster::ShardedSnapshot::Options options;
    options.mode = ScoreEngine::Mode::kQuantized;
    const cluster::ShardedSnapshot sharded(
        snapshot, cluster::ShardLayout::Uniform(snapshot, shards), options);
    for (const RecRequest& request : requests) {
      const Recommendation mono = engine.TopK(request);
      const Recommendation dist = sharded.TopK(request);
      ASSERT_EQ(mono.items, dist.items) << shards << " shards";
      ASSERT_EQ(mono.scores.size(), dist.scores.size());
      for (size_t i = 0; i < mono.scores.size(); ++i) {
        // Bitwise: per-row quantization + a fixed float op sequence per
        // candidate make shard composition invisible.
        ASSERT_EQ(mono.scores[i], dist.scores[i]) << shards << " shards";
      }
      EXPECT_EQ(mono.cold_start, dist.cold_start);
    }
  }
}

}  // namespace
}  // namespace nmcdr
