#include "data/importer.h"

#include <fstream>

#include <gtest/gtest.h>

namespace nmcdr {
namespace {

std::string WriteFile(const std::string& name, const std::string& contents) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream(path) << contents;
  return path;
}

TEST(ImporterTest, BasicImportWithIdRemapping) {
  const std::string path = WriteFile("basic.tsv",
                                     "alice\tbook1\n"
                                     "bob\tbook2\n"
                                     "alice\tbook2\n");
  ImportedDomain imported;
  ASSERT_TRUE(ImportInteractions(path, ImportOptions{}, &imported));
  EXPECT_EQ(imported.domain.num_users, 2);
  EXPECT_EQ(imported.domain.num_items, 2);
  EXPECT_EQ(imported.domain.interactions.size(), 3u);
  EXPECT_EQ(imported.user_keys[0], "alice");
  EXPECT_EQ(imported.item_keys[1], "book2");
}

TEST(ImporterTest, DuplicatePairsCollapsed) {
  const std::string path = WriteFile("dups.tsv",
                                     "u\ti\n"
                                     "u\ti\n"
                                     "u\tj\n");
  ImportedDomain imported;
  ASSERT_TRUE(ImportInteractions(path, ImportOptions{}, &imported));
  EXPECT_EQ(imported.domain.interactions.size(), 2u);
}

TEST(ImporterTest, RatingThresholdFilters) {
  const std::string path = WriteFile("ratings.tsv",
                                     "u\ta\t5.0\n"
                                     "u\tb\t2.0\n"
                                     "u\tc\t4.0\n");
  ImportOptions options;
  options.min_rating = 4.0;
  ImportedDomain imported;
  ASSERT_TRUE(ImportInteractions(path, options, &imported));
  EXPECT_EQ(imported.domain.interactions.size(), 2u);
  EXPECT_EQ(imported.domain.num_items, 2);  // "b" never materializes
}

TEST(ImporterTest, MinUserInteractionsDropsColdUsers) {
  const std::string path = WriteFile("cold.tsv",
                                     "active\ta\n"
                                     "active\tb\n"
                                     "active\tc\n"
                                     "cold\ta\n");
  ImportOptions options;
  options.min_user_interactions = 3;
  ImportedDomain imported;
  ASSERT_TRUE(ImportInteractions(path, options, &imported));
  EXPECT_EQ(imported.domain.num_users, 1);
  EXPECT_EQ(imported.user_keys[0], "active");
}

TEST(ImporterTest, HeaderSkippedAndCustomSeparator) {
  const std::string path = WriteFile("csv.csv",
                                     "user,item\n"
                                     "u1,i1\n"
                                     "u2,i2\n");
  ImportOptions options;
  options.separator = ',';
  options.skip_header = true;
  ImportedDomain imported;
  ASSERT_TRUE(ImportInteractions(path, options, &imported));
  EXPECT_EQ(imported.domain.interactions.size(), 2u);
}

TEST(ImporterTest, MalformedLineFails) {
  const std::string path = WriteFile("bad.tsv", "only_one_field\n");
  ImportedDomain imported;
  EXPECT_FALSE(ImportInteractions(path, ImportOptions{}, &imported));
}

TEST(ImporterTest, MissingFileFails) {
  ImportedDomain imported;
  EXPECT_FALSE(ImportInteractions(::testing::TempDir() + "/nope.tsv",
                                  ImportOptions{}, &imported));
}

TEST(ImporterTest, JoinDomainsLinksSharedUserKeys) {
  const std::string path_z = WriteFile("z.tsv",
                                       "shared\ta\n"
                                       "only_z\tb\n");
  const std::string path_zbar = WriteFile("zbar.tsv",
                                          "only_zbar\tx\n"
                                          "shared\ty\n");
  ImportedDomain z, zbar;
  ASSERT_TRUE(ImportInteractions(path_z, ImportOptions{}, &z));
  ASSERT_TRUE(ImportInteractions(path_zbar, ImportOptions{}, &zbar));
  const CdrScenario scenario = JoinDomains("joined", z, zbar);
  EXPECT_EQ(scenario.NumOverlapping(), 1);
  // "shared" is z user 0 and zbar user 1.
  EXPECT_EQ(scenario.z_to_zbar[0], 1);
  EXPECT_EQ(scenario.zbar_to_z[1], 0);
  EXPECT_EQ(scenario.z_to_zbar[1], -1);
}

TEST(ImporterTest, ImportedScenarioRunsThroughPipeline) {
  // Importing, joining and splitting a small log works end-to-end.
  std::string contents;
  for (int u = 0; u < 10; ++u) {
    for (int i = 0; i < 4; ++i) {
      contents += "user" + std::to_string(u) + "\titem" +
                  std::to_string((u + i) % 8) + "\n";
    }
  }
  const std::string path = WriteFile("pipeline.tsv", contents);
  ImportedDomain z, zbar;
  ASSERT_TRUE(ImportInteractions(path, ImportOptions{}, &z));
  ASSERT_TRUE(ImportInteractions(path, ImportOptions{}, &zbar));
  const CdrScenario scenario = JoinDomains("self-join", z, zbar);
  EXPECT_EQ(scenario.NumOverlapping(), 10);
  Rng rng(1);
  const DomainSplit split = LeaveOneOutSplit(scenario.z, &rng);
  EXPECT_EQ(split.TestUsers().size(), 10u);
}

}  // namespace
}  // namespace nmcdr
