#include <cmath>

#include <gtest/gtest.h>

#include "autograd/nn.h"
#include "autograd/optimizer.h"

namespace nmcdr {
namespace ag {
namespace {

TEST(ParameterStoreTest, RegisterAndLookup) {
  ParameterStore store;
  Tensor w = store.Register("w", Matrix(2, 3));
  EXPECT_TRUE(store.Contains("w"));
  EXPECT_FALSE(store.Contains("v"));
  EXPECT_EQ(store.Get("w").raw(), w.raw());
  EXPECT_EQ(store.ParameterCount(), 6);
  EXPECT_TRUE(w.requires_grad());
}

TEST(ParameterStoreDeathTest, DuplicateNameAborts) {
  ParameterStore store;
  store.Register("w", Matrix(1, 1));
  EXPECT_DEATH(store.Register("w", Matrix(1, 1)), "CHECK");
}

TEST(ParameterStoreTest, ZeroGradClearsAccumulation) {
  ParameterStore store;
  Tensor w = store.Register("w", Matrix(1, 2, 1.f));
  Backward(Sum(w));
  EXPECT_EQ(w.grad().At(0, 0), 1.f);
  store.ZeroGrad();
  EXPECT_EQ(w.grad().At(0, 0), 0.f);
}

TEST(ParameterStoreTest, ClipGradNormScalesDown) {
  ParameterStore store;
  Tensor w = store.Register("w", Matrix(1, 2));
  w.raw()->grad = Matrix::FromRows({{3.f, 4.f}});  // norm 5
  const float norm = store.ClipGradNorm(1.f);
  EXPECT_NEAR(norm, 5.f, 1e-5f);
  EXPECT_NEAR(w.grad().At(0, 0), 0.6f, 1e-5f);
  EXPECT_NEAR(w.grad().At(0, 1), 0.8f, 1e-5f);
}

TEST(ParameterStoreTest, ClipGradNormNoOpBelowThreshold) {
  ParameterStore store;
  Tensor w = store.Register("w", Matrix(1, 1));
  w.raw()->grad = Matrix::FromRows({{0.5f}});
  store.ClipGradNorm(1.f);
  EXPECT_NEAR(w.grad().At(0, 0), 0.5f, 1e-6f);
}

TEST(ParameterStoreTest, SnapshotRestoreRoundTrip) {
  ParameterStore store;
  Tensor w = store.Register("w", Matrix(1, 2, 1.f));
  std::vector<Matrix> snapshot = store.SnapshotValues();
  w.mutable_value().At(0, 0) = 99.f;
  store.RestoreValues(snapshot);
  EXPECT_EQ(w.value().At(0, 0), 1.f);
}

TEST(LinearTest, ForwardMatchesManual) {
  ParameterStore store;
  Rng rng(1);
  Linear layer(&store, "l", 3, 2, &rng);
  EXPECT_TRUE(store.Contains("l.W"));
  EXPECT_TRUE(store.Contains("l.b"));
  Matrix x = Matrix::FromRows({{1, 2, 3}});
  Tensor out = layer.Forward(Tensor(x));
  Matrix expected = AddRowBroadcast(MatMul(x, layer.weight().value()),
                                    layer.bias().value());
  EXPECT_TRUE(AllClose(out.value(), expected, 1e-5f));
}

TEST(MlpTest, ShapesAndLayerAccess) {
  ParameterStore store;
  Rng rng(2);
  Mlp mlp(&store, "m", {4, 8, 8, 1}, &rng);
  EXPECT_EQ(mlp.num_layers(), 3);
  EXPECT_EQ(mlp.in_features(), 4);
  EXPECT_EQ(mlp.out_features(), 1);
  Tensor out = mlp.Forward(Tensor(Matrix(5, 4)));
  EXPECT_EQ(out.rows(), 5);
  EXPECT_EQ(out.cols(), 1);
}

TEST(SgdTest, StepMathExact) {
  ParameterStore store;
  Tensor w = store.Register("w", Matrix(1, 1, 2.f));
  Sgd sgd(&store, /*lr=*/0.1f);
  Backward(Sum(w));  // grad = 1
  sgd.Step();
  EXPECT_NEAR(w.value().At(0, 0), 1.9f, 1e-6f);
  // Gradient zeroed after step.
  EXPECT_EQ(w.grad().At(0, 0), 0.f);
}

TEST(SgdTest, WeightDecayPullsTowardZero) {
  ParameterStore store;
  Tensor w = store.Register("w", Matrix(1, 1, 10.f));
  Sgd sgd(&store, /*lr=*/0.1f, /*weight_decay=*/1.f);
  Backward(Sum(Scale(w, 0.f)));  // zero data gradient
  sgd.Step();
  EXPECT_NEAR(w.value().At(0, 0), 9.f, 1e-5f);
}

TEST(AdamTest, FirstStepMagnitudeIsLr) {
  // With bias correction, the first Adam step is lr * g/|g| = lr * sign(g).
  ParameterStore store;
  Tensor w = store.Register("w", Matrix(1, 1, 1.f));
  Adam adam(&store, /*lr=*/0.01f);
  Backward(Sum(Scale(w, 3.f)));  // grad = 3
  adam.Step();
  EXPECT_NEAR(w.value().At(0, 0), 1.f - 0.01f, 1e-5f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 elementwise.
  ParameterStore store;
  Tensor w = store.Register("w", Matrix(2, 2));
  Adam adam(&store, 0.05f);
  for (int step = 0; step < 500; ++step) {
    Tensor diff = AddScalar(w, -3.f);
    Backward(SumSquares(diff));
    adam.Step();
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(w.value().data()[i], 3.f, 1e-2f);
  }
}

TEST(AdamTest, SkipsParamsWithoutGradients) {
  ParameterStore store;
  Tensor used = store.Register("used", Matrix(1, 1, 1.f));
  Tensor unused = store.Register("unused", Matrix(1, 1, 5.f));
  Adam adam(&store, 0.1f);
  Backward(Sum(used));
  adam.Step();
  EXPECT_EQ(unused.value().At(0, 0), 5.f);
  EXPECT_LT(used.value().At(0, 0), 1.f);
}

TEST(OptimizerFactoryTest, MakesKnownOptimizers) {
  ParameterStore store;
  store.Register("w", Matrix(1, 1));
  EXPECT_NE(MakeOptimizer("sgd", &store, 0.1f), nullptr);
  EXPECT_NE(MakeOptimizer("adam", &store, 0.1f), nullptr);
}

TEST(OptimizerTest, LearningRateAdjustable) {
  ParameterStore store;
  store.Register("w", Matrix(1, 1));
  Sgd sgd(&store, 0.1f);
  EXPECT_NEAR(sgd.learning_rate(), 0.1f, 1e-7f);
  sgd.set_learning_rate(0.01f);
  EXPECT_NEAR(sgd.learning_rate(), 0.01f, 1e-7f);
}

/// Parameterized: training a Linear on a least-squares problem converges
/// for several optimizers and learning rates.
class LinearRegressionSweep
    : public ::testing::TestWithParam<std::pair<const char*, float>> {};

TEST_P(LinearRegressionSweep, FitsLeastSquares) {
  const auto [opt_name, lr] = GetParam();
  ParameterStore store;
  Rng rng(3);
  Linear layer(&store, "l", 2, 1, &rng);
  auto optimizer = MakeOptimizer(opt_name, &store, lr);
  // Target: y = 2*x0 - x1 + 0.5.
  Matrix x = Matrix::Gaussian(64, 2, &rng);
  Matrix y(64, 1);
  for (int i = 0; i < 64; ++i) {
    y.At(i, 0) = 2.f * x.At(i, 0) - x.At(i, 1) + 0.5f;
  }
  float final_loss = 0.f;
  for (int step = 0; step < 800; ++step) {
    Tensor pred = layer.Forward(Tensor(x));
    Tensor loss = Mean(Hadamard(Sub(pred, Tensor(y)), Sub(pred, Tensor(y))));
    final_loss = loss.value().At(0, 0);
    ag::Backward(loss);
    optimizer->Step();
  }
  EXPECT_LT(final_loss, 1e-2f);
}

INSTANTIATE_TEST_SUITE_P(
    Optimizers, LinearRegressionSweep,
    ::testing::Values(std::make_pair("sgd", 0.1f),
                      std::make_pair("adam", 0.05f),
                      std::make_pair("adam", 0.01f)));

}  // namespace
}  // namespace ag
}  // namespace nmcdr
