// Exercises the autograd debug invariant layer (src/autograd/debug.h,
// tape_validator.h) by deliberately triggering every failure mode: NaN/Inf
// origin tracing, double-backward, use-after-Backward, and parent-graph
// cycles. All of it is runtime-toggled here so the behaviors are covered
// in every build configuration, not only -DNMCDR_DEBUG_CHECKS=ON ones.
#include "autograd/debug.h"

#include <cmath>
#include <limits>

#include "autograd/ops.h"
#include "autograd/tape_validator.h"
#include "autograd/tensor.h"
#include "gtest/gtest.h"
#include "tensor/finite.h"

namespace nmcdr {
namespace ag {
namespace {

/// Restores the global debug switches on scope exit so test order never
/// matters.
class DebugFlagsSandbox {
 public:
  DebugFlagsSandbox()
      : old_tape_(SetTapeValidation(false)), old_nan_(SetNanGuard(false)) {}
  ~DebugFlagsSandbox() {
    SetTapeValidation(old_tape_);
    SetNanGuard(old_nan_);
  }

 private:
  bool old_tape_;
  bool old_nan_;
};

Tensor Param(std::initializer_list<float> row) {
  std::vector<std::vector<float>> rows = {row};
  return Tensor(Matrix::FromRows(rows), /*requires_grad=*/true);
}

// ---------------------------------------------------------------------------
// Finite-scan helpers (src/tensor/finite.h)
// ---------------------------------------------------------------------------

TEST(FiniteTest, FindsFirstNonFiniteInRowMajorOrder) {
  Matrix m(2, 3);
  EXPECT_TRUE(AllFinite(m));
  m.At(1, 2) = std::numeric_limits<float>::infinity();
  m.At(1, 0) = std::nanf("");
  const NonFiniteEntry e = FindFirstNonFinite(m);
  ASSERT_TRUE(e.found);
  EXPECT_EQ(e.row, 1);
  EXPECT_EQ(e.col, 0);
  EXPECT_FALSE(AllFinite(m));
}

// ---------------------------------------------------------------------------
// NaN/Inf propagation tracer
// ---------------------------------------------------------------------------

TEST(NanTracerTest, ScopeRecordsFirstOriginOpWithShapeProvenance) {
  DebugFlagsSandbox sandbox;
  Tensor a = Param({700.f, 1.f});

  NanTraceScope scope;
  Tensor e = Exp(a);  // exp(700) overflows float -> inf
  ASSERT_TRUE(scope.found());
  EXPECT_EQ(scope.event().op, "Exp");
  EXPECT_EQ(scope.event().rows, 1);
  EXPECT_EQ(scope.event().cols, 2);
  EXPECT_EQ(scope.event().bad_row, 0);
  EXPECT_EQ(scope.event().bad_col, 0);
  EXPECT_TRUE(std::isinf(scope.event().bad_value));
  EXPECT_NE(scope.event().input_shapes.find("[1,2]"), std::string::npos);
  EXPECT_NE(scope.event().ToString().find("Exp"), std::string::npos);
}

TEST(NanTracerTest, PropagationDoesNotOverwriteOrigin) {
  DebugFlagsSandbox sandbox;
  Tensor a = Param({700.f, 1.f});

  NanTraceScope scope;
  Tensor e = Exp(a);
  // Downstream ops see a non-finite *input*: propagation, not origin.
  Tensor s = Add(e, e);
  Tensor t = Scale(s, 2.f);
  ASSERT_TRUE(scope.found());
  EXPECT_EQ(scope.event().op, "Exp");
}

TEST(NanTracerTest, SilentOnFiniteGraphs) {
  DebugFlagsSandbox sandbox;
  Tensor a = Param({1.f, 2.f});
  NanTraceScope scope;
  Tensor loss = Sum(Hadamard(a, a));
  Backward(loss);
  EXPECT_FALSE(scope.found());
  EXPECT_NE(scope.event().ToString().find("no non-finite"),
            std::string::npos);
}

TEST(NanTracerTest, ScopesNestInnermostRecords) {
  DebugFlagsSandbox sandbox;
  Tensor a = Param({700.f});
  NanTraceScope outer;
  {
    NanTraceScope inner;
    Tensor e = Exp(a);
    EXPECT_TRUE(inner.found());
  }
  EXPECT_FALSE(outer.found());
}

TEST(NanTracerDeathTest, GuardAbortsWithOriginWhenNoScopeActive) {
  DebugFlagsSandbox sandbox;
  SetNanGuard(true);
  Tensor a = Param({700.f, 1.f});
  EXPECT_DEATH(Exp(a), "first non-finite op output: Exp");
}

TEST(NanTracerTest, ScopeOverridesGuardAndRecordsInstead) {
  DebugFlagsSandbox sandbox;
  SetNanGuard(true);
  Tensor a = Param({700.f});
  NanTraceScope scope;
  Tensor e = Exp(a);  // recorded, not fatal
  EXPECT_TRUE(scope.found());
}

// ---------------------------------------------------------------------------
// Tape validation
// ---------------------------------------------------------------------------

TEST(TapeValidatorDeathTest, DoubleBackwardAborts) {
  DebugFlagsSandbox sandbox;
  SetTapeValidation(true);
  Tensor w = Param({1.f, 2.f});
  Tensor loss = Sum(Hadamard(w, w));
  Backward(loss);
  EXPECT_DEATH(Backward(loss), "double-backward");
}

TEST(TapeValidatorDeathTest, UseAfterBackwardAborts) {
  DebugFlagsSandbox sandbox;
  SetTapeValidation(true);
  Tensor w = Param({1.f, 2.f});
  Tensor intermediate = Hadamard(w, w);
  Backward(Sum(intermediate));
  EXPECT_DEATH(Scale(intermediate, 2.f), "use-after-Backward");
}

TEST(TapeValidatorTest, DetachedConsumedIntermediateIsUsable) {
  DebugFlagsSandbox sandbox;
  SetTapeValidation(true);
  Tensor w = Param({1.f, 2.f});
  Tensor intermediate = Hadamard(w, w);
  Backward(Sum(intermediate));
  Tensor ok = Scale(intermediate.Detach(), 2.f);  // no tape splice
  EXPECT_FLOAT_EQ(ok.value().At(0, 0), 2.f);
}

TEST(TapeValidatorTest, FreshGraphsPerStepStayValid) {
  DebugFlagsSandbox sandbox;
  SetTapeValidation(true);
  Tensor w = Param({1.f, 2.f});
  // The training-loop shape: a new forward graph every step over the same
  // leaf parameters must never trip the validator.
  for (int step = 0; step < 3; ++step) {
    Tensor loss = Sum(Hadamard(w, w));
    Backward(loss);
    w.ZeroGrad();
  }
}

TEST(TapeValidatorDeathTest, ParentCycleAborts) {
  DebugFlagsSandbox sandbox;
  SetTapeValidation(true);
  Tensor w = Param({1.f, 2.f});
  Tensor h = Hadamard(w, w);
  Tensor loss = Sum(h);
  // Only constructible by mutating the graph through raw handles; the
  // validator must still refuse to walk it.
  h.node()->parents.push_back(loss.node());
  EXPECT_DEATH(Backward(loss), "cycle");
  // Break the shared_ptr cycle so the parent process of the death test does
  // not leak the graph (LeakSanitizer runs at exit under ASan).
  h.node()->parents.pop_back();
}

TEST(TapeValidatorTest, ValidationOffPreservesLegacyBehavior) {
  DebugFlagsSandbox sandbox;
  SetTapeValidation(false);
  Tensor w = Param({1.f, 2.f});
  Tensor loss = Sum(Hadamard(w, w));
  Backward(loss);
  Backward(loss);  // legacy: silently re-accumulates; must not abort
  EXPECT_TRUE(w.grad().At(0, 0) != 0.f);
}

}  // namespace
}  // namespace ag
}  // namespace nmcdr
