#include "core/nmcdr_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace nmcdr {
namespace {

using testing_util::TinyData;

NmcdrConfig TinyConfig() {
  NmcdrConfig config;
  config.hidden_dim = 8;
  config.mlp_hidden = {16};
  return config;
}

TEST(NmcdrModelTest, TrainStepReturnsFiniteDecreasingLoss) {
  auto data = TinyData();
  NmcdrModel model(data->View(), TinyConfig(), 1, 5e-3f);
  const auto [first, last] =
      testing_util::TrainLossTrend(&model, *data, /*steps=*/100);
  EXPECT_TRUE(std::isfinite(first));
  EXPECT_TRUE(std::isfinite(last));
  EXPECT_LT(last, first);
}

TEST(NmcdrModelTest, ScoreSizesAndDeterminism) {
  auto data = TinyData();
  NmcdrModel model(data->View(), TinyConfig(), 1, 1e-3f);
  const std::vector<int> users = {0, 1, 2, 0};
  const std::vector<int> items = {3, 2, 1, 0};
  const std::vector<float> a = model.Score(DomainSide::kZ, users, items);
  const std::vector<float> b = model.Score(DomainSide::kZ, users, items);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a, b);  // cached representations -> bitwise identical
  for (float s : a) EXPECT_TRUE(std::isfinite(s));
}

TEST(NmcdrModelTest, ScoreChangesAfterTraining) {
  auto data = TinyData();
  NmcdrModel model(data->View(), TinyConfig(), 1, 5e-3f);
  const std::vector<int> users = {0, 1};
  const std::vector<int> items = {0, 1};
  const std::vector<float> before = model.Score(DomainSide::kZ, users, items);
  testing_util::TrainLossTrend(&model, *data, 10);
  const std::vector<float> after = model.Score(DomainSide::kZ, users, items);
  EXPECT_NE(before, after);
}

TEST(NmcdrModelTest, InvalidateCachesForcesRecompute) {
  auto data = TinyData();
  NmcdrModel model(data->View(), TinyConfig(), 1, 1e-3f);
  const std::vector<int> users = {0};
  const std::vector<int> items = {0};
  const std::vector<float> before = model.Score(DomainSide::kZ, users, items);
  // Mutate parameters directly (as the trainer's checkpoint restore does).
  std::vector<Matrix> snapshot = model.params()->SnapshotValues();
  for (Matrix& m : snapshot) {
    for (int i = 0; i < m.size(); ++i) m.data()[i] += 0.1f;
  }
  model.params()->RestoreValues(snapshot);
  // Without invalidation the cache would serve stale scores.
  model.InvalidateCaches();
  const std::vector<float> after = model.Score(DomainSide::kZ, users, items);
  EXPECT_NE(before, after);
}

TEST(NmcdrModelTest, AblationConfigurationsAllTrain) {
  auto data = TinyData();
  for (int variant = 0; variant < 5; ++variant) {
    NmcdrConfig config = TinyConfig();
    if (variant == 1) config.use_intra = false;
    if (variant == 2) config.use_inter = false;
    if (variant == 3) config.use_complement = false;
    if (variant == 4) config.use_companion = false;
    NmcdrModel model(data->View(), config, 1, 1e-3f);
    const auto [first, last] =
        testing_util::TrainLossTrend(&model, *data, 20);
    EXPECT_TRUE(std::isfinite(last)) << "variant " << variant;
    (void)first;
  }
}

TEST(NmcdrModelTest, DesignAblationsAllTrain) {
  auto data = TinyData();
  for (int variant = 0; variant < 4; ++variant) {
    NmcdrConfig config = TinyConfig();
    if (variant == 1) config.gate_fusion = false;
    if (variant == 2) config.shared_intra_transform = true;
    if (variant == 3) config.complement_observed_only = true;
    NmcdrModel model(data->View(), config, 1, 1e-3f);
    const auto [first, last] =
        testing_util::TrainLossTrend(&model, *data, 15);
    EXPECT_TRUE(std::isfinite(last)) << "variant " << variant;
    (void)first;
  }
}

TEST(NmcdrModelTest, MultiLayerConfiguration) {
  auto data = TinyData();
  NmcdrConfig config = TinyConfig();
  config.intra_inter_layers = 3;  // the paper's setting
  config.complement_layers = 2;
  NmcdrModel model(data->View(), config, 1, 1e-3f);
  const auto [first, last] = testing_util::TrainLossTrend(&model, *data, 10);
  EXPECT_TRUE(std::isfinite(last));
  (void)first;
}

TEST(NmcdrModelTest, ParameterCountScalesWithLayers) {
  auto data = TinyData();
  NmcdrConfig one = TinyConfig();
  NmcdrConfig three = TinyConfig();
  three.intra_inter_layers = 3;
  NmcdrModel m1(data->View(), one, 1, 1e-3f);
  NmcdrModel m3(data->View(), three, 1, 1e-3f);
  EXPECT_GT(m3.ParameterCount(), m1.ParameterCount());
}

TEST(NmcdrModelTest, StageRepsShapes) {
  auto data = TinyData();
  NmcdrModel model(data->View(), TinyConfig(), 1, 1e-3f);
  const NmcdrModel::StageReps reps = model.ComputeStageReps(DomainSide::kZ);
  const int n = data->scenario().z.num_users;
  EXPECT_EQ(reps.g0.rows(), n);
  EXPECT_EQ(reps.g1.rows(), n);
  EXPECT_EQ(reps.g2.rows(), n);
  EXPECT_EQ(reps.g3.rows(), n);
  EXPECT_EQ(reps.g4.rows(), n);
  EXPECT_EQ(reps.g4.cols(), 8);
  // Stages actually differ (each module does something).
  EXPECT_FALSE(AllClose(reps.g0, reps.g1, 1e-6f));
  EXPECT_FALSE(AllClose(reps.g3, reps.g4, 1e-6f));
}

TEST(NmcdrModelTest, StabilityBoundPositiveAndWeightMonotone) {
  auto data = TinyData();
  NmcdrModel model(data->View(), TinyConfig(), 1, 1e-3f);
  const float bound = model.StabilityUpperBound(DomainSide::kZ);
  EXPECT_GT(bound, 0.f);
  // Scaling all weights up must increase the Eq. 31 bound.
  std::vector<Matrix> snapshot = model.params()->SnapshotValues();
  for (Matrix& m : snapshot) {
    for (int i = 0; i < m.size(); ++i) m.data()[i] *= 2.f;
  }
  model.params()->RestoreValues(snapshot);
  model.InvalidateCaches();
  EXPECT_GT(model.StabilityUpperBound(DomainSide::kZ), bound);
}

TEST(NmcdrModelTest, EmpiricalPerturbationStability) {
  // §II.H property: perturbing one user's embedding changes predictions by
  // an amount bounded by a constant times the perturbation norm. We check
  // the ratio is finite and does not explode (factor consistent with the
  // computed bound's order of magnitude).
  auto data = TinyData();
  NmcdrModel model(data->View(), TinyConfig(), 1, 1e-3f);
  testing_util::TrainLossTrend(&model, *data, 30);

  const std::vector<int> users(20, 0);
  std::vector<int> items(20);
  for (int i = 0; i < 20; ++i) items[i] = i;
  const std::vector<float> before = model.Score(DomainSide::kZ, users, items);

  // Perturb user 0's embedding by epsilon.
  const float eps = 1e-2f;
  ag::Tensor table = model.params()->Get("z.user_emb");
  std::vector<Matrix> snapshot = model.params()->SnapshotValues();
  table.mutable_value().At(0, 0) += eps;
  model.InvalidateCaches();
  const std::vector<float> after = model.Score(DomainSide::kZ, users, items);
  model.params()->RestoreValues(snapshot);

  float max_change = 0.f;
  for (size_t i = 0; i < before.size(); ++i) {
    max_change = std::max(max_change, std::fabs(after[i] - before[i]));
  }
  // Lipschitz-like: change / eps bounded by a moderate constant.
  EXPECT_LT(max_change / eps, 100.f);
}

TEST(NmcdrModelTest, ScoreUnaffectedByOtherDomainQueries) {
  auto data = TinyData();
  NmcdrModel model(data->View(), TinyConfig(), 1, 1e-3f);
  const std::vector<float> z_scores =
      model.Score(DomainSide::kZ, {0, 1}, {0, 1});
  model.Score(DomainSide::kZbar, {0}, {0});
  EXPECT_EQ(model.Score(DomainSide::kZ, {0, 1}, {0, 1}), z_scores);
}

}  // namespace
}  // namespace nmcdr
