#include "train/multi_seed.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "train/registry.h"

namespace nmcdr {
namespace {

TEST(AggregateTest, HandValues) {
  const MeanStd single = Aggregate({3.0});
  EXPECT_DOUBLE_EQ(single.mean, 3.0);
  EXPECT_DOUBLE_EQ(single.std, 0.0);
  const MeanStd pair = Aggregate({1.0, 3.0});
  EXPECT_DOUBLE_EQ(pair.mean, 2.0);
  EXPECT_NEAR(pair.std, std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(Aggregate({}).mean, 0.0);
}

TEST(MultiSeedTest, AggregatesAcrossSeeds) {
  RegisterAllModels();
  auto data = testing_util::TinyData();
  CommonHyper hyper;
  hyper.embed_dim = 8;
  TrainConfig train;
  train.epochs = 1;
  train.min_total_steps = 40;
  EvalConfig eval;
  eval.num_negatives = 20;
  const MultiSeedResult result = RunExperimentMultiSeed(
      *data, ModelRegistry::Instance().Get("LR"), hyper, train, eval,
      {1, 2, 3});
  EXPECT_EQ(result.num_seeds, 3);
  EXPECT_GE(result.hr_z.mean, 0.0);
  EXPECT_LE(result.hr_z.mean, 1.0);
  EXPECT_GE(result.hr_z.std, 0.0);
}

TEST(MultiSeedTest, DifferentSeedsProduceVariance) {
  RegisterAllModels();
  auto data = testing_util::TinyData();
  CommonHyper hyper;
  hyper.embed_dim = 8;
  TrainConfig train;
  train.epochs = 1;
  train.min_total_steps = 60;
  EvalConfig eval;
  eval.num_negatives = 20;
  const MultiSeedResult result = RunExperimentMultiSeed(
      *data, ModelRegistry::Instance().Get("NeuMF"), hyper, train, eval,
      {11, 22, 33, 44});
  // Seeded inits differ, so some metric must vary across runs.
  EXPECT_GT(result.hr_z.std + result.ndcg_z.std + result.hr_zbar.std +
                result.ndcg_zbar.std,
            0.0);
}

TEST(MultiSeedTest, SameSeedIsDeterministic) {
  RegisterAllModels();
  auto data = testing_util::TinyData();
  CommonHyper hyper;
  hyper.embed_dim = 8;
  TrainConfig train;
  train.epochs = 1;
  train.min_total_steps = 30;
  EvalConfig eval;
  eval.num_negatives = 20;
  const MultiSeedResult result = RunExperimentMultiSeed(
      *data, ModelRegistry::Instance().Get("LR"), hyper, train, eval,
      {5, 5, 5});
  EXPECT_DOUBLE_EQ(result.hr_z.std, 0.0);
  EXPECT_DOUBLE_EQ(result.ndcg_zbar.std, 0.0);
}

}  // namespace
}  // namespace nmcdr
