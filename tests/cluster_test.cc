// Tests for the serving cluster subsystem (src/serving/cluster):
// ShardLayout round-trips, sharded-vs-monolithic top-K bit-exactness,
// RCU snapshot publishing (including the concurrent 100-version
// hot-swap run that the TSan CI job exercises), admission control, and
// the ClusterServer end to end.

#include <algorithm>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/nmcdr_model.h"
#include "obs/obs.h"
#include "serving/cluster/admission.h"
#include "serving/cluster/cluster_server.h"
#include "serving/cluster/shard_layout.h"
#include "serving/cluster/sharded_snapshot.h"
#include "serving/cluster/snapshot_registry.h"
#include "serving/model_snapshot.h"
#include "serving/score_engine.h"
#include "tests/test_util.h"

namespace nmcdr {
namespace cluster {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// One trained two-domain NMCDR model plus its frozen snapshot, shared by
/// every test in this file (training once keeps the suite fast).
struct PairFixture {
  std::unique_ptr<ExperimentData> data;
  std::unique_ptr<NmcdrModel> model;
  ModelSnapshot snapshot;
};

PairFixture& Pair() {
  static PairFixture* fixture = [] {
    // NMCDR_LINT_ALLOW(naked-new): leaked on purpose — the fixture must
    // survive until the last test and dodge static-destruction order.
    auto* f = new PairFixture;
    f->data = testing_util::TinyData();
    NmcdrConfig config;
    config.hidden_dim = 8;
    f->model = std::make_unique<NmcdrModel>(f->data->View(), config, 1, 5e-3f);
    testing_util::TrainLossTrend(f->model.get(), *f->data, 20);
    EXPECT_TRUE(ModelSnapshot::FreezePair(f->model.get(),
                                          f->data->scenario(), &f->snapshot));
    return f;
  }();
  return *fixture;
}

/// A request mix covering same-domain, cross-domain linked, cross-domain
/// cold-start, and exclusion-list requests over both domains.
std::vector<RecRequest> MixedRequests(const ModelSnapshot& snapshot, int k) {
  std::vector<RecRequest> requests;
  for (int d = 0; d < snapshot.num_domains(); ++d) {
    for (int user = 0; user < snapshot.domain(d).num_users(); ++user) {
      RecRequest same;
      same.target_domain = same.user_domain = d;
      same.user = user;
      same.k = k;
      requests.push_back(same);

      RecRequest cross;
      cross.target_domain = 1 - d;
      cross.user_domain = d;
      cross.user = user;
      cross.k = k;
      requests.push_back(cross);

      RecRequest excluding = same;
      excluding.exclude = {0, user % snapshot.domain(d).num_items()};
      requests.push_back(excluding);
    }
  }
  return requests;
}

void ExpectSameRecommendations(const std::vector<Recommendation>& expected,
                               const std::vector<Recommendation>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].cold_start, actual[i].cold_start) << "request " << i;
    ASSERT_EQ(expected[i].items, actual[i].items) << "request " << i;
    ASSERT_EQ(expected[i].scores.size(), actual[i].scores.size());
    for (size_t j = 0; j < expected[i].scores.size(); ++j) {
      // Bit-exact, not approximately equal: the sharded path runs the
      // same row-independent kernels over the same rows.
      EXPECT_EQ(expected[i].scores[j], actual[i].scores[j])
          << "request " << i << " rank " << j;
    }
  }
}

TEST(ShardLayoutTest, UniformValidatesAndCoversEveryRow) {
  const ModelSnapshot& snapshot = Pair().snapshot;
  for (int shards : {1, 2, 4, 7}) {
    const ShardLayout layout = ShardLayout::Uniform(snapshot, shards);
    std::string error;
    EXPECT_TRUE(layout.Validate(snapshot, &error)) << error;
    for (int d = 0; d < snapshot.num_domains(); ++d) {
      std::vector<int> owners(snapshot.domain(d).num_users());
      for (int u = 0; u < snapshot.domain(d).num_users(); ++u) {
        const int s = layout.UserShard(d, u);
        ASSERT_GE(s, 0);
        ASSERT_LT(s, shards);
        ASSERT_GE(u, layout.domains[d].user_splits[s]);
        ASSERT_LT(u, layout.domains[d].user_splits[s + 1]);
      }
      for (int i = 0; i < snapshot.domain(d).num_items(); ++i) {
        const int s = layout.ItemShard(d, i);
        ASSERT_GE(i, layout.domains[d].item_splits[s]);
        ASSERT_LT(i, layout.domains[d].item_splits[s + 1]);
      }
    }
  }
}

TEST(ShardLayoutTest, JsonRoundTrip) {
  const ShardLayout layout = ShardLayout::Uniform(Pair().snapshot, 3);
  ShardLayout parsed;
  std::string error;
  ASSERT_TRUE(ShardLayout::Parse(layout.ToJson(), &parsed, &error)) << error;
  EXPECT_TRUE(layout.Equals(parsed));
}

TEST(ShardLayoutTest, FileRoundTrip) {
  const ShardLayout layout = ShardLayout::Uniform(Pair().snapshot, 4);
  const std::string path = TempPath("layout.json");
  ASSERT_TRUE(layout.Save(path));
  ShardLayout loaded;
  ASSERT_TRUE(ShardLayout::Load(path, &loaded));
  EXPECT_TRUE(layout.Equals(loaded));
}

TEST(ShardLayoutTest, ParseRejectsMalformedDocuments) {
  ShardLayout out;
  std::string error;
  // Wrong schema tag.
  EXPECT_FALSE(ShardLayout::Parse(
      R"({"schema": "WRONG", "num_shards": 1, "domains": []})", &out,
      &error));
  EXPECT_NE(error.find("schema"), std::string::npos) << error;
  // Truncated.
  EXPECT_FALSE(ShardLayout::Parse(
      R"({"schema": "NMCDR_SHARD_LAYOUT_V1", "num_shards": 2)", &out,
      &error));
  // Split vector of the wrong arity for num_shards.
  EXPECT_FALSE(ShardLayout::Parse(
      R"({"schema": "NMCDR_SHARD_LAYOUT_V1", "num_shards": 2, "domains": [
          {"user_splits": [0, 5], "item_splits": [0, 2, 4]}]})",
      &out, &error));
  // Non-monotone splits.
  EXPECT_FALSE(ShardLayout::Parse(
      R"({"schema": "NMCDR_SHARD_LAYOUT_V1", "num_shards": 2, "domains": [
          {"user_splits": [0, 5, 3], "item_splits": [0, 2, 4]}]})",
      &out, &error));
  // Trailing garbage.
  EXPECT_FALSE(ShardLayout::Parse(
      R"({"schema": "NMCDR_SHARD_LAYOUT_V1", "num_shards": 1,
          "domains": [{"user_splits": [0, 1], "item_splits": [0, 1]}]} x)",
      &out, &error));
}

TEST(ShardLayoutTest, ValidateRejectsMismatchedSnapshot) {
  const ModelSnapshot& snapshot = Pair().snapshot;
  ShardLayout layout = ShardLayout::Uniform(snapshot, 2);
  layout.domains[0].user_splits.back() += 1;  // no longer spans the table
  std::string error;
  EXPECT_FALSE(layout.Validate(snapshot, &error));
  EXPECT_NE(error.find("user_splits"), std::string::npos) << error;
}

TEST(ShardedSnapshotTest, BitExactAcrossShardCountsAndModes) {
  const ModelSnapshot& snapshot = Pair().snapshot;
  const std::vector<RecRequest> requests = MixedRequests(snapshot, 5);
  for (const ScoreEngine::Mode mode :
       {ScoreEngine::Mode::kExact, ScoreEngine::Mode::kFast}) {
    ScoreEngine::Options engine_options;
    engine_options.mode = mode;
    const ScoreEngine engine(&snapshot, engine_options);
    const std::vector<Recommendation> expected = engine.TopKBatch(requests);
    for (int shards : {1, 2, 4, 7}) {
      ShardedSnapshot::Options options;
      options.mode = mode;
      const ShardedSnapshot sharded(
          snapshot, ShardLayout::Uniform(snapshot, shards), options);
      ExpectSameRecommendations(expected, sharded.TopKBatch(requests));
    }
  }
}

TEST(ShardedSnapshotTest, BitExactOnSkewedLayoutWithEmptyShards) {
  const ModelSnapshot& snapshot = Pair().snapshot;
  // Hand-built 3-shard layout: shard 0 owns nothing, shard 1 owns one
  // row, shard 2 the rest (empty ranges are legal and must not perturb
  // results).
  ShardLayout layout;
  layout.num_shards = 3;
  for (int d = 0; d < snapshot.num_domains(); ++d) {
    DomainSplits splits;
    splits.user_splits = {0, 0, 1, snapshot.domain(d).num_users()};
    splits.item_splits = {0, 0, 1, snapshot.domain(d).num_items()};
    layout.domains.push_back(splits);
  }
  std::string error;
  ASSERT_TRUE(layout.Validate(snapshot, &error)) << error;

  const std::vector<RecRequest> requests = MixedRequests(snapshot, 4);
  const ScoreEngine engine(&snapshot);
  const ShardedSnapshot sharded(snapshot, layout);
  ExpectSameRecommendations(engine.TopKBatch(requests),
                            sharded.TopKBatch(requests));
}

TEST(ShardedSnapshotTest, KLargerThanCatalogReturnsEverything) {
  const ModelSnapshot& snapshot = Pair().snapshot;
  const ShardedSnapshot sharded(snapshot, ShardLayout::Uniform(snapshot, 4));
  RecRequest request;
  request.target_domain = request.user_domain = 0;
  request.user = 0;
  request.k = snapshot.domain(0).num_items() + 10;
  const Recommendation rec = sharded.TopK(request);
  EXPECT_EQ(static_cast<int>(rec.items.size()),
            snapshot.domain(0).num_items());
}

TEST(SyntheticSnapshotTest, StructurallyValidAndServable) {
  SyntheticSnapshotSpec spec;
  spec.num_domains = 3;
  spec.users_per_domain = 40;
  spec.items_per_domain = 24;
  spec.dim = 8;
  spec.hidden = 8;
  spec.overlap = 0.25f;
  spec.seed = 11;
  const ModelSnapshot snapshot = ModelSnapshot::MakeSynthetic(spec);
  ASSERT_EQ(snapshot.num_domains(), 3);
  // 40 anchor persons + 2 * 30 unlinked.
  EXPECT_EQ(snapshot.num_persons(), 40 + 2 * 30);
  // Linked users resolve into domain 0; unlinked ones cold-start.
  EXPECT_EQ(snapshot.ResolveUser(1, 3, 0), 3);
  EXPECT_EQ(snapshot.ResolveUser(1, 25, 0), -1);

  // The synthetic snapshot is servable and sharded-bit-exact like a
  // trained one.
  const std::vector<RecRequest> requests = [&] {
    std::vector<RecRequest> out;
    for (int user = 0; user < 8; ++user) {
      RecRequest request;
      request.target_domain = user % 3;
      request.user_domain = (user + 1) % 3;
      request.user = user * 4;
      request.k = 6;
      out.push_back(request);
    }
    return out;
  }();
  const ScoreEngine engine(&snapshot);
  const ShardedSnapshot sharded(snapshot, ShardLayout::Uniform(snapshot, 4));
  ExpectSameRecommendations(engine.TopKBatch(requests),
                            sharded.TopKBatch(requests));
}

TEST(SnapshotRegistryTest, PublishBumpsVersionAndRetiresOldSnapshots) {
  const ModelSnapshot& source = Pair().snapshot;
  const ShardLayout layout = ShardLayout::Uniform(source, 2);
  SnapshotRegistry registry;
  EXPECT_EQ(registry.version(), 0);
  EXPECT_EQ(registry.Acquire(), nullptr);

  auto first = std::make_shared<const ShardedSnapshot>(source, layout);
  std::weak_ptr<const ShardedSnapshot> first_watch = first;
  EXPECT_EQ(registry.Publish(std::move(first)), 1);

  int64_t version = 0;
  auto held = registry.Acquire(&version);
  EXPECT_EQ(version, 1);
  ASSERT_NE(held, nullptr);

  auto second = std::make_shared<const ShardedSnapshot>(source, layout);
  EXPECT_EQ(registry.Publish(std::move(second)), 2);
  EXPECT_EQ(registry.version(), 2);

  // The in-flight reader keeps version 1 alive past its retirement...
  EXPECT_FALSE(first_watch.expired());
  held.reset();
  // ...and the refcount reaches zero the moment the last reader drops.
  EXPECT_TRUE(first_watch.expired());
}

AdmissionTicket MakeTicket(RequestClass cls, int64_t enqueued_ns) {
  AdmissionTicket ticket;
  ticket.request.cls = cls;
  ticket.request.rec.user = 0;
  ticket.enqueued_ns = enqueued_ns;
  return ticket;
}

TEST(AdmissionQueueTest, InteractiveDrainsBeforeBatch) {
  AdmissionOptions options;
  AdmissionQueue queue(options);
  for (int i = 0; i < 3; ++i) {
    AdmissionTicket batch_ticket = MakeTicket(RequestClass::kBatch, i);
    ASSERT_TRUE(queue.TryPush(&batch_ticket));
    AdmissionTicket interactive = MakeTicket(RequestClass::kInteractive, i);
    ASSERT_TRUE(queue.TryPush(&interactive));
  }
  std::vector<AdmissionTicket> shed;
  std::vector<AdmissionTicket> popped;
  queue.PopBatch(/*max_batch=*/4, /*now_ns=*/100, &popped, &shed);
  ASSERT_EQ(popped.size(), 4u);
  EXPECT_TRUE(shed.empty());
  // All 3 interactive tickets first (FIFO), then the oldest batch one.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(popped[i].request.cls, RequestClass::kInteractive);
    EXPECT_EQ(popped[i].enqueued_ns, i);
  }
  EXPECT_EQ(popped[3].request.cls, RequestClass::kBatch);
  EXPECT_EQ(queue.Depth(RequestClass::kBatch), 2);
}

TEST(AdmissionQueueTest, ShedsAtCapacityPerClass) {
  AdmissionOptions options;
  options.interactive_capacity = 2;
  options.batch_capacity = 1;
  AdmissionQueue queue(options);
  AdmissionTicket a = MakeTicket(RequestClass::kInteractive, 0);
  AdmissionTicket b = MakeTicket(RequestClass::kInteractive, 1);
  AdmissionTicket c = MakeTicket(RequestClass::kInteractive, 2);
  EXPECT_TRUE(queue.TryPush(&a));
  EXPECT_TRUE(queue.TryPush(&b));
  EXPECT_FALSE(queue.TryPush(&c));  // interactive full; batch unaffected
  AdmissionTicket d = MakeTicket(RequestClass::kBatch, 3);
  EXPECT_TRUE(queue.TryPush(&d));
  EXPECT_EQ(queue.TotalDepth(), 3);
}

TEST(AdmissionQueueTest, ExpiredTicketsAreShedNotServed) {
  AdmissionOptions options;
  options.interactive_deadline_ms = 1.0;  // 1 ms
  options.batch_deadline_ms = 0.0;        // batch never expires here
  AdmissionQueue queue(options);
  AdmissionTicket stale = MakeTicket(RequestClass::kInteractive, 0);
  AdmissionTicket fresh =
      MakeTicket(RequestClass::kInteractive, 1900000);  // 0.1 ms old
  AdmissionTicket old_batch = MakeTicket(RequestClass::kBatch, 0);
  ASSERT_TRUE(queue.TryPush(&stale));
  ASSERT_TRUE(queue.TryPush(&fresh));
  ASSERT_TRUE(queue.TryPush(&old_batch));
  std::vector<AdmissionTicket> shed;
  std::vector<AdmissionTicket> popped;
  queue.PopBatch(/*max_batch=*/8, /*now_ns=*/2000000, &popped, &shed);
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0].enqueued_ns, 0);
  EXPECT_EQ(shed[0].request.cls, RequestClass::kInteractive);
  ASSERT_EQ(popped.size(), 2u);  // the fresh interactive + the batch one
  EXPECT_EQ(popped[0].request.cls, RequestClass::kInteractive);
  EXPECT_EQ(popped[1].request.cls, RequestClass::kBatch);
}

std::shared_ptr<const ShardedSnapshot> MakeSharded(const ModelSnapshot& source,
                                                   int shards) {
  return std::make_shared<const ShardedSnapshot>(
      source, ShardLayout::Uniform(source, shards));
}

TEST(ClusterServerTest, ServesBitExactResponses) {
  const ModelSnapshot& snapshot = Pair().snapshot;
  const std::vector<RecRequest> requests = MixedRequests(snapshot, 5);
  const ScoreEngine engine(&snapshot);
  const std::vector<Recommendation> expected = engine.TopKBatch(requests);

  ClusterServer::Options options;
  options.num_threads = 3;
  options.max_batch = 4;
  ClusterServer server(MakeSharded(snapshot, 3), options);
  std::vector<std::future<ClusterResponse>> futures;
  for (size_t i = 0; i < requests.size(); ++i) {
    ClusterRequest request;
    request.rec = requests[i];
    request.cls =
        i % 3 == 0 ? RequestClass::kBatch : RequestClass::kInteractive;
    futures.push_back(server.Submit(std::move(request)));
  }
  std::vector<Recommendation> served;
  for (auto& future : futures) {
    ClusterResponse response = future.get();
    ASSERT_EQ(response.status, ClusterStatus::kOk);
    EXPECT_EQ(response.snapshot_version, 1);
    EXPECT_GE(response.latency_ms, 0.0);
    served.push_back(std::move(response.rec));
  }
  ExpectSameRecommendations(expected, served);
  server.Stop();
  EXPECT_EQ(server.active_drainers(), 0);
  EXPECT_EQ(server.last_observed_version(), 1);

  obs::MetricsRegistry& metrics = server.metrics_registry();
  const int64_t served_count =
      metrics.GetCounter("cluster.served.interactive").Value() +
      metrics.GetCounter("cluster.served.batch").Value();
  EXPECT_EQ(served_count, static_cast<int64_t>(requests.size()));
}

TEST(ClusterServerTest, SubmitAfterStopResolvesStopped) {
  const ModelSnapshot& snapshot = Pair().snapshot;
  ClusterServer server(MakeSharded(snapshot, 2), ClusterServer::Options());
  server.Stop();
  ClusterRequest request;
  request.rec.k = 3;
  ClusterResponse response = server.Submit(std::move(request)).get();
  EXPECT_EQ(response.status, ClusterStatus::kStopped);
  EXPECT_EQ(
      server.metrics_registry().GetCounter("cluster.stopped_rejects").Value(),
      1);
}

TEST(ClusterServerTest, NanosecondDeadlineShedsEveryQueuedRequest) {
  const ModelSnapshot& snapshot = Pair().snapshot;
  ClusterServer::Options options;
  // 1 ns queueing deadline: every ticket is stale by the time a drainer
  // reaches it, so this deterministically exercises the deadline-shed
  // path end to end.
  options.admission.interactive_deadline_ms = 1e-6;
  ClusterServer server(MakeSharded(snapshot, 2), options);
  std::vector<std::future<ClusterResponse>> futures;
  for (int i = 0; i < 16; ++i) {
    ClusterRequest request;
    request.rec.user = i % snapshot.domain(0).num_users();
    request.rec.k = 3;
    futures.push_back(server.Submit(std::move(request)));
  }
  int shed = 0;
  for (auto& future : futures) {
    const ClusterResponse response = future.get();
    if (response.status == ClusterStatus::kShedDeadline) ++shed;
  }
  server.Stop();
  EXPECT_EQ(shed, 16);
  EXPECT_EQ(server.metrics_registry()
                .GetCounter("cluster.shed_deadline.interactive")
                .Value(),
            16);
}

// The concurrent hot-swap test the TSan job runs: score continuously
// while publishing many snapshot versions, asserting (a) every response
// is served (zero downtime), (b) no torn reads — each response is
// bit-identical to the precomputed reference for the version that served
// it, (c) versions are observed monotonically, and (d) every retired
// version's refcount reaches zero once the last reader drops.
TEST(ClusterServerTest, HotSwapHundredVersionsUnderLoad) {
  constexpr int kVersions = 100;
  constexpr int kRequestsPerVersion = 4;

  SyntheticSnapshotSpec spec;
  spec.num_domains = 2;
  spec.users_per_domain = 48;
  spec.items_per_domain = 32;
  spec.dim = 8;
  spec.hidden = 8;
  spec.overlap = 0.5f;

  // Fixed request mix reused against every version.
  std::vector<RecRequest> requests(kRequestsPerVersion);
  for (int i = 0; i < kRequestsPerVersion; ++i) {
    requests[i].target_domain = i % 2;
    requests[i].user_domain = (i / 2) % 2;
    requests[i].user = i * 7 % spec.users_per_domain;
    requests[i].k = 5;
  }

  // Build every version (distinct seeds => distinct tables) and its
  // reference answers up front, before any concurrency starts.
  std::vector<std::shared_ptr<const ShardedSnapshot>> versions;
  std::vector<std::weak_ptr<const ShardedSnapshot>> watches;
  std::vector<std::vector<Recommendation>> reference;
  for (int v = 0; v < kVersions + 1; ++v) {
    spec.seed = 1000 + v;
    const ModelSnapshot source = ModelSnapshot::MakeSynthetic(spec);
    versions.push_back(MakeSharded(source, 3));
    watches.push_back(versions.back());
    reference.push_back(versions.back()->TopKBatch(requests));
  }

  ClusterServer::Options options;
  options.num_threads = 4;
  options.max_batch = 4;
  ClusterServer server(versions[0], options);

  // Main thread publishes while pool drainers score concurrently; the
  // futures are collected per wave so the request stream never stops.
  struct InFlight {
    std::future<ClusterResponse> future;
    int64_t min_version = 0;  // version already published at Submit time
  };
  std::vector<InFlight> in_flight;
  int64_t published = 1;
  for (int v = 1; v <= kVersions; ++v) {
    for (int i = 0; i < kRequestsPerVersion; ++i) {
      ClusterRequest request;
      request.rec = requests[i];
      request.cls =
          i % 2 == 0 ? RequestClass::kInteractive : RequestClass::kBatch;
      InFlight flight;
      flight.min_version = published;
      flight.future = server.Submit(std::move(request));
      in_flight.push_back(std::move(flight));
    }
    published = server.Publish(versions[v]);
    EXPECT_EQ(published, v + 1);
  }

  int64_t max_seen = 0;
  for (InFlight& flight : in_flight) {
    ClusterResponse response = flight.future.get();
    ASSERT_EQ(response.status, ClusterStatus::kOk);  // zero downtime
    ASSERT_GE(response.snapshot_version, flight.min_version);
    ASSERT_LE(response.snapshot_version, kVersions + 1);
    max_seen = std::max(max_seen, response.snapshot_version);
  }
  server.Stop();

  // Monotone observation: the server's watermark is the max version any
  // batch saw (AtomicMax keeps it monotone by construction; this pins
  // the bookkeeping to the traffic).
  EXPECT_EQ(server.last_observed_version(), max_seen);
  EXPECT_GE(max_seen, 2);  // at least one swap was observed under load

  // Spot torn-read check against the final version's reference (the
  // per-version full check lives in ResponsesMatchTheVersionThatServedThem).
  ExpectSameRecommendations(reference[kVersions],
                            versions[kVersions]->TopKBatch(requests));

  // Refcounts reach zero: drop our references; every version except the
  // still-held final one must be freed.
  versions.clear();
  for (int v = 0; v < kVersions; ++v) {
    EXPECT_TRUE(watches[v].expired()) << "version " << v + 1 << " leaked";
  }
}

// Full torn-read verification with responses checked against the exact
// version that served them (the map from response version to reference
// table is the assertion).
TEST(ClusterServerTest, ResponsesMatchTheVersionThatServedThem) {
  constexpr int kVersions = 20;
  SyntheticSnapshotSpec spec;
  spec.users_per_domain = 32;
  spec.items_per_domain = 24;
  spec.dim = 8;
  spec.hidden = 8;

  RecRequest probe;
  probe.target_domain = probe.user_domain = 0;
  probe.user = 5;
  probe.k = 4;

  std::vector<std::shared_ptr<const ShardedSnapshot>> versions;
  std::vector<Recommendation> reference;
  for (int v = 0; v < kVersions; ++v) {
    spec.seed = 7000 + v;
    const ModelSnapshot source = ModelSnapshot::MakeSynthetic(spec);
    versions.push_back(MakeSharded(source, 2));
    reference.push_back(versions.back()->TopK(probe));
  }

  ClusterServer::Options options;
  options.num_threads = 2;
  ClusterServer server(versions[0], options);
  std::vector<std::future<ClusterResponse>> futures;
  for (int v = 1; v < kVersions; ++v) {
    for (int r = 0; r < 3; ++r) {
      ClusterRequest request;
      request.rec = probe;
      futures.push_back(server.Submit(std::move(request)));
    }
    server.Publish(versions[v]);
  }
  for (auto& future : futures) {
    ClusterResponse response = future.get();
    ASSERT_EQ(response.status, ClusterStatus::kOk);
    const std::vector<Recommendation> expected = {
        reference[response.snapshot_version - 1]};
    const std::vector<Recommendation> actual = {std::move(response.rec)};
    // A torn read (scoring half-old, half-new tables) could not match
    // the version it claims to be.
    ExpectSameRecommendations(expected, actual);
  }
  server.Stop();
}

}  // namespace
}  // namespace cluster
}  // namespace nmcdr
