#include "util/flags.h"

#include <gtest/gtest.h>

namespace nmcdr {
namespace {

FlagParser Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return FlagParser(static_cast<int>(args.size()), args.data());
}

TEST(FlagParserTest, EqualsSyntax) {
  FlagParser flags = Parse({"--name=value", "--num=42"});
  EXPECT_TRUE(flags.Has("name"));
  EXPECT_EQ(flags.GetString("name"), "value");
  EXPECT_EQ(flags.GetInt("num", 0), 42);
}

TEST(FlagParserTest, SpaceSyntax) {
  FlagParser flags = Parse({"--model", "NMCDR", "--lr", "0.002"});
  EXPECT_EQ(flags.GetString("model"), "NMCDR");
  EXPECT_DOUBLE_EQ(flags.GetDouble("lr", 0.0), 0.002);
}

TEST(FlagParserTest, BareFlagIsBooleanTrue) {
  FlagParser flags = Parse({"--verbose", "--gat", "--x=1"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.GetBool("gat", false));
  EXPECT_FALSE(flags.GetBool("absent", false));
  EXPECT_TRUE(flags.GetBool("absent", true));
}

TEST(FlagParserTest, ExplicitBooleanValues) {
  FlagParser flags = Parse({"--a=true", "--b=false", "--c=1", "--d=0"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
}

TEST(FlagParserTest, BareFlagBeforeAnotherFlag) {
  FlagParser flags = Parse({"--verbose", "--model", "LR"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_EQ(flags.GetString("model"), "LR");
}

TEST(FlagParserTest, PositionalArguments) {
  FlagParser flags = Parse({"run", "--model=LR", "extra"});
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"run", "extra"}));
}

TEST(FlagParserTest, LaterDuplicateWins) {
  FlagParser flags = Parse({"--x=1", "--x=2"});
  EXPECT_EQ(flags.GetInt("x", 0), 2);
}

TEST(FlagParserTest, NegativeNumbers) {
  FlagParser flags = Parse({"--x=-5", "--y=-0.25"});
  EXPECT_EQ(flags.GetInt("x", 0), -5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("y", 0.0), -0.25);
}

TEST(FlagParserTest, ListParsing) {
  FlagParser flags = Parse({"--models=LR,NMCDR,PLE"});
  EXPECT_EQ(flags.GetList("models"),
            (std::vector<std::string>{"LR", "NMCDR", "PLE"}));
  EXPECT_TRUE(flags.GetList("absent").empty());
}

TEST(FlagParserTest, DefaultsWhenAbsent) {
  FlagParser flags = Parse({});
  EXPECT_EQ(flags.GetString("s", "d"), "d");
  EXPECT_EQ(flags.GetInt("i", 7), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("f", 1.5), 1.5);
}

TEST(FlagParserTest, FlagNamesEnumerated) {
  FlagParser flags = Parse({"--b=1", "--a=2"});
  const std::vector<std::string> names = flags.FlagNames();
  EXPECT_EQ(names.size(), 2u);  // sorted by map: a, b
  EXPECT_EQ(names[0], "a");
}

TEST(FlagParserDeathTest, MalformedIntAborts) {
  FlagParser flags = Parse({"--x=abc"});
  EXPECT_DEATH(flags.GetInt("x", 0), "CHECK");
}

TEST(FlagParserDeathTest, MalformedBoolAborts) {
  FlagParser flags = Parse({"--x=maybe"});
  EXPECT_DEATH(flags.GetBool("x", false), "CHECK");
}

}  // namespace
}  // namespace nmcdr
