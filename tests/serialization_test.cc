#include "autograd/serialization.h"

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/nmcdr_model.h"
#include "tests/test_util.h"

namespace nmcdr {
namespace ag {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SerializationTest, RoundTripPreservesValues) {
  ParameterStore store;
  Rng rng(1);
  Tensor a = store.Register("a", Matrix::Gaussian(3, 4, &rng));
  Tensor b = store.Register("b", Matrix::Gaussian(1, 7, &rng));
  const Matrix a_before = a.value();
  const Matrix b_before = b.value();

  const std::string path = TempPath("roundtrip.ckpt");
  ASSERT_TRUE(SaveCheckpoint(store, path));

  // Scramble, then load back.
  a.mutable_value().Fill(0.f);
  b.mutable_value().Fill(-1.f);
  ASSERT_TRUE(LoadCheckpoint(path, &store));
  EXPECT_TRUE(AllClose(a.value(), a_before));
  EXPECT_TRUE(AllClose(b.value(), b_before));
}

TEST(SerializationTest, RejectsNameMismatch) {
  ParameterStore save_store;
  save_store.Register("x", Matrix(2, 2));
  const std::string path = TempPath("names.ckpt");
  ASSERT_TRUE(SaveCheckpoint(save_store, path));

  ParameterStore load_store;
  load_store.Register("y", Matrix(2, 2));
  EXPECT_FALSE(LoadCheckpoint(path, &load_store));
}

TEST(SerializationTest, RejectsShapeMismatch) {
  ParameterStore save_store;
  save_store.Register("x", Matrix(2, 2));
  const std::string path = TempPath("shapes.ckpt");
  ASSERT_TRUE(SaveCheckpoint(save_store, path));

  ParameterStore load_store;
  load_store.Register("x", Matrix(2, 3));
  EXPECT_FALSE(LoadCheckpoint(path, &load_store));
}

TEST(SerializationTest, RejectsCountMismatch) {
  ParameterStore save_store;
  save_store.Register("x", Matrix(1, 1));
  const std::string path = TempPath("count.ckpt");
  ASSERT_TRUE(SaveCheckpoint(save_store, path));

  ParameterStore load_store;
  load_store.Register("x", Matrix(1, 1));
  load_store.Register("extra", Matrix(1, 1));
  EXPECT_FALSE(LoadCheckpoint(path, &load_store));
}

TEST(SerializationTest, RejectsTruncatedFileWithoutPartialLoad) {
  ParameterStore store;
  Rng rng(2);
  Tensor a = store.Register("a", Matrix::Gaussian(4, 4, &rng, 5.f, 0.1f));
  Tensor b = store.Register("b", Matrix::Gaussian(4, 4, &rng, 5.f, 0.1f));
  const std::string path = TempPath("truncated.ckpt");
  ASSERT_TRUE(SaveCheckpoint(store, path));

  // Truncate mid-file.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path, std::ios::binary)
      << contents.substr(0, contents.size() * 2 / 3);

  const Matrix a_before = a.value();
  EXPECT_FALSE(LoadCheckpoint(path, &store));
  // Staged loading: nothing mutated on failure.
  EXPECT_TRUE(AllClose(a.value(), a_before));
}

TEST(SerializationTest, RejectsBadMagic) {
  const std::string path = TempPath("magic.ckpt");
  std::ofstream(path, std::ios::binary) << "NOTACKPT garbage";
  ParameterStore store;
  store.Register("x", Matrix(1, 1));
  EXPECT_FALSE(LoadCheckpoint(path, &store));
}

TEST(SerializationTest, MissingFileFails) {
  ParameterStore store;
  EXPECT_FALSE(LoadCheckpoint(TempPath("missing.ckpt"), &store));
}

TEST(SerializationTest, PrimitivesRoundTripThroughStream) {
  Rng rng(3);
  const Matrix m = Matrix::Gaussian(5, 3, &rng);
  const std::vector<int> ids = {0, -1, 42, 7};
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  WriteU32(stream, 123456u);
  WriteString(stream, "domain/Loan");
  WriteMatrix(stream, m);
  WriteIntVector(stream, ids);

  uint32_t value = 0;
  std::string name;
  Matrix m_back;
  std::vector<int> ids_back;
  ASSERT_TRUE(ReadU32(stream, &value));
  ASSERT_TRUE(ReadString(stream, &name));
  ASSERT_TRUE(ReadMatrix(stream, &m_back));
  ASSERT_TRUE(ReadIntVector(stream, &ids_back));
  EXPECT_EQ(value, 123456u);
  EXPECT_EQ(name, "domain/Loan");
  EXPECT_TRUE(AllClose(m_back, m, 0.f));
  EXPECT_EQ(ids_back, ids);
  // Stream exhausted: further reads fail cleanly.
  EXPECT_FALSE(ReadU32(stream, &value));
}

TEST(SerializationTest, PrimitivesRejectOversizedRecords) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  WriteU32(stream, 1u << 30);  // absurd string length
  std::string name;
  EXPECT_FALSE(ReadString(stream, &name));
}

TEST(SerializationTest, ModelCheckpointReproducesScores) {
  // Full-model property: save -> perturb -> load must restore exact
  // scoring behaviour.
  auto data = testing_util::TinyData();
  NmcdrConfig config;
  config.hidden_dim = 8;
  NmcdrModel model(data->View(), config, 1, 5e-3f);
  testing_util::TrainLossTrend(&model, *data, 20);

  const std::vector<int> users = {0, 1, 2, 3};
  const std::vector<int> items = {3, 2, 1, 0};
  const std::vector<float> before =
      model.Score(DomainSide::kZ, users, items);

  const std::string path = TempPath("model.ckpt");
  ASSERT_TRUE(SaveCheckpoint(*model.params(), path));
  testing_util::TrainLossTrend(&model, *data, 10);  // drift the params
  ASSERT_TRUE(LoadCheckpoint(path, model.params()));
  model.InvalidateCaches();
  EXPECT_EQ(model.Score(DomainSide::kZ, users, items), before);
}

}  // namespace
}  // namespace ag
}  // namespace nmcdr
