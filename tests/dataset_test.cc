#include "data/dataset.h"

#include <cmath>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace nmcdr {
namespace {

CdrScenario SmallScenario() {
  SyntheticScenarioSpec spec;
  spec.name = "test";
  spec.z = {"A", 60, 30, 4.0, 1.0};
  spec.zbar = {"B", 80, 40, 5.0, 1.0};
  spec.num_overlapping = 20;
  spec.seed = 5;
  return GenerateScenario(spec);
}

TEST(DomainDataTest, Density) {
  DomainData d;
  d.num_users = 10;
  d.num_items = 20;
  d.interactions.resize(40);
  EXPECT_DOUBLE_EQ(d.Density(), 0.2);
  DomainData empty;
  EXPECT_DOUBLE_EQ(empty.Density(), 0.0);
}

TEST(CdrScenarioTest, NumOverlappingCountsLinks) {
  CdrScenario s = SmallScenario();
  EXPECT_EQ(s.NumOverlapping(), 20);
}

TEST(CdrScenarioDeathTest, AsymmetricLinksAbort) {
  CdrScenario s = SmallScenario();
  s.zbar_to_z[0] = -1;  // break symmetry
  EXPECT_DEATH(s.CheckConsistency(), "CHECK");
}

TEST(LeaveOneOutTest, PartitionIsExact) {
  CdrScenario s = SmallScenario();
  Rng rng(1);
  DomainSplit split = LeaveOneOutSplit(s.z, &rng);
  // Rebuild per-user multisets and compare with the originals.
  std::map<int, std::multiset<int>> original, rebuilt;
  for (const Interaction& e : s.z.interactions) original[e.user].insert(e.item);
  for (const Interaction& e : split.train) rebuilt[e.user].insert(e.item);
  for (int u = 0; u < s.z.num_users; ++u) {
    if (split.valid_item[u] >= 0) rebuilt[u].insert(split.valid_item[u]);
    if (split.test_item[u] >= 0) rebuilt[u].insert(split.test_item[u]);
  }
  EXPECT_EQ(original, rebuilt);
}

TEST(LeaveOneOutTest, UsersWithThreePlusInteractionsGetHoldouts) {
  CdrScenario s = SmallScenario();
  std::map<int, int> count;
  for (const Interaction& e : s.z.interactions) ++count[e.user];
  Rng rng(1);
  DomainSplit split = LeaveOneOutSplit(s.z, &rng);
  for (int u = 0; u < s.z.num_users; ++u) {
    if (count[u] >= 3) {
      EXPECT_GE(split.valid_item[u], 0) << "user " << u;
      EXPECT_GE(split.test_item[u], 0) << "user " << u;
    } else {
      EXPECT_EQ(split.valid_item[u], -1) << "user " << u;
      EXPECT_EQ(split.test_item[u], -1) << "user " << u;
    }
  }
}

TEST(LeaveOneOutTest, TestAndValidUsersListsMatch) {
  CdrScenario s = SmallScenario();
  Rng rng(1);
  DomainSplit split = LeaveOneOutSplit(s.z, &rng);
  for (int u : split.TestUsers()) EXPECT_GE(split.test_item[u], 0);
  for (int u : split.ValidUsers()) EXPECT_GE(split.valid_item[u], 0);
  EXPECT_EQ(split.TestUsers().size(), split.ValidUsers().size());
}

TEST(LeaveOneOutTest, DeterministicForSameSeed) {
  CdrScenario s = SmallScenario();
  Rng rng1(9), rng2(9);
  DomainSplit a = LeaveOneOutSplit(s.z, &rng1);
  DomainSplit b = LeaveOneOutSplit(s.z, &rng2);
  EXPECT_EQ(a.test_item, b.test_item);
  EXPECT_EQ(a.valid_item, b.valid_item);
}

/// Parameterized sweep over overlap ratios: kept-link count follows the
/// ceil(ratio * overlap) formula of §III.A.2 and symmetry is preserved.
class OverlapRatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(OverlapRatioSweep, KeepsCeilFractionOfLinks) {
  const double ratio = GetParam();
  CdrScenario s = SmallScenario();
  const int before = s.NumOverlapping();
  Rng rng(3);
  CdrScenario masked = ApplyOverlapRatio(s, ratio, &rng);
  EXPECT_EQ(masked.NumOverlapping(),
            static_cast<int>(std::ceil(ratio * before)));
  masked.CheckConsistency();
  // Interactions untouched.
  EXPECT_EQ(masked.z.interactions.size(), s.z.interactions.size());
  // Every kept link existed before.
  for (int u = 0; u < masked.z.num_users; ++u) {
    if (masked.z_to_zbar[u] >= 0) {
      EXPECT_EQ(masked.z_to_zbar[u], s.z_to_zbar[u]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ratios, OverlapRatioSweep,
                         ::testing::Values(0.0, 0.001, 0.01, 0.1, 0.5, 0.9,
                                           1.0));

/// Parameterized sweep over densities: per-user floors hold and totals
/// shrink roughly proportionally.
class DensitySweep : public ::testing::TestWithParam<double> {};

TEST_P(DensitySweep, RespectsFloorAndShrinks) {
  const double ds = GetParam();
  CdrScenario s = SmallScenario();
  Rng rng(4);
  CdrScenario sparse = ApplyDensity(s, ds, /*min_per_user=*/3, &rng);
  sparse.CheckConsistency();
  std::map<int, int> count_before, count_after;
  for (const Interaction& e : s.z.interactions) ++count_before[e.user];
  for (const Interaction& e : sparse.z.interactions) ++count_after[e.user];
  for (const auto& [user, before] : count_before) {
    const int after = count_after[user];
    EXPECT_GE(after, std::min(3, before)) << "user " << user;
    EXPECT_LE(after, before);
  }
  if (ds < 1.0) {
    EXPECT_LT(sparse.z.interactions.size(), s.z.interactions.size());
  } else {
    EXPECT_EQ(sparse.z.interactions.size(), s.z.interactions.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, DensitySweep,
                         ::testing::Values(0.1, 0.5, 0.7, 1.0));

TEST(DomainStatsStringTest, MentionsCounts) {
  CdrScenario s = SmallScenario();
  const std::string stats = DomainStatsString(s.z);
  EXPECT_NE(stats.find("users=60"), std::string::npos);
  EXPECT_NE(stats.find("items=30"), std::string::npos);
}

}  // namespace
}  // namespace nmcdr
