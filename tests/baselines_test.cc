// Parameterized contract tests that every registered model — the 11
// baselines of §III.A.3 plus NMCDR — must satisfy.

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/common.h"
#include "tests/test_util.h"
#include "train/registry.h"

namespace nmcdr {
namespace {

using testing_util::TinyData;

class ModelContractTest : public ::testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() { RegisterAllModels(); }

  std::unique_ptr<RecModel> MakeModel(const ExperimentData& data,
                                      float lr = 5e-3f) {
    CommonHyper hyper;
    hyper.embed_dim = 8;
    hyper.mlp_hidden = {16};
    return ModelRegistry::Instance().Get(GetParam())(data.View(), hyper, lr);
  }
};

TEST_P(ModelContractTest, RegisteredUnderPaperName) {
  EXPECT_TRUE(ModelRegistry::Instance().Contains(GetParam()));
}

TEST_P(ModelContractTest, NameMatchesRegistryKey) {
  auto data = TinyData();
  EXPECT_EQ(MakeModel(*data)->name(), GetParam());
}

TEST_P(ModelContractTest, HasTrainableParameters) {
  auto data = TinyData();
  EXPECT_GT(MakeModel(*data)->ParameterCount(), 0);
}

TEST_P(ModelContractTest, TrainStepProducesFiniteLossAndLearns) {
  auto data = TinyData();
  auto model = MakeModel(*data);
  const auto [first, last] =
      testing_util::TrainLossTrend(model.get(), *data, /*steps=*/80);
  EXPECT_TRUE(std::isfinite(first));
  EXPECT_TRUE(std::isfinite(last));
  EXPECT_LT(last, first + 1e-4f) << "no learning progress";
}

TEST_P(ModelContractTest, ScoreShapeAndFiniteness) {
  auto data = TinyData();
  auto model = MakeModel(*data);
  const std::vector<int> users = {0, 1, 2, 3, 0};
  const std::vector<int> items = {4, 3, 2, 1, 0};
  for (DomainSide side : {DomainSide::kZ, DomainSide::kZbar}) {
    const std::vector<float> scores = model->Score(side, users, items);
    ASSERT_EQ(scores.size(), users.size());
    for (float s : scores) EXPECT_TRUE(std::isfinite(s));
  }
}

TEST_P(ModelContractTest, ScoreDoesNotMutateState) {
  auto data = TinyData();
  auto model = MakeModel(*data);
  testing_util::TrainLossTrend(model.get(), *data, 5);
  const std::vector<int> users = {0, 1, 2};
  const std::vector<int> items = {0, 1, 2};
  const std::vector<float> a = model->Score(DomainSide::kZ, users, items);
  const std::vector<float> b = model->Score(DomainSide::kZ, users, items);
  EXPECT_EQ(a, b);
}

TEST_P(ModelContractTest, EmptyBatchesAreSafe) {
  auto data = TinyData();
  auto model = MakeModel(*data);
  EXPECT_EQ(model->TrainStep(LabeledBatch{}, LabeledBatch{}), 0.f);
}

TEST_P(ModelContractTest, SingleDomainBatchIsSafe) {
  auto data = TinyData();
  auto model = MakeModel(*data);
  LabeledBatch batch;
  batch.users = {0, 0};
  batch.items = {0, 1};
  batch.labels = {1.f, 0.f};
  const float loss = model->TrainStep(batch, LabeledBatch{});
  EXPECT_TRUE(std::isfinite(loss));
}

TEST_P(ModelContractTest, TrainsAtZeroOverlap) {
  // The partial-overlap setting the paper targets: no visible links.
  CdrScenario scenario = GenerateScenario(testing_util::TinySpec());
  Rng rng(2);
  scenario = ApplyOverlapRatio(scenario, 0.0, &rng);
  ExperimentData data(std::move(scenario), 3);
  CommonHyper hyper;
  hyper.embed_dim = 8;
  auto model = ModelRegistry::Instance().Get(GetParam())(data.View(), hyper,
                                                         5e-3f);
  const auto [first, last] =
      testing_util::TrainLossTrend(model.get(), data, 30);
  EXPECT_TRUE(std::isfinite(last));
  (void)first;
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelContractTest, ::testing::ValuesIn(PaperModelOrder()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ------------------------------------------------------- shared helpers

TEST(SharedUserIndexTest, LinkedPairsShareUnionId) {
  CdrScenario scenario = GenerateScenario(testing_util::TinySpec());
  const SharedUserIndex index = BuildSharedUserIndex(scenario);
  EXPECT_EQ(index.num_union,
            scenario.z.num_users + scenario.zbar.num_users -
                scenario.NumOverlapping());
  for (int u = 0; u < scenario.z.num_users; ++u) {
    const int link = scenario.z_to_zbar[u];
    if (link >= 0) {
      EXPECT_EQ(index.z_to_union[u], index.zbar_to_union[link]);
    }
  }
  // Union ids are a bijection onto [0, num_union).
  std::vector<int> seen(index.num_union, 0);
  for (int id : index.z_to_union) ++seen[id];
  for (int u = 0; u < scenario.zbar.num_users; ++u) {
    if (scenario.zbar_to_z[u] < 0) ++seen[index.zbar_to_union[u]];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(SharedUserIndexTest, MaskedOverlapGrowsUnion) {
  CdrScenario scenario = GenerateScenario(testing_util::TinySpec());
  const int full_union = BuildSharedUserIndex(scenario).num_union;
  Rng rng(4);
  CdrScenario masked = ApplyOverlapRatio(scenario, 0.2, &rng);
  EXPECT_GT(BuildSharedUserIndex(masked).num_union, full_union);
}

TEST(BuildUserHistoriesTest, MatchesTrainGraph) {
  auto data = TinyData();
  auto histories = BuildUserHistories(data->train_graph_z());
  ASSERT_EQ(static_cast<int>(histories->size()),
            data->scenario().z.num_users);
  for (int u = 0; u < data->scenario().z.num_users; ++u) {
    EXPECT_EQ((*histories)[u], data->train_graph_z().UserNeighbors(u));
  }
}

TEST(SplitPairwiseTest, PairsPositivesWithTheirNegatives) {
  LabeledBatch batch;
  batch.users = {3, 3, 3, 5, 5};
  batch.items = {10, 11, 12, 20, 21};
  batch.labels = {1.f, 0.f, 0.f, 1.f, 0.f};
  std::vector<int> pu, pi, ni;
  ASSERT_TRUE(SplitPairwise(batch, &pu, &pi, &ni));
  EXPECT_EQ(pu, (std::vector<int>{3, 3, 5}));
  EXPECT_EQ(pi, (std::vector<int>{10, 10, 20}));
  EXPECT_EQ(ni, (std::vector<int>{11, 12, 21}));
}

TEST(SplitPairwiseTest, NoPairsReturnsFalse) {
  LabeledBatch batch;
  batch.users = {1};
  batch.items = {2};
  batch.labels = {1.f};
  std::vector<int> pu, pi, ni;
  EXPECT_FALSE(SplitPairwise(batch, &pu, &pi, &ni));
}

}  // namespace
}  // namespace nmcdr
