#ifndef NMCDR_TESTS_TEST_UTIL_H_
#define NMCDR_TESTS_TEST_UTIL_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "data/synthetic.h"
#include "train/experiment.h"

namespace nmcdr {
namespace testing_util {

/// A small two-domain scenario for model tests: big enough that ranking
/// metrics are meaningful, small enough that training runs in
/// milliseconds.
inline SyntheticScenarioSpec TinySpec(uint64_t seed = 77) {
  SyntheticScenarioSpec spec;
  spec.name = "tiny";
  spec.z = {"A", 80, 40, 5.0, 1.0};
  spec.zbar = {"B", 60, 30, 4.0, 1.0};
  spec.num_overlapping = 25;
  spec.seed = seed;
  return spec;
}

inline std::unique_ptr<ExperimentData> TinyData(uint64_t seed = 77) {
  return std::make_unique<ExperimentData>(GenerateScenario(TinySpec(seed)),
                                          /*split_seed=*/seed + 1);
}

/// Score-function-backed RecModel for evaluator tests.
class PolicyModel : public RecModel {
 public:
  using ScoreFn = std::function<float(DomainSide, int user, int item)>;
  PolicyModel(std::string name, ScoreFn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}
  std::string name() const override { return name_; }
  float TrainStep(const LabeledBatch&, const LabeledBatch&) override {
    return 0.f;
  }
  std::vector<float> Score(DomainSide side, const std::vector<int>& users,
                           const std::vector<int>& items) override {
    std::vector<float> out(users.size());
    for (size_t i = 0; i < users.size(); ++i) {
      out[i] = fn_(side, users[i], items[i]);
    }
    return out;
  }
  ag::ParameterStore* params() override { return &store_; }

 private:
  std::string name_;
  ScoreFn fn_;
  ag::ParameterStore store_;
};

/// Runs `steps` training steps with randomly drawn batches and returns
/// (first_loss, last_loss) averaged over small windows.
inline std::pair<float, float> TrainLossTrend(RecModel* model,
                                              const ExperimentData& data,
                                              int steps,
                                              int batch_size = 64) {
  TrainConfig config;
  config.batch_size = batch_size;
  config.epochs = 1;
  config.min_total_steps = 0;
  Trainer trainer(data.View(), config);
  float first = 0.f, last = 0.f;
  // Use the trainer epoch-by-epoch to drive exactly `steps` steps.
  // Simpler: call Train with epochs so steps_per_epoch*epochs ~ steps is
  // awkward; instead drive batches manually through a 1-epoch trainer by
  // repeatedly training single epochs and reading the loss.
  (void)trainer;
  // Manual loop for precise control:
  Rng rng(5);
  NegativeSampler sampler_z(&data.train_graph_z());
  NegativeSampler sampler_zbar(&data.train_graph_zbar());
  auto draw = [&](const DomainSplit& split, const NegativeSampler& sampler) {
    LabeledBatch batch;
    for (int i = 0; i < batch_size / 2; ++i) {
      const Interaction pos =
          split.train[rng.NextUint64(split.train.size())];
      batch.users.push_back(pos.user);
      batch.items.push_back(pos.item);
      batch.labels.push_back(1.f);
      batch.users.push_back(pos.user);
      batch.items.push_back(sampler.SampleNegative(pos.user, &rng));
      batch.labels.push_back(0.f);
    }
    return batch;
  };
  for (int s = 0; s < steps; ++s) {
    const float loss = model->TrainStep(draw(data.split_z(), sampler_z),
                                        draw(data.split_zbar(), sampler_zbar));
    if (s < 5) first += loss / 5.f;
    if (s >= steps - 5) last += loss / 5.f;
  }
  return {first, last};
}

}  // namespace testing_util
}  // namespace nmcdr

#endif  // NMCDR_TESTS_TEST_UTIL_H_
