#include "tensor/matrix_ops.h"

#include <cmath>

#include <gtest/gtest.h>

namespace nmcdr {
namespace {

TEST(MatrixOpsTest, MatMulHandValues) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = MatMul(a, b);
  EXPECT_TRUE(AllClose(c, Matrix::FromRows({{19, 22}, {43, 50}})));
}

TEST(MatrixOpsTest, MatMulTransAEqualsExplicitTranspose) {
  Rng rng(1);
  Matrix a = Matrix::Gaussian(4, 3, &rng);
  Matrix b = Matrix::Gaussian(4, 5, &rng);
  EXPECT_TRUE(AllClose(MatMulTransA(a, b), MatMul(Transpose(a), b), 1e-4f));
}

TEST(MatrixOpsTest, MatMulTransBEqualsExplicitTranspose) {
  Rng rng(2);
  Matrix a = Matrix::Gaussian(4, 3, &rng);
  Matrix b = Matrix::Gaussian(5, 3, &rng);
  EXPECT_TRUE(AllClose(MatMulTransB(a, b), MatMul(a, Transpose(b)), 1e-4f));
}

TEST(MatrixOpsTest, TransposeRoundTrip) {
  Rng rng(3);
  Matrix a = Matrix::Gaussian(3, 7, &rng);
  EXPECT_TRUE(AllClose(Transpose(Transpose(a)), a));
}

TEST(MatrixOpsTest, ElementwiseOps) {
  Matrix a = Matrix::FromRows({{1, -2}});
  Matrix b = Matrix::FromRows({{3, 4}});
  EXPECT_TRUE(AllClose(Add(a, b), Matrix::FromRows({{4, 2}})));
  EXPECT_TRUE(AllClose(Sub(a, b), Matrix::FromRows({{-2, -6}})));
  EXPECT_TRUE(AllClose(Hadamard(a, b), Matrix::FromRows({{3, -8}})));
  EXPECT_TRUE(AllClose(Axpby(a, 2.f, b, -1.f), Matrix::FromRows({{-1, -8}})));
  EXPECT_TRUE(AllClose(Scale(a, -2.f), Matrix::FromRows({{-2, 4}})));
  EXPECT_TRUE(AllClose(AddScalar(a, 1.f), Matrix::FromRows({{2, -1}})));
}

TEST(MatrixOpsTest, AxpyInto) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix out = Matrix::FromRows({{10, 20}});
  AxpyInto(a, 3.f, &out);
  EXPECT_TRUE(AllClose(out, Matrix::FromRows({{13, 26}})));
}

TEST(MatrixOpsTest, AddRowBroadcast) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix bias = Matrix::FromRows({{10, 20}});
  EXPECT_TRUE(
      AllClose(AddRowBroadcast(a, bias), Matrix::FromRows({{11, 22}, {13, 24}})));
}

TEST(MatrixOpsTest, Nonlinearities) {
  Matrix a = Matrix::FromRows({{-1, 0, 2}});
  EXPECT_TRUE(AllClose(Relu(a), Matrix::FromRows({{0, 0, 2}})));
  Matrix sig = Sigmoid(a);
  EXPECT_NEAR(sig.At(0, 0), 1.f / (1.f + std::exp(1.f)), 1e-6f);
  EXPECT_NEAR(sig.At(0, 1), 0.5f, 1e-6f);
  Matrix th = Tanh(a);
  EXPECT_NEAR(th.At(0, 2), std::tanh(2.f), 1e-6f);
  Matrix sp = Softplus(a);
  EXPECT_NEAR(sp.At(0, 1), std::log(2.f), 1e-6f);
}

TEST(MatrixOpsTest, SigmoidExtremeValuesStable) {
  Matrix a = Matrix::FromRows({{-100.f, 100.f}});
  Matrix s = Sigmoid(a);
  EXPECT_NEAR(s.At(0, 0), 0.f, 1e-6f);
  EXPECT_NEAR(s.At(0, 1), 1.f, 1e-6f);
  EXPECT_FALSE(std::isnan(s.At(0, 0)));
}

TEST(MatrixOpsTest, SoftmaxRowsSumToOne) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {-5, 0, 5}, {100, 100, 100}});
  Matrix s = SoftmaxRows(a);
  for (int r = 0; r < 3; ++r) {
    double total = 0.0;
    for (int c = 0; c < 3; ++c) {
      EXPECT_GT(s.At(r, c), 0.f);
      total += s.At(r, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
  EXPECT_NEAR(s.At(2, 0), 1.f / 3.f, 1e-6f);  // uniform row
}

TEST(MatrixOpsTest, Reductions) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_TRUE(AllClose(RowSum(a), Matrix::FromRows({{3}, {7}})));
  EXPECT_TRUE(AllClose(RowMean(a), Matrix::FromRows({{1.5}, {3.5}})));
  EXPECT_TRUE(AllClose(ColSum(a), Matrix::FromRows({{4, 6}})));
  EXPECT_TRUE(AllClose(ColMean(a), Matrix::FromRows({{2, 3}})));
  EXPECT_TRUE(AllClose(RowDot(a, a), Matrix::FromRows({{5}, {25}})));
}

TEST(MatrixOpsTest, GatherScatterRoundTrip) {
  Matrix table = Matrix::FromRows({{1, 1}, {2, 2}, {3, 3}});
  Matrix gathered = GatherRows(table, {2, 0, 2});
  EXPECT_TRUE(AllClose(gathered, Matrix::FromRows({{3, 3}, {1, 1}, {3, 3}})));
  Matrix acc(3, 2);
  ScatterAddRows(gathered, {2, 0, 2}, &acc);
  EXPECT_TRUE(AllClose(acc, Matrix::FromRows({{1, 1}, {0, 0}, {6, 6}})));
}

TEST(MatrixOpsTest, ConcatCols) {
  Matrix a = Matrix::FromRows({{1}, {2}});
  Matrix b = Matrix::FromRows({{3, 4}, {5, 6}});
  EXPECT_TRUE(
      AllClose(ConcatCols(a, b), Matrix::FromRows({{1, 3, 4}, {2, 5, 6}})));
}

TEST(MatrixOpsTest, LogClampsToAvoidNan) {
  Matrix a = Matrix::FromRows({{0.f, 1.f}});
  Matrix l = Log(a);
  EXPECT_FALSE(std::isnan(l.At(0, 0)));
  EXPECT_NEAR(l.At(0, 1), 0.f, 1e-6f);
}

// --------------------------------------------------------------- CsrMatrix

TEST(CsrMatrixTest, MultiplyMatchesDense) {
  // A = [[0, 2, 0], [1, 0, 3]]
  CsrMatrix a(2, 3, {{{1, 2.f}}, {{0, 1.f}, {2, 3.f}}});
  EXPECT_EQ(a.nnz(), 3);
  Matrix x = Matrix::FromRows({{1, 10}, {2, 20}, {3, 30}});
  Matrix y = a.Multiply(x);
  EXPECT_TRUE(AllClose(y, Matrix::FromRows({{4, 40}, {10, 100}})));
}

TEST(CsrMatrixTest, MultiplyTransposedMatchesDense) {
  CsrMatrix a(2, 3, {{{1, 2.f}}, {{0, 1.f}, {2, 3.f}}});
  Matrix x = Matrix::FromRows({{1, 2}, {3, 4}});
  // A^T x: [3x2]
  Matrix y = a.MultiplyTransposed(x);
  EXPECT_TRUE(AllClose(y, Matrix::FromRows({{3, 4}, {2, 4}, {9, 12}})));
}

TEST(CsrMatrixTest, EmptyRowsYieldZeros) {
  CsrMatrix a(3, 2, {{}, {{0, 1.f}}, {}});
  Matrix x = Matrix::FromRows({{5, 5}, {7, 7}});
  Matrix y = a.Multiply(x);
  EXPECT_EQ(y.At(0, 0), 0.f);
  EXPECT_EQ(y.At(1, 0), 5.f);
  EXPECT_EQ(y.At(2, 1), 0.f);
}

/// Property sweep: CSR multiply agrees with dense multiply for random
/// sparse matrices of several shapes.
class CsrDenseEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CsrDenseEquivalence, AgreesWithDense) {
  const auto [rows, cols, d] = GetParam();
  Rng rng(rows * 1000 + cols);
  Matrix dense(rows, cols);
  std::vector<std::vector<std::pair<int, float>>> entries(rows);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (rng.Bernoulli(0.3)) {
        const float v = rng.Gaussian();
        dense.At(r, c) = v;
        entries[r].emplace_back(c, v);
      }
    }
  }
  CsrMatrix sparse(rows, cols, entries);
  Matrix x = Matrix::Gaussian(cols, d, &rng);
  EXPECT_TRUE(AllClose(sparse.Multiply(x), MatMul(dense, x), 1e-4f));
  Matrix y = Matrix::Gaussian(rows, d, &rng);
  EXPECT_TRUE(AllClose(sparse.MultiplyTransposed(y),
                       MatMulTransA(dense, y), 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CsrDenseEquivalence,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(5, 8, 3),
                      std::make_tuple(16, 4, 7), std::make_tuple(30, 30, 2)));

}  // namespace
}  // namespace nmcdr
