# Empty compiler generated dependencies file for nmcdr_cli.
# This may be replaced when dependencies are built.
