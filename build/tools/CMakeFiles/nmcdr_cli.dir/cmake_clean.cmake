file(REMOVE_RECURSE
  "CMakeFiles/nmcdr_cli.dir/nmcdr_cli.cpp.o"
  "CMakeFiles/nmcdr_cli.dir/nmcdr_cli.cpp.o.d"
  "nmcdr_cli"
  "nmcdr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmcdr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
