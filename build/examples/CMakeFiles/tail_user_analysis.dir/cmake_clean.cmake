file(REMOVE_RECURSE
  "CMakeFiles/tail_user_analysis.dir/tail_user_analysis.cpp.o"
  "CMakeFiles/tail_user_analysis.dir/tail_user_analysis.cpp.o.d"
  "tail_user_analysis"
  "tail_user_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tail_user_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
