# Empty compiler generated dependencies file for tail_user_analysis.
# This may be replaced when dependencies are built.
