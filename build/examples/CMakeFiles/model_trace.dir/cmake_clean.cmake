file(REMOVE_RECURSE
  "CMakeFiles/model_trace.dir/model_trace.cpp.o"
  "CMakeFiles/model_trace.dir/model_trace.cpp.o.d"
  "model_trace"
  "model_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
