# Empty compiler generated dependencies file for model_trace.
# This may be replaced when dependencies are built.
