file(REMOVE_RECURSE
  "CMakeFiles/data_diagnostics.dir/data_diagnostics.cpp.o"
  "CMakeFiles/data_diagnostics.dir/data_diagnostics.cpp.o.d"
  "data_diagnostics"
  "data_diagnostics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_diagnostics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
