# Empty dependencies file for data_diagnostics.
# This may be replaced when dependencies are built.
