# Empty dependencies file for overlap_sweep.
# This may be replaced when dependencies are built.
