file(REMOVE_RECURSE
  "CMakeFiles/overlap_sweep.dir/overlap_sweep.cpp.o"
  "CMakeFiles/overlap_sweep.dir/overlap_sweep.cpp.o.d"
  "overlap_sweep"
  "overlap_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlap_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
