file(REMOVE_RECURSE
  "libnmcdr_util.a"
)
