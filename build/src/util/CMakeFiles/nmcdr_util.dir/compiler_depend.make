# Empty compiler generated dependencies file for nmcdr_util.
# This may be replaced when dependencies are built.
