file(REMOVE_RECURSE
  "CMakeFiles/nmcdr_util.dir/csv_writer.cc.o"
  "CMakeFiles/nmcdr_util.dir/csv_writer.cc.o.d"
  "CMakeFiles/nmcdr_util.dir/flags.cc.o"
  "CMakeFiles/nmcdr_util.dir/flags.cc.o.d"
  "CMakeFiles/nmcdr_util.dir/logging.cc.o"
  "CMakeFiles/nmcdr_util.dir/logging.cc.o.d"
  "CMakeFiles/nmcdr_util.dir/table_printer.cc.o"
  "CMakeFiles/nmcdr_util.dir/table_printer.cc.o.d"
  "libnmcdr_util.a"
  "libnmcdr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmcdr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
