# Empty dependencies file for nmcdr_tensor.
# This may be replaced when dependencies are built.
