file(REMOVE_RECURSE
  "libnmcdr_tensor.a"
)
