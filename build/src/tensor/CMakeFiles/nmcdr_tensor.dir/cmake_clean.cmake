file(REMOVE_RECURSE
  "CMakeFiles/nmcdr_tensor.dir/matrix.cc.o"
  "CMakeFiles/nmcdr_tensor.dir/matrix.cc.o.d"
  "CMakeFiles/nmcdr_tensor.dir/matrix_ops.cc.o"
  "CMakeFiles/nmcdr_tensor.dir/matrix_ops.cc.o.d"
  "CMakeFiles/nmcdr_tensor.dir/rng.cc.o"
  "CMakeFiles/nmcdr_tensor.dir/rng.cc.o.d"
  "libnmcdr_tensor.a"
  "libnmcdr_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmcdr_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
