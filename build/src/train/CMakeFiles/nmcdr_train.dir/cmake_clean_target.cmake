file(REMOVE_RECURSE
  "libnmcdr_train.a"
)
