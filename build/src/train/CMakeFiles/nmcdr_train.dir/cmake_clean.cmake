file(REMOVE_RECURSE
  "CMakeFiles/nmcdr_train.dir/experiment.cc.o"
  "CMakeFiles/nmcdr_train.dir/experiment.cc.o.d"
  "CMakeFiles/nmcdr_train.dir/multi_seed.cc.o"
  "CMakeFiles/nmcdr_train.dir/multi_seed.cc.o.d"
  "CMakeFiles/nmcdr_train.dir/registry.cc.o"
  "CMakeFiles/nmcdr_train.dir/registry.cc.o.d"
  "CMakeFiles/nmcdr_train.dir/trainer.cc.o"
  "CMakeFiles/nmcdr_train.dir/trainer.cc.o.d"
  "libnmcdr_train.a"
  "libnmcdr_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmcdr_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
