# Empty dependencies file for nmcdr_train.
# This may be replaced when dependencies are built.
