file(REMOVE_RECURSE
  "libnmcdr_eval.a"
)
