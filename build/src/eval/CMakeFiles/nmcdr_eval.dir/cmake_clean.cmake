file(REMOVE_RECURSE
  "CMakeFiles/nmcdr_eval.dir/evaluator.cc.o"
  "CMakeFiles/nmcdr_eval.dir/evaluator.cc.o.d"
  "CMakeFiles/nmcdr_eval.dir/metrics.cc.o"
  "CMakeFiles/nmcdr_eval.dir/metrics.cc.o.d"
  "libnmcdr_eval.a"
  "libnmcdr_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmcdr_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
