# Empty dependencies file for nmcdr_eval.
# This may be replaced when dependencies are built.
