file(REMOVE_RECURSE
  "libnmcdr_autograd.a"
)
