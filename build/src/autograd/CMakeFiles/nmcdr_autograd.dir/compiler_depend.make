# Empty compiler generated dependencies file for nmcdr_autograd.
# This may be replaced when dependencies are built.
