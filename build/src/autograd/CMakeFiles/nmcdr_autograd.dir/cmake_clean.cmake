file(REMOVE_RECURSE
  "CMakeFiles/nmcdr_autograd.dir/nn.cc.o"
  "CMakeFiles/nmcdr_autograd.dir/nn.cc.o.d"
  "CMakeFiles/nmcdr_autograd.dir/ops.cc.o"
  "CMakeFiles/nmcdr_autograd.dir/ops.cc.o.d"
  "CMakeFiles/nmcdr_autograd.dir/optimizer.cc.o"
  "CMakeFiles/nmcdr_autograd.dir/optimizer.cc.o.d"
  "CMakeFiles/nmcdr_autograd.dir/serialization.cc.o"
  "CMakeFiles/nmcdr_autograd.dir/serialization.cc.o.d"
  "CMakeFiles/nmcdr_autograd.dir/tensor.cc.o"
  "CMakeFiles/nmcdr_autograd.dir/tensor.cc.o.d"
  "libnmcdr_autograd.a"
  "libnmcdr_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmcdr_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
