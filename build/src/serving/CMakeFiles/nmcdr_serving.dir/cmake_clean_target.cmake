file(REMOVE_RECURSE
  "libnmcdr_serving.a"
)
