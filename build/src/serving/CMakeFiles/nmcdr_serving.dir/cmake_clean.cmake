file(REMOVE_RECURSE
  "CMakeFiles/nmcdr_serving.dir/ab_test.cc.o"
  "CMakeFiles/nmcdr_serving.dir/ab_test.cc.o.d"
  "libnmcdr_serving.a"
  "libnmcdr_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmcdr_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
