# Empty compiler generated dependencies file for nmcdr_serving.
# This may be replaced when dependencies are built.
