file(REMOVE_RECURSE
  "libnmcdr_graph.a"
)
