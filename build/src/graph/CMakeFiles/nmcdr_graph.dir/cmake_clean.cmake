file(REMOVE_RECURSE
  "CMakeFiles/nmcdr_graph.dir/interaction_graph.cc.o"
  "CMakeFiles/nmcdr_graph.dir/interaction_graph.cc.o.d"
  "CMakeFiles/nmcdr_graph.dir/sampling.cc.o"
  "CMakeFiles/nmcdr_graph.dir/sampling.cc.o.d"
  "libnmcdr_graph.a"
  "libnmcdr_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmcdr_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
