# Empty compiler generated dependencies file for nmcdr_graph.
# This may be replaced when dependencies are built.
