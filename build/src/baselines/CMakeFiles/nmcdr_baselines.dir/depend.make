# Empty dependencies file for nmcdr_baselines.
# This may be replaced when dependencies are built.
