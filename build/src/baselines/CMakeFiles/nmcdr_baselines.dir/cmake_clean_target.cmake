file(REMOVE_RECURSE
  "libnmcdr_baselines.a"
)
