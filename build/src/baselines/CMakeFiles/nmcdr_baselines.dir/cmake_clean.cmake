file(REMOVE_RECURSE
  "CMakeFiles/nmcdr_baselines.dir/common.cc.o"
  "CMakeFiles/nmcdr_baselines.dir/common.cc.o.d"
  "CMakeFiles/nmcdr_baselines.dir/cross_domain.cc.o"
  "CMakeFiles/nmcdr_baselines.dir/cross_domain.cc.o.d"
  "CMakeFiles/nmcdr_baselines.dir/multi_task.cc.o"
  "CMakeFiles/nmcdr_baselines.dir/multi_task.cc.o.d"
  "CMakeFiles/nmcdr_baselines.dir/partial_overlap.cc.o"
  "CMakeFiles/nmcdr_baselines.dir/partial_overlap.cc.o.d"
  "CMakeFiles/nmcdr_baselines.dir/register_all.cc.o"
  "CMakeFiles/nmcdr_baselines.dir/register_all.cc.o.d"
  "CMakeFiles/nmcdr_baselines.dir/single_domain.cc.o"
  "CMakeFiles/nmcdr_baselines.dir/single_domain.cc.o.d"
  "libnmcdr_baselines.a"
  "libnmcdr_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmcdr_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
