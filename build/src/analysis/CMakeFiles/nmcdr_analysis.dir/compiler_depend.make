# Empty compiler generated dependencies file for nmcdr_analysis.
# This may be replaced when dependencies are built.
