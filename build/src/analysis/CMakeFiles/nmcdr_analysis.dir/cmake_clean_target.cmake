file(REMOVE_RECURSE
  "libnmcdr_analysis.a"
)
