file(REMOVE_RECURSE
  "CMakeFiles/nmcdr_analysis.dir/embedding_stats.cc.o"
  "CMakeFiles/nmcdr_analysis.dir/embedding_stats.cc.o.d"
  "CMakeFiles/nmcdr_analysis.dir/tsne.cc.o"
  "CMakeFiles/nmcdr_analysis.dir/tsne.cc.o.d"
  "libnmcdr_analysis.a"
  "libnmcdr_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmcdr_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
