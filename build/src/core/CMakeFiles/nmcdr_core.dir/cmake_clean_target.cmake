file(REMOVE_RECURSE
  "libnmcdr_core.a"
)
