
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/complementing.cc" "src/core/CMakeFiles/nmcdr_core.dir/complementing.cc.o" "gcc" "src/core/CMakeFiles/nmcdr_core.dir/complementing.cc.o.d"
  "/root/repo/src/core/hetero_encoder.cc" "src/core/CMakeFiles/nmcdr_core.dir/hetero_encoder.cc.o" "gcc" "src/core/CMakeFiles/nmcdr_core.dir/hetero_encoder.cc.o.d"
  "/root/repo/src/core/inter_matching.cc" "src/core/CMakeFiles/nmcdr_core.dir/inter_matching.cc.o" "gcc" "src/core/CMakeFiles/nmcdr_core.dir/inter_matching.cc.o.d"
  "/root/repo/src/core/intra_matching.cc" "src/core/CMakeFiles/nmcdr_core.dir/intra_matching.cc.o" "gcc" "src/core/CMakeFiles/nmcdr_core.dir/intra_matching.cc.o.d"
  "/root/repo/src/core/multi_domain_nmcdr.cc" "src/core/CMakeFiles/nmcdr_core.dir/multi_domain_nmcdr.cc.o" "gcc" "src/core/CMakeFiles/nmcdr_core.dir/multi_domain_nmcdr.cc.o.d"
  "/root/repo/src/core/nmcdr_model.cc" "src/core/CMakeFiles/nmcdr_core.dir/nmcdr_model.cc.o" "gcc" "src/core/CMakeFiles/nmcdr_core.dir/nmcdr_model.cc.o.d"
  "/root/repo/src/core/prediction.cc" "src/core/CMakeFiles/nmcdr_core.dir/prediction.cc.o" "gcc" "src/core/CMakeFiles/nmcdr_core.dir/prediction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/autograd/CMakeFiles/nmcdr_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/nmcdr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/nmcdr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nmcdr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/nmcdr_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
