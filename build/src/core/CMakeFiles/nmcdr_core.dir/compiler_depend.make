# Empty compiler generated dependencies file for nmcdr_core.
# This may be replaced when dependencies are built.
