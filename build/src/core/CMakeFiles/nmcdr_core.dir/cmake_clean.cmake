file(REMOVE_RECURSE
  "CMakeFiles/nmcdr_core.dir/complementing.cc.o"
  "CMakeFiles/nmcdr_core.dir/complementing.cc.o.d"
  "CMakeFiles/nmcdr_core.dir/hetero_encoder.cc.o"
  "CMakeFiles/nmcdr_core.dir/hetero_encoder.cc.o.d"
  "CMakeFiles/nmcdr_core.dir/inter_matching.cc.o"
  "CMakeFiles/nmcdr_core.dir/inter_matching.cc.o.d"
  "CMakeFiles/nmcdr_core.dir/intra_matching.cc.o"
  "CMakeFiles/nmcdr_core.dir/intra_matching.cc.o.d"
  "CMakeFiles/nmcdr_core.dir/multi_domain_nmcdr.cc.o"
  "CMakeFiles/nmcdr_core.dir/multi_domain_nmcdr.cc.o.d"
  "CMakeFiles/nmcdr_core.dir/nmcdr_model.cc.o"
  "CMakeFiles/nmcdr_core.dir/nmcdr_model.cc.o.d"
  "CMakeFiles/nmcdr_core.dir/prediction.cc.o"
  "CMakeFiles/nmcdr_core.dir/prediction.cc.o.d"
  "libnmcdr_core.a"
  "libnmcdr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmcdr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
