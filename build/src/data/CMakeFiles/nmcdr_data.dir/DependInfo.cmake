
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/nmcdr_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/nmcdr_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/importer.cc" "src/data/CMakeFiles/nmcdr_data.dir/importer.cc.o" "gcc" "src/data/CMakeFiles/nmcdr_data.dir/importer.cc.o.d"
  "/root/repo/src/data/loader.cc" "src/data/CMakeFiles/nmcdr_data.dir/loader.cc.o" "gcc" "src/data/CMakeFiles/nmcdr_data.dir/loader.cc.o.d"
  "/root/repo/src/data/presets.cc" "src/data/CMakeFiles/nmcdr_data.dir/presets.cc.o" "gcc" "src/data/CMakeFiles/nmcdr_data.dir/presets.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/data/CMakeFiles/nmcdr_data.dir/synthetic.cc.o" "gcc" "src/data/CMakeFiles/nmcdr_data.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/nmcdr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/nmcdr_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nmcdr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
