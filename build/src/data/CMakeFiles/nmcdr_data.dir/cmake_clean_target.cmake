file(REMOVE_RECURSE
  "libnmcdr_data.a"
)
