# Empty compiler generated dependencies file for nmcdr_data.
# This may be replaced when dependencies are built.
