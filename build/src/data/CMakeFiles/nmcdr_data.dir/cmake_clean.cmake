file(REMOVE_RECURSE
  "CMakeFiles/nmcdr_data.dir/dataset.cc.o"
  "CMakeFiles/nmcdr_data.dir/dataset.cc.o.d"
  "CMakeFiles/nmcdr_data.dir/importer.cc.o"
  "CMakeFiles/nmcdr_data.dir/importer.cc.o.d"
  "CMakeFiles/nmcdr_data.dir/loader.cc.o"
  "CMakeFiles/nmcdr_data.dir/loader.cc.o.d"
  "CMakeFiles/nmcdr_data.dir/presets.cc.o"
  "CMakeFiles/nmcdr_data.dir/presets.cc.o.d"
  "CMakeFiles/nmcdr_data.dir/synthetic.cc.o"
  "CMakeFiles/nmcdr_data.dir/synthetic.cc.o.d"
  "libnmcdr_data.a"
  "libnmcdr_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmcdr_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
