file(REMOVE_RECURSE
  "CMakeFiles/nmcdr_components_test.dir/nmcdr_components_test.cc.o"
  "CMakeFiles/nmcdr_components_test.dir/nmcdr_components_test.cc.o.d"
  "nmcdr_components_test"
  "nmcdr_components_test.pdb"
  "nmcdr_components_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmcdr_components_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
