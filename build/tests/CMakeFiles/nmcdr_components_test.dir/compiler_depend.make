# Empty compiler generated dependencies file for nmcdr_components_test.
# This may be replaced when dependencies are built.
