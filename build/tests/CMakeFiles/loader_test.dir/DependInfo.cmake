
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/loader_test.cc" "tests/CMakeFiles/loader_test.dir/loader_test.cc.o" "gcc" "tests/CMakeFiles/loader_test.dir/loader_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/nmcdr_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nmcdr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/nmcdr_train.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/nmcdr_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/nmcdr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/nmcdr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/serving/CMakeFiles/nmcdr_serving.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/nmcdr_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/nmcdr_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/nmcdr_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nmcdr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
