file(REMOVE_RECURSE
  "CMakeFiles/importer_test.dir/importer_test.cc.o"
  "CMakeFiles/importer_test.dir/importer_test.cc.o.d"
  "importer_test"
  "importer_test.pdb"
  "importer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/importer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
