# Empty dependencies file for importer_test.
# This may be replaced when dependencies are built.
