file(REMOVE_RECURSE
  "CMakeFiles/nmcdr_model_test.dir/nmcdr_model_test.cc.o"
  "CMakeFiles/nmcdr_model_test.dir/nmcdr_model_test.cc.o.d"
  "nmcdr_model_test"
  "nmcdr_model_test.pdb"
  "nmcdr_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmcdr_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
