# Empty dependencies file for nmcdr_model_test.
# This may be replaced when dependencies are built.
