file(REMOVE_RECURSE
  "CMakeFiles/autograd_grad_check_test.dir/autograd_grad_check_test.cc.o"
  "CMakeFiles/autograd_grad_check_test.dir/autograd_grad_check_test.cc.o.d"
  "autograd_grad_check_test"
  "autograd_grad_check_test.pdb"
  "autograd_grad_check_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autograd_grad_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
