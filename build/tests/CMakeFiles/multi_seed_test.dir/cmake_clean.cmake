file(REMOVE_RECURSE
  "CMakeFiles/multi_seed_test.dir/multi_seed_test.cc.o"
  "CMakeFiles/multi_seed_test.dir/multi_seed_test.cc.o.d"
  "multi_seed_test"
  "multi_seed_test.pdb"
  "multi_seed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_seed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
