# Empty dependencies file for bench_table2_music_movie.
# This may be replaced when dependencies are built.
