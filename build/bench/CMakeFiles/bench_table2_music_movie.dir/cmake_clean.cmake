file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_music_movie.dir/bench_table2_music_movie.cpp.o"
  "CMakeFiles/bench_table2_music_movie.dir/bench_table2_music_movie.cpp.o.d"
  "bench_table2_music_movie"
  "bench_table2_music_movie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_music_movie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
