file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_phone_elec.dir/bench_table4_phone_elec.cpp.o"
  "CMakeFiles/bench_table4_phone_elec.dir/bench_table4_phone_elec.cpp.o.d"
  "bench_table4_phone_elec"
  "bench_table4_phone_elec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_phone_elec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
