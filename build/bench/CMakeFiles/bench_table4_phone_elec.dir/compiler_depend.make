# Empty compiler generated dependencies file for bench_table4_phone_elec.
# This may be replaced when dependencies are built.
