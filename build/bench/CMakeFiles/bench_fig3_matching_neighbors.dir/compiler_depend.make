# Empty compiler generated dependencies file for bench_fig3_matching_neighbors.
# This may be replaced when dependencies are built.
