file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_matching_neighbors.dir/bench_fig3_matching_neighbors.cpp.o"
  "CMakeFiles/bench_fig3_matching_neighbors.dir/bench_fig3_matching_neighbors.cpp.o.d"
  "bench_fig3_matching_neighbors"
  "bench_fig3_matching_neighbors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_matching_neighbors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
