file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_online_ab.dir/bench_table8_online_ab.cpp.o"
  "CMakeFiles/bench_table8_online_ab.dir/bench_table8_online_ab.cpp.o.d"
  "bench_table8_online_ab"
  "bench_table8_online_ab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_online_ab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
