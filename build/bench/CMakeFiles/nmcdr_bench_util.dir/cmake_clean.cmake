file(REMOVE_RECURSE
  "CMakeFiles/nmcdr_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/nmcdr_bench_util.dir/bench_util.cc.o.d"
  "libnmcdr_bench_util.a"
  "libnmcdr_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmcdr_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
