# Empty compiler generated dependencies file for nmcdr_bench_util.
# This may be replaced when dependencies are built.
