file(REMOVE_RECURSE
  "libnmcdr_bench_util.a"
)
