file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_density.dir/bench_table6_density.cpp.o"
  "CMakeFiles/bench_table6_density.dir/bench_table6_density.cpp.o.d"
  "bench_table6_density"
  "bench_table6_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
