# Empty dependencies file for bench_table5_loan_fund.
# This may be replaced when dependencies are built.
