file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_loan_fund.dir/bench_table5_loan_fund.cpp.o"
  "CMakeFiles/bench_table5_loan_fund.dir/bench_table5_loan_fund.cpp.o.d"
  "bench_table5_loan_fund"
  "bench_table5_loan_fund.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_loan_fund.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
