# Empty dependencies file for bench_fig4_head_threshold.
# This may be replaced when dependencies are built.
