# Empty dependencies file for bench_table3_cloth_sport.
# This may be replaced when dependencies are built.
