file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_cloth_sport.dir/bench_table3_cloth_sport.cpp.o"
  "CMakeFiles/bench_table3_cloth_sport.dir/bench_table3_cloth_sport.cpp.o.d"
  "bench_table3_cloth_sport"
  "bench_table3_cloth_sport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_cloth_sport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
