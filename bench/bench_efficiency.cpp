// Regenerates the §III.B.6 model-efficiency comparison with
// google-benchmark: per-batch training and scoring time plus parameter
// counts for PLE, MiNet, HeroGraph and NMCDR on the Phone-Elec scenario.
#include <benchmark/benchmark.h>

#include <memory>

#include "train/registry.h"
#include "bench/bench_util.h"

namespace nmcdr {
namespace {

/// Shared fixture state: scenario + per-model instance. Built once.
struct EfficiencyContext {
  std::unique_ptr<ExperimentData> data;
  CommonHyper hyper;
  TrainConfig train;

  static EfficiencyContext& Get() {
    static EfficiencyContext* ctx = [] {
      RegisterAllModels();
      // NMCDR_LINT_ALLOW(naked-new): intentional leaky singleton shared
      // across benchmark registrations.
      auto* c = new EfficiencyContext();
      const BenchScale scale = BenchScaleFromEnv();
      Rng rng(91);
      CdrScenario masked = ApplyOverlapRatio(
          GenerateScenario(PhoneElecSpec(scale)), /*ratio=*/0.5, &rng);
      c->data = std::make_unique<ExperimentData>(std::move(masked), 7);
      c->hyper.embed_dim = 16;
      c->train = bench::DefaultTrainConfig(scale);
      return c;
    }();
    return *ctx;
  }
};

LabeledBatch MakeBatch(const ExperimentData& data, DomainSide side, int size,
                       Rng* rng) {
  const DomainSplit& split = side == DomainSide::kZ ? data.split_z()
                                                    : data.split_zbar();
  const InteractionGraph& graph = side == DomainSide::kZ
                                      ? data.train_graph_z()
                                      : data.train_graph_zbar();
  NegativeSampler sampler(&graph);
  LabeledBatch batch;
  for (int i = 0; i < size / 2; ++i) {
    const Interaction pos =
        split.train[rng->NextUint64(split.train.size())];
    batch.users.push_back(pos.user);
    batch.items.push_back(pos.item);
    batch.labels.push_back(1.f);
    batch.users.push_back(pos.user);
    batch.items.push_back(sampler.SampleNegative(pos.user, rng));
    batch.labels.push_back(0.f);
  }
  return batch;
}

void BM_TrainBatch(benchmark::State& state, const std::string& model_name) {
  EfficiencyContext& ctx = EfficiencyContext::Get();
  std::unique_ptr<RecModel> model = ModelRegistry::Instance().Get(model_name)(
      ctx.data->View(), ctx.hyper, ctx.train.learning_rate);
  Rng rng(3);
  const LabeledBatch bz = MakeBatch(*ctx.data, DomainSide::kZ, 256, &rng);
  const LabeledBatch bzbar =
      MakeBatch(*ctx.data, DomainSide::kZbar, 256, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->TrainStep(bz, bzbar));
  }
  state.counters["params"] =
      static_cast<double>(model->ParameterCount());
}

void BM_ScoreBatch(benchmark::State& state, const std::string& model_name) {
  EfficiencyContext& ctx = EfficiencyContext::Get();
  std::unique_ptr<RecModel> model = ModelRegistry::Instance().Get(model_name)(
      ctx.data->View(), ctx.hyper, ctx.train.learning_rate);
  Rng rng(3);
  // One warm-up train step so cached representations exist & are realistic.
  model->TrainStep(MakeBatch(*ctx.data, DomainSide::kZ, 64, &rng),
                   MakeBatch(*ctx.data, DomainSide::kZbar, 64, &rng));
  const LabeledBatch batch = MakeBatch(*ctx.data, DomainSide::kZ, 512, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model->Score(DomainSide::kZ, batch.users, batch.items));
  }
}

}  // namespace
}  // namespace nmcdr

int main(int argc, char** argv) {
  using namespace nmcdr;
  for (const char* name : {"PLE", "MiNet", "HeroGraph", "NMCDR"}) {
    benchmark::RegisterBenchmark(
        (std::string("train_batch/") + name).c_str(),
        [name](benchmark::State& s) { BM_TrainBatch(s, name); });
    benchmark::RegisterBenchmark(
        (std::string("score_batch/") + name).c_str(),
        [name](benchmark::State& s) { BM_ScoreBatch(s, name); });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
