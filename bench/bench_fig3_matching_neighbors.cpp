// Regenerates Fig. 3: impact of the number of sampled matching neighbours
// (128, 256, 512, 1024) on the average NDCG@10 / HR@10 of each scenario,
// at K_u = 50%.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/nmcdr_model.h"
#include "util/logging.h"
#include "util/csv_writer.h"
#include "util/table_printer.h"

int main() {
  using namespace nmcdr;
  const BenchScale scale = BenchScaleFromEnv();
  const TrainConfig train = bench::DefaultTrainConfig(scale);
  const EvalConfig eval = bench::DefaultEvalConfig();
  const std::vector<int> neighbor_counts = {128, 256, 512, 1024};

  CsvWriter csv("fig3_matching_neighbors.csv");
  csv.WriteRow({"scenario", "matching_neighbors", "avg_ndcg", "avg_hr"});

  TablePrinter table;
  std::vector<std::string> header = {"Scenario"};
  for (int n : neighbor_counts) {
    header.push_back("NDCG n=" + std::to_string(n));
    header.push_back("HR n=" + std::to_string(n));
  }
  table.SetHeader(header);

  for (const SyntheticScenarioSpec& spec : AllScenarioSpecs(scale)) {
    Rng rng(91);
    CdrScenario masked =
        ApplyOverlapRatio(GenerateScenario(spec), /*ratio=*/0.5, &rng);
    ExperimentData data(std::move(masked), train.seed);
    std::vector<std::string> row = {spec.name};
    for (int n : neighbor_counts) {
      NmcdrConfig config;
      config.hidden_dim = 16;
      config.matching_neighbors = n;
      ModelFactory factory = [&config](const ScenarioView& view,
                                       const CommonHyper& hyper, float lr) {
        return std::make_unique<NmcdrModel>(view, config, hyper.seed, lr);
      };
      CommonHyper hyper;
      hyper.embed_dim = 16;
      const ExperimentResult r =
          RunExperiment(data, factory, hyper, train, eval);
      const double ndcg = 50.0 * (r.test.z.ndcg + r.test.zbar.ndcg);
      const double hr = 50.0 * (r.test.z.hr + r.test.zbar.hr);
      LOG_INFO << spec.name << " n=" << n << " avg ndcg/hr " << ndcg << "/"
               << hr;
      row.push_back(FormatFloat(ndcg, 2));
      row.push_back(FormatFloat(hr, 2));
      csv.WriteRow({spec.name, std::to_string(n), FormatFloat(ndcg, 4),
                    FormatFloat(hr, 4)});
    }
    table.AddRow(row);
  }
  std::printf("\nFig. 3 — impact of matching-neighbour count (avg of both "
              "domains, %%)\n%s",
              table.ToString().c_str());
  return 0;
}
