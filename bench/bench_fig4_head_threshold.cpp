// Regenerates Fig. 4: impact of the head/tail discrimination threshold
// K_head (3, 5, 7, 9, 11) on the average NDCG@10 / HR@10, at K_u = 50%.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/nmcdr_model.h"
#include "util/logging.h"
#include "util/csv_writer.h"
#include "util/table_printer.h"

int main() {
  using namespace nmcdr;
  const BenchScale scale = BenchScaleFromEnv();
  const TrainConfig train = bench::DefaultTrainConfig(scale);
  const EvalConfig eval = bench::DefaultEvalConfig();
  const std::vector<int> thresholds = {3, 5, 7, 9, 11};

  CsvWriter csv("fig4_head_threshold.csv");
  csv.WriteRow({"scenario", "k_head", "avg_ndcg", "avg_hr"});

  TablePrinter table;
  std::vector<std::string> header = {"Scenario"};
  for (int k : thresholds) {
    header.push_back("NDCG K=" + std::to_string(k));
    header.push_back("HR K=" + std::to_string(k));
  }
  table.SetHeader(header);

  for (const SyntheticScenarioSpec& spec : AllScenarioSpecs(scale)) {
    Rng rng(91);
    CdrScenario masked =
        ApplyOverlapRatio(GenerateScenario(spec), /*ratio=*/0.5, &rng);
    ExperimentData data(std::move(masked), train.seed);
    std::vector<std::string> row = {spec.name};
    for (int k : thresholds) {
      NmcdrConfig config;
      config.hidden_dim = 16;
      config.k_head = k;
      ModelFactory factory = [&config](const ScenarioView& view,
                                       const CommonHyper& hyper, float lr) {
        return std::make_unique<NmcdrModel>(view, config, hyper.seed, lr);
      };
      CommonHyper hyper;
      hyper.embed_dim = 16;
      const ExperimentResult r =
          RunExperiment(data, factory, hyper, train, eval);
      const double ndcg = 50.0 * (r.test.z.ndcg + r.test.zbar.ndcg);
      const double hr = 50.0 * (r.test.z.hr + r.test.zbar.hr);
      LOG_INFO << spec.name << " K_head=" << k << " avg ndcg/hr " << ndcg
               << "/" << hr;
      row.push_back(FormatFloat(ndcg, 2));
      row.push_back(FormatFloat(hr, 2));
      csv.WriteRow({spec.name, std::to_string(k), FormatFloat(ndcg, 4),
                    FormatFloat(hr, 4)});
    }
    table.AddRow(row);
  }
  std::printf("\nFig. 4 — impact of head/tail threshold K_head (avg of both "
              "domains, %%)\n%s",
              table.ToString().c_str());
  return 0;
}
