// Measures the online inference engine against the trainer scoring path:
// (1) per-pair scoring cost — full-autograd RecModel::Score vs the frozen
// ScoreEngine in exact and fast modes (30-item candidate pools, the A/B
// harness's retrieval size); (2) end-to-end top-K retrieval latency and
// throughput through the InferenceServer at batch sizes 1 / 8 / 64.
#include <cstdio>
#include <future>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "core/nmcdr_model.h"
#include "data/presets.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serving/inference_server.h"
#include "serving/model_snapshot.h"
#include "serving/score_engine.h"
#include "train/experiment.h"
#include "util/csv_writer.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace nmcdr {
namespace {

constexpr int kCandidatePool = 30;

struct PairCost {
  std::string path;
  double ns_per_pair = 0.0;
};

/// Mean per-pair cost of `score`, called with kCandidatePool-item batches
/// until `min_seconds` of work has accumulated.
template <typename ScoreFn>
double MeasurePairCost(const CdrScenario& scenario, ScoreFn score,
                       double min_seconds) {
  std::vector<int> candidates(kCandidatePool);
  for (int i = 0; i < kCandidatePool; ++i) {
    candidates[i] = i % scenario.z.num_items;
  }
  // Warm-up (fills model caches so the loop measures steady state).
  score(0, candidates);
  Stopwatch timer;
  int64_t pairs = 0;
  int user = 0;
  while (timer.ElapsedSeconds() < min_seconds) {
    score(user, candidates);
    pairs += kCandidatePool;
    user = (user + 1) % scenario.z.num_users;
  }
  return timer.ElapsedSeconds() * 1e9 / static_cast<double>(pairs);
}

struct BatchResult {
  int batch_size = 0;
  int64_t requests = 0;
  double mean_latency_ms = 0.0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  double throughput = 0.0;
};

/// Drives the server with waves of `batch_size` concurrent requests.
BatchResult MeasureServer(const ScoreEngine& engine,
                          const CdrScenario& scenario, int batch_size,
                          int waves) {
  InferenceServer::Options options;
  options.num_threads = 4;
  options.max_batch = batch_size;
  InferenceServer server(&engine, options);
  Stopwatch timer;
  for (int w = 0; w < waves; ++w) {
    std::vector<std::future<Recommendation>> futures;
    futures.reserve(batch_size);
    for (int i = 0; i < batch_size; ++i) {
      RecRequest request;
      request.target_domain = i % 2;
      request.user_domain = request.target_domain;
      request.user = (w * batch_size + i) %
                     (request.target_domain == 0 ? scenario.z.num_users
                                                 : scenario.zbar.num_users);
      request.k = 10;
      futures.push_back(server.Submit(request));
    }
    for (auto& future : futures) future.get();
  }
  const double seconds = timer.ElapsedSeconds();
  server.Stop();
  const ServerStats stats = server.stats();
  BatchResult result;
  result.batch_size = batch_size;
  result.requests = stats.requests_served;
  result.mean_latency_ms = stats.MeanLatencyMs();
  result.p50_latency_ms = stats.p50_latency_ms;
  result.p99_latency_ms = stats.p99_latency_ms;
  result.max_latency_ms = stats.max_latency_ms;
  result.throughput = static_cast<double>(stats.requests_served) / seconds;
  return result;
}

int Run() {
  const BenchScale scale = BenchScaleFromEnv();
  std::printf("bench_serving (scale: %s)\n", BenchScaleName(scale).c_str());

  ExperimentData data(GenerateScenario(LoanFundSpec(scale)), /*seed=*/17);
  NmcdrConfig config;
  config.hidden_dim = scale == BenchScale::kSmoke ? 8 : 16;
  NmcdrModel model(data.View(), config, /*seed=*/42, 1e-3f);
  TrainConfig train = bench::DefaultTrainConfig(scale);
  Trainer trainer(data.View(), train);
  trainer.Train(&model);

  ModelSnapshot snapshot;
  if (!ModelSnapshot::FreezePair(&model, data.scenario(), &snapshot)) {
    std::fprintf(stderr, "freeze failed\n");
    return 1;
  }
  ScoreEngine exact(&snapshot, {ScoreEngine::Mode::kExact, 256});
  ScoreEngine fast(&snapshot, {ScoreEngine::Mode::kFast, 256});

  const double min_seconds = scale == BenchScale::kSmoke ? 0.05 : 0.3;
  const CdrScenario& scenario = data.scenario();
  std::vector<PairCost> costs;
  costs.push_back(
      {"autograd Score()",
       MeasurePairCost(
           scenario,
           [&](int user, const std::vector<int>& items) {
             model.Score(DomainSide::kZ,
                         std::vector<int>(items.size(), user), items);
           },
           min_seconds)});
  costs.push_back(
      {"snapshot exact",
       MeasurePairCost(
           scenario,
           [&](int user, const std::vector<int>& items) {
             exact.ScoreCandidates(0, user, items);
           },
           min_seconds)});
  costs.push_back(
      {"snapshot fast",
       MeasurePairCost(
           scenario,
           [&](int user, const std::vector<int>& items) {
             fast.ScoreCandidates(0, user, items);
           },
           min_seconds)});

  TablePrinter pair_table;
  pair_table.SetHeader({"Scoring path", "ns/pair", "speedup"});
  for (const PairCost& cost : costs) {
    pair_table.AddRow({cost.path, FormatFloat(cost.ns_per_pair, 1),
                       FormatFloat(costs[0].ns_per_pair / cost.ns_per_pair, 2) +
                           "x"});
  }
  std::printf("\nPer-pair scoring cost (%d-item candidate pools)\n%s",
              kCandidatePool, pair_table.ToString().c_str());

  const int waves = scale == BenchScale::kSmoke ? 20 : 200;
  std::vector<BatchResult> batches;
  for (int batch_size : {1, 8, 64}) {
    batches.push_back(MeasureServer(fast, scenario, batch_size, waves));
  }
  TablePrinter batch_table;
  batch_table.SetHeader({"Batch", "Requests", "Mean lat (ms)", "p50 (ms)",
                         "p99 (ms)", "Max lat (ms)", "Req/s"});
  for (const BatchResult& b : batches) {
    batch_table.AddRow({std::to_string(b.batch_size),
                        std::to_string(b.requests),
                        FormatFloat(b.mean_latency_ms, 3),
                        FormatFloat(b.p50_latency_ms, 3),
                        FormatFloat(b.p99_latency_ms, 3),
                        FormatFloat(b.max_latency_ms, 3),
                        FormatFloat(b.throughput, 0)});
  }
  std::printf("\nInferenceServer top-10 retrieval (4 threads)\n%s",
              batch_table.ToString().c_str());

  CsvWriter csv("serving_perf.csv");
  if (csv.ok()) {
    csv.WriteRow({"section", "label", "ns_per_pair", "speedup",
                  "mean_latency_ms", "max_latency_ms", "throughput"});
    for (const PairCost& cost : costs) {
      csv.WriteRow({"pair_cost", cost.path, FormatFloat(cost.ns_per_pair, 1),
                    FormatFloat(costs[0].ns_per_pair / cost.ns_per_pair, 3),
                    "", "", ""});
    }
    for (const BatchResult& b : batches) {
      csv.WriteRow({"server", "batch=" + std::to_string(b.batch_size), "", "",
                    FormatFloat(b.mean_latency_ms, 4),
                    FormatFloat(b.max_latency_ms, 4),
                    FormatFloat(b.throughput, 1)});
    }
    std::printf("\nwrote serving_perf.csv\n");
  }

  // Machine-readable summary for the CI perf-gate (gates the *_p99_ms
  // gauges against bench/baselines/serving_baseline.json).
  obs::MetricsRegistry summary;
  for (const PairCost& cost : costs) {
    std::string key = cost.path == "autograd Score()" ? "autograd"
                      : cost.path == "snapshot exact" ? "exact"
                                                      : "fast";
    summary.GetGauge("serving.pair_cost." + key + ".ns_per_pair")
        .Set(cost.ns_per_pair);
  }
  for (const BatchResult& b : batches) {
    const std::string prefix =
        "serving.batch" + std::to_string(b.batch_size) + ".";
    summary.GetGauge(prefix + "p50_ms").Set(b.p50_latency_ms);
    summary.GetGauge(prefix + "p99_ms").Set(b.p99_latency_ms);
    summary.GetGauge(prefix + "mean_ms").Set(b.mean_latency_ms);
    summary.GetGauge(prefix + "qps").Set(b.throughput);
  }
  if (!obs::WriteJsonFile("BENCH_serving.json", summary)) return 1;
  std::printf("wrote BENCH_serving.json\n");
  return 0;
}

}  // namespace
}  // namespace nmcdr

int main() { return nmcdr::Run(); }
