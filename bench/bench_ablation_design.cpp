// Design-choice ablations beyond the paper's Table IX (DESIGN.md §4):
//   gate-fusion (Eqs. 10/16) vs plain sum,
//   head/tail-specific intra transforms (Eq. 8) vs one shared transform
//     (the trade-off §II.H motivates),
//   literal Eq. 18 (observed neighbours only) vs the intent reading
//     (observed + proposed candidates),
// on Cloth-Sport and Phone-Elec at K_u = 50%.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/nmcdr_model.h"
#include "util/csv_writer.h"
#include "util/logging.h"
#include "util/table_printer.h"

namespace nmcdr {
namespace {

struct Variant {
  std::string name;
  NmcdrConfig config;
};

std::vector<Variant> Variants() {
  NmcdrConfig base;
  base.hidden_dim = 16;
  std::vector<Variant> variants;
  variants.push_back({"full", base});
  {
    Variant v{"sum-fusion", base};
    v.config.gate_fusion = false;
    variants.push_back(v);
  }
  {
    Variant v{"shared-intra-W", base};
    v.config.shared_intra_transform = true;
    variants.push_back(v);
  }
  {
    Variant v{"Eq18-literal", base};
    v.config.complement_observed_only = true;
    variants.push_back(v);
  }
  return variants;
}

}  // namespace
}  // namespace nmcdr

int main() {
  using namespace nmcdr;
  const BenchScale scale = BenchScaleFromEnv();
  const TrainConfig train = bench::DefaultTrainConfig(scale);
  const EvalConfig eval = bench::DefaultEvalConfig();
  const std::vector<Variant> variants = Variants();

  CsvWriter csv("ablation_design.csv");
  csv.WriteRow({"scenario", "variant", "ndcg_z", "hr_z", "ndcg_zbar",
                "hr_zbar", "stability_bound_z"});
  TablePrinter table;
  table.SetHeader({"Scenario", "Variant", "NDCG Z", "HR Z", "NDCG Z̄",
                   "HR Z̄", "Eq.31 bound"});

  for (const SyntheticScenarioSpec& spec :
       {ClothSportSpec(scale), PhoneElecSpec(scale)}) {
    Rng rng(91);
    ExperimentData data(
        ApplyOverlapRatio(GenerateScenario(spec), 0.5, &rng), train.seed);
    for (const Variant& v : variants) {
      // Train/evaluate inline (rather than via RunExperiment) so the
      // Eq. 31 bound can be read from the TRAINED weights.
      NmcdrModel model(data.View(), v.config, /*seed=*/42,
                       train.learning_rate);
      Trainer trainer(data.View(), train, &data.full_graph_z(),
                      &data.full_graph_zbar());
      ExperimentResult r;
      r.training = trainer.Train(&model);
      r.test = EvaluateScenario(&model, data.full_graph_z(),
                                data.full_graph_zbar(), data.split_z(),
                                data.split_zbar(), EvalPhase::kTest, eval);
      const float bound = model.StabilityUpperBound(DomainSide::kZ);
      LOG_INFO << spec.name << " " << v.name << " Z ndcg "
               << r.test.z.ndcg * 100;
      table.AddRow({spec.name, v.name, FormatFloat(r.test.z.ndcg * 100, 2),
                    FormatFloat(r.test.z.hr * 100, 2),
                    FormatFloat(r.test.zbar.ndcg * 100, 2),
                    FormatFloat(r.test.zbar.hr * 100, 2),
                    FormatFloat(bound, 3)});
      csv.WriteRow({spec.name, v.name, FormatFloat(r.test.z.ndcg * 100, 4),
                    FormatFloat(r.test.z.hr * 100, 4),
                    FormatFloat(r.test.zbar.ndcg * 100, 4),
                    FormatFloat(r.test.zbar.hr * 100, 4),
                    FormatFloat(bound, 4)});
    }
    table.AddSeparator();
  }
  std::printf("\nDesign-choice ablations at K_u=50%% (%%)\n%s",
              table.ToString().c_str());
  return 0;
}
