// Regenerates Table VI: Cloth-Sport and Loan-Fund under data density
// D_s in {10, 50, 70}% (overlap fixed at the scenario's natural links).
// Training interactions are uniformly subsampled per user (min 3 kept so
// leave-one-out remains feasible) — §III.B.5.
#include <cstdio>

#include "train/registry.h"
#include "bench/bench_util.h"
#include "util/logging.h"
#include "util/csv_writer.h"
#include "util/table_printer.h"

namespace nmcdr {
namespace {

struct DensityCell {
  std::string model;
  double density = 0.0;
  double ndcg_z = 0.0, hr_z = 0.0, ndcg_zbar = 0.0, hr_zbar = 0.0;
};

void RunScenario(const SyntheticScenarioSpec& spec,
                 const std::vector<std::string>& models,
                 const TrainConfig& train, const EvalConfig& eval,
                 CsvWriter* csv) {
  RegisterAllModels();
  CommonHyper hyper;
  hyper.embed_dim = 16;
  const std::vector<double> densities = {0.1, 0.5, 0.7};

  CdrScenario base = GenerateScenario(spec);
  std::printf("== Table VI (%s) ==\n  %s\n  %s\n", spec.name.c_str(),
              DomainStatsString(base.z).c_str(),
              DomainStatsString(base.zbar).c_str());

  std::vector<DensityCell> cells;
  for (double ds : densities) {
    Rng rng(train.seed + static_cast<uint64_t>(ds * 100));
    CdrScenario sparse = ApplyDensity(base, ds, /*min_per_user=*/3, &rng);
    ExperimentData data(std::move(sparse), train.seed);
    for (const std::string& name : models) {
      const ExperimentResult result = RunExperiment(
          data, ModelRegistry::Instance().Get(name), hyper, train, eval);
      DensityCell cell;
      cell.model = name;
      cell.density = ds;
      cell.ndcg_z = result.test.z.ndcg * 100;
      cell.hr_z = result.test.z.hr * 100;
      cell.ndcg_zbar = result.test.zbar.ndcg * 100;
      cell.hr_zbar = result.test.zbar.hr * 100;
      cells.push_back(cell);
      LOG_INFO << spec.name << " Ds=" << ds * 100 << "% " << name
               << " Z ndcg/hr " << cell.ndcg_z << "/" << cell.hr_z;
      if (csv != nullptr) {
        csv->WriteRow({spec.name, name, FormatFloat(ds, 2),
                       FormatFloat(cell.ndcg_z, 4), FormatFloat(cell.hr_z, 4),
                       FormatFloat(cell.ndcg_zbar, 4),
                       FormatFloat(cell.hr_zbar, 4)});
      }
    }
  }

  for (int domain_z = 1; domain_z >= 0; --domain_z) {
    TablePrinter table;
    std::vector<std::string> header = {"Method"};
    for (double ds : densities) {
      header.push_back("NDCG Ds=" + FormatFloat(ds * 100, 0) + "%");
      header.push_back("HR Ds=" + FormatFloat(ds * 100, 0) + "%");
    }
    table.SetHeader(header);
    for (const std::string& name : models) {
      std::vector<std::string> row = {name};
      for (double ds : densities) {
        for (const DensityCell& c : cells) {
          if (c.model == name && c.density == ds) {
            row.push_back(
                FormatFloat(domain_z != 0 ? c.ndcg_z : c.ndcg_zbar, 2));
            row.push_back(FormatFloat(domain_z != 0 ? c.hr_z : c.hr_zbar, 2));
          }
        }
      }
      table.AddRow(row);
    }
    std::printf("\nTable VI — %s-domain recommendation (%%)\n%s",
                (domain_z != 0 ? spec.z.name : spec.zbar.name).c_str(),
                table.ToString().c_str());
  }
}

}  // namespace
}  // namespace nmcdr

int main() {
  using namespace nmcdr;
  const BenchScale scale = BenchScaleFromEnv();
  const TrainConfig train = bench::DefaultTrainConfig(scale);
  const EvalConfig eval = bench::DefaultEvalConfig();
  const std::vector<std::string> models = bench::BenchModelList();
  CsvWriter csv("table6_density.csv");
  csv.WriteRow({"scenario", "model", "density", "ndcg_z", "hr_z", "ndcg_zbar",
                "hr_zbar"});
  RunScenario(ClothSportSpec(scale), models, train, eval, &csv);
  RunScenario(LoanFundSpec(scale), models, train, eval, &csv);
  return 0;
}
