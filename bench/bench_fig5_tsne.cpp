// Regenerates Fig. 5: t-SNE visualization of head (label 1) and tail
// (label 0) user embeddings on Cloth-Sport at K_u = 50%, after (a) the
// heterogeneous graph encoder, (b) the intra-to-inter node matching
// module, and (c) the intra node complementing module. Writes the 2-D
// coordinates to CSV and prints the head/tail separation score per stage —
// the paper's qualitative claim is that the score falls stage by stage
// (tail users align with head users).
#include <cstdio>

#include "analysis/embedding_stats.h"
#include "analysis/tsne.h"
#include "bench/bench_util.h"
#include "core/nmcdr_model.h"
#include "util/csv_writer.h"
#include "util/table_printer.h"

int main() {
  using namespace nmcdr;
  const BenchScale scale = BenchScaleFromEnv();
  const TrainConfig train = bench::DefaultTrainConfig(scale);

  Rng rng(91);
  CdrScenario masked = ApplyOverlapRatio(
      GenerateScenario(ClothSportSpec(scale)), /*ratio=*/0.5, &rng);
  ExperimentData data(std::move(masked), train.seed);

  NmcdrConfig config;
  config.hidden_dim = 16;
  NmcdrModel model(data.View(), config, /*seed=*/42, train.learning_rate);
  Trainer trainer(data.View(), train, &data.full_graph_z(),
                  &data.full_graph_zbar());
  trainer.Train(&model);

  CsvWriter csv("fig5_tsne.csv");
  csv.WriteRow({"domain", "stage", "user", "is_head", "x", "y"});

  TablePrinter table;
  table.SetHeader({"Domain", "Stage", "separation", "centroid dist",
                   "head spread", "tail spread"});

  const DomainSide sides[2] = {DomainSide::kZ, DomainSide::kZbar};
  for (int s = 0; s < 2; ++s) {
    const InteractionGraph& graph =
        s == 0 ? data.train_graph_z() : data.train_graph_zbar();
    std::vector<bool> is_head(graph.num_users());
    for (int u = 0; u < graph.num_users(); ++u) {
      is_head[u] = graph.UserDegree(u) > config.k_head;
    }
    const NmcdrModel::StageReps reps = model.ComputeStageReps(sides[s]);
    const std::string domain_name =
        s == 0 ? data.scenario().z.name : data.scenario().zbar.name;
    const struct {
      const char* name;
      const Matrix* reps;
    } stages[] = {{"graph-encoder", &reps.g1},
                  {"intra-to-inter", &reps.g3},
                  {"complementing", &reps.g4}};
    for (const auto& stage : stages) {
      const HeadTailSeparation sep =
          ComputeHeadTailSeparation(*stage.reps, is_head);
      table.AddRow({domain_name, stage.name,
                    FormatFloat(sep.separation_score, 4),
                    FormatFloat(sep.centroid_distance, 4),
                    FormatFloat(sep.head_spread, 4),
                    FormatFloat(sep.tail_spread, 4)});
      // t-SNE on a capped subset for O(n^2) tractability.
      const int cap = 600;
      const int n = std::min(stage.reps->rows(), cap);
      Matrix subset(n, stage.reps->cols());
      for (int i = 0; i < n; ++i) {
        for (int c = 0; c < stage.reps->cols(); ++c) {
          subset.At(i, c) = stage.reps->At(i, c);
        }
      }
      TsneConfig tsne_config;
      tsne_config.iterations = scale == BenchScale::kSmoke ? 120 : 300;
      const Matrix embedded = Tsne(subset, tsne_config);
      for (int i = 0; i < n; ++i) {
        csv.WriteRow({domain_name, stage.name, std::to_string(i),
                      is_head[i] ? "1" : "0",
                      FormatFloat(embedded.At(i, 0), 4),
                      FormatFloat(embedded.At(i, 1), 4)});
      }
    }
  }
  std::printf("\nFig. 5 — head/tail embedding separation per NMCDR stage\n"
              "(paper claim: separation falls from graph-encoder to "
              "complementing)\n%s\nt-SNE coordinates written to "
              "fig5_tsne.csv\n",
              table.ToString().c_str());
  return 0;
}
