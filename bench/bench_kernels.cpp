// Dense-kernel micro-benchmark for the execution backends
// (src/tensor/backend.h): serial GFLOP/s, vector-backend GFLOP/s for the
// register-blocked GEMM family, and parallel thread-scaling at 1/2/4
// threads for the hot KernelBackend entry points on training-shaped
// matrices (batch x hidden blocks as the trainer sees them). Before
// timing, every kernel's vector and parallel outputs are checked
// bit-equal to the serial reference, so the numbers can never come from
// a divergent code path.
//
// Speedup columns report thread scaling of the parallel backend itself
// (parallel@1 / parallel@t seconds), so they isolate the tile-sharding
// win from the vectorization win that `vector_gflops` already captures.
// With >= 4 free cores, a kernel whose 4-thread scaling falls below the
// floor (0.9 full, 0.7 smoke — the looser smoke floor absorbs the short
// timing budget's noise) fails the run: that is the regression gate that
// caught ScatterAddRows scattering slower in parallel than inline.
//
// Writes BENCH_kernels.json next to the binary so the perf trajectory has a
// machine-readable baseline; the file records hardware_concurrency because
// speedups are only meaningful with as many cores as pool threads.
//
// `--smoke` shrinks the timing budget so the binary doubles as a CTest.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "tensor/backend.h"
#include "tensor/matrix.h"
#include "tensor/rng.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace nmcdr {
namespace {

/// Thread counts the parallel backend is measured at.
const int kThreadCounts[] = {1, 2, 4};

/// One benchmarked kernel: `run` executes it once under a backend and
/// returns the result for the bit-equality check. `vectorized` marks the
/// GEMM-family kernels the vector backend reimplements (the rest delegate
/// to serial, so timing them under it would just measure serial twice).
struct KernelCase {
  std::string name;
  std::string shape;
  double flops = 0.0;  // nominal flops per run, for the GFLOP/s column
  bool vectorized = false;
  std::function<Matrix(const KernelBackend&)> run;
};

struct KernelResult {
  std::string name;
  std::string shape;
  double serial_gflops = 0.0;
  double vector_gflops = 0.0;   // 0 when the kernel is not vectorized
  std::vector<double> speedup;  // parallel@1 / parallel@t, t in kThreadCounts
};

Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < m.size(); ++i) m.data()[i] = rng->Uniform(-1.f, 1.f);
  return m;
}

/// Seconds per run of `fn`, timed until `min_seconds` of work accumulated.
double SecondsPerRun(const std::function<Matrix(const KernelBackend&)>& fn,
                     const KernelBackend& backend, double min_seconds) {
  fn(backend);  // warm-up
  Stopwatch timer;
  int64_t runs = 0;
  do {
    fn(backend);
    ++runs;
  } while (timer.ElapsedSeconds() < min_seconds);
  return timer.ElapsedSeconds() / static_cast<double>(runs);
}

bool BitEqual(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         (a.size() == 0 || std::memcmp(a.data(), b.data(),
                                       sizeof(float) * a.size()) == 0);
}

/// Measures one kernel under the serial, vector, and parallel backends;
/// dies loudly if any non-serial result diverges from the reference.
KernelResult MeasureKernel(const KernelCase& kernel, double min_seconds,
                           bool* equivalence_ok) {
  const SerialBackend& serial = SerialKernelBackend();
  KernelResult result;
  result.name = kernel.name;
  result.shape = kernel.shape;
  const Matrix want = kernel.run(serial);
  const double serial_seconds =
      SecondsPerRun(kernel.run, serial, min_seconds);
  result.serial_gflops = kernel.flops / serial_seconds * 1e-9;

  const VectorBackend& vector = VectorKernelBackend();
  if (!BitEqual(want, kernel.run(vector))) {
    std::fprintf(stderr, "FAIL: %s diverges under the vector backend\n",
                 kernel.name.c_str());
    *equivalence_ok = false;
  }
  if (kernel.vectorized) {
    const double vector_seconds =
        SecondsPerRun(kernel.run, vector, min_seconds);
    result.vector_gflops = kernel.flops / vector_seconds * 1e-9;
  }

  // Thread scaling: time the parallel backend at every count and report
  // each relative to its own 1-thread time, so the column measures the
  // tile sharding alone (its kernels already run the vector cores).
  std::vector<double> parallel_seconds;
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    const ParallelBackend parallel(&pool);
    if (!BitEqual(want, kernel.run(parallel))) {
      std::fprintf(stderr, "FAIL: %s diverges at %d threads\n",
                   kernel.name.c_str(), threads);
      *equivalence_ok = false;
    }
    parallel_seconds.push_back(
        SecondsPerRun(kernel.run, parallel, min_seconds));
  }
  for (double seconds : parallel_seconds) {
    result.speedup.push_back(parallel_seconds.front() / seconds);
  }
  return result;
}

/// The benchmarked kernel set on training-shaped operands: a forward/
/// backward pass over a 512-example batch with hidden width 64 against a
/// 4096-row embedding table. Inputs live in `*store` so the lambdas can
/// capture references that outlive this function.
std::vector<KernelCase> BuildKernelCases(std::vector<Matrix>* store,
                                         std::vector<int>* ids) {
  Rng rng(29);
  const int batch = 512, hidden = 64, table_rows = 4096;
  store->clear();
  store->push_back(RandomMatrix(batch, hidden, &rng));       // 0: activations
  store->push_back(RandomMatrix(hidden, hidden, &rng));      // 1: weights
  store->push_back(RandomMatrix(batch, hidden, &rng));       // 2: second act
  store->push_back(RandomMatrix(table_rows, hidden, &rng));  // 3: table
  store->push_back(RandomMatrix(1, hidden, &rng));           // 4: bias row
  const Matrix& act = (*store)[0];
  const Matrix& w = (*store)[1];
  const Matrix& act2 = (*store)[2];
  const Matrix& table = (*store)[3];
  const Matrix& bias = (*store)[4];
  ids->resize(batch);
  for (int& id : *ids) id = static_cast<int>(rng.NextUint64(table_rows));
  const std::vector<int>& id_ref = *ids;

  const double gemm_flops = 2.0 * batch * hidden * hidden;
  const double ew_flops = 1.0 * batch * hidden;
  const std::string bxh =
      std::to_string(batch) + "x" + std::to_string(hidden);
  const std::string gemm_shape = bxh + " * " + std::to_string(hidden) + "x" +
                                 std::to_string(hidden);

  std::vector<KernelCase> cases;
  cases.push_back({"MatMul", gemm_shape, gemm_flops, true,
                   [&act, &w](const KernelBackend& b) {
                     Matrix out(act.rows(), w.cols());
                     b.MatMulAccumInto(act, w, &out);
                     return out;
                   }});
  cases.push_back({"MatMulTransA", bxh + "^T * " + bxh, gemm_flops, true,
                   [&act, &act2](const KernelBackend& b) {
                     return b.MatMulTransA(act, act2);
                   }});
  cases.push_back({"MatMulTransB", gemm_shape + "^T", gemm_flops, true,
                   [&act, &w](const KernelBackend& b) {
                     return b.MatMulTransB(act, w);
                   }});
  // The graph-program replay epilogue: GEMM + bias + relu in one pass, the
  // shape every fused forward layer takes. Exercises the vector epilogue's
  // bit-exactness against serial on every run.
  cases.push_back({"FusedMatMulBiasAct", gemm_shape + " +b relu",
                   gemm_flops + 2.0 * batch * hidden, true,
                   [&act, &w, &bias](const KernelBackend& b) {
                     Matrix out(act.rows(), w.cols());
                     b.FusedMatMulBiasActInto(act, w, &bias, FusedAct::kRelu,
                                              &out);
                     return out;
                   }});
  cases.push_back({"Add", bxh, ew_flops, false,
                   [&act, &act2](const KernelBackend& b) {
                     return b.Add(act, act2);
                   }});
  cases.push_back({"Sigmoid", bxh, 4.0 * batch * hidden, false,
                   [&act](const KernelBackend& b) { return b.Sigmoid(act); }});
  cases.push_back({"SoftmaxRows", bxh, 5.0 * batch * hidden, false,
                   [&act](const KernelBackend& b) {
                     return b.SoftmaxRows(act);
                   }});
  cases.push_back({"ColSum", bxh, ew_flops, false,
                   [&act](const KernelBackend& b) { return b.ColSum(act); }});
  cases.push_back({"GatherRows",
                   std::to_string(table.rows()) + "x" +
                       std::to_string(hidden) + " [" +
                       std::to_string(batch) + " ids]",
                   ew_flops, false,
                   [&table, &id_ref](const KernelBackend& b) {
                     return b.GatherRows(table, id_ref);
                   }});
  cases.push_back({"ScatterAddRows",
                   bxh + " -> " + std::to_string(table.rows()) + " rows",
                   ew_flops, false,
                   [&act, &table, &id_ref](const KernelBackend& b) {
                     Matrix out(table.rows(), table.cols());
                     b.ScatterAddRows(act, id_ref, &out);
                     return out;
                   }});
  return cases;
}

void WriteJson(const std::string& path,
               const std::vector<KernelResult>& results, bool smoke) {
  std::ofstream out(path);
  if (!out.good()) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  out << "{\n";
  out << "  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n";
  out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  out << "  \"thread_counts\": [1, 2, 4],\n";
  out << "  \"kernels\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const KernelResult& r = results[i];
    out << "    {\"name\": \"" << r.name << "\", \"shape\": \"" << r.shape
        << "\", \"serial_gflops\": " << FormatFloat(r.serial_gflops, 4);
    if (r.vector_gflops > 0.0) {
      out << ", \"vector_gflops\": " << FormatFloat(r.vector_gflops, 4);
    }
    out << ", \"speedup\": {";
    for (size_t t = 0; t < r.speedup.size(); ++t) {
      out << "\"" << kThreadCounts[t]
          << "\": " << FormatFloat(r.speedup[t], 3)
          << (t + 1 < r.speedup.size() ? ", " : "");
    }
    out << "}}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

int Run(bool smoke) {
  std::printf("bench_kernels (%s, hardware_concurrency=%u)\n",
              smoke ? "smoke" : "full", std::thread::hardware_concurrency());
  const double min_seconds = smoke ? 0.01 : 0.25;

  std::vector<Matrix> store;
  std::vector<int> ids;
  const std::vector<KernelCase> cases = BuildKernelCases(&store, &ids);

  bool equivalence_ok = true;
  std::vector<KernelResult> results;
  for (const KernelCase& kernel : cases) {
    results.push_back(MeasureKernel(kernel, min_seconds, &equivalence_ok));
  }

  TablePrinter table;
  table.SetHeader({"Kernel", "Shape", "Serial GFLOP/s", "Vector GFLOP/s",
                   "x1", "x2", "x4"});
  for (const KernelResult& r : results) {
    table.AddRow({r.name, r.shape, FormatFloat(r.serial_gflops, 3),
                  r.vector_gflops > 0.0 ? FormatFloat(r.vector_gflops, 3)
                                        : std::string("-"),
                  FormatFloat(r.speedup[0], 2) + "x",
                  FormatFloat(r.speedup[1], 2) + "x",
                  FormatFloat(r.speedup[2], 2) + "x"});
  }
  std::printf("%s", table.ToString().c_str());

  WriteJson("BENCH_kernels.json", results, smoke);

  // With enough free cores for the 4-thread pool, thread scaling below the
  // floor is a real regression (a kernel whose parallel path is slower
  // than its own 1-thread run), not noise — fail the run so CI gates it.
  bool scaling_ok = true;
  if (std::thread::hardware_concurrency() >= 4) {
    const double floor = smoke ? 0.7 : 0.9;
    for (const KernelResult& r : results) {
      const double x4 = r.speedup.back();
      if (x4 < floor) {
        std::fprintf(stderr,
                     "FAIL: %s 4-thread scaling %.2fx below the %.1fx floor\n",
                     r.name.c_str(), x4, floor);
        scaling_ok = false;
      }
    }
  }
  // The speedup columns depend on free cores, but a vector or parallel
  // result that differs from serial is always a hard failure.
  return equivalence_ok && scaling_ok ? 0 : 1;
}

}  // namespace
}  // namespace nmcdr

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return nmcdr::Run(smoke);
}
