// Dense-kernel micro-benchmark for the execution backends
// (src/tensor/backend.h): serial GFLOP/s plus serial-vs-parallel speedup at
// 1/2/4 threads for the hot KernelBackend entry points on training-shaped
// matrices (batch x hidden blocks as the trainer sees them). Before timing,
// every kernel's parallel output is checked bit-equal to the serial one, so
// the numbers can never come from a divergent code path.
//
// Writes BENCH_kernels.json next to the binary so the perf trajectory has a
// machine-readable baseline; the file records hardware_concurrency because
// speedups are only meaningful with as many cores as pool threads.
//
// `--smoke` shrinks the timing budget so the binary doubles as a CTest.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "tensor/backend.h"
#include "tensor/matrix.h"
#include "tensor/rng.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace nmcdr {
namespace {

/// Thread counts the parallel backend is measured at.
const int kThreadCounts[] = {1, 2, 4};

/// One benchmarked kernel: `run` executes it once under a backend and
/// returns the result for the bit-equality check.
struct KernelCase {
  std::string name;
  std::string shape;
  double flops = 0.0;  // nominal flops per run, for the GFLOP/s column
  std::function<Matrix(const KernelBackend&)> run;
};

struct KernelResult {
  std::string name;
  std::string shape;
  double serial_gflops = 0.0;
  std::vector<double> speedup;  // parallel to kThreadCounts, serial/parallel
};

Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < m.size(); ++i) m.data()[i] = rng->Uniform(-1.f, 1.f);
  return m;
}

/// Seconds per run of `fn`, timed until `min_seconds` of work accumulated.
double SecondsPerRun(const std::function<Matrix(const KernelBackend&)>& fn,
                     const KernelBackend& backend, double min_seconds) {
  fn(backend);  // warm-up
  Stopwatch timer;
  int64_t runs = 0;
  do {
    fn(backend);
    ++runs;
  } while (timer.ElapsedSeconds() < min_seconds);
  return timer.ElapsedSeconds() / static_cast<double>(runs);
}

bool BitEqual(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         (a.size() == 0 || std::memcmp(a.data(), b.data(),
                                       sizeof(float) * a.size()) == 0);
}

/// Measures one kernel under the serial backend and the parallel backend at
/// every thread count; dies loudly if any parallel result diverges.
KernelResult MeasureKernel(const KernelCase& kernel, double min_seconds,
                           bool* equivalence_ok) {
  const SerialBackend& serial = SerialKernelBackend();
  KernelResult result;
  result.name = kernel.name;
  result.shape = kernel.shape;
  const Matrix want = kernel.run(serial);
  const double serial_seconds =
      SecondsPerRun(kernel.run, serial, min_seconds);
  result.serial_gflops = kernel.flops / serial_seconds * 1e-9;
  for (int threads : kThreadCounts) {
    ThreadPool pool(threads);
    const ParallelBackend parallel(&pool);
    if (!BitEqual(want, kernel.run(parallel))) {
      std::fprintf(stderr, "FAIL: %s diverges at %d threads\n",
                   kernel.name.c_str(), threads);
      *equivalence_ok = false;
    }
    const double parallel_seconds =
        SecondsPerRun(kernel.run, parallel, min_seconds);
    result.speedup.push_back(serial_seconds / parallel_seconds);
  }
  return result;
}

/// The benchmarked kernel set on training-shaped operands: a forward/
/// backward pass over a 512-example batch with hidden width 64 against a
/// 4096-row embedding table. Inputs live in `*store` so the lambdas can
/// capture references that outlive this function.
std::vector<KernelCase> BuildKernelCases(std::vector<Matrix>* store,
                                         std::vector<int>* ids) {
  Rng rng(29);
  const int batch = 512, hidden = 64, table_rows = 4096;
  store->clear();
  store->push_back(RandomMatrix(batch, hidden, &rng));       // 0: activations
  store->push_back(RandomMatrix(hidden, hidden, &rng));      // 1: weights
  store->push_back(RandomMatrix(batch, hidden, &rng));       // 2: second act
  store->push_back(RandomMatrix(table_rows, hidden, &rng));  // 3: table
  const Matrix& act = (*store)[0];
  const Matrix& w = (*store)[1];
  const Matrix& act2 = (*store)[2];
  const Matrix& table = (*store)[3];
  ids->resize(batch);
  for (int& id : *ids) id = static_cast<int>(rng.NextUint64(table_rows));
  const std::vector<int>& id_ref = *ids;

  const double gemm_flops = 2.0 * batch * hidden * hidden;
  const double ew_flops = 1.0 * batch * hidden;
  const std::string bxh =
      std::to_string(batch) + "x" + std::to_string(hidden);
  const std::string gemm_shape = bxh + " * " + std::to_string(hidden) + "x" +
                                 std::to_string(hidden);

  std::vector<KernelCase> cases;
  cases.push_back({"MatMul", gemm_shape, gemm_flops,
                   [&act, &w](const KernelBackend& b) {
                     Matrix out(act.rows(), w.cols());
                     b.MatMulAccumInto(act, w, &out);
                     return out;
                   }});
  cases.push_back({"MatMulTransA", bxh + "^T * " + bxh, gemm_flops,
                   [&act, &act2](const KernelBackend& b) {
                     return b.MatMulTransA(act, act2);
                   }});
  cases.push_back({"MatMulTransB", gemm_shape + "^T", gemm_flops,
                   [&act, &w](const KernelBackend& b) {
                     return b.MatMulTransB(act, w);
                   }});
  cases.push_back({"Add", bxh, ew_flops,
                   [&act, &act2](const KernelBackend& b) {
                     return b.Add(act, act2);
                   }});
  cases.push_back({"Sigmoid", bxh, 4.0 * batch * hidden,
                   [&act](const KernelBackend& b) { return b.Sigmoid(act); }});
  cases.push_back({"SoftmaxRows", bxh, 5.0 * batch * hidden,
                   [&act](const KernelBackend& b) {
                     return b.SoftmaxRows(act);
                   }});
  cases.push_back({"ColSum", bxh, ew_flops,
                   [&act](const KernelBackend& b) { return b.ColSum(act); }});
  cases.push_back({"GatherRows",
                   std::to_string(table.rows()) + "x" +
                       std::to_string(hidden) + " [" +
                       std::to_string(batch) + " ids]",
                   ew_flops,
                   [&table, &id_ref](const KernelBackend& b) {
                     return b.GatherRows(table, id_ref);
                   }});
  cases.push_back({"ScatterAddRows",
                   bxh + " -> " + std::to_string(table.rows()) + " rows",
                   ew_flops,
                   [&act, &table, &id_ref](const KernelBackend& b) {
                     Matrix out(table.rows(), table.cols());
                     b.ScatterAddRows(act, id_ref, &out);
                     return out;
                   }});
  return cases;
}

void WriteJson(const std::string& path,
               const std::vector<KernelResult>& results, bool smoke) {
  std::ofstream out(path);
  if (!out.good()) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  out << "{\n";
  out << "  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n";
  out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  out << "  \"thread_counts\": [1, 2, 4],\n";
  out << "  \"kernels\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const KernelResult& r = results[i];
    out << "    {\"name\": \"" << r.name << "\", \"shape\": \"" << r.shape
        << "\", \"serial_gflops\": " << FormatFloat(r.serial_gflops, 4)
        << ", \"speedup\": {";
    for (size_t t = 0; t < r.speedup.size(); ++t) {
      out << "\"" << kThreadCounts[t]
          << "\": " << FormatFloat(r.speedup[t], 3)
          << (t + 1 < r.speedup.size() ? ", " : "");
    }
    out << "}}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

int Run(bool smoke) {
  std::printf("bench_kernels (%s, hardware_concurrency=%u)\n",
              smoke ? "smoke" : "full", std::thread::hardware_concurrency());
  const double min_seconds = smoke ? 0.01 : 0.25;

  std::vector<Matrix> store;
  std::vector<int> ids;
  const std::vector<KernelCase> cases = BuildKernelCases(&store, &ids);

  bool equivalence_ok = true;
  std::vector<KernelResult> results;
  for (const KernelCase& kernel : cases) {
    results.push_back(MeasureKernel(kernel, min_seconds, &equivalence_ok));
  }

  TablePrinter table;
  table.SetHeader({"Kernel", "Shape", "Serial GFLOP/s", "x1", "x2", "x4"});
  for (const KernelResult& r : results) {
    table.AddRow({r.name, r.shape, FormatFloat(r.serial_gflops, 3),
                  FormatFloat(r.speedup[0], 2) + "x",
                  FormatFloat(r.speedup[1], 2) + "x",
                  FormatFloat(r.speedup[2], 2) + "x"});
  }
  std::printf("%s", table.ToString().c_str());

  WriteJson("BENCH_kernels.json", results, smoke);
  // The speedup columns are advisory (they depend on free cores), but a
  // parallel result that differs from serial is a hard failure.
  return equivalence_ok ? 0 : 1;
}

}  // namespace
}  // namespace nmcdr

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return nmcdr::Run(smoke);
}
