// Quantized-serving accuracy and throughput report: measures the int8
// per-row affine scoring path (ScoreEngine::Mode::kQuantized,
// serving/quantized_snapshot.h) against the bit-exact fp engine on two
// fixtures — a trained-and-frozen LoanFund snapshot (real table
// statistics) and a synthetic serving-scale catalog — and hard-fails when
// ranking agreement drops below the release floor.
//
// Metrics, per fixture and aggregated for the CI gate:
//   overlap@K   mean |exact-topK ∩ quant-topK| / K over sampled users
//   HR@10 delta 1 - fraction of users whose exact top-1 survives in the
//               quantized top-10 (the exact ranking is the ground truth,
//               so the fp engine's own HR@10 is 1 by construction)
//   NDCG@10 delta  1 - mean DCG position credit of the exact top-1 inside
//               the quantized top-10 (1/log2(rank+2), 0 when evicted)
// plus quantized retrieval throughput relative to the exact and fast fp
// modes on the synthetic fixture.
//
// Writes BENCH_quant.json (the "quant" block is what
// scripts/check_bench_regression.py gates: absolute overlap floors plus
// baseline trajectory). `--smoke` shrinks both fixtures so the binary
// doubles as a CTest; the in-binary floor loosens with it because tiny
// catalogs concentrate near-ties inside the top-K.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/nmcdr_model.h"
#include "data/presets.h"
#include "serving/model_snapshot.h"
#include "serving/score_engine.h"
#include "train/experiment.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace nmcdr {
namespace {

/// Ranking-agreement metrics of one engine pair on one fixture.
struct AgreementResult {
  std::string name;
  int users_measured = 0;
  double overlap_at_10 = 0.0;
  double overlap_at_50 = 0.0;
  double hr10_delta = 0.0;
  double ndcg10_delta = 0.0;
};

/// Position of `item` in `items`, or -1.
int RankOf(const std::vector<int>& items, int item) {
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i] == item) return static_cast<int>(i);
  }
  return -1;
}

double OverlapAtK(const std::vector<int>& exact_items,
                  const std::vector<int>& quant_items, int k) {
  // A catalog smaller than k returns short lists; overlap is measured
  // over the items actually rankable, not the nominal k.
  const int n = k < static_cast<int>(exact_items.size())
                    ? k
                    : static_cast<int>(exact_items.size());
  if (n == 0) return 1.0;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (RankOf(quant_items, exact_items[i]) >= 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

/// Runs top-50 retrieval for `users_per_domain` users of every domain
/// through both engines and accumulates the agreement metrics. The exact
/// engine's ranking is the ground truth; its top-1 is the "relevant" item
/// of the HR/NDCG deltas.
AgreementResult MeasureAgreement(const std::string& name,
                                 const ScoreEngine& exact,
                                 const ScoreEngine& quant,
                                 int users_per_domain) {
  AgreementResult result;
  result.name = name;
  double overlap10 = 0.0, overlap50 = 0.0, hr10 = 0.0, ndcg10 = 0.0;
  for (int d = 0; d < exact.snapshot().num_domains(); ++d) {
    const int num_users = exact.snapshot().domain(d).num_users();
    const int sample = users_per_domain < num_users ? users_per_domain
                                                    : num_users;
    for (int u = 0; u < sample; ++u) {
      RecRequest request;
      request.target_domain = d;
      request.user_domain = d;
      request.user = u;
      request.k = 50;
      const Recommendation want = exact.TopK(request);
      const Recommendation got = quant.TopK(request);
      overlap10 += OverlapAtK(want.items, got.items, 10);
      overlap50 += OverlapAtK(want.items, got.items, 50);
      const int rank = want.items.empty()
                           ? -1
                           : RankOf(got.items, want.items.front());
      if (rank >= 0 && rank < 10) {
        hr10 += 1.0;
        ndcg10 += 1.0 / std::log2(static_cast<double>(rank) + 2.0);
      }
      ++result.users_measured;
    }
  }
  const double n = static_cast<double>(result.users_measured);
  result.overlap_at_10 = overlap10 / n;
  result.overlap_at_50 = overlap50 / n;
  result.hr10_delta = 1.0 - hr10 / n;
  result.ndcg10_delta = 1.0 - ndcg10 / n;
  return result;
}

/// Requests/second of full-catalog top-10 retrieval through `engine`,
/// round-robin over domain-0 users (allocation-free scratch core, the
/// drainer configuration).
double TopKThroughput(const ScoreEngine& engine, double min_seconds) {
  const int num_users = engine.snapshot().domain(0).num_users();
  ScoreScratch scratch;
  RecRequest request;
  request.k = 10;
  engine.TopKWithScratch(request, &scratch);  // warm-up (grows scratch)
  Stopwatch timer;
  int64_t requests = 0;
  do {
    request.user = static_cast<int>(requests % num_users);
    engine.TopKWithScratch(request, &scratch);
    ++requests;
  } while (timer.ElapsedSeconds() < min_seconds);
  return static_cast<double>(requests) / timer.ElapsedSeconds();
}

void WriteJson(const std::string& path,
               const std::vector<AgreementResult>& sections,
               const AgreementResult& gate, double speedup_vs_exact,
               double speedup_vs_fast, bool smoke) {
  std::ofstream out(path);
  if (!out.good()) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  out << "{\n";
  out << "  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n";
  out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  out << "  \"quant\": {\n";
  out << "    \"overlap_at_10\": " << FormatFloat(gate.overlap_at_10, 5)
      << ",\n";
  out << "    \"overlap_at_50\": " << FormatFloat(gate.overlap_at_50, 5)
      << ",\n";
  out << "    \"hr10_delta\": " << FormatFloat(gate.hr10_delta, 5) << ",\n";
  out << "    \"ndcg10_delta\": " << FormatFloat(gate.ndcg10_delta, 5)
      << ",\n";
  out << "    \"speedup_vs_exact\": " << FormatFloat(speedup_vs_exact, 3)
      << ",\n";
  out << "    \"speedup_vs_fast\": " << FormatFloat(speedup_vs_fast, 3)
      << "\n  },\n";
  out << "  \"sections\": [\n";
  for (size_t i = 0; i < sections.size(); ++i) {
    const AgreementResult& r = sections[i];
    out << "    {\"name\": \"" << r.name
        << "\", \"users\": " << r.users_measured
        << ", \"overlap_at_10\": " << FormatFloat(r.overlap_at_10, 5)
        << ", \"overlap_at_50\": " << FormatFloat(r.overlap_at_50, 5)
        << ", \"hr10_delta\": " << FormatFloat(r.hr10_delta, 5)
        << ", \"ndcg10_delta\": " << FormatFloat(r.ndcg10_delta, 5) << "}"
        << (i + 1 < sections.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

int Run(bool smoke) {
  std::printf("bench_quant (%s)\n", smoke ? "smoke" : "full");
  const BenchScale scale = smoke ? BenchScale::kSmoke : BenchScale::kFull;
  std::vector<AgreementResult> sections;

  // Fixture 1: a trained-and-frozen model — quantization fidelity on real
  // (post-training) table statistics, not just random draws.
  {
    ExperimentData data(GenerateScenario(LoanFundSpec(scale)), /*seed=*/17);
    NmcdrConfig config;
    config.hidden_dim = smoke ? 8 : 16;
    NmcdrModel model(data.View(), config, /*seed=*/42, 1e-3f);
    Trainer trainer(data.View(), bench::DefaultTrainConfig(scale));
    trainer.Train(&model);
    ModelSnapshot snapshot;
    if (!ModelSnapshot::FreezePair(&model, data.scenario(), &snapshot)) {
      std::fprintf(stderr, "freeze failed\n");
      return 1;
    }
    ScoreEngine exact(&snapshot, {ScoreEngine::Mode::kExact, 256});
    ScoreEngine quant(&snapshot, {ScoreEngine::Mode::kQuantized, 256});
    sections.push_back(MeasureAgreement("trained (LoanFund)", exact, quant,
                                        smoke ? 100 : 400));
  }

  // Fixture 2: a synthetic serving-scale catalog — the overlap gate at
  // production-like item counts, plus the throughput comparison.
  double speedup_vs_exact = 0.0, speedup_vs_fast = 0.0;
  {
    SyntheticSnapshotSpec spec;
    spec.num_domains = 2;
    spec.users_per_domain = smoke ? 500 : 5000;
    spec.items_per_domain = smoke ? 2000 : 20000;
    spec.dim = 16;
    spec.hidden = 16;
    spec.overlap = 0.2f;
    spec.seed = 23;
    const ModelSnapshot snapshot = ModelSnapshot::MakeSynthetic(spec);
    ScoreEngine exact(&snapshot, {ScoreEngine::Mode::kExact, 256});
    ScoreEngine fast(&snapshot, {ScoreEngine::Mode::kFast, 256});
    ScoreEngine quant(&snapshot, {ScoreEngine::Mode::kQuantized, 256});
    sections.push_back(MeasureAgreement("synthetic catalog", exact, quant,
                                        smoke ? 50 : 200));
    const double min_seconds = smoke ? 0.05 : 0.5;
    const double exact_rps = TopKThroughput(exact, min_seconds);
    const double fast_rps = TopKThroughput(fast, min_seconds);
    const double quant_rps = TopKThroughput(quant, min_seconds);
    speedup_vs_exact = quant_rps / exact_rps;
    speedup_vs_fast = quant_rps / fast_rps;
    std::printf(
        "\nTop-10 retrieval throughput (req/s): exact %.0f, fast %.0f, "
        "quantized %.0f\n",
        exact_rps, fast_rps, quant_rps);
  }

  // The gated aggregate: worst agreement across fixtures.
  AgreementResult gate;
  gate.name = "aggregate (worst section)";
  gate.overlap_at_10 = 1.0;
  gate.overlap_at_50 = 1.0;
  for (const AgreementResult& r : sections) {
    if (r.overlap_at_10 < gate.overlap_at_10) {
      gate.overlap_at_10 = r.overlap_at_10;
    }
    if (r.overlap_at_50 < gate.overlap_at_50) {
      gate.overlap_at_50 = r.overlap_at_50;
    }
    if (r.hr10_delta > gate.hr10_delta) gate.hr10_delta = r.hr10_delta;
    if (r.ndcg10_delta > gate.ndcg10_delta) {
      gate.ndcg10_delta = r.ndcg10_delta;
    }
    gate.users_measured += r.users_measured;
  }

  TablePrinter table;
  table.SetHeader({"Fixture", "Users", "overlap@10", "overlap@50",
                   "HR@10 delta", "NDCG@10 delta"});
  for (const AgreementResult& r : sections) {
    table.AddRow({r.name, std::to_string(r.users_measured),
                  FormatFloat(r.overlap_at_10, 4),
                  FormatFloat(r.overlap_at_50, 4),
                  FormatFloat(r.hr10_delta, 4),
                  FormatFloat(r.ndcg10_delta, 4)});
  }
  table.AddRow({gate.name, std::to_string(gate.users_measured),
                FormatFloat(gate.overlap_at_10, 4),
                FormatFloat(gate.overlap_at_50, 4),
                FormatFloat(gate.hr10_delta, 4),
                FormatFloat(gate.ndcg10_delta, 4)});
  std::printf("\nQuantized vs fp-exact ranking agreement\n%s",
              table.ToString().c_str());

  WriteJson("BENCH_quant.json", sections, gate, speedup_vs_exact,
            speedup_vs_fast, smoke);

  // The release floor: full-scale runs must keep the quantized top-10
  // essentially identical to fp; smoke fixtures are tiny (near-ties crowd
  // the top-K), so the CTest floor is looser but still catches any real
  // quantizer break.
  const double floor10 = smoke ? 0.90 : 0.99;
  const double floor50 = smoke ? 0.85 : 0.98;
  if (gate.overlap_at_10 < floor10 || gate.overlap_at_50 < floor50) {
    std::fprintf(stderr,
                 "FAIL: quantized overlap@10 %.4f / overlap@50 %.4f below "
                 "floors %.2f / %.2f\n",
                 gate.overlap_at_10, gate.overlap_at_50, floor10, floor50);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace nmcdr

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return nmcdr::Run(smoke);
}
