// Regenerates Table III: bi-directional Cloth-Sport CDR with overlap
// ratios K_u in {0.1, 1, 10, 50, 90}% across all 12 models.
#include "bench/bench_util.h"

int main() {
  using namespace nmcdr;
  const BenchScale scale = BenchScaleFromEnv();
  bench::OverlapTableOptions options;
  options.table_name = "Table III (Cloth-Sport)";
  options.spec = ClothSportSpec(scale);
  options.models = bench::BenchModelList();
  options.train = bench::DefaultTrainConfig(scale);
  options.eval = bench::DefaultEvalConfig();
  options.csv_path = "table3_cloth_sport.csv";
  bench::RunOverlapTable(options);
  return 0;
}
