#include "bench/bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "train/registry.h"
#include "util/csv_writer.h"
#include "util/logging.h"
#include "util/table_printer.h"

namespace nmcdr {
namespace bench {

TrainConfig DefaultTrainConfig(BenchScale scale) {
  TrainConfig config;
  config.batch_size = 256;
  config.learning_rate = 2e-3f;
  config.negatives_per_positive = 4;
  config.seed = 7;
  config.eval_every = -1;       // auto: ~8 validation checkpoints
  config.early_stop_patience = 3;
  switch (scale) {
    case BenchScale::kSmoke:
      config.epochs = 3;
      config.min_total_steps = 200;
      break;
    case BenchScale::kSmall:
      config.epochs = 8;
      config.min_total_steps = 1200;
      break;
    case BenchScale::kFull:
      config.epochs = 15;
      config.min_total_steps = 2500;
      break;
  }
  return config;
}

EvalConfig DefaultEvalConfig() { return EvalConfig{}; }

std::vector<std::string> BenchModelList() {
  // NMCDR_BENCH_MODELS=NMCDR,PLE,... restricts the grid (calibration runs).
  if (const char* env = std::getenv("NMCDR_BENCH_MODELS")) {
    std::vector<std::string> models;
    std::string token;
    for (const char* p = env;; ++p) {
      if (*p == ',' || *p == '\0') {
        if (!token.empty()) models.push_back(token);
        token.clear();
        if (*p == '\0') break;
      } else {
        token += *p;
      }
    }
    if (!models.empty()) return models;
  }
  return PaperModelOrder();
}

std::vector<CellResult> RunOverlapTable(const OverlapTableOptions& options) {
  RegisterAllModels();
  CommonHyper hyper;
  hyper.embed_dim = 16;

  // One base scenario per table; each K_u masks links off the same data.
  CdrScenario base = GenerateScenario(options.spec);
  std::printf("== %s ==\n  %s\n  %s\n  true overlap: %d users\n",
              options.table_name.c_str(), DomainStatsString(base.z).c_str(),
              DomainStatsString(base.zbar).c_str(), base.NumOverlapping());

  std::vector<CellResult> cells;
  for (double ratio : options.overlap_ratios) {
    Rng rng(options.train.seed + static_cast<uint64_t>(ratio * 1e6));
    CdrScenario masked = ApplyOverlapRatio(base, ratio, &rng);
    ExperimentData data(std::move(masked), /*seed=*/options.train.seed);
    for (const std::string& model_name : options.models) {
      const ExperimentResult result =
          RunExperiment(data, ModelRegistry::Instance().Get(model_name),
                        hyper, options.train, options.eval);
      CellResult cell;
      cell.model = model_name;
      cell.overlap_ratio = ratio;
      cell.ndcg_z = result.test.z.ndcg * 100.0;
      cell.hr_z = result.test.z.hr * 100.0;
      cell.ndcg_zbar = result.test.zbar.ndcg * 100.0;
      cell.hr_zbar = result.test.zbar.hr * 100.0;
      cell.train_seconds = result.training.train_seconds;
      cells.push_back(cell);
      LOG_INFO << options.table_name << " K_u=" << ratio * 100 << "% "
               << model_name << ": Z ndcg/hr " << cell.ndcg_z << "/"
               << cell.hr_z << "  Z̄ ndcg/hr " << cell.ndcg_zbar << "/"
               << cell.hr_zbar << " (" << cell.train_seconds << "s)";
    }
  }

  PrintOverlapTable(options.table_name + " — " + options.spec.z.name +
                        "-domain recommendation (%)",
                    cells, options.overlap_ratios, options.models, true);
  PrintOverlapTable(options.table_name + " — " + options.spec.zbar.name +
                        "-domain recommendation (%)",
                    cells, options.overlap_ratios, options.models, false);
  if (!options.csv_path.empty()) {
    WriteCellsCsv(options.csv_path, cells, options.table_name);
  }
  return cells;
}

void PrintOverlapTable(const std::string& title,
                       const std::vector<CellResult>& cells,
                       const std::vector<double>& ratios,
                       const std::vector<std::string>& models,
                       bool domain_z) {
  TablePrinter table;
  std::vector<std::string> header = {"Method"};
  for (double r : ratios) {
    const std::string ku = FormatFloat(r * 100.0, r < 0.01 ? 1 : 0) + "%";
    header.push_back("NDCG " + ku);
    header.push_back("HR " + ku);
  }
  table.SetHeader(header);

  auto cell_of = [&](const std::string& model, double ratio) {
    for (const CellResult& c : cells) {
      if (c.model == model && c.overlap_ratio == ratio) return c;
    }
    return CellResult{};
  };
  // Identify column-best values (the paper's boldface).
  std::vector<double> best_ndcg(ratios.size(), -1.0),
      best_hr(ratios.size(), -1.0);
  for (size_t i = 0; i < ratios.size(); ++i) {
    for (const std::string& m : models) {
      const CellResult c = cell_of(m, ratios[i]);
      const double ndcg = domain_z ? c.ndcg_z : c.ndcg_zbar;
      const double hr = domain_z ? c.hr_z : c.hr_zbar;
      best_ndcg[i] = std::max(best_ndcg[i], ndcg);
      best_hr[i] = std::max(best_hr[i], hr);
    }
  }
  for (const std::string& m : models) {
    std::vector<std::string> row = {m};
    for (size_t i = 0; i < ratios.size(); ++i) {
      const CellResult c = cell_of(m, ratios[i]);
      const double ndcg = domain_z ? c.ndcg_z : c.ndcg_zbar;
      const double hr = domain_z ? c.hr_z : c.hr_zbar;
      const bool bold_ndcg = ndcg >= best_ndcg[i] - 1e-9;
      const bool bold_hr = hr >= best_hr[i] - 1e-9;
      row.push_back(FormatFloat(ndcg, 2) + (bold_ndcg ? "*" : ""));
      row.push_back(FormatFloat(hr, 2) + (bold_hr ? "*" : ""));
    }
    table.AddRow(row);
  }
  std::printf("\n%s  (* = column best)\n%s", title.c_str(),
              table.ToString().c_str());
}

void WriteCellsCsv(const std::string& path,
                   const std::vector<CellResult>& cells,
                   const std::string& table_name) {
  CsvWriter csv(path);
  if (!csv.ok()) {
    LOG_WARNING << "cannot write " << path;
    return;
  }
  csv.WriteRow({"table", "model", "overlap_ratio", "ndcg_z", "hr_z",
                "ndcg_zbar", "hr_zbar", "train_seconds"});
  for (const CellResult& c : cells) {
    csv.WriteRow({table_name, c.model, FormatFloat(c.overlap_ratio, 4),
                  FormatFloat(c.ndcg_z, 4), FormatFloat(c.hr_z, 4),
                  FormatFloat(c.ndcg_zbar, 4), FormatFloat(c.hr_zbar, 4),
                  FormatFloat(c.train_seconds, 2)});
  }
  std::printf("raw cells written to %s\n", path.c_str());
}

}  // namespace bench
}  // namespace nmcdr
