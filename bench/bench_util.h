#ifndef NMCDR_BENCH_BENCH_UTIL_H_
#define NMCDR_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "data/presets.h"
#include "train/registry.h"

namespace nmcdr {
namespace bench {

/// Train/eval settings scaled by NMCDR_BENCH_SCALE.
TrainConfig DefaultTrainConfig(BenchScale scale);
EvalConfig DefaultEvalConfig();

/// Model rows included at a scale (always the full paper list; smoke runs
/// are kept fast by the tiny datasets, not by dropping rows).
std::vector<std::string> BenchModelList();

/// One measured cell of an overlap table.
struct CellResult {
  std::string model;
  double overlap_ratio = 0.0;
  double ndcg_z = 0.0, hr_z = 0.0;
  double ndcg_zbar = 0.0, hr_zbar = 0.0;
  double train_seconds = 0.0;
};

/// Options for a Tables II-V style bench: every registered model crossed
/// with the overlap ratios K_u on one scenario preset.
struct OverlapTableOptions {
  std::string table_name;        // e.g. "Table II (Music-Movie)"
  SyntheticScenarioSpec spec;    // scenario preset
  std::vector<double> overlap_ratios = {0.001, 0.01, 0.1, 0.5, 0.9};
  std::vector<std::string> models;
  TrainConfig train;
  EvalConfig eval;
  std::string csv_path;          // where to write the raw cells
};

/// Runs the full grid and prints the two per-domain paper-style tables
/// (models as rows, K_u columns, NDCG@10 and HR@10 in %). Returns all
/// cells for further analysis.
std::vector<CellResult> RunOverlapTable(const OverlapTableOptions& options);

/// Prints a formatted comparison block and flags the best model per
/// column, mirroring the boldface of the paper's tables.
void PrintOverlapTable(const std::string& title,
                       const std::vector<CellResult>& cells,
                       const std::vector<double>& ratios,
                       const std::vector<std::string>& models, bool domain_z);

/// Writes cells to CSV (header + one row per model x ratio).
void WriteCellsCsv(const std::string& path,
                   const std::vector<CellResult>& cells,
                   const std::string& table_name);

}  // namespace bench
}  // namespace nmcdr

#endif  // NMCDR_BENCH_BENCH_UTIL_H_
