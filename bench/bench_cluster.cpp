// bench_cluster — the millions-of-users serving-cluster latency bench.
//
// Freeze-only: tables come from ModelSnapshot::MakeSynthetic at
// production-like row counts (no training), sharded by a uniform
// ShardLayout and served through the ClusterServer. Two phases:
//
//  1. Hot swap under load: mixed interactive/batch traffic with a second
//     snapshot version published mid-run. Asserts ZERO failed requests
//     across the swap and reports interactive p50/p99 measured exactly
//     (sorted response latencies) before and after the swap.
//  2. Synthetic overload: batch-class traffic offered far beyond the
//     batch queue capacity while interactive traffic keeps flowing.
//     Asserts every interactive request is served and batch requests are
//     shed (backpressure), and reports the interactive tail.
//
// Writes BENCH_cluster.json (obs exporter schema NMCDR_OBS_V1) so the CI
// perf-gate can hold the p99s against bench/baselines/cluster_baseline
// .json. `--smoke` shrinks the tables so the binary doubles as a CTest;
// NMCDR_BENCH_SCALE=full runs 2M synthetic users.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "data/presets.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serving/cluster/cluster_server.h"
#include "serving/cluster/shard_layout.h"
#include "serving/cluster/sharded_snapshot.h"
#include "serving/model_snapshot.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace nmcdr {
namespace {

struct ClusterBenchSpec {
  int users_per_domain = 0;
  int items_per_domain = 0;
  int shards = 4;
  int waves = 0;
  int wave_interactive = 6;
  int wave_batch = 2;
  int overload_bursts = 0;
};

ClusterBenchSpec SpecFor(BenchScale scale) {
  ClusterBenchSpec spec;
  switch (scale) {
    case BenchScale::kSmoke:
      spec.users_per_domain = 20000;
      spec.items_per_domain = 4000;
      spec.shards = 4;
      spec.waves = 24;
      spec.overload_bursts = 4;
      break;
    case BenchScale::kSmall:
      spec.users_per_domain = 200000;
      spec.items_per_domain = 20000;
      spec.shards = 8;
      spec.waves = 60;
      spec.overload_bursts = 8;
      break;
    case BenchScale::kFull:
      // Two domains x 1M synthetic users: the millions-of-users target.
      spec.users_per_domain = 1000000;
      spec.items_per_domain = 50000;
      spec.shards = 8;
      spec.waves = 120;
      spec.overload_bursts = 12;
      break;
  }
  return spec;
}

/// Exact quantile over collected latencies (sorted copy, nearest-rank):
/// the bench reports measured numbers, not histogram interpolations.
double ExactQuantileMs(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t rank = static_cast<size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

struct SwapResult {
  int64_t requests = 0;
  int64_t failed = 0;
  int64_t served_on[2] = {0, 0};  // by snapshot version (1-based index - 1)
  std::vector<double> interactive_before_ms;
  std::vector<double> interactive_after_ms;
  double qps = 0.0;
  double swap_stall_ms = 0.0;  // wall time Publish() itself took
};

SwapResult RunSwapPhase(const ClusterBenchSpec& spec,
                        const std::shared_ptr<const cluster::ShardedSnapshot>& a,
                        const std::shared_ptr<const cluster::ShardedSnapshot>& b,
                        const ModelSnapshot& source) {
  cluster::ClusterServer::Options options;
  options.num_threads = 4;
  options.max_batch = 16;
  cluster::ClusterServer server(a, options);

  const int wave_size = spec.wave_interactive + spec.wave_batch;
  struct Flight {
    std::future<cluster::ClusterResponse> future;
    cluster::RequestClass cls;
  };
  std::vector<Flight> flights;
  flights.reserve(static_cast<size_t>(spec.waves) * wave_size);

  const auto submit_wave = [&](int w) {
    for (int i = 0; i < wave_size; ++i) {
      cluster::ClusterRequest request;
      request.cls = i < spec.wave_interactive
                        ? cluster::RequestClass::kInteractive
                        : cluster::RequestClass::kBatch;
      request.rec.target_domain = (w + i) % source.num_domains();
      request.rec.user_domain = i % 3 == 0
                                    ? (request.rec.target_domain + 1) %
                                          source.num_domains()
                                    : request.rec.target_domain;
      request.rec.user = (w * 7919 + i * 104729) % spec.users_per_domain;
      request.rec.k = 10;
      Flight flight;
      flight.cls = request.cls;
      flight.future = server.Submit(std::move(request));
      flights.push_back(std::move(flight));
    }
  };

  Stopwatch wall;
  // Sliding-window pacing: keep kWindow waves in flight at all times, so
  // the server is continuously loaded (including ACROSS the publish —
  // those in-flight requests are the ones the RCU protocol must not
  // fail) while queueing delay stays bounded and the before/after
  // latency samples are comparable.
  const int kWindow = 3;
  const int mid = spec.waves / 2;
  double swap_stall_ms = 0.0;
  for (int w = 0; w < spec.waves; ++w) {
    if (w == mid) {
      Stopwatch swap_timer;
      server.Publish(b);
      swap_stall_ms = swap_timer.ElapsedSeconds() * 1e3;
    }
    submit_wave(w);
    if (w >= kWindow) {
      const size_t begin = static_cast<size_t>(w - kWindow) * wave_size;
      for (size_t i = begin; i < begin + wave_size; ++i) {
        flights[i].future.wait();
      }
    }
  }

  SwapResult result;
  result.swap_stall_ms = swap_stall_ms;
  for (Flight& flight : flights) {
    cluster::ClusterResponse response = flight.future.get();
    ++result.requests;
    if (response.status != cluster::ClusterStatus::kOk) {
      ++result.failed;
      continue;
    }
    if (response.snapshot_version >= 1 && response.snapshot_version <= 2) {
      ++result.served_on[response.snapshot_version - 1];
    }
    if (flight.cls == cluster::RequestClass::kInteractive) {
      (response.snapshot_version == 1 ? result.interactive_before_ms
                                      : result.interactive_after_ms)
          .push_back(response.latency_ms);
    }
  }
  result.qps =
      static_cast<double>(result.requests) / wall.ElapsedSeconds();
  server.Stop();
  return result;
}

struct OverloadResult {
  int64_t interactive_offered = 0;
  int64_t interactive_served = 0;
  int64_t batch_offered = 0;
  int64_t batch_served = 0;
  int64_t batch_shed = 0;
  std::vector<double> interactive_ms;
};

OverloadResult RunOverloadPhase(
    const ClusterBenchSpec& spec,
    const std::shared_ptr<const cluster::ShardedSnapshot>& snapshot,
    const ModelSnapshot& source) {
  cluster::ClusterServer::Options options;
  options.num_threads = 2;
  options.max_batch = 8;
  // The overload knobs: a tiny batch queue (so offered >> capacity sheds
  // immediately) while interactive keeps a deep queue and strict
  // priority.
  options.admission.batch_capacity = 4;
  options.admission.interactive_capacity = 1 << 16;
  cluster::ClusterServer server(snapshot, options);

  struct Flight {
    std::future<cluster::ClusterResponse> future;
    cluster::RequestClass cls;
  };
  std::vector<Flight> flights;
  const int kBatchPerBurst = 64;
  const int kInteractivePerBurst = 8;
  for (int burst = 0; burst < spec.overload_bursts; ++burst) {
    for (int i = 0; i < kBatchPerBurst + kInteractivePerBurst; ++i) {
      cluster::ClusterRequest request;
      // Interleave so interactive requests arrive while the batch flood
      // is saturating the queue.
      request.cls = i % 9 == 0 ? cluster::RequestClass::kInteractive
                               : cluster::RequestClass::kBatch;
      request.rec.target_domain = i % source.num_domains();
      request.rec.user_domain = request.rec.target_domain;
      request.rec.user = (burst * 31337 + i * 271) % spec.users_per_domain;
      request.rec.k = 10;
      Flight flight;
      flight.cls = request.cls;
      flight.future = server.Submit(std::move(request));
      flights.push_back(std::move(flight));
    }
  }

  OverloadResult result;
  for (Flight& flight : flights) {
    cluster::ClusterResponse response = flight.future.get();
    const bool interactive =
        flight.cls == cluster::RequestClass::kInteractive;
    if (interactive) {
      ++result.interactive_offered;
    } else {
      ++result.batch_offered;
    }
    switch (response.status) {
      case cluster::ClusterStatus::kOk:
        if (interactive) {
          ++result.interactive_served;
          result.interactive_ms.push_back(response.latency_ms);
        } else {
          ++result.batch_served;
        }
        break;
      case cluster::ClusterStatus::kShedQueueFull:
      case cluster::ClusterStatus::kShedDeadline:
        ++result.batch_shed;
        break;
      case cluster::ClusterStatus::kStopped:
        break;
    }
  }
  server.Stop();
  return result;
}

int Run(bool smoke) {
  const BenchScale scale = smoke ? BenchScale::kSmoke : BenchScaleFromEnv();
  const ClusterBenchSpec spec = SpecFor(scale);

  SyntheticSnapshotSpec synth;
  synth.num_domains = 2;
  synth.users_per_domain = spec.users_per_domain;
  synth.items_per_domain = spec.items_per_domain;
  synth.dim = 16;
  synth.hidden = 16;
  synth.overlap = 0.2f;

  std::printf(
      "bench_cluster (scale: %s): %d domains x %d users, %d items, %d "
      "shards\n",
      BenchScaleName(scale).c_str(), synth.num_domains,
      synth.users_per_domain, synth.items_per_domain, spec.shards);

  Stopwatch build_timer;
  synth.seed = 1;
  const ModelSnapshot source_a = ModelSnapshot::MakeSynthetic(synth);
  synth.seed = 2;
  const ModelSnapshot source_b = ModelSnapshot::MakeSynthetic(synth);
  const cluster::ShardLayout layout =
      cluster::ShardLayout::Uniform(source_a, spec.shards);
  const auto sharded_a =
      std::make_shared<const cluster::ShardedSnapshot>(source_a, layout);
  const auto sharded_b =
      std::make_shared<const cluster::ShardedSnapshot>(source_b, layout);
  std::printf("built 2 snapshot versions in %.1fs\n",
              build_timer.ElapsedSeconds());

  const SwapResult swap = RunSwapPhase(spec, sharded_a, sharded_b, source_a);
  const double p50_before = ExactQuantileMs(swap.interactive_before_ms, 0.50);
  const double p99_before = ExactQuantileMs(swap.interactive_before_ms, 0.99);
  const double p50_after = ExactQuantileMs(swap.interactive_after_ms, 0.50);
  const double p99_after = ExactQuantileMs(swap.interactive_after_ms, 0.99);

  TablePrinter swap_table;
  swap_table.SetHeader({"Swap phase", "requests", "p50 (ms)", "p99 (ms)"});
  swap_table.AddRow({"before (v1)",
                     std::to_string(swap.interactive_before_ms.size()),
                     FormatFloat(p50_before, 3), FormatFloat(p99_before, 3)});
  swap_table.AddRow({"after (v2)",
                     std::to_string(swap.interactive_after_ms.size()),
                     FormatFloat(p50_after, 3), FormatFloat(p99_after, 3)});
  std::printf(
      "\nHot swap under load (interactive class; publish stall %.3f ms, "
      "%.0f req/s, %lld failed of %lld)\n%s",
      swap.swap_stall_ms, swap.qps, static_cast<long long>(swap.failed),
      static_cast<long long>(swap.requests), swap_table.ToString().c_str());

  const OverloadResult overload =
      RunOverloadPhase(spec, sharded_b, source_b);
  const double overload_p50 = ExactQuantileMs(overload.interactive_ms, 0.50);
  const double overload_p99 = ExactQuantileMs(overload.interactive_ms, 0.99);
  const double shed_rate =
      overload.batch_offered > 0
          ? static_cast<double>(overload.batch_shed) /
                static_cast<double>(overload.batch_offered)
          : 0.0;
  std::printf(
      "\nOverload: interactive %lld/%lld served (p50 %.3f ms, p99 %.3f "
      "ms); batch %lld served, %lld shed (shed rate %.2f)\n",
      static_cast<long long>(overload.interactive_served),
      static_cast<long long>(overload.interactive_offered), overload_p50,
      overload_p99, static_cast<long long>(overload.batch_served),
      static_cast<long long>(overload.batch_shed), shed_rate);

  // Machine-readable summary for the CI perf-gate (gates the *_p99_ms
  // gauges against bench/baselines/cluster_baseline.json).
  obs::MetricsRegistry summary;
  summary.GetGauge("cluster.users_total")
      .Set(static_cast<double>(synth.num_domains) * synth.users_per_domain);
  summary.GetGauge("cluster.shards").Set(spec.shards);
  summary.GetGauge("cluster.swap.requests")
      .Set(static_cast<double>(swap.requests));
  summary.GetGauge("cluster.swap.failed")
      .Set(static_cast<double>(swap.failed));
  summary.GetGauge("cluster.swap.served_v1")
      .Set(static_cast<double>(swap.served_on[0]));
  summary.GetGauge("cluster.swap.served_v2")
      .Set(static_cast<double>(swap.served_on[1]));
  summary.GetGauge("cluster.swap.publish_stall_ms").Set(swap.swap_stall_ms);
  summary.GetGauge("cluster.swap.qps").Set(swap.qps);
  summary.GetGauge("cluster.swap.before_p50_ms").Set(p50_before);
  summary.GetGauge("cluster.swap.before_p99_ms").Set(p99_before);
  summary.GetGauge("cluster.swap.after_p50_ms").Set(p50_after);
  summary.GetGauge("cluster.swap.after_p99_ms").Set(p99_after);
  summary.GetGauge("cluster.overload.interactive_offered")
      .Set(static_cast<double>(overload.interactive_offered));
  summary.GetGauge("cluster.overload.interactive_served")
      .Set(static_cast<double>(overload.interactive_served));
  summary.GetGauge("cluster.overload.interactive_p50_ms").Set(overload_p50);
  summary.GetGauge("cluster.overload.interactive_p99_ms").Set(overload_p99);
  summary.GetGauge("cluster.overload.batch_served")
      .Set(static_cast<double>(overload.batch_served));
  summary.GetGauge("cluster.overload.batch_shed")
      .Set(static_cast<double>(overload.batch_shed));
  summary.GetGauge("cluster.overload.shed_rate").Set(shed_rate);
  if (!obs::WriteJsonFile("BENCH_cluster.json", summary)) return 1;
  std::printf("\nwrote BENCH_cluster.json\n");

  // The acceptance gates — a regression here is a broken cluster, not a
  // slow one, so the bench itself fails.
  int failures = 0;
  if (swap.failed != 0) {
    std::fprintf(stderr, "FAIL: %lld requests failed across the swap\n",
                 static_cast<long long>(swap.failed));
    ++failures;
  }
  if (swap.served_on[0] == 0 || swap.served_on[1] == 0) {
    std::fprintf(stderr,
                 "FAIL: traffic did not span the swap (v1=%lld v2=%lld)\n",
                 static_cast<long long>(swap.served_on[0]),
                 static_cast<long long>(swap.served_on[1]));
    ++failures;
  }
  if (overload.interactive_served != overload.interactive_offered) {
    std::fprintf(stderr,
                 "FAIL: interactive requests dropped under overload "
                 "(%lld/%lld)\n",
                 static_cast<long long>(overload.interactive_served),
                 static_cast<long long>(overload.interactive_offered));
    ++failures;
  }
  if (overload.batch_shed == 0) {
    std::fprintf(stderr, "FAIL: overload did not shed any batch traffic\n");
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace nmcdr

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return nmcdr::Run(smoke);
}
