// bench_trainer: eager vs fused (graph-program) training throughput for
// the NMCDR model (src/program). Runs the same pre-drawn batch sequence
// through an eager twin and a fused twin (record one step, replay the
// rest) and reports per-epoch wall time for both modes, the fused
// speedup, steady-state heap allocations per replayed step (must be 0 —
// the arena plan covers all tensor storage), and the arena
// reservation/peak. Before any timing, every step's fused loss is checked
// bit-equal to the eager twin's, so the numbers can never come from a
// divergent numeric path; the binary exits non-zero on any mismatch, on a
// replay fallback, or on steady-state heap/arena growth.
//
// Writes BENCH_trainer.json next to the binary; the `trainer[]` entries
// carry `fused_speedup`, which scripts/check_bench_regression.py gates
// against bench/baselines/trainer_baseline.json (higher is better).
//
// `--smoke` shrinks the step counts so the binary doubles as a CTest.
// NMCDR_FUSION=0 is intentionally ignored here (the whole point is to
// measure the fused path): the program scopes are driven directly.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/rec_model.h"
#include "data/presets.h"
#include "graph/sampling.h"
#include "program/program.h"
#include "tensor/backend.h"
#include "tensor/matrix.h"
#include "tensor/rng.h"
#include "train/experiment.h"
#include "train/registry.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace nmcdr {
namespace {

struct TrainerResult {
  std::string name;
  int steps_per_epoch = 0;
  double eager_epoch_seconds = 0.0;
  double fused_epoch_seconds = 0.0;
  double fused_speedup = 0.0;
  int64_t steady_heap_allocs_per_step = 0;
  int64_t arena_reserved_bytes = 0;
  int64_t arena_peak_bytes = 0;
  int fusion_groups = 0;
  int spmm_plans = 0;
};

/// Draws the full batch sequence up front so both twins see byte-identical
/// training data in the same order.
std::vector<std::pair<LabeledBatch, LabeledBatch>> DrawBatches(
    const ExperimentData& data, int steps, int batch_size) {
  Rng rng(41);
  NegativeSampler sampler_z(&data.train_graph_z());
  NegativeSampler sampler_zbar(&data.train_graph_zbar());
  auto draw = [&](const DomainSplit& split, const NegativeSampler& sampler) {
    LabeledBatch batch;
    batch.users.reserve(batch_size);
    batch.items.reserve(batch_size);
    batch.labels.reserve(batch_size);
    for (int i = 0; i < batch_size / 2; ++i) {
      const Interaction pos =
          split.train[rng.NextUint64(split.train.size())];
      batch.users.push_back(pos.user);
      batch.items.push_back(pos.item);
      batch.labels.push_back(1.f);
      batch.users.push_back(pos.user);
      batch.items.push_back(sampler.SampleNegative(pos.user, &rng));
      batch.labels.push_back(0.f);
    }
    return batch;
  };
  std::vector<std::pair<LabeledBatch, LabeledBatch>> batches;
  batches.reserve(steps);
  for (int s = 0; s < steps; ++s) {
    batches.emplace_back(draw(data.split_z(), sampler_z),
                         draw(data.split_zbar(), sampler_zbar));
  }
  return batches;
}

std::unique_ptr<RecModel> MakeModel(const ExperimentData& data) {
  CommonHyper hyper;
  hyper.seed = 3;
  return ModelRegistry::Instance().Get("NMCDR")(data.View(), hyper,
                                                /*lr=*/1e-3f);
}

bool RunOne(const ExperimentData& data, int steps_per_epoch, int epochs,
            TrainerResult* result) {
  const int warmup = 3;
  const int total_steps = warmup + steps_per_epoch * epochs;
  const auto batches = DrawBatches(data, total_steps, /*batch_size=*/256);

  // Eager twin: time everything after warm-up.
  auto eager = MakeModel(data);
  std::vector<float> eager_loss(total_steps);
  double eager_seconds = 0.0;
  for (int s = 0; s < total_steps; ++s) {
    Stopwatch timer;
    eager_loss[s] = eager->TrainStep(batches[s].first, batches[s].second);
    if (s >= warmup) eager_seconds += timer.ElapsedSeconds();
  }

  // Fused twin: record step 0, replay every following step. Warm-up
  // replays let lazily sized buffers (optimizer state, grad shapes, group
  // bookkeeping capacity) reach steady state before counters are read.
  auto fused = MakeModel(data);
  prog::GraphProgram program;
  std::vector<float> fused_loss(total_steps);
  double fused_seconds = 0.0;
  bool all_replayed = true;
  int64_t heap_before = 0;
  {
    prog::GraphProgram::RecordScope record(&program);
    fused_loss[0] = fused->TrainStep(batches[0].first, batches[0].second);
  }
  if (!program.usable()) {
    std::fprintf(stderr, "FAIL: program did not compile for NMCDR\n");
    return false;
  }
  const int64_t growth_after_compile = program.stats().arena_growth_events;
  for (int s = 1; s < total_steps; ++s) {
    if (s == warmup) heap_before = Matrix::HeapAllocCount();
    Stopwatch timer;
    prog::GraphProgram::ReplayScope replay(&program);
    fused_loss[s] = fused->TrainStep(batches[s].first, batches[s].second);
    if (s >= warmup) fused_seconds += timer.ElapsedSeconds();
    all_replayed = all_replayed && replay.replayed();
  }
  const int64_t heap_delta = Matrix::HeapAllocCount() - heap_before;
  const prog::ProgramStats stats = program.stats();

  // Gates: bitwise equality on every step, no fallback, no steady-state
  // tensor-storage heap traffic, no arena growth past the reservation.
  bool ok = true;
  for (int s = 0; s < total_steps; ++s) {
    if (std::memcmp(&eager_loss[s], &fused_loss[s], sizeof(float)) != 0) {
      std::fprintf(stderr, "FAIL: loss diverged at step %d: %g vs %g\n", s,
                   eager_loss[s], fused_loss[s]);
      ok = false;
      break;
    }
  }
  if (!all_replayed || stats.fallback_steps != 0) {
    std::fprintf(stderr, "FAIL: %lld replay steps fell back to eager\n",
                 static_cast<long long>(stats.fallback_steps));
    ok = false;
  }
  const int measured_steps = steps_per_epoch * epochs;
  if (heap_delta != 0) {
    std::fprintf(stderr,
                 "FAIL: %lld heap allocations across %d steady-state "
                 "replay steps (want 0)\n",
                 static_cast<long long>(heap_delta), measured_steps);
    ok = false;
  }
  if (stats.arena_growth_events != growth_after_compile) {
    std::fprintf(stderr, "FAIL: arena grew %lld times after compile\n",
                 static_cast<long long>(stats.arena_growth_events -
                                        growth_after_compile));
    ok = false;
  }

  result->name = "NMCDR " + data.scenario().name;
  result->steps_per_epoch = steps_per_epoch;
  result->eager_epoch_seconds = eager_seconds / epochs;
  result->fused_epoch_seconds = fused_seconds / epochs;
  result->fused_speedup =
      fused_seconds > 0.0 ? eager_seconds / fused_seconds : 0.0;
  result->steady_heap_allocs_per_step =
      measured_steps > 0 ? heap_delta / measured_steps : 0;
  result->arena_reserved_bytes = stats.arena_reserved_bytes;
  result->arena_peak_bytes = stats.arena_peak_bytes;
  result->fusion_groups = stats.fusion_groups;
  result->spmm_plans = stats.spmm_plans;
  return ok;
}

void WriteJson(const std::string& path,
               const std::vector<TrainerResult>& results, bool smoke) {
  std::ofstream out(path);
  if (!out.good()) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  out << "{\n";
  out << "  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n";
  out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  out << "  \"trainer\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const TrainerResult& r = results[i];
    out << "    {\"name\": \"" << r.name << "\""
        << ", \"steps_per_epoch\": " << r.steps_per_epoch
        << ", \"eager_epoch_seconds\": "
        << FormatFloat(r.eager_epoch_seconds, 5)
        << ", \"fused_epoch_seconds\": "
        << FormatFloat(r.fused_epoch_seconds, 5)
        << ", \"fused_speedup\": " << FormatFloat(r.fused_speedup, 3)
        << ", \"steady_heap_allocs_per_step\": "
        << r.steady_heap_allocs_per_step
        << ", \"arena_reserved_bytes\": " << r.arena_reserved_bytes
        << ", \"arena_peak_bytes\": " << r.arena_peak_bytes
        << ", \"fusion_groups\": " << r.fusion_groups
        << ", \"spmm_plans\": " << r.spmm_plans << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

int Run(bool smoke) {
  const BenchScale scale = smoke ? BenchScale::kSmoke : BenchScaleFromEnv();
  std::printf("bench_trainer (%s scale, hardware_concurrency=%u)\n",
              BenchScaleName(scale).c_str(),
              std::thread::hardware_concurrency());
  RegisterAllModels();
  // Timing runs single-threaded: the fused-vs-eager ratio is the quantity
  // under test, and the serial backend removes pool scheduling noise.
  BackendGuard backend(BackendForThreads(1));

  const int steps_per_epoch = smoke ? 30 : 200;
  const int epochs = smoke ? 2 : 3;

  std::vector<TrainerResult> results;
  bool ok = true;
  for (const SyntheticScenarioSpec& spec : AllScenarioSpecs(scale)) {
    ExperimentData data(GenerateScenario(spec), spec.seed + 1);
    TrainerResult result;
    ok = RunOne(data, steps_per_epoch, epochs, &result) && ok;
    results.push_back(result);
    break;  // one preset is enough for the trajectory; keep runs fast
  }

  TablePrinter table;
  table.SetHeader({"Run", "Eager s/epoch", "Fused s/epoch", "Speedup",
                   "Allocs/step", "Arena peak KiB", "Groups", "SpMM"});
  for (const TrainerResult& r : results) {
    table.AddRow({r.name, FormatFloat(r.eager_epoch_seconds, 4),
                  FormatFloat(r.fused_epoch_seconds, 4),
                  FormatFloat(r.fused_speedup, 2) + "x",
                  std::to_string(r.steady_heap_allocs_per_step),
                  std::to_string(r.arena_peak_bytes / 1024),
                  std::to_string(r.fusion_groups),
                  std::to_string(r.spmm_plans)});
  }
  std::printf("%s", table.ToString().c_str());

  WriteJson("BENCH_trainer.json", results, smoke);
  if (!ok) {
    std::printf("FAILED: fused trainer diverged from eager (see above)\n");
    return 1;
  }
  std::printf("fused == eager bitwise on every step; steady state "
              "allocation-free\n");
  return 0;
}

}  // namespace
}  // namespace nmcdr

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return nmcdr::Run(smoke);
}
