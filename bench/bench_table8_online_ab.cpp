// Regenerates Tables VII & VIII: the MYbank-shaped online A/B test over
// three financial domains (Loan, Fund, Account). Five groups — Control
// (popularity), MMoE, PLE, DML, NMCDR — each receive an equal traffic
// share for 15 simulated days; the table reports CVR per domain.
//
// Model groups are trained offline on pairwise scenario projections
// (Loan-Fund and Loan-Account); serving routes Fund traffic to the first
// instance and Account traffic to the second (Loan to the first).
#include <cstdio>
#include <memory>

#include "baselines/multi_task.h"
#include "baselines/partial_overlap.h"
#include "train/registry.h"
#include "bench/bench_util.h"
#include "core/multi_domain_nmcdr.h"
#include "core/nmcdr_model.h"
#include "serving/ab_test.h"
#include "util/logging.h"
#include "util/csv_writer.h"
#include "util/table_printer.h"

namespace nmcdr {
namespace {

constexpr int kLoan = 0, kFund = 1, kAccount = 2;

/// Trains one model per scenario pair and wraps both as a tri-domain
/// ranker: domain 0 and 1 -> pair A (Loan-Fund); domain 2 -> pair B
/// (Loan-Account, zbar side).
struct TrainedGroup {
  std::unique_ptr<ExperimentData> data_a, data_b;
  std::unique_ptr<RecModel> model_a, model_b;

  Ranker AsRanker() {
    return [this](int domain, int user, const std::vector<int>& candidates) {
      RecModel* model = domain == kAccount ? model_b.get() : model_a.get();
      const DomainSide side =
          domain == kLoan ? DomainSide::kZ : DomainSide::kZbar;
      std::vector<int> users(candidates.size(), user);
      return model->Score(side, users, candidates);
    };
  }
};

/// The K-domain NMCDR trained jointly on all three domains — the
/// "multi-target" capability exercised directly instead of via pairwise
/// instances.
struct TrainedMultiDomainGroup {
  std::vector<std::unique_ptr<InteractionGraph>> graphs;
  MultiDomainView view;
  std::unique_ptr<MultiDomainNmcdrModel> model;

  Ranker AsRanker() {
    return [this](int domain, int user, const std::vector<int>& candidates) {
      return model->Score(domain, std::vector<int>(candidates.size(), user),
                          candidates);
    };
  }
};

std::unique_ptr<TrainedMultiDomainGroup> TrainMultiDomainGroup(
    const ServingWorld& world, const TrainConfig& train, int num_persons) {
  auto group = std::make_unique<TrainedMultiDomainGroup>();
  group->view.num_persons = num_persons;
  for (int d = 0; d < world.num_domains(); ++d) {
    const DomainData& data = world.domain(d);
    group->graphs.push_back(std::make_unique<InteractionGraph>(
        data.num_users, data.num_items, data.interactions));
    group->view.domains.push_back(&data);
    group->view.train_graphs.push_back(group->graphs.back().get());
    std::vector<int> to_person(data.num_users);
    for (int u = 0; u < data.num_users; ++u) {
      to_person[u] = world.PersonOfUser(d, u);
    }
    group->view.user_to_person.push_back(std::move(to_person));
  }
  NmcdrConfig config;
  config.hidden_dim = 16;
  group->model = std::make_unique<MultiDomainNmcdrModel>(
      group->view, config, /*seed=*/42, train.learning_rate);

  // Joint mini-batch training across all K domains.
  Rng rng(train.seed);
  std::vector<NegativeSampler> samplers;
  for (int d = 0; d < world.num_domains(); ++d) {
    samplers.emplace_back(group->view.train_graphs[d]);
  }
  const int steps = std::max(train.min_total_steps, 400);
  for (int s = 0; s < steps; ++s) {
    std::vector<LabeledBatch> batches(world.num_domains());
    for (int d = 0; d < world.num_domains(); ++d) {
      const DomainData& data = world.domain(d);
      LabeledBatch& batch = batches[d];
      int added = 0, attempts = 0;
      const int positives = train.batch_size / 8;
      while (added < positives && attempts++ < positives * 20) {
        const Interaction pos =
            data.interactions[rng.NextUint64(data.interactions.size())];
        if (group->view.train_graphs[d]->UserDegree(pos.user) >=
            data.num_items) {
          continue;
        }
        batch.users.push_back(pos.user);
        batch.items.push_back(pos.item);
        batch.labels.push_back(1.f);
        batch.users.push_back(pos.user);
        batch.items.push_back(samplers[d].SampleNegative(pos.user, &rng));
        batch.labels.push_back(0.f);
        ++added;
      }
    }
    group->model->TrainStep(batches);
  }
  return group;
}

std::unique_ptr<TrainedGroup> TrainGroup(const ServingWorld& world,
                                         const std::string& model_name,
                                         const TrainConfig& train) {
  auto group = std::make_unique<TrainedGroup>();
  group->data_a = std::make_unique<ExperimentData>(
      world.MakePairScenario(kLoan, kFund), train.seed);
  group->data_b = std::make_unique<ExperimentData>(
      world.MakePairScenario(kLoan, kAccount), train.seed);
  CommonHyper hyper;
  hyper.embed_dim = 16;
  const ModelFactory factory = ModelRegistry::Instance().Get(model_name);
  group->model_a = factory(group->data_a->View(), hyper, train.learning_rate);
  group->model_b = factory(group->data_b->View(), hyper, train.learning_rate);
  Trainer(group->data_a->View(), train).Train(group->model_a.get());
  Trainer(group->data_b->View(), train).Train(group->model_b.get());
  return group;
}

}  // namespace
}  // namespace nmcdr

int main() {
  using namespace nmcdr;
  RegisterAllModels();
  const BenchScale scale = BenchScaleFromEnv();
  const TrainConfig train = bench::DefaultTrainConfig(scale);
  const double f = scale == BenchScale::kSmoke ? 0.3
                   : scale == BenchScale::kFull ? 2.0
                                                : 1.0;

  // Tri-domain world shaped like Table VII: Loan has by far the most
  // users/items, Account is mid-sized, Fund is small; base CVRs match the
  // Control row of Table VIII (10.5% / 6.1% / 1.9%).
  std::vector<ServingWorld::DomainSpec> specs(3);
  specs[kLoan].data = {"Loan", 0, static_cast<int>(90 * f), 10.0, 0.9};
  specs[kLoan].target_base_cvr = 0.105;
  specs[kFund].data = {"Fund", 0, static_cast<int>(40 * f), 4.0, 0.9};
  specs[kFund].target_base_cvr = 0.061;
  specs[kAccount].data = {"Account", 0, static_cast<int>(60 * f), 6.0, 0.9};
  specs[kAccount].target_base_cvr = 0.019;
  ServingWorld world(specs, /*num_persons=*/static_cast<int>(1600 * f),
                     /*membership_prob=*/{0.85, 0.25, 0.45},
                     /*latent_dim=*/8, /*preference_sharpness=*/4.5,
                     /*seed=*/77);
  for (int d = 0; d < world.num_domains(); ++d) {
    std::printf("  %s\n", DomainStatsString(world.domain(d)).c_str());
  }

  std::vector<std::pair<std::string, Ranker>> groups;
  groups.emplace_back("Control", PopularityRanker(world));
  std::vector<std::unique_ptr<TrainedGroup>> trained;
  for (const char* name : {"MMoE", "PLE", "DML", "NMCDR"}) {
    LOG_INFO << "training group " << name;
    trained.push_back(TrainGroup(world, name, train));
    groups.emplace_back(std::string(name) + " Group", trained.back()->AsRanker());
  }
  LOG_INFO << "training group NMCDR-MD (joint tri-domain)";
  auto md_group = TrainMultiDomainGroup(world, train,
                                        static_cast<int>(1600 * f));
  groups.emplace_back("NMCDR-MD Group", md_group->AsRanker());

  AbTestConfig config;
  config.days = 15;
  config.impressions_per_day_per_domain =
      scale == BenchScale::kSmoke ? 400 : 1500;
  const std::vector<GroupResult> results = RunAbTest(world, groups, config);

  TablePrinter table;
  table.SetHeader({"", "Loan Domain", "Fund Domain", "Account Domain"});
  for (const GroupResult& r : results) {
    table.AddRow({r.name, FormatFloat(r.cvr[kLoan] * 100, 2) + "%",
                  FormatFloat(r.cvr[kFund] * 100, 2) + "%",
                  FormatFloat(r.cvr[kAccount] * 100, 2) + "%"});
  }
  std::printf("\nTable VIII — online A/B CVR over %d simulated days\n%s",
              config.days, table.ToString().c_str());

  CsvWriter csv("table8_online_ab.csv");
  csv.WriteRow({"group", "loan_cvr", "fund_cvr", "account_cvr"});
  for (const GroupResult& r : results) {
    csv.WriteRow({r.name, FormatFloat(r.cvr[kLoan], 5),
                  FormatFloat(r.cvr[kFund], 5),
                  FormatFloat(r.cvr[kAccount], 5)});
  }
  return 0;
}
