// Regenerates Table V: bi-directional Loan-Fund CDR (the MYbank-shaped
// financial scenario) with overlap ratios K_u in {0.1, 1, 10, 50, 90}%.
#include "bench/bench_util.h"

int main() {
  using namespace nmcdr;
  const BenchScale scale = BenchScaleFromEnv();
  bench::OverlapTableOptions options;
  options.table_name = "Table V (Loan-Fund)";
  options.spec = LoanFundSpec(scale);
  options.models = bench::BenchModelList();
  options.train = bench::DefaultTrainConfig(scale);
  options.eval = bench::DefaultEvalConfig();
  options.csv_path = "table5_loan_fund.csv";
  bench::RunOverlapTable(options);
  return 0;
}
