// Regenerates Table IX: ablation of NMCDR's components at K_u = 50% on
// all four scenarios — w/o-Igm (intra node matching), w/o-Cgm (inter node
// matching), w/o-Inc (intra node complementing), w/o-Sup (companion
// objectives), vs the full model.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/nmcdr_model.h"
#include "util/logging.h"
#include "util/csv_writer.h"
#include "util/table_printer.h"

namespace nmcdr {
namespace {

struct Variant {
  std::string name;
  NmcdrConfig config;
};

std::vector<Variant> Variants() {
  NmcdrConfig base;
  base.hidden_dim = 16;
  std::vector<Variant> variants;
  {
    Variant v{"w/o-Igm", base};
    v.config.use_intra = false;
    variants.push_back(v);
  }
  {
    Variant v{"w/o-Cgm", base};
    v.config.use_inter = false;
    variants.push_back(v);
  }
  {
    Variant v{"w/o-Inc", base};
    v.config.use_complement = false;
    variants.push_back(v);
  }
  {
    Variant v{"w/o-Sup", base};
    v.config.use_companion = false;
    variants.push_back(v);
  }
  variants.push_back({"Ours", base});
  return variants;
}

}  // namespace
}  // namespace nmcdr

int main() {
  using namespace nmcdr;
  const BenchScale scale = BenchScaleFromEnv();
  const TrainConfig train = bench::DefaultTrainConfig(scale);
  const EvalConfig eval = bench::DefaultEvalConfig();
  const std::vector<Variant> variants = Variants();

  CsvWriter csv("table9_ablation.csv");
  csv.WriteRow({"scenario", "domain", "variant", "ndcg", "hr"});

  TablePrinter table;
  std::vector<std::string> header = {"Scenario", "Metric"};
  for (const Variant& v : variants) header.push_back(v.name);
  table.SetHeader(header);

  for (const SyntheticScenarioSpec& spec : AllScenarioSpecs(scale)) {
    Rng rng(91);
    CdrScenario masked =
        ApplyOverlapRatio(GenerateScenario(spec), /*ratio=*/0.5, &rng);
    ExperimentData data(std::move(masked), train.seed);

    std::vector<ScenarioMetrics> results;
    for (const Variant& v : variants) {
      ModelFactory factory = [&v](const ScenarioView& view,
                                  const CommonHyper& hyper, float lr) {
        return std::make_unique<NmcdrModel>(view, v.config, hyper.seed, lr);
      };
      CommonHyper hyper;
      hyper.embed_dim = 16;
      const ExperimentResult r =
          RunExperiment(data, factory, hyper, train, eval);
      results.push_back(r.test);
      LOG_INFO << spec.name << " " << v.name << " Z ndcg "
               << r.test.z.ndcg * 100 << " Z̄ ndcg " << r.test.zbar.ndcg * 100;
    }

    for (int domain_z = 1; domain_z >= 0; --domain_z) {
      const std::string dom_name =
          domain_z != 0 ? spec.z.name : spec.zbar.name;
      std::vector<std::string> ndcg_row = {dom_name, "NDCG@10"};
      std::vector<std::string> hr_row = {dom_name, "HR@10"};
      for (size_t i = 0; i < variants.size(); ++i) {
        const RankingMetrics& m =
            domain_z != 0 ? results[i].z : results[i].zbar;
        ndcg_row.push_back(FormatFloat(m.ndcg * 100, 2));
        hr_row.push_back(FormatFloat(m.hr * 100, 2));
        csv.WriteRow({spec.name, dom_name, variants[i].name,
                      FormatFloat(m.ndcg * 100, 4), FormatFloat(m.hr * 100, 4)});
      }
      table.AddRow(ndcg_row);
      table.AddRow(hr_row);
    }
    table.AddSeparator();
  }
  std::printf("\nTable IX — NMCDR component ablation at K_u=50%% (%%)\n%s",
              table.ToString().c_str());
  return 0;
}
