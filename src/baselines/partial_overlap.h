#ifndef NMCDR_BASELINES_PARTIAL_OVERLAP_H_
#define NMCDR_BASELINES_PARTIAL_OVERLAP_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/common.h"
#include "core/hetero_encoder.h"

namespace nmcdr {

/// DML [10]: per-domain matrix factorization with a latent orthogonal
/// mapping between the two user spaces, trained with (a) pointwise BCE on
/// enhanced embeddings (linked users mix in the mapped counterpart),
/// (b) a dual metric-learning alignment term on the overlapped pairs, and
/// (c) an orthogonality penalty ||W^T W - I||_F^2.
class DmlModel : public BaselineBase {
 public:
  DmlModel(const ScenarioView& view, const CommonHyper& hyper, float lr);
  std::string name() const override { return "DML"; }
  float TrainStep(const LabeledBatch& batch_z,
                  const LabeledBatch& batch_zbar) override;
  std::vector<float> Score(DomainSide side, const std::vector<int>& users,
                           const std::vector<int>& items) override;

 private:
  ag::Tensor EnhancedUsers(DomainSide side, const std::vector<int>& users)
      const;
  ag::Tensor user_z_, item_z_, user_zbar_, item_zbar_;
  ag::Tensor mapping_;  // W: Z user space -> Z̄ user space (orthogonal-ish)
};

/// HeroGraph [11]: one shared global heterogeneous graph over the union
/// persons and both domains' items; GCN layers propagate over the global
/// graph, and per-domain MLPs predict from the global user representation
/// and the (global) item representation.
class HeroGraphModel : public BaselineBase {
 public:
  HeroGraphModel(const ScenarioView& view, const CommonHyper& hyper,
                 float lr);
  std::string name() const override { return "HeroGraph"; }
  float TrainStep(const LabeledBatch& batch_z,
                  const LabeledBatch& batch_zbar) override;
  std::vector<float> Score(DomainSide side, const std::vector<int>& users,
                           const std::vector<int>& items) override;
  void InvalidateCaches() override { reps_dirty_ = true; }

 private:
  ag::Tensor GlobalUserReps() const;
  void RefreshEvalReps();
  std::vector<int> ToUnion(DomainSide side,
                           const std::vector<int>& users) const;
  std::vector<int> ToGlobalItems(DomainSide side,
                                 const std::vector<int>& items) const;

  SharedUserIndex shared_;
  int item_offset_zbar_ = 0;  // zbar item ids start here in the global table
  ag::Tensor user_emb_, item_emb_;
  std::unique_ptr<HeteroGraphEncoder> encoder_;
  std::shared_ptr<const CsrMatrix> adj_ui_;
  std::shared_ptr<const CsrMatrix> adj_iu_;
  std::unique_ptr<ag::Mlp> mlp_z_, mlp_zbar_;
  bool reps_dirty_ = true;
  Matrix cached_users_;
};

/// PTUPCDR [12]: per-domain embeddings plus, per direction, a meta network
/// fed with the user's source-domain history (characteristic encoder =
/// mean-pooled history embeddings) that generates a personalized bridge.
/// Port note: the original emits a full D x D bridge per user; we generate
/// a rank-1 (scale, shift) bridge, which keeps the personalized-transfer
/// mechanism at CPU scale (see DESIGN.md).
class PtupcdrModel : public BaselineBase {
 public:
  PtupcdrModel(const ScenarioView& view, const CommonHyper& hyper, float lr);
  std::string name() const override { return "PTUPCDR"; }
  float TrainStep(const LabeledBatch& batch_z,
                  const LabeledBatch& batch_zbar) override;
  std::vector<float> Score(DomainSide side, const std::vector<int>& users,
                           const std::vector<int>& items) override;

 private:
  struct Domain {
    ag::Tensor user_emb, item_emb;
    std::unique_ptr<ag::Mlp> meta;  // other-domain profile -> [scale||shift]
    std::unique_ptr<ag::Mlp> mlp;   // [u || v] -> 1
  };
  ag::Tensor EffectiveUsers(DomainSide side,
                            const std::vector<int>& users) const;
  Domain z_, zbar_;
  std::shared_ptr<const std::vector<std::vector<int>>> history_z_;
  std::shared_ptr<const std::vector<std::vector<int>>> history_zbar_;
};

}  // namespace nmcdr

#endif  // NMCDR_BASELINES_PARTIAL_OVERLAP_H_
