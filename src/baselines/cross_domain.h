#ifndef NMCDR_BASELINES_CROSS_DOMAIN_H_
#define NMCDR_BASELINES_CROSS_DOMAIN_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/common.h"
#include "core/hetero_encoder.h"

namespace nmcdr {

/// CoNet [4]: per-domain MLP towers with cross connections that inject the
/// linked user's other-domain embedding into each hidden layer (zero for
/// non-overlapped users). Port note: the original pairs fully-overlapped
/// examples tower-to-tower; with partial overlap we cross-connect through
/// the user representation, which preserves the dual-transfer mechanism
/// and its dependence on overlap.
class ConetModel : public BaselineBase {
 public:
  ConetModel(const ScenarioView& view, const CommonHyper& hyper, float lr);
  std::string name() const override { return "CoNet"; }
  float TrainStep(const LabeledBatch& batch_z,
                  const LabeledBatch& batch_zbar) override;
  std::vector<float> Score(DomainSide side, const std::vector<int>& users,
                           const std::vector<int>& items) override;

 private:
  struct Domain {
    ag::Tensor user_emb, item_emb;
    std::unique_ptr<ag::Linear> l1, l2, out;
    std::unique_ptr<ag::Linear> cross1, cross2;  // H matrices
  };
  ag::Tensor Logits(DomainSide side, const std::vector<int>& users,
                    const std::vector<int>& items) const;
  Domain z_, zbar_;
};

/// MiNet [6]: three interest levels per prediction — the user embedding,
/// an attention-pooled target-domain history interest, and an attention-
/// pooled cross-domain history interest from the linked user (zero when
/// unlinked), with item-level attention keyed by the candidate item.
class MinetModel : public BaselineBase {
 public:
  MinetModel(const ScenarioView& view, const CommonHyper& hyper, float lr);
  std::string name() const override { return "MiNet"; }
  float TrainStep(const LabeledBatch& batch_z,
                  const LabeledBatch& batch_zbar) override;
  std::vector<float> Score(DomainSide side, const std::vector<int>& users,
                           const std::vector<int>& items) override;

 private:
  struct Domain {
    ag::Tensor user_emb, item_emb;
    std::unique_ptr<ag::Linear> transfer;  // candidate item -> other space
    std::unique_ptr<ag::Mlp> mlp;          // [u||v||target||cross] -> 1
  };
  ag::Tensor Logits(DomainSide side, const std::vector<int>& users,
                    const std::vector<int>& items) const;
  Domain z_, zbar_;
  std::shared_ptr<const std::vector<std::vector<int>>> history_z_;
  std::shared_ptr<const std::vector<std::vector<int>>> history_zbar_;
};

/// GA-DTCDR [5]: per-domain graph (GNN) user representations with an
/// element-wise attention (gate) that fuses the two domains' embeddings of
/// each overlapped user; non-overlapped users keep their local embedding.
class GaDtcdrModel : public BaselineBase {
 public:
  GaDtcdrModel(const ScenarioView& view, const CommonHyper& hyper, float lr);
  std::string name() const override { return "GA-DTCDR"; }
  float TrainStep(const LabeledBatch& batch_z,
                  const LabeledBatch& batch_zbar) override;
  std::vector<float> Score(DomainSide side, const std::vector<int>& users,
                           const std::vector<int>& items) override;
  void InvalidateCaches() override { reps_dirty_ = true; }

 private:
  struct Domain {
    ag::Tensor user_emb, item_emb;
    std::unique_ptr<HeteroGraphEncoder> encoder;
    std::shared_ptr<const CsrMatrix> adj_ui;
    std::shared_ptr<const CsrMatrix> adj_iu;
    std::unique_ptr<ag::Linear> map_other;  // other-domain emb -> this space
    std::unique_ptr<ag::Linear> gate;       // [u || mapped] -> D
    std::unique_ptr<ag::Mlp> mlp;
    const std::vector<int>* self_index = nullptr;
  };
  /// Full-graph fused user representations of one domain.
  ag::Tensor FusedUsers(Domain& dom, const ag::Tensor& own_reps,
                        const ag::Tensor& other_reps) const;
  void ForwardBoth(ag::Tensor* fused_z, ag::Tensor* fused_zbar);
  void RefreshEvalReps();

  Domain z_, zbar_;
  bool reps_dirty_ = true;
  Matrix cached_z_, cached_zbar_;
};

}  // namespace nmcdr

#endif  // NMCDR_BASELINES_CROSS_DOMAIN_H_
