#include "baselines/register_all.h"

#include "baselines/cross_domain.h"
#include "baselines/multi_task.h"
#include "baselines/partial_overlap.h"
#include "baselines/single_domain.h"
#include "train/registry.h"

namespace nmcdr {
namespace {

template <typename Model>
void RegisterModel(const std::string& name) {
  ModelRegistry::Instance().Register(
      name, [](const ScenarioView& view, const CommonHyper& hyper, float lr) {
        return std::make_unique<Model>(view, hyper, lr);
      });
}

}  // namespace

void RegisterAllModels() {
  RegisterModel<LrModel>("LR");
  RegisterModel<BprModel>("BPR");
  RegisterModel<NeuMfModel>("NeuMF");
  RegisterModel<MmoeModel>("MMoE");
  RegisterModel<PleModel>("PLE");
  RegisterModel<ConetModel>("CoNet");
  RegisterModel<MinetModel>("MiNet");
  RegisterModel<GaDtcdrModel>("GA-DTCDR");
  RegisterModel<DmlModel>("DML");
  RegisterModel<HeroGraphModel>("HeroGraph");
  RegisterModel<PtupcdrModel>("PTUPCDR");
  RegisterNmcdrModel();
}

std::vector<std::string> PaperModelOrder() {
  return {"LR",    "BPR",      "NeuMF", "MMoE",      "PLE",
          "CoNet", "MiNet",    "GA-DTCDR", "DML",    "HeroGraph",
          "PTUPCDR", "NMCDR"};
}

}  // namespace nmcdr
