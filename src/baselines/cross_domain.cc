#include "baselines/cross_domain.h"

#include "util/check.h"

namespace nmcdr {
namespace {

ag::Tensor CombineLosses(const ag::Tensor& a, const ag::Tensor& b) {
  if (a.defined() && b.defined()) return ag::Add(a, b);
  return a.defined() ? a : b;
}

std::vector<float> ReadLogits(const ag::Tensor& logits) {
  std::vector<float> out(logits.rows());
  for (int i = 0; i < logits.rows(); ++i) out[i] = logits.value().At(i, 0);
  return out;
}

/// Gathers the other-domain embedding of each batch user via the overlap
/// link, zeroing unlinked rows.
ag::Tensor LinkedCounterparts(const ag::Tensor& other_table,
                              const std::vector<int>& users,
                              const std::vector<int>& link) {
  std::vector<int> idx(users.size(), 0);
  Matrix mask(static_cast<int>(users.size()), 1);
  for (size_t i = 0; i < users.size(); ++i) {
    const int m = link[users[i]];
    if (m >= 0) {
      idx[i] = m;
      mask.At(static_cast<int>(i), 0) = 1.f;
    }
  }
  return ag::ScaleRows(ag::Embedding(other_table, idx),
                       ag::Tensor(std::move(mask)));
}

}  // namespace

// --------------------------------------------------------------- ConetModel

ConetModel::ConetModel(const ScenarioView& view, const CommonHyper& hyper,
                       float lr)
    : BaselineBase(view, hyper.seed) {
  const int d = hyper.embed_dim;
  const int h = hyper.mlp_hidden.empty() ? 2 * d : hyper.mlp_hidden[0];
  auto init_domain = [&](Domain* dom, const DomainData& data,
                         const std::string& prefix) {
    dom->user_emb = store_.Register(
        prefix + ".user", Matrix::Gaussian(data.num_users, d, &rng_, 0.f, 0.1f));
    dom->item_emb = store_.Register(
        prefix + ".item", Matrix::Gaussian(data.num_items, d, &rng_, 0.f, 0.1f));
    dom->l1 = std::make_unique<ag::Linear>(&store_, prefix + ".l1", 2 * d, h,
                                           &rng_);
    dom->l2 =
        std::make_unique<ag::Linear>(&store_, prefix + ".l2", h, h, &rng_);
    dom->out =
        std::make_unique<ag::Linear>(&store_, prefix + ".out", h, 1, &rng_);
    dom->cross1 = std::make_unique<ag::Linear>(&store_, prefix + ".h1", d, h,
                                               &rng_);
    dom->cross2 = std::make_unique<ag::Linear>(&store_, prefix + ".h2", d, h,
                                               &rng_);
  };
  init_domain(&z_, view.scenario->z, "z");
  init_domain(&zbar_, view.scenario->zbar, "zbar");
  FinishInit(lr);
}

ag::Tensor ConetModel::Logits(DomainSide side, const std::vector<int>& users,
                              const std::vector<int>& items) const {
  const bool is_z = side == DomainSide::kZ;
  const Domain& dom = is_z ? z_ : zbar_;
  const Domain& other = is_z ? zbar_ : z_;
  const std::vector<int>& link = is_z ? view_.scenario->z_to_zbar
                                      : view_.scenario->zbar_to_z;
  const ag::Tensor u = ag::Embedding(dom.user_emb, users);
  const ag::Tensor v = ag::Embedding(dom.item_emb, items);
  const ag::Tensor cross_u = LinkedCounterparts(other.user_emb, users, link);
  // Cross connections: each hidden layer receives the other domain's user
  // signal through the shared transfer matrices H1/H2.
  const ag::Tensor h1 = ag::Relu(ag::Add(dom.l1->Forward(ag::ConcatCols(u, v)),
                                         dom.cross1->Forward(cross_u)));
  const ag::Tensor h2 = ag::Relu(
      ag::Add(dom.l2->Forward(h1), dom.cross2->Forward(cross_u)));
  return dom.out->Forward(h2);
}

float ConetModel::TrainStep(const LabeledBatch& batch_z,
                            const LabeledBatch& batch_zbar) {
  ag::Tensor lz, lzbar;
  if (!batch_z.empty()) {
    lz = ag::BceWithLogits(
        Logits(DomainSide::kZ, batch_z.users, batch_z.items), batch_z.labels);
  }
  if (!batch_zbar.empty()) {
    lzbar = ag::BceWithLogits(
        Logits(DomainSide::kZbar, batch_zbar.users, batch_zbar.items),
        batch_zbar.labels);
  }
  const ag::Tensor total = CombineLosses(lz, lzbar);
  if (!total.defined()) return 0.f;
  return ApplyStep(total);
}

std::vector<float> ConetModel::Score(DomainSide side,
                                     const std::vector<int>& users,
                                     const std::vector<int>& items) {
  ag::NoGradGuard no_grad;
  return ReadLogits(Logits(side, users, items));
}

// --------------------------------------------------------------- MinetModel

MinetModel::MinetModel(const ScenarioView& view, const CommonHyper& hyper,
                       float lr)
    : BaselineBase(view, hyper.seed) {
  const int d = hyper.embed_dim;
  auto init_domain = [&](Domain* dom, const DomainData& data,
                         const std::string& prefix) {
    dom->user_emb = store_.Register(
        prefix + ".user", Matrix::Gaussian(data.num_users, d, &rng_, 0.f, 0.1f));
    dom->item_emb = store_.Register(
        prefix + ".item", Matrix::Gaussian(data.num_items, d, &rng_, 0.f, 0.1f));
    dom->transfer = std::make_unique<ag::Linear>(&store_, prefix + ".transfer",
                                                 d, d, &rng_);
    std::vector<int> dims = {4 * d};
    dims.reserve(hyper.mlp_hidden.size() + 2);
    for (int hdim : hyper.mlp_hidden) dims.push_back(hdim);
    dims.push_back(1);
    dom->mlp = std::make_unique<ag::Mlp>(&store_, prefix + ".mlp", dims, &rng_);
  };
  init_domain(&z_, view.scenario->z, "z");
  init_domain(&zbar_, view.scenario->zbar, "zbar");
  history_z_ = BuildUserHistories(*view.train_graph_z);
  history_zbar_ = BuildUserHistories(*view.train_graph_zbar);
  FinishInit(lr);
}

ag::Tensor MinetModel::Logits(DomainSide side, const std::vector<int>& users,
                              const std::vector<int>& items) const {
  const bool is_z = side == DomainSide::kZ;
  const Domain& dom = is_z ? z_ : zbar_;
  const Domain& other = is_z ? zbar_ : z_;
  const auto& own_history = is_z ? history_z_ : history_zbar_;
  const auto& other_history = is_z ? history_zbar_ : history_z_;
  const std::vector<int>& link = is_z ? view_.scenario->z_to_zbar
                                      : view_.scenario->zbar_to_z;

  const ag::Tensor u = ag::Embedding(dom.user_emb, users);
  const ag::Tensor v = ag::Embedding(dom.item_emb, items);

  // Target-domain interest: candidate-keyed attention over own history.
  auto own_lists = std::make_shared<std::vector<std::vector<int>>>();
  auto cross_lists = std::make_shared<std::vector<std::vector<int>>>();
  own_lists->reserve(users.size());
  cross_lists->reserve(users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    own_lists->push_back((*own_history)[users[i]]);
    const int m = link[users[i]];
    cross_lists->push_back(m >= 0 ? (*other_history)[m]
                                  : std::vector<int>());
  }
  const ag::Tensor target_interest =
      ag::NeighborAttention(v, dom.item_emb, own_lists);
  // Cross-domain interest: candidate transferred into the other domain's
  // item space, then attention over the linked user's history there.
  const ag::Tensor cross_interest = ag::NeighborAttention(
      dom.transfer->Forward(v), other.item_emb, cross_lists);

  return dom.mlp->Forward(ag::ConcatCols(
      ag::ConcatCols(u, v), ag::ConcatCols(target_interest, cross_interest)));
}

float MinetModel::TrainStep(const LabeledBatch& batch_z,
                            const LabeledBatch& batch_zbar) {
  ag::Tensor lz, lzbar;
  if (!batch_z.empty()) {
    lz = ag::BceWithLogits(
        Logits(DomainSide::kZ, batch_z.users, batch_z.items), batch_z.labels);
  }
  if (!batch_zbar.empty()) {
    lzbar = ag::BceWithLogits(
        Logits(DomainSide::kZbar, batch_zbar.users, batch_zbar.items),
        batch_zbar.labels);
  }
  const ag::Tensor total = CombineLosses(lz, lzbar);
  if (!total.defined()) return 0.f;
  return ApplyStep(total);
}

std::vector<float> MinetModel::Score(DomainSide side,
                                     const std::vector<int>& users,
                                     const std::vector<int>& items) {
  ag::NoGradGuard no_grad;
  return ReadLogits(Logits(side, users, items));
}

// ------------------------------------------------------------ GaDtcdrModel

GaDtcdrModel::GaDtcdrModel(const ScenarioView& view, const CommonHyper& hyper,
                           float lr)
    : BaselineBase(view, hyper.seed) {
  const int d = hyper.embed_dim;
  auto init_domain = [&](Domain* dom, const DomainData& data,
                         const InteractionGraph& graph,
                         const std::string& prefix) {
    dom->user_emb = store_.Register(
        prefix + ".user", Matrix::Gaussian(data.num_users, d, &rng_, 0.f, 0.1f));
    dom->item_emb = store_.Register(
        prefix + ".item", Matrix::Gaussian(data.num_items, d, &rng_, 0.f, 0.1f));
    dom->encoder = std::make_unique<HeteroGraphEncoder>(&store_, prefix, d,
                                                        /*num_layers=*/2, &rng_);
    dom->adj_ui = graph.NormalizedUserItemAdj();
    dom->adj_iu = graph.NormalizedItemUserAdj();
    dom->map_other = std::make_unique<ag::Linear>(&store_, prefix + ".map", d,
                                                  d, &rng_);
    dom->gate = std::make_unique<ag::Linear>(&store_, prefix + ".gate", 2 * d,
                                             d, &rng_);
    std::vector<int> dims = {2 * d};
    dims.reserve(hyper.mlp_hidden.size() + 2);
    for (int hdim : hyper.mlp_hidden) dims.push_back(hdim);
    dims.push_back(1);
    dom->mlp = std::make_unique<ag::Mlp>(&store_, prefix + ".mlp", dims, &rng_);
  };
  init_domain(&z_, view.scenario->z, *view.train_graph_z, "z");
  init_domain(&zbar_, view.scenario->zbar, *view.train_graph_zbar, "zbar");
  z_.self_index = &view.scenario->z_to_zbar;
  zbar_.self_index = &view.scenario->zbar_to_z;
  FinishInit(lr);
}

ag::Tensor GaDtcdrModel::FusedUsers(Domain& dom, const ag::Tensor& own_reps,
                                    const ag::Tensor& other_reps) const {
  const int n = own_reps.rows();
  std::vector<int> idx(n, 0);
  Matrix mask(n, 1), inv_mask(n, 1, 1.f);
  for (int u = 0; u < n; ++u) {
    const int m = (*dom.self_index)[u];
    if (m >= 0) {
      idx[u] = m;
      mask.At(u, 0) = 1.f;
      inv_mask.At(u, 0) = 0.f;
    }
  }
  const ag::Tensor mapped =
      dom.map_other->Forward(ag::Embedding(other_reps, idx));
  // Element-wise attention between the two domain embeddings (the paper's
  // pairwise attention-based sharing), applied only to overlapped users.
  const ag::Tensor gate =
      ag::Sigmoid(dom.gate->Forward(ag::ConcatCols(own_reps, mapped)));
  const ag::Tensor fused = ag::Add(ag::Hadamard(gate, own_reps),
                                   ag::Hadamard(ag::OneMinus(gate), mapped));
  return ag::Add(ag::ScaleRows(fused, ag::Tensor(std::move(mask))),
                 ag::ScaleRows(own_reps, ag::Tensor(std::move(inv_mask))));
}

void GaDtcdrModel::ForwardBoth(ag::Tensor* fused_z, ag::Tensor* fused_zbar) {
  const ag::Tensor reps_z =
      z_.encoder->Forward(z_.user_emb, z_.item_emb, z_.adj_ui, z_.adj_iu);
  const ag::Tensor reps_zbar =
      zbar_.encoder->Forward(zbar_.user_emb, zbar_.item_emb, zbar_.adj_ui, zbar_.adj_iu);
  *fused_z = FusedUsers(z_, reps_z, reps_zbar);
  *fused_zbar = FusedUsers(zbar_, reps_zbar, reps_z);
}

float GaDtcdrModel::TrainStep(const LabeledBatch& batch_z,
                              const LabeledBatch& batch_zbar) {
  if (batch_z.empty() && batch_zbar.empty()) return 0.f;
  ag::Tensor fused_z, fused_zbar;
  ForwardBoth(&fused_z, &fused_zbar);
  ag::Tensor lz, lzbar;
  // NeuMF-style head per the original GA-DTCDR: inner product + MLP.
  auto logits_for = [](const Domain& dom, const ag::Tensor& fused,
                       const LabeledBatch& batch) {
    const ag::Tensor u = ag::Embedding(fused, batch.users);
    const ag::Tensor v = ag::Embedding(dom.item_emb, batch.items);
    return ag::Add(ag::RowDot(u, v), dom.mlp->Forward(ag::ConcatCols(u, v)));
  };
  if (!batch_z.empty()) {
    lz = ag::BceWithLogits(logits_for(z_, fused_z, batch_z), batch_z.labels);
  }
  if (!batch_zbar.empty()) {
    lzbar = ag::BceWithLogits(logits_for(zbar_, fused_zbar, batch_zbar),
                              batch_zbar.labels);
  }
  const ag::Tensor total = CombineLosses(lz, lzbar);
  reps_dirty_ = true;
  return ApplyStep(total);
}

void GaDtcdrModel::RefreshEvalReps() {
  if (!reps_dirty_) return;
  ag::NoGradGuard no_grad;
  ag::Tensor fused_z, fused_zbar;
  ForwardBoth(&fused_z, &fused_zbar);
  cached_z_ = fused_z.value();
  cached_zbar_ = fused_zbar.value();
  reps_dirty_ = false;
}

std::vector<float> GaDtcdrModel::Score(DomainSide side,
                                       const std::vector<int>& users,
                                       const std::vector<int>& items) {
  RefreshEvalReps();
  ag::NoGradGuard no_grad;
  Domain& dom = side == DomainSide::kZ ? z_ : zbar_;
  const Matrix& reps = side == DomainSide::kZ ? cached_z_ : cached_zbar_;
  const ag::Tensor u{GatherRows(reps, users)};
  const ag::Tensor v{GatherRows(dom.item_emb.value(), items)};
  return ReadLogits(
      ag::Add(ag::RowDot(u, v), dom.mlp->Forward(ag::ConcatCols(u, v))));
}

}  // namespace nmcdr
