#include "baselines/single_domain.h"

#include "util/check.h"

namespace nmcdr {
namespace {

ag::Tensor EmbeddingTable(ag::ParameterStore* store, const std::string& name,
                          int rows, int dim, Rng* rng) {
  return store->Register(name, Matrix::Gaussian(rows, dim, rng, 0.f, 0.1f));
}

/// Combines per-domain losses that may be undefined (empty batches).
ag::Tensor CombineLosses(const ag::Tensor& a, const ag::Tensor& b) {
  if (a.defined() && b.defined()) return ag::Add(a, b);
  return a.defined() ? a : b;
}

}  // namespace

// ---------------------------------------------------------------- LrModel

LrModel::LrModel(const ScenarioView& view, const CommonHyper& hyper, float lr)
    : BaselineBase(view, hyper.seed) {
  auto init_domain = [&](Domain* dom, const DomainData& data,
                         const std::string& prefix) {
    dom->user_emb = EmbeddingTable(&store_, prefix + ".user", data.num_users,
                                   hyper.embed_dim, &rng_);
    dom->item_emb = EmbeddingTable(&store_, prefix + ".item", data.num_items,
                                   hyper.embed_dim, &rng_);
    std::vector<int> dims = {2 * hyper.embed_dim};
    dims.reserve(hyper.mlp_hidden.size() + 2);
    for (int h : hyper.mlp_hidden) dims.push_back(h);
    dims.push_back(1);
    dom->mlp = std::make_unique<ag::Mlp>(&store_, prefix + ".mlp", dims, &rng_);
  };
  init_domain(&z_, view.scenario->z, "z");
  init_domain(&zbar_, view.scenario->zbar, "zbar");
  FinishInit(lr);
}

ag::Tensor LrModel::Logits(Domain& dom, const std::vector<int>& users,
                           const std::vector<int>& items) const {
  const ag::Tensor u = ag::Embedding(dom.user_emb, users);
  const ag::Tensor v = ag::Embedding(dom.item_emb, items);
  return dom.mlp->Forward(ag::ConcatCols(u, v));
}

float LrModel::TrainStep(const LabeledBatch& batch_z,
                         const LabeledBatch& batch_zbar) {
  ag::Tensor loss_z, loss_zbar;
  if (!batch_z.empty()) {
    loss_z = ag::BceWithLogits(Logits(z_, batch_z.users, batch_z.items),
                               batch_z.labels);
  }
  if (!batch_zbar.empty()) {
    loss_zbar = ag::BceWithLogits(
        Logits(zbar_, batch_zbar.users, batch_zbar.items), batch_zbar.labels);
  }
  const ag::Tensor total = CombineLosses(loss_z, loss_zbar);
  if (!total.defined()) return 0.f;
  return ApplyStep(total);
}

std::vector<float> LrModel::Score(DomainSide side,
                                  const std::vector<int>& users,
                                  const std::vector<int>& items) {
  ag::NoGradGuard no_grad;
  Domain& dom = side == DomainSide::kZ ? z_ : zbar_;
  const ag::Tensor logits = Logits(dom, users, items);
  std::vector<float> out(users.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = logits.value().At(static_cast<int>(i), 0);
  }
  return out;
}

// --------------------------------------------------------------- BprModel

BprModel::BprModel(const ScenarioView& view, const CommonHyper& hyper,
                   float lr)
    : BaselineBase(view, hyper.seed) {
  z_.user_emb = EmbeddingTable(&store_, "z.user", view.scenario->z.num_users,
                               hyper.embed_dim, &rng_);
  z_.item_emb = EmbeddingTable(&store_, "z.item", view.scenario->z.num_items,
                               hyper.embed_dim, &rng_);
  zbar_.user_emb = EmbeddingTable(
      &store_, "zbar.user", view.scenario->zbar.num_users, hyper.embed_dim,
      &rng_);
  zbar_.item_emb = EmbeddingTable(
      &store_, "zbar.item", view.scenario->zbar.num_items, hyper.embed_dim,
      &rng_);
  FinishInit(lr);
}

float BprModel::TrainStep(const LabeledBatch& batch_z,
                          const LabeledBatch& batch_zbar) {
  ag::Tensor total;
  const LabeledBatch* batches[2] = {&batch_z, &batch_zbar};
  Domain* doms[2] = {&z_, &zbar_};
  for (int s = 0; s < 2; ++s) {
    std::vector<int> pu, pi, ni;
    if (!SplitPairwise(*batches[s], &pu, &pi, &ni)) continue;
    const ag::Tensor u = ag::Embedding(doms[s]->user_emb, pu);
    const ag::Tensor pos = ag::RowDot(u, ag::Embedding(doms[s]->item_emb, pi));
    const ag::Tensor neg = ag::RowDot(u, ag::Embedding(doms[s]->item_emb, ni));
    const ag::Tensor loss = ag::BprLoss(pos, neg);
    total = total.defined() ? ag::Add(total, loss) : loss;
  }
  if (!total.defined()) return 0.f;
  return ApplyStep(total);
}

std::vector<float> BprModel::Score(DomainSide side,
                                   const std::vector<int>& users,
                                   const std::vector<int>& items) {
  ag::NoGradGuard no_grad;
  Domain& dom = side == DomainSide::kZ ? z_ : zbar_;
  const ag::Tensor scores = ag::RowDot(ag::Embedding(dom.user_emb, users),
                                       ag::Embedding(dom.item_emb, items));
  std::vector<float> out(users.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = scores.value().At(static_cast<int>(i), 0);
  }
  return out;
}

// ------------------------------------------------------------- NeuMfModel

NeuMfModel::NeuMfModel(const ScenarioView& view, const CommonHyper& hyper,
                       float lr)
    : BaselineBase(view, hyper.seed) {
  auto init_domain = [&](Domain* dom, const DomainData& data,
                         const std::string& prefix) {
    const int d = hyper.embed_dim;
    dom->gmf_user =
        EmbeddingTable(&store_, prefix + ".gmf_u", data.num_users, d, &rng_);
    dom->gmf_item =
        EmbeddingTable(&store_, prefix + ".gmf_v", data.num_items, d, &rng_);
    dom->mlp_user =
        EmbeddingTable(&store_, prefix + ".mlp_u", data.num_users, d, &rng_);
    dom->mlp_item =
        EmbeddingTable(&store_, prefix + ".mlp_v", data.num_items, d, &rng_);
    std::vector<int> dims = {2 * d};
    dims.reserve(hyper.mlp_hidden.size() + 1);
    for (int h : hyper.mlp_hidden) dims.push_back(h);
    dom->mlp = std::make_unique<ag::Mlp>(&store_, prefix + ".mlp", dims, &rng_);
    dom->fuse = std::make_unique<ag::Linear>(
        &store_, prefix + ".fuse", d + dims.back(), 1, &rng_);
  };
  init_domain(&z_, view.scenario->z, "z");
  init_domain(&zbar_, view.scenario->zbar, "zbar");
  FinishInit(lr);
}

ag::Tensor NeuMfModel::Logits(Domain& dom, const std::vector<int>& users,
                              const std::vector<int>& items) const {
  const ag::Tensor gmf = ag::Hadamard(ag::Embedding(dom.gmf_user, users),
                                      ag::Embedding(dom.gmf_item, items));
  const ag::Tensor mlp_in = ag::ConcatCols(ag::Embedding(dom.mlp_user, users),
                                           ag::Embedding(dom.mlp_item, items));
  const ag::Tensor mlp_out = ag::Relu(dom.mlp->Forward(mlp_in));
  return dom.fuse->Forward(ag::ConcatCols(gmf, mlp_out));
}

float NeuMfModel::TrainStep(const LabeledBatch& batch_z,
                            const LabeledBatch& batch_zbar) {
  ag::Tensor loss_z, loss_zbar;
  if (!batch_z.empty()) {
    loss_z = ag::BceWithLogits(Logits(z_, batch_z.users, batch_z.items),
                               batch_z.labels);
  }
  if (!batch_zbar.empty()) {
    loss_zbar = ag::BceWithLogits(
        Logits(zbar_, batch_zbar.users, batch_zbar.items), batch_zbar.labels);
  }
  const ag::Tensor total = CombineLosses(loss_z, loss_zbar);
  if (!total.defined()) return 0.f;
  return ApplyStep(total);
}

std::vector<float> NeuMfModel::Score(DomainSide side,
                                     const std::vector<int>& users,
                                     const std::vector<int>& items) {
  ag::NoGradGuard no_grad;
  Domain& dom = side == DomainSide::kZ ? z_ : zbar_;
  const ag::Tensor logits = Logits(dom, users, items);
  std::vector<float> out(users.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = logits.value().At(static_cast<int>(i), 0);
  }
  return out;
}

}  // namespace nmcdr
