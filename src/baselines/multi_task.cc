#include "baselines/multi_task.h"

#include "util/check.h"

namespace nmcdr {
namespace {

std::vector<int> TowerDims(int in, const std::vector<int>& hidden) {
  std::vector<int> dims = {in};
  dims.reserve(hidden.size() + 2);
  for (int h : hidden) dims.push_back(h);
  dims.push_back(1);
  return dims;
}

std::vector<int> MapToUnion(const std::vector<int>& users,
                            const std::vector<int>& to_union) {
  std::vector<int> out(users.size());
  for (size_t i = 0; i < users.size(); ++i) out[i] = to_union[users[i]];
  return out;
}

/// Softmax-gated mixture of `experts` applied to `x`, with gate `gate`.
ag::Tensor ExpertMixture(
    const ag::Tensor& x, const ag::Linear& gate,
    const std::vector<const ag::Linear*>& experts) {
  const ag::Tensor weights = ag::SoftmaxRows(gate.Forward(x));
  ag::Tensor mixed;
  for (size_t k = 0; k < experts.size(); ++k) {
    const ag::Tensor out = ag::Relu(experts[k]->Forward(x));
    const ag::Tensor scaled =
        ag::ScaleRows(out, ag::SliceCols(weights, static_cast<int>(k), 1));
    mixed = mixed.defined() ? ag::Add(mixed, scaled) : scaled;
  }
  return mixed;
}

ag::Tensor CombineLosses(const ag::Tensor& a, const ag::Tensor& b) {
  if (a.defined() && b.defined()) return ag::Add(a, b);
  return a.defined() ? a : b;
}

}  // namespace

// --------------------------------------------------------------- MmoeModel

MmoeModel::MmoeModel(const ScenarioView& view, const CommonHyper& hyper,
                     float lr)
    : BaselineBase(view, hyper.seed),
      shared_(BuildSharedUserIndex(*view.scenario)) {
  const int d = hyper.embed_dim;
  user_emb = store_.Register(
      "user", Matrix::Gaussian(shared_.num_union, d, &rng_, 0.f, 0.1f));
  item_emb_z = store_.Register(
      "item_z",
      Matrix::Gaussian(view.scenario->z.num_items, d, &rng_, 0.f, 0.1f));
  item_emb_zbar = store_.Register(
      "item_zbar",
      Matrix::Gaussian(view.scenario->zbar.num_items, d, &rng_, 0.f, 0.1f));
  experts_.reserve(kNumExperts);
  for (int k = 0; k < kNumExperts; ++k) {
    experts_.push_back(std::make_unique<ag::Linear>(
        &store_, "expert" + std::to_string(k), 2 * d, d, &rng_));
  }
  gate_z_ =
      std::make_unique<ag::Linear>(&store_, "gate_z", 2 * d, kNumExperts,
                                   &rng_);
  gate_zbar_ = std::make_unique<ag::Linear>(&store_, "gate_zbar", 2 * d,
                                            kNumExperts, &rng_);
  tower_z_ = std::make_unique<ag::Mlp>(&store_, "tower_z",
                                       TowerDims(d, hyper.mlp_hidden), &rng_);
  tower_zbar_ = std::make_unique<ag::Mlp>(
      &store_, "tower_zbar", TowerDims(d, hyper.mlp_hidden), &rng_);
  FinishInit(lr);
}

ag::Tensor MmoeModel::Logits(DomainSide side, const std::vector<int>& users,
                             const std::vector<int>& items) const {
  const bool is_z = side == DomainSide::kZ;
  const std::vector<int> union_ids = MapToUnion(
      users, is_z ? shared_.z_to_union : shared_.zbar_to_union);
  const ag::Tensor u = ag::Embedding(user_emb, union_ids);
  const ag::Tensor v =
      ag::Embedding(is_z ? item_emb_z : item_emb_zbar, items);
  const ag::Tensor x = ag::ConcatCols(u, v);
  std::vector<const ag::Linear*> experts;
  experts.reserve(experts_.size());
  for (const auto& e : experts_) experts.push_back(e.get());
  const ag::Tensor mixed =
      ExpertMixture(x, is_z ? *gate_z_ : *gate_zbar_, experts);
  return (is_z ? tower_z_ : tower_zbar_)->Forward(mixed);
}

float MmoeModel::TrainStep(const LabeledBatch& batch_z,
                           const LabeledBatch& batch_zbar) {
  ag::Tensor lz, lzbar;
  if (!batch_z.empty()) {
    lz = ag::BceWithLogits(Logits(DomainSide::kZ, batch_z.users,
                                  batch_z.items),
                           batch_z.labels);
  }
  if (!batch_zbar.empty()) {
    lzbar = ag::BceWithLogits(Logits(DomainSide::kZbar, batch_zbar.users,
                                     batch_zbar.items),
                              batch_zbar.labels);
  }
  const ag::Tensor total = CombineLosses(lz, lzbar);
  if (!total.defined()) return 0.f;
  return ApplyStep(total);
}

std::vector<float> MmoeModel::Score(DomainSide side,
                                    const std::vector<int>& users,
                                    const std::vector<int>& items) {
  ag::NoGradGuard no_grad;
  const ag::Tensor logits = Logits(side, users, items);
  std::vector<float> out(users.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = logits.value().At(static_cast<int>(i), 0);
  }
  return out;
}

// ---------------------------------------------------------------- PleModel

PleModel::PleModel(const ScenarioView& view, const CommonHyper& hyper,
                   float lr)
    : BaselineBase(view, hyper.seed),
      shared_(BuildSharedUserIndex(*view.scenario)) {
  const int d = hyper.embed_dim;
  user_emb = store_.Register(
      "user", Matrix::Gaussian(shared_.num_union, d, &rng_, 0.f, 0.1f));
  item_emb_z = store_.Register(
      "item_z",
      Matrix::Gaussian(view.scenario->z.num_items, d, &rng_, 0.f, 0.1f));
  item_emb_zbar = store_.Register(
      "item_zbar",
      Matrix::Gaussian(view.scenario->zbar.num_items, d, &rng_, 0.f, 0.1f));
  shared_experts_.reserve(kSharedExperts);
  for (int k = 0; k < kSharedExperts; ++k) {
    shared_experts_.push_back(std::make_unique<ag::Linear>(
        &store_, "shared_expert" + std::to_string(k), 2 * d, d, &rng_));
  }
  experts_z_.reserve(kTaskExperts);
  experts_zbar_.reserve(kTaskExperts);
  for (int k = 0; k < kTaskExperts; ++k) {
    experts_z_.push_back(std::make_unique<ag::Linear>(
        &store_, "expert_z" + std::to_string(k), 2 * d, d, &rng_));
    experts_zbar_.push_back(std::make_unique<ag::Linear>(
        &store_, "expert_zbar" + std::to_string(k), 2 * d, d, &rng_));
  }
  const int gate_width = kSharedExperts + kTaskExperts;
  gate_z_ = std::make_unique<ag::Linear>(&store_, "gate_z", 2 * d, gate_width,
                                         &rng_);
  gate_zbar_ = std::make_unique<ag::Linear>(&store_, "gate_zbar", 2 * d,
                                            gate_width, &rng_);
  tower_z_ = std::make_unique<ag::Mlp>(&store_, "tower_z",
                                       TowerDims(d, hyper.mlp_hidden), &rng_);
  tower_zbar_ = std::make_unique<ag::Mlp>(
      &store_, "tower_zbar", TowerDims(d, hyper.mlp_hidden), &rng_);
  FinishInit(lr);
}

ag::Tensor PleModel::Logits(DomainSide side, const std::vector<int>& users,
                            const std::vector<int>& items) const {
  const bool is_z = side == DomainSide::kZ;
  const std::vector<int> union_ids = MapToUnion(
      users, is_z ? shared_.z_to_union : shared_.zbar_to_union);
  const ag::Tensor u = ag::Embedding(user_emb, union_ids);
  const ag::Tensor v =
      ag::Embedding(is_z ? item_emb_z : item_emb_zbar, items);
  const ag::Tensor x = ag::ConcatCols(u, v);
  // Progressive extraction: the task gate addresses its own experts first,
  // then the shared pool.
  std::vector<const ag::Linear*> experts;
  experts.reserve(kTaskExperts + kSharedExperts);
  for (const auto& e : (is_z ? experts_z_ : experts_zbar_)) {
    experts.push_back(e.get());
  }
  for (const auto& e : shared_experts_) experts.push_back(e.get());
  const ag::Tensor mixed =
      ExpertMixture(x, is_z ? *gate_z_ : *gate_zbar_, experts);
  return (is_z ? tower_z_ : tower_zbar_)->Forward(mixed);
}

float PleModel::TrainStep(const LabeledBatch& batch_z,
                          const LabeledBatch& batch_zbar) {
  ag::Tensor lz, lzbar;
  if (!batch_z.empty()) {
    lz = ag::BceWithLogits(Logits(DomainSide::kZ, batch_z.users,
                                  batch_z.items),
                           batch_z.labels);
  }
  if (!batch_zbar.empty()) {
    lzbar = ag::BceWithLogits(Logits(DomainSide::kZbar, batch_zbar.users,
                                     batch_zbar.items),
                              batch_zbar.labels);
  }
  const ag::Tensor total = CombineLosses(lz, lzbar);
  if (!total.defined()) return 0.f;
  return ApplyStep(total);
}

std::vector<float> PleModel::Score(DomainSide side,
                                   const std::vector<int>& users,
                                   const std::vector<int>& items) {
  ag::NoGradGuard no_grad;
  const ag::Tensor logits = Logits(side, users, items);
  std::vector<float> out(users.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = logits.value().At(static_cast<int>(i), 0);
  }
  return out;
}

}  // namespace nmcdr
