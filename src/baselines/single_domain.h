#ifndef NMCDR_BASELINES_SINGLE_DOMAIN_H_
#define NMCDR_BASELINES_SINGLE_DOMAIN_H_

#include <string>
#include <vector>

#include "baselines/common.h"

namespace nmcdr {

/// LR [29] as instantiated by the paper's baseline list: embeddings +
/// stacked MLPs over [u || v] with pointwise BCE, trained per domain with
/// no cross-domain sharing.
class LrModel : public BaselineBase {
 public:
  LrModel(const ScenarioView& view, const CommonHyper& hyper, float lr);
  std::string name() const override { return "LR"; }
  float TrainStep(const LabeledBatch& batch_z,
                  const LabeledBatch& batch_zbar) override;
  std::vector<float> Score(DomainSide side, const std::vector<int>& users,
                           const std::vector<int>& items) override;

 private:
  struct Domain {
    ag::Tensor user_emb, item_emb;
    std::unique_ptr<ag::Mlp> mlp;
  };
  ag::Tensor Logits(Domain& dom, const std::vector<int>& users,
                    const std::vector<int>& items) const;
  Domain z_, zbar_;
};

/// BPR [26]: matrix factorization with the Bayesian personalized ranking
/// pairwise loss, per domain.
class BprModel : public BaselineBase {
 public:
  BprModel(const ScenarioView& view, const CommonHyper& hyper, float lr);
  std::string name() const override { return "BPR"; }
  float TrainStep(const LabeledBatch& batch_z,
                  const LabeledBatch& batch_zbar) override;
  std::vector<float> Score(DomainSide side, const std::vector<int>& users,
                           const std::vector<int>& items) override;

 private:
  struct Domain {
    ag::Tensor user_emb, item_emb;
  };
  Domain z_, zbar_;
};

/// NeuMF [25]: GMF (elementwise-product path) + MLP path with a fused
/// output layer, per domain, pointwise BCE.
class NeuMfModel : public BaselineBase {
 public:
  NeuMfModel(const ScenarioView& view, const CommonHyper& hyper, float lr);
  std::string name() const override { return "NeuMF"; }
  float TrainStep(const LabeledBatch& batch_z,
                  const LabeledBatch& batch_zbar) override;
  std::vector<float> Score(DomainSide side, const std::vector<int>& users,
                           const std::vector<int>& items) override;

 private:
  struct Domain {
    ag::Tensor gmf_user, gmf_item, mlp_user, mlp_item;
    std::unique_ptr<ag::Mlp> mlp;
    std::unique_ptr<ag::Linear> fuse;  // [gmf_dim + mlp_out] -> 1
  };
  ag::Tensor Logits(Domain& dom, const std::vector<int>& users,
                    const std::vector<int>& items) const;
  Domain z_, zbar_;
};

}  // namespace nmcdr

#endif  // NMCDR_BASELINES_SINGLE_DOMAIN_H_
