#include "baselines/partial_overlap.h"

#include "util/check.h"

namespace nmcdr {
namespace {

ag::Tensor CombineLosses(const ag::Tensor& a, const ag::Tensor& b) {
  if (a.defined() && b.defined()) return ag::Add(a, b);
  return a.defined() ? a : b;
}

std::vector<float> ReadLogits(const ag::Tensor& logits) {
  std::vector<float> out(logits.rows());
  for (int i = 0; i < logits.rows(); ++i) out[i] = logits.value().At(i, 0);
  return out;
}

std::vector<int> MlpDims(int in, const std::vector<int>& hidden) {
  std::vector<int> dims = {in};
  dims.reserve(hidden.size() + 2);
  for (int h : hidden) dims.push_back(h);
  dims.push_back(1);
  return dims;
}

}  // namespace

// ---------------------------------------------------------------- DmlModel

DmlModel::DmlModel(const ScenarioView& view, const CommonHyper& hyper,
                   float lr)
    : BaselineBase(view, hyper.seed) {
  const int d = hyper.embed_dim;
  user_z_ = store_.Register(
      "z.user",
      Matrix::Gaussian(view.scenario->z.num_users, d, &rng_, 0.f, 0.1f));
  item_z_ = store_.Register(
      "z.item",
      Matrix::Gaussian(view.scenario->z.num_items, d, &rng_, 0.f, 0.1f));
  user_zbar_ = store_.Register(
      "zbar.user",
      Matrix::Gaussian(view.scenario->zbar.num_users, d, &rng_, 0.f, 0.1f));
  item_zbar_ = store_.Register(
      "zbar.item",
      Matrix::Gaussian(view.scenario->zbar.num_items, d, &rng_, 0.f, 0.1f));
  mapping_ = store_.Register("mapping", Matrix::Identity(d));
  FinishInit(lr);
}

ag::Tensor DmlModel::EnhancedUsers(DomainSide side,
                                   const std::vector<int>& users) const {
  const bool is_z = side == DomainSide::kZ;
  const ag::Tensor& own = is_z ? user_z_ : user_zbar_;
  const ag::Tensor& other = is_z ? user_zbar_ : user_z_;
  const std::vector<int>& link = is_z ? view_.scenario->z_to_zbar
                                      : view_.scenario->zbar_to_z;
  std::vector<int> idx(users.size(), 0);
  Matrix mask(static_cast<int>(users.size()), 1);
  for (size_t i = 0; i < users.size(); ++i) {
    const int m = link[users[i]];
    if (m >= 0) {
      idx[i] = m;
      mask.At(static_cast<int>(i), 0) = 0.5f;  // mix weight for linked rows
    }
  }
  const ag::Tensor u = ag::Embedding(own, users);
  // Mapped counterpart: W maps Z -> Z̄, so Z users receive W^T u_z̄ and
  // Z̄ users receive W u_z (the dual directions of the metric learning).
  const ag::Tensor counterpart = ag::Embedding(other, idx);
  const ag::Tensor mapped =
      is_z ? ag::MatMul(counterpart, ag::Transpose(mapping_))
           : ag::MatMul(counterpart, mapping_);
  const ag::Tensor mixed = ag::ScaleRows(mapped, ag::Tensor(std::move(mask)));
  return ag::Add(u, mixed);
}

float DmlModel::TrainStep(const LabeledBatch& batch_z,
                          const LabeledBatch& batch_zbar) {
  ag::Tensor lz, lzbar;
  if (!batch_z.empty()) {
    const ag::Tensor scores =
        ag::RowDot(EnhancedUsers(DomainSide::kZ, batch_z.users),
                   ag::Embedding(item_z_, batch_z.items));
    lz = ag::BceWithLogits(scores, batch_z.labels);
  }
  if (!batch_zbar.empty()) {
    const ag::Tensor scores =
        ag::RowDot(EnhancedUsers(DomainSide::kZbar, batch_zbar.users),
                   ag::Embedding(item_zbar_, batch_zbar.items));
    lzbar = ag::BceWithLogits(scores, batch_zbar.labels);
  }
  ag::Tensor total = CombineLosses(lz, lzbar);
  if (!total.defined()) return 0.f;

  // Dual metric alignment on the visible overlapped pairs in this batch.
  std::vector<int> linked_z, linked_zbar;
  linked_z.reserve(batch_z.users.size());
  linked_zbar.reserve(batch_z.users.size());
  for (int u : batch_z.users) {
    const int m = view_.scenario->z_to_zbar[u];
    if (m >= 0) {
      linked_z.push_back(u);
      linked_zbar.push_back(m);
    }
  }
  if (!linked_z.empty()) {
    const ag::Tensor uz = ag::Embedding(user_z_, linked_z);
    const ag::Tensor uzbar = ag::Embedding(user_zbar_, linked_zbar);
    const ag::Tensor diff = ag::Sub(ag::MatMul(uz, mapping_), uzbar);
    const ag::Tensor align = ag::Scale(
        ag::SumSquares(diff), 1.f / static_cast<float>(linked_z.size()));
    total = ag::Add(total, ag::Scale(align, 0.5f));
  }
  // Orthogonality penalty keeps the mapping distance-preserving.
  const ag::Tensor gram = ag::MatMul(ag::Transpose(mapping_), mapping_);
  const ag::Tensor eye{Matrix::Identity(mapping_.cols())};
  total = ag::Add(total, ag::Scale(ag::SumSquares(ag::Sub(gram, eye)), 0.1f));
  return ApplyStep(total);
}

std::vector<float> DmlModel::Score(DomainSide side,
                                   const std::vector<int>& users,
                                   const std::vector<int>& items) {
  ag::NoGradGuard no_grad;
  const ag::Tensor& item_table = side == DomainSide::kZ ? item_z_ : item_zbar_;
  return ReadLogits(ag::RowDot(EnhancedUsers(side, users),
                               ag::Embedding(item_table, items)));
}

// ---------------------------------------------------------- HeroGraphModel

HeroGraphModel::HeroGraphModel(const ScenarioView& view,
                               const CommonHyper& hyper, float lr)
    : BaselineBase(view, hyper.seed),
      shared_(BuildSharedUserIndex(*view.scenario)) {
  const int d = hyper.embed_dim;
  const int items_z = view.scenario->z.num_items;
  const int items_zbar = view.scenario->zbar.num_items;
  item_offset_zbar_ = items_z;
  user_emb_ = store_.Register(
      "user", Matrix::Gaussian(shared_.num_union, d, &rng_, 0.f, 0.1f));
  item_emb_ = store_.Register(
      "item", Matrix::Gaussian(items_z + items_zbar, d, &rng_, 0.f, 0.1f));
  encoder_ = std::make_unique<HeteroGraphEncoder>(&store_, "global", d,
                                                  /*num_layers=*/2, &rng_);

  // Global adjacency: union users -> global item ids, both domains' train
  // edges, Laplacian-normalized by the user's GLOBAL degree — this is the
  // shared global graph that routes cross-domain information through
  // overlapped users.
  std::vector<std::vector<std::pair<int, float>>> rows(shared_.num_union);
  auto add_edges = [&](const InteractionGraph& graph,
                       const std::vector<int>& to_union, int offset) {
    for (int u = 0; u < graph.num_users(); ++u) {
      for (int v : graph.UserNeighbors(u)) {
        rows[to_union[u]].emplace_back(offset + v, 1.f);
      }
    }
  };
  add_edges(*view.train_graph_z, shared_.z_to_union, 0);
  add_edges(*view.train_graph_zbar, shared_.zbar_to_union, item_offset_zbar_);
  for (auto& row : rows) {
    if (row.empty()) continue;
    const float norm = 1.f / static_cast<float>(row.size());
    for (auto& [col, value] : row) value = norm;
  }
  adj_ui_ = std::make_shared<CsrMatrix>(shared_.num_union,
                                        items_z + items_zbar, rows);
  // Item -> union-user adjacency with item-degree normalization.
  std::vector<std::vector<std::pair<int, float>>> item_rows(items_z +
                                                            items_zbar);
  for (int u = 0; u < shared_.num_union; ++u) {
    for (const auto& [col, value] : rows[u]) item_rows[col].emplace_back(u, 1.f);
  }
  for (auto& row : item_rows) {
    if (row.empty()) continue;
    const float norm = 1.f / static_cast<float>(row.size());
    for (auto& [col, value] : row) value = norm;
  }
  adj_iu_ = std::make_shared<CsrMatrix>(items_z + items_zbar,
                                        shared_.num_union, item_rows);

  mlp_z_ = std::make_unique<ag::Mlp>(&store_, "mlp_z",
                                     MlpDims(2 * d, hyper.mlp_hidden), &rng_);
  mlp_zbar_ = std::make_unique<ag::Mlp>(
      &store_, "mlp_zbar", MlpDims(2 * d, hyper.mlp_hidden), &rng_);
  FinishInit(lr);
}

ag::Tensor HeroGraphModel::GlobalUserReps() const {
  return encoder_->Forward(user_emb_, item_emb_, adj_ui_, adj_iu_);
}

std::vector<int> HeroGraphModel::ToUnion(DomainSide side,
                                         const std::vector<int>& users) const {
  const std::vector<int>& map = side == DomainSide::kZ
                                    ? shared_.z_to_union
                                    : shared_.zbar_to_union;
  std::vector<int> out(users.size());
  for (size_t i = 0; i < users.size(); ++i) out[i] = map[users[i]];
  return out;
}

std::vector<int> HeroGraphModel::ToGlobalItems(
    DomainSide side, const std::vector<int>& items) const {
  const int offset = side == DomainSide::kZ ? 0 : item_offset_zbar_;
  std::vector<int> out(items.size());
  for (size_t i = 0; i < items.size(); ++i) out[i] = items[i] + offset;
  return out;
}

float HeroGraphModel::TrainStep(const LabeledBatch& batch_z,
                                const LabeledBatch& batch_zbar) {
  if (batch_z.empty() && batch_zbar.empty()) return 0.f;
  const ag::Tensor reps = GlobalUserReps();
  ag::Tensor lz, lzbar;
  // Inner-product matching of global reps plus the domain MLP refinement.
  auto logits_for = [this, &reps](DomainSide side, ag::Mlp* mlp,
                                  const LabeledBatch& batch) {
    const ag::Tensor u = ag::Embedding(reps, ToUnion(side, batch.users));
    const ag::Tensor v =
        ag::Embedding(item_emb_, ToGlobalItems(side, batch.items));
    return ag::Add(ag::RowDot(u, v), mlp->Forward(ag::ConcatCols(u, v)));
  };
  if (!batch_z.empty()) {
    lz = ag::BceWithLogits(logits_for(DomainSide::kZ, mlp_z_.get(), batch_z),
                           batch_z.labels);
  }
  if (!batch_zbar.empty()) {
    lzbar = ag::BceWithLogits(
        logits_for(DomainSide::kZbar, mlp_zbar_.get(), batch_zbar),
        batch_zbar.labels);
  }
  reps_dirty_ = true;
  return ApplyStep(CombineLosses(lz, lzbar));
}

void HeroGraphModel::RefreshEvalReps() {
  if (!reps_dirty_) return;
  ag::NoGradGuard no_grad;
  cached_users_ = GlobalUserReps().value();
  reps_dirty_ = false;
}

std::vector<float> HeroGraphModel::Score(DomainSide side,
                                         const std::vector<int>& users,
                                         const std::vector<int>& items) {
  RefreshEvalReps();
  ag::NoGradGuard no_grad;
  const ag::Tensor user_rows{
      GatherRows(cached_users_, ToUnion(side, users))};
  const ag::Tensor item_rows{
      GatherRows(item_emb_.value(), ToGlobalItems(side, items))};
  ag::Mlp* mlp = side == DomainSide::kZ ? mlp_z_.get() : mlp_zbar_.get();
  return ReadLogits(
      ag::Add(ag::RowDot(user_rows, item_rows),
              mlp->Forward(ag::ConcatCols(user_rows, item_rows))));
}

// ------------------------------------------------------------ PtupcdrModel

PtupcdrModel::PtupcdrModel(const ScenarioView& view, const CommonHyper& hyper,
                           float lr)
    : BaselineBase(view, hyper.seed) {
  const int d = hyper.embed_dim;
  auto init_domain = [&](Domain* dom, const DomainData& data,
                         const std::string& prefix) {
    dom->user_emb = store_.Register(
        prefix + ".user", Matrix::Gaussian(data.num_users, d, &rng_, 0.f, 0.1f));
    dom->item_emb = store_.Register(
        prefix + ".item", Matrix::Gaussian(data.num_items, d, &rng_, 0.f, 0.1f));
    // Meta network: source profile -> personalized (scale, shift) bridge.
    dom->meta = std::make_unique<ag::Mlp>(
        &store_, prefix + ".meta", std::vector<int>{d, 2 * d, 2 * d}, &rng_);
    dom->mlp = std::make_unique<ag::Mlp>(&store_, prefix + ".mlp",
                                         MlpDims(2 * d, hyper.mlp_hidden),
                                         &rng_);
  };
  init_domain(&z_, view.scenario->z, "z");
  init_domain(&zbar_, view.scenario->zbar, "zbar");
  history_z_ = BuildUserHistories(*view.train_graph_z);
  history_zbar_ = BuildUserHistories(*view.train_graph_zbar);
  FinishInit(lr);
}

ag::Tensor PtupcdrModel::EffectiveUsers(DomainSide side,
                                        const std::vector<int>& users) const {
  const bool is_z = side == DomainSide::kZ;
  const Domain& dom = is_z ? z_ : zbar_;
  const Domain& other = is_z ? zbar_ : z_;
  const auto& other_history = is_z ? history_zbar_ : history_z_;
  const std::vector<int>& link = is_z ? view_.scenario->z_to_zbar
                                      : view_.scenario->zbar_to_z;
  const int d = dom.user_emb.cols();

  // Source profile p_u: mean of the linked user's source-domain history
  // (the characteristic encoder); zero rows for unlinked users.
  auto profiles = std::make_shared<std::vector<std::vector<int>>>();
  profiles->reserve(users.size());
  std::vector<int> idx(users.size(), 0);
  Matrix mask(static_cast<int>(users.size()), 1);
  for (size_t i = 0; i < users.size(); ++i) {
    const int m = link[users[i]];
    if (m >= 0) {
      idx[i] = m;
      mask.At(static_cast<int>(i), 0) = 0.5f;  // mix weight of the bridge
      profiles->push_back((*other_history)[m]);
    } else {
      profiles->push_back({});
    }
  }
  const ag::Tensor profile = ag::SegmentMeanRows(other.item_emb, profiles);
  const ag::Tensor bridge = dom.meta->Forward(profile);  // [B, 2D]
  const ag::Tensor scale = ag::Tanh(ag::SliceCols(bridge, 0, d));
  const ag::Tensor shift = ag::SliceCols(bridge, d, d);
  // Personalized bridge applied to the source user embedding.
  const ag::Tensor source_emb = ag::Embedding(other.user_emb, idx);
  const ag::Tensor mapped =
      ag::Add(ag::Hadamard(scale, source_emb), shift);
  const ag::Tensor gated = ag::ScaleRows(mapped, ag::Tensor(std::move(mask)));
  return ag::Add(ag::Embedding(dom.user_emb, users), gated);
}

float PtupcdrModel::TrainStep(const LabeledBatch& batch_z,
                              const LabeledBatch& batch_zbar) {
  ag::Tensor lz, lzbar;
  // Original PTUPCDR scores the (bridged) user embedding against the item
  // embedding by inner product; the small MLP refines it.
  auto logits_for = [this](const Domain& dom, DomainSide side,
                           const LabeledBatch& batch) {
    const ag::Tensor u = EffectiveUsers(side, batch.users);
    const ag::Tensor v = ag::Embedding(dom.item_emb, batch.items);
    return ag::Add(ag::RowDot(u, v), dom.mlp->Forward(ag::ConcatCols(u, v)));
  };
  if (!batch_z.empty()) {
    lz = ag::BceWithLogits(logits_for(z_, DomainSide::kZ, batch_z),
                           batch_z.labels);
  }
  if (!batch_zbar.empty()) {
    lzbar = ag::BceWithLogits(logits_for(zbar_, DomainSide::kZbar, batch_zbar),
                              batch_zbar.labels);
  }
  const ag::Tensor total = CombineLosses(lz, lzbar);
  if (!total.defined()) return 0.f;
  return ApplyStep(total);
}

std::vector<float> PtupcdrModel::Score(DomainSide side,
                                       const std::vector<int>& users,
                                       const std::vector<int>& items) {
  ag::NoGradGuard no_grad;
  const Domain& dom = side == DomainSide::kZ ? z_ : zbar_;
  const ag::Tensor u = EffectiveUsers(side, users);
  const ag::Tensor v = ag::Embedding(dom.item_emb, items);
  return ReadLogits(
      ag::Add(ag::RowDot(u, v), dom.mlp->Forward(ag::ConcatCols(u, v))));
}

}  // namespace nmcdr
