#ifndef NMCDR_BASELINES_COMMON_H_
#define NMCDR_BASELINES_COMMON_H_

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "autograd/optimizer.h"
#include "core/rec_model.h"

namespace nmcdr {

/// Maps both domains' users onto a shared "person" id space using the
/// visible overlap links: linked pairs share one union id. Baselines that
/// assume shared users across domains (MMoE, PLE, HeroGraph, ...) operate
/// on this index — exactly why their transfer degrades as K_u shrinks.
struct SharedUserIndex {
  int num_union = 0;
  std::vector<int> z_to_union;
  std::vector<int> zbar_to_union;
};

SharedUserIndex BuildSharedUserIndex(const CdrScenario& scenario);

/// Per-user TRAIN interaction histories (item id lists), used by the
/// history-attention baselines (MiNet, PTUPCDR).
std::shared_ptr<const std::vector<std::vector<int>>> BuildUserHistories(
    const InteractionGraph& train_graph);

/// Common scaffolding for all baselines: parameter store, seeded rng, an
/// Adam optimizer created by FinishInit() after the derived constructor
/// has registered every parameter, and the backward/clip/step helper.
class BaselineBase : public RecModel {
 public:
  ag::ParameterStore* params() override { return &store_; }

 protected:
  BaselineBase(const ScenarioView& view, uint64_t seed)
      : view_(view), rng_(seed) {}

  /// Must be called at the end of every derived constructor.
  /// `weight_decay` applies L2 regularization inside Adam — essential on
  /// the sparse per-user data of the scaled scenarios.
  void FinishInit(float learning_rate, float weight_decay = 1e-4f) {
    if (const char* wd = std::getenv("NMCDR_WD")) weight_decay = std::atof(wd);
    optimizer_ = std::make_unique<ag::Adam>(&store_, learning_rate,
                                            /*beta1=*/0.9f, /*beta2=*/0.999f,
                                            /*eps=*/1e-8f, weight_decay);
  }

  /// Backward + gradient clip + optimizer step; returns the loss value.
  float ApplyStep(const ag::Tensor& loss) {
    const float value = loss.value().At(0, 0);
    ag::Backward(loss);
    store_.ClipGradNorm(5.f);
    optimizer_->Step();
    return value;
  }

  ScenarioView view_;
  ag::ParameterStore store_;
  Rng rng_;
  std::unique_ptr<ag::Adam> optimizer_;
};

/// Splits a trainer batch (positives each followed by their sampled
/// negatives) into aligned positive/negative index lists for pairwise
/// (BPR-style) losses. Returns false if the batch has no (pos, neg) pair.
bool SplitPairwise(const LabeledBatch& batch, std::vector<int>* pos_users,
                   std::vector<int>* pos_items, std::vector<int>* neg_items);

}  // namespace nmcdr

#endif  // NMCDR_BASELINES_COMMON_H_
