#ifndef NMCDR_BASELINES_MULTI_TASK_H_
#define NMCDR_BASELINES_MULTI_TASK_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/common.h"

namespace nmcdr {

/// MMoE [30]: shared user embeddings over the union person space (linked
/// pairs share a row), per-domain item embeddings, a pool of shared expert
/// networks, and per-domain gates + towers. Treats each domain as one task.
class MmoeModel : public BaselineBase {
 public:
  MmoeModel(const ScenarioView& view, const CommonHyper& hyper, float lr);
  std::string name() const override { return "MMoE"; }
  float TrainStep(const LabeledBatch& batch_z,
                  const LabeledBatch& batch_zbar) override;
  std::vector<float> Score(DomainSide side, const std::vector<int>& users,
                           const std::vector<int>& items) override;

 private:
  ag::Tensor Logits(DomainSide side, const std::vector<int>& users,
                    const std::vector<int>& items) const;

  static constexpr int kNumExperts = 4;
  SharedUserIndex shared_;
  ag::Tensor user_emb;  // union person space
  ag::Tensor item_emb_z, item_emb_zbar;
  std::vector<std::unique_ptr<ag::Linear>> experts_;
  std::unique_ptr<ag::Linear> gate_z_, gate_zbar_;
  std::unique_ptr<ag::Mlp> tower_z_, tower_zbar_;
};

/// PLE [31] with one extraction layer: shared experts plus task-specific
/// experts; each task's gate mixes its own experts with the shared pool,
/// followed by a task tower. The explicit shared/specific separation is
/// what lets it beat MMoE in the paper's analysis.
class PleModel : public BaselineBase {
 public:
  PleModel(const ScenarioView& view, const CommonHyper& hyper, float lr);
  std::string name() const override { return "PLE"; }
  float TrainStep(const LabeledBatch& batch_z,
                  const LabeledBatch& batch_zbar) override;
  std::vector<float> Score(DomainSide side, const std::vector<int>& users,
                           const std::vector<int>& items) override;

 private:
  ag::Tensor Logits(DomainSide side, const std::vector<int>& users,
                    const std::vector<int>& items) const;

  static constexpr int kSharedExperts = 2;
  static constexpr int kTaskExperts = 2;
  SharedUserIndex shared_;
  ag::Tensor user_emb;
  ag::Tensor item_emb_z, item_emb_zbar;
  std::vector<std::unique_ptr<ag::Linear>> shared_experts_;
  std::vector<std::unique_ptr<ag::Linear>> experts_z_, experts_zbar_;
  std::unique_ptr<ag::Linear> gate_z_, gate_zbar_;
  std::unique_ptr<ag::Mlp> tower_z_, tower_zbar_;
};

}  // namespace nmcdr

#endif  // NMCDR_BASELINES_MULTI_TASK_H_
