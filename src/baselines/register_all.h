#ifndef NMCDR_BASELINES_REGISTER_ALL_H_
#define NMCDR_BASELINES_REGISTER_ALL_H_

#include <string>
#include <vector>

namespace nmcdr {

/// Registers the 11 baselines of §III.A.3 plus NMCDR in the model
/// registry. Call once from main() before using the registry.
void RegisterAllModels();

/// All model names in the paper's table row order:
/// LR, BPR, NeuMF | MMoE, PLE | CoNet, MiNet, GA-DTCDR | DML, HeroGraph,
/// PTUPCDR | NMCDR.
std::vector<std::string> PaperModelOrder();

}  // namespace nmcdr

#endif  // NMCDR_BASELINES_REGISTER_ALL_H_
