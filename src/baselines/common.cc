#include "baselines/common.h"

#include "util/check.h"

namespace nmcdr {

SharedUserIndex BuildSharedUserIndex(const CdrScenario& scenario) {
  SharedUserIndex index;
  index.z_to_union.resize(scenario.z.num_users);
  index.zbar_to_union.assign(scenario.zbar.num_users, -1);
  int next = 0;
  for (int u = 0; u < scenario.z.num_users; ++u) {
    index.z_to_union[u] = next;
    const int linked = scenario.z_to_zbar[u];
    if (linked >= 0) index.zbar_to_union[linked] = next;
    ++next;
  }
  for (int u = 0; u < scenario.zbar.num_users; ++u) {
    if (index.zbar_to_union[u] < 0) index.zbar_to_union[u] = next++;
  }
  index.num_union = next;
  return index;
}

std::shared_ptr<const std::vector<std::vector<int>>> BuildUserHistories(
    const InteractionGraph& train_graph) {
  auto histories = std::make_shared<std::vector<std::vector<int>>>(
      train_graph.num_users());
  for (int u = 0; u < train_graph.num_users(); ++u) {
    (*histories)[u] = train_graph.UserNeighbors(u);
  }
  return histories;
}

bool SplitPairwise(const LabeledBatch& batch, std::vector<int>* pos_users,
                   std::vector<int>* pos_items, std::vector<int>* neg_items) {
  pos_users->clear();
  pos_items->clear();
  neg_items->clear();
  int current_user = -1, current_item = -1;
  bool have_pos = false;
  pos_users->reserve(batch.size());
  pos_items->reserve(batch.size());
  neg_items->reserve(batch.size());
  for (int i = 0; i < batch.size(); ++i) {
    if (batch.labels[i] > 0.5f) {
      current_user = batch.users[i];
      current_item = batch.items[i];
      have_pos = true;
    } else if (have_pos && batch.users[i] == current_user) {
      pos_users->push_back(current_user);
      pos_items->push_back(current_item);
      neg_items->push_back(batch.items[i]);
    }
  }
  return !pos_users->empty();
}

}  // namespace nmcdr
