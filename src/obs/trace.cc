#include "obs/trace.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace nmcdr {
namespace obs {

// ---------------------------------------------------------------------------
// TraceSpan
// ---------------------------------------------------------------------------

TraceSpan::TraceSpan(const char* name, MetricsRegistry& registry)
    : count_(nullptr), hist_(nullptr), start_ns_(0) {
  if (!MetricsEnabled()) return;
  const std::string base = std::string("span.") + name;
  count_ = &registry.GetCounter(base + ".count");
  hist_ = &registry.GetHistogram(
      base + ".seconds", MetricsRegistry::DefaultTimeBucketsSeconds());
  start_ns_ = NowNs();
}

TraceSpan::~TraceSpan() {
  if (count_ == nullptr) return;
  count_->Add(1);
  hist_->Record(static_cast<double>(NowNs() - start_ns_) * 1e-9);
}

double TraceSpan::ElapsedSeconds() const {
  if (count_ == nullptr) return 0.0;
  return static_cast<double>(NowNs() - start_ns_) * 1e-9;
}

// ---------------------------------------------------------------------------
// Op table
// ---------------------------------------------------------------------------

namespace {

struct OpTable {
  std::mutex mu;
  // std::map: stable element addresses + sorted snapshot order for free.
  std::map<std::string, std::unique_ptr<OpStats>> by_name;
};

OpTable& GlobalOpTable() {
  // Leaked so probes in static destructors stay safe.
  static OpTable* const t =
      new OpTable();  // NMCDR_LINT_ALLOW(naked-new): intentional leak
  return *t;
}

}  // namespace

OpStats& OpStats::ForName(const char* name) {
  OpTable& table = GlobalOpTable();
  std::lock_guard<std::mutex> lock(table.mu);
  std::unique_ptr<OpStats>& slot = table.by_name[name];
  if (!slot) slot = std::make_unique<OpStats>();
  return *slot;
}

std::vector<OpStatsRow> SnapshotOpStats() {
  OpTable& table = GlobalOpTable();
  std::lock_guard<std::mutex> lock(table.mu);
  std::vector<OpStatsRow> rows;
  rows.reserve(table.by_name.size());
  for (const auto& kv : table.by_name) {
    const OpStats& s = *kv.second;
    OpStatsRow row;
    row.name = kv.first;
    row.forward_calls = s.forward_calls.load(std::memory_order_relaxed);
    row.forward_ns = s.forward_ns.load(std::memory_order_relaxed);
    row.backward_calls = s.backward_calls.load(std::memory_order_relaxed);
    row.backward_ns = s.backward_ns.load(std::memory_order_relaxed);
    if (row.forward_calls != 0 || row.backward_calls != 0) {
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

void RecordBackward(const char* op, int64_t ns) {
  // The tape passes op-name string literals, so pointer identity is a
  // near-perfect cache key; a re-literal in another TU just costs one
  // extra ForName.
  thread_local std::unordered_map<const void*, OpStats*> cache;
  OpStats*& entry = cache[static_cast<const void*>(op)];
  if (entry == nullptr) entry = &OpStats::ForName(op);
  entry->backward_calls.fetch_add(1, std::memory_order_relaxed);
  entry->backward_ns.fetch_add(ns, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Kernel table
// ---------------------------------------------------------------------------

const char* KernelName(Kernel k) {
  switch (k) {
    case Kernel::kMatMulAccumInto: return "MatMulAccumInto";
    case Kernel::kMatMulTransA: return "MatMulTransA";
    case Kernel::kMatMulTransB: return "MatMulTransB";
    case Kernel::kTranspose: return "Transpose";
    case Kernel::kAdd: return "Add";
    case Kernel::kSub: return "Sub";
    case Kernel::kHadamard: return "Hadamard";
    case Kernel::kAxpby: return "Axpby";
    case Kernel::kAxpyInto: return "AxpyInto";
    case Kernel::kScale: return "Scale";
    case Kernel::kAddScalar: return "AddScalar";
    case Kernel::kAddRowBroadcast: return "AddRowBroadcast";
    case Kernel::kRelu: return "Relu";
    case Kernel::kSigmoid: return "Sigmoid";
    case Kernel::kTanh: return "Tanh";
    case Kernel::kSoftplus: return "Softplus";
    case Kernel::kExp: return "Exp";
    case Kernel::kLog: return "Log";
    case Kernel::kSoftmaxRows: return "SoftmaxRows";
    case Kernel::kRowSum: return "RowSum";
    case Kernel::kRowDot: return "RowDot";
    case Kernel::kColSum: return "ColSum";
    case Kernel::kGatherRows: return "GatherRows";
    case Kernel::kScatterAddRows: return "ScatterAddRows";
    case Kernel::kConcatCols: return "ConcatCols";
    case Kernel::kSpMM: return "SpMM";
    case Kernel::kSpMMTransposed: return "SpMMTransposed";
    case Kernel::kFusedMatMulBiasAct: return "FusedMatMulBiasAct";
    case Kernel::kFusedEltwise: return "FusedEltwise";
    case Kernel::kPlannedMatMulTransA: return "PlannedMatMulTransA";
    case Kernel::kPlannedMatMulTransB: return "PlannedMatMulTransB";
    case Kernel::kCount: break;
  }
  return "?";
}

namespace internal {

KernelSlot& KernelSlotFor(Kernel k) {
  static KernelSlot slots[static_cast<int>(Kernel::kCount)];
  return slots[static_cast<int>(k)];
}

}  // namespace internal

std::vector<KernelStatsRow> SnapshotKernelStats() {
  std::vector<KernelStatsRow> rows;
  rows.reserve(static_cast<size_t>(Kernel::kCount));
  for (int i = 0; i < static_cast<int>(Kernel::kCount); ++i) {
    const Kernel k = static_cast<Kernel>(i);
    const internal::KernelSlot& s = internal::KernelSlotFor(k);
    KernelStatsRow row;
    row.kernel = k;
    row.calls = s.calls.load(std::memory_order_relaxed);
    row.flops = s.flops.load(std::memory_order_relaxed);
    row.ns = s.ns.load(std::memory_order_relaxed);
    if (row.calls != 0) rows.push_back(row);
  }
  return rows;
}

void ResetOpAndKernelStats() {
  {
    OpTable& table = GlobalOpTable();
    std::lock_guard<std::mutex> lock(table.mu);
    for (auto& kv : table.by_name) {
      kv.second->forward_calls.store(0, std::memory_order_relaxed);
      kv.second->forward_ns.store(0, std::memory_order_relaxed);
      kv.second->backward_calls.store(0, std::memory_order_relaxed);
      kv.second->backward_ns.store(0, std::memory_order_relaxed);
    }
  }
  for (int i = 0; i < static_cast<int>(Kernel::kCount); ++i) {
    internal::KernelSlot& s = internal::KernelSlotFor(static_cast<Kernel>(i));
    s.calls.store(0, std::memory_order_relaxed);
    s.flops.store(0, std::memory_order_relaxed);
    s.ns.store(0, std::memory_order_relaxed);
  }
}

}  // namespace obs
}  // namespace nmcdr
