#ifndef NMCDR_OBS_EXPORT_H_
#define NMCDR_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace nmcdr {
namespace obs {

/// Exporters over a MetricsRegistry plus the global op/kernel tables.
///
/// DumpJson emits the stable machine-readable form, versioned by the
/// top-level "schema" key (kJsonSchemaVersion). Consumers must reject
/// unknown versions. Layout (NMCDR_OBS_V1):
///
///   {
///     "schema": "NMCDR_OBS_V1",
///     "metrics_enabled": bool, "profiling_enabled": bool,
///     "counters":  { "<name>": int, ... },
///     "gauges":    { "<name>": double, ... },
///     "histograms": { "<name>": { "count": int, "sum": double,
///          "min": double, "max": double, "mean": double,
///          "p50": double, "p95": double, "p99": double,
///          "buckets": [ { "le": double, "count": int }, ... ] }, ... },
///     "ops":     { "<op>": { "forward_calls": int, "forward_ns": int,
///                            "backward_calls": int, "backward_ns": int } },
///     "kernels": { "<kernel>": { "calls": int, "flops": int, "ns": int } }
///   }
///
/// Maps are emitted sorted by name; the final histogram bucket entry is
/// the overflow bucket, marked "le": -1. Zero-call op/kernel rows are
/// omitted. DumpText renders the same data for humans.

inline constexpr const char* kJsonSchemaVersion = "NMCDR_OBS_V1";

std::string DumpText(const MetricsRegistry& registry);
std::string DumpJson(const MetricsRegistry& registry);

inline std::string DumpText() { return DumpText(MetricsRegistry::Global()); }
inline std::string DumpJson() { return DumpJson(MetricsRegistry::Global()); }

/// Writes DumpJson(registry) to `path`. Returns false (with a message on
/// stderr) when the file cannot be written.
bool WriteJsonFile(const std::string& path,
                   const MetricsRegistry& registry = MetricsRegistry::Global());

}  // namespace obs
}  // namespace nmcdr

#endif  // NMCDR_OBS_EXPORT_H_
