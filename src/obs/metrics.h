#ifndef NMCDR_OBS_METRICS_H_
#define NMCDR_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace nmcdr {
namespace obs {

/// Metric primitives: Counter, Gauge, Histogram, owned by a MetricsRegistry.
///
/// Write paths are lock-free-ish: counters and histogram buckets are split
/// into kShards cache-line-aligned relaxed atomics indexed by a stable
/// per-thread slot, so concurrent recorders (e.g. ThreadPool::Shared()
/// workers scoring batches) do not bounce one cache line. Readers fold the
/// shards on scrape; a fold concurrent with writes yields a value that was
/// true at some instant during the fold — exact once writers quiesce.
/// Registry lookups (GetCounter etc.) take a mutex; instrumentation sites
/// resolve their metric once (function-local static) and record through
/// the returned reference.
///
/// All primitives stay functional regardless of the obs enable flags —
/// gating happens at the instrumentation scopes (obs/trace.h), not here,
/// so components like InferenceServer that always account their traffic
/// keep exact counts.

inline constexpr int kShards = 8;

namespace internal {

/// Stable per-thread shard slot in [0, kShards). Assigned round-robin on
/// first use per thread.
int ThreadShard();

struct alignas(64) ShardSlot {
  std::atomic<int64_t> v{0};
};

/// CAS-loop arithmetic for std::atomic<double> (fetch_add on floating
/// point is C++20 and not universally lock-free; these stay portable).
/// Relaxed ordering: used only for statistics, never for synchronization.
void AtomicAddDouble(std::atomic<double>& a, double delta);
void AtomicMaxDouble(std::atomic<double>& a, double value);
void AtomicMinDouble(std::atomic<double>& a, double value);

}  // namespace internal

/// Monotonically increasing integer count.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    shards_[internal::ThreadShard()].v.fetch_add(delta,
                                                 std::memory_order_relaxed);
  }
  int64_t Value() const;

 private:
  friend class MetricsRegistry;
  Counter() = default;
  void Reset();
  internal::ShardSlot shards_[kShards];
};

/// Last-write-wins scalar (e.g. current queue depth, final loss).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  void Reset() { Set(0.0); }
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts values <= boundaries[i] (first
/// match wins); values above the last boundary land in an overflow bucket.
/// Tracks exact sum/min/max alongside the buckets, so Mean() is exact and
/// quantile estimates are clamped to the observed range.
class Histogram {
 public:
  void Record(double value);

  int64_t Count() const;
  double Sum() const;
  double Mean() const;  // 0 when empty
  double Min() const;   // 0 when empty
  double Max() const;   // 0 when empty

  /// Quantile estimate for q in [0, 1]: finds the bucket holding the
  /// q-th ranked sample and interpolates linearly within it. Estimates
  /// from the overflow bucket return the observed max. 0 when empty.
  double Quantile(double q) const;

  const std::vector<double>& boundaries() const { return boundaries_; }
  /// Folded per-bucket counts, size boundaries().size() + 1 (last entry
  /// is the overflow bucket).
  std::vector<int64_t> BucketCounts() const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> boundaries);
  void Reset();

  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<int64_t>[]> buckets;
    std::atomic<double> sum{0.0};
    // Sentinel infinities: every sample CAS-lowers min / raises max, so no
    // racy first-sample seeding is needed. Shards with count == 0 are
    // skipped when folding.
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
    std::atomic<int64_t> count{0};
  };

  std::vector<double> boundaries_;  // ascending upper bounds
  Shard shards_[kShards];
};

/// Named metric store. Metrics are created on first Get* and live for the
/// registry's lifetime (references stay valid). Instantiable — components
/// needing isolated accounting (per-server stats in tests) own a private
/// registry; everything else shares Global().
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry used by default instrumentation and exporters.
  /// NMCDR_COLD: hot paths resolve metric references once (function-local
  /// static or constructor), never per request.
  static MetricsRegistry& Global() NMCDR_COLD;

  Counter& GetCounter(const std::string& name) NMCDR_COLD
      NMCDR_EXCLUDES(mu_);
  Gauge& GetGauge(const std::string& name) NMCDR_EXCLUDES(mu_);
  /// Returns the histogram registered under `name`, creating it with the
  /// given bucket boundaries (ascending upper bounds) if absent. The
  /// boundaries of an existing histogram are kept — first registration
  /// wins.
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> boundaries) NMCDR_EXCLUDES(mu_);
  /// Histogram with DefaultLatencyBucketsMs().
  Histogram& GetLatencyHistogram(const std::string& name);

  /// Exponential millisecond buckets, ~50 µs to ~26 s.
  static std::vector<double> DefaultLatencyBucketsMs();
  /// Exponential second buckets, ~1 ms to ~2000 s (epoch/phase scale).
  static std::vector<double> DefaultTimeBucketsSeconds();

  /// Scrape views, sorted by name. Pointers remain valid while the
  /// registry lives; values fold the shards at call time.
  std::vector<std::pair<std::string, const Counter*>> Counters() const
      NMCDR_EXCLUDES(mu_);
  std::vector<std::pair<std::string, const Gauge*>> Gauges() const
      NMCDR_EXCLUDES(mu_);
  std::vector<std::pair<std::string, const Histogram*>> Histograms() const
      NMCDR_EXCLUDES(mu_);

  /// Zeroes every metric, keeping registrations (references stay valid).
  /// Callers must ensure no concurrent writers (test / tool shutdown use).
  void Reset() NMCDR_EXCLUDES(mu_);

 private:
  /// Guards the name->metric maps only; the metric objects themselves are
  /// sharded atomics and are written without this lock.
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;    // GUARDED_BY(mu_)
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;        // GUARDED_BY(mu_)
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;  // GUARDED_BY(mu_)
};

}  // namespace obs
}  // namespace nmcdr

#endif  // NMCDR_OBS_METRICS_H_
