#include "obs/obs.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace nmcdr {
namespace obs {
namespace {

// Env-derived defaults, computed once. NMCDR_OBS=0 starts metrics off;
// NMCDR_OBS_PROFILE=1 starts profiling on.
bool EnvDisables(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && std::strcmp(v, "0") == 0;
}

bool EnvEnables(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && std::strcmp(v, "0") != 0 && std::strcmp(v, "") != 0;
}

std::atomic<bool>& MetricsAtom() {
  static std::atomic<bool> atom(!EnvDisables("NMCDR_OBS"));
  return atom;
}

std::atomic<bool>& ProfilingAtom() {
  static std::atomic<bool> atom(EnvEnables("NMCDR_OBS_PROFILE"));
  return atom;
}

}  // namespace

namespace internal {

bool MetricsFlag() {
  return MetricsAtom().load(std::memory_order_relaxed);
}

bool ProfilingFlag() {
  return ProfilingAtom().load(std::memory_order_relaxed);
}

}  // namespace internal

bool SetMetricsEnabled(bool enabled) {
  return MetricsAtom().exchange(enabled, std::memory_order_relaxed);
}

bool SetProfilingEnabled(bool enabled) {
  return ProfilingAtom().exchange(enabled, std::memory_order_relaxed);
}

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace obs
}  // namespace nmcdr
