#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "obs/obs.h"
#include "obs/trace.h"

namespace nmcdr {
namespace obs {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest round-trippable decimal; JSON has no Inf/NaN, so non-finite
/// values degrade to 0.
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string HumanNs(int64_t ns) {
  char buf[40];
  const double v = static_cast<double>(ns);
  if (ns < 10'000) {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(ns));
  } else if (ns < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1f us", v * 1e-3);
  } else if (ns < 10'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", v * 1e-6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", v * 1e-9);
  }
  return buf;
}

struct HistogramSummary {
  int64_t count;
  double sum, min, max, mean, p50, p95, p99;
};

HistogramSummary Summarize(const Histogram& h) {
  HistogramSummary s;
  s.count = h.Count();
  s.sum = h.Sum();
  s.min = h.Min();
  s.max = h.Max();
  s.mean = h.Mean();
  s.p50 = h.Quantile(0.50);
  s.p95 = h.Quantile(0.95);
  s.p99 = h.Quantile(0.99);
  return s;
}

}  // namespace

std::string DumpJson(const MetricsRegistry& registry) {
  std::ostringstream out;
  out << "{\n  \"schema\": \"" << kJsonSchemaVersion << "\",\n";
  out << "  \"metrics_enabled\": " << (MetricsEnabled() ? "true" : "false")
      << ",\n";
  out << "  \"profiling_enabled\": " << (ProfilingEnabled() ? "true" : "false")
      << ",\n";

  out << "  \"counters\": {";
  {
    bool first = true;
    for (const auto& [name, c] : registry.Counters()) {
      out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
          << "\": " << c->Value();
      first = false;
    }
    out << (first ? "" : "\n  ") << "},\n";
  }

  out << "  \"gauges\": {";
  {
    bool first = true;
    for (const auto& [name, g] : registry.Gauges()) {
      out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name)
          << "\": " << JsonNumber(g->Value());
      first = false;
    }
    out << (first ? "" : "\n  ") << "},\n";
  }

  out << "  \"histograms\": {";
  {
    bool first = true;
    for (const auto& [name, h] : registry.Histograms()) {
      const HistogramSummary s = Summarize(*h);
      out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name) << "\": {"
          << "\"count\": " << s.count << ", \"sum\": " << JsonNumber(s.sum)
          << ", \"min\": " << JsonNumber(s.min)
          << ", \"max\": " << JsonNumber(s.max)
          << ", \"mean\": " << JsonNumber(s.mean)
          << ", \"p50\": " << JsonNumber(s.p50)
          << ", \"p95\": " << JsonNumber(s.p95)
          << ", \"p99\": " << JsonNumber(s.p99) << ", \"buckets\": [";
      const std::vector<int64_t> counts = h->BucketCounts();
      const std::vector<double>& bounds = h->boundaries();
      for (std::size_t i = 0; i < counts.size(); ++i) {
        if (i != 0) out << ", ";
        // Overflow bucket carries the sentinel upper bound -1.
        out << "{\"le\": "
            << (i < bounds.size() ? JsonNumber(bounds[i]) : std::string("-1"))
            << ", \"count\": " << counts[i] << "}";
      }
      out << "]}";
      first = false;
    }
    out << (first ? "" : "\n  ") << "},\n";
  }

  out << "  \"ops\": {";
  {
    bool first = true;
    for (const OpStatsRow& row : SnapshotOpStats()) {
      out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(row.name)
          << "\": {\"forward_calls\": " << row.forward_calls
          << ", \"forward_ns\": " << row.forward_ns
          << ", \"backward_calls\": " << row.backward_calls
          << ", \"backward_ns\": " << row.backward_ns << "}";
      first = false;
    }
    out << (first ? "" : "\n  ") << "},\n";
  }

  out << "  \"kernels\": {";
  {
    bool first = true;
    for (const KernelStatsRow& row : SnapshotKernelStats()) {
      out << (first ? "\n" : ",\n") << "    \"" << KernelName(row.kernel)
          << "\": {\"calls\": " << row.calls << ", \"flops\": " << row.flops
          << ", \"ns\": " << row.ns << "}";
      first = false;
    }
    out << (first ? "" : "\n  ") << "}\n";
  }

  out << "}\n";
  return out.str();
}

std::string DumpText(const MetricsRegistry& registry) {
  std::ostringstream out;
  out << "== nmcdr observability (metrics="
      << (MetricsEnabled() ? "on" : "off")
      << ", profiling=" << (ProfilingEnabled() ? "on" : "off") << ") ==\n";

  const auto counters = registry.Counters();
  if (!counters.empty()) {
    out << "counters:\n";
    for (const auto& [name, c] : counters) {
      out << "  " << name << " = " << c->Value() << "\n";
    }
  }

  const auto gauges = registry.Gauges();
  if (!gauges.empty()) {
    out << "gauges:\n";
    for (const auto& [name, g] : gauges) {
      out << "  " << name << " = " << g->Value() << "\n";
    }
  }

  const auto histograms = registry.Histograms();
  if (!histograms.empty()) {
    out << "histograms:\n";
    for (const auto& [name, h] : histograms) {
      const HistogramSummary s = Summarize(*h);
      char line[256];
      std::snprintf(line, sizeof(line),
                    "  %s: count=%lld mean=%.4g p50=%.4g p95=%.4g p99=%.4g "
                    "max=%.4g\n",
                    name.c_str(), static_cast<long long>(s.count), s.mean,
                    s.p50, s.p95, s.p99, s.max);
      out << line;
    }
  }

  const std::vector<OpStatsRow> ops = SnapshotOpStats();
  if (!ops.empty()) {
    out << "autograd ops:\n";
    for (const OpStatsRow& row : ops) {
      out << "  " << row.name << ": fwd=" << row.forward_calls;
      if (row.forward_ns != 0) out << " (" << HumanNs(row.forward_ns) << ")";
      out << " bwd=" << row.backward_calls;
      if (row.backward_ns != 0) out << " (" << HumanNs(row.backward_ns) << ")";
      out << "\n";
    }
  }

  const std::vector<KernelStatsRow> kernels = SnapshotKernelStats();
  if (!kernels.empty()) {
    out << "kernels:\n";
    for (const KernelStatsRow& row : kernels) {
      out << "  " << KernelName(row.kernel) << ": calls=" << row.calls
          << " flops=" << row.flops;
      if (row.ns != 0) out << " time=" << HumanNs(row.ns);
      out << "\n";
    }
  }

  return out.str();
}

bool WriteJsonFile(const std::string& path, const MetricsRegistry& registry) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "obs: cannot open %s for writing\n", path.c_str());
    return false;
  }
  f << DumpJson(registry);
  f.close();
  if (!f) {
    std::fprintf(stderr, "obs: failed writing %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace obs
}  // namespace nmcdr
