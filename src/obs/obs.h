#ifndef NMCDR_OBS_OBS_H_
#define NMCDR_OBS_OBS_H_

#include <cstdint>

namespace nmcdr {
namespace obs {

/// Observability master switches.
///
/// Two independent gates control the cost of instrumentation:
///
///  * compile time — the NMCDR_OBS CMake option (default ON). Building with
///    -DNMCDR_OBS=OFF defines NMCDR_OBS_DISABLED, which turns kObsCompiled
///    into a compile-time false: every instrumentation scope below folds to
///    nothing and the optimizer deletes the probes entirely.
///  * run time — MetricsEnabled() / ProfilingEnabled(), each a single
///    relaxed atomic load. Scopes (obs/trace.h) read the flag ONCE at
///    construction, so a disabled scope costs one load and one branch — no
///    clock reads, no allocation (asserted by obs_test).
///
/// Metrics (counters, gauges, histograms — cheap sharded atomics) default
/// ON; profiling (per-op and per-kernel wall-clock timing — two clock
/// reads per probe) defaults OFF so pervasive op dispatch never pays for
/// timestamps nobody asked for. Environment overrides, read once at first
/// query: NMCDR_OBS=0 disables metrics, NMCDR_OBS_PROFILE=1 enables
/// profiling.
///
/// Neither flag ever changes numerics: instrumentation only observes.
/// backend_equivalence_test proves training results are bit-identical with
/// observability fully on and fully off.

#if defined(NMCDR_OBS_DISABLED)
inline constexpr bool kObsCompiled = false;
#else
inline constexpr bool kObsCompiled = true;
#endif

namespace internal {
bool MetricsFlag();
bool ProfilingFlag();
}  // namespace internal

/// True when metric recording (counters / gauges / histograms attached to
/// instrumentation scopes) is active.
inline bool MetricsEnabled() {
  return kObsCompiled && internal::MetricsFlag();
}

/// True when wall-clock probes (per-op, per-kernel, span timing) are
/// active. Profiling implies metrics semantics for the timed tables.
inline bool ProfilingEnabled() {
  return kObsCompiled && internal::ProfilingFlag();
}

/// Runtime toggles (process-wide). Return the previous value so callers
/// can restore it; tests use the RAII guards below instead.
bool SetMetricsEnabled(bool enabled);
bool SetProfilingEnabled(bool enabled);

/// RAII flag override for tests and tools.
class MetricsEnabledGuard {
 public:
  explicit MetricsEnabledGuard(bool enabled)
      : previous_(SetMetricsEnabled(enabled)) {}
  ~MetricsEnabledGuard() { SetMetricsEnabled(previous_); }
  MetricsEnabledGuard(const MetricsEnabledGuard&) = delete;
  MetricsEnabledGuard& operator=(const MetricsEnabledGuard&) = delete;

 private:
  bool previous_;
};

class ProfilingEnabledGuard {
 public:
  explicit ProfilingEnabledGuard(bool enabled)
      : previous_(SetProfilingEnabled(enabled)) {}
  ~ProfilingEnabledGuard() { SetProfilingEnabled(previous_); }
  ProfilingEnabledGuard(const ProfilingEnabledGuard&) = delete;
  ProfilingEnabledGuard& operator=(const ProfilingEnabledGuard&) = delete;

 private:
  bool previous_;
};

/// Monotonic wall clock in nanoseconds. The observability layer is the
/// sanctioned home of raw clock reads (with src/util's Stopwatch): the
/// nmcdr_lint [banned-chrono] rule confines std::chrono::*_clock::now()
/// to src/obs/ and src/util/ so every timing measurement flows through
/// one of the two.
int64_t NowNs();

}  // namespace obs
}  // namespace nmcdr

#endif  // NMCDR_OBS_OBS_H_
