#ifndef NMCDR_OBS_TRACE_H_
#define NMCDR_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/obs.h"

namespace nmcdr {
namespace obs {

/// Instrumentation scopes. These are the ONLY place the obs enable flags
/// are consulted: each scope reads its flag once at construction and pays
/// nothing afterwards when disabled (no clock reads, no allocation —
/// asserted by obs_test). The metric primitives underneath never gate.

// ---------------------------------------------------------------------------
// ScopedTimer / TraceSpan — coarse phase timing
// ---------------------------------------------------------------------------

/// RAII timer recording elapsed milliseconds into a Histogram on
/// destruction. Armed only when `enabled` is true at construction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist, bool enabled = MetricsEnabled())
      : hist_(enabled ? hist : nullptr), start_ns_(hist_ ? NowNs() : 0) {}
  ~ScopedTimer() {
    if (hist_ != nullptr) {
      hist_->Record(static_cast<double>(NowNs() - start_ns_) * 1e-6);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  int64_t start_ns_;
};

/// Named coarse-grained span (an epoch, a serve phase). On destruction —
/// when metrics are enabled — bumps counter "span.<name>.count" and
/// records the duration in seconds into histogram "span.<name>.seconds"
/// (DefaultTimeBucketsSeconds buckets) in the given registry. Intended
/// for O(epochs)-frequency scopes: each construction resolves its metrics
/// by name, so do not put one per tensor op — that is what OpScope /
/// KernelScope are for.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name,
                     MetricsRegistry& registry = MetricsRegistry::Global());
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Seconds since construction (0 when the span is disarmed).
  double ElapsedSeconds() const;

 private:
  Counter* count_;    // nullptr when disarmed
  Histogram* hist_;
  int64_t start_ns_;
};

// ---------------------------------------------------------------------------
// OpScope — autograd per-op forward/backward accounting
// ---------------------------------------------------------------------------

/// Aggregated statistics for one autograd op name. Relaxed atomics; ops
/// are constructed on the training thread but scoring helpers may run on
/// pool workers, so writes must be thread-safe.
struct OpStats {
  std::atomic<int64_t> forward_calls{0};
  std::atomic<int64_t> forward_ns{0};
  std::atomic<int64_t> backward_calls{0};
  std::atomic<int64_t> backward_ns{0};

  /// Stable per-name entry in the global op table. The returned reference
  /// lives forever; instrumentation sites cache it in a function-local
  /// static so the name lookup happens once per site.
  static OpStats& ForName(const char* name);
};

/// One (name, stats) row of the global op table, sorted by name.
struct OpStatsRow {
  std::string name;
  int64_t forward_calls;
  int64_t forward_ns;
  int64_t backward_calls;
  int64_t backward_ns;
};
std::vector<OpStatsRow> SnapshotOpStats();

/// Records backward wall time for `op` (called by the autograd tape under
/// ProfilingEnabled()). Uses a thread-local pointer-keyed cache so the
/// string lookup amortizes to pointer identity on the op-name literals.
void RecordBackward(const char* op, int64_t ns);

/// RAII forward-pass probe. Counts the call when metrics are enabled and
/// accumulates wall time when profiling is enabled.
class OpScope {
 public:
  explicit OpScope(OpStats& stats)
      : stats_(MetricsEnabled() ? &stats : nullptr),
        start_ns_(stats_ != nullptr && ProfilingEnabled() ? NowNs() : 0) {
    if (stats_ != nullptr) {
      stats_->forward_calls.fetch_add(1, std::memory_order_relaxed);
    }
  }
  ~OpScope() {
    if (start_ns_ != 0) {
      stats_->forward_ns.fetch_add(NowNs() - start_ns_,
                                   std::memory_order_relaxed);
    }
  }
  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

 private:
  OpStats* stats_;
  int64_t start_ns_;
};

/// Per-op-function probe: resolves the op's stats row once (function-local
/// static), then opens an OpScope for the rest of the enclosing scope.
#if defined(NMCDR_OBS_DISABLED)
#define NMCDR_OBS_OP_SCOPE(op_name) \
  do {                              \
  } while (false)
#else
#define NMCDR_OBS_OP_SCOPE(op_name)                         \
  static ::nmcdr::obs::OpStats& nmcdr_obs_op_stats_local =  \
      ::nmcdr::obs::OpStats::ForName(op_name);              \
  const ::nmcdr::obs::OpScope nmcdr_obs_op_scope_local(nmcdr_obs_op_stats_local)
#endif

// ---------------------------------------------------------------------------
// KernelScope — backend dispatcher call counts, FLOPs, wall time
// ---------------------------------------------------------------------------

/// One slot per KernelBackend entry point (tensor/backend.h) plus the CSR
/// products. Fixed enum -> fixed array: the dispatcher hot path indexes,
/// never hashes.
enum class Kernel : int {
  kMatMulAccumInto = 0,
  kMatMulTransA,
  kMatMulTransB,
  kTranspose,
  kAdd,
  kSub,
  kHadamard,
  kAxpby,
  kAxpyInto,
  kScale,
  kAddScalar,
  kAddRowBroadcast,
  kRelu,
  kSigmoid,
  kTanh,
  kSoftplus,
  kExp,
  kLog,
  kSoftmaxRows,
  kRowSum,
  kRowDot,
  kColSum,
  kGatherRows,
  kScatterAddRows,
  kConcatCols,
  kSpMM,
  kSpMMTransposed,
  // Graph-program replay kernels (src/program dispatches these directly on
  // the backend; the scopes live at those call sites).
  kFusedMatMulBiasAct,
  kFusedEltwise,
  kPlannedMatMulTransA,
  kPlannedMatMulTransB,
  kCount,
};

const char* KernelName(Kernel k);

/// One row of the kernel table snapshot (rows with zero calls omitted).
struct KernelStatsRow {
  Kernel kernel;
  int64_t calls;
  int64_t flops;  // estimated from operand shapes at the dispatch site
  int64_t ns;     // nonzero only under profiling
};
std::vector<KernelStatsRow> SnapshotKernelStats();

namespace internal {
struct KernelSlot {
  std::atomic<int64_t> calls{0};
  std::atomic<int64_t> flops{0};
  std::atomic<int64_t> ns{0};
};
KernelSlot& KernelSlotFor(Kernel k);
}  // namespace internal

/// RAII dispatcher probe: counts the call and the caller-estimated FLOPs
/// when metrics are enabled; accumulates wall time when profiling is
/// enabled. Sits in the free-function dispatchers (tensor/matrix_ops.cc),
/// NOT inside backend implementations, so bench_kernels — which calls
/// backends directly — times pristine kernels.
class KernelScope {
 public:
  KernelScope(Kernel k, int64_t flop_estimate)
      : slot_(MetricsEnabled() ? &internal::KernelSlotFor(k) : nullptr),
        start_ns_(slot_ != nullptr && ProfilingEnabled() ? NowNs() : 0) {
    if (slot_ != nullptr) {
      slot_->calls.fetch_add(1, std::memory_order_relaxed);
      slot_->flops.fetch_add(flop_estimate, std::memory_order_relaxed);
    }
  }
  ~KernelScope() {
    if (start_ns_ != 0) {
      slot_->ns.fetch_add(NowNs() - start_ns_, std::memory_order_relaxed);
    }
  }
  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;

 private:
  internal::KernelSlot* slot_;
  int64_t start_ns_;
};

/// Zeroes the global op and kernel tables (test / tool isolation; callers
/// must ensure no concurrent writers).
void ResetOpAndKernelStats();

}  // namespace obs
}  // namespace nmcdr

#endif  // NMCDR_OBS_TRACE_H_
