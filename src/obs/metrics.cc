#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace nmcdr {
namespace obs {

namespace internal {

int ThreadShard() {
  static std::atomic<int> next{0};
  thread_local const int slot =
      next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return slot;
}

void AtomicAddDouble(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed,
                                  std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>& a, double value) {
  double cur = a.load(std::memory_order_relaxed);
  while (cur < value &&
         !a.compare_exchange_weak(cur, value, std::memory_order_relaxed,
                                  std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>& a, double value) {
  double cur = a.load(std::memory_order_relaxed);
  while (cur > value &&
         !a.compare_exchange_weak(cur, value, std::memory_order_relaxed,
                                  std::memory_order_relaxed)) {
  }
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const internal::ShardSlot& s : shards_) {
    total += s.v.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (internal::ShardSlot& s : shards_) {
    s.v.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)) {
  NMCDR_CHECK(!boundaries_.empty());
  NMCDR_CHECK(std::is_sorted(boundaries_.begin(), boundaries_.end()));
  const std::size_t n = boundaries_.size() + 1;  // + overflow
  for (Shard& s : shards_) {
    s.buckets = std::make_unique<std::atomic<int64_t>[]>(n);
    for (std::size_t i = 0; i < n; ++i) {
      s.buckets[i].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::Record(double value) {
  const auto it =
      std::lower_bound(boundaries_.begin(), boundaries_.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - boundaries_.begin());
  Shard& s = shards_[internal::ThreadShard()];
  s.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  internal::AtomicAddDouble(s.sum, value);
  internal::AtomicMinDouble(s.min, value);
  internal::AtomicMaxDouble(s.max, value);
  s.count.fetch_add(1, std::memory_order_relaxed);
}

int64_t Histogram::Count() const {
  int64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const Shard& s : shards_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Mean() const {
  const int64_t n = Count();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

double Histogram::Min() const {
  double out = 0.0;
  bool seen = false;
  for (const Shard& s : shards_) {
    if (s.count.load(std::memory_order_relaxed) == 0) continue;
    const double v = s.min.load(std::memory_order_relaxed);
    out = seen ? std::min(out, v) : v;
    seen = true;
  }
  return out;
}

double Histogram::Max() const {
  double out = 0.0;
  bool seen = false;
  for (const Shard& s : shards_) {
    if (s.count.load(std::memory_order_relaxed) == 0) continue;
    const double v = s.max.load(std::memory_order_relaxed);
    out = seen ? std::max(out, v) : v;
    seen = true;
  }
  return out;
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> folded(boundaries_.size() + 1, 0);
  for (const Shard& s : shards_) {
    for (std::size_t i = 0; i < folded.size(); ++i) {
      folded[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return folded;
}

double Histogram::Quantile(double q) const {
  const std::vector<int64_t> counts = BucketCounts();
  int64_t total = 0;
  for (const int64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  const double observed_min = Min();
  const double observed_max = Max();
  int64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const int64_t next = cum + counts[i];
    if (static_cast<double>(next) >= target) {
      if (i == counts.size() - 1) return observed_max;  // overflow bucket
      const double hi = boundaries_[i];
      const double lo = i == 0 ? std::min(observed_min, hi) : boundaries_[i - 1];
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(counts[i]);
      const double est = lo + frac * (hi - lo);
      return std::clamp(est, observed_min, observed_max);
    }
    cum = next;
  }
  return observed_max;
}

void Histogram::Reset() {
  for (Shard& s : shards_) {
    for (std::size_t i = 0; i < boundaries_.size() + 1; ++i) {
      s.buckets[i].store(0, std::memory_order_relaxed);
    }
    s.sum.store(0.0, std::memory_order_relaxed);
    s.min.store(std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
    s.max.store(-std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked so instrumentation in static destructors stays safe.
  static MetricsRegistry* const g =
      new MetricsRegistry();  // NMCDR_LINT_ALLOW(naked-new): intentional leak
  return *g;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot.reset(new Counter());  // NMCDR_LINT_ALLOW(naked-new): private ctor
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot.reset(new Gauge());  // NMCDR_LINT_ALLOW(naked-new): private ctor
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> boundaries) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) {
    // NMCDR_LINT_ALLOW(naked-new): private ctor, unique_ptr takes ownership
    slot.reset(new Histogram(std::move(boundaries)));
  }
  return *slot;
}

Histogram& MetricsRegistry::GetLatencyHistogram(const std::string& name) {
  return GetHistogram(name, DefaultLatencyBucketsMs());
}

std::vector<double> MetricsRegistry::DefaultLatencyBucketsMs() {
  // 0.05 ms .. ~26 s, x2 per bucket: fine resolution where serving
  // latencies live, wide tail for stalls.
  std::vector<double> b;
  b.reserve(20);
  for (double ms = 0.05; ms < 30000.0; ms *= 2.0) b.push_back(ms);
  return b;
}

std::vector<double> MetricsRegistry::DefaultTimeBucketsSeconds() {
  // 1 ms .. ~2000 s, x2 per bucket: epoch / phase durations.
  std::vector<double> b;
  b.reserve(22);
  for (double s = 0.001; s < 2500.0; s *= 2.0) b.push_back(s);
  return b;
}

std::vector<std::pair<std::string, const Counter*>> MetricsRegistry::Counters()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Counter*>> out;
  out.reserve(counters_.size());
  for (const auto& kv : counters_) out.emplace_back(kv.first, kv.second.get());
  return out;
}

std::vector<std::pair<std::string, const Gauge*>> MetricsRegistry::Gauges()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Gauge*>> out;
  out.reserve(gauges_.size());
  for (const auto& kv : gauges_) out.emplace_back(kv.first, kv.second.get());
  return out;
}

std::vector<std::pair<std::string, const Histogram*>>
MetricsRegistry::Histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& kv : histograms_) {
    out.emplace_back(kv.first, kv.second.get());
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& kv : counters_) kv.second->Reset();
  for (auto& kv : gauges_) kv.second->Reset();
  for (auto& kv : histograms_) kv.second->Reset();
}

}  // namespace obs
}  // namespace nmcdr
