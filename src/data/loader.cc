#include "data/loader.h"

#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace nmcdr {
namespace {

constexpr char kMagic[] = "NMCDR_SCENARIO_V1";

bool WriteDomain(std::ofstream& out, const DomainData& d) {
  out << "domain\t" << d.name << "\t" << d.num_users << "\t" << d.num_items
      << "\t" << d.interactions.size() << "\n";
  for (const Interaction& e : d.interactions) {
    out << e.user << "\t" << e.item << "\n";
  }
  return out.good();
}

bool ReadDomain(std::ifstream& in, DomainData* d) {
  std::string tag;
  size_t num_edges = 0;
  if (!(in >> tag >> d->name >> d->num_users >> d->num_items >> num_edges) ||
      tag != "domain") {
    return false;
  }
  d->interactions.resize(num_edges);
  for (size_t i = 0; i < num_edges; ++i) {
    if (!(in >> d->interactions[i].user >> d->interactions[i].item)) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool SaveScenario(const CdrScenario& scenario, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    LOG_ERROR << "SaveScenario: cannot open " << path;
    return false;
  }
  out << kMagic << "\t" << scenario.name << "\n";
  if (!WriteDomain(out, scenario.z) || !WriteDomain(out, scenario.zbar)) {
    LOG_ERROR << "SaveScenario: write failure for " << path;
    return false;
  }
  int links = 0;
  for (int m : scenario.z_to_zbar) {
    if (m >= 0) ++links;
  }
  out << "overlap\t" << links << "\n";
  for (int u = 0; u < scenario.z.num_users; ++u) {
    if (scenario.z_to_zbar[u] >= 0) {
      out << u << "\t" << scenario.z_to_zbar[u] << "\n";
    }
  }
  return out.good();
}

bool LoadScenario(const std::string& path, CdrScenario* scenario) {
  std::ifstream in(path);
  if (!in) {
    LOG_ERROR << "LoadScenario: cannot open " << path;
    return false;
  }
  std::string magic;
  if (!(in >> magic >> scenario->name) || magic != kMagic) {
    LOG_ERROR << "LoadScenario: bad header in " << path;
    return false;
  }
  if (!ReadDomain(in, &scenario->z) || !ReadDomain(in, &scenario->zbar)) {
    LOG_ERROR << "LoadScenario: bad domain block in " << path;
    return false;
  }
  std::string tag;
  int links = 0;
  if (!(in >> tag >> links) || tag != "overlap") {
    LOG_ERROR << "LoadScenario: bad overlap block in " << path;
    return false;
  }
  scenario->z_to_zbar.assign(scenario->z.num_users, -1);
  scenario->zbar_to_z.assign(scenario->zbar.num_users, -1);
  for (int i = 0; i < links; ++i) {
    int a = 0, b = 0;
    if (!(in >> a >> b) || a < 0 || a >= scenario->z.num_users || b < 0 ||
        b >= scenario->zbar.num_users) {
      LOG_ERROR << "LoadScenario: bad link in " << path;
      return false;
    }
    scenario->z_to_zbar[a] = b;
    scenario->zbar_to_z[b] = a;
  }
  scenario->CheckConsistency();
  return true;
}

}  // namespace nmcdr
