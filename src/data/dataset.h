#ifndef NMCDR_DATA_DATASET_H_
#define NMCDR_DATA_DATASET_H_

#include <string>
#include <vector>

#include "graph/interaction_graph.h"
#include "tensor/rng.h"

namespace nmcdr {

/// All observed data of one domain (§II.A: G = (U, V, E)).
struct DomainData {
  std::string name;
  int num_users = 0;
  int num_items = 0;
  std::vector<Interaction> interactions;

  /// Density |E| / (|U| * |V|), the statistic of Table I.
  double Density() const;
};

/// A two-domain multi-target CDR scenario. Domain Z and domain Z̄ have
/// disjoint id spaces; `z_to_zbar[u]` gives the Z̄ user id of the Z user u
/// when the identity link is known (the "overlapped" users), or -1.
struct CdrScenario {
  std::string name;
  DomainData z;
  DomainData zbar;
  std::vector<int> z_to_zbar;  // size z.num_users, -1 when not linked
  std::vector<int> zbar_to_z;  // size zbar.num_users, -1 when not linked

  /// Number of linked (overlapping) user pairs.
  int NumOverlapping() const;

  /// Validates invariants (sizes, symmetric links, id ranges); CHECK-fails
  /// on violation. Called by the generator and the loader.
  void CheckConsistency() const;
};

/// Leave-one-out split of one domain (§III.A.2): for every user with at
/// least 3 interactions, one is held out for test and one for validation;
/// the remainder train. Users with fewer interactions contribute all their
/// interactions to train and are skipped at evaluation.
struct DomainSplit {
  std::vector<Interaction> train;
  /// Held-out item per user, or -1.
  std::vector<int> valid_item;
  std::vector<int> test_item;

  /// Users with a test (resp. valid) positive.
  std::vector<int> TestUsers() const;
  std::vector<int> ValidUsers() const;
};

/// Produces the leave-one-out split. Interactions carry no timestamps in
/// the synthetic substrate, so the held-out pair is drawn uniformly from
/// the user's interactions with the given seeded rng (deterministic).
DomainSplit LeaveOneOutSplit(const DomainData& domain, Rng* rng);

/// Applies the overlap ratio K_u of §III.A.2: keeps ceil(ratio * overlap)
/// of the identity links (chosen with `rng`) and severs the rest, so the
/// two users remain in their domains but the model can no longer tell they
/// are the same person. Returns a new scenario.
CdrScenario ApplyOverlapRatio(const CdrScenario& scenario, double ratio,
                              Rng* rng);

/// Applies the density ratio D_s of §III.B.5: uniformly keeps `ratio` of
/// each domain's interactions, but never drops a user below
/// `min_per_user` interactions (so leave-one-out remains possible).
CdrScenario ApplyDensity(const CdrScenario& scenario, double ratio,
                         int min_per_user, Rng* rng);

/// Formats the Table-I style statistics line for one domain.
std::string DomainStatsString(const DomainData& domain);

}  // namespace nmcdr

#endif  // NMCDR_DATA_DATASET_H_
