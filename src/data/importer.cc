#include "data/importer.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "util/logging.h"

namespace nmcdr {
namespace {

struct RawInteraction {
  std::string user;
  std::string item;
};

bool ParseLine(const std::string& line, char separator, double min_rating,
               RawInteraction* out) {
  std::stringstream ss(line);
  std::string user, item, rating;
  if (!std::getline(ss, user, separator) ||
      !std::getline(ss, item, separator)) {
    return false;
  }
  if (user.empty() || item.empty()) return false;
  if (min_rating > 0.0) {
    if (!std::getline(ss, rating, separator)) return false;
    char* end = nullptr;
    const double r = std::strtod(rating.c_str(), &end);
    if (end == rating.c_str()) return false;
    if (r < min_rating) {
      out->user.clear();  // signal "valid but filtered"
      return true;
    }
  }
  out->user = user;
  out->item = item;
  return true;
}

}  // namespace

bool ImportInteractions(const std::string& path, const ImportOptions& options,
                        ImportedDomain* out) {
  std::ifstream in(path);
  if (!in) {
    LOG_ERROR << "ImportInteractions: cannot open " << path;
    return false;
  }
  std::vector<RawInteraction> raw;
  std::string line;
  bool first = true;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (first && options.skip_header) {
      first = false;
      continue;
    }
    first = false;
    if (line.empty()) continue;
    RawInteraction parsed;
    if (!ParseLine(line, options.separator, options.min_rating, &parsed)) {
      LOG_ERROR << "ImportInteractions: parse failure at " << path << ":"
                << line_number;
      return false;
    }
    if (!parsed.user.empty()) raw.push_back(std::move(parsed));
  }

  // Count per-user interactions on distinct (user, item) pairs and drop
  // low-activity users (§III.E.2: "we remove the user with less than 5
  // interactions" in the paper's preprocessing).
  std::unordered_map<std::string, int> user_counts;
  {
    std::unordered_map<std::string, std::unordered_map<std::string, bool>>
        seen;
    for (const RawInteraction& r : raw) {
      if (seen[r.user].emplace(r.item, true).second) ++user_counts[r.user];
    }
  }

  ImportedDomain imported;
  imported.domain.name = path;
  std::unordered_map<std::string, int> user_ids, item_ids;
  std::unordered_map<int64_t, bool> dedup;
  imported.user_keys.reserve(raw.size());
  imported.item_keys.reserve(raw.size());
  imported.domain.interactions.reserve(raw.size());
  for (const RawInteraction& r : raw) {
    if (user_counts[r.user] < options.min_user_interactions) continue;
    auto [uit, user_inserted] =
        user_ids.emplace(r.user, static_cast<int>(user_ids.size()));
    if (user_inserted) imported.user_keys.push_back(r.user);
    auto [iit, item_inserted] =
        item_ids.emplace(r.item, static_cast<int>(item_ids.size()));
    if (item_inserted) imported.item_keys.push_back(r.item);
    const int64_t key =
        static_cast<int64_t>(uit->second) * (1ll << 31) + iit->second;
    if (!dedup.emplace(key, true).second) continue;
    imported.domain.interactions.push_back({uit->second, iit->second});
  }
  imported.domain.num_users = static_cast<int>(imported.user_keys.size());
  imported.domain.num_items = static_cast<int>(imported.item_keys.size());
  *out = std::move(imported);
  return true;
}

CdrScenario JoinDomains(const std::string& name, const ImportedDomain& z,
                        const ImportedDomain& zbar) {
  CdrScenario scenario;
  scenario.name = name;
  scenario.z = z.domain;
  scenario.zbar = zbar.domain;
  scenario.z_to_zbar.assign(z.domain.num_users, -1);
  scenario.zbar_to_z.assign(zbar.domain.num_users, -1);
  std::unordered_map<std::string, int> zbar_users;
  for (int u = 0; u < zbar.domain.num_users; ++u) {
    zbar_users[zbar.user_keys[u]] = u;
  }
  for (int u = 0; u < z.domain.num_users; ++u) {
    auto it = zbar_users.find(z.user_keys[u]);
    if (it != zbar_users.end()) {
      scenario.z_to_zbar[u] = it->second;
      scenario.zbar_to_z[it->second] = u;
    }
  }
  scenario.CheckConsistency();
  return scenario;
}

}  // namespace nmcdr
