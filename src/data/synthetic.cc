#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/check.h"

namespace nmcdr {
namespace {

float Dot(const Matrix& a, int ra, const Matrix& b, int rb) {
  const float* ar = a.row(ra);
  const float* br = b.row(rb);
  double acc = 0.0;
  for (int c = 0; c < a.cols(); ++c) acc += static_cast<double>(ar[c]) * br[c];
  return static_cast<float>(acc);
}

/// Draws a user's interaction count: min + floor(lognormal) with the mean
/// of the lognormal part equal to `mean_extra`. Sigma=1 gives the heavy
/// tail that creates the paper's head/tail dichotomy.
int DrawActivity(double mean_extra, int min_interactions, int num_items,
                 Rng* rng) {
  int extra = 0;
  if (mean_extra > 0.0) {
    const double sigma = 1.0;
    const double mu = std::log(mean_extra) - 0.5 * sigma * sigma;
    extra = static_cast<int>(
        std::floor(std::exp(rng->Gaussian(static_cast<float>(mu),
                                          static_cast<float>(sigma)))));
  }
  const int n = min_interactions + extra;
  // A user cannot interact with more items than exist.
  return std::min(n, num_items);
}

}  // namespace

// Samples one domain's interactions: every pick draws a popularity-biased
// candidate window and takes the candidate with the highest
// affinity + Gumbel noise (a softmax choice with the configured
// sharpness). Retries on duplicates.
DomainData GenerateDomainFromLatents(const SyntheticDomainSpec& spec,
                                     const Matrix& user_latent,
                                     const Matrix& item_latent,
                                     double preference_sharpness,
                                     int min_interactions, Rng* rng) {
  DomainData domain;
  DomainData* out = &domain;
  out->name = spec.name;
  out->num_users = spec.num_users;
  out->num_items = spec.num_items;
  out->interactions.clear();

  ZipfSampler popularity(spec.num_items, spec.item_popularity_exponent);
  // Popularity rank -> item id: a fixed random permutation, so popularity
  // is independent of the latent geometry.
  std::vector<int> rank_to_item(spec.num_items);
  for (int i = 0; i < spec.num_items; ++i) rank_to_item[i] = i;
  rng->Shuffle(&rank_to_item);

  constexpr int kCandidateWindow = 24;
  out->interactions.reserve(
      static_cast<size_t>(spec.num_users) *
      (static_cast<size_t>(min_interactions) +
       static_cast<size_t>(spec.mean_extra_interactions) + 1));
  for (int u = 0; u < spec.num_users; ++u) {
    const int target =
        DrawActivity(spec.mean_extra_interactions, min_interactions,
                     spec.num_items, rng);
    std::unordered_set<int> taken;
    int attempts = 0;
    const int max_attempts = target * 50 + 200;
    while (static_cast<int>(taken.size()) < target &&
           attempts++ < max_attempts) {
      // Candidate window drawn from the popularity law.
      int best_item = -1;
      float best_score = -1e30f;
      for (int c = 0; c < kCandidateWindow; ++c) {
        const int item = rank_to_item[popularity.Sample(rng)];
        if (taken.count(item)) continue;
        // Gumbel-max trick: argmax(beta*affinity + Gumbel) is a softmax
        // draw with inverse temperature beta.
        const float gumbel = -std::log(
            -std::log(static_cast<float>(rng->UniformDouble()) + 1e-12f) +
            1e-12f);
        const float score =
            static_cast<float>(preference_sharpness) *
                Dot(user_latent, u, item_latent, item) +
            gumbel;
        if (score > best_score) {
          best_score = score;
          best_item = item;
        }
      }
      if (best_item < 0) continue;
      taken.insert(best_item);
    }
    for (int item : taken) out->interactions.push_back({u, item});
  }
  return domain;
}

float SyntheticGroundTruth::AffinityZ(int user, int item) const {
  return Dot(z_user_latent, user, z_item_latent, item);
}

float SyntheticGroundTruth::AffinityZbar(int user, int item) const {
  return Dot(zbar_user_latent, user, zbar_item_latent, item);
}

CdrScenario GenerateScenario(const SyntheticScenarioSpec& spec,
                             SyntheticGroundTruth* ground_truth) {
  NMCDR_CHECK_GT(spec.z.num_users, 0);
  NMCDR_CHECK_GT(spec.zbar.num_users, 0);
  NMCDR_CHECK_GE(spec.num_overlapping, 0);
  NMCDR_CHECK_LE(spec.num_overlapping,
                 std::min(spec.z.num_users, spec.zbar.num_users));
  NMCDR_CHECK_GE(spec.cross_domain_correlation, 0.0);
  NMCDR_CHECK_LE(spec.cross_domain_correlation, 1.0);

  Rng rng(spec.seed);
  const int L = spec.latent_dim;
  // Per-coordinate scale L^{-1/4}: user-item affinity dot products then
  // have ~unit variance, so preference_sharpness is calibrated in units of
  // Gumbel noise (the choice model's randomness).
  const float latent_std = std::pow(static_cast<float>(L), -0.25f);
  const float w_core =
      std::sqrt(static_cast<float>(spec.cross_domain_correlation));
  const float w_local =
      std::sqrt(1.f - static_cast<float>(spec.cross_domain_correlation));

  // Overlapping persons share a latent core across domains; every user's
  // domain latent mixes that core with a domain-local component.
  Matrix core = Matrix::Gaussian(spec.num_overlapping, L, &rng, 0.f,
                                 latent_std);
  auto make_user_latent = [&](int num_users) {
    Matrix lat = Matrix::Gaussian(num_users, L, &rng, 0.f, latent_std);
    for (int u = 0; u < std::min(num_users, spec.num_overlapping); ++u) {
      float* lr = lat.row(u);
      const float* cr = core.row(u);
      for (int c = 0; c < L; ++c) lr[c] = w_core * cr[c] + w_local * lr[c];
    }
    return lat;
  };

  Matrix z_user = make_user_latent(spec.z.num_users);
  Matrix zbar_user = make_user_latent(spec.zbar.num_users);
  // Clustered item latents: a shared set of "genre" centroids per domain.
  auto make_item_latent = [&](int num_items) {
    Matrix lat = Matrix::Gaussian(num_items, L, &rng, 0.f, latent_std);
    if (spec.item_clusters <= 0) return lat;
    const float w_noise = static_cast<float>(spec.cluster_noise);
    const float w_centroid = std::sqrt(1.f - w_noise * w_noise);
    Matrix centroids =
        Matrix::Gaussian(spec.item_clusters, L, &rng, 0.f, latent_std);
    for (int v = 0; v < num_items; ++v) {
      const float* c =
          centroids.row(static_cast<int>(rng.NextUint64(spec.item_clusters)));
      float* row = lat.row(v);
      for (int d = 0; d < L; ++d) {
        row[d] = w_centroid * c[d] + w_noise * row[d];
      }
    }
    return lat;
  };
  Matrix z_item = make_item_latent(spec.z.num_items);
  Matrix zbar_item = make_item_latent(spec.zbar.num_items);

  CdrScenario scenario;
  scenario.name = spec.name;
  scenario.z = GenerateDomainFromLatents(spec.z, z_user, z_item,
                                         spec.preference_sharpness,
                                         spec.min_interactions, &rng);
  scenario.zbar = GenerateDomainFromLatents(spec.zbar, zbar_user, zbar_item,
                                            spec.preference_sharpness,
                                            spec.min_interactions, &rng);

  scenario.z_to_zbar.assign(spec.z.num_users, -1);
  scenario.zbar_to_z.assign(spec.zbar.num_users, -1);
  for (int u = 0; u < spec.num_overlapping; ++u) {
    scenario.z_to_zbar[u] = u;
    scenario.zbar_to_z[u] = u;
  }
  scenario.CheckConsistency();

  if (ground_truth != nullptr) {
    ground_truth->z_user_latent = std::move(z_user);
    ground_truth->z_item_latent = std::move(z_item);
    ground_truth->zbar_user_latent = std::move(zbar_user);
    ground_truth->zbar_item_latent = std::move(zbar_item);
  }
  return scenario;
}

}  // namespace nmcdr
