#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

#include "util/check.h"

namespace nmcdr {

double DomainData::Density() const {
  if (num_users == 0 || num_items == 0) return 0.0;
  return static_cast<double>(interactions.size()) /
         (static_cast<double>(num_users) * num_items);
}

int CdrScenario::NumOverlapping() const {
  int n = 0;
  for (int v : z_to_zbar) {
    if (v >= 0) ++n;
  }
  return n;
}

void CdrScenario::CheckConsistency() const {
  NMCDR_CHECK_EQ(static_cast<int>(z_to_zbar.size()), z.num_users);
  NMCDR_CHECK_EQ(static_cast<int>(zbar_to_z.size()), zbar.num_users);
  for (int u = 0; u < z.num_users; ++u) {
    const int m = z_to_zbar[u];
    if (m < 0) continue;
    NMCDR_CHECK_LT(m, zbar.num_users);
    NMCDR_CHECK_EQ(zbar_to_z[m], u);
  }
  for (int u = 0; u < zbar.num_users; ++u) {
    const int m = zbar_to_z[u];
    if (m < 0) continue;
    NMCDR_CHECK_LT(m, z.num_users);
    NMCDR_CHECK_EQ(z_to_zbar[m], u);
  }
  for (const Interaction& e : z.interactions) {
    NMCDR_CHECK_GE(e.user, 0);
    NMCDR_CHECK_LT(e.user, z.num_users);
    NMCDR_CHECK_GE(e.item, 0);
    NMCDR_CHECK_LT(e.item, z.num_items);
  }
  for (const Interaction& e : zbar.interactions) {
    NMCDR_CHECK_GE(e.user, 0);
    NMCDR_CHECK_LT(e.user, zbar.num_users);
    NMCDR_CHECK_GE(e.item, 0);
    NMCDR_CHECK_LT(e.item, zbar.num_items);
  }
}

std::vector<int> DomainSplit::TestUsers() const {
  std::vector<int> out;
  out.reserve(test_item.size());
  for (size_t u = 0; u < test_item.size(); ++u) {
    if (test_item[u] >= 0) out.push_back(static_cast<int>(u));
  }
  return out;
}

std::vector<int> DomainSplit::ValidUsers() const {
  std::vector<int> out;
  out.reserve(valid_item.size());
  for (size_t u = 0; u < valid_item.size(); ++u) {
    if (valid_item[u] >= 0) out.push_back(static_cast<int>(u));
  }
  return out;
}

DomainSplit LeaveOneOutSplit(const DomainData& domain, Rng* rng) {
  std::vector<std::vector<int>> per_user(domain.num_users);
  for (const Interaction& e : domain.interactions) {
    per_user[e.user].push_back(e.item);
  }
  DomainSplit split;
  split.valid_item.assign(domain.num_users, -1);
  split.test_item.assign(domain.num_users, -1);
  split.train.reserve(domain.interactions.size());
  for (int u = 0; u < domain.num_users; ++u) {
    std::vector<int>& items = per_user[u];
    if (items.size() >= 3) {
      // Hold out two distinct positions for test/valid.
      const int i_test = static_cast<int>(rng->NextUint64(items.size()));
      std::swap(items[i_test], items.back());
      split.test_item[u] = items.back();
      items.pop_back();
      const int i_valid = static_cast<int>(rng->NextUint64(items.size()));
      std::swap(items[i_valid], items.back());
      split.valid_item[u] = items.back();
      items.pop_back();
    }
    for (int v : items) split.train.push_back({u, v});
  }
  return split;
}

CdrScenario ApplyOverlapRatio(const CdrScenario& scenario, double ratio,
                              Rng* rng) {
  NMCDR_CHECK_GE(ratio, 0.0);
  NMCDR_CHECK_LE(ratio, 1.0);
  std::vector<int> linked;
  linked.reserve(scenario.z.num_users);
  for (int u = 0; u < scenario.z.num_users; ++u) {
    if (scenario.z_to_zbar[u] >= 0) linked.push_back(u);
  }
  const int keep = static_cast<int>(
      std::ceil(ratio * static_cast<double>(linked.size())));
  std::vector<int> keep_idx = rng->SampleWithoutReplacement(
      static_cast<int>(linked.size()), std::min<int>(keep, linked.size()));
  std::vector<bool> kept(scenario.z.num_users, false);
  for (int i : keep_idx) kept[linked[i]] = true;

  CdrScenario out = scenario;
  for (int u = 0; u < out.z.num_users; ++u) {
    if (out.z_to_zbar[u] >= 0 && !kept[u]) {
      out.zbar_to_z[out.z_to_zbar[u]] = -1;
      out.z_to_zbar[u] = -1;
    }
  }
  out.CheckConsistency();
  return out;
}

namespace {

DomainData ApplyDensityToDomain(const DomainData& domain, double ratio,
                                int min_per_user, Rng* rng) {
  std::vector<std::vector<int>> per_user(domain.num_users);
  for (const Interaction& e : domain.interactions) {
    per_user[e.user].push_back(e.item);
  }
  DomainData out = domain;
  out.interactions.clear();
  out.interactions.reserve(domain.interactions.size());
  for (int u = 0; u < domain.num_users; ++u) {
    std::vector<int>& items = per_user[u];
    const int n = static_cast<int>(items.size());
    int keep = static_cast<int>(std::lround(ratio * n));
    keep = std::max(keep, std::min(min_per_user, n));
    std::vector<int> idx = rng->SampleWithoutReplacement(n, keep);
    for (int i : idx) out.interactions.push_back({u, items[i]});
  }
  return out;
}

}  // namespace

CdrScenario ApplyDensity(const CdrScenario& scenario, double ratio,
                         int min_per_user, Rng* rng) {
  NMCDR_CHECK_GT(ratio, 0.0);
  NMCDR_CHECK_LE(ratio, 1.0);
  CdrScenario out = scenario;
  out.z = ApplyDensityToDomain(scenario.z, ratio, min_per_user, rng);
  out.zbar = ApplyDensityToDomain(scenario.zbar, ratio, min_per_user, rng);
  out.CheckConsistency();
  return out;
}

std::string DomainStatsString(const DomainData& domain) {
  std::ostringstream oss;
  oss << domain.name << ": users=" << domain.num_users
      << " items=" << domain.num_items
      << " ratings=" << domain.interactions.size() << " density="
      << domain.Density() * 100.0 << "%";
  return oss.str();
}

}  // namespace nmcdr
