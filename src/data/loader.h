#ifndef NMCDR_DATA_LOADER_H_
#define NMCDR_DATA_LOADER_H_

#include <string>

#include "data/dataset.h"

namespace nmcdr {

/// Persists a scenario as a single TSV file (header lines with domain
/// sizes, then one interaction per line, then the overlap links), so
/// generated workloads can be cached across bench runs or exported.
/// Returns false (and logs) on I/O failure.
bool SaveScenario(const CdrScenario& scenario, const std::string& path);

/// Loads a scenario written by SaveScenario. Returns false on parse or
/// I/O failure; on success the scenario passes CheckConsistency().
bool LoadScenario(const std::string& path, CdrScenario* scenario);

}  // namespace nmcdr

#endif  // NMCDR_DATA_LOADER_H_
