#ifndef NMCDR_DATA_PRESETS_H_
#define NMCDR_DATA_PRESETS_H_

#include <string>
#include <vector>

#include "data/synthetic.h"

namespace nmcdr {

/// Dataset/workload scale used by benchmarks and examples:
///   kSmoke — seconds-level sanity runs (CI / tests);
///   kSmall — the default for the single-core container (minutes/table);
///   kFull  — ~4x small, closer to the paper's statistical regime.
enum class BenchScale { kSmoke, kSmall, kFull };

/// Reads NMCDR_BENCH_SCALE ("smoke" | "small" | "full"); defaults to
/// kSmall. Unrecognized values fall back to the default with a warning.
BenchScale BenchScaleFromEnv();

/// Human-readable name of a scale.
std::string BenchScaleName(BenchScale scale);

/// The four scenario presets of Table I, scaled down (~1/100 of the paper
/// at kSmall) with the per-domain shape preserved: relative user/item
/// counts, overlap fraction, interaction density, and — crucially for the
/// Table II vs III/IV improvement discussion — the average interactions
/// per item.
SyntheticScenarioSpec MusicMovieSpec(BenchScale scale);
SyntheticScenarioSpec ClothSportSpec(BenchScale scale);
SyntheticScenarioSpec PhoneElecSpec(BenchScale scale);
SyntheticScenarioSpec LoanFundSpec(BenchScale scale);

/// All four presets in paper order.
std::vector<SyntheticScenarioSpec> AllScenarioSpecs(BenchScale scale);

}  // namespace nmcdr

#endif  // NMCDR_DATA_PRESETS_H_
