#ifndef NMCDR_DATA_IMPORTER_H_
#define NMCDR_DATA_IMPORTER_H_

#include <string>

#include "data/dataset.h"

namespace nmcdr {

/// Options for importing real interaction logs (MovieLens-style / Amazon
/// review dumps) into a DomainData. Input format: one interaction per
/// line, `user<sep>item[<sep>rating[<sep>anything]]`, with arbitrary
/// string ids. This is the on-ramp for running the NMCDR pipeline on the
/// paper's actual datasets when they are available.
struct ImportOptions {
  char separator = '\t';
  /// Lines with a rating below this are dropped (implicit-feedback
  /// thresholding; 0 keeps everything).
  double min_rating = 0.0;
  /// Users with fewer interactions than this are dropped AFTER rating
  /// filtering (the paper removes users with < 5 interactions).
  int min_user_interactions = 0;
  /// Skip the first line (CSV headers).
  bool skip_header = false;
};

/// Result of an import: the domain plus the id mappings, so two imported
/// domains can be joined on shared user keys.
struct ImportedDomain {
  DomainData domain;
  std::vector<std::string> user_keys;  // dense id -> original key
  std::vector<std::string> item_keys;
};

/// Imports one interaction file. Returns false (and logs) on I/O or parse
/// failure; partial data is not returned.
bool ImportInteractions(const std::string& path, const ImportOptions& options,
                        ImportedDomain* out);

/// Joins two imported domains into a CdrScenario: users whose original
/// keys match become the overlapped users (identity links).
CdrScenario JoinDomains(const std::string& name, const ImportedDomain& z,
                        const ImportedDomain& zbar);

}  // namespace nmcdr

#endif  // NMCDR_DATA_IMPORTER_H_
