#ifndef NMCDR_DATA_SYNTHETIC_H_
#define NMCDR_DATA_SYNTHETIC_H_

#include <string>

#include "data/dataset.h"
#include "tensor/matrix.h"

namespace nmcdr {

/// Spec of one synthetic domain. The generator substitutes for the Amazon
/// and MYbank corpora (see DESIGN.md §1): it produces implicit-feedback
/// interactions with (a) Zipf item popularity, (b) long-tailed user
/// activity, and (c) preference-driven choices from latent factors, so the
/// long-tail/tail-user phenomena the paper targets are genuinely present.
struct SyntheticDomainSpec {
  std::string name;
  int num_users = 0;
  int num_items = 0;
  /// Mean number of interactions beyond `min_interactions`, with a
  /// lognormal (heavy) tail across users — creates head/tail users.
  double mean_extra_interactions = 5.0;
  /// Zipf exponent of item popularity.
  double item_popularity_exponent = 1.0;
};

/// Spec of a two-domain scenario.
struct SyntheticScenarioSpec {
  std::string name;
  SyntheticDomainSpec z;
  SyntheticDomainSpec zbar;
  /// Number of persons present in both domains (the overlap of Table I).
  int num_overlapping = 0;
  /// Dimension of the latent preference space.
  int latent_dim = 8;
  /// Fraction of a user's domain latent that comes from the shared
  /// cross-domain core (0 = domains unrelated, 1 = identical tastes):
  /// the knob that makes cross-domain transfer genuinely informative.
  double cross_domain_correlation = 0.75;
  /// Inverse temperature of preference-driven item choice: higher values
  /// concentrate users on their true-affinity items.
  double preference_sharpness = 4.5;
  /// Items are organized into latent clusters (genres/categories):
  /// item latent = sqrt(1-w^2) * cluster centroid + w * idiosyncratic
  /// noise, w = cluster_noise. Clustered catalogs are what makes taste
  /// learnable from a handful of interactions — both in real data and
  /// here (see examples/data_diagnostics.cpp).
  int item_clusters = 8;
  double cluster_noise = 0.4;
  /// Minimum interactions per user (3 keeps leave-one-out feasible).
  int min_interactions = 3;
  uint64_t seed = 17;
};

/// Ground-truth latents behind a generated scenario; consumed by the
/// online-serving simulator (Table VIII) to compute true conversion
/// probabilities, and by tests to verify signal is transferable.
struct SyntheticGroundTruth {
  Matrix z_user_latent;     // [z.num_users, latent_dim]
  Matrix z_item_latent;     // [z.num_items, latent_dim]
  Matrix zbar_user_latent;  // [zbar.num_users, latent_dim]
  Matrix zbar_item_latent;  // [zbar.num_items, latent_dim]

  /// True affinity logit of a user-item pair in domain Z (resp. Z̄).
  float AffinityZ(int user, int item) const;
  float AffinityZbar(int user, int item) const;
};

/// Generates a scenario from the spec. Overlapping persons occupy user ids
/// [0, num_overlapping) in BOTH domains (the identity links of z_to_zbar);
/// ApplyOverlapRatio then hides a fraction of those links per K_u.
/// If `ground_truth` is non-null it receives the generating latents.
CdrScenario GenerateScenario(const SyntheticScenarioSpec& spec,
                             SyntheticGroundTruth* ground_truth = nullptr);

/// Lower-level entry: generates one domain's interactions from given user
/// and item latents (preference-driven, popularity-skewed, long-tailed).
/// Used by GenerateScenario and by the multi-domain online-serving world
/// (Table VIII), where several domains must share person latents.
DomainData GenerateDomainFromLatents(const SyntheticDomainSpec& spec,
                                     const Matrix& user_latent,
                                     const Matrix& item_latent,
                                     double preference_sharpness,
                                     int min_interactions, Rng* rng);

}  // namespace nmcdr

#endif  // NMCDR_DATA_SYNTHETIC_H_
