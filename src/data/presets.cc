#include "data/presets.h"

#include <cstdlib>

#include "util/logging.h"

namespace nmcdr {
namespace {

/// Multiplier applied to user/item/overlap counts per scale.
double ScaleFactor(BenchScale scale) {
  switch (scale) {
    case BenchScale::kSmoke:
      return 0.2;
    case BenchScale::kSmall:
      return 1.0;
    case BenchScale::kFull:
      return 4.0;
  }
  return 1.0;
}

int Scaled(int base, double f, int floor_value) {
  const int v = static_cast<int>(base * f);
  return v < floor_value ? floor_value : v;
}

}  // namespace

BenchScale BenchScaleFromEnv() {
  const char* env = std::getenv("NMCDR_BENCH_SCALE");
  if (env == nullptr) return BenchScale::kSmall;
  const std::string s(env);
  if (s == "smoke") return BenchScale::kSmoke;
  if (s == "small") return BenchScale::kSmall;
  if (s == "full") return BenchScale::kFull;
  LOG_WARNING << "Unknown NMCDR_BENCH_SCALE '" << s << "', using 'small'";
  return BenchScale::kSmall;
}

std::string BenchScaleName(BenchScale scale) {
  switch (scale) {
    case BenchScale::kSmoke:
      return "smoke";
    case BenchScale::kSmall:
      return "small";
    case BenchScale::kFull:
      return "full";
  }
  return "?";
}

// Base counts are ~1/100 of the paper's Table I; mean_extra_interactions
// reproduces the per-user interaction averages (ratings/users - min 3).

SyntheticScenarioSpec MusicMovieSpec(BenchScale scale) {
  const double f = ScaleFactor(scale);
  SyntheticScenarioSpec spec;
  spec.name = "Music-Movie";
  spec.z = {"Music", Scaled(500, f, 60), Scaled(440, f, 50), 11.0, 0.9};
  spec.zbar = {"Movie", Scaled(880, f, 90), Scaled(390, f, 45), 10.5, 0.9};
  spec.num_overlapping = Scaled(150, f, 20);
  spec.seed = 1101;
  return spec;
}

SyntheticScenarioSpec ClothSportSpec(BenchScale scale) {
  const double f = ScaleFactor(scale);
  SyntheticScenarioSpec spec;
  spec.name = "Cloth-Sport";
  spec.z = {"Cloth", Scaled(280, f, 40), Scaled(95, f, 25), 2.9, 0.9};
  spec.zbar = {"Sport", Scaled(1080, f, 110), Scaled(400, f, 45), 4.9, 0.9};
  spec.num_overlapping = Scaled(160, f, 20);
  spec.seed = 1102;
  return spec;
}

SyntheticScenarioSpec PhoneElecSpec(BenchScale scale) {
  const double f = ScaleFactor(scale);
  SyntheticScenarioSpec spec;
  spec.name = "Phone-Elec";
  spec.z = {"Phone", Scaled(420, f, 50), Scaled(180, f, 30), 1.7, 0.9};
  spec.zbar = {"Elec", Scaled(270, f, 40), Scaled(130, f, 25), 3.3, 0.9};
  spec.num_overlapping = Scaled(78, f, 12);
  spec.seed = 1103;
  return spec;
}

SyntheticScenarioSpec LoanFundSpec(BenchScale scale) {
  const double f = ScaleFactor(scale);
  SyntheticScenarioSpec spec;
  spec.name = "Loan-Fund";
  // Few items, many users: preserves the very high average interactions
  // per item of the MYbank data (Table I / §III.B.4). The paper's mean
  // interactions per *user* are below 3; leave-one-out needs >= 3, so we
  // generate ~3.4 per user (documented substitution, DESIGN.md).
  spec.z = {"Loan", Scaled(1480, f, 150), Scaled(60, f, 40), 0.5, 0.7};
  spec.zbar = {"Fund", Scaled(650, f, 80), Scaled(50, f, 35), 0.4, 0.7};
  spec.num_overlapping = Scaled(65, f, 10);
  spec.seed = 1104;
  return spec;
}

std::vector<SyntheticScenarioSpec> AllScenarioSpecs(BenchScale scale) {
  return {MusicMovieSpec(scale), ClothSportSpec(scale), PhoneElecSpec(scale),
          LoanFundSpec(scale)};
}

}  // namespace nmcdr
