#ifndef NMCDR_SERVING_SCORING_KERNELS_H_
#define NMCDR_SERVING_SCORING_KERNELS_H_

#include <cstdint>

#include "core/prediction.h"
#include "tensor/matrix.h"
#include "util/thread_annotations.h"

namespace nmcdr {

struct QuantizedRows;  // serving/quantized_snapshot.h

namespace scoring {

/// Autograd-free scoring inner loops shared by ScoreEngine (monolithic
/// snapshot) and cluster::ShardedSnapshot (partitioned tables). Both
/// callers evaluate the SAME code over the SAME per-item rows, which is
/// what makes sharded top-K bit-identical to single-snapshot top-K: every
/// kernel here is row-independent — the score of item row i never depends
/// on which other rows share the block or the shard.

/// Activates h[0..n) in place; the dispatch happens once per call, not per
/// element (the fast scoring loop is dominated by such per-scalar costs).
void ActivateInPlace(float* h, int n, ag::Activation act) NMCDR_HOT;

/// kFast precompute: item-side first-layer partials with the bias folded
/// in, item_reps * w0_item + b0, [num_items, H]. Computed once per frozen
/// table (per domain, or per shard slice of a domain — identical rows
/// either way, MatMul is row-independent).
Matrix BuildItemFirst(const FrozenPredictionHead& head,
                      const Matrix& item_reps) NMCDR_COLD;

/// Widest layer FastScoreIds flows through: the size its two scratch
/// buffers (`h_buf` / `next_buf`) must have. Scratch Prepare() helpers
/// call this once per geometry change.
int MaxHeadWidth(const FrozenPredictionHead& head) NMCDR_COLD;

/// kFast per-request precompute: the user-side first-layer partial
/// u * w0_user into u_first[0..H), without Matrix temporaries.
void UserFirstPartial(const FrozenPredictionHead& head, const float* u,
                      float* u_first) NMCDR_HOT;

/// kFast inner loop: fused head evaluation from the precomputed item
/// partials, no heap allocation at all — `h_buf` and `next_buf` are
/// caller-owned scratch of MaxHeadWidth(head) floats each (distinct,
/// non-aliasing). `ids[0..n)` index rows of `item_reps` / `item_first`
/// (local ids when scoring a shard slice); scores land in out[0..n).
/// Scores differ from the exact path only by first-layer summation
/// rounding.
void FastScoreIds(const FrozenPredictionHead& head, const Matrix& item_reps,
                  const Matrix& item_first, const float* u,
                  const float* u_first, const int* ids, int n, float* h_buf,
                  float* next_buf, float* out) NMCDR_HOT;

/// The user-side operand of the quantized gmf dot, quantized once per
/// request into caller-owned storage (QuantizeUserGmf).
struct QuantizedUser {
  const int8_t* q = nullptr;  // [dim] codes
  float scale = 1.f;
  int32_t zero = 0;
  int32_t qsum = 0;
};

/// kQuantized per-request precompute: quantizes the user-side gmf operand
/// u[j] * gmf_w[j] (folding the learned per-dimension weight into the
/// user half, so the per-candidate dot is a pure int8 x int8 dot).
/// `uw_buf` and `q_buf` are caller-owned scratch of dim floats / codes;
/// the returned view aliases `q_buf`. No allocation.
QuantizedUser QuantizeUserGmf(const FrozenPredictionHead& head, const float* u,
                              float* uw_buf, int8_t* q_buf) NMCDR_HOT;

/// kQuantized inner loop: like FastScoreIds, but the two per-candidate
/// item tables are int8 (serving/quantized_snapshot.h). The first MLP
/// layer fuses the dequantization of the item partial into the add; the
/// gmf term is a dequantization-free int32 code dot corrected for both
/// zero points:
///
///   gmf ≈ s_u s_v [Σ q_u q_v − z_v Σ q_u − z_u Σ q_v + dim z_u z_v]
///
/// with the bracket exact in integer arithmetic — the float sequence per
/// candidate is fixed, so scores are deterministic and row-independent
/// (sharded == monolithic, bit for bit). Scores differ from kFast only by
/// the quantization error of the item tables and the user gmf operand.
void QuantizedScoreIds(const FrozenPredictionHead& head,
                       const QuantizedRows& item_first,
                       const QuantizedRows& item_gmf, const float* u_first,
                       const QuantizedUser& user, const int* ids, int n,
                       float* h_buf, float* next_buf, float* out) NMCDR_HOT;

/// kExact path: replays the trainer's kernel sequence over blocks of
/// `item_block` candidates — user partial first, item half accumulated on
/// top via the same in-order GEMM — so scores equal RecModel::Score to the
/// last bit. `ids` index rows of `item_reps`.
/// The Matrix temporaries this path materializes per block are the price
/// of bit-replaying the trainer (documented hot-alloc exemption: the
/// analyzer deliberately does not flag Matrix construction — see
/// DESIGN.md's static hot-path cost model).
void ExactScoreIds(const FrozenPredictionHead& head, const Matrix& item_reps,
                   const float* u, const int* ids, int n, int item_block,
                   float* out) NMCDR_HOT;

}  // namespace scoring
}  // namespace nmcdr

#endif  // NMCDR_SERVING_SCORING_KERNELS_H_
