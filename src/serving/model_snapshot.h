#ifndef NMCDR_SERVING_MODEL_SNAPSHOT_H_
#define NMCDR_SERVING_MODEL_SNAPSHOT_H_

#include <string>
#include <vector>

#include "core/multi_domain_nmcdr.h"
#include "core/rec_model.h"

namespace nmcdr {

/// One domain of a frozen serving snapshot: the autograd-free scoring
/// state plus the person links used for cross-domain (cold-start)
/// request routing.
struct SnapshotDomain {
  std::string name;
  FrozenDomainState frozen;
  /// user_to_person[u] = shared person id of local user u, or -1 when the
  /// identity link is hidden; person_to_user is the inverse (or -1).
  std::vector<int> user_to_person;
  std::vector<int> person_to_user;

  int num_users() const { return frozen.num_users(); }
  int num_items() const { return frozen.num_items(); }
};

/// Spec for ModelSnapshot::MakeSynthetic: a freeze-only snapshot with
/// random tables at production-like row counts (no training, no autograd
/// graph), so serving-scale harnesses (bench_cluster's millions of users)
/// can exercise the cluster path without a millions-of-users training
/// run. Domain 0 is the anchor: its user u is person u; in every other
/// domain the first `overlap` fraction of users link to the same-id
/// person (the cross-domain overlap), the rest are fresh persons.
struct SyntheticSnapshotSpec {
  int num_domains = 2;
  int users_per_domain = 100000;
  int items_per_domain = 20000;
  int dim = 16;
  /// First-layer width of the synthetic prediction head.
  int hidden = 16;
  /// Fraction of each non-anchor domain's users linked into domain 0.
  float overlap = 0.2f;
  uint64_t seed = 1;
};

/// A trained model frozen into plain embedding tables and prediction-head
/// weights — the unit the online inference engine serves from. The
/// industrial pattern (the paper's MYbank deployment, and the
/// matching-stage serving of Xie et al.): training recomputes
/// representations through the full graph pipeline; serving looks them up
/// and only evaluates the tiny prediction head per candidate. Snapshots
/// round-trip through disk (Save/Load) via the checkpoint record
/// primitives of src/autograd/serialization.
class ModelSnapshot {
 public:
  ModelSnapshot() = default;

  /// Freezes a trained two-domain model. Persons are the union of the
  /// scenario's users with VISIBLE overlap pairs collapsed (domain-Z user
  /// u is person u; a linked Z̄ user shares it; an unlinked Z̄ user v is
  /// person |U_Z| + v). Returns false when the model does not support
  /// freezing (RecModel::FreezeDomain default).
  static bool FreezePair(RecModel* model, const CdrScenario& scenario,
                         ModelSnapshot* out);

  /// Freezes a jointly trained K-domain model together with its person
  /// mapping.
  static bool FreezeMultiDomain(MultiDomainNmcdrModel* model,
                                const MultiDomainView& view,
                                ModelSnapshot* out);

  /// Builds a structurally valid snapshot with seeded random tables at
  /// the spec's scale — serving benches only (the scores are meaningless,
  /// the shapes and person links are real).
  static ModelSnapshot MakeSynthetic(const SyntheticSnapshotSpec& spec);

  int num_domains() const { return static_cast<int>(domains_.size()); }
  int num_persons() const { return num_persons_; }
  const SnapshotDomain& domain(int d) const { return domains_[d]; }

  /// Local user id of `person` in domain `d`, or -1.
  int UserOfPerson(int d, int person) const;

  /// Resolves a user known as local id `user` of `user_domain` into a
  /// local id of `target_domain` through the person links; -1 when the
  /// identity is unknown there (the cold-start case).
  int ResolveUser(int user_domain, int user, int target_domain) const;

  /// Writes the snapshot to `path`. Returns false (and logs) on failure.
  bool Save(const std::string& path) const;

  /// Reads a snapshot written by Save. Returns false (and logs) if the
  /// file is unreadable, truncated, structurally inconsistent, dimension-
  /// inconsistent (head weights not matching the representation tables,
  /// with the exact dimension diff in the message), or carrying non-finite
  /// values. On failure `*error` (when non-null) receives the reason; a
  /// rejected file never leaves partial state in `*snapshot`.
  static bool Load(const std::string& path, ModelSnapshot* snapshot,
                   std::string* error = nullptr);

  /// Exact structural and bitwise value equality (round-trip checks).
  bool Equals(const ModelSnapshot& other) const;

 private:
  std::vector<SnapshotDomain> domains_;
  int num_persons_ = 0;
};

}  // namespace nmcdr

#endif  // NMCDR_SERVING_MODEL_SNAPSHOT_H_
