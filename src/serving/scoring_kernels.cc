#include "serving/scoring_kernels.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "serving/quantized_snapshot.h"
#include "tensor/matrix_ops.h"

namespace nmcdr {
namespace scoring {

void ActivateInPlace(float* h, int n, ag::Activation act) {
  switch (act) {
    case ag::Activation::kNone:
      return;
    case ag::Activation::kRelu:
      for (int j = 0; j < n; ++j) h[j] = h[j] > 0.f ? h[j] : 0.f;
      return;
    case ag::Activation::kSigmoid:
      for (int j = 0; j < n; ++j) h[j] = 1.f / (1.f + std::exp(-h[j]));
      return;
    case ag::Activation::kTanh:
      for (int j = 0; j < n; ++j) h[j] = std::tanh(h[j]);
      return;
  }
}

Matrix BuildItemFirst(const FrozenPredictionHead& head,
                      const Matrix& item_reps) {
  return AddRowBroadcast(MatMul(item_reps, head.w0_item), head.b0);
}

int MaxHeadWidth(const FrozenPredictionHead& head) {
  int max_width = head.b0.cols();
  for (const Matrix& w : head.w) max_width = std::max(max_width, w.cols());
  return max_width;
}

void UserFirstPartial(const FrozenPredictionHead& head, const float* u,
                      float* u_first) {
  const int dim = head.dim();
  const int hidden = head.b0.cols();
  std::fill(u_first, u_first + hidden, 0.f);
  for (int k = 0; k < dim; ++k) {
    const float uk = u[k];
    if (uk == 0.f) continue;
    const float* wrow = head.w0_user.row(k);
    for (int j = 0; j < hidden; ++j) u_first[j] += uk * wrow[j];
  }
}

void FastScoreIds(const FrozenPredictionHead& head, const Matrix& item_reps,
                  const Matrix& item_first, const float* u,
                  const float* u_first, const int* ids, int n, float* h_buf,
                  float* next_buf, float* out) {
  // Fused serving path: no Matrix temporaries, the caller-owned scratch
  // pair reused across candidates (and across calls — this function never
  // touches the heap). Per pair only the first-layer add (precomputed
  // item partials), the activation, and the tiny tail layers remain, so
  // the cost is dominated by ~3 * hidden flops instead of the trainer's
  // full 2 * dim * hidden first-layer GEMM plus tape bookkeeping.
  const int dim = head.dim();
  const int hidden = head.b0.cols();
  const float* gmf_w = head.gmf_w.data();  // [dim, 1], contiguous
  const float gmf_bias = head.gmf_b.data()[0];

  float* h = h_buf;
  float* next = next_buf;

  for (int i = 0; i < n; ++i) {
    const int item = ids[i];
    const float* p = item_first.row(item);  // item partial + b0
    const float* v = item_reps.row(item);
    for (int j = 0; j < hidden; ++j) h[j] = u_first[j] + p[j];
    int width = hidden;
    for (size_t l = 0; l < head.w.size(); ++l) {
      const Matrix& w = head.w[l];
      const int out_width = w.cols();
      const float* bias = head.b[l].data();
      std::copy(bias, bias + out_width, next);
      ActivateInPlace(h, width, head.hidden_act);
      const float* wdata = w.data();
      if (out_width == 1) {
        // Four independent accumulators break the serial float-add
        // dependency chain (the compiler cannot reassociate it itself).
        float a0 = 0.f, a1 = 0.f, a2 = 0.f, a3 = 0.f;
        int r = 0;
        for (; r + 4 <= width; r += 4) {
          a0 += h[r] * wdata[r];
          a1 += h[r + 1] * wdata[r + 1];
          a2 += h[r + 2] * wdata[r + 2];
          a3 += h[r + 3] * wdata[r + 3];
        }
        for (; r < width; ++r) a0 += h[r] * wdata[r];
        next[0] += (a0 + a1) + (a2 + a3);
      } else {
        for (int r = 0; r < width; ++r) {
          const float hr = h[r];
          const float* wrow = wdata + static_cast<size_t>(r) * out_width;
          for (int c = 0; c < out_width; ++c) next[c] += hr * wrow[c];
        }
      }
      std::swap(h, next);
      width = out_width;
    }
    float g0 = 0.f, g1 = 0.f;
    int j = 0;
    for (; j + 2 <= dim; j += 2) {
      g0 += (u[j] * v[j]) * gmf_w[j];
      g1 += (u[j + 1] * v[j + 1]) * gmf_w[j + 1];
    }
    for (; j < dim; ++j) g0 += (u[j] * v[j]) * gmf_w[j];
    out[i] = h[0] + (gmf_bias + g0 + g1);
  }
}

QuantizedUser QuantizeUserGmf(const FrozenPredictionHead& head, const float* u,
                              float* uw_buf, int8_t* q_buf) {
  const int dim = head.dim();
  const float* gmf_w = head.gmf_w.data();  // [dim, 1], contiguous
  for (int j = 0; j < dim; ++j) uw_buf[j] = u[j] * gmf_w[j];
  QuantizedUser user;
  user.q = q_buf;
  QuantizeVectorInto(uw_buf, dim, q_buf, &user.scale, &user.zero, &user.qsum);
  return user;
}

void QuantizedScoreIds(const FrozenPredictionHead& head,
                       const QuantizedRows& item_first,
                       const QuantizedRows& item_gmf, const float* u_first,
                       const QuantizedUser& user, const int* ids, int n,
                       float* h_buf, float* next_buf, float* out) {
  // Structure mirrors FastScoreIds; only the two item-table reads change:
  // 1 byte per element instead of 4, dequantized on the fly (first layer)
  // or never (gmf dot). The MLP tail is the identical float code.
  const int dim = head.dim();
  const int hidden = head.b0.cols();
  const float gmf_bias = head.gmf_b.data()[0];
  const int32_t zu = user.zero;

  float* h = h_buf;
  float* next = next_buf;

  for (int i = 0; i < n; ++i) {
    const int item = ids[i];
    const int8_t* p = item_first.row(item);
    const float ps = item_first.scale[item];
    // Fold the zero point into a float offset once per candidate; per
    // element only a subtract and a multiply remain next to the add.
    const float pz = static_cast<float>(item_first.zero[item]);
    for (int j = 0; j < hidden; ++j) {
      h[j] = u_first[j] + ps * (static_cast<float>(p[j]) - pz);
    }
    int width = hidden;
    for (size_t l = 0; l < head.w.size(); ++l) {
      const Matrix& w = head.w[l];
      const int out_width = w.cols();
      const float* bias = head.b[l].data();
      std::copy(bias, bias + out_width, next);
      ActivateInPlace(h, width, head.hidden_act);
      const float* wdata = w.data();
      if (out_width == 1) {
        float a0 = 0.f, a1 = 0.f, a2 = 0.f, a3 = 0.f;
        int r = 0;
        for (; r + 4 <= width; r += 4) {
          a0 += h[r] * wdata[r];
          a1 += h[r + 1] * wdata[r + 1];
          a2 += h[r + 2] * wdata[r + 2];
          a3 += h[r + 3] * wdata[r + 3];
        }
        for (; r < width; ++r) a0 += h[r] * wdata[r];
        next[0] += (a0 + a1) + (a2 + a3);
      } else {
        for (int r = 0; r < width; ++r) {
          const float hr = h[r];
          const float* wrow = wdata + static_cast<size_t>(r) * out_width;
          for (int c = 0; c < out_width; ++c) next[c] += hr * wrow[c];
        }
      }
      std::swap(h, next);
      width = out_width;
    }
    // Dequantization-free weighted-product term: exact integer code dot
    // (two independent accumulators; |code product| ≤ 2^14 so even a 2^16
    // dim cannot overflow int32), then both zero-point corrections in
    // int64 and a single scale multiply.
    const int8_t* qv = item_gmf.row(item);
    int32_t acc0 = 0, acc1 = 0;
    int j = 0;
    for (; j + 2 <= dim; j += 2) {
      acc0 += static_cast<int32_t>(user.q[j]) * qv[j];
      acc1 += static_cast<int32_t>(user.q[j + 1]) * qv[j + 1];
    }
    for (; j < dim; ++j) acc0 += static_cast<int32_t>(user.q[j]) * qv[j];
    const int32_t zv = item_gmf.zero[item];
    const int64_t bracket =
        static_cast<int64_t>(acc0) + acc1 -
        static_cast<int64_t>(zv) * user.qsum -
        static_cast<int64_t>(zu) * item_gmf.qsum[item] +
        static_cast<int64_t>(dim) * zu * zv;
    const float g =
        user.scale * item_gmf.scale[item] * static_cast<float>(bracket);
    out[i] = h[0] + (gmf_bias + g);
  }
}

void ExactScoreIds(const FrozenPredictionHead& head, const Matrix& item_reps,
                   const float* u, const int* ids, int n, int item_block,
                   float* out) {
  const int dim = head.dim();
  const int hidden = head.b0.cols();

  // User-side first-layer partial, shared by every candidate row.
  Matrix u_row(1, dim);
  std::copy(u, u + dim, u_row.data());
  const Matrix u_first = MatMul(u_row, head.w0_user);

  std::vector<int> block_ids;
  for (int begin = 0; begin < n; begin += item_block) {
    const int count = std::min(item_block, n - begin);
    block_ids.assign(ids + begin, ids + begin + count);
    const Matrix item_rows = GatherRows(item_reps, block_ids);

    // First MLP layer over the block: every row starts from the user
    // partial; the item half is then accumulated on top via the same
    // in-order GEMM as the trainer, keeping kExact bit-equal.
    Matrix h0(count, hidden);
    for (int i = 0; i < count; ++i) {
      std::copy(u_first.data(), u_first.data() + hidden, h0.row(i));
    }
    MatMulAccumInto(item_rows, head.w0_item, &h0);

    // Weighted product term, bit-equal to the trainer's Hadamard + GEMM:
    // same products, same fused-add order.
    Matrix gmf_dot(count, 1);
    for (int i = 0; i < count; ++i) {
      const float* v = item_rows.row(i);
      float acc = 0.f;
      for (int j = 0; j < dim; ++j) {
        acc += (u[j] * v[j]) * head.gmf_w.At(j, 0);
      }
      gmf_dot.At(i, 0) = acc;
    }

    const Matrix logits = head.ForwardFromHidden(h0, gmf_dot);
    for (int i = 0; i < count; ++i) out[begin + i] = logits.At(i, 0);
  }
}

}  // namespace scoring
}  // namespace nmcdr
