#ifndef NMCDR_SERVING_SCORE_ENGINE_H_
#define NMCDR_SERVING_SCORE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "serving/model_snapshot.h"
#include "serving/quantized_snapshot.h"
#include "util/thread_annotations.h"

namespace nmcdr {

/// A top-K retrieval request: recommend `k` items of `target_domain` for
/// the user known as local id `user` in `user_domain`. When the user has
/// no identity link into the target domain, the engine serves the
/// cross-domain cold-start path: the user's home-domain representation is
/// scored through the target domain's head and item table — the paper's
/// core promise, usable because inter-domain node matching aligns the
/// representation spaces.
struct RecRequest {
  int target_domain = 0;
  int user_domain = 0;
  int user = 0;
  int k = 10;
  /// Target-domain items to exclude (already seen or impressed).
  std::vector<int> exclude;
};

/// Ranked retrieval result, best first.
struct Recommendation {
  std::vector<int> items;
  std::vector<float> scores;
  /// True when served via the cross-domain cold-start path.
  bool cold_start = false;
};

/// Caller-owned reusable buffers for the allocation-free retrieval core
/// (ScoreEngine::TopKWithScratch). Prepare() is the only growth point
/// (NMCDR_COLD: amortized capacity, a no-op once the buffers reached the
/// engine's geometry). Invariant between calls: `excluded` is all-zero —
/// the core sets and then clears only the request's own exclusion bits,
/// so per-request reset costs O(|exclude|), not O(catalog).
struct ScoreScratch {
  std::vector<uint8_t> excluded;
  std::vector<int> candidates;
  std::vector<float> scores;
  std::vector<float> u_first;
  std::vector<float> h;
  std::vector<float> next;
  std::vector<std::pair<float, int>> heap;
  /// kQuantized only: the per-request user-side gmf operand (floats, then
  /// its int8 codes — scoring::QuantizeUserGmf).
  std::vector<float> uw;
  std::vector<int8_t> qu;

  /// Grows every buffer to the given geometry (catalog size, scoring
  /// block, widest head layer — scoring::MaxHeadWidth — and, for the
  /// quantized mode, the representation dim).
  void Prepare(int num_items, int item_block, int head_width,
               int dim = 0) NMCDR_COLD;
};

/// Per-batch scratch for TopKWithScratch fan-out: request i always uses
/// slot i, so concurrent chunks touch disjoint slots (race-free) and the
/// result never depends on the pool schedule. Slots persist at their
/// high-water geometry across batches.
struct BatchScoreScratch {
  std::vector<ScoreScratch> per_request;

  /// Grows the slot vector to `n` slots.
  void Prepare(size_t n) NMCDR_COLD;
};

/// The ranking order shared by the engine's heap and any brute-force
/// reference: higher score first, smaller item id on ties. A total order,
/// so top-K selection agrees exactly with a full sort.
inline bool RanksBefore(float score_a, int item_a, float score_b,
                        int item_b) {
  if (score_a != score_b) return score_a > score_b;
  return item_a < item_b;
}

/// Autograd-free batched scorer over a frozen ModelSnapshot: dense GEMMs
/// over candidate blocks plus heap-based top-K retrieval. All methods are
/// const and safe to call concurrently (counters are atomic); the
/// snapshot must outlive the engine.
class ScoreEngine {
 public:
  /// kExact replays the trainer's kernel sequence bit-for-bit, so scores
  /// equal RecModel::Score to the last ulp. kFast additionally
  /// precomputes the item-side first-layer partial sums per domain at
  /// construction; per pair only the tiny head tail remains, at the cost
  /// of scores differing from the trainer path by first-layer summation
  /// rounding (rankings agree except on sub-ulp near-ties). kQuantized
  /// stores both per-candidate item tables as per-row affine int8
  /// (serving/quantized_snapshot.h) — 4x less item-table memory traffic —
  /// at the cost of bounded quantization error in the scores; the
  /// measured ranking agreement vs kExact (top-K overlap, HR/NDCG delta)
  /// is reported by bench_quant and gated in CI.
  enum class Mode { kExact, kFast, kQuantized };

  struct Options {
    Mode mode = Mode::kFast;
    /// Items scored per dense block during full-catalog retrieval.
    int item_block = 256;
  };

  /// Under Mode::kQuantized the constructor quantizes the item tables at
  /// construction (quantize-at-freeze); use the three-argument overload
  /// to serve a prebuilt artifact instead.
  ScoreEngine(const ModelSnapshot* snapshot, Options options);
  explicit ScoreEngine(const ModelSnapshot* snapshot)
      : ScoreEngine(snapshot, Options()) {}

  /// Serves a prebuilt quantized artifact (typically
  /// QuantizedSnapshot::Load of a file written at freeze time) against
  /// the fp snapshot it was built from. Requires options.mode ==
  /// Mode::kQuantized and quantized.Matches(*snapshot) (checked).
  ScoreEngine(const ModelSnapshot* snapshot, Options options,
              QuantizedSnapshot quantized);

  const ModelSnapshot& snapshot() const { return *snapshot_; }
  Mode mode() const { return options_.mode; }

  /// kQuantized only: the quantized item tables this engine serves from
  /// (empty otherwise).
  const QuantizedSnapshot& quantized() const { return quant_; }

  /// Scores an explicit candidate list of `target_domain` for the user
  /// known in `user_domain`; `cold_start` (optional) reports whether the
  /// cross-domain path served the request.
  std::vector<float> ScoreCandidates(int target_domain, int user_domain,
                                     int user,
                                     const std::vector<int>& candidates,
                                     bool* cold_start = nullptr) const;

  /// Same-domain convenience overload.
  std::vector<float> ScoreCandidates(int domain, int user,
                                     const std::vector<int>& candidates) const;

  /// Full-catalog top-K retrieval with the request's exclusion set.
  /// Convenience wrapper: validates the request (aborts on malformed
  /// input) and runs the scratch core over a local ScoreScratch.
  Recommendation TopK(const RecRequest& request) const;

  /// The allocation-free retrieval core: identical results to TopK, but
  /// every buffer lives in `scratch` (typically owned by a drainer and
  /// reused across requests) and inputs are only NMCDR_DCHECK'd —
  /// validate at the edge (ValidateRequest / the TopK wrapper) first.
  Recommendation TopKWithScratch(const RecRequest& request,
                                 ScoreScratch* scratch) const NMCDR_HOT;

  /// Serves a batch of requests, fanned out over ThreadPool::Shared().
  /// Results are positionally aligned with `requests` and identical to
  /// calling TopK per request (requests are independent and TopK is
  /// deterministic). Validates every request, then runs the scratch core
  /// over a local BatchScoreScratch.
  std::vector<Recommendation> TopKBatch(
      const std::vector<RecRequest>& requests) const;

  /// Batch core for drainers holding reusable scratch. The output vector
  /// is the one per-batch materialization
  /// (NMCDR_LINT_ALLOW'd in the implementation).
  std::vector<Recommendation> TopKBatchWithScratch(
      const std::vector<RecRequest>& requests,
      BatchScoreScratch* scratch) const NMCDR_HOT;

  /// Aborts (NMCDR_CHECK) unless `request` is well-formed against this
  /// engine's snapshot: domains in range, user in range for its domain,
  /// k positive, every excluded item in the target catalog. Serving edges
  /// (InferenceServer::Submit, the TopK/TopKBatch wrappers) call this so
  /// the hot core can run on NMCDR_DCHECKs alone.
  void ValidateRequest(const RecRequest& request) const;

  /// Monotonic usage counters (atomics snapshot).
  struct Counters {
    int64_t requests = 0;
    int64_t pairs_scored = 0;
    int64_t cold_start_requests = 0;
  };
  Counters counters() const;

 private:
  struct ResolvedUser {
    const float* row = nullptr;  // user representation, dim() floats
    bool cold_start = false;
  };

  ResolvedUser Resolve(int target_domain, int user_domain, int user) const
      NMCDR_HOT;

  /// Scores items `ids[0..n)` of `target_domain` for the user row `u`
  /// into `out[0..n)`: blocked GEMMs of options_.item_block in kExact,
  /// the fused allocation-free path in kFast (whose per-call buffers live
  /// in `scratch`). Both paths delegate to the row-independent kernels in
  /// serving/scoring_kernels.h (shared with the sharded cluster
  /// snapshot).
  void ScoreIds(int target_domain, const float* u, const int* ids, int n,
                ScoreScratch* scratch, float* out) const NMCDR_HOT;

  const ModelSnapshot* snapshot_;
  Options options_;
  /// kFast only: per domain, item-side first-layer partials
  /// item_reps * w0_item, [num_items, H].
  std::vector<Matrix> item_first_;
  /// kQuantized only: per domain, both item tables as per-row int8.
  QuantizedSnapshot quant_;

  mutable std::atomic<int64_t> requests_{0};
  mutable std::atomic<int64_t> pairs_scored_{0};
  mutable std::atomic<int64_t> cold_start_requests_{0};
};

}  // namespace nmcdr

#endif  // NMCDR_SERVING_SCORE_ENGINE_H_
