#include "serving/inference_server.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/thread_pool.h"

namespace nmcdr {

double ServerStats::MeanLatencyMs() const {
  return requests_served > 0 ? total_latency_ms / requests_served : 0.0;
}

double ServerStats::MeanBatchSize() const {
  return batches > 0 ? static_cast<double>(requests_served) / batches : 0.0;
}

double ServerStats::ThroughputPerSec() const {
  return wall_seconds > 0.0 ? requests_served / wall_seconds : 0.0;
}

std::string ServerStats::ToString() const {
  std::ostringstream out;
  out << "serving stats:\n"
      << "  requests submitted : " << requests_submitted << "\n"
      << "  requests served    : " << requests_served << "\n"
      << "  cold-start served  : " << cold_start_served << "\n"
      << "  batches            : " << batches << " (mean size "
      << MeanBatchSize() << ", max " << max_batch_size << ")\n"
      << "  max queue depth    : " << max_queue_depth << "\n"
      << "  latency            : mean " << MeanLatencyMs() << " ms, max "
      << max_latency_ms << " ms\n"
      << "  throughput         : " << ThroughputPerSec() << " req/s over "
      << wall_seconds << " s\n";
  return out.str();
}

InferenceServer::InferenceServer(const ScoreEngine* engine, Options options)
    : engine_(engine), options_(options) {
  NMCDR_CHECK(engine != nullptr);
  NMCDR_CHECK_GT(options_.num_threads, 0);
  NMCDR_CHECK_GT(options_.max_batch, 0);
}

InferenceServer::~InferenceServer() { Stop(); }

std::future<Recommendation> InferenceServer::Submit(RecRequest request) {
  Pending pending;
  pending.request = std::move(request);
  pending.enqueued = std::chrono::steady_clock::now();
  std::future<Recommendation> future = pending.promise.get_future();
  bool dispatch_drainer = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      pending.promise.set_exception(std::make_exception_ptr(
          std::runtime_error("InferenceServer is stopped")));
      return future;
    }
    queue_.push_back(std::move(pending));
    ++stats_.requests_submitted;
    stats_.max_queue_depth = std::max(
        stats_.max_queue_depth, static_cast<int64_t>(queue_.size()));
    // Keep the invariant: a non-empty queue always has a drainer coming.
    // Extra drainers (up to num_threads) add parallelism under load.
    if (active_drainers_ < options_.num_threads &&
        active_drainers_ < static_cast<int>(queue_.size())) {
      ++active_drainers_;
      dispatch_drainer = true;
    }
  }
  if (dispatch_drainer) {
    ThreadPool::Shared()->Submit([this] { DrainLoop(); });
  }
  return future;
}

Recommendation InferenceServer::Recommend(int domain, int user, int k) {
  RecRequest request;
  request.target_domain = domain;
  request.user_domain = domain;
  request.user = user;
  request.k = k;
  return Submit(std::move(request)).get();
}

void InferenceServer::Stop() {
  std::unique_lock<std::mutex> lock(mu_);
  stopping_ = true;
  // The invariant guarantees progress: every queued request has an active
  // drainer coming for it, and drainers retire only on an empty queue.
  drained_cv_.wait(lock,
                   [this] { return queue_.empty() && active_drainers_ == 0; });
}

void InferenceServer::DrainLoop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) {
        // Retire. Submit will dispatch a fresh drainer for new work.
        --active_drainers_;
        if (active_drainers_ == 0) drained_cv_.notify_all();
        return;
      }
      const int count = static_cast<int>(std::min<size_t>(
          options_.max_batch, queue_.size()));
      batch.reserve(count);
      for (int i = 0; i < count; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }

    std::vector<RecRequest> requests;
    requests.reserve(batch.size());
    for (const Pending& pending : batch) requests.push_back(pending.request);
    const std::vector<Recommendation> results = engine_->TopKBatch(requests);

    const auto now = std::chrono::steady_clock::now();
    int64_t cold = 0;
    double latency_sum_ms = 0.0, latency_max_ms = 0.0;
    for (size_t i = 0; i < batch.size(); ++i) {
      const double ms =
          std::chrono::duration<double, std::milli>(now - batch[i].enqueued)
              .count();
      latency_sum_ms += ms;
      latency_max_ms = std::max(latency_max_ms, ms);
      if (results[i].cold_start) ++cold;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.batches;
      stats_.requests_served += static_cast<int64_t>(batch.size());
      stats_.cold_start_served += cold;
      stats_.max_batch_size = std::max(stats_.max_batch_size,
                                       static_cast<int64_t>(batch.size()));
      stats_.total_latency_ms += latency_sum_ms;
      stats_.max_latency_ms = std::max(stats_.max_latency_ms, latency_max_ms);
    }
    // Fulfil promises after bookkeeping so stats() observed by a woken
    // caller already include its own request.
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.set_value(results[i]);
    }
  }
}

int InferenceServer::active_drainers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_drainers_;
}

ServerStats InferenceServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStats copy = stats_;
  copy.wall_seconds = uptime_.ElapsedSeconds();
  return copy;
}

}  // namespace nmcdr
