#include "serving/inference_server.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace nmcdr {

double ServerStats::MeanLatencyMs() const {
  return requests_served > 0 ? total_latency_ms / requests_served : 0.0;
}

double ServerStats::MeanBatchSize() const {
  return batches > 0 ? static_cast<double>(requests_served) / batches : 0.0;
}

double ServerStats::ThroughputPerSec() const {
  return wall_seconds > 0.0 ? requests_served / wall_seconds : 0.0;
}

std::string ServerStats::ToString() const {
  std::ostringstream out;
  out << "serving stats:\n"
      << "  requests submitted : " << requests_submitted << "\n"
      << "  requests served    : " << requests_served << "\n"
      << "  cold-start served  : " << cold_start_served << "\n"
      << "  batches            : " << batches << " (mean size "
      << MeanBatchSize() << ", max " << max_batch_size << ")\n"
      << "  max queue depth    : " << max_queue_depth << "\n"
      << "  latency            : mean " << MeanLatencyMs() << " ms, p50 "
      << p50_latency_ms << " ms, p95 " << p95_latency_ms << " ms, p99 "
      << p99_latency_ms << " ms, max " << max_latency_ms << " ms\n"
      << "  throughput         : " << ThroughputPerSec() << " req/s over "
      << wall_seconds << " s\n";
  return out.str();
}

InferenceServer::InferenceServer(const ScoreEngine* engine, Options options)
    : engine_(engine), options_(options) {
  NMCDR_CHECK(engine != nullptr);
  NMCDR_CHECK_GT(options_.num_threads, 0);
  NMCDR_CHECK_GT(options_.max_batch, 0);
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  submitted_ = &metrics_->GetCounter("serving.requests_submitted");
  served_ = &metrics_->GetCounter("serving.requests_served");
  cold_start_ = &metrics_->GetCounter("serving.cold_start_served");
  batches_ = &metrics_->GetCounter("serving.batches");
  queue_depth_ = &metrics_->GetGauge("serving.queue_depth");
  max_queue_depth_gauge_ = &metrics_->GetGauge("serving.max_queue_depth");
  max_batch_size_gauge_ = &metrics_->GetGauge("serving.max_batch_size");
  latency_ms_ = &metrics_->GetLatencyHistogram("serving.latency_ms");
  batch_size_ = &metrics_->GetHistogram(
      "serving.batch_size", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0});
}

InferenceServer::~InferenceServer() { Stop(); }

std::future<Recommendation> InferenceServer::Submit(RecRequest request) {
  // Validate at the edge (aborts on malformed input) so the drain loop
  // can run the engine's NMCDR_DCHECK-only scratch core.
  engine_->ValidateRequest(request);
  Pending pending;
  pending.request = std::move(request);
  pending.enqueued_ns = obs::NowNs();
  std::future<Recommendation> future = pending.promise.get_future();
  bool dispatch_drainer = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      pending.promise.set_exception(std::make_exception_ptr(
          std::runtime_error("InferenceServer is stopped")));
      return future;
    }
    queue_.push_back(std::move(pending));
    submitted_->Add(1);
    const int64_t depth = static_cast<int64_t>(queue_.size());
    queue_depth_->Set(static_cast<double>(depth));
    if (depth > max_queue_depth_) {
      max_queue_depth_ = depth;
      max_queue_depth_gauge_->Set(static_cast<double>(depth));
    }
    // Keep the invariant: a non-empty queue always has a drainer coming.
    // Extra drainers (up to num_threads) add parallelism under load.
    dispatch_drainer =
        TryReserveDrainerLocked(static_cast<int>(queue_.size()));
  }
  if (dispatch_drainer) {
    ThreadPool::Shared()->Submit([this] { DrainLoop(); });
  }
  return future;
}

Recommendation InferenceServer::Recommend(int domain, int user, int k) {
  RecRequest request;
  request.target_domain = domain;
  request.user_domain = domain;
  request.user = user;
  request.k = k;
  return Submit(std::move(request)).get();
}

void InferenceServer::Stop() {
  std::unique_lock<std::mutex> lock(mu_);
  stopping_ = true;
  // The invariant guarantees progress: every queued request has an active
  // drainer coming for it, and drainers retire only on an empty queue.
  drained_cv_.wait(lock,
                   [this] { return queue_.empty() && active_drainers_ == 0; });
}

void InferenceServer::DrainLoop() {
  // Drainer-owned buffers, reused across iterations: at steady state the
  // loop runs allocation-free outside the engine's per-batch result
  // vector (requests were validated at the Submit edge, so the DCHECK-only
  // scratch core is safe here).
  std::vector<Pending> batch;
  std::vector<RecRequest> requests;
  BatchScoreScratch scratch;
  for (;;) {
    batch.clear();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) {
        // Retire. Submit will dispatch a fresh drainer for new work.
        --active_drainers_;
        if (active_drainers_ == 0) drained_cv_.notify_all();
        return;
      }
      const int count = static_cast<int>(std::min<size_t>(
          options_.max_batch, queue_.size()));
      batch.reserve(count);
      for (int i = 0; i < count; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      queue_depth_->Set(static_cast<double>(queue_.size()));
      if (static_cast<int64_t>(batch.size()) > max_batch_size_) {
        max_batch_size_ = static_cast<int64_t>(batch.size());
        max_batch_size_gauge_->Set(static_cast<double>(max_batch_size_));
      }
    }

    requests.clear();
    requests.reserve(batch.size());
    for (const Pending& pending : batch) requests.push_back(pending.request);
    const std::vector<Recommendation> results =
        engine_->TopKBatchWithScratch(requests, &scratch);

    const int64_t now_ns = obs::NowNs();
    int64_t cold = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
      latency_ms_->Record(static_cast<double>(now_ns - batch[i].enqueued_ns) *
                          1e-6);
      if (results[i].cold_start) ++cold;
    }
    batches_->Add(1);
    served_->Add(static_cast<int64_t>(batch.size()));
    cold_start_->Add(cold);
    batch_size_->Record(static_cast<double>(batch.size()));
    // Fulfil promises after bookkeeping so stats() observed by a woken
    // caller already include its own request.
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.set_value(results[i]);
    }
  }
}

bool InferenceServer::TryReserveDrainerLocked(int queued) {
  if (active_drainers_ >= options_.num_threads || active_drainers_ >= queued) {
    return false;
  }
  ++active_drainers_;
  return true;
}

int InferenceServer::active_drainers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_drainers_;
}

ServerStats InferenceServer::stats() const {
  ServerStats out;
  out.requests_submitted = submitted_->Value();
  out.requests_served = served_->Value();
  out.cold_start_served = cold_start_->Value();
  out.batches = batches_->Value();
  out.total_latency_ms = latency_ms_->Sum();
  out.max_latency_ms = latency_ms_->Max();
  out.p50_latency_ms = latency_ms_->Quantile(0.50);
  out.p95_latency_ms = latency_ms_->Quantile(0.95);
  out.p99_latency_ms = latency_ms_->Quantile(0.99);
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.max_queue_depth = max_queue_depth_;
    out.max_batch_size = max_batch_size_;
  }
  out.wall_seconds = uptime_.ElapsedSeconds();
  return out;
}

}  // namespace nmcdr
