#ifndef NMCDR_SERVING_CLUSTER_SHARD_LAYOUT_H_
#define NMCDR_SERVING_CLUSTER_SHARD_LAYOUT_H_

#include <string>
#include <vector>

#include "serving/model_snapshot.h"

namespace nmcdr {
namespace cluster {

/// JSON schema tag written by ShardLayout::ToJson.
inline constexpr const char* kShardLayoutSchema = "NMCDR_SHARD_LAYOUT_V1";

/// How one domain's tables are cut across shards: split-point vectors of
/// size num_shards + 1 (monotone non-decreasing, first 0, last the table
/// row count). Shard s owns rows [splits[s], splits[s+1]); empty ranges
/// are legal, so a 7-shard layout over a 5-item catalog validates.
struct DomainSplits {
  std::vector<int> user_splits;
  std::vector<int> item_splits;
};

/// Declarative description of how a ModelSnapshot is partitioned across
/// shards — the Hetu-style data-driven config: the partitioning is a
/// serializable value, not code, so a deployment can pin, version, and
/// diff its layout. Plain data; validity against a concrete snapshot is a
/// separate Validate step (the same layout file can be checked against
/// tomorrow's snapshot before a swap).
///
/// On-disk format (ToJson/Parse round-trip):
///   {
///     "schema": "NMCDR_SHARD_LAYOUT_V1",
///     "num_shards": 2,
///     "domains": [
///       {"user_splits": [0, 3, 6], "item_splits": [0, 2, 4]},
///       {"user_splits": [0, 2, 5], "item_splits": [0, 3, 5]}
///     ]
///   }
struct ShardLayout {
  int num_shards = 1;
  std::vector<DomainSplits> domains;

  /// Even contiguous partition of `snapshot` into `num_shards` ranges
  /// (remainder rows spread one-per-shard from shard 0).
  static ShardLayout Uniform(const ModelSnapshot& snapshot, int num_shards);

  /// Checks structural validity against a concrete snapshot: one
  /// DomainSplits per snapshot domain, every split vector of size
  /// num_shards + 1, monotone, spanning exactly [0, row count]. On
  /// failure returns false and fills *error (when non-null).
  bool Validate(const ModelSnapshot& snapshot,
                std::string* error = nullptr) const;

  /// Shard owning user/item row `row` of domain `d` (layout must be
  /// structurally valid; row must be inside the spanned range).
  int UserShard(int d, int row) const;
  int ItemShard(int d, int row) const;

  bool Equals(const ShardLayout& other) const;

  std::string ToJson() const;
  /// Parses a ToJson document. Returns false (filling *error when
  /// non-null) on malformed JSON, wrong schema tag, or structurally
  /// inconsistent splits; *out is untouched on failure.
  static bool Parse(const std::string& json, ShardLayout* out,
                    std::string* error = nullptr);

  /// File round-trip of ToJson/Parse. Load leaves *out untouched on
  /// failure.
  bool Save(const std::string& path) const;
  static bool Load(const std::string& path, ShardLayout* out,
                   std::string* error = nullptr);
};

}  // namespace cluster
}  // namespace nmcdr

#endif  // NMCDR_SERVING_CLUSTER_SHARD_LAYOUT_H_
