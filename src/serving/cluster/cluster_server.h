#ifndef NMCDR_SERVING_CLUSTER_CLUSTER_SERVER_H_
#define NMCDR_SERVING_CLUSTER_CLUSTER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>

#include "obs/metrics.h"
#include "serving/cluster/admission.h"
#include "serving/cluster/snapshot_registry.h"
#include "util/thread_annotations.h"

namespace nmcdr {
namespace cluster {

/// The cluster serving front end: admission control in front, the
/// RCU-published ShardedSnapshot behind. Like InferenceServer it owns no
/// threads — up to `num_threads` drainer tasks run on
/// ThreadPool::Shared(), each pass popping up to `max_batch` admitted
/// tickets (interactive first), acquiring the current snapshot version
/// ONCE, and scoring the whole batch on it. A snapshot published
/// mid-batch is picked up by the next pass; in-flight batches finish on
/// the version they acquired — that, plus the registry's refcounting, is
/// the zero-downtime swap (bench_cluster demonstrates it under load).
///
/// Invariant (same as InferenceServer): whenever the admission queue is
/// non-empty, a drainer is active or being dispatched; Stop() returns
/// only once the queue is drained and every drainer has retired.
///
/// Shedding is part of the contract, not an error path: a Submit against
/// a full class queue resolves its future immediately with
/// kShedQueueFull (the caller is backpressured, the queue never grows
/// past capacity), and tickets that outlived their class deadline in
/// queue resolve with kShedDeadline at drain time. All shed/served
/// counts are recorded per class in the metrics registry
/// (cluster.{submitted,served,shed_queue_full,shed_deadline}.<class>,
/// cluster.latency_ms.<class>, cluster.queue_depth.<class>) —
/// unconditionally, like InferenceServer's accounting.
class ClusterServer {
 public:
  struct Options {
    /// Maximum concurrent drainer tasks.
    int num_threads = 2;
    /// Tickets drained per pass.
    int max_batch = 8;
    AdmissionOptions admission;
    /// Registry receiving cluster.* metrics; nullptr = private registry.
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// Publishes `initial` (must be non-null) as version 1, so the server
  /// is never without a model.
  ClusterServer(std::shared_ptr<const ShardedSnapshot> initial,
                Options options);

  /// Stops the server (draining queued admitted requests first).
  ~ClusterServer();

  ClusterServer(const ClusterServer&) = delete;
  ClusterServer& operator=(const ClusterServer&) = delete;

  /// Admits or sheds `request`. The future always resolves (with a
  /// non-kOk status for shed/stopped requests) — no exceptions on the
  /// shedding path, so overload handling is branch, not unwind.
  /// Validates `request.rec` against the current snapshot (aborts on
  /// malformed input) so drainers can run the DCHECK-only scratch core.
  std::future<ClusterResponse> Submit(ClusterRequest request)
      NMCDR_EXCLUDES(mu_);

  /// Publishes a new snapshot version while traffic keeps flowing;
  /// returns the new version. Thread-safe; callable from a pool task.
  int64_t Publish(std::shared_ptr<const ShardedSnapshot> next);

  /// Drains every admitted request, waits for drainers to retire, then
  /// returns. Idempotent; Submit after Stop resolves with kStopped.
  /// Must not be called from inside a shared-pool task.
  void Stop() NMCDR_EXCLUDES(mu_);

  int active_drainers() const NMCDR_EXCLUDES(mu_);

  /// Highest snapshot version any completed batch has observed
  /// (monotone — asserted under TSan in cluster_test).
  int64_t last_observed_version() const {
    return last_observed_version_.load(std::memory_order_relaxed);
  }

  SnapshotRegistry& registry() { return registry_; }
  const AdmissionQueue& admission() const { return admission_; }
  obs::MetricsRegistry& metrics_registry() const { return *metrics_; }

 private:
  void DrainLoop() NMCDR_EXCLUDES(mu_);
  /// Resolves a ticket's promise with a shed/stopped status and records
  /// the per-class counter. Lock-agnostic: touches only promises and
  /// sharded counters, so it is called both with and without mu_ held.
  void Shed(AdmissionTicket&& ticket, ClusterStatus status);

  /// Reserves a drainer slot when `queued` admitted tickets justify one
  /// (same invariant as InferenceServer). Returns true when the caller
  /// must dispatch a DrainLoop task — after releasing mu_, never under
  /// it.
  bool TryReserveDrainerLocked(int queued) NMCDR_REQUIRES(mu_);

  Options options_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;  // owned_metrics_ or Options::metrics
  SnapshotRegistry registry_;
  AdmissionQueue admission_;

  // Resolved once in the constructor, indexed by RequestClass.
  obs::Counter* submitted_[kNumRequestClasses];
  obs::Counter* served_[kNumRequestClasses];
  obs::Counter* shed_queue_full_[kNumRequestClasses];
  obs::Counter* shed_deadline_[kNumRequestClasses];
  obs::Counter* stopped_rejects_;
  obs::Gauge* queue_depth_[kNumRequestClasses];
  obs::Histogram* latency_ms_[kNumRequestClasses];

  std::atomic<int64_t> last_observed_version_{0};

  mutable std::mutex mu_;
  /// Signalled when a drainer retires (Stop waits on it).
  std::condition_variable drained_cv_;
  int active_drainers_ = 0;  // GUARDED_BY(mu_)
  bool stopping_ = false;    // GUARDED_BY(mu_)
};

}  // namespace cluster
}  // namespace nmcdr

#endif  // NMCDR_SERVING_CLUSTER_CLUSTER_SERVER_H_
