#ifndef NMCDR_SERVING_CLUSTER_SNAPSHOT_REGISTRY_H_
#define NMCDR_SERVING_CLUSTER_SNAPSHOT_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <mutex>

#include "obs/metrics.h"
#include "serving/cluster/sharded_snapshot.h"
#include "util/thread_annotations.h"

namespace nmcdr {
namespace cluster {

/// RCU-style versioned snapshot pointer: the single place where the
/// cluster's "current model" changes hands (enforced tree-wide by the
/// [rcu-only-publish] lint rule).
///
/// Publish protocol — read-copy-update with shared_ptr reference counts
/// as the grace-period mechanism:
///  1. The publisher builds a complete immutable ShardedSnapshot off to
///     the side (the "copy"; snapshots are never mutated in place).
///  2. Publish() swaps the registry's pointer under a brief mutex and
///     bumps the monotonic version ("update"). The lock covers only the
///     pointer/version exchange, never scoring work.
///  3. Readers hold the shared_ptr an Acquire() returned for the duration
///     of one batch; in-flight batches keep finishing on the version they
///     acquired while new batches observe the new one — zero downtime,
///     no torn state, by construction (immutability + atomic pointer
///     exchange).
///  4. When the last in-flight reader of a retired version drops its
///     reference, the shared_ptr count reaching zero frees the old
///     tables — the "grace period" needs no epoch bookkeeping
///     (tests assert retired versions are actually freed).
///
/// Versions are monotonically increasing and never reused; version 0
/// means "nothing published yet" when default-constructed without an
/// initial snapshot.
class SnapshotRegistry {
 public:
  /// `metrics` (optional) receives cluster.publishes /
  /// cluster.snapshot_version on every Publish.
  explicit SnapshotRegistry(obs::MetricsRegistry* metrics = nullptr);
  /// Convenience: construct and publish `initial` as version 1.
  SnapshotRegistry(std::shared_ptr<const ShardedSnapshot> initial,
                   obs::MetricsRegistry* metrics);

  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  /// Atomically installs `next` as the current snapshot and returns its
  /// version. Thread-safe against concurrent Acquire and Publish.
  int64_t Publish(std::shared_ptr<const ShardedSnapshot> next)
      NMCDR_EXCLUDES(mu_);

  /// Returns the current snapshot (never null once one was published;
  /// null before that), filling `*version` (when non-null) with its
  /// version. The returned reference keeps the version alive until the
  /// caller drops it.
  std::shared_ptr<const ShardedSnapshot> Acquire(int64_t* version = nullptr)
      const NMCDR_EXCLUDES(mu_);

  /// Version of the currently published snapshot (0 when none yet).
  int64_t version() const NMCDR_EXCLUDES(mu_);

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ShardedSnapshot> current_snapshot_;  // GUARDED_BY(mu_)
  int64_t version_ = 0;                                      // GUARDED_BY(mu_)
  obs::Counter* publishes_ = nullptr;     // null when metrics == null
  obs::Gauge* version_gauge_ = nullptr;   // null when metrics == null
};

}  // namespace cluster
}  // namespace nmcdr

#endif  // NMCDR_SERVING_CLUSTER_SNAPSHOT_REGISTRY_H_
