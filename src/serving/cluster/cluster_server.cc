#include "serving/cluster/cluster_server.h"

#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace nmcdr {
namespace cluster {
namespace {

/// fetch_max for the observed-version watermark (relaxed: the value is a
/// statistic; ordering comes from the registry mutex).
void AtomicMax(std::atomic<int64_t>& a, int64_t value) {
  int64_t current = a.load(std::memory_order_relaxed);
  while (current < value &&
         !a.compare_exchange_weak(current, value,
                                  std::memory_order_relaxed)) {
  }
}

}  // namespace

ClusterServer::ClusterServer(std::shared_ptr<const ShardedSnapshot> initial,
                             Options options)
    : options_(options),
      owned_metrics_(options.metrics == nullptr
                         ? std::make_unique<obs::MetricsRegistry>()
                         : nullptr),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : owned_metrics_.get()),
      registry_(std::move(initial), metrics_),
      admission_(options.admission) {
  NMCDR_CHECK_GT(options_.num_threads, 0);
  NMCDR_CHECK_GT(options_.max_batch, 0);
  for (int c = 0; c < kNumRequestClasses; ++c) {
    const std::string cls = RequestClassName(static_cast<RequestClass>(c));
    submitted_[c] = &metrics_->GetCounter("cluster.submitted." + cls);
    served_[c] = &metrics_->GetCounter("cluster.served." + cls);
    shed_queue_full_[c] =
        &metrics_->GetCounter("cluster.shed_queue_full." + cls);
    shed_deadline_[c] = &metrics_->GetCounter("cluster.shed_deadline." + cls);
    queue_depth_[c] = &metrics_->GetGauge("cluster.queue_depth." + cls);
    latency_ms_[c] =
        &metrics_->GetLatencyHistogram("cluster.latency_ms." + cls);
  }
  stopped_rejects_ = &metrics_->GetCounter("cluster.stopped_rejects");
}

ClusterServer::~ClusterServer() { Stop(); }

void ClusterServer::Shed(AdmissionTicket&& ticket, ClusterStatus status) {
  const int c = static_cast<int>(ticket.request.cls);
  if (status == ClusterStatus::kShedQueueFull) {
    shed_queue_full_[c]->Add(1);
  } else if (status == ClusterStatus::kShedDeadline) {
    shed_deadline_[c]->Add(1);
  } else if (status == ClusterStatus::kStopped) {
    stopped_rejects_->Add(1);
  }
  ClusterResponse response;
  response.status = status;
  ticket.promise.set_value(std::move(response));
}

std::future<ClusterResponse> ClusterServer::Submit(ClusterRequest request) {
  // Validate at the edge (aborts on malformed input, in the caller's
  // thread) so drainers can run the snapshot's NMCDR_DCHECK-only scratch
  // core. Geometry (domain count, table sizes) is fixed per model, so a
  // request valid against the current version stays valid across
  // republications of it.
  registry_.Acquire()->ValidateRequest(request.rec);
  AdmissionTicket ticket;
  ticket.request = std::move(request);
  ticket.enqueued_ns = obs::NowNs();
  std::future<ClusterResponse> future = ticket.promise.get_future();
  const int c = static_cast<int>(ticket.request.cls);

  bool dispatch_drainer = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      Shed(std::move(ticket), ClusterStatus::kStopped);
      return future;
    }
    submitted_[c]->Add(1);
    if (!admission_.TryPush(&ticket)) {
      // Backpressure: resolve immediately, never enqueue past capacity.
      Shed(std::move(ticket), ClusterStatus::kShedQueueFull);
      return future;
    }
    queue_depth_[c]->Set(static_cast<double>(
        admission_.Depth(static_cast<RequestClass>(c))));
    // Keep the invariant: a non-empty queue always has a drainer coming.
    dispatch_drainer = TryReserveDrainerLocked(admission_.TotalDepth());
  }
  if (dispatch_drainer) {
    ThreadPool::Shared()->Submit([this] { DrainLoop(); });
  }
  return future;
}

int64_t ClusterServer::Publish(
    std::shared_ptr<const ShardedSnapshot> next) {
  return registry_.Publish(std::move(next));
}

void ClusterServer::Stop() {
  std::unique_lock<std::mutex> lock(mu_);
  stopping_ = true;
  // Progress: every admitted ticket has a drainer coming (the Submit/
  // retire handshake below), and drainers retire only on an empty queue.
  drained_cv_.wait(lock, [this] {
    return admission_.TotalDepth() == 0 && active_drainers_ == 0;
  });
}

void ClusterServer::DrainLoop() {
  // Drainer-owned buffers, reused across passes: at steady state the loop
  // runs allocation-free outside the snapshot's per-batch result vector
  // (requests were validated at the Submit edge, so the DCHECK-only
  // scratch core is safe here).
  std::vector<AdmissionTicket> batch;
  std::vector<AdmissionTicket> shed;
  std::vector<RecRequest> requests;
  BatchShardScratch scratch;
  for (;;) {
    admission_.PopBatch(options_.max_batch, obs::NowNs(), &batch, &shed);
    for (AdmissionTicket& ticket : shed) {
      Shed(std::move(ticket), ClusterStatus::kShedDeadline);
    }
    for (int c = 0; c < kNumRequestClasses; ++c) {
      queue_depth_[c]->Set(static_cast<double>(
          admission_.Depth(static_cast<RequestClass>(c))));
    }
    if (batch.empty()) {
      if (!shed.empty()) continue;  // the pass did work; look again
      std::lock_guard<std::mutex> lock(mu_);
      // Retire — but re-check depth under the server lock first: a
      // Submit that saw this drainer as active (and so did not dispatch
      // a new one) must not strand its ticket. Pushes happen under mu_,
      // so either the push is visible here (we keep draining) or the
      // pusher saw our decrement and dispatched a replacement.
      if (admission_.TotalDepth() > 0) continue;
      --active_drainers_;
      if (active_drainers_ == 0) drained_cv_.notify_all();
      return;
    }

    // One snapshot acquire per pass: the whole batch scores on a single
    // consistent version while the registry refcount keeps it alive.
    int64_t version = 0;
    const std::shared_ptr<const ShardedSnapshot> snap =
        registry_.Acquire(&version);
    requests.clear();
    requests.reserve(batch.size());
    for (const AdmissionTicket& ticket : batch) {
      requests.push_back(ticket.request.rec);
    }
    const std::vector<Recommendation> results =
        snap->TopKBatchWithScratch(requests, &scratch);
    AtomicMax(last_observed_version_, version);

    const int64_t now_ns = obs::NowNs();
    for (size_t i = 0; i < batch.size(); ++i) {
      const int c = static_cast<int>(batch[i].request.cls);
      const double latency_ms =
          static_cast<double>(now_ns - batch[i].enqueued_ns) * 1e-6;
      latency_ms_[c]->Record(latency_ms);
      served_[c]->Add(1);
      ClusterResponse response;
      response.rec = results[i];
      response.snapshot_version = version;
      response.latency_ms = latency_ms;
      batch[i].promise.set_value(std::move(response));
    }
  }
}

bool ClusterServer::TryReserveDrainerLocked(int queued) {
  if (active_drainers_ >= options_.num_threads || active_drainers_ >= queued) {
    return false;
  }
  ++active_drainers_;
  return true;
}

int ClusterServer::active_drainers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_drainers_;
}

}  // namespace cluster
}  // namespace nmcdr
