#ifndef NMCDR_SERVING_CLUSTER_SHARDED_SNAPSHOT_H_
#define NMCDR_SERVING_CLUSTER_SHARDED_SNAPSHOT_H_

#include <vector>

#include "serving/cluster/shard_layout.h"
#include "serving/score_engine.h"

namespace nmcdr {
namespace cluster {

/// Caller-owned reusable buffers for the allocation-free sharded
/// retrieval core (ShardedSnapshot::TopKWithScratch). One slot per shard
/// keeps the pool fan-out race-free: shard s only ever touches
/// per_shard[s]. Prepare() is the only growth point (NMCDR_COLD,
/// amortized: a no-op once buffers reached the snapshot's geometry).
/// Invariant between calls: `excluded` is all-zero — the core sets and
/// clears only the request's own exclusion bits.
struct ShardScratch {
  /// Per-shard buffers; candidates/heap hold shard-local state during the
  /// fanned-out scan.
  struct Slot {
    std::vector<int> candidates;
    std::vector<float> scores;
    std::vector<float> h;
    std::vector<float> next;
    std::vector<std::pair<float, int>> heap;
  };

  std::vector<uint8_t> excluded;
  std::vector<float> u_first;
  std::vector<std::pair<float, int>> merged;
  std::vector<Slot> per_shard;
  /// kQuantized only: the per-request user-side gmf operand (floats, then
  /// its int8 codes — scoring::QuantizeUserGmf), shared by every shard.
  std::vector<float> uw;
  std::vector<int8_t> qu;

  /// Grows every buffer to the given geometry (target catalog size,
  /// scoring block, widest head layer — scoring::MaxHeadWidth — the
  /// layout's shard count, and, for the quantized mode, the
  /// representation dim).
  void Prepare(int num_items, int item_block, int head_width, int num_shards,
               int dim = 0) NMCDR_COLD;
};

/// Per-batch scratch for TopKBatchWithScratch fan-out: request i always
/// uses slot i, so concurrent requests touch disjoint buffers and results
/// never depend on the pool schedule.
struct BatchShardScratch {
  std::vector<ShardScratch> per_request;

  /// Grows the slot vector to `n` slots.
  void Prepare(size_t n) NMCDR_COLD;
};

/// A ModelSnapshot partitioned for cluster serving: per domain, the user
/// and item representation tables are cut into the contiguous row ranges
/// a ShardLayout describes, each shard owning its slice (deep copies —
/// the source snapshot can be freed or refrozen after construction, which
/// is what lets the SnapshotRegistry retire old versions independently).
/// The small prediction head and the person-link tables are replicated.
///
/// Top-K retrieval fans the per-shard scans out over the shared thread
/// pool; each shard feeds its slice through the row-independent kernels
/// of serving/scoring_kernels.h into a local bounded heap, and the
/// per-shard winners are merged under the same deterministic total order
/// (RanksBefore). Because per-item scores do not depend on shard
/// composition and the order is total, the merged result is bit-identical
/// to ScoreEngine::TopKBatch on the unsharded snapshot for ANY valid
/// layout (asserted across 1/2/4/7 shards in tests/cluster_test.cc).
///
/// Immutable after construction; all methods are const and safe to call
/// concurrently — the unit the RCU-style SnapshotRegistry publishes.
class ShardedSnapshot {
 public:
  struct Options {
    /// kExact/kFast behave as in ScoreEngine. kQuantized stores each
    /// shard's item tables as per-row int8 (no float item slice at all);
    /// because quantization is row-independent, sharded quantized top-K
    /// is bit-identical to ScoreEngine::Mode::kQuantized on the
    /// unsharded snapshot.
    ScoreEngine::Mode mode = ScoreEngine::Mode::kFast;
    /// Items scored per dense block during a shard's catalog scan.
    int item_block = 256;
  };

  /// `layout` must Validate against `snapshot`. The snapshot is deep-
  /// copied slice-by-slice; it is not referenced afterwards.
  ShardedSnapshot(const ModelSnapshot& snapshot, const ShardLayout& layout,
                  Options options);
  ShardedSnapshot(const ModelSnapshot& snapshot, const ShardLayout& layout)
      : ShardedSnapshot(snapshot, layout, Options()) {}

  int num_shards() const { return layout_.num_shards; }
  int num_domains() const { return static_cast<int>(domains_.size()); }
  int num_users(int d) const { return domains_[d].num_users; }
  int num_items(int d) const { return domains_[d].num_items; }
  const ShardLayout& layout() const { return layout_; }
  ScoreEngine::Mode mode() const { return options_.mode; }

  /// Sharded full-catalog top-K with the request's exclusion set;
  /// bit-identical to ScoreEngine::TopK on the source snapshot.
  /// Convenience wrapper: validates the request (aborts on malformed
  /// input) and runs the scratch core over a local ShardScratch.
  Recommendation TopK(const RecRequest& request) const;

  /// The allocation-free retrieval core: identical results to TopK, but
  /// every buffer lives in `scratch` (typically owned by a drainer and
  /// reused across requests) and inputs are only NMCDR_DCHECK'd —
  /// validate at the edge (ValidateRequest / the TopK wrapper) first.
  Recommendation TopKWithScratch(const RecRequest& request,
                                 ShardScratch* scratch) const NMCDR_HOT;

  /// Serves a batch, fanned out over ThreadPool::Shared() (one task per
  /// request; each request's shard scans run inline inside it — nested
  /// ParallelFor degrades gracefully). Identical to calling TopK per
  /// request. Validates every request, then runs the scratch core over a
  /// local BatchShardScratch.
  std::vector<Recommendation> TopKBatch(
      const std::vector<RecRequest>& requests) const;

  /// Batch core for drainers holding reusable scratch. The output vector
  /// is the one per-batch materialization (NMCDR_LINT_ALLOW'd in the
  /// implementation).
  std::vector<Recommendation> TopKBatchWithScratch(
      const std::vector<RecRequest>& requests,
      BatchShardScratch* scratch) const NMCDR_HOT;

  /// Aborts (NMCDR_CHECK) unless `request` is well-formed against this
  /// snapshot: domains in range, user in range for its domain, k
  /// positive, every excluded item in the target catalog. Serving edges
  /// (ClusterServer admission, the TopK/TopKBatch wrappers) call this so
  /// the hot core can run on NMCDR_DCHECKs alone.
  void ValidateRequest(const RecRequest& request) const;

 private:
  /// One domain's slice owned by one shard. `user_begin`/`item_begin`
  /// are the global ids of row 0 (layout splits), so global id g lives at
  /// local row g - begin.
  struct DomainShard {
    Matrix user_rows;
    /// kExact/kFast: the float item slice. Empty under kQuantized — the
    /// quantized tables below fully replace it (the memory win).
    Matrix item_rows;
    Matrix item_first;  // kFast only: BuildItemFirst over item_rows
    /// kQuantized only: both per-candidate item tables as per-row int8.
    /// Row-independent quantization makes each slice bit-identical to the
    /// corresponding rows of the monolithic quantized tables.
    QuantizedRows item_first_q;
    QuantizedRows item_gmf_q;
    int user_begin = 0;
    int item_begin = 0;

    int num_local_items() const {
      return item_gmf_q.rows > 0 ? item_gmf_q.rows : item_rows.rows();
    }
  };

  struct Domain {
    FrozenPredictionHead head;  // replicated, small
    std::vector<int> user_to_person;
    std::vector<int> person_to_user;
    std::vector<DomainShard> shards;
    int num_users = 0;
    int num_items = 0;
  };

  struct ResolvedUser {
    const float* row = nullptr;  // user representation, dim floats
    bool cold_start = false;
  };

  /// Mirrors ModelSnapshot::ResolveUser + ScoreEngine::Resolve over the
  /// sharded tables (the owning shard is found through the layout).
  ResolvedUser Resolve(int target_domain, int user_domain, int user) const
      NMCDR_HOT;
  const float* UserRow(int d, int user) const NMCDR_HOT;

  ShardLayout layout_;
  Options options_;
  std::vector<Domain> domains_;
  int num_persons_ = 0;
  int dim_ = 0;
};

}  // namespace cluster
}  // namespace nmcdr

#endif  // NMCDR_SERVING_CLUSTER_SHARDED_SNAPSHOT_H_
