#include "serving/cluster/admission.h"

#include <utility>

#include "util/check.h"

namespace nmcdr {
namespace cluster {

const char* RequestClassName(RequestClass cls) {
  return cls == RequestClass::kInteractive ? "interactive" : "batch";
}

const char* ClusterStatusName(ClusterStatus status) {
  switch (status) {
    case ClusterStatus::kOk:
      return "ok";
    case ClusterStatus::kShedQueueFull:
      return "shed_queue_full";
    case ClusterStatus::kShedDeadline:
      return "shed_deadline";
    case ClusterStatus::kStopped:
      return "stopped";
  }
  return "unknown";
}

AdmissionQueue::AdmissionQueue(AdmissionOptions options)
    : options_(options) {
  NMCDR_CHECK_GT(options_.interactive_capacity, 0);
  NMCDR_CHECK_GT(options_.batch_capacity, 0);
}

bool AdmissionQueue::TryPush(AdmissionTicket* ticket) {
  std::lock_guard<std::mutex> lock(mu_);
  const RequestClass cls = ticket->request.cls;
  std::deque<AdmissionTicket>& queue =
      cls == RequestClass::kInteractive ? interactive_ : batch_;
  if (static_cast<int>(queue.size()) >= options_.Capacity(cls)) {
    return false;
  }
  queue.push_back(std::move(*ticket));
  return true;
}

void AdmissionQueue::PopBatch(int max_batch, int64_t now_ns,
                              std::vector<AdmissionTicket>* batch,
                              std::vector<AdmissionTicket>* shed) {
  batch->clear();
  shed->clear();
  std::lock_guard<std::mutex> lock(mu_);
  batch->reserve(max_batch > 0 ? max_batch : 0);
  // Worst case every queued ticket is past deadline; capacities are
  // bounded, so this converges to a high-water no-op.
  shed->reserve(interactive_.size() + batch_.size());
  std::deque<AdmissionTicket>* queues[kNumRequestClasses] = {&interactive_,
                                                             &batch_};
  for (std::deque<AdmissionTicket>* queue : queues) {
    while (!queue->empty() && static_cast<int>(batch->size()) < max_batch) {
      AdmissionTicket ticket = std::move(queue->front());
      queue->pop_front();
      const double deadline_ms =
          options_.DeadlineMs(ticket.request.cls);
      const bool expired =
          deadline_ms > 0.0 &&
          static_cast<double>(now_ns - ticket.enqueued_ns) * 1e-6 >
              deadline_ms;
      if (expired) {
        shed->push_back(std::move(ticket));
      } else {
        batch->push_back(std::move(ticket));
      }
    }
  }
}

int AdmissionQueue::Depth(RequestClass cls) const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(cls == RequestClass::kInteractive
                              ? interactive_.size()
                              : batch_.size());
}

int AdmissionQueue::TotalDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(interactive_.size() + batch_.size());
}

}  // namespace cluster
}  // namespace nmcdr
