#include "serving/cluster/sharded_snapshot.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "serving/scoring_kernels.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace nmcdr {
namespace cluster {
namespace {

/// (score, item) entry ordered so a priority_queue's top() is the WORST
/// kept candidate (RanksBefore acts as the strict weak "less") — the same
/// bounded-heap scheme as ScoreEngine::TopK, and the same total order, so
/// the per-shard winners merge into exactly the global top-K.
struct HeapWorstOnTop {
  bool operator()(const std::pair<float, int>& a,
                  const std::pair<float, int>& b) const {
    return RanksBefore(a.first, a.second, b.first, b.second);
  }
};

using BoundedHeap =
    std::priority_queue<std::pair<float, int>,
                        std::vector<std::pair<float, int>>, HeapWorstOnTop>;

Matrix CopyRowRange(const Matrix& source, int begin, int end) {
  Matrix out(end - begin, source.cols());
  if (end > begin) {
    std::copy(source.row(begin), source.row(begin) + out.size(), out.data());
  }
  return out;
}

}  // namespace

ShardedSnapshot::ShardedSnapshot(const ModelSnapshot& snapshot,
                                 const ShardLayout& layout, Options options)
    : layout_(layout), options_(options) {
  std::string error;
  if (!layout.Validate(snapshot, &error)) {
    LOG_ERROR << "ShardedSnapshot: " << error;
    NMCDR_CHECK(false);
  }
  NMCDR_CHECK_GT(snapshot.num_domains(), 0);
  NMCDR_CHECK_GT(options_.item_block, 0);
  num_persons_ = snapshot.num_persons();
  dim_ = snapshot.domain(0).frozen.dim();
  for (int d = 0; d < snapshot.num_domains(); ++d) {
    const SnapshotDomain& source = snapshot.domain(d);
    NMCDR_CHECK_EQ(source.frozen.dim(), dim_);
    Domain domain;
    domain.head = source.frozen.head;
    domain.user_to_person = source.user_to_person;
    domain.person_to_user = source.person_to_user;
    domain.num_users = source.num_users();
    domain.num_items = source.num_items();
    for (int s = 0; s < layout_.num_shards; ++s) {
      const DomainSplits& splits = layout_.domains[d];
      DomainShard shard;
      shard.user_begin = splits.user_splits[s];
      shard.item_begin = splits.item_splits[s];
      shard.user_rows = CopyRowRange(source.frozen.user_reps,
                                     splits.user_splits[s],
                                     splits.user_splits[s + 1]);
      shard.item_rows = CopyRowRange(source.frozen.item_reps,
                                     splits.item_splits[s],
                                     splits.item_splits[s + 1]);
      if (options_.mode == ScoreEngine::Mode::kFast) {
        // Identical rows as the monolithic precompute (MatMul is row-
        // independent), just computed slice-by-slice.
        shard.item_first = scoring::BuildItemFirst(domain.head,
                                                   shard.item_rows);
      }
      domain.shards.push_back(std::move(shard));
    }
    domains_.push_back(std::move(domain));
  }
}

const float* ShardedSnapshot::UserRow(int d, int user) const {
  const int s = layout_.UserShard(d, user);
  const DomainShard& shard = domains_[d].shards[s];
  return shard.user_rows.row(user - shard.user_begin);
}

ShardedSnapshot::ResolvedUser ShardedSnapshot::Resolve(int target_domain,
                                                       int user_domain,
                                                       int user) const {
  NMCDR_CHECK_GE(target_domain, 0);
  NMCDR_CHECK_LT(target_domain, num_domains());
  NMCDR_CHECK_GE(user_domain, 0);
  NMCDR_CHECK_LT(user_domain, num_domains());
  NMCDR_CHECK_GE(user, 0);
  NMCDR_CHECK_LT(user, domains_[user_domain].num_users);

  int resolved = user;
  if (user_domain != target_domain) {
    const int person = domains_[user_domain].user_to_person[user];
    resolved = (person < 0 || person >= num_persons_)
                   ? -1
                   : domains_[target_domain].person_to_user[person];
  }
  ResolvedUser out;
  if (resolved >= 0) {
    out.row = UserRow(target_domain, resolved);
  } else {
    // Cross-domain cold start, same policy as ScoreEngine::Resolve: rank
    // with the home-domain representation.
    out.row = UserRow(user_domain, user);
    out.cold_start = true;
  }
  return out;
}

Recommendation ShardedSnapshot::TopK(const RecRequest& request) const {
  NMCDR_CHECK_GT(request.k, 0);
  const ResolvedUser resolved =
      Resolve(request.target_domain, request.user_domain, request.user);
  const Domain& domain = domains_[request.target_domain];
  const float* u = resolved.row;

  std::vector<uint8_t> excluded(domain.num_items, 0);
  for (int item : request.exclude) {
    NMCDR_CHECK_GE(item, 0);
    NMCDR_CHECK_LT(item, domain.num_items);
    excluded[item] = 1;
  }

  // kFast shares one user-side first-layer partial across shards (the
  // monolithic path recomputes it per block; the computation is
  // deterministic, so the bits are the same either way).
  std::vector<float> u_first;
  if (options_.mode == ScoreEngine::Mode::kFast) {
    u_first.resize(domain.head.b0.cols());
    scoring::UserFirstPartial(domain.head, u, u_first.data());
  }

  // Fan the per-shard catalog scans out over the shared pool (grain 1: a
  // shard scan is a full pass over its slice). Each shard fills only its
  // own slot, so the fan-out is race-free and deterministic.
  std::vector<std::vector<std::pair<float, int>>> per_shard(
      layout_.num_shards);
  ThreadPool::Shared()->ParallelFor(
      0, layout_.num_shards, /*grain=*/1, [&](int64_t begin, int64_t end) {
        for (int64_t s = begin; s < end; ++s) {
          const DomainShard& shard = domain.shards[s];
          const int local_items = shard.item_rows.rows();
          std::vector<int> candidates;
          candidates.reserve(local_items);
          for (int local = 0; local < local_items; ++local) {
            if (!excluded[shard.item_begin + local]) {
              candidates.push_back(local);
            }
          }
          BoundedHeap heap;
          std::vector<float> scores(options_.item_block);
          for (size_t block = 0; block < candidates.size();
               block += options_.item_block) {
            const int count = static_cast<int>(std::min<size_t>(
                options_.item_block, candidates.size() - block));
            if (options_.mode == ScoreEngine::Mode::kFast) {
              scoring::FastScoreIds(domain.head, shard.item_rows,
                                    shard.item_first, u, u_first.data(),
                                    candidates.data() + block, count,
                                    scores.data());
            } else {
              scoring::ExactScoreIds(domain.head, shard.item_rows, u,
                                     candidates.data() + block, count,
                                     options_.item_block, scores.data());
            }
            for (int i = 0; i < count; ++i) {
              const std::pair<float, int> entry(
                  scores[i], shard.item_begin + candidates[block + i]);
              if (static_cast<int>(heap.size()) < request.k) {
                heap.push(entry);
              } else if (RanksBefore(entry.first, entry.second,
                                     heap.top().first, heap.top().second)) {
                heap.pop();
                heap.push(entry);
              }
            }
          }
          std::vector<std::pair<float, int>>& local_top = per_shard[s];
          local_top.resize(heap.size());
          for (int i = static_cast<int>(heap.size()) - 1; i >= 0; --i) {
            local_top[i] = heap.top();
            heap.pop();
          }
        }
      });

  // Deterministic merge: every shard's winners under the shared total
  // order; the best k of the union are exactly the global best k.
  std::vector<std::pair<float, int>> merged;
  for (const std::vector<std::pair<float, int>>& local : per_shard) {
    merged.insert(merged.end(), local.begin(), local.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const std::pair<float, int>& a, const std::pair<float, int>& b) {
              return RanksBefore(a.first, a.second, b.first, b.second);
            });
  if (static_cast<int>(merged.size()) > request.k) {
    merged.resize(request.k);
  }

  Recommendation rec;
  rec.cold_start = resolved.cold_start;
  rec.items.reserve(merged.size());
  rec.scores.reserve(merged.size());
  for (const std::pair<float, int>& entry : merged) {
    rec.items.push_back(entry.second);
    rec.scores.push_back(entry.first);
  }
  return rec;
}

std::vector<Recommendation> ShardedSnapshot::TopKBatch(
    const std::vector<RecRequest>& requests) const {
  // One task per request; the nested per-shard ParallelFor inside TopK
  // runs inline on the worker, so under batch load the parallelism comes
  // from request fan-out and under single-request load from shard
  // fan-out.
  std::vector<Recommendation> out(requests.size());
  ThreadPool::Shared()->ParallelFor(
      0, static_cast<int64_t>(requests.size()), /*grain=*/1,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) out[i] = TopK(requests[i]);
      });
  return out;
}

}  // namespace cluster
}  // namespace nmcdr
