#include "serving/cluster/sharded_snapshot.h"

#include <algorithm>
#include <utility>

#include "serving/quantized_snapshot.h"
#include "serving/scoring_kernels.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace nmcdr {
namespace cluster {
namespace {

/// (score, item) entry ordered so a worst-on-top binary heap's front() is
/// the WORST kept candidate (RanksBefore acts as the strict weak "less")
/// — the same bounded-heap scheme as ScoreEngine::TopKWithScratch, and
/// the same total order, so the per-shard winners merge into exactly the
/// global top-K. Used with std::push_heap / std::pop_heap over a
/// ShardScratch::Slot's heap vector.
struct HeapWorstOnTop {
  bool operator()(const std::pair<float, int>& a,
                  const std::pair<float, int>& b) const {
    return RanksBefore(a.first, a.second, b.first, b.second);
  }
};

Matrix CopyRowRange(const Matrix& source, int begin, int end) {
  Matrix out(end - begin, source.cols());
  if (end > begin) {
    std::copy(source.row(begin), source.row(begin) + out.size(), out.data());
  }
  return out;
}

}  // namespace

void ShardScratch::Prepare(int num_items, int item_block, int head_width,
                           int num_shards, int dim) {
  // Growth-only, converging to the snapshot's geometry so later calls are
  // no-ops. `excluded` grows zero-filled and the core restores the zeros
  // it sets, keeping the all-zero invariant.
  if (static_cast<int>(excluded.size()) < num_items) {
    excluded.resize(num_items, 0);
  }
  if (static_cast<int>(u_first.size()) < head_width) u_first.resize(head_width);
  if (static_cast<int>(uw.size()) < dim) {
    uw.resize(dim);
    qu.resize(dim);
  }
  if (static_cast<int>(per_shard.size()) < num_shards) {
    per_shard.resize(num_shards);
  }
  for (Slot& slot : per_shard) {
    if (static_cast<int>(slot.scores.size()) < item_block) {
      slot.scores.resize(item_block);
    }
    if (static_cast<int>(slot.h.size()) < head_width) {
      slot.h.resize(head_width);
      slot.next.resize(head_width);
    }
  }
}

void BatchShardScratch::Prepare(size_t n) {
  if (per_request.size() < n) per_request.resize(n);
}

ShardedSnapshot::ShardedSnapshot(const ModelSnapshot& snapshot,
                                 const ShardLayout& layout, Options options)
    : layout_(layout), options_(options) {
  std::string error;
  if (!layout.Validate(snapshot, &error)) {
    LOG_ERROR << "ShardedSnapshot: " << error;
    NMCDR_CHECK(false);
  }
  NMCDR_CHECK_GT(snapshot.num_domains(), 0);
  NMCDR_CHECK_GT(options_.item_block, 0);
  num_persons_ = snapshot.num_persons();
  dim_ = snapshot.domain(0).frozen.dim();
  domains_.reserve(snapshot.num_domains());
  for (int d = 0; d < snapshot.num_domains(); ++d) {
    const SnapshotDomain& source = snapshot.domain(d);
    NMCDR_CHECK_EQ(source.frozen.dim(), dim_);
    Domain domain;
    domain.head = source.frozen.head;
    domain.user_to_person = source.user_to_person;
    domain.person_to_user = source.person_to_user;
    domain.num_users = source.num_users();
    domain.num_items = source.num_items();
    domain.shards.reserve(layout_.num_shards);
    for (int s = 0; s < layout_.num_shards; ++s) {
      const DomainSplits& splits = layout_.domains[d];
      DomainShard shard;
      shard.user_begin = splits.user_splits[s];
      shard.item_begin = splits.item_splits[s];
      shard.user_rows = CopyRowRange(source.frozen.user_reps,
                                     splits.user_splits[s],
                                     splits.user_splits[s + 1]);
      Matrix item_rows = CopyRowRange(source.frozen.item_reps,
                                      splits.item_splits[s],
                                      splits.item_splits[s + 1]);
      if (options_.mode == ScoreEngine::Mode::kQuantized) {
        // Quantize-at-freeze, slice-by-slice: identical rows as the
        // monolithic QuantizedSnapshot::Quantize tables (BuildItemFirst
        // and per-row quantization are both row-independent). The float
        // item slice is NOT kept — the quantized tables replace it.
        shard.item_first_q = QuantizeRows(
            scoring::BuildItemFirst(domain.head, item_rows));
        shard.item_gmf_q = QuantizeRows(item_rows);
      } else {
        shard.item_rows = std::move(item_rows);
        if (options_.mode == ScoreEngine::Mode::kFast) {
          // Identical rows as the monolithic precompute (MatMul is row-
          // independent), just computed slice-by-slice.
          shard.item_first = scoring::BuildItemFirst(domain.head,
                                                     shard.item_rows);
        }
      }
      domain.shards.push_back(std::move(shard));
    }
    domains_.push_back(std::move(domain));
  }
}

const float* ShardedSnapshot::UserRow(int d, int user) const {
  const int s = layout_.UserShard(d, user);
  const DomainShard& shard = domains_[d].shards[s];
  return shard.user_rows.row(user - shard.user_begin);
}

void ShardedSnapshot::ValidateRequest(const RecRequest& request) const {
  NMCDR_CHECK_GE(request.target_domain, 0);
  NMCDR_CHECK_LT(request.target_domain, num_domains());
  NMCDR_CHECK_GE(request.user_domain, 0);
  NMCDR_CHECK_LT(request.user_domain, num_domains());
  NMCDR_CHECK_GE(request.user, 0);
  NMCDR_CHECK_LT(request.user, domains_[request.user_domain].num_users);
  NMCDR_CHECK_GT(request.k, 0);
  const int num_items = domains_[request.target_domain].num_items;
  for (int item : request.exclude) {
    NMCDR_CHECK_GE(item, 0);
    NMCDR_CHECK_LT(item, num_items);
  }
}

ShardedSnapshot::ResolvedUser ShardedSnapshot::Resolve(int target_domain,
                                                       int user_domain,
                                                       int user) const {
  NMCDR_DCHECK_GE(target_domain, 0);
  NMCDR_DCHECK_LT(target_domain, num_domains());
  NMCDR_DCHECK_GE(user_domain, 0);
  NMCDR_DCHECK_LT(user_domain, num_domains());
  NMCDR_DCHECK_GE(user, 0);
  NMCDR_DCHECK_LT(user, domains_[user_domain].num_users);

  int resolved = user;
  if (user_domain != target_domain) {
    const int person = domains_[user_domain].user_to_person[user];
    resolved = (person < 0 || person >= num_persons_)
                   ? -1
                   : domains_[target_domain].person_to_user[person];
  }
  ResolvedUser out;
  if (resolved >= 0) {
    out.row = UserRow(target_domain, resolved);
  } else {
    // Cross-domain cold start, same policy as ScoreEngine::Resolve: rank
    // with the home-domain representation.
    out.row = UserRow(user_domain, user);
    out.cold_start = true;
  }
  return out;
}

Recommendation ShardedSnapshot::TopK(const RecRequest& request) const {
  ValidateRequest(request);
  ShardScratch scratch;
  return TopKWithScratch(request, &scratch);
}

Recommendation ShardedSnapshot::TopKWithScratch(const RecRequest& request,
                                                ShardScratch* scratch) const {
  NMCDR_DCHECK_GT(request.k, 0);
  const ResolvedUser resolved =
      Resolve(request.target_domain, request.user_domain, request.user);
  const Domain& domain = domains_[request.target_domain];
  const float* u = resolved.row;
  scratch->Prepare(domain.num_items, options_.item_block,
                   scoring::MaxHeadWidth(domain.head), layout_.num_shards,
                   dim_);

  // Sparse exclusion bitmap: all-zero between calls, so marking costs
  // O(|exclude|) and the restore loop below undoes exactly these writes.
  std::vector<uint8_t>& excluded = scratch->excluded;
  for (int item : request.exclude) {
    NMCDR_DCHECK_GE(item, 0);
    NMCDR_DCHECK_LT(item, domain.num_items);
    excluded[item] = 1;
  }

  // kFast/kQuantized share one user-side first-layer partial across
  // shards (the monolithic path recomputes it per block; the computation
  // is deterministic, so the bits are the same either way). kQuantized
  // additionally quantizes the user-side gmf operand once — a pure
  // function of u and the head, so the codes match the monolithic
  // engine's bit for bit.
  scoring::QuantizedUser quser;
  if (options_.mode != ScoreEngine::Mode::kExact) {
    scoring::UserFirstPartial(domain.head, u, scratch->u_first.data());
  }
  if (options_.mode == ScoreEngine::Mode::kQuantized) {
    quser = scoring::QuantizeUserGmf(domain.head, u, scratch->uw.data(),
                                     scratch->qu.data());
  }

  // Fan the per-shard catalog scans out over the shared pool (grain 1: a
  // shard scan is a full pass over its slice). Shard s only touches
  // scratch slot s, so the fan-out is race-free and deterministic.
  ThreadPool::Shared()->ParallelFor(
      0, layout_.num_shards, /*grain=*/1, [&](int64_t begin, int64_t end) {
        for (int64_t s = begin; s < end; ++s) {
          const DomainShard& shard = domain.shards[s];
          const int local_items = shard.num_local_items();
          ShardScratch::Slot& slot = scratch->per_shard[s];
          std::vector<int>& candidates = slot.candidates;
          candidates.clear();
          candidates.reserve(local_items);
          for (int local = 0; local < local_items; ++local) {
            if (!excluded[shard.item_begin + local]) {
              candidates.push_back(local);
            }
          }
          // Bounded worst-on-top heap over the slot's heap vector:
          // front() is the worst of the best-k-so-far — the exact element
          // set a std::priority_queue<HeapWorstOnTop> would keep.
          std::vector<std::pair<float, int>>& heap = slot.heap;
          heap.clear();
          heap.reserve(request.k);
          float* scores = slot.scores.data();
          for (size_t block = 0; block < candidates.size();
               block += options_.item_block) {
            const int count = static_cast<int>(std::min<size_t>(
                options_.item_block, candidates.size() - block));
            if (options_.mode == ScoreEngine::Mode::kFast) {
              scoring::FastScoreIds(domain.head, shard.item_rows,
                                    shard.item_first, u,
                                    scratch->u_first.data(),
                                    candidates.data() + block, count,
                                    slot.h.data(), slot.next.data(), scores);
            } else if (options_.mode == ScoreEngine::Mode::kQuantized) {
              scoring::QuantizedScoreIds(domain.head, shard.item_first_q,
                                         shard.item_gmf_q,
                                         scratch->u_first.data(), quser,
                                         candidates.data() + block, count,
                                         slot.h.data(), slot.next.data(),
                                         scores);
            } else {
              scoring::ExactScoreIds(domain.head, shard.item_rows, u,
                                     candidates.data() + block, count,
                                     options_.item_block, scores);
            }
            for (int i = 0; i < count; ++i) {
              const std::pair<float, int> entry(
                  scores[i], shard.item_begin + candidates[block + i]);
              if (static_cast<int>(heap.size()) < request.k) {
                heap.push_back(entry);
                std::push_heap(heap.begin(), heap.end(), HeapWorstOnTop());
              } else if (RanksBefore(entry.first, entry.second,
                                     heap.front().first,
                                     heap.front().second)) {
                std::pop_heap(heap.begin(), heap.end(), HeapWorstOnTop());
                heap.back() = entry;
                std::push_heap(heap.begin(), heap.end(), HeapWorstOnTop());
              }
            }
          }
        }
      });

  // Restore the all-zero bitmap invariant (only the bits set above).
  for (int item : request.exclude) excluded[item] = 0;

  // Deterministic merge: every shard's winners under the shared total
  // order; the best k of the union are exactly the global best k. Global
  // item ids are unique across shards, so the sorted order is unique
  // regardless of the shards' heap layouts.
  std::vector<std::pair<float, int>>& merged = scratch->merged;
  merged.clear();
  merged.reserve(static_cast<size_t>(layout_.num_shards) * request.k);
  for (int s = 0; s < layout_.num_shards; ++s) {
    for (const std::pair<float, int>& entry : scratch->per_shard[s].heap) {
      merged.push_back(entry);
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const std::pair<float, int>& a, const std::pair<float, int>& b) {
              return RanksBefore(a.first, a.second, b.first, b.second);
            });
  const size_t keep =
      std::min<size_t>(merged.size(), static_cast<size_t>(request.k));

  Recommendation rec;
  rec.cold_start = resolved.cold_start;
  rec.items.reserve(keep);
  rec.scores.reserve(keep);
  for (size_t i = 0; i < keep; ++i) {
    rec.items.push_back(merged[i].second);
    rec.scores.push_back(merged[i].first);
  }
  return rec;
}

std::vector<Recommendation> ShardedSnapshot::TopKBatch(
    const std::vector<RecRequest>& requests) const {
  for (const RecRequest& request : requests) ValidateRequest(request);
  BatchShardScratch scratch;
  return TopKBatchWithScratch(requests, &scratch);
}

std::vector<Recommendation> ShardedSnapshot::TopKBatchWithScratch(
    const std::vector<RecRequest>& requests,
    BatchShardScratch* scratch) const {
  // One task per request; the nested per-shard ParallelFor inside
  // TopKWithScratch runs inline on the worker, so under batch load the
  // parallelism comes from request fan-out and under single-request load
  // from shard fan-out. Request i always uses scratch slot i, so
  // concurrent requests touch disjoint buffers.
  scratch->Prepare(requests.size());
  // NMCDR_LINT_ALLOW(hot-alloc): output materialization, one per batch.
  std::vector<Recommendation> out(requests.size());
  ThreadPool::Shared()->ParallelFor(
      0, static_cast<int64_t>(requests.size()), /*grain=*/1,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          out[i] = TopKWithScratch(requests[i], &scratch->per_request[i]);
        }
      });
  return out;
}

}  // namespace cluster
}  // namespace nmcdr
