#include "serving/cluster/snapshot_registry.h"

#include <utility>

#include "util/check.h"

namespace nmcdr {
namespace cluster {

SnapshotRegistry::SnapshotRegistry(obs::MetricsRegistry* metrics) {
  if (metrics != nullptr) {
    publishes_ = &metrics->GetCounter("cluster.publishes");
    version_gauge_ = &metrics->GetGauge("cluster.snapshot_version");
  }
}

SnapshotRegistry::SnapshotRegistry(
    std::shared_ptr<const ShardedSnapshot> initial,
    obs::MetricsRegistry* metrics)
    : SnapshotRegistry(metrics) {
  NMCDR_CHECK(initial != nullptr);
  Publish(std::move(initial));
}

int64_t SnapshotRegistry::Publish(
    std::shared_ptr<const ShardedSnapshot> next) {
  NMCDR_CHECK(next != nullptr);
  int64_t published = 0;
  std::shared_ptr<const ShardedSnapshot> retired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Move the old pointer out so its (possibly final, possibly
    // expensive) release runs after the lock is dropped — publishers
    // never stall readers on a deallocation.
    retired = std::move(current_snapshot_);
    current_snapshot_ = std::move(next);
    published = ++version_;
  }
  if (publishes_ != nullptr) publishes_->Add(1);
  if (version_gauge_ != nullptr) {
    version_gauge_->Set(static_cast<double>(published));
  }
  return published;
}

std::shared_ptr<const ShardedSnapshot> SnapshotRegistry::Acquire(
    int64_t* version) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (version != nullptr) *version = version_;
  return current_snapshot_;
}

int64_t SnapshotRegistry::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

}  // namespace cluster
}  // namespace nmcdr
