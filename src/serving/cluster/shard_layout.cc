#include "serving/cluster/shard_layout.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/check.h"
#include "util/logging.h"

namespace nmcdr {
namespace cluster {
namespace {

/// Minimal cursor over the layout's JSON subset (objects, arrays of ints,
/// string values, int values) — hand-rolled so the serving layer stays
/// dependency-free, strict so a truncated or hand-mangled layout file is
/// rejected rather than half-read.
struct Cursor {
  const std::string& s;
  size_t i = 0;
  std::string err;

  bool Fail(const std::string& message) {
    if (err.empty()) {
      std::ostringstream out;
      out << "ShardLayout: " << message << " at offset " << i;
      err = out.str();
    }
    return false;
  }
  void SkipWs() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r')) {
      ++i;
    }
  }
  bool Consume(char c) {
    SkipWs();
    if (i >= s.size() || s[i] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++i;
    return true;
  }
  bool Peek(char c) {
    SkipWs();
    return i < s.size() && s[i] == c;
  }
  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') return Fail("escapes are not supported");
      out->push_back(s[i++]);
    }
    return Consume('"');
  }
  bool ParseInt(int* out) {
    SkipWs();
    bool negative = false;
    if (i < s.size() && s[i] == '-') {
      negative = true;
      ++i;
    }
    if (i >= s.size() || s[i] < '0' || s[i] > '9') {
      return Fail("expected an integer");
    }
    int64_t value = 0;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
      value = value * 10 + (s[i] - '0');
      if (value > (1ll << 31)) return Fail("integer out of range");
      ++i;
    }
    *out = static_cast<int>(negative ? -value : value);
    return true;
  }
  bool ParseIntArray(std::vector<int>* out) {
    if (!Consume('[')) return false;
    out->clear();
    if (Peek(']')) return Consume(']');
    for (;;) {
      int value = 0;
      if (!ParseInt(&value)) return false;
      // NMCDR_LINT_ALLOW(reserve-before-growth): parse loop with no length
      // prefix in the wire format; element count is unknowable up front.
      out->push_back(value);
      if (Peek(']')) return Consume(']');
      if (!Consume(',')) return false;
    }
  }
};

void AppendIntArray(const std::vector<int>& values, std::ostringstream* out) {
  *out << '[';
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) *out << ", ";
    *out << values[i];
  }
  *out << ']';
}

/// Structural check shared by Parse and Validate: size num_shards + 1,
/// starts at 0, monotone non-decreasing.
bool SplitsWellFormed(const std::vector<int>& splits, int num_shards,
                      int domain, const char* kind, std::string* error) {
  std::ostringstream out;
  if (static_cast<int>(splits.size()) != num_shards + 1) {
    out << "domain " << domain << ": " << kind << " has " << splits.size()
        << " entries, want num_shards + 1 = " << num_shards + 1;
  } else if (splits.front() != 0) {
    out << "domain " << domain << ": " << kind << " must start at 0, got "
        << splits.front();
  } else if (!std::is_sorted(splits.begin(), splits.end())) {
    out << "domain " << domain << ": " << kind
        << " must be monotone non-decreasing";
  } else {
    return true;
  }
  if (error != nullptr) *error = "ShardLayout: " + out.str();
  return false;
}

std::vector<int> UniformSplits(int count, int num_shards) {
  std::vector<int> splits(num_shards + 1, 0);
  const int base = count / num_shards;
  const int extra = count % num_shards;
  for (int s = 0; s < num_shards; ++s) {
    splits[s + 1] = splits[s] + base + (s < extra ? 1 : 0);
  }
  return splits;
}

/// Shard owning `row`: the last shard s with splits[s] <= row (skipping
/// empty ranges so the owner actually contains the row).
int ShardOf(const std::vector<int>& splits, int row) {
  NMCDR_DCHECK_GE(row, 0);
  NMCDR_DCHECK_LT(row, splits.back());
  const auto it = std::upper_bound(splits.begin(), splits.end(), row);
  return static_cast<int>(it - splits.begin()) - 1;
}

}  // namespace

ShardLayout ShardLayout::Uniform(const ModelSnapshot& snapshot,
                                 int num_shards) {
  NMCDR_CHECK_GT(num_shards, 0);
  ShardLayout layout;
  layout.num_shards = num_shards;
  layout.domains.reserve(snapshot.num_domains());
  for (int d = 0; d < snapshot.num_domains(); ++d) {
    DomainSplits splits;
    splits.user_splits =
        UniformSplits(snapshot.domain(d).num_users(), num_shards);
    splits.item_splits =
        UniformSplits(snapshot.domain(d).num_items(), num_shards);
    layout.domains.push_back(std::move(splits));
  }
  return layout;
}

bool ShardLayout::Validate(const ModelSnapshot& snapshot,
                           std::string* error) const {
  std::ostringstream out;
  if (num_shards <= 0) {
    if (error != nullptr) *error = "ShardLayout: num_shards must be positive";
    return false;
  }
  if (static_cast<int>(domains.size()) != snapshot.num_domains()) {
    out << "ShardLayout: layout has " << domains.size()
        << " domains, snapshot has " << snapshot.num_domains();
    if (error != nullptr) *error = out.str();
    return false;
  }
  for (int d = 0; d < snapshot.num_domains(); ++d) {
    if (!SplitsWellFormed(domains[d].user_splits, num_shards, d,
                          "user_splits", error) ||
        !SplitsWellFormed(domains[d].item_splits, num_shards, d,
                          "item_splits", error)) {
      return false;
    }
    if (domains[d].user_splits.back() != snapshot.domain(d).num_users()) {
      out << "ShardLayout: domain " << d << ": user_splits end at "
          << domains[d].user_splits.back() << ", snapshot has "
          << snapshot.domain(d).num_users() << " users";
      if (error != nullptr) *error = out.str();
      return false;
    }
    if (domains[d].item_splits.back() != snapshot.domain(d).num_items()) {
      out << "ShardLayout: domain " << d << ": item_splits end at "
          << domains[d].item_splits.back() << ", snapshot has "
          << snapshot.domain(d).num_items() << " items";
      if (error != nullptr) *error = out.str();
      return false;
    }
  }
  return true;
}

int ShardLayout::UserShard(int d, int row) const {
  NMCDR_DCHECK_GE(d, 0);
  NMCDR_DCHECK_LT(d, static_cast<int>(domains.size()));
  return ShardOf(domains[d].user_splits, row);
}

int ShardLayout::ItemShard(int d, int row) const {
  NMCDR_DCHECK_GE(d, 0);
  NMCDR_DCHECK_LT(d, static_cast<int>(domains.size()));
  return ShardOf(domains[d].item_splits, row);
}

bool ShardLayout::Equals(const ShardLayout& other) const {
  if (num_shards != other.num_shards ||
      domains.size() != other.domains.size()) {
    return false;
  }
  for (size_t d = 0; d < domains.size(); ++d) {
    if (domains[d].user_splits != other.domains[d].user_splits ||
        domains[d].item_splits != other.domains[d].item_splits) {
      return false;
    }
  }
  return true;
}

std::string ShardLayout::ToJson() const {
  std::ostringstream out;
  out << "{\n  \"schema\": \"" << kShardLayoutSchema << "\",\n"
      << "  \"num_shards\": " << num_shards << ",\n  \"domains\": [";
  for (size_t d = 0; d < domains.size(); ++d) {
    if (d > 0) out << ',';
    out << "\n    {\"user_splits\": ";
    AppendIntArray(domains[d].user_splits, &out);
    out << ", \"item_splits\": ";
    AppendIntArray(domains[d].item_splits, &out);
    out << '}';
  }
  out << "\n  ]\n}\n";
  return out.str();
}

bool ShardLayout::Parse(const std::string& json, ShardLayout* out,
                        std::string* error) {
  Cursor cursor{json};
  ShardLayout parsed;
  parsed.num_shards = 0;
  bool saw_schema = false, saw_shards = false, saw_domains = false;

  bool ok = cursor.Consume('{');
  while (ok && !cursor.Peek('}')) {
    std::string key;
    ok = cursor.ParseString(&key) && cursor.Consume(':');
    if (!ok) break;
    if (key == "schema") {
      std::string schema;
      ok = cursor.ParseString(&schema);
      if (ok && schema != kShardLayoutSchema) {
        ok = cursor.Fail("unknown schema \"" + schema + "\"");
      }
      saw_schema = ok;
    } else if (key == "num_shards") {
      ok = cursor.ParseInt(&parsed.num_shards);
      saw_shards = ok;
    } else if (key == "domains") {
      ok = cursor.Consume('[');
      while (ok && !cursor.Peek(']')) {
        DomainSplits splits;
        bool saw_users = false, saw_items = false;
        ok = cursor.Consume('{');
        while (ok && !cursor.Peek('}')) {
          std::string field;
          ok = cursor.ParseString(&field) && cursor.Consume(':');
          if (!ok) break;
          if (field == "user_splits") {
            ok = cursor.ParseIntArray(&splits.user_splits);
            saw_users = ok;
          } else if (field == "item_splits") {
            ok = cursor.ParseIntArray(&splits.item_splits);
            saw_items = ok;
          } else {
            ok = cursor.Fail("unknown domain key \"" + field + "\"");
          }
          if (ok && !cursor.Peek('}')) ok = cursor.Consume(',');
        }
        ok = ok && cursor.Consume('}');
        if (ok && (!saw_users || !saw_items)) {
          ok = cursor.Fail("domain entry missing user_splits/item_splits");
        }
        if (ok) parsed.domains.push_back(std::move(splits));
        if (ok && !cursor.Peek(']')) ok = cursor.Consume(',');
      }
      ok = ok && cursor.Consume(']');
      saw_domains = ok;
    } else {
      ok = cursor.Fail("unknown key \"" + key + "\"");
    }
    if (ok && !cursor.Peek('}')) ok = cursor.Consume(',');
  }
  ok = ok && cursor.Consume('}');
  if (ok) {
    cursor.SkipWs();
    if (cursor.i != json.size()) ok = cursor.Fail("trailing characters");
  }
  if (ok && (!saw_schema || !saw_shards || !saw_domains)) {
    ok = cursor.Fail("missing schema/num_shards/domains");
  }
  if (ok && parsed.num_shards <= 0) {
    ok = cursor.Fail("num_shards must be positive");
  }
  for (size_t d = 0; ok && d < parsed.domains.size(); ++d) {
    std::string splits_error;
    if (!SplitsWellFormed(parsed.domains[d].user_splits, parsed.num_shards,
                          static_cast<int>(d), "user_splits",
                          &splits_error) ||
        !SplitsWellFormed(parsed.domains[d].item_splits, parsed.num_shards,
                          static_cast<int>(d), "item_splits",
                          &splits_error)) {
      ok = cursor.Fail(splits_error);
    }
  }
  if (!ok) {
    if (error != nullptr) *error = cursor.err;
    return false;
  }
  *out = std::move(parsed);
  return true;
}

bool ShardLayout::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    LOG_ERROR << "ShardLayout::Save: cannot open " << path;
    return false;
  }
  out << ToJson();
  out.flush();
  if (!out) {
    LOG_ERROR << "ShardLayout::Save: write to " << path << " failed";
    return false;
  }
  return true;
}

bool ShardLayout::Load(const std::string& path, ShardLayout* out,
                       std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "ShardLayout: cannot open " + path;
    LOG_ERROR << "ShardLayout::Load: cannot open " << path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string parse_error;
  if (!Parse(buffer.str(), out, &parse_error)) {
    if (error != nullptr) *error = parse_error;
    LOG_ERROR << "ShardLayout::Load: " << path << ": " << parse_error;
    return false;
  }
  return true;
}

}  // namespace cluster
}  // namespace nmcdr
