#ifndef NMCDR_SERVING_CLUSTER_ADMISSION_H_
#define NMCDR_SERVING_CLUSTER_ADMISSION_H_

#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "serving/score_engine.h"
#include "util/thread_annotations.h"

namespace nmcdr {
namespace cluster {

/// Request classes, in strict priority order: interactive traffic (a user
/// is waiting on the response) is always drained before batch traffic
/// (offline refills, crawlers), and each class has its own bounded queue
/// and deadline so a batch flood can neither grow the interactive queue
/// nor starve it.
enum class RequestClass { kInteractive = 0, kBatch = 1 };

inline constexpr int kNumRequestClasses = 2;

/// Stable lowercase name ("interactive"/"batch"), used in metric names.
const char* RequestClassName(RequestClass cls);

/// How a cluster request ended.
enum class ClusterStatus {
  kOk = 0,
  /// Rejected at Submit: the class queue was at capacity (backpressure).
  kShedQueueFull,
  /// Dropped at drain: it waited in queue past its class deadline, so
  /// serving it would burn capacity on an answer nobody is waiting for.
  kShedDeadline,
  /// Submitted after Stop().
  kStopped,
};

const char* ClusterStatusName(ClusterStatus status);

/// A scoring request tagged with its class.
struct ClusterRequest {
  RecRequest rec;
  RequestClass cls = RequestClass::kInteractive;
};

/// Response envelope: `rec` is only meaningful when status == kOk.
struct ClusterResponse {
  ClusterStatus status = ClusterStatus::kOk;
  Recommendation rec;
  /// Snapshot version that served the request (kOk only).
  int64_t snapshot_version = 0;
  /// Submit-to-response latency (kOk only).
  double latency_ms = 0.0;
};

/// Per-class queue capacities and queueing deadlines.
struct AdmissionOptions {
  int interactive_capacity = 1024;
  int batch_capacity = 4096;
  /// A request dequeued more than this many ms after Submit is shed
  /// (kShedDeadline) instead of served; <= 0 disables the deadline.
  double interactive_deadline_ms = 0.0;
  double batch_deadline_ms = 0.0;

  int Capacity(RequestClass cls) const {
    return cls == RequestClass::kInteractive ? interactive_capacity
                                             : batch_capacity;
  }
  double DeadlineMs(RequestClass cls) const {
    return cls == RequestClass::kInteractive ? interactive_deadline_ms
                                             : batch_deadline_ms;
  }
};

/// One queued request awaiting a drainer.
struct AdmissionTicket {
  ClusterRequest request;
  std::promise<ClusterResponse> promise;
  int64_t enqueued_ns = 0;  // obs::NowNs at Submit
};

/// Bounded two-class priority queue — the cluster's admission-control
/// core, isolated from the server so its shedding policy is unit-testable
/// without threads. Thread-safe (internal mutex).
///
/// Backpressure happens at the edges: TryPush refuses (never blocks,
/// never grows past capacity) when the class queue is full, and PopBatch
/// sheds tickets whose class deadline expired while they queued. The
/// caller owns resolving shed tickets' promises.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(AdmissionOptions options);

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Enqueues `ticket`, or returns false when its class queue is at
  /// capacity (the ticket is handed back untouched for the caller to
  /// shed).
  bool TryPush(AdmissionTicket* ticket) NMCDR_EXCLUDES(mu_);

  /// Pops up to `max_batch` tickets in priority order (all interactive
  /// before any batch, FIFO within a class) into *batch. Tickets found
  /// past their class deadline (enqueued_ns + deadline < now_ns) are
  /// moved to *shed instead and do not count toward max_batch. Both
  /// out-vectors are cleared first and reserved to their bounds, so a
  /// drainer reusing them across passes pops allocation-free at steady
  /// state.
  void PopBatch(int max_batch, int64_t now_ns,
                std::vector<AdmissionTicket>* batch,
                std::vector<AdmissionTicket>* shed) NMCDR_EXCLUDES(mu_);

  int Depth(RequestClass cls) const NMCDR_EXCLUDES(mu_);
  int TotalDepth() const NMCDR_EXCLUDES(mu_);

  const AdmissionOptions& options() const { return options_; }

 private:
  AdmissionOptions options_;
  mutable std::mutex mu_;
  std::deque<AdmissionTicket> interactive_;  // GUARDED_BY(mu_)
  std::deque<AdmissionTicket> batch_;        // GUARDED_BY(mu_)
};

}  // namespace cluster
}  // namespace nmcdr

#endif  // NMCDR_SERVING_CLUSTER_ADMISSION_H_
