#include "serving/ab_test.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/logging.h"

namespace nmcdr {
namespace {

float Dot(const Matrix& a, int ra, const Matrix& b, int rb) {
  const float* ar = a.row(ra);
  const float* br = b.row(rb);
  double acc = 0.0;
  for (int c = 0; c < a.cols(); ++c) acc += static_cast<double>(ar[c]) * br[c];
  return static_cast<float>(acc);
}

double Logistic(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

ServingWorld::ServingWorld(const std::vector<DomainSpec>& specs,
                           int num_persons,
                           const std::vector<double>& membership_prob,
                           int latent_dim, double preference_sharpness,
                           uint64_t seed)
    : sharpness_(preference_sharpness) {
  NMCDR_CHECK_EQ(specs.size(), membership_prob.size());
  NMCDR_CHECK_GT(num_persons, 0);
  Rng rng(seed);
  const int k = static_cast<int>(specs.size());

  // Shared person latents: cross-domain transfer is real by construction.
  Matrix person_latent =
      Matrix::Gaussian(num_persons, latent_dim, &rng, 0.f,
                       1.f / std::sqrt(static_cast<float>(latent_dim)));

  person_of_.resize(k);
  user_of_.assign(k, std::vector<int>(num_persons, -1));
  for (int p = 0; p < num_persons; ++p) {
    bool joined = false;
    for (int d = 0; d < k; ++d) {
      if (rng.Bernoulli(membership_prob[d])) {
        user_of_[d][p] = static_cast<int>(person_of_[d].size());
        person_of_[d].push_back(p);
        joined = true;
      }
    }
    if (!joined) {
      const int d = static_cast<int>(rng.NextUint64(k));
      user_of_[d][p] = static_cast<int>(person_of_[d].size());
      person_of_[d].push_back(p);
    }
  }

  domains_.resize(k);
  user_latent_.resize(k);
  item_latent_.resize(k);
  bias_.resize(k);
  for (int d = 0; d < k; ++d) {
    SyntheticDomainSpec spec = specs[d].data;
    spec.num_users = static_cast<int>(person_of_[d].size());
    // Domain user latents: the shared person latent plus small local noise.
    Matrix lat(spec.num_users, latent_dim);
    for (int u = 0; u < spec.num_users; ++u) {
      const float* src = person_latent.row(person_of_[d][u]);
      float* dst = lat.row(u);
      for (int c = 0; c < latent_dim; ++c) {
        dst[c] = 0.9f * src[c] + 0.436f * rng.Gaussian(0.f, 1.f / std::sqrt(
                                              static_cast<float>(latent_dim)));
      }
    }
    item_latent_[d] =
        Matrix::Gaussian(spec.num_items, latent_dim, &rng, 0.f,
                         1.f / std::sqrt(static_cast<float>(latent_dim)));
    domains_[d] = GenerateDomainFromLatents(spec, lat, item_latent_[d],
                                            preference_sharpness,
                                            /*min_interactions=*/3, &rng);
    user_latent_[d] = std::move(lat);

    // Calibrate the logistic bias so a random policy converts at roughly
    // the target CVR: solve E[sigmoid(s * affinity + b)] = target by
    // bisection over random (user, item) pairs.
    std::vector<float> sample_affinity;
    sample_affinity.reserve(4000);
    for (int i = 0; i < 4000; ++i) {
      const int u = static_cast<int>(rng.NextUint64(spec.num_users));
      const int v = static_cast<int>(rng.NextUint64(spec.num_items));
      sample_affinity.push_back(
          static_cast<float>(sharpness_) *
          Dot(user_latent_[d], u, item_latent_[d], v));
    }
    double lo = -15.0, hi = 15.0;
    for (int it = 0; it < 60; ++it) {
      const double mid = 0.5 * (lo + hi);
      double mean = 0.0;
      for (float a : sample_affinity) mean += Logistic(a + mid);
      mean /= sample_affinity.size();
      (mean < specs[d].target_base_cvr ? lo : hi) = mid;
    }
    bias_[d] = 0.5 * (lo + hi);
  }
}

double ServingWorld::ConversionProbability(int d, int user, int item) const {
  return Logistic(sharpness_ * Dot(user_latent_[d], user, item_latent_[d],
                                   item) +
                  bias_[d]);
}

CdrScenario ServingWorld::MakePairScenario(int d1, int d2) const {
  CdrScenario scenario;
  scenario.name = domain_name(d1) + "-" + domain_name(d2);
  scenario.z = domains_[d1];
  scenario.zbar = domains_[d2];
  scenario.z_to_zbar.assign(scenario.z.num_users, -1);
  scenario.zbar_to_z.assign(scenario.zbar.num_users, -1);
  for (int u = 0; u < scenario.z.num_users; ++u) {
    const int person = person_of_[d1][u];
    const int counterpart = user_of_[d2][person];
    if (counterpart >= 0) {
      scenario.z_to_zbar[u] = counterpart;
      scenario.zbar_to_z[counterpart] = u;
    }
  }
  scenario.CheckConsistency();
  return scenario;
}

std::vector<int> ServingWorld::ItemPopularity(int d) const {
  std::vector<int> popularity(domains_[d].num_items, 0);
  for (const Interaction& e : domains_[d].interactions) ++popularity[e.item];
  return popularity;
}

std::vector<GroupResult> RunAbTest(
    const ServingWorld& world,
    const std::vector<std::pair<std::string, Ranker>>& groups,
    const AbTestConfig& config) {
  NMCDR_CHECK(!groups.empty());
  Rng rng(config.seed);
  const int g = static_cast<int>(groups.size());

  std::vector<GroupResult> results(g);
  for (int i = 0; i < g; ++i) {
    results[i].name = groups[i].first;
    results[i].cvr.assign(world.num_domains(), 0.0);
    results[i].impressions.assign(world.num_domains(), 0);
  }
  std::vector<std::vector<int64_t>> conversions(
      g, std::vector<int64_t>(world.num_domains(), 0));

  for (int day = 0; day < config.days; ++day) {
    for (int d = 0; d < world.num_domains(); ++d) {
      const int num_users = world.NumUsers(d);
      const int num_items = world.domain(d).num_items;
      for (int imp = 0; imp < config.impressions_per_day_per_domain; ++imp) {
        const int user = static_cast<int>(rng.NextUint64(num_users));
        // Stable traffic split by person id: a person stays in one group
        // for the whole test (standard A/B hygiene).
        const int person = world.PersonOfUser(d, user);
        const int group =
            static_cast<int>((static_cast<uint64_t>(person) * 2654435761ULL) %
                             g);
        // Shared candidate retrieval.
        std::vector<int> candidates = rng.SampleWithoutReplacement(
            num_items, std::min(config.candidate_pool, num_items));
        const std::vector<float> scores =
            groups[group].second(d, user, candidates);
        NMCDR_CHECK_EQ(scores.size(), candidates.size());
        int best = 0;
        for (size_t i = 1; i < candidates.size(); ++i) {
          if (scores[i] > scores[best]) best = static_cast<int>(i);
        }
        ++results[group].impressions[d];
        if (rng.Bernoulli(
                world.ConversionProbability(d, user, candidates[best]))) {
          ++conversions[group][d];
        }
      }
    }
  }
  for (int i = 0; i < g; ++i) {
    for (int d = 0; d < world.num_domains(); ++d) {
      if (results[i].impressions[d] > 0) {
        results[i].cvr[d] = static_cast<double>(conversions[i][d]) /
                            results[i].impressions[d];
      }
    }
  }
  return results;
}

Ranker PopularityRanker(const ServingWorld& world) {
  std::vector<std::vector<int>> popularity;
  popularity.reserve(world.num_domains());
  for (int d = 0; d < world.num_domains(); ++d) {
    popularity.push_back(world.ItemPopularity(d));
  }
  return [popularity](int domain, int /*user*/,
                      const std::vector<int>& candidates) {
    std::vector<float> scores(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      scores[i] = static_cast<float>(popularity[domain][candidates[i]]);
    }
    return scores;
  };
}

}  // namespace nmcdr
