#ifndef NMCDR_SERVING_QUANTIZED_SNAPSHOT_H_
#define NMCDR_SERVING_QUANTIZED_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serving/model_snapshot.h"
#include "tensor/matrix.h"
#include "util/thread_annotations.h"

namespace nmcdr {

/// Per-row affine int8 quantization of a float matrix: row r stores int8
/// codes q with v ≈ scale[r] * (q - zero[r]). `qsum[r]` carries the row's
/// code sum so integer dot products can correct for both zero points
/// without dequantizing (see scoring::QuantizedScoreIds):
///
///   dot(u, v) ≈ s_u * s_v * [Σ q_u q_v − z_v Σ q_u − z_u Σ q_v + n z_u z_v]
///
/// Quantization is ROW-INDEPENDENT — row r's codes depend only on row r's
/// floats — which is what keeps sharded quantized serving bit-identical
/// to the monolithic engine: a shard slice quantizes to exactly the rows
/// the whole-table quantization produces.
struct QuantizedRows {
  int rows = 0;
  int cols = 0;
  std::vector<int8_t> q;       // [rows * cols], row-major
  std::vector<float> scale;    // [rows], finite and > 0
  std::vector<int32_t> zero;   // [rows], zero point (integer, |z| bounded)
  std::vector<int32_t> qsum;   // [rows], sum of the row's codes

  const int8_t* row(int r) const {
    return q.data() + static_cast<size_t>(r) * cols;
  }

  bool Equals(const QuantizedRows& other) const;
};

/// Quantizes every row of `m` (deterministic, row-independent). Rows with
/// spread use the full [-128, 127] code range over [min, max]; constant
/// rows (including all-zero) get a symmetric scale so the value is
/// representable exactly up to one rounding.
QuantizedRows QuantizeRows(const Matrix& m) NMCDR_COLD;

/// One float vector quantized with the same per-row scheme, into
/// caller-owned storage (the serving hot path quantizes the user-side gmf
/// operand once per request — no allocation). Writes n codes to `q`.
void QuantizeVectorInto(const float* v, int n, int8_t* q, float* scale,
                        int32_t* zero, int32_t* qsum) NMCDR_HOT;

/// One domain's quantized item-side tables (the only tables the
/// quantized scoring mode reads per candidate): the first-layer partials
/// item_reps * w0_item + b0, and the raw item representations for the
/// gmf dot. 1 byte per element instead of 4 — the memory-traffic
/// reduction that pays at catalog scale.
struct QuantizedDomain {
  QuantizedRows item_first;  // [num_items, hidden]
  QuantizedRows item_gmf;    // [num_items, dim]
};

/// The quantize-at-freeze artifact behind ScoreEngine::Mode::kQuantized
/// and the quantized cluster mode: built once from a frozen ModelSnapshot
/// (Quantize), servable after a disk round-trip (Save/Load). The fp
/// snapshot remains the source of truth for the user tables, person
/// links, and the (tiny) head weights; only the per-candidate item tables
/// are quantized.
class QuantizedSnapshot {
 public:
  QuantizedSnapshot() = default;

  /// Quantizes every domain's item tables (item_first computed via
  /// scoring::BuildItemFirst, then both tables through QuantizeRows).
  static QuantizedSnapshot Quantize(const ModelSnapshot& snapshot) NMCDR_COLD;

  int num_domains() const { return static_cast<int>(domains_.size()); }
  const QuantizedDomain& domain(int d) const { return domains_[d]; }

  /// Writes the tables to `path`. Returns false (and logs) on failure.
  bool Save(const std::string& path) const;

  /// Reads tables written by Save. Returns false (and reports through
  /// `error` when non-null) if the file is unreadable, truncated,
  /// structurally inconsistent, or carrying corrupt quantization
  /// parameters (non-finite or non-positive scales, out-of-range zero
  /// points, code sums not matching the codes). A rejected file never
  /// leaves partial state in `*snapshot`.
  static bool Load(const std::string& path, QuantizedSnapshot* snapshot,
                   std::string* error = nullptr);

  /// Exact structural and bitwise value equality (round-trip checks).
  bool Equals(const QuantizedSnapshot& other) const;

  /// Whether these tables fit `snapshot`'s geometry (domain count, item
  /// counts, hidden width, dim) — checked before serving a loaded
  /// artifact against an fp snapshot.
  bool Matches(const ModelSnapshot& snapshot, std::string* error) const;

 private:
  std::vector<QuantizedDomain> domains_;
};

}  // namespace nmcdr

#endif  // NMCDR_SERVING_QUANTIZED_SNAPSHOT_H_
