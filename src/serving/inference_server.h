#ifndef NMCDR_SERVING_INFERENCE_SERVER_H_
#define NMCDR_SERVING_INFERENCE_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <string>

#include "serving/score_engine.h"
#include "util/stopwatch.h"

namespace nmcdr {

/// Aggregate serving counters, copied atomically by
/// InferenceServer::stats(). Latencies are measured enqueue-to-response.
struct ServerStats {
  int64_t requests_submitted = 0;
  int64_t requests_served = 0;
  int64_t cold_start_served = 0;
  int64_t batches = 0;
  int64_t max_queue_depth = 0;
  int64_t max_batch_size = 0;
  double total_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  /// Seconds since the server started (filled when stats() is taken).
  double wall_seconds = 0.0;

  double MeanLatencyMs() const;
  double MeanBatchSize() const;
  /// Served requests per wall-clock second since start.
  double ThroughputPerSec() const;

  /// Human-readable one-per-line dump for demos and logs.
  std::string ToString() const;
};

/// Concurrent top-K serving runtime over a ScoreEngine. The server owns no
/// threads: it drains its request queue through ThreadPool::Shared() by
/// dispatching up to `num_threads` concurrent drainer tasks, each taking
/// up to `max_batch` queued requests per pass (batching amortizes queue
/// overhead under load; under light load a request is picked up alone and
/// immediately). A drainer exits when the queue is empty, so pool workers
/// are only occupied while requests exist. Results are delivered through
/// futures; the engine itself is const and lock-free, so drainers score in
/// parallel.
///
/// Invariant: whenever the queue is non-empty, at least one drainer is
/// active (Submit dispatches one if needed), and Stop() returns only once
/// the queue is empty and every drainer has exited — nothing is left
/// running on the shared pool afterwards.
class InferenceServer {
 public:
  struct Options {
    /// Maximum concurrent drainer tasks (actual parallelism is also
    /// bounded by the shared pool's size).
    int num_threads = 2;
    /// Requests drained per pass.
    int max_batch = 8;
  };

  /// `engine` must outlive the server. No threads start until the first
  /// Submit.
  InferenceServer(const ScoreEngine* engine, Options options);
  explicit InferenceServer(const ScoreEngine* engine)
      : InferenceServer(engine, Options()) {}

  /// Stops the server (serving every queued request first).
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues a request; the future resolves once a drainer serves it.
  /// Cross-domain requests (user_domain != target_domain) route through
  /// the snapshot's person links, falling back to the cold-start path.
  std::future<Recommendation> Submit(RecRequest request);

  /// Blocking same-domain convenience wrapper around Submit.
  Recommendation Recommend(int domain, int user, int k);

  /// Serves every queued request, waits for all drainers to exit, then
  /// returns. Idempotent; Submit after Stop fails the returned future.
  /// Must not be called from inside a shared-pool task.
  void Stop();

  /// Currently active drainer tasks (0 after Stop() by the class
  /// invariant — asserted in serving_engine_test).
  int active_drainers() const;

  /// Consistent snapshot of the counters.
  ServerStats stats() const;

 private:
  struct Pending {
    RecRequest request;
    std::promise<Recommendation> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// One drainer pass: repeatedly serve batches until the queue is empty,
  /// then retire (decrementing active_drainers_).
  void DrainLoop();

  const ScoreEngine* engine_;
  Options options_;
  Stopwatch uptime_;

  mutable std::mutex mu_;
  /// Signalled when a drainer retires or the queue empties (Stop waits).
  std::condition_variable drained_cv_;
  std::deque<Pending> queue_;  // GUARDED_BY(mu_)
  int active_drainers_ = 0;    // GUARDED_BY(mu_)
  bool stopping_ = false;      // GUARDED_BY(mu_)
  ServerStats stats_;          // GUARDED_BY(mu_); wall filled on read
};

}  // namespace nmcdr

#endif  // NMCDR_SERVING_INFERENCE_SERVER_H_
