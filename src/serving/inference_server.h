#ifndef NMCDR_SERVING_INFERENCE_SERVER_H_
#define NMCDR_SERVING_INFERENCE_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serving/score_engine.h"
#include "util/stopwatch.h"

namespace nmcdr {

/// Aggregate serving counters, copied atomically by
/// InferenceServer::stats(). Latencies are measured enqueue-to-response.
struct ServerStats {
  int64_t requests_submitted = 0;
  int64_t requests_served = 0;
  int64_t cold_start_served = 0;
  int64_t batches = 0;
  int64_t max_queue_depth = 0;
  int64_t max_batch_size = 0;
  double total_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  /// Seconds since the server started (filled when stats() is taken).
  double wall_seconds = 0.0;

  double MeanLatencyMs() const;
  double MeanBatchSize() const;
  /// Served requests per wall-clock second since start.
  double ThroughputPerSec() const;

  /// Human-readable one-per-line dump for demos and logs.
  std::string ToString() const;
};

/// Concurrent top-K serving runtime over a ScoreEngine: a fixed pool of
/// worker threads drains a shared request queue, taking up to
/// `max_batch` queued requests per wake-up (batching amortizes queue and
/// wake-up overhead under load; under light load a request is picked up
/// alone and immediately). Results are delivered through futures; the
/// engine itself is const and lock-free, so workers score in parallel.
class InferenceServer {
 public:
  struct Options {
    int num_threads = 2;
    /// Requests drained per worker wake-up.
    int max_batch = 8;
  };

  /// `engine` must outlive the server. Workers start immediately.
  InferenceServer(const ScoreEngine* engine, Options options);
  explicit InferenceServer(const ScoreEngine* engine)
      : InferenceServer(engine, Options()) {}

  /// Stops and joins the workers (serving every queued request first).
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues a request; the future resolves once a worker serves it.
  /// Cross-domain requests (user_domain != target_domain) route through
  /// the snapshot's person links, falling back to the cold-start path.
  std::future<Recommendation> Submit(RecRequest request);

  /// Blocking same-domain convenience wrapper around Submit.
  Recommendation Recommend(int domain, int user, int k);

  /// Serves every queued request, then stops the workers. Idempotent;
  /// Submit after Stop fails the returned future.
  void Stop();

  /// Consistent snapshot of the counters.
  ServerStats stats() const;

 private:
  struct Pending {
    RecRequest request;
    std::promise<Recommendation> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop();

  const ScoreEngine* engine_;
  Options options_;
  Stopwatch uptime_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;     // GUARDED_BY(mu_)
  bool stopping_ = false;         // GUARDED_BY(mu_)
  ServerStats stats_;             // GUARDED_BY(mu_); wall filled on read
  std::vector<std::thread> workers_;
};

}  // namespace nmcdr

#endif  // NMCDR_SERVING_INFERENCE_SERVER_H_
