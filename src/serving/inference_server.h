#ifndef NMCDR_SERVING_INFERENCE_SERVER_H_
#define NMCDR_SERVING_INFERENCE_SERVER_H_

#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>

#include "obs/metrics.h"
#include "serving/score_engine.h"
#include "util/stopwatch.h"
#include "util/thread_annotations.h"

namespace nmcdr {

/// Aggregate serving statistics, scraped from the server's metrics
/// registry by InferenceServer::stats(). Latencies are measured
/// enqueue-to-response; quantiles come from the serving.latency_ms
/// histogram (obs/metrics.h), so p50/p95/p99 are bucket-interpolated
/// estimates while count/sum/max are exact.
struct ServerStats {
  int64_t requests_submitted = 0;
  int64_t requests_served = 0;
  int64_t cold_start_served = 0;
  int64_t batches = 0;
  int64_t max_queue_depth = 0;
  int64_t max_batch_size = 0;
  double total_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  /// Seconds since the server started (filled when stats() is taken).
  double wall_seconds = 0.0;

  double MeanLatencyMs() const;
  double MeanBatchSize() const;
  /// Served requests per wall-clock second since start.
  double ThroughputPerSec() const;

  /// Human-readable one-per-line dump for demos and logs.
  std::string ToString() const;
};

/// Concurrent top-K serving runtime over a ScoreEngine. The server owns no
/// threads: it drains its request queue through ThreadPool::Shared() by
/// dispatching up to `num_threads` concurrent drainer tasks, each taking
/// up to `max_batch` queued requests per pass (batching amortizes queue
/// overhead under load; under light load a request is picked up alone and
/// immediately). A drainer exits when the queue is empty, so pool workers
/// are only occupied while requests exist. Results are delivered through
/// futures; the engine itself is const and lock-free, so drainers score in
/// parallel.
///
/// Invariant: whenever the queue is non-empty, at least one drainer is
/// active (Submit dispatches one if needed), and Stop() returns only once
/// the queue is empty and every drainer has exited — nothing is left
/// running on the shared pool afterwards.
///
/// Accounting lives in an obs::MetricsRegistry ("serving.*" names:
/// request/batch counters, the serving.latency_ms and serving.batch_size
/// histograms, queue-depth gauges) and is recorded unconditionally — the
/// server's traffic counts are part of its contract (tests assert exact
/// values), not optional instrumentation, so the obs enable flags do not
/// apply here. By default each server owns a private registry, keeping
/// counts per-server; pass Options::metrics = &obs::MetricsRegistry::
/// Global() to surface them in --metrics-out dumps.
class InferenceServer {
 public:
  struct Options {
    /// Maximum concurrent drainer tasks (actual parallelism is also
    /// bounded by the shared pool's size).
    int num_threads = 2;
    /// Requests drained per pass.
    int max_batch = 8;
    /// Registry receiving the serving.* metrics; nullptr = a registry
    /// private to this server (must outlive the server otherwise).
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// `engine` must outlive the server. No threads start until the first
  /// Submit.
  InferenceServer(const ScoreEngine* engine, Options options);
  explicit InferenceServer(const ScoreEngine* engine)
      : InferenceServer(engine, Options()) {}

  /// Stops the server (serving every queued request first).
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues a request; the future resolves once a drainer serves it.
  /// Cross-domain requests (user_domain != target_domain) route through
  /// the snapshot's person links, falling back to the cold-start path.
  std::future<Recommendation> Submit(RecRequest request) NMCDR_EXCLUDES(mu_);

  /// Blocking same-domain convenience wrapper around Submit.
  Recommendation Recommend(int domain, int user, int k);

  /// Serves every queued request, waits for all drainers to exit, then
  /// returns. Idempotent; Submit after Stop fails the returned future.
  /// Must not be called from inside a shared-pool task.
  void Stop() NMCDR_EXCLUDES(mu_);

  /// Currently active drainer tasks (0 after Stop() by the class
  /// invariant — asserted in serving_engine_test).
  int active_drainers() const NMCDR_EXCLUDES(mu_);

  /// Scrapes the registry into a ServerStats. Each field is individually
  /// exact; a scrape racing in-flight drainers may observe a request in
  /// one field but not yet another. After every submitted future has
  /// resolved the snapshot is fully consistent: drainers finish all
  /// bookkeeping before fulfilling promises.
  ServerStats stats() const NMCDR_EXCLUDES(mu_);

  /// The registry this server records into (the private one unless
  /// Options::metrics was set).
  obs::MetricsRegistry& metrics_registry() const { return *metrics_; }

 private:
  struct Pending {
    RecRequest request;
    std::promise<Recommendation> promise;
    int64_t enqueued_ns = 0;  // obs::NowNs at Submit
  };

  /// One drainer pass: repeatedly serve batches until the queue is empty,
  /// then retire (decrementing active_drainers_).
  void DrainLoop() NMCDR_EXCLUDES(mu_);

  /// Reserves a drainer slot when `queued` requests justify one (the
  /// non-empty-queue-has-a-drainer invariant, plus extra parallelism up
  /// to num_threads). Returns true when the caller must dispatch a
  /// DrainLoop task — after releasing mu_, never under it.
  bool TryReserveDrainerLocked(int queued) NMCDR_REQUIRES(mu_);

  const ScoreEngine* engine_;
  Options options_;
  Stopwatch uptime_;

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;  // owned_metrics_ or Options::metrics
  // Resolved once in the constructor; Add/Record are lock-free-ish.
  obs::Counter* submitted_;
  obs::Counter* served_;
  obs::Counter* cold_start_;
  obs::Counter* batches_;
  obs::Gauge* queue_depth_;
  obs::Gauge* max_queue_depth_gauge_;
  obs::Gauge* max_batch_size_gauge_;
  obs::Histogram* latency_ms_;
  obs::Histogram* batch_size_;

  mutable std::mutex mu_;
  /// Signalled when a drainer retires or the queue empties (Stop waits).
  std::condition_variable drained_cv_;
  std::deque<Pending> queue_;    // GUARDED_BY(mu_)
  int active_drainers_ = 0;      // GUARDED_BY(mu_)
  bool stopping_ = false;        // GUARDED_BY(mu_)
  int64_t max_queue_depth_ = 0;  // GUARDED_BY(mu_)
  int64_t max_batch_size_ = 0;   // GUARDED_BY(mu_)
};

}  // namespace nmcdr

#endif  // NMCDR_SERVING_INFERENCE_SERVER_H_
