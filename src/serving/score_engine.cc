#include "serving/score_engine.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "serving/scoring_kernels.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace nmcdr {
namespace {

/// Mirrors the engine's own relaxed-atomic counters (the `counters()` API,
/// always exact) into the global registry so scoring traffic shows up in
/// --metrics-out dumps. Gated per call; the registry lookups resolve once.
/// Safe from pool workers: statics are init-once, counters are sharded.
void MirrorRequestMetric(bool cold_start) {
  if (!obs::MetricsEnabled()) return;
  static obs::Counter& requests =
      obs::MetricsRegistry::Global().GetCounter("scoring.requests");
  static obs::Counter& cold =
      obs::MetricsRegistry::Global().GetCounter("scoring.cold_start_requests");
  requests.Add(1);
  if (cold_start) cold.Add(1);
}

void MirrorPairsMetric(int64_t n) {
  if (!obs::MetricsEnabled()) return;
  static obs::Counter& pairs =
      obs::MetricsRegistry::Global().GetCounter("scoring.pairs_scored");
  pairs.Add(n);
}

/// (score, item) entry ordered so a priority_queue's top() is the WORST
/// kept candidate (RanksBefore acts as the strict weak "less").
struct HeapWorstOnTop {
  bool operator()(const std::pair<float, int>& a,
                  const std::pair<float, int>& b) const {
    return RanksBefore(a.first, a.second, b.first, b.second);
  }
};

}  // namespace

ScoreEngine::ScoreEngine(const ModelSnapshot* snapshot, Options options)
    : snapshot_(snapshot), options_(options) {
  NMCDR_CHECK(snapshot != nullptr);
  NMCDR_CHECK_GT(snapshot->num_domains(), 0);
  NMCDR_CHECK_GT(options_.item_block, 0);
  const int dim = snapshot->domain(0).frozen.dim();
  for (int d = 0; d < snapshot->num_domains(); ++d) {
    NMCDR_CHECK_EQ(snapshot->domain(d).frozen.dim(), dim);
  }
  if (options_.mode == Mode::kFast) {
    // Item-side first-layer partials (with the bias folded in), computed
    // once per snapshot: at request time only the user partial, the
    // activation, and the tiny tail layers remain per pair.
    for (int d = 0; d < snapshot->num_domains(); ++d) {
      const FrozenDomainState& frozen = snapshot->domain(d).frozen;
      item_first_.push_back(
          scoring::BuildItemFirst(frozen.head, frozen.item_reps));
    }
  }
}

ScoreEngine::ResolvedUser ScoreEngine::Resolve(int target_domain,
                                               int user_domain,
                                               int user) const {
  NMCDR_CHECK_GE(target_domain, 0);
  NMCDR_CHECK_LT(target_domain, snapshot_->num_domains());
  const int resolved = snapshot_->ResolveUser(user_domain, user, target_domain);
  ResolvedUser out;
  if (resolved >= 0) {
    out.row = snapshot_->domain(target_domain).frozen.user_reps.row(resolved);
  } else {
    // Cross-domain cold start: the user has no identity link into the
    // target domain, so rank with the home-domain representation (the
    // matching modules trained both domains into one aligned space).
    out.row = snapshot_->domain(user_domain).frozen.user_reps.row(user);
    out.cold_start = true;
  }
  return out;
}

void ScoreEngine::ScoreIds(int target_domain, const float* u, const int* ids,
                           int n, float* out) const {
  const FrozenDomainState& frozen = snapshot_->domain(target_domain).frozen;
  const FrozenPredictionHead& head = frozen.head;

  if (options_.mode == Mode::kFast) {
    std::vector<float> u_first(head.b0.cols());
    scoring::UserFirstPartial(head, u, u_first.data());
    scoring::FastScoreIds(head, frozen.item_reps, item_first_[target_domain],
                          u, u_first.data(), ids, n, out);
  } else {
    scoring::ExactScoreIds(head, frozen.item_reps, u, ids, n,
                           options_.item_block, out);
  }
  pairs_scored_.fetch_add(n, std::memory_order_relaxed);
  MirrorPairsMetric(n);
}

std::vector<float> ScoreEngine::ScoreCandidates(
    int target_domain, int user_domain, int user,
    const std::vector<int>& candidates, bool* cold_start) const {
  const ResolvedUser resolved = Resolve(target_domain, user_domain, user);
  if (cold_start != nullptr) *cold_start = resolved.cold_start;
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (resolved.cold_start) {
    cold_start_requests_.fetch_add(1, std::memory_order_relaxed);
  }
  MirrorRequestMetric(resolved.cold_start);
  std::vector<float> scores(candidates.size());
  if (!candidates.empty()) {
    ScoreIds(target_domain, resolved.row, candidates.data(),
             static_cast<int>(candidates.size()), scores.data());
  }
  return scores;
}

std::vector<float> ScoreEngine::ScoreCandidates(
    int domain, int user, const std::vector<int>& candidates) const {
  return ScoreCandidates(domain, domain, user, candidates);
}

Recommendation ScoreEngine::TopK(const RecRequest& request) const {
  NMCDR_CHECK_GT(request.k, 0);
  const ResolvedUser resolved =
      Resolve(request.target_domain, request.user_domain, request.user);
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (resolved.cold_start) {
    cold_start_requests_.fetch_add(1, std::memory_order_relaxed);
  }
  MirrorRequestMetric(resolved.cold_start);

  const FrozenDomainState& frozen =
      snapshot_->domain(request.target_domain).frozen;
  const int num_items = frozen.num_items();
  std::vector<uint8_t> excluded(num_items, 0);
  for (int item : request.exclude) {
    NMCDR_CHECK_GE(item, 0);
    NMCDR_CHECK_LT(item, num_items);
    excluded[item] = 1;
  }
  std::vector<int> candidates;
  candidates.reserve(num_items);
  for (int item = 0; item < num_items; ++item) {
    if (!excluded[item]) candidates.push_back(item);
  }

  // Blocked scoring feeding a bounded min-heap: the top of the heap is
  // the worst of the best-k-so-far; a candidate enters only if it ranks
  // before it.
  std::priority_queue<std::pair<float, int>,
                      std::vector<std::pair<float, int>>, HeapWorstOnTop>
      heap;
  std::vector<float> scores(options_.item_block);
  for (size_t begin = 0; begin < candidates.size();
       begin += options_.item_block) {
    const int count = static_cast<int>(std::min<size_t>(
        options_.item_block, candidates.size() - begin));
    ScoreIds(request.target_domain, resolved.row, candidates.data() + begin,
             count, scores.data());
    for (int i = 0; i < count; ++i) {
      const std::pair<float, int> entry(scores[i],
                                        candidates[begin + i]);
      if (static_cast<int>(heap.size()) < request.k) {
        heap.push(entry);
      } else if (RanksBefore(entry.first, entry.second, heap.top().first,
                             heap.top().second)) {
        heap.pop();
        heap.push(entry);
      }
    }
  }

  Recommendation rec;
  rec.cold_start = resolved.cold_start;
  rec.items.resize(heap.size());
  rec.scores.resize(heap.size());
  for (int i = static_cast<int>(heap.size()) - 1; i >= 0; --i) {
    rec.scores[i] = heap.top().first;
    rec.items[i] = heap.top().second;
    heap.pop();
  }
  return rec;
}

std::vector<Recommendation> ScoreEngine::TopKBatch(
    const std::vector<RecRequest>& requests) const {
  // Requests are independent, so the batch fans out across the shared
  // pool (grain 1: one request is already a full-catalog scan). Each
  // result is produced by exactly one chunk, and TopK itself is
  // deterministic, so the output is identical to the serial loop.
  std::vector<Recommendation> out(requests.size());
  ThreadPool::Shared()->ParallelFor(
      0, static_cast<int64_t>(requests.size()), /*grain=*/1,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) out[i] = TopK(requests[i]);
      });
  return out;
}

ScoreEngine::Counters ScoreEngine::counters() const {
  Counters c;
  c.requests = requests_.load(std::memory_order_relaxed);
  c.pairs_scored = pairs_scored_.load(std::memory_order_relaxed);
  c.cold_start_requests = cold_start_requests_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace nmcdr
