#include "serving/score_engine.h"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "serving/scoring_kernels.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace nmcdr {
namespace {

/// Mirrors the engine's own relaxed-atomic counters (the `counters()` API,
/// always exact) into the global registry so scoring traffic shows up in
/// --metrics-out dumps. Gated per call; the registry lookups resolve once.
/// Safe from pool workers: statics are init-once, counters are sharded.
void MirrorRequestMetric(bool cold_start) {
  if (!obs::MetricsEnabled()) return;
  static obs::Counter& requests =
      obs::MetricsRegistry::Global().GetCounter("scoring.requests");
  static obs::Counter& cold =
      obs::MetricsRegistry::Global().GetCounter("scoring.cold_start_requests");
  requests.Add(1);
  if (cold_start) cold.Add(1);
}

void MirrorPairsMetric(int64_t n) {
  if (!obs::MetricsEnabled()) return;
  static obs::Counter& pairs =
      obs::MetricsRegistry::Global().GetCounter("scoring.pairs_scored");
  pairs.Add(n);
}

/// (score, item) entry ordered so a worst-on-top binary heap's front() is
/// the WORST kept candidate (RanksBefore acts as the strict weak "less").
/// Used with std::push_heap / std::pop_heap over ScoreScratch::heap —
/// the exact element set a std::priority_queue with this comparator would
/// keep, without its allocating container.
struct HeapWorstOnTop {
  bool operator()(const std::pair<float, int>& a,
                  const std::pair<float, int>& b) const {
    return RanksBefore(a.first, a.second, b.first, b.second);
  }
};

}  // namespace

void ScoreScratch::Prepare(int num_items, int item_block, int head_width,
                           int dim) {
  // Growth-only: capacities converge to the engine's geometry and every
  // later call is a no-op, which is what lets the hot core run
  // allocation-free at steady state. `excluded` grows zero-filled, and
  // the core restores the zeros it sets, so the all-zero invariant holds.
  if (static_cast<int>(excluded.size()) < num_items) {
    excluded.resize(num_items, 0);
  }
  if (static_cast<int>(scores.size()) < item_block) scores.resize(item_block);
  if (static_cast<int>(u_first.size()) < head_width) {
    u_first.resize(head_width);
    h.resize(head_width);
    next.resize(head_width);
  }
  if (static_cast<int>(uw.size()) < dim) {
    uw.resize(dim);
    qu.resize(dim);
  }
}

void BatchScoreScratch::Prepare(size_t n) {
  if (per_request.size() < n) per_request.resize(n);
}

ScoreEngine::ScoreEngine(const ModelSnapshot* snapshot, Options options)
    : snapshot_(snapshot), options_(options) {
  NMCDR_CHECK(snapshot != nullptr);
  NMCDR_CHECK_GT(snapshot->num_domains(), 0);
  NMCDR_CHECK_GT(options_.item_block, 0);
  const int dim = snapshot->domain(0).frozen.dim();
  for (int d = 0; d < snapshot->num_domains(); ++d) {
    NMCDR_CHECK_EQ(snapshot->domain(d).frozen.dim(), dim);
  }
  if (options_.mode == Mode::kFast) {
    // Item-side first-layer partials (with the bias folded in), computed
    // once per snapshot: at request time only the user partial, the
    // activation, and the tiny tail layers remain per pair.
    item_first_.reserve(snapshot->num_domains());
    for (int d = 0; d < snapshot->num_domains(); ++d) {
      const FrozenDomainState& frozen = snapshot->domain(d).frozen;
      item_first_.push_back(
          scoring::BuildItemFirst(frozen.head, frozen.item_reps));
    }
  } else if (options_.mode == Mode::kQuantized) {
    // Quantize-at-freeze: the float item tables exist only transiently
    // inside Quantize — the engine retains 1-byte codes plus per-row
    // (scale, zero, qsum).
    quant_ = QuantizedSnapshot::Quantize(*snapshot);
  }
}

ScoreEngine::ScoreEngine(const ModelSnapshot* snapshot, Options options,
                         QuantizedSnapshot quantized)
    : snapshot_(snapshot), options_(options) {
  NMCDR_CHECK(snapshot != nullptr);
  NMCDR_CHECK_GT(snapshot->num_domains(), 0);
  NMCDR_CHECK_GT(options_.item_block, 0);
  NMCDR_CHECK(options_.mode == Mode::kQuantized);
  std::string why;
  if (!quantized.Matches(*snapshot, &why)) {
    LOG_ERROR << "ScoreEngine: quantized tables do not fit the snapshot: "
              << why;
    NMCDR_CHECK(quantized.Matches(*snapshot, &why));
  }
  quant_ = std::move(quantized);
}

void ScoreEngine::ValidateRequest(const RecRequest& request) const {
  NMCDR_CHECK_GE(request.target_domain, 0);
  NMCDR_CHECK_LT(request.target_domain, snapshot_->num_domains());
  NMCDR_CHECK_GE(request.user_domain, 0);
  NMCDR_CHECK_LT(request.user_domain, snapshot_->num_domains());
  NMCDR_CHECK_GE(request.user, 0);
  NMCDR_CHECK_LT(request.user,
                 snapshot_->domain(request.user_domain).num_users());
  NMCDR_CHECK_GT(request.k, 0);
  const int num_items =
      snapshot_->domain(request.target_domain).frozen.num_items();
  for (int item : request.exclude) {
    NMCDR_CHECK_GE(item, 0);
    NMCDR_CHECK_LT(item, num_items);
  }
}

ScoreEngine::ResolvedUser ScoreEngine::Resolve(int target_domain,
                                               int user_domain,
                                               int user) const {
  NMCDR_DCHECK_GE(target_domain, 0);
  NMCDR_DCHECK_LT(target_domain, snapshot_->num_domains());
  const int resolved = snapshot_->ResolveUser(user_domain, user, target_domain);
  ResolvedUser out;
  if (resolved >= 0) {
    out.row = snapshot_->domain(target_domain).frozen.user_reps.row(resolved);
  } else {
    // Cross-domain cold start: the user has no identity link into the
    // target domain, so rank with the home-domain representation (the
    // matching modules trained both domains into one aligned space).
    out.row = snapshot_->domain(user_domain).frozen.user_reps.row(user);
    out.cold_start = true;
  }
  return out;
}

void ScoreEngine::ScoreIds(int target_domain, const float* u, const int* ids,
                           int n, ScoreScratch* scratch, float* out) const {
  const FrozenDomainState& frozen = snapshot_->domain(target_domain).frozen;
  const FrozenPredictionHead& head = frozen.head;

  if (options_.mode == Mode::kFast) {
    scoring::UserFirstPartial(head, u, scratch->u_first.data());
    scoring::FastScoreIds(head, frozen.item_reps, item_first_[target_domain],
                          u, scratch->u_first.data(), ids, n,
                          scratch->h.data(), scratch->next.data(), out);
  } else if (options_.mode == Mode::kQuantized) {
    scoring::UserFirstPartial(head, u, scratch->u_first.data());
    const scoring::QuantizedUser user = scoring::QuantizeUserGmf(
        head, u, scratch->uw.data(), scratch->qu.data());
    const QuantizedDomain& qd = quant_.domain(target_domain);
    scoring::QuantizedScoreIds(head, qd.item_first, qd.item_gmf,
                               scratch->u_first.data(), user, ids, n,
                               scratch->h.data(), scratch->next.data(), out);
  } else {
    scoring::ExactScoreIds(head, frozen.item_reps, u, ids, n,
                           options_.item_block, out);
  }
  pairs_scored_.fetch_add(n, std::memory_order_relaxed);
  MirrorPairsMetric(n);
}

std::vector<float> ScoreEngine::ScoreCandidates(
    int target_domain, int user_domain, int user,
    const std::vector<int>& candidates, bool* cold_start) const {
  NMCDR_CHECK_GE(target_domain, 0);
  NMCDR_CHECK_LT(target_domain, snapshot_->num_domains());
  NMCDR_CHECK_GE(user_domain, 0);
  NMCDR_CHECK_LT(user_domain, snapshot_->num_domains());
  NMCDR_CHECK_GE(user, 0);
  NMCDR_CHECK_LT(user, snapshot_->domain(user_domain).num_users());
  const ResolvedUser resolved = Resolve(target_domain, user_domain, user);
  if (cold_start != nullptr) *cold_start = resolved.cold_start;
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (resolved.cold_start) {
    cold_start_requests_.fetch_add(1, std::memory_order_relaxed);
  }
  MirrorRequestMetric(resolved.cold_start);
  const FrozenPredictionHead& head =
      snapshot_->domain(target_domain).frozen.head;
  ScoreScratch scratch;
  scratch.Prepare(/*num_items=*/0, options_.item_block,
                  scoring::MaxHeadWidth(head), head.dim());
  std::vector<float> scores(candidates.size());
  if (!candidates.empty()) {
    ScoreIds(target_domain, resolved.row, candidates.data(),
             static_cast<int>(candidates.size()), &scratch, scores.data());
  }
  return scores;
}

std::vector<float> ScoreEngine::ScoreCandidates(
    int domain, int user, const std::vector<int>& candidates) const {
  return ScoreCandidates(domain, domain, user, candidates);
}

Recommendation ScoreEngine::TopK(const RecRequest& request) const {
  ValidateRequest(request);
  ScoreScratch scratch;
  return TopKWithScratch(request, &scratch);
}

Recommendation ScoreEngine::TopKWithScratch(const RecRequest& request,
                                            ScoreScratch* scratch) const {
  NMCDR_DCHECK_GT(request.k, 0);
  const ResolvedUser resolved =
      Resolve(request.target_domain, request.user_domain, request.user);
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (resolved.cold_start) {
    cold_start_requests_.fetch_add(1, std::memory_order_relaxed);
  }
  MirrorRequestMetric(resolved.cold_start);

  const FrozenDomainState& frozen =
      snapshot_->domain(request.target_domain).frozen;
  const int num_items = frozen.num_items();
  scratch->Prepare(num_items, options_.item_block,
                   scoring::MaxHeadWidth(frozen.head), frozen.head.dim());

  // Sparse exclusion bitmap: `excluded` is all-zero between calls, so
  // marking costs O(|exclude|) and the restore loop below undoes exactly
  // these writes.
  std::vector<uint8_t>& excluded = scratch->excluded;
  for (int item : request.exclude) {
    NMCDR_DCHECK_GE(item, 0);
    NMCDR_DCHECK_LT(item, num_items);
    excluded[item] = 1;
  }
  std::vector<int>& candidates = scratch->candidates;
  candidates.clear();
  candidates.reserve(num_items);
  for (int item = 0; item < num_items; ++item) {
    if (!excluded[item]) candidates.push_back(item);
  }

  // Blocked scoring feeding a bounded worst-on-top heap over
  // scratch->heap: front() is the worst of the best-k-so-far; a candidate
  // enters only if it ranks before it. Exact element set a
  // std::priority_queue<HeapWorstOnTop> would keep.
  std::vector<std::pair<float, int>>& heap = scratch->heap;
  heap.clear();
  heap.reserve(request.k);
  float* scores = scratch->scores.data();
  for (size_t begin = 0; begin < candidates.size();
       begin += options_.item_block) {
    const int count = static_cast<int>(std::min<size_t>(
        options_.item_block, candidates.size() - begin));
    ScoreIds(request.target_domain, resolved.row, candidates.data() + begin,
             count, scratch, scores);
    for (int i = 0; i < count; ++i) {
      const std::pair<float, int> entry(scores[i],
                                        candidates[begin + i]);
      if (static_cast<int>(heap.size()) < request.k) {
        heap.push_back(entry);
        std::push_heap(heap.begin(), heap.end(), HeapWorstOnTop());
      } else if (RanksBefore(entry.first, entry.second, heap.front().first,
                             heap.front().second)) {
        std::pop_heap(heap.begin(), heap.end(), HeapWorstOnTop());
        heap.back() = entry;
        std::push_heap(heap.begin(), heap.end(), HeapWorstOnTop());
      }
    }
  }

  // Restore the all-zero bitmap invariant (only the bits set above).
  for (int item : request.exclude) excluded[item] = 0;

  // RanksBefore is a total order, so sorting the kept set best-first
  // yields exactly the sequence the old heap-drain extraction produced.
  std::sort(heap.begin(), heap.end(),
            [](const std::pair<float, int>& a, const std::pair<float, int>& b) {
              return RanksBefore(a.first, a.second, b.first, b.second);
            });

  Recommendation rec;
  rec.cold_start = resolved.cold_start;
  rec.items.reserve(heap.size());
  rec.scores.reserve(heap.size());
  for (const std::pair<float, int>& entry : heap) {
    rec.scores.push_back(entry.first);
    rec.items.push_back(entry.second);
  }
  return rec;
}

std::vector<Recommendation> ScoreEngine::TopKBatch(
    const std::vector<RecRequest>& requests) const {
  for (const RecRequest& request : requests) ValidateRequest(request);
  BatchScoreScratch scratch;
  return TopKBatchWithScratch(requests, &scratch);
}

std::vector<Recommendation> ScoreEngine::TopKBatchWithScratch(
    const std::vector<RecRequest>& requests,
    BatchScoreScratch* scratch) const {
  // Requests are independent, so the batch fans out across the shared
  // pool (grain 1: one request is already a full-catalog scan). Request i
  // always uses scratch slot i, so concurrent chunks touch disjoint
  // buffers and the output is identical to the serial loop.
  scratch->Prepare(requests.size());
  // NMCDR_LINT_ALLOW(hot-alloc): output materialization, one per batch.
  std::vector<Recommendation> out(requests.size());
  ThreadPool::Shared()->ParallelFor(
      0, static_cast<int64_t>(requests.size()), /*grain=*/1,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          out[i] = TopKWithScratch(requests[i], &scratch->per_request[i]);
        }
      });
  return out;
}

ScoreEngine::Counters ScoreEngine::counters() const {
  Counters c;
  c.requests = requests_.load(std::memory_order_relaxed);
  c.pairs_scored = pairs_scored_.load(std::memory_order_relaxed);
  c.cold_start_requests = cold_start_requests_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace nmcdr
