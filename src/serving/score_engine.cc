#include "serving/score_engine.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <utility>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "tensor/matrix_ops.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace nmcdr {
namespace {

/// Mirrors the engine's own relaxed-atomic counters (the `counters()` API,
/// always exact) into the global registry so scoring traffic shows up in
/// --metrics-out dumps. Gated per call; the registry lookups resolve once.
/// Safe from pool workers: statics are init-once, counters are sharded.
void MirrorRequestMetric(bool cold_start) {
  if (!obs::MetricsEnabled()) return;
  static obs::Counter& requests =
      obs::MetricsRegistry::Global().GetCounter("scoring.requests");
  static obs::Counter& cold =
      obs::MetricsRegistry::Global().GetCounter("scoring.cold_start_requests");
  requests.Add(1);
  if (cold_start) cold.Add(1);
}

void MirrorPairsMetric(int64_t n) {
  if (!obs::MetricsEnabled()) return;
  static obs::Counter& pairs =
      obs::MetricsRegistry::Global().GetCounter("scoring.pairs_scored");
  pairs.Add(n);
}

/// Activates h[0..n) in place; the dispatch happens once per call, not per
/// element (the fast scoring loop is dominated by such per-scalar costs).
void ActivateInPlace(float* h, int n, ag::Activation act) {
  switch (act) {
    case ag::Activation::kNone:
      return;
    case ag::Activation::kRelu:
      for (int j = 0; j < n; ++j) h[j] = h[j] > 0.f ? h[j] : 0.f;
      return;
    case ag::Activation::kSigmoid:
      for (int j = 0; j < n; ++j) h[j] = 1.f / (1.f + std::exp(-h[j]));
      return;
    case ag::Activation::kTanh:
      for (int j = 0; j < n; ++j) h[j] = std::tanh(h[j]);
      return;
  }
}

/// (score, item) entry ordered so a priority_queue's top() is the WORST
/// kept candidate (RanksBefore acts as the strict weak "less").
struct HeapWorstOnTop {
  bool operator()(const std::pair<float, int>& a,
                  const std::pair<float, int>& b) const {
    return RanksBefore(a.first, a.second, b.first, b.second);
  }
};

}  // namespace

ScoreEngine::ScoreEngine(const ModelSnapshot* snapshot, Options options)
    : snapshot_(snapshot), options_(options) {
  NMCDR_CHECK(snapshot != nullptr);
  NMCDR_CHECK_GT(snapshot->num_domains(), 0);
  NMCDR_CHECK_GT(options_.item_block, 0);
  const int dim = snapshot->domain(0).frozen.dim();
  for (int d = 0; d < snapshot->num_domains(); ++d) {
    NMCDR_CHECK_EQ(snapshot->domain(d).frozen.dim(), dim);
  }
  if (options_.mode == Mode::kFast) {
    // Item-side first-layer partials (with the bias folded in), computed
    // once per snapshot: at request time only the user partial, the
    // activation, and the tiny tail layers remain per pair.
    for (int d = 0; d < snapshot->num_domains(); ++d) {
      const FrozenDomainState& frozen = snapshot->domain(d).frozen;
      item_first_.push_back(AddRowBroadcast(
          MatMul(frozen.item_reps, frozen.head.w0_item), frozen.head.b0));
    }
  }
}

ScoreEngine::ResolvedUser ScoreEngine::Resolve(int target_domain,
                                               int user_domain,
                                               int user) const {
  NMCDR_CHECK_GE(target_domain, 0);
  NMCDR_CHECK_LT(target_domain, snapshot_->num_domains());
  const int resolved = snapshot_->ResolveUser(user_domain, user, target_domain);
  ResolvedUser out;
  if (resolved >= 0) {
    out.row = snapshot_->domain(target_domain).frozen.user_reps.row(resolved);
  } else {
    // Cross-domain cold start: the user has no identity link into the
    // target domain, so rank with the home-domain representation (the
    // matching modules trained both domains into one aligned space).
    out.row = snapshot_->domain(user_domain).frozen.user_reps.row(user);
    out.cold_start = true;
  }
  return out;
}

void ScoreEngine::ScoreIds(int target_domain, const float* u, const int* ids,
                           int n, float* out) const {
  const FrozenDomainState& frozen = snapshot_->domain(target_domain).frozen;
  const FrozenPredictionHead& head = frozen.head;
  const int dim = frozen.dim();
  const int hidden = head.b0.cols();

  if (options_.mode == Mode::kFast) {
    // User-side first-layer partial without Matrix temporaries.
    std::vector<float> u_first(hidden, 0.f);
    for (int k = 0; k < dim; ++k) {
      const float uk = u[k];
      if (uk == 0.f) continue;
      const float* wrow = head.w0_user.row(k);
      for (int j = 0; j < hidden; ++j) u_first[j] += uk * wrow[j];
    }
    FastScoreIds(target_domain, u, u_first.data(), ids, n, out);
    pairs_scored_.fetch_add(n, std::memory_order_relaxed);
    MirrorPairsMetric(n);
    return;
  }

  // User-side first-layer partial, shared by every candidate row.
  Matrix u_row(1, dim);
  std::copy(u, u + dim, u_row.data());
  const Matrix u_first = MatMul(u_row, head.w0_user);

  std::vector<int> block_ids;
  for (int begin = 0; begin < n; begin += options_.item_block) {
    const int count = std::min(options_.item_block, n - begin);
    block_ids.assign(ids + begin, ids + begin + count);
    const Matrix item_rows = GatherRows(frozen.item_reps, block_ids);

    // First MLP layer over the block: every row starts from the user
    // partial; the item half is then accumulated on top via the same
    // in-order GEMM as the trainer, keeping kExact bit-equal.
    Matrix h0(count, hidden);
    for (int i = 0; i < count; ++i) {
      std::copy(u_first.data(), u_first.data() + hidden, h0.row(i));
    }
    MatMulAccumInto(item_rows, head.w0_item, &h0);

    // Weighted product term, bit-equal to the trainer's Hadamard + GEMM:
    // same products, same fused-add order.
    Matrix gmf_dot(count, 1);
    for (int i = 0; i < count; ++i) {
      const float* v = item_rows.row(i);
      float acc = 0.f;
      for (int j = 0; j < dim; ++j) {
        acc += (u[j] * v[j]) * head.gmf_w.At(j, 0);
      }
      gmf_dot.At(i, 0) = acc;
    }

    const Matrix logits = head.ForwardFromHidden(std::move(h0), gmf_dot);
    for (int i = 0; i < count; ++i) out[begin + i] = logits.At(i, 0);
  }
  pairs_scored_.fetch_add(n, std::memory_order_relaxed);
  MirrorPairsMetric(n);
}

void ScoreEngine::FastScoreIds(int target_domain, const float* u,
                               const float* u_first, const int* ids, int n,
                               float* out) const {
  // Fused serving path: no Matrix temporaries, one scratch pair reused
  // across candidates. Per pair only the first-layer add (precomputed
  // item partials), the activation, and the tiny tail layers remain, so
  // the cost is dominated by ~3 * hidden flops instead of the trainer's
  // full 2 * dim * hidden first-layer GEMM plus tape bookkeeping. Scores
  // differ from kExact only by first-layer summation rounding.
  const FrozenDomainState& frozen = snapshot_->domain(target_domain).frozen;
  const FrozenPredictionHead& head = frozen.head;
  const Matrix& partials = item_first_[target_domain];
  const int dim = frozen.dim();
  const int hidden = head.b0.cols();
  const float* gmf_w = head.gmf_w.data();  // [dim, 1], contiguous
  const float gmf_bias = head.gmf_b.data()[0];

  int max_width = hidden;
  for (const Matrix& w : head.w) max_width = std::max(max_width, w.cols());
  std::vector<float> h(max_width), next(max_width);

  for (int i = 0; i < n; ++i) {
    const int item = ids[i];
    const float* p = partials.row(item);  // item partial + b0
    const float* v = frozen.item_reps.row(item);
    for (int j = 0; j < hidden; ++j) h[j] = u_first[j] + p[j];
    int width = hidden;
    for (size_t l = 0; l < head.w.size(); ++l) {
      const Matrix& w = head.w[l];
      const int out_width = w.cols();
      const float* bias = head.b[l].data();
      std::copy(bias, bias + out_width, next.data());
      ActivateInPlace(h.data(), width, head.hidden_act);
      const float* wdata = w.data();
      if (out_width == 1) {
        // Four independent accumulators break the serial float-add
        // dependency chain (the compiler cannot reassociate it itself).
        float a0 = 0.f, a1 = 0.f, a2 = 0.f, a3 = 0.f;
        int r = 0;
        for (; r + 4 <= width; r += 4) {
          a0 += h[r] * wdata[r];
          a1 += h[r + 1] * wdata[r + 1];
          a2 += h[r + 2] * wdata[r + 2];
          a3 += h[r + 3] * wdata[r + 3];
        }
        for (; r < width; ++r) a0 += h[r] * wdata[r];
        next[0] += (a0 + a1) + (a2 + a3);
      } else {
        for (int r = 0; r < width; ++r) {
          const float hr = h[r];
          const float* wrow = wdata + static_cast<size_t>(r) * out_width;
          for (int c = 0; c < out_width; ++c) next[c] += hr * wrow[c];
        }
      }
      h.swap(next);
      width = out_width;
    }
    float g0 = 0.f, g1 = 0.f;
    int j = 0;
    for (; j + 2 <= dim; j += 2) {
      g0 += (u[j] * v[j]) * gmf_w[j];
      g1 += (u[j + 1] * v[j + 1]) * gmf_w[j + 1];
    }
    for (; j < dim; ++j) g0 += (u[j] * v[j]) * gmf_w[j];
    out[i] = h[0] + (gmf_bias + g0 + g1);
  }
}

std::vector<float> ScoreEngine::ScoreCandidates(
    int target_domain, int user_domain, int user,
    const std::vector<int>& candidates, bool* cold_start) const {
  const ResolvedUser resolved = Resolve(target_domain, user_domain, user);
  if (cold_start != nullptr) *cold_start = resolved.cold_start;
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (resolved.cold_start) {
    cold_start_requests_.fetch_add(1, std::memory_order_relaxed);
  }
  MirrorRequestMetric(resolved.cold_start);
  std::vector<float> scores(candidates.size());
  if (!candidates.empty()) {
    ScoreIds(target_domain, resolved.row, candidates.data(),
             static_cast<int>(candidates.size()), scores.data());
  }
  return scores;
}

std::vector<float> ScoreEngine::ScoreCandidates(
    int domain, int user, const std::vector<int>& candidates) const {
  return ScoreCandidates(domain, domain, user, candidates);
}

Recommendation ScoreEngine::TopK(const RecRequest& request) const {
  NMCDR_CHECK_GT(request.k, 0);
  const ResolvedUser resolved =
      Resolve(request.target_domain, request.user_domain, request.user);
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (resolved.cold_start) {
    cold_start_requests_.fetch_add(1, std::memory_order_relaxed);
  }
  MirrorRequestMetric(resolved.cold_start);

  const FrozenDomainState& frozen =
      snapshot_->domain(request.target_domain).frozen;
  const int num_items = frozen.num_items();
  std::vector<uint8_t> excluded(num_items, 0);
  for (int item : request.exclude) {
    NMCDR_CHECK_GE(item, 0);
    NMCDR_CHECK_LT(item, num_items);
    excluded[item] = 1;
  }
  std::vector<int> candidates;
  candidates.reserve(num_items);
  for (int item = 0; item < num_items; ++item) {
    if (!excluded[item]) candidates.push_back(item);
  }

  // Blocked scoring feeding a bounded min-heap: the top of the heap is
  // the worst of the best-k-so-far; a candidate enters only if it ranks
  // before it.
  std::priority_queue<std::pair<float, int>,
                      std::vector<std::pair<float, int>>, HeapWorstOnTop>
      heap;
  std::vector<float> scores(options_.item_block);
  for (size_t begin = 0; begin < candidates.size();
       begin += options_.item_block) {
    const int count = static_cast<int>(std::min<size_t>(
        options_.item_block, candidates.size() - begin));
    ScoreIds(request.target_domain, resolved.row, candidates.data() + begin,
             count, scores.data());
    for (int i = 0; i < count; ++i) {
      const std::pair<float, int> entry(scores[i],
                                        candidates[begin + i]);
      if (static_cast<int>(heap.size()) < request.k) {
        heap.push(entry);
      } else if (RanksBefore(entry.first, entry.second, heap.top().first,
                             heap.top().second)) {
        heap.pop();
        heap.push(entry);
      }
    }
  }

  Recommendation rec;
  rec.cold_start = resolved.cold_start;
  rec.items.resize(heap.size());
  rec.scores.resize(heap.size());
  for (int i = static_cast<int>(heap.size()) - 1; i >= 0; --i) {
    rec.scores[i] = heap.top().first;
    rec.items[i] = heap.top().second;
    heap.pop();
  }
  return rec;
}

std::vector<Recommendation> ScoreEngine::TopKBatch(
    const std::vector<RecRequest>& requests) const {
  // Requests are independent, so the batch fans out across the shared
  // pool (grain 1: one request is already a full-catalog scan). Each
  // result is produced by exactly one chunk, and TopK itself is
  // deterministic, so the output is identical to the serial loop.
  std::vector<Recommendation> out(requests.size());
  ThreadPool::Shared()->ParallelFor(
      0, static_cast<int64_t>(requests.size()), /*grain=*/1,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) out[i] = TopK(requests[i]);
      });
  return out;
}

ScoreEngine::Counters ScoreEngine::counters() const {
  Counters c;
  c.requests = requests_.load(std::memory_order_relaxed);
  c.pairs_scored = pairs_scored_.load(std::memory_order_relaxed);
  c.cold_start_requests = cold_start_requests_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace nmcdr
