#include "serving/quantized_snapshot.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>

#include "autograd/serialization.h"
#include "serving/scoring_kernels.h"
#include "util/check.h"
#include "util/logging.h"

namespace nmcdr {
namespace {

constexpr char kMagic[8] = {'N', 'M', 'C', 'D', 'R', 'Q', 'S', '1'};

/// Zero points stay far inside int32 so every correction term of the
/// integer dot (n * z_u * z_v with n ≤ 64k, |z| ≤ kMaxZero) fits int64
/// without overflow. Reached only by pathological rows (tiny spread very
/// far from zero); clamping costs a little extra quantization error
/// there, never correctness.
constexpr long kMaxZero = 1L << 20;

/// The shared per-span quantizer: full [-128, 127] code range over
/// [min, max] when the span has spread, symmetric scale for constant
/// spans. Deterministic and span-independent — the contract the
/// bit-identical sharding argument rests on.
void QuantizeSpan(const float* v, int n, int8_t* q, float* scale,
                  int32_t* zero, int32_t* qsum) {
  if (n <= 0) {
    *scale = 1.f;
    *zero = 0;
    *qsum = 0;
    return;
  }
  float mn = v[0], mx = v[0];
  for (int j = 1; j < n; ++j) {
    mn = std::min(mn, v[j]);
    mx = std::max(mx, v[j]);
  }
  double s;
  long z;
  if (mx > mn) {
    s = (static_cast<double>(mx) - static_cast<double>(mn)) / 255.0;
    z = std::lround(-128.0 - static_cast<double>(mn) / s);
    z = std::clamp(z, -kMaxZero, kMaxZero);
  } else {
    // Constant span (including all-zero): representable exactly up to
    // one rounding with a symmetric scale and no offset.
    const double a = std::fabs(static_cast<double>(mn));
    s = a > 0.0 ? a / 127.0 : 1.0;
    z = 0;
  }
  // Keep the stored float scale strictly positive (Load rejects
  // non-positive scales; a denormal-range spread could otherwise flush).
  s = std::max(s, 1e-30);
  int32_t sum = 0;
  for (int j = 0; j < n; ++j) {
    const long code = std::clamp(
        std::lround(static_cast<double>(v[j]) / s) + z, -128L, 127L);
    q[j] = static_cast<int8_t>(code);
    sum += static_cast<int32_t>(code);
  }
  *scale = static_cast<float>(s);
  *zero = static_cast<int32_t>(z);
  *qsum = sum;
}

void WriteRows(std::ostream& out, const QuantizedRows& rows) {
  ag::WriteU32(out, static_cast<uint32_t>(rows.rows));
  ag::WriteU32(out, static_cast<uint32_t>(rows.cols));
  out.write(reinterpret_cast<const char*>(rows.q.data()),
            static_cast<std::streamsize>(rows.q.size()));
  out.write(reinterpret_cast<const char*>(rows.scale.data()),
            static_cast<std::streamsize>(rows.scale.size() * sizeof(float)));
  out.write(reinterpret_cast<const char*>(rows.zero.data()),
            static_cast<std::streamsize>(rows.zero.size() * sizeof(int32_t)));
  out.write(reinterpret_cast<const char*>(rows.qsum.data()),
            static_cast<std::streamsize>(rows.qsum.size() * sizeof(int32_t)));
}

bool ReadExact(std::istream& in, void* p, size_t n) {
  in.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
  return static_cast<bool>(in);
}

/// Reads and FULLY validates one quantized table: sane shape, finite
/// positive scales, bounded zero points, and code sums that match the
/// codes (an integrity check that catches payload corruption the shape
/// fields cannot).
bool ReadRows(std::istream& in, QuantizedRows* rows, std::string* why) {
  uint32_t r = 0, c = 0;
  if (!ag::ReadU32(in, &r) || !ag::ReadU32(in, &c)) {
    *why = "truncated table header";
    return false;
  }
  if (r > (1u << 27) || c == 0 || c > (1u << 16) ||
      static_cast<uint64_t>(r) * c > (1ull << 30)) {
    *why = "implausible table shape";
    return false;
  }
  rows->rows = static_cast<int>(r);
  rows->cols = static_cast<int>(c);
  rows->q.resize(static_cast<size_t>(r) * c);
  rows->scale.resize(r);
  rows->zero.resize(r);
  rows->qsum.resize(r);
  if (!ReadExact(in, rows->q.data(), rows->q.size()) ||
      !ReadExact(in, rows->scale.data(), r * sizeof(float)) ||
      !ReadExact(in, rows->zero.data(), r * sizeof(int32_t)) ||
      !ReadExact(in, rows->qsum.data(), r * sizeof(int32_t))) {
    *why = "truncated table payload";
    return false;
  }
  for (uint32_t i = 0; i < r; ++i) {
    if (!std::isfinite(rows->scale[i]) || !(rows->scale[i] > 0.f)) {
      *why = "corrupt quantization scale (non-finite or non-positive)";
      return false;
    }
    if (rows->zero[i] > kMaxZero || rows->zero[i] < -kMaxZero) {
      *why = "corrupt zero point (out of range)";
      return false;
    }
    int32_t sum = 0;
    const int8_t* row = rows->row(static_cast<int>(i));
    for (uint32_t j = 0; j < c; ++j) sum += row[j];
    if (sum != rows->qsum[i]) {
      *why = "code sum does not match codes (corrupt payload)";
      return false;
    }
  }
  return true;
}

bool RowsEqual(const QuantizedRows& a, const QuantizedRows& b) {
  return a.rows == b.rows && a.cols == b.cols && a.q == b.q &&
         a.zero == b.zero && a.qsum == b.qsum &&
         std::memcmp(a.scale.data(), b.scale.data(),
                     a.scale.size() * sizeof(float)) == 0;
}

}  // namespace

bool QuantizedRows::Equals(const QuantizedRows& other) const {
  return RowsEqual(*this, other);
}

QuantizedRows QuantizeRows(const Matrix& m) {
  QuantizedRows out;
  out.rows = m.rows();
  out.cols = m.cols();
  out.q.resize(static_cast<size_t>(out.rows) * out.cols);
  out.scale.resize(out.rows);
  out.zero.resize(out.rows);
  out.qsum.resize(out.rows);
  for (int r = 0; r < out.rows; ++r) {
    QuantizeSpan(m.row(r), out.cols,
                 out.q.data() + static_cast<size_t>(r) * out.cols,
                 &out.scale[r], &out.zero[r], &out.qsum[r]);
  }
  return out;
}

void QuantizeVectorInto(const float* v, int n, int8_t* q, float* scale,
                        int32_t* zero, int32_t* qsum) {
  QuantizeSpan(v, n, q, scale, zero, qsum);
}

QuantizedSnapshot QuantizedSnapshot::Quantize(const ModelSnapshot& snapshot) {
  QuantizedSnapshot out;
  out.domains_.resize(snapshot.num_domains());
  for (int d = 0; d < snapshot.num_domains(); ++d) {
    const FrozenDomainState& frozen = snapshot.domain(d).frozen;
    out.domains_[d].item_first =
        QuantizeRows(scoring::BuildItemFirst(frozen.head, frozen.item_reps));
    out.domains_[d].item_gmf = QuantizeRows(frozen.item_reps);
  }
  return out;
}

bool QuantizedSnapshot::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    LOG_ERROR << "QuantizedSnapshot::Save: cannot open " << path;
    return false;
  }
  out.write(kMagic, sizeof(kMagic));
  ag::WriteU32(out, static_cast<uint32_t>(domains_.size()));
  for (const QuantizedDomain& dom : domains_) {
    WriteRows(out, dom.item_first);
    WriteRows(out, dom.item_gmf);
  }
  out.flush();
  if (!out) {
    LOG_ERROR << "QuantizedSnapshot::Save: write failed for " << path;
    return false;
  }
  return true;
}

bool QuantizedSnapshot::Load(const std::string& path,
                             QuantizedSnapshot* snapshot, std::string* error) {
  const auto fail = [&](const std::string& reason) {
    LOG_ERROR << "QuantizedSnapshot::Load: " << reason << " in " << path;
    if (error != nullptr) *error = reason;
    return false;
  };
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail("cannot open file");
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return fail("bad magic (not an NMCDRQS1 quantized snapshot)");
  }
  uint32_t num_domains = 0;
  if (!ag::ReadU32(in, &num_domains) || num_domains == 0 ||
      num_domains > 256) {
    return fail("bad header");
  }
  QuantizedSnapshot staged;
  staged.domains_.resize(num_domains);
  std::string why;
  for (uint32_t d = 0; d < num_domains; ++d) {
    if (!ReadRows(in, &staged.domains_[d].item_first, &why)) {
      return fail("domain " + std::to_string(d) + " item_first: " + why);
    }
    if (!ReadRows(in, &staged.domains_[d].item_gmf, &why)) {
      return fail("domain " + std::to_string(d) + " item_gmf: " + why);
    }
    if (staged.domains_[d].item_first.rows !=
        staged.domains_[d].item_gmf.rows) {
      return fail("domain " + std::to_string(d) +
                  ": item_first/item_gmf row counts disagree");
    }
  }
  in.peek();
  if (!in.eof()) return fail("trailing bytes after last table");
  *snapshot = std::move(staged);
  return true;
}

bool QuantizedSnapshot::Equals(const QuantizedSnapshot& other) const {
  if (domains_.size() != other.domains_.size()) return false;
  for (size_t d = 0; d < domains_.size(); ++d) {
    if (!RowsEqual(domains_[d].item_first, other.domains_[d].item_first) ||
        !RowsEqual(domains_[d].item_gmf, other.domains_[d].item_gmf)) {
      return false;
    }
  }
  return true;
}

bool QuantizedSnapshot::Matches(const ModelSnapshot& snapshot,
                                std::string* error) const {
  const auto fail = [&](const std::string& reason) {
    if (error != nullptr) *error = reason;
    return false;
  };
  if (num_domains() != snapshot.num_domains()) {
    return fail("domain count mismatch");
  }
  for (int d = 0; d < num_domains(); ++d) {
    const FrozenDomainState& frozen = snapshot.domain(d).frozen;
    const QuantizedDomain& qd = domains_[d];
    if (qd.item_first.rows != frozen.num_items() ||
        qd.item_gmf.rows != frozen.num_items()) {
      return fail("domain " + std::to_string(d) + ": item count mismatch");
    }
    if (qd.item_first.cols != frozen.head.b0.cols()) {
      return fail("domain " + std::to_string(d) +
                  ": first-layer width mismatch");
    }
    if (qd.item_gmf.cols != frozen.dim()) {
      return fail("domain " + std::to_string(d) + ": dim mismatch");
    }
  }
  return true;
}

}  // namespace nmcdr
