#ifndef NMCDR_SERVING_AB_TEST_H_
#define NMCDR_SERVING_AB_TEST_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/synthetic.h"

namespace nmcdr {

/// Multi-domain online-serving world standing in for the MYbank platform
/// of §III.C (Table VII): several financial domains ("Loan", "Fund",
/// "Account") over a shared person population with partially overlapped
/// membership, plus ground-truth conversion probabilities derived from the
/// generating latents.
class ServingWorld {
 public:
  struct DomainSpec {
    SyntheticDomainSpec data;
    /// Conversion-rate calibration: the logistic bias is solved so that a
    /// random-ranking policy converts at roughly this rate (Table VIII's
    /// Control row: ~10.5% Loan, ~6.1% Fund, ~1.9% Account).
    double target_base_cvr = 0.05;
  };

  /// `membership[d][p]` — handled internally: each person joins domain d
  /// with probability `membership_prob[d]`, always joining at least one.
  ServingWorld(const std::vector<DomainSpec>& specs, int num_persons,
               const std::vector<double>& membership_prob, int latent_dim,
               double preference_sharpness, uint64_t seed);

  int num_domains() const { return static_cast<int>(domains_.size()); }
  const DomainData& domain(int d) const { return domains_[d]; }
  const std::string& domain_name(int d) const { return domains_[d].name; }

  /// Users of domain d (dense local ids); person of a local user.
  int NumUsers(int d) const { return domains_[d].num_users; }
  int PersonOfUser(int d, int user) const { return person_of_[d][user]; }
  /// Local user id of person p in domain d, or -1.
  int UserOfPerson(int d, int person) const { return user_of_[d][person]; }

  /// Ground-truth conversion probability when `user` is shown `item` in
  /// domain `d` (logistic affinity with the calibrated bias).
  double ConversionProbability(int d, int user, int item) const;

  /// Projects two domains into a CdrScenario (overlap = common persons)
  /// for offline training of the serving models.
  CdrScenario MakePairScenario(int d1, int d2) const;

  /// Item popularity (train interaction counts) in domain d.
  std::vector<int> ItemPopularity(int d) const;

 private:
  std::vector<DomainData> domains_;
  std::vector<Matrix> user_latent_;   // per domain
  std::vector<Matrix> item_latent_;   // per domain
  std::vector<std::vector<int>> person_of_;  // [d][local user] -> person
  std::vector<std::vector<int>> user_of_;    // [d][person] -> local or -1
  std::vector<double> bias_;  // calibrated logistic bias per domain
  double sharpness_;
};

/// A deployed policy: scores candidate items for a user of one domain.
using Ranker = std::function<std::vector<float>(
    int domain, int user, const std::vector<int>& candidates)>;

/// Configuration of the §III.C online A/B test.
struct AbTestConfig {
  int days = 15;
  int impressions_per_day_per_domain = 1500;
  int candidate_pool = 30;  // items retrieved per impression
  int slate_size = 1;       // the user reacts to the top-ranked item
  uint64_t seed = 1201;
};

struct GroupResult {
  std::string name;
  /// CVR per domain: conversions / impressions.
  std::vector<double> cvr;
  std::vector<int64_t> impressions;
};

/// Runs the A/B test: every impression is routed to one group by a stable
/// hash of (person), giving each group an equal traffic share; the group's
/// ranker picks the top item of a shared candidate pool, and conversion is
/// drawn from the world's ground truth.
std::vector<GroupResult> RunAbTest(
    const ServingWorld& world,
    const std::vector<std::pair<std::string, Ranker>>& groups,
    const AbTestConfig& config);

/// Control-group ranker: most-popular-first (the platform default).
Ranker PopularityRanker(const ServingWorld& world);

}  // namespace nmcdr

#endif  // NMCDR_SERVING_AB_TEST_H_
