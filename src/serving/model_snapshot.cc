#include "serving/model_snapshot.h"

#include <cmath>
#include <cstring>
#include <fstream>

#include "autograd/serialization.h"
#include "tensor/finite.h"
#include "util/check.h"
#include "util/logging.h"

namespace nmcdr {
namespace {

constexpr char kMagic[8] = {'N', 'M', 'C', 'D', 'R', 'S', 'V', '1'};

bool MatricesEqual(const Matrix& a, const Matrix& b) {
  if (!a.SameShape(b)) return false;
  return std::memcmp(a.data(), b.data(), sizeof(float) * a.size()) == 0;
}

void WriteHead(std::ostream& out, const FrozenPredictionHead& head) {
  ag::WriteMatrix(out, head.w0_user);
  ag::WriteMatrix(out, head.w0_item);
  ag::WriteMatrix(out, head.b0);
  ag::WriteU32(out, static_cast<uint32_t>(head.w.size()));
  for (size_t i = 0; i < head.w.size(); ++i) {
    ag::WriteMatrix(out, head.w[i]);
    ag::WriteMatrix(out, head.b[i]);
  }
  ag::WriteU32(out, static_cast<uint32_t>(head.hidden_act));
  ag::WriteMatrix(out, head.gmf_w);
  ag::WriteMatrix(out, head.gmf_b);
}

bool ReadHead(std::istream& in, FrozenPredictionHead* head) {
  if (!ag::ReadMatrix(in, &head->w0_user) ||
      !ag::ReadMatrix(in, &head->w0_item) ||
      !ag::ReadMatrix(in, &head->b0)) {
    return false;
  }
  uint32_t layers = 0;
  if (!ag::ReadU32(in, &layers) || layers > 64) return false;
  head->w.assign(layers, Matrix());
  head->b.assign(layers, Matrix());
  for (uint32_t i = 0; i < layers; ++i) {
    if (!ag::ReadMatrix(in, &head->w[i]) || !ag::ReadMatrix(in, &head->b[i])) {
      return false;
    }
  }
  uint32_t act = 0;
  if (!ag::ReadU32(in, &act) ||
      act > static_cast<uint32_t>(ag::Activation::kTanh)) {
    return false;
  }
  head->hidden_act = static_cast<ag::Activation>(act);
  return ag::ReadMatrix(in, &head->gmf_w) && ag::ReadMatrix(in, &head->gmf_b);
}

bool HeadsEqual(const FrozenPredictionHead& a, const FrozenPredictionHead& b) {
  if (a.w.size() != b.w.size() || a.hidden_act != b.hidden_act) return false;
  if (!MatricesEqual(a.w0_user, b.w0_user) ||
      !MatricesEqual(a.w0_item, b.w0_item) || !MatricesEqual(a.b0, b.b0) ||
      !MatricesEqual(a.gmf_w, b.gmf_w) || !MatricesEqual(a.gmf_b, b.gmf_b)) {
    return false;
  }
  for (size_t i = 0; i < a.w.size(); ++i) {
    if (!MatricesEqual(a.w[i], b.w[i]) || !MatricesEqual(a.b[i], b.b[i])) {
      return false;
    }
  }
  return true;
}

std::string Dims(const Matrix& m) {
  return "[" + std::to_string(m.rows()) + "x" + std::to_string(m.cols()) + "]";
}

/// First non-finite entry across the domain's matrices, or "".
std::string NonFiniteError(const SnapshotDomain& dom) {
  const FrozenPredictionHead& head = dom.frozen.head;
  std::vector<std::pair<std::string, const Matrix*>> tensors = {
      {"user_reps", &dom.frozen.user_reps},
      {"item_reps", &dom.frozen.item_reps},
      {"head.w0_user", &head.w0_user},
      {"head.w0_item", &head.w0_item},
      {"head.b0", &head.b0},
      {"head.gmf_w", &head.gmf_w},
      {"head.gmf_b", &head.gmf_b}};
  tensors.reserve(tensors.size() + 2 * head.w.size());
  for (size_t i = 0; i < head.w.size(); ++i) {
    tensors.emplace_back("head.w[" + std::to_string(i) + "]", &head.w[i]);
    tensors.emplace_back("head.b[" + std::to_string(i) + "]", &head.b[i]);
  }
  for (const auto& [name, m] : tensors) {
    const NonFiniteEntry e = FindFirstNonFinite(*m);
    if (e.found) {
      return "non-finite value " + std::to_string(e.value) + " at " + name +
             "(" + std::to_string(e.row) + "," + std::to_string(e.col) + ")";
    }
  }
  return "";
}

/// Validates the invariants Load relies on — dimension consistency of the
/// whole scoring chain (tables through head to the 1-column logit), person
/// link ranges, and value finiteness. Returns "" when consistent, else a
/// description with the exact dimension diff. Freezing paths construct
/// these invariants by design; Load must not trust the file.
std::string DomainError(const SnapshotDomain& dom, int num_persons) {
  const FrozenDomainState& f = dom.frozen;
  const FrozenPredictionHead& head = f.head;
  if (f.user_reps.cols() != f.item_reps.cols()) {
    return "user_reps " + Dims(f.user_reps) + " and item_reps " +
           Dims(f.item_reps) + " disagree on the representation dim";
  }
  if (head.dim() != f.dim()) {
    return "head.w0_user " + Dims(head.w0_user) + " expects dim " +
           std::to_string(head.dim()) + " but the tables carry dim " +
           std::to_string(f.dim());
  }
  if (!head.w0_item.SameShape(head.w0_user)) {
    return "head.w0_item " + Dims(head.w0_item) +
           " does not match head.w0_user " + Dims(head.w0_user);
  }
  if (head.b0.rows() != 1 || head.b0.cols() != head.w0_user.cols()) {
    return "head.b0 " + Dims(head.b0) + " is not a [1x" +
           std::to_string(head.w0_user.cols()) + "] row bias";
  }
  if (head.w.size() != head.b.size()) {
    return "head has " + std::to_string(head.w.size()) + " weights but " +
           std::to_string(head.b.size()) + " biases";
  }
  int width = head.w0_user.cols();
  for (size_t i = 0; i < head.w.size(); ++i) {
    if (head.w[i].rows() != width) {
      return "head.w[" + std::to_string(i) + "] " + Dims(head.w[i]) +
             " does not chain from the previous layer width " +
             std::to_string(width);
    }
    width = head.w[i].cols();
    if (head.b[i].rows() != 1 || head.b[i].cols() != width) {
      return "head.b[" + std::to_string(i) + "] " + Dims(head.b[i]) +
             " is not a [1x" + std::to_string(width) + "] row bias";
    }
  }
  if (width != 1) {
    return "head's last layer ends at width " + std::to_string(width) +
           ", expected 1 logit column";
  }
  if (head.gmf_w.rows() != f.dim() || head.gmf_w.cols() != 1) {
    return "head.gmf_w " + Dims(head.gmf_w) + " is not [" +
           std::to_string(f.dim()) + "x1]";
  }
  if (head.gmf_b.rows() != 1 || head.gmf_b.cols() != 1) {
    return "head.gmf_b " + Dims(head.gmf_b) + " is not [1x1]";
  }
  if (static_cast<int>(dom.user_to_person.size()) != dom.num_users()) {
    return "user_to_person has " + std::to_string(dom.user_to_person.size()) +
           " entries for " + std::to_string(dom.num_users()) + " users";
  }
  if (static_cast<int>(dom.person_to_user.size()) != num_persons) {
    return "person_to_user has " + std::to_string(dom.person_to_user.size()) +
           " entries for " + std::to_string(num_persons) + " persons";
  }
  for (int u = 0; u < dom.num_users(); ++u) {
    const int p = dom.user_to_person[u];
    if (p < -1 || p >= num_persons) {
      return "user " + std::to_string(u) + " links to out-of-range person " +
             std::to_string(p);
    }
  }
  for (int p = 0; p < num_persons; ++p) {
    const int u = dom.person_to_user[p];
    if (u < -1 || u >= dom.num_users()) {
      return "person " + std::to_string(p) + " links to out-of-range user " +
             std::to_string(u);
    }
  }
  return NonFiniteError(dom);
}

}  // namespace

bool ModelSnapshot::FreezePair(RecModel* model, const CdrScenario& scenario,
                               ModelSnapshot* out) {
  SnapshotDomain z, zbar;
  if (!model->FreezeDomain(DomainSide::kZ, &z.frozen) ||
      !model->FreezeDomain(DomainSide::kZbar, &zbar.frozen)) {
    LOG_ERROR << "ModelSnapshot: model '" << model->name()
              << "' does not support freezing";
    return false;
  }
  z.name = scenario.z.name;
  zbar.name = scenario.zbar.name;
  NMCDR_CHECK_EQ(z.frozen.num_users(), scenario.z.num_users);
  NMCDR_CHECK_EQ(zbar.frozen.num_users(), scenario.zbar.num_users);

  const int nz = scenario.z.num_users;
  const int nzbar = scenario.zbar.num_users;
  out->num_persons_ = nz + nzbar;
  z.user_to_person.assign(nz, -1);
  zbar.user_to_person.assign(nzbar, -1);
  z.person_to_user.assign(out->num_persons_, -1);
  zbar.person_to_user.assign(out->num_persons_, -1);
  for (int u = 0; u < nz; ++u) {
    z.user_to_person[u] = u;
    z.person_to_user[u] = u;
  }
  for (int v = 0; v < nzbar; ++v) {
    const int linked = scenario.zbar_to_z[v];
    const int person = linked >= 0 ? linked : nz + v;
    zbar.user_to_person[v] = person;
    zbar.person_to_user[person] = v;
  }
  out->domains_.clear();
  out->domains_.push_back(std::move(z));
  out->domains_.push_back(std::move(zbar));
  return true;
}

bool ModelSnapshot::FreezeMultiDomain(MultiDomainNmcdrModel* model,
                                      const MultiDomainView& view,
                                      ModelSnapshot* out) {
  NMCDR_CHECK_EQ(model->num_domains(), view.num_domains());
  out->domains_.clear();
  out->domains_.reserve(view.num_domains());
  out->num_persons_ = view.num_persons;
  for (int d = 0; d < view.num_domains(); ++d) {
    SnapshotDomain dom;
    if (!model->FreezeDomain(d, &dom.frozen)) return false;
    dom.name = view.domains[d]->name;
    dom.user_to_person = view.user_to_person[d];
    dom.person_to_user.assign(view.num_persons, -1);
    for (int u = 0; u < dom.num_users(); ++u) {
      if (dom.user_to_person[u] >= 0) {
        dom.person_to_user[dom.user_to_person[u]] = u;
      }
    }
    out->domains_.push_back(std::move(dom));
  }
  return true;
}

int ModelSnapshot::UserOfPerson(int d, int person) const {
  NMCDR_DCHECK_GE(d, 0);
  NMCDR_DCHECK_LT(d, num_domains());
  if (person < 0 || person >= num_persons_) return -1;
  return domains_[d].person_to_user[person];
}

int ModelSnapshot::ResolveUser(int user_domain, int user,
                               int target_domain) const {
  NMCDR_DCHECK_GE(user_domain, 0);
  NMCDR_DCHECK_LT(user_domain, num_domains());
  NMCDR_DCHECK_GE(user, 0);
  NMCDR_DCHECK_LT(user, domains_[user_domain].num_users());
  if (user_domain == target_domain) return user;
  return UserOfPerson(target_domain,
                      domains_[user_domain].user_to_person[user]);
}

bool ModelSnapshot::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    LOG_ERROR << "ModelSnapshot::Save: cannot open " << path;
    return false;
  }
  out.write(kMagic, sizeof(kMagic));
  ag::WriteU32(out, static_cast<uint32_t>(domains_.size()));
  ag::WriteU32(out, static_cast<uint32_t>(num_persons_));
  for (const SnapshotDomain& dom : domains_) {
    ag::WriteString(out, dom.name);
    ag::WriteMatrix(out, dom.frozen.user_reps);
    ag::WriteMatrix(out, dom.frozen.item_reps);
    WriteHead(out, dom.frozen.head);
    ag::WriteIntVector(out, dom.user_to_person);
    ag::WriteIntVector(out, dom.person_to_user);
  }
  if (!out.good()) {
    LOG_ERROR << "ModelSnapshot::Save: write failure for " << path;
    return false;
  }
  return true;
}

bool ModelSnapshot::Load(const std::string& path, ModelSnapshot* snapshot,
                         std::string* error) {
  const auto fail = [&](const std::string& reason) {
    LOG_ERROR << "ModelSnapshot::Load: " << reason << " in " << path;
    if (error != nullptr) *error = reason;
    return false;
  };
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail("cannot open file");
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return fail("bad magic (not an NMCDRSV1 snapshot)");
  }
  uint32_t num_domains = 0, num_persons = 0;
  if (!ag::ReadU32(in, &num_domains) || num_domains > 256 ||
      !ag::ReadU32(in, &num_persons)) {
    return fail("bad header");
  }
  ModelSnapshot staged;
  staged.num_persons_ = static_cast<int>(num_persons);
  staged.domains_.reserve(num_domains);
  for (uint32_t d = 0; d < num_domains; ++d) {
    SnapshotDomain dom;
    if (!ag::ReadString(in, &dom.name) ||
        !ag::ReadMatrix(in, &dom.frozen.user_reps) ||
        !ag::ReadMatrix(in, &dom.frozen.item_reps) ||
        !ReadHead(in, &dom.frozen.head) ||
        !ag::ReadIntVector(in, &dom.user_to_person) ||
        !ag::ReadIntVector(in, &dom.person_to_user)) {
      return fail("truncated domain " + std::to_string(d));
    }
    const std::string err = DomainError(dom, staged.num_persons_);
    if (!err.empty()) return fail("domain '" + dom.name + "': " + err);
    staged.domains_.push_back(std::move(dom));
  }
  *snapshot = std::move(staged);
  return true;
}

bool ModelSnapshot::Equals(const ModelSnapshot& other) const {
  if (num_domains() != other.num_domains() ||
      num_persons_ != other.num_persons_) {
    return false;
  }
  for (int d = 0; d < num_domains(); ++d) {
    const SnapshotDomain& a = domains_[d];
    const SnapshotDomain& b = other.domains_[d];
    if (a.name != b.name || a.user_to_person != b.user_to_person ||
        a.person_to_user != b.person_to_user) {
      return false;
    }
    if (!MatricesEqual(a.frozen.user_reps, b.frozen.user_reps) ||
        !MatricesEqual(a.frozen.item_reps, b.frozen.item_reps) ||
        !HeadsEqual(a.frozen.head, b.frozen.head)) {
      return false;
    }
  }
  return true;
}

ModelSnapshot ModelSnapshot::MakeSynthetic(const SyntheticSnapshotSpec& spec) {
  NMCDR_CHECK_GT(spec.num_domains, 0);
  NMCDR_CHECK_GT(spec.users_per_domain, 0);
  NMCDR_CHECK_GT(spec.items_per_domain, 0);
  NMCDR_CHECK_GT(spec.dim, 0);
  NMCDR_CHECK_GT(spec.hidden, 0);
  NMCDR_CHECK_GE(spec.overlap, 0.f);
  NMCDR_CHECK_LE(spec.overlap, 1.f);
  Rng rng(spec.seed);

  // Cheap seeded fill — uniform rather than Xavier/Gaussian because the
  // tables only need to be well-formed finite numbers at scale, and
  // bench_cluster fills hundreds of millions of entries.
  const auto fill = [&rng](Matrix* m, float scale) {
    float* data = m->data();
    for (int i = 0; i < m->size(); ++i) data[i] = rng.Uniform(-scale, scale);
  };

  // One shared head per domain, built once: every domain's head has the
  // same shapes, so reuse would also work, but distinct weights keep
  // cross-domain requests from degenerating into same-score ties.
  const int users = spec.users_per_domain;
  const int linked = static_cast<int>(
      static_cast<float>(users) * spec.overlap);
  ModelSnapshot out;
  out.num_persons_ =
      users + (spec.num_domains - 1) * (users - linked);

  int next_fresh_person = users;
  out.domains_.reserve(spec.num_domains);
  for (int d = 0; d < spec.num_domains; ++d) {
    SnapshotDomain dom;
    dom.name = "synthetic-" + std::to_string(d);
    dom.frozen.user_reps = Matrix(users, spec.dim);
    dom.frozen.item_reps = Matrix(spec.items_per_domain, spec.dim);
    fill(&dom.frozen.user_reps, 1.f);
    fill(&dom.frozen.item_reps, 1.f);

    FrozenPredictionHead& head = dom.frozen.head;
    head.w0_user = Matrix(spec.dim, spec.hidden);
    head.w0_item = Matrix(spec.dim, spec.hidden);
    head.b0 = Matrix(1, spec.hidden);
    head.w.reserve(1);
    head.b.reserve(1);
    head.w.push_back(Matrix(spec.hidden, 1));
    head.b.push_back(Matrix(1, 1));
    head.gmf_w = Matrix(spec.dim, 1);
    head.gmf_b = Matrix(1, 1);
    const float head_scale = 1.f / std::sqrt(static_cast<float>(spec.dim));
    fill(&head.w0_user, head_scale);
    fill(&head.w0_item, head_scale);
    fill(&head.b0, head_scale);
    fill(&head.w[0], head_scale);
    fill(&head.b[0], head_scale);
    fill(&head.gmf_w, head_scale);
    fill(&head.gmf_b, head_scale);

    dom.user_to_person.resize(users);
    for (int u = 0; u < users; ++u) {
      if (d == 0 || u < linked) {
        dom.user_to_person[u] = u;  // anchored to domain 0's person u
      } else {
        dom.user_to_person[u] = next_fresh_person++;
      }
    }
    dom.person_to_user.assign(out.num_persons_, -1);
    for (int u = 0; u < users; ++u) {
      dom.person_to_user[dom.user_to_person[u]] = u;
    }
    out.domains_.push_back(std::move(dom));
  }
  NMCDR_CHECK_EQ(next_fresh_person, out.num_persons_);
  return out;
}

}  // namespace nmcdr
