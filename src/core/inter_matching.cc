#include "core/inter_matching.h"

#include "util/check.h"

namespace nmcdr {

InterMatchingComponent::InterMatchingComponent(ag::ParameterStore* store,
                                               const std::string& name,
                                               int dim, Rng* rng,
                                               bool gate_fusion)
    : self_(store, name + ".self", dim, dim, rng),
      other_(store, name + ".other", dim, dim, rng),
      gate_self_(store, name + ".gate_s", dim, dim, rng),
      gate_other_(store, name + ".gate_o", dim, dim, rng),
      gate_fusion_(gate_fusion) {}

ag::Tensor InterMatchingComponent::Forward(
    const ag::Tensor& users, const ag::Tensor& other_users,
    const std::vector<int>& self_index, const std::vector<int>& other_sample,
    const ag::Tensor& w_cross_own, const ag::Tensor& w_cross_other) const {
  const int n = users.rows();
  NMCDR_CHECK_EQ(static_cast<int>(self_index.size()), n);

  // Self message (Eq. 13 top) for overlapped users; zero rows otherwise.
  std::vector<int> gather_index(n, 0);
  Matrix mask(n, 1);
  for (int u = 0; u < n; ++u) {
    if (self_index[u] >= 0) {
      gather_index[u] = self_index[u];
      mask.At(u, 0) = 1.f;
    }
  }
  ag::Tensor counterpart = ag::Embedding(other_users, gather_index);
  ag::Tensor m_self =
      ag::ScaleRows(self_.Forward(counterpart), ag::Tensor(std::move(mask)));
  ag::Tensor u_self = ag::Relu(m_self);  // Eq. 14 top

  // Other message (Eq. 13 bottom): mean over the sampled non-overlapped
  // pool of the other domain, shared by all receiving users (the
  // fully connected cross-domain graph with the 1/|N^cdr| norm).
  ag::Tensor u_other;
  if (other_sample.empty()) {
    u_other = ag::Tensor(Matrix(n, users.cols()));
  } else {
    ag::Tensor pooled = ag::ColMean(ag::Embedding(other_users, other_sample));
    u_other = ag::Relu(ag::TileRows(other_.Forward(pooled), n));  // Eq. 14
  }

  // Eq. 15: u_g3* = u_g2 W_cross^own + u_self (1 - W_cross^other).
  ag::Tensor g3_star = ag::Add(ag::MatMul(users, w_cross_own),
                               ag::MatMul(u_self, ag::OneMinus(w_cross_other)));

  ag::Tensor fused;
  if (gate_fusion_) {
    // Eq. 16 gate between the self-path mix and the other-user message.
    ag::Tensor gate = ag::Sigmoid(ag::Add(gate_self_.Forward(g3_star),
                                          gate_other_.Forward(u_other)));
    fused = ag::Tanh(ag::Add(ag::Hadamard(ag::OneMinus(gate), g3_star),
                             ag::Hadamard(gate, u_other)));
  } else {
    fused = ag::Tanh(ag::Add(g3_star, u_other));
  }
  // Eq. 17 residual.
  return ag::Add(fused, users);
}

}  // namespace nmcdr
