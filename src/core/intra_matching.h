#ifndef NMCDR_CORE_INTRA_MATCHING_H_
#define NMCDR_CORE_INTRA_MATCHING_H_

#include <string>
#include <vector>

#include "autograd/nn.h"

namespace nmcdr {

/// Intra node matching component (§II.D.1, Eqs. 5-11): each user receives
/// a head-user message and a tail-user message from the (sampled) fully
/// connected user-user graph of its own domain, fused by the fine-grained
/// gate of Eq. 10 and added residually (Eq. 11).
///
/// With the 1/|N| Laplacian norm of Eq. 8, the aggregated head message is
/// the mean over the head pool pushed through the head transform — the
/// same vector for every receiving user (the paper's graph is fully
/// connected), so it is computed once on the sampled pool and tiled.
class IntraMatchingComponent {
 public:
  /// `shared_transform=true` collapses W_head/W_tail into one matrix — the
  /// ablation motivated by the Eq. 31 stability analysis (DESIGN.md §4).
  IntraMatchingComponent(ag::ParameterStore* store, const std::string& name,
                         int dim, Rng* rng, bool gate_fusion,
                         bool shared_transform);

  /// `head_sample` / `tail_sample`: user ids sampled from the head/tail
  /// pools for this step (either may be empty -> zero message).
  ag::Tensor Forward(const ag::Tensor& users,
                     const std::vector<int>& head_sample,
                     const std::vector<int>& tail_sample) const;

  /// Spectral norms of the message transforms (W_a^2/W_n^2 in Eq. 31).
  float HeadSpectralNorm() const;
  float TailSpectralNorm() const;

 private:
  ag::Tensor PoolMessage(const ag::Tensor& users,
                         const std::vector<int>& sample,
                         const ag::Linear& transform, int rows) const;

  ag::Linear head_;
  ag::Linear tail_;
  ag::Linear gate_head_;
  ag::Linear gate_tail_;
  bool gate_fusion_;
  bool shared_transform_;
};

}  // namespace nmcdr

#endif  // NMCDR_CORE_INTRA_MATCHING_H_
