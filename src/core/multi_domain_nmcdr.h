#ifndef NMCDR_CORE_MULTI_DOMAIN_NMCDR_H_
#define NMCDR_CORE_MULTI_DOMAIN_NMCDR_H_

#include <memory>
#include <string>
#include <vector>

#include "autograd/optimizer.h"
#include "core/complementing.h"
#include "core/hetero_encoder.h"
#include "core/intra_matching.h"
#include "core/nmcdr_config.h"
#include "core/prediction.h"
#include "core/rec_model.h"
#include "graph/sampling.h"

namespace nmcdr {

/// A K-domain multi-target CDR setting: the §II.A formulation generalized
/// from two domains to K, with user identity expressed through shared
/// person ids (the MYbank online deployment of §III.C spans three domains).
/// All pointers outlive the model.
struct MultiDomainView {
  /// One entry per domain.
  std::vector<const DomainData*> domains;
  /// TRAIN interaction graphs (held-out items excluded), one per domain.
  std::vector<const InteractionGraph*> train_graphs;
  /// user_to_person[d][u] = person id of domain-d user u, or -1 when the
  /// identity is unknown (the K_u masking generalized to K domains).
  /// Person ids shared across domains define the overlaps.
  std::vector<std::vector<int>> user_to_person;
  int num_persons = 0;

  int num_domains() const { return static_cast<int>(domains.size()); }

  /// CHECK-fails on inconsistent sizes or out-of-range person ids.
  void CheckConsistency() const;
};

/// NMCDR generalized to K target domains. Per domain it keeps the paper's
/// pipeline (heterogeneous graph encoder -> intra node matching ->
/// inter node matching -> intra node complementing -> prediction); the
/// inter component's "self" message for a user averages the
/// representations of the SAME person in every other domain where the
/// identity link is visible, and the "other" message pools sampled
/// non-overlapped users from all other domains — exactly Eq. 13 with the
/// fully connected cross-domain graph spanning K-1 domains.
class MultiDomainNmcdrModel {
 public:
  MultiDomainNmcdrModel(const MultiDomainView& view,
                        const NmcdrConfig& config, uint64_t seed,
                        float learning_rate = 1e-3f);

  /// One optimization step on per-domain batches (size must equal the
  /// domain count; empty batches are skipped). Returns the total loss.
  float TrainStep(const std::vector<LabeledBatch>& batches);

  /// Affinity scores for user-item pairs of domain `d`.
  std::vector<float> Score(int domain, const std::vector<int>& users,
                           const std::vector<int>& items);

  ag::ParameterStore* params() { return &store_; }
  int64_t ParameterCount() { return store_.ParameterCount(); }
  int num_domains() const { return static_cast<int>(domains_.size()); }

  /// Drops cached evaluation representations (call after external
  /// parameter mutation).
  void InvalidateCaches() { reps_dirty_ = true; }

  /// Freezes domain `d` into an autograd-free serving state (the same
  /// contract as RecModel::FreezeDomain: bit-equal to Score()).
  bool FreezeDomain(int domain, FrozenDomainState* out);

 private:
  struct DomainState {
    ag::Tensor user_emb;
    ag::Tensor item_emb;
    std::unique_ptr<HeteroGraphEncoder> encoder;
    std::unique_ptr<IntraMatchingComponent> intra;
    // Inter-matching parameters (Eqs. 13-17 across K-1 source domains).
    std::unique_ptr<ag::Linear> inter_self;
    std::unique_ptr<ag::Linear> inter_other;
    std::unique_ptr<ag::Linear> gate_self;
    std::unique_ptr<ag::Linear> gate_other;
    ag::Tensor w_cross;
    std::unique_ptr<ComplementingComponent> complement;
    std::unique_ptr<PredictionLayer> prediction;
    std::shared_ptr<const CsrMatrix> adj_ui;
    std::shared_ptr<const CsrMatrix> adj_iu;
    std::shared_ptr<const std::vector<std::vector<int>>> neighbors;
    std::shared_ptr<const std::vector<std::vector<int>>> complement_cache;
    MatchingPools pools;
    std::vector<int> non_overlap_pool;
    const InteractionGraph* graph = nullptr;
    /// person -> local user id (or -1), the inverse of user_to_person.
    std::vector<int> person_to_user;
  };

  /// Full forward over all domains; fills per-domain final reps.
  /// `force_candidate_refresh` rebuilds complement candidates from `rng`
  /// (evaluation paths), making cached reps a pure function of parameters.
  std::vector<ag::Tensor> ForwardAll(Rng* rng,
                                     bool force_candidate_refresh = false);
  void RefreshEvalReps();

  MultiDomainView view_;
  NmcdrConfig config_;
  ag::ParameterStore store_;
  Rng rng_;
  std::vector<DomainState> domains_;
  std::unique_ptr<ag::Adam> optimizer_;
  int64_t steps_ = 0;
  bool reps_dirty_ = true;
  std::vector<Matrix> cached_reps_;
};

}  // namespace nmcdr

#endif  // NMCDR_CORE_MULTI_DOMAIN_NMCDR_H_
