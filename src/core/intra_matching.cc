#include "core/intra_matching.h"

namespace nmcdr {

IntraMatchingComponent::IntraMatchingComponent(ag::ParameterStore* store,
                                               const std::string& name,
                                               int dim, Rng* rng,
                                               bool gate_fusion,
                                               bool shared_transform)
    : head_(store, name + ".head", dim, dim, rng),
      tail_(store, name + ".tail", dim, dim, rng),
      gate_head_(store, name + ".gate_h", dim, dim, rng),
      gate_tail_(store, name + ".gate_t", dim, dim, rng),
      gate_fusion_(gate_fusion),
      shared_transform_(shared_transform) {}

ag::Tensor IntraMatchingComponent::PoolMessage(
    const ag::Tensor& users, const std::vector<int>& sample,
    const ag::Linear& transform, int rows) const {
  if (sample.empty()) {
    return ag::Tensor(Matrix(rows, users.cols()));
  }
  // mean_k (u_k W + b) == (mean_k u_k) W + b : Eq. 8 with Laplacian norm.
  ag::Tensor pooled = ag::ColMean(ag::Embedding(users, sample));
  ag::Tensor msg = transform.Forward(pooled);
  return ag::Relu(ag::TileRows(msg, rows));  // Eq. 9 aggregation
}

ag::Tensor IntraMatchingComponent::Forward(
    const ag::Tensor& users, const std::vector<int>& head_sample,
    const std::vector<int>& tail_sample) const {
  const int n = users.rows();
  const ag::Linear& tail_transform = shared_transform_ ? head_ : tail_;
  ag::Tensor u_head = PoolMessage(users, head_sample, head_, n);
  ag::Tensor u_tail = PoolMessage(users, tail_sample, tail_transform, n);

  ag::Tensor fused;
  if (gate_fusion_) {
    // Eq. 10: fine-grained gate between the two message types.
    ag::Tensor gate = ag::Sigmoid(
        ag::Add(gate_head_.Forward(u_head), gate_tail_.Forward(u_tail)));
    fused = ag::Tanh(ag::Add(ag::Hadamard(ag::OneMinus(gate), u_head),
                             ag::Hadamard(gate, u_tail)));
  } else {
    fused = ag::Tanh(ag::Add(u_head, u_tail));
  }
  // Eq. 11 residual.
  return ag::Add(fused, users);
}

float IntraMatchingComponent::HeadSpectralNorm() const {
  return head_.weight().value().SpectralNorm();
}

float IntraMatchingComponent::TailSpectralNorm() const {
  const ag::Linear& t = shared_transform_ ? head_ : tail_;
  return t.weight().value().SpectralNorm();
}

}  // namespace nmcdr
