#ifndef NMCDR_CORE_NMCDR_CONFIG_H_
#define NMCDR_CORE_NMCDR_CONFIG_H_

#include <array>
#include <vector>

namespace nmcdr {

/// Message-mapping kernel of the heterogeneous graph encoder. The paper
/// notes (under Eq. 3) that the mapping function "can be replaced with any
/// proposed graph neural network kernels such as GCN and GAT".
enum class GnnKernel {
  kVanilla,  // Eq. 3: Laplacian-normalized mean aggregation
  kGat,      // dot-product attention over each user's neighbours
};

/// Hyper-parameters of NMCDR (§III.A.4). The paper sets every transform
/// dimension (D, D_hge, D_igm, D_cgm, D_ref) to 128; the residual
/// connections of Eqs. 11 and 17 require them equal, so this port exposes a
/// single `hidden_dim`.
struct NmcdrConfig {
  /// Shared embedding/transform dimension.
  int hidden_dim = 16;

  /// Heterogeneous-graph-encoder layers (Eqs. 2-4).
  int hge_layers = 2;
  /// Message-mapping kernel of the encoder's user-side aggregation.
  GnnKernel gnn_kernel = GnnKernel::kVanilla;
  /// Stacked (intra + inter) node-matching blocks (paper: 3).
  int intra_inter_layers = 1;
  /// Stacked intra-node-complementing blocks (paper: 2).
  int complement_layers = 1;

  /// Head/tail discrimination threshold K_head of Eq. 5 (paper: 7).
  int k_head = 7;
  /// Sampled matching neighbours per pool per step (Fig. 3; paper: 512).
  int matching_neighbors = 512;

  /// Sampled candidate items per user added to the observed neighbours in
  /// the complementing attention (Eq. 18); see DESIGN.md on the two
  /// readings of Eq. 18.
  int complement_candidates = 20;
  /// Literal Eq. 18: attend over observed neighbours only.
  bool complement_observed_only = false;
  /// Training steps between complement-candidate resamples (1 = every
  /// step; larger values amortize the proposal walks).
  int complement_resample_every = 25;

  /// Ablation switches (Table IX): w/o-Igm, w/o-Cgm, w/o-Inc, w/o-Sup.
  bool use_intra = true;
  bool use_inter = true;
  bool use_complement = true;
  bool use_companion = true;

  /// Design-choice ablations (DESIGN.md §4).
  bool gate_fusion = true;             // Eq. 10/16 gating vs plain sum
  bool shared_intra_transform = false; // one transform for head+tail msgs

  /// Learn the companion weights instead of fixing them: each stage's
  /// loss enters as exp(-s_i) * L_i + s_i with trainable s_i (homoscedastic
  /// uncertainty weighting) — the "dynamically computed weight" option the
  /// paper mentions under Eq. 22.
  bool dynamic_companion_weights = false;

  /// Companion-objective weights w1..w4 of Eq. 22. The paper sets 1.0 at
  /// D=128; at this port's CPU scale (D=16, small MLP) four unit-weight
  /// companion heads dominate the final-loss gradient, so the default is
  /// calibrated to 0.3 (the paper allows "static or dynamically computed"
  /// weights; see EXPERIMENTS.md).
  std::array<float, 4> companion_weights = {0.3f, 0.3f, 0.3f, 0.3f};
  /// Loss mixture w5..w8 of Eq. 24: {CO_Z, CO_Z̄, CLS_Z, CLS_Z̄}.
  std::array<float, 4> loss_weights = {1.f, 1.f, 1.f, 1.f};

  /// Hidden sizes of the shared prediction MLP (Eq. 20).
  std::vector<int> mlp_hidden = {32};

  /// Global gradient-norm clip (0 disables).
  float grad_clip = 5.f;
};

}  // namespace nmcdr

#endif  // NMCDR_CORE_NMCDR_CONFIG_H_
