#include "core/rec_model.h"

#include "tensor/matrix_ops.h"
#include "util/check.h"

namespace nmcdr {

std::vector<float> FrozenDomainState::Score(
    const std::vector<int>& users, const std::vector<int>& items) const {
  NMCDR_CHECK_EQ(users.size(), items.size());
  // Mirrors the trainer path exactly: gather rows, then the frozen head —
  // the same kernel sequence the autograd forward runs, so logits are
  // bit-equal.
  const Matrix user_rows = GatherRows(user_reps, users);
  const Matrix item_rows = GatherRows(item_reps, items);
  const Matrix logits = head.Forward(user_rows, item_rows);
  std::vector<float> out(users.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = logits.At(static_cast<int>(i), 0);
  }
  return out;
}

}  // namespace nmcdr
