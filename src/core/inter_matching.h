#ifndef NMCDR_CORE_INTER_MATCHING_H_
#define NMCDR_CORE_INTER_MATCHING_H_

#include <string>
#include <vector>

#include "autograd/nn.h"

namespace nmcdr {

/// Inter node matching component (§II.D.2, Eqs. 12-17): transfers
/// knowledge across domains for every user. Overlapped users receive a
/// "self" message from their linked counterpart (Eq. 13 top); ALL users
/// receive an "other" message aggregated from sampled non-overlapped users
/// of the other domain (Eq. 13 bottom), fused by the Eq. 16 gate with the
/// Eq. 17 residual.
class InterMatchingComponent {
 public:
  InterMatchingComponent(ag::ParameterStore* store, const std::string& name,
                         int dim, Rng* rng, bool gate_fusion);

  /// `users`:        this domain's u_g2 representations [N,D].
  /// `other_users`:  the other domain's u_g2 representations [N̄,D].
  /// `self_index`:   per user, the linked row of `other_users` or -1
  ///                 (the K_u-masked overlap links).
  /// `other_sample`: sampled non-overlapped user ids of the other domain.
  /// `w_cross_own` / `w_cross_other`: the W_cross matrices of Eq. 15 —
  ///                 owned by the model because Eq. 15 mixes both domains'
  ///                 matrices.
  ag::Tensor Forward(const ag::Tensor& users, const ag::Tensor& other_users,
                     const std::vector<int>& self_index,
                     const std::vector<int>& other_sample,
                     const ag::Tensor& w_cross_own,
                     const ag::Tensor& w_cross_other) const;

 private:
  ag::Linear self_;
  ag::Linear other_;
  ag::Linear gate_self_;
  ag::Linear gate_other_;
  bool gate_fusion_;
};

}  // namespace nmcdr

#endif  // NMCDR_CORE_INTER_MATCHING_H_
