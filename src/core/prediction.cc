#include "core/prediction.h"

#include "tensor/matrix_ops.h"
#include "util/check.h"

namespace nmcdr {
namespace {

std::vector<int> MlpDims(int dim, const std::vector<int>& hidden) {
  std::vector<int> dims;
  dims.reserve(hidden.size() + 2);
  dims.push_back(2 * dim);
  for (int h : hidden) dims.push_back(h);
  dims.push_back(1);
  return dims;
}

Matrix ApplyActivation(const Matrix& x, ag::Activation act) {
  switch (act) {
    case ag::Activation::kNone:
      return x;
    case ag::Activation::kRelu:
      return Relu(x);
    case ag::Activation::kSigmoid:
      return Sigmoid(x);
    case ag::Activation::kTanh:
      return Tanh(x);
  }
  NMCDR_CHECK(false);
  return x;
}

}  // namespace

Matrix FrozenPredictionHead::Forward(const Matrix& user_rows,
                                     const Matrix& item_rows) const {
  NMCDR_CHECK_EQ(user_rows.rows(), item_rows.rows());
  NMCDR_CHECK_EQ(user_rows.cols(), dim());
  NMCDR_CHECK_EQ(item_rows.cols(), dim());
  // First layer: the user half accumulates first, the item half second —
  // the same fused-add sequence as MatMul([u||v], W0).
  Matrix h0 = MatMul(user_rows, w0_user);
  MatMulAccumInto(item_rows, w0_item, &h0);
  const Matrix gmf_dot = MatMul(Hadamard(user_rows, item_rows), gmf_w);
  return ForwardFromHidden(h0, gmf_dot);
}

Matrix FrozenPredictionHead::ForwardFromHidden(const Matrix& h0,
                                               const Matrix& gmf_dot) const {
  NMCDR_CHECK_EQ(h0.cols(), b0.cols());
  NMCDR_CHECK_EQ(w.size(), b.size());
  Matrix h = AddRowBroadcast(h0, b0);
  for (size_t i = 0; i < w.size(); ++i) {
    h = ApplyActivation(h, hidden_act);
    h = AddRowBroadcast(MatMul(h, w[i]), b[i]);
  }
  return Add(h, AddRowBroadcast(gmf_dot, gmf_b));
}

PredictionLayer::PredictionLayer(ag::ParameterStore* store,
                                 const std::string& name, int dim,
                                 const std::vector<int>& hidden, Rng* rng)
    : mlp_(store, name + ".mlp", MlpDims(dim, hidden), rng),
      gmf_(store, name + ".gmf", dim, 1, rng) {
  // Start the product path as a plain inner product.
  ag::Tensor w = gmf_.weight();
  w.mutable_value().Fill(1.f);
}

ag::Tensor PredictionLayer::Forward(const ag::Tensor& user_rows,
                                    const ag::Tensor& item_rows) const {
  return ag::Add(mlp_.Forward(ag::ConcatCols(user_rows, item_rows)),
                 gmf_.Forward(ag::Hadamard(user_rows, item_rows)));
}

FrozenPredictionHead PredictionLayer::Freeze() const {
  FrozenPredictionHead head;
  const int dim = gmf_.in_features();
  const Matrix& w0 = mlp_.layer(0).weight().value();
  NMCDR_CHECK_EQ(w0.rows(), 2 * dim);
  head.w0_user = Matrix(dim, w0.cols());
  head.w0_item = Matrix(dim, w0.cols());
  for (int r = 0; r < dim; ++r) {
    for (int c = 0; c < w0.cols(); ++c) {
      head.w0_user.At(r, c) = w0.At(r, c);
      head.w0_item.At(r, c) = w0.At(dim + r, c);
    }
  }
  head.b0 = mlp_.layer(0).bias().value();
  head.w.reserve(mlp_.num_layers() - 1);
  head.b.reserve(mlp_.num_layers() - 1);
  for (int l = 1; l < mlp_.num_layers(); ++l) {
    head.w.push_back(mlp_.layer(l).weight().value());
    head.b.push_back(mlp_.layer(l).bias().value());
  }
  head.hidden_act = mlp_.hidden_activation();
  head.gmf_w = gmf_.weight().value();
  head.gmf_b = gmf_.bias().value();
  return head;
}

float PredictionLayer::FirstLayerSpectralNorm() const {
  return mlp_.layer(0).weight().value().SpectralNorm();
}

}  // namespace nmcdr
