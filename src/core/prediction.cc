#include "core/prediction.h"

namespace nmcdr {
namespace {

std::vector<int> MlpDims(int dim, const std::vector<int>& hidden) {
  std::vector<int> dims;
  dims.push_back(2 * dim);
  for (int h : hidden) dims.push_back(h);
  dims.push_back(1);
  return dims;
}

}  // namespace

PredictionLayer::PredictionLayer(ag::ParameterStore* store,
                                 const std::string& name, int dim,
                                 const std::vector<int>& hidden, Rng* rng)
    : mlp_(store, name + ".mlp", MlpDims(dim, hidden), rng),
      gmf_(store, name + ".gmf", dim, 1, rng) {
  // Start the product path as a plain inner product.
  ag::Tensor w = gmf_.weight();
  w.mutable_value().Fill(1.f);
}

ag::Tensor PredictionLayer::Forward(const ag::Tensor& user_rows,
                                    const ag::Tensor& item_rows) const {
  return ag::Add(mlp_.Forward(ag::ConcatCols(user_rows, item_rows)),
                 gmf_.Forward(ag::Hadamard(user_rows, item_rows)));
}

float PredictionLayer::FirstLayerSpectralNorm() const {
  return mlp_.layer(0).weight().value().SpectralNorm();
}

}  // namespace nmcdr
