#include "core/multi_domain_nmcdr.h"

#include <algorithm>

#include "util/check.h"

namespace nmcdr {

void MultiDomainView::CheckConsistency() const {
  NMCDR_CHECK_EQ(domains.size(), train_graphs.size());
  NMCDR_CHECK_EQ(domains.size(), user_to_person.size());
  for (int d = 0; d < num_domains(); ++d) {
    NMCDR_CHECK(domains[d] != nullptr);
    NMCDR_CHECK(train_graphs[d] != nullptr);
    NMCDR_CHECK_EQ(static_cast<int>(user_to_person[d].size()),
                   domains[d]->num_users);
    for (int person : user_to_person[d]) {
      NMCDR_CHECK_GE(person, -1);
      NMCDR_CHECK_LT(person, num_persons);
    }
  }
}

MultiDomainNmcdrModel::MultiDomainNmcdrModel(const MultiDomainView& view,
                                             const NmcdrConfig& config,
                                             uint64_t seed,
                                             float learning_rate)
    : view_(view), config_(config), rng_(seed) {
  view_.CheckConsistency();
  const int d = config_.hidden_dim;
  domains_.resize(view_.num_domains());
  for (int k = 0; k < view_.num_domains(); ++k) {
    DomainState& dom = domains_[k];
    const DomainData& data = *view_.domains[k];
    const InteractionGraph& graph = *view_.train_graphs[k];
    const std::string prefix = "d" + std::to_string(k);
    dom.user_emb = store_.Register(
        prefix + ".user_emb",
        Matrix::Gaussian(data.num_users, d, &rng_, 0.f, 0.1f));
    dom.item_emb = store_.Register(
        prefix + ".item_emb",
        Matrix::Gaussian(data.num_items, d, &rng_, 0.f, 0.1f));
    dom.encoder = std::make_unique<HeteroGraphEncoder>(
        &store_, prefix, d, config_.hge_layers, &rng_, config_.gnn_kernel);
    dom.intra = std::make_unique<IntraMatchingComponent>(
        &store_, prefix + ".intra", d, &rng_, config_.gate_fusion,
        config_.shared_intra_transform);
    dom.inter_self =
        std::make_unique<ag::Linear>(&store_, prefix + ".self", d, d, &rng_);
    dom.inter_other =
        std::make_unique<ag::Linear>(&store_, prefix + ".other", d, d, &rng_);
    dom.gate_self =
        std::make_unique<ag::Linear>(&store_, prefix + ".gate_s", d, d, &rng_);
    dom.gate_other =
        std::make_unique<ag::Linear>(&store_, prefix + ".gate_o", d, d, &rng_);
    dom.w_cross =
        store_.Register(prefix + ".w_cross", Matrix::Xavier(d, d, &rng_));
    dom.complement = std::make_unique<ComplementingComponent>(
        &store_, prefix + ".comp", d, &rng_);
    dom.prediction = std::make_unique<PredictionLayer>(
        &store_, prefix + ".pred", d, config_.mlp_hidden, &rng_);
    dom.adj_ui = graph.NormalizedUserItemAdj();
    dom.adj_iu = graph.NormalizedItemUserAdj();
    auto neighbors = std::make_shared<std::vector<std::vector<int>>>(
        graph.num_users());
    for (int u = 0; u < graph.num_users(); ++u) {
      (*neighbors)[u] = graph.UserNeighbors(u);
    }
    dom.neighbors = neighbors;
    dom.pools = BuildMatchingPools(graph, config_.k_head);
    dom.graph = &graph;
    dom.person_to_user.assign(view_.num_persons, -1);
    for (int u = 0; u < data.num_users; ++u) {
      const int person = view_.user_to_person[k][u];
      if (person >= 0) dom.person_to_user[person] = u;
    }
    dom.non_overlap_pool.clear();
    dom.non_overlap_pool.reserve(data.num_users);
    for (int u = 0; u < data.num_users; ++u) {
      // Non-overlapped from the perspective of other domains: users whose
      // person id is unknown or present in this domain only.
      const int person = view_.user_to_person[k][u];
      bool elsewhere = false;
      if (person >= 0) {
        for (int j = 0; j < view_.num_domains(); ++j) {
          if (j == k) continue;
          for (int v : view_.user_to_person[j]) {
            if (v == person) {
              elsewhere = true;
              break;
            }
          }
          if (elsewhere) break;
        }
      }
      if (!elsewhere) dom.non_overlap_pool.push_back(u);
    }
  }
  optimizer_ = std::make_unique<ag::Adam>(&store_, learning_rate,
                                          /*beta1=*/0.9f, /*beta2=*/0.999f,
                                          /*eps=*/1e-8f,
                                          /*weight_decay=*/1e-4f);
}

std::vector<ag::Tensor> MultiDomainNmcdrModel::ForwardAll(
    Rng* rng, bool force_candidate_refresh) {
  const int k_domains = num_domains();
  std::vector<ag::Tensor> h(k_domains);

  // Stage g1 + intra matching per domain.
  for (int k = 0; k < k_domains; ++k) {
    DomainState& dom = domains_[k];
    h[k] = dom.encoder->Forward(dom.user_emb, dom.item_emb, dom.adj_ui,
                                dom.adj_iu, dom.neighbors);
    if (config_.use_intra) {
      const std::vector<int> heads =
          SamplePool(dom.pools.head_users, config_.matching_neighbors, rng);
      const std::vector<int> tails =
          SamplePool(dom.pools.tail_users, config_.matching_neighbors, rng);
      h[k] = dom.intra->Forward(h[k], heads, tails);
    }
  }

  // Inter matching across all other domains (Eqs. 12-17 generalized):
  // self message = mean of the person's representations in the other
  // domains where the link is visible; other message = pooled mean over
  // sampled non-overlap users of every other domain.
  std::vector<ag::Tensor> next(k_domains);
  if (config_.use_inter && k_domains > 1) {
    for (int k = 0; k < k_domains; ++k) {
      DomainState& dom = domains_[k];
      const int n = view_.domains[k]->num_users;

      // Self message, averaged over linked source domains.
      ag::Tensor self_sum;
      Matrix link_counts(n, 1);
      for (int j = 0; j < k_domains; ++j) {
        if (j == k) continue;
        std::vector<int> idx(n, 0);
        Matrix mask(n, 1);
        bool any = false;
        for (int u = 0; u < n; ++u) {
          const int person = view_.user_to_person[k][u];
          const int counterpart =
              person >= 0 ? domains_[j].person_to_user[person] : -1;
          if (counterpart >= 0) {
            idx[u] = counterpart;
            mask.At(u, 0) = 1.f;
            link_counts.At(u, 0) += 1.f;
            any = true;
          }
        }
        if (!any) continue;
        ag::Tensor gathered = ag::ScaleRows(ag::Embedding(h[j], idx),
                                            ag::Tensor(std::move(mask)));
        self_sum = self_sum.defined() ? ag::Add(self_sum, gathered)
                                      : gathered;
      }
      ag::Tensor u_self;
      if (self_sum.defined()) {
        Matrix inv(n, 1);
        for (int u = 0; u < n; ++u) {
          const float c = link_counts.At(u, 0);
          inv.At(u, 0) = c > 0.f ? 1.f / c : 0.f;
        }
        u_self = ag::Relu(dom.inter_self->Forward(
            ag::ScaleRows(self_sum, ag::Tensor(std::move(inv)))));
      } else {
        u_self = ag::Tensor(Matrix(n, config_.hidden_dim));
      }

      // Other message: pooled over all other domains' sampled pools.
      ag::Tensor pooled_sum;
      int pooled_domains = 0;
      for (int j = 0; j < k_domains; ++j) {
        if (j == k) continue;
        const std::vector<int> sample = SamplePool(
            domains_[j].non_overlap_pool, config_.matching_neighbors, rng);
        if (sample.empty()) continue;
        ag::Tensor pooled = ag::ColMean(ag::Embedding(h[j], sample));
        pooled_sum =
            pooled_sum.defined() ? ag::Add(pooled_sum, pooled) : pooled;
        ++pooled_domains;
      }
      ag::Tensor u_other;
      if (pooled_domains > 0) {
        u_other = ag::Relu(ag::TileRows(
            dom.inter_other->Forward(
                ag::Scale(pooled_sum, 1.f / pooled_domains)),
            n));
      } else {
        u_other = ag::Tensor(Matrix(n, config_.hidden_dim));
      }

      // Eq. 15 with the domain's own W_cross both ways (a shared pair per
      // ordered domain couple would be quadratic in K).
      ag::Tensor g3_star =
          ag::Add(ag::MatMul(h[k], dom.w_cross),
                  ag::MatMul(u_self, ag::OneMinus(dom.w_cross)));
      ag::Tensor fused;
      if (config_.gate_fusion) {
        ag::Tensor gate = ag::Sigmoid(ag::Add(dom.gate_self->Forward(g3_star),
                                              dom.gate_other->Forward(u_other)));
        fused = ag::Tanh(ag::Add(ag::Hadamard(ag::OneMinus(gate), g3_star),
                                 ag::Hadamard(gate, u_other)));
      } else {
        fused = ag::Tanh(ag::Add(g3_star, u_other));
      }
      next[k] = ag::Add(fused, h[k]);
    }
    h = next;
  }

  // Complementing per domain.
  const bool refresh =
      force_candidate_refresh ||
      steps_ % std::max(1, config_.complement_resample_every) == 0;
  for (int k = 0; k < k_domains; ++k) {
    DomainState& dom = domains_[k];
    if (!config_.use_complement) continue;
    if (refresh || dom.complement_cache == nullptr) {
      dom.complement_cache = BuildComplementCandidates(
          *dom.graph, config_.complement_candidates,
          config_.complement_observed_only, rng);
    }
    h[k] = dom.complement->Forward(h[k], dom.item_emb, dom.complement_cache);
  }
  return h;
}

float MultiDomainNmcdrModel::TrainStep(
    const std::vector<LabeledBatch>& batches) {
  NMCDR_CHECK_EQ(static_cast<int>(batches.size()), num_domains());
  bool any = false;
  for (const LabeledBatch& b : batches) any |= !b.empty();
  if (!any) return 0.f;

  std::vector<ag::Tensor> reps = ForwardAll(&rng_);
  ag::Tensor total;
  for (int k = 0; k < num_domains(); ++k) {
    const LabeledBatch& batch = batches[k];
    if (batch.empty()) continue;
    const DomainState& dom = domains_[k];
    const ag::Tensor logits = dom.prediction->Forward(
        ag::Embedding(reps[k], batch.users),
        ag::Embedding(dom.item_emb, batch.items));
    ag::Tensor loss = ag::BceWithLogits(logits, batch.labels);
    total = total.defined() ? ag::Add(total, loss) : loss;
  }
  const float value = total.value().At(0, 0);
  ag::Backward(total);
  if (config_.grad_clip > 0.f) store_.ClipGradNorm(config_.grad_clip);
  optimizer_->Step();
  ++steps_;
  reps_dirty_ = true;
  return value;
}

void MultiDomainNmcdrModel::RefreshEvalReps() {
  if (!reps_dirty_) return;
  ag::NoGradGuard no_grad;
  Rng eval_rng(0xE7A2ULL);
  std::vector<ag::Tensor> reps =
      ForwardAll(&eval_rng, /*force_candidate_refresh=*/true);
  cached_reps_.clear();
  cached_reps_.reserve(reps.size());
  for (const ag::Tensor& t : reps) cached_reps_.push_back(t.value());
  for (DomainState& dom : domains_) dom.complement_cache = nullptr;
  reps_dirty_ = false;
}

std::vector<float> MultiDomainNmcdrModel::Score(
    int domain, const std::vector<int>& users,
    const std::vector<int>& items) {
  NMCDR_CHECK_GE(domain, 0);
  NMCDR_CHECK_LT(domain, num_domains());
  NMCDR_CHECK_EQ(users.size(), items.size());
  RefreshEvalReps();
  ag::NoGradGuard no_grad;
  const DomainState& dom = domains_[domain];
  const ag::Tensor user_rows{GatherRows(cached_reps_[domain], users)};
  const ag::Tensor item_rows{GatherRows(dom.item_emb.value(), items)};
  const ag::Tensor logits = dom.prediction->Forward(user_rows, item_rows);
  std::vector<float> out(users.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = logits.value().At(static_cast<int>(i), 0);
  }
  return out;
}

bool MultiDomainNmcdrModel::FreezeDomain(int domain, FrozenDomainState* out) {
  NMCDR_CHECK_GE(domain, 0);
  NMCDR_CHECK_LT(domain, num_domains());
  RefreshEvalReps();
  const DomainState& dom = domains_[domain];
  out->user_reps = cached_reps_[domain];
  out->item_reps = dom.item_emb.value();
  out->head = dom.prediction->Freeze();
  return true;
}

}  // namespace nmcdr
