#include "core/complementing.h"

#include <algorithm>

namespace nmcdr {

ComplementingComponent::ComplementingComponent(ag::ParameterStore* store,
                                               const std::string& name,
                                               int dim, Rng* rng)
    : ref_(store, name + ".ref", dim, dim, rng) {}

ag::Tensor ComplementingComponent::Forward(
    const ag::Tensor& users, const ag::Tensor& items,
    const std::shared_ptr<const std::vector<std::vector<int>>>& candidates)
    const {
  // Eq. 18: alpha = softmax over candidates of u . v; the weighted item
  // mix sum_j alpha_j v_j comes out of the fused attention op, and
  // Eq. 19's (sum_j alpha_j v_j) W_ref + b_ref is the linear below.
  ag::Tensor mixed = ag::NeighborAttention(users, items, candidates);
  return ag::Add(users, ref_.Forward(mixed));
}

std::shared_ptr<const std::vector<std::vector<int>>> BuildComplementCandidates(
    const InteractionGraph& train_graph, int extra, bool observed_only,
    Rng* rng) {
  auto candidates = std::make_shared<std::vector<std::vector<int>>>(
      train_graph.num_users());
  const int num_items = train_graph.num_items();
  for (int u = 0; u < train_graph.num_users(); ++u) {
    std::vector<int>& list = (*candidates)[u];
    list = train_graph.UserNeighbors(u);
    if (observed_only || extra <= 0) continue;
    const int budget = std::min(extra, num_items - train_graph.UserDegree(u));
    list.reserve(list.size() + budget);
    // "Potential missing interactions": propose items from the user's
    // two-hop neighbourhood (items of users who share an item with u) —
    // plausible virtual links rather than uniform noise. Draw a co-user,
    // then one of its items; fall back to uniform when the walk stalls.
    int added = 0, attempts = 0;
    while (added < budget && attempts++ < budget * 20 + 20) {
      int item = -1;
      const std::vector<int>& own = train_graph.UserNeighbors(u);
      if (!own.empty() && rng->UniformDouble() < 0.8) {
        const int via = own[rng->NextUint64(own.size())];
        const std::vector<int>& co_users = train_graph.ItemNeighbors(via);
        const int w = co_users[rng->NextUint64(co_users.size())];
        const std::vector<int>& w_items = train_graph.UserNeighbors(w);
        item = w_items[rng->NextUint64(w_items.size())];
      } else {
        item = static_cast<int>(rng->NextUint64(num_items));
      }
      if (train_graph.HasInteraction(u, item)) continue;
      if (std::find(list.begin() + train_graph.UserDegree(u), list.end(),
                    item) != list.end()) {
        continue;
      }
      list.push_back(item);
      ++added;
    }
  }
  return candidates;
}

}  // namespace nmcdr
