#ifndef NMCDR_CORE_NMCDR_MODEL_H_
#define NMCDR_CORE_NMCDR_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "autograd/optimizer.h"
#include "core/complementing.h"
#include "core/hetero_encoder.h"
#include "core/inter_matching.h"
#include "core/intra_matching.h"
#include "core/nmcdr_config.h"
#include "core/prediction.h"
#include "core/rec_model.h"
#include "graph/sampling.h"

namespace nmcdr {

/// NMCDR (the paper's contribution, §II): heterogeneous graph encoder →
/// stacked intra/inter node matching blocks → intra node complementing →
/// per-domain prediction, trained with the companion objectives of Eq. 22
/// and the total loss of Eq. 24 for both domains simultaneously.
class NmcdrModel : public RecModel {
 public:
  /// `learning_rate` feeds the internal Adam optimizer (§III.A.4).
  NmcdrModel(const ScenarioView& view, const NmcdrConfig& config,
             uint64_t seed, float learning_rate = 1e-3f);

  std::string name() const override { return "NMCDR"; }
  float TrainStep(const LabeledBatch& batch_z,
                  const LabeledBatch& batch_zbar) override;
  std::vector<float> Score(DomainSide side, const std::vector<int>& users,
                           const std::vector<int>& items) override;
  ag::ParameterStore* params() override { return &store_; }
  void InvalidateCaches() override { reps_dirty_ = true; }
  bool FreezeDomain(DomainSide side, FrozenDomainState* out) override;

  /// User representations after each module, for the Fig. 5 analysis:
  /// g0 = embedding table, g1 = graph encoder, g2 = intra matching,
  /// g3 = inter matching, g4 = complementing.
  struct StageReps {
    Matrix g0, g1, g2, g3, g4;
  };
  StageReps ComputeStageReps(DomainSide side);

  /// The Eq. 31 instability upper bound (with C_sf = C_sp = 1), averaged
  /// over the domain's users. Exposed so tests can check the perturbation
  /// property and benches can report the robustness/discernibility
  /// trade-off of §II.H.
  float StabilityUpperBound(DomainSide side) const;

  const NmcdrConfig& config() const { return config_; }

 private:
  struct DomainState {
    ag::Tensor user_emb;  // U^Z of Eq. 1
    ag::Tensor item_emb;  // V^Z of Eq. 1
    std::unique_ptr<HeteroGraphEncoder> encoder;
    std::vector<std::unique_ptr<IntraMatchingComponent>> intra;
    std::vector<std::unique_ptr<InterMatchingComponent>> inter;
    std::vector<std::unique_ptr<ComplementingComponent>> complement;
    std::unique_ptr<PredictionLayer> prediction;
    ag::Tensor w_cross;  // W_cross of Eq. 15
    std::shared_ptr<const CsrMatrix> adj_ui;
    std::shared_ptr<const CsrMatrix> adj_iu;
    std::shared_ptr<const std::vector<std::vector<int>>> neighbors;
    /// Complement candidate lists, refreshed every
    /// `complement_resample_every` steps (they mix observed neighbours
    /// with sampled proposals; resampling every step is pure overhead).
    std::shared_ptr<const std::vector<std::vector<int>>> complement_cache;
    MatchingPools pools;
    /// This domain's users with no (visible) overlap link — the pool the
    /// OTHER domain samples its Eq. 13 "other" messages from.
    std::vector<int> non_overlap_pool;
    /// Per user: linked row in the other domain, or -1.
    const std::vector<int>* self_index = nullptr;
    const InteractionGraph* graph = nullptr;
  };

  struct StageTensors {
    ag::Tensor g0, g1, g2, g3, g4;
  };

  void InitDomain(DomainSide side, DomainState* dom, Rng* rng);

  /// Full forward of both domains with fresh pool/candidate samples.
  /// `force_candidate_refresh` rebuilds the complement candidates from
  /// `rng` regardless of the resample schedule — evaluation paths use it
  /// so cached representations are a pure function of the parameters.
  void ForwardBoth(Rng* rng, StageTensors* z, StageTensors* zbar,
                   bool force_candidate_refresh = false);

  struct DomainLosses {
    ag::Tensor companion;  // L_CO (Eq. 22), undefined when batch empty
    ag::Tensor cls;        // L_CLS (Eq. 23), undefined when batch empty
  };
  DomainLosses ComputeDomainLosses(const StageTensors& stages,
                                   const DomainState& dom,
                                   const LabeledBatch& batch) const;

  /// Recomputes the cached evaluation representations if stale.
  void RefreshEvalReps();

  NmcdrConfig config_;
  ScenarioView view_;
  ag::ParameterStore store_;
  Rng rng_;
  DomainState z_;
  DomainState zbar_;
  ag::Tensor companion_log_vars_;  // [1,4]; dynamic_companion_weights only
  std::unique_ptr<ag::Adam> optimizer_;

  bool reps_dirty_ = true;
  int64_t steps_ = 0;
  Matrix cached_g4_z_;
  Matrix cached_g4_zbar_;
};

}  // namespace nmcdr

#endif  // NMCDR_CORE_NMCDR_MODEL_H_
