#ifndef NMCDR_CORE_PREDICTION_H_
#define NMCDR_CORE_PREDICTION_H_

#include <string>
#include <vector>

#include "autograd/nn.h"

namespace nmcdr {

/// Prediction layer (§II.F, Eq. 20): stacked MLPs over [u || v] plus an
/// explicit weighted inner-product (matching) term,
/// logit = MLP([u||v]) + w . (u ⊙ v).
/// Returns logits (the sigmoid lives inside the BCE loss for numerical
/// stability, and ranking is monotone in the logit). Port note: at D=128
/// the paper's MLP can approximate the inner product; at this port's D=16
/// the explicit term restores that capacity (DESIGN.md §1).
class PredictionLayer {
 public:
  PredictionLayer(ag::ParameterStore* store, const std::string& name,
                  int dim, const std::vector<int>& hidden, Rng* rng);

  /// `user_rows` and `item_rows` are [B,D] each; returns [B,1] logits.
  ag::Tensor Forward(const ag::Tensor& user_rows,
                     const ag::Tensor& item_rows) const;

  /// Spectral norm of the first MLP transform (W_a^3 of Eq. 31).
  float FirstLayerSpectralNorm() const;

 private:
  ag::Mlp mlp_;
  ag::Linear gmf_;  // weighted product term over u ⊙ v
};

}  // namespace nmcdr

#endif  // NMCDR_CORE_PREDICTION_H_
