#ifndef NMCDR_CORE_PREDICTION_H_
#define NMCDR_CORE_PREDICTION_H_

#include <string>
#include <vector>

#include "autograd/nn.h"

namespace nmcdr {

/// Autograd-free frozen copy of a PredictionLayer, the scoring head the
/// serving layer (src/serving) evaluates against snapshot tables. The
/// first MLP layer is pre-split at the [u || v] concatenation boundary so
/// engines can score candidate blocks without materializing the
/// concatenation; because the dense MatMul kernel accumulates into the
/// output in k-order, summing the user half first and the item half on
/// top reproduces the trainer path bit-for-bit.
struct FrozenPredictionHead {
  Matrix w0_user;  // rows 0..D-1 of the first MLP weight, [D, H]
  Matrix w0_item;  // rows D..2D-1, [D, H]
  Matrix b0;       // [1, H]
  /// Remaining MLP layers (weight, bias) past the first.
  std::vector<Matrix> w;
  std::vector<Matrix> b;
  ag::Activation hidden_act = ag::Activation::kRelu;
  Matrix gmf_w;  // [D, 1], the weighted-product term of Eq. 20
  Matrix gmf_b;  // [1, 1]

  int dim() const { return w0_user.rows(); }
  bool empty() const { return w0_user.empty(); }

  /// [B,D] user rows x [B,D] item rows -> [B,1] logits, bit-equal to
  /// PredictionLayer::Forward on the same rows.
  Matrix Forward(const Matrix& user_rows, const Matrix& item_rows) const;

  /// Finishes the forward pass from a first-layer pre-activation `h0`
  /// [B,H] (user+item partial sums, bias NOT yet added) and the per-row
  /// weighted products `gmf_dot` [B,1] (= (u (.) v) . gmf_w, bias NOT yet
  /// added). Split out so engines can precompute either input per block.
  Matrix ForwardFromHidden(const Matrix& h0, const Matrix& gmf_dot) const;
};

/// Prediction layer (§II.F, Eq. 20): stacked MLPs over [u || v] plus an
/// explicit weighted inner-product (matching) term,
/// logit = MLP([u||v]) + w . (u ⊙ v).
/// Returns logits (the sigmoid lives inside the BCE loss for numerical
/// stability, and ranking is monotone in the logit). Port note: at D=128
/// the paper's MLP can approximate the inner product; at this port's D=16
/// the explicit term restores that capacity (DESIGN.md §1).
class PredictionLayer {
 public:
  PredictionLayer(ag::ParameterStore* store, const std::string& name,
                  int dim, const std::vector<int>& hidden, Rng* rng);

  /// `user_rows` and `item_rows` are [B,D] each; returns [B,1] logits.
  ag::Tensor Forward(const ag::Tensor& user_rows,
                     const ag::Tensor& item_rows) const;

  /// Copies the current weights into an autograd-free head whose Forward
  /// is bit-equal to this layer's.
  FrozenPredictionHead Freeze() const;

  /// Spectral norm of the first MLP transform (W_a^3 of Eq. 31).
  float FirstLayerSpectralNorm() const;

 private:
  ag::Mlp mlp_;
  ag::Linear gmf_;  // weighted product term over u ⊙ v
};

}  // namespace nmcdr

#endif  // NMCDR_CORE_PREDICTION_H_
