#ifndef NMCDR_CORE_REC_MODEL_H_
#define NMCDR_CORE_REC_MODEL_H_

#include <string>
#include <vector>

#include "autograd/nn.h"
#include "core/prediction.h"
#include "data/dataset.h"
#include "graph/interaction_graph.h"

namespace nmcdr {

/// Which of the two domains of a CdrScenario a call refers to.
enum class DomainSide { kZ, kZbar };

/// A mini-batch of labeled user-item pairs (1 = observed interaction,
/// 0 = sampled negative) within one domain.
struct LabeledBatch {
  std::vector<int> users;
  std::vector<int> items;
  std::vector<float> labels;

  int size() const { return static_cast<int>(users.size()); }
  bool empty() const { return users.empty(); }
};

/// Everything a model may see at training time: the scenario (with the
/// K_u-masked overlap links), the leave-one-out splits, and interaction
/// graphs built from the TRAIN portions only (test positives must never
/// leak into message passing). All pointers outlive the model.
struct ScenarioView {
  const CdrScenario* scenario = nullptr;
  const DomainSplit* split_z = nullptr;
  const DomainSplit* split_zbar = nullptr;
  const InteractionGraph* train_graph_z = nullptr;
  const InteractionGraph* train_graph_zbar = nullptr;

  const DomainData& domain(DomainSide side) const {
    return side == DomainSide::kZ ? scenario->z : scenario->zbar;
  }
  const InteractionGraph& train_graph(DomainSide side) const {
    return side == DomainSide::kZ ? *train_graph_z : *train_graph_zbar;
  }
  const DomainSplit& split(DomainSide side) const {
    return side == DomainSide::kZ ? *split_z : *split_zbar;
  }
};

/// One domain of a model frozen for online serving: the final user
/// representations Score() ranks with, the item embedding table, and the
/// frozen prediction head — plain matrices, no autograd graph. The
/// serving layer (src/serving) snapshots, persists, and concurrently
/// scores against this state.
struct FrozenDomainState {
  Matrix user_reps;  // [num_users, D]
  Matrix item_reps;  // [num_items, D]
  FrozenPredictionHead head;

  int num_users() const { return user_reps.rows(); }
  int num_items() const { return item_reps.rows(); }
  int dim() const { return user_reps.cols(); }

  /// Const, autograd-free counterpart of RecModel::Score: returns
  /// bit-equal logits for the same (user, item) pairs. Safe to call
  /// concurrently.
  std::vector<float> Score(const std::vector<int>& users,
                           const std::vector<int>& items) const;
};

/// Common interface of NMCDR and every baseline. A model is trained by
/// repeated TrainStep calls (one mini-batch per domain) and evaluated via
/// Score, which must not record autograd history or mutate parameters.
class RecModel {
 public:
  virtual ~RecModel() = default;

  /// Model identifier as used in the paper's tables (e.g. "NMCDR", "PLE").
  virtual std::string name() const = 0;

  /// Runs one forward/backward/update step on a batch from each domain
  /// (either batch may be empty for single-domain steps) and returns the
  /// total loss value of the step.
  virtual float TrainStep(const LabeledBatch& batch_z,
                          const LabeledBatch& batch_zbar) = 0;

  /// Affinity scores for the given user-item id pairs in one domain.
  /// Higher means more preferred. Sizes of `users` and `items` must match.
  virtual std::vector<float> Score(DomainSide side,
                                   const std::vector<int>& users,
                                   const std::vector<int>& items) = 0;

  /// The model's trainable parameters (optimizers iterate this store).
  virtual ag::ParameterStore* params() = 0;

  /// Called after parameters were mutated outside TrainStep (e.g. the
  /// trainer restoring a best-validation checkpoint); models that cache
  /// full-graph representations must drop them here.
  virtual void InvalidateCaches() {}

  /// Freezes one domain into an autograd-free FrozenDomainState — the
  /// serving snapshot path. Implementations may refresh internal
  /// evaluation caches, but scoring behaviour must be unchanged
  /// afterwards and the frozen state must reproduce Score() bit-exactly.
  /// Returns false when the model has no frozen representation (default).
  virtual bool FreezeDomain(DomainSide side, FrozenDomainState* out) {
    (void)side;
    (void)out;
    return false;
  }

  /// Total scalar parameter count (the §III.B.6 efficiency statistic).
  int64_t ParameterCount() { return params()->ParameterCount(); }
};

/// Hyper-parameters shared by all models so comparisons are fair
/// (§III.A.4: "we adopt the same hyper-parameters for all the approaches").
struct CommonHyper {
  /// Embedding dimension D (paper: 128; scaled for CPU).
  int embed_dim = 16;
  /// Hidden sizes of prediction MLPs.
  std::vector<int> mlp_hidden = {32};
  uint64_t seed = 42;
};

}  // namespace nmcdr

#endif  // NMCDR_CORE_REC_MODEL_H_
