#include "core/hetero_encoder.h"

#include "util/check.h"

namespace nmcdr {

HeteroGraphEncoder::HeteroGraphEncoder(ag::ParameterStore* store,
                                       const std::string& name, int dim,
                                       int num_layers, Rng* rng,
                                       GnnKernel kernel)
    : kernel_(kernel) {
  NMCDR_CHECK_GE(num_layers, 1);
  user_layers_.reserve(num_layers);
  item_layers_.reserve(num_layers);
  for (int l = 0; l < num_layers; ++l) {
    user_layers_.emplace_back(store, name + ".hge_u" + std::to_string(l), dim,
                              dim, rng);
    if (l > 0) {
      item_layers_.emplace_back(store, name + ".hge_v" + std::to_string(l),
                                dim, dim, rng);
    }
  }
}

ag::Tensor HeteroGraphEncoder::Forward(
    const ag::Tensor& users, const ag::Tensor& items,
    const std::shared_ptr<const CsrMatrix>& adj_ui,
    const std::shared_ptr<const CsrMatrix>& adj_iu,
    const std::shared_ptr<const std::vector<std::vector<int>>>&
        user_neighbors) const {
  if (kernel_ == GnnKernel::kGat) NMCDR_CHECK(user_neighbors != nullptr);
  ag::Tensor u = users;
  ag::Tensor v = items;
  for (size_t l = 0; l < user_layers_.size(); ++l) {
    if (l > 0) {
      // Item-side Eq. 3/4: items aggregate their interacting users.
      const ag::Linear& vl = item_layers_[l - 1];
      ag::Tensor user_msg = vl.Forward(u);
      v = ag::Add(v, ag::Relu(ag::Add(ag::MatMul(v, vl.weight()),
                                      ag::SpMM(adj_iu, user_msg))));
    }
    // User-side Eq. 3/4: the item message (v W + b) aggregated with the
    // 1/|N_u| Laplacian norm (adjacency rows sum to 1, so the bias
    // survives exactly once), plus the self message u W.
    const ag::Linear& ul = user_layers_[l];
    ag::Tensor item_msg = ul.Forward(v);
    ag::Tensor self_msg = ag::MatMul(u, ul.weight());
    ag::Tensor aggregated =
        kernel_ == GnnKernel::kGat
            // Attention aggregation: alpha = softmax over N_u of the
            // transformed query/message dot products.
            ? ag::NeighborAttention(self_msg, item_msg, user_neighbors)
            : ag::SpMM(adj_ui, item_msg);
    u = ag::Add(u, ag::Relu(ag::Add(self_msg, aggregated)));
  }
  return u;
}

float HeteroGraphEncoder::FirstLayerSpectralNorm() const {
  return user_layers_.front().weight().value().SpectralNorm();
}

}  // namespace nmcdr
