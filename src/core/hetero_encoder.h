#ifndef NMCDR_CORE_HETERO_ENCODER_H_
#define NMCDR_CORE_HETERO_ENCODER_H_

#include <memory>
#include <string>
#include <vector>

#include "autograd/nn.h"
#include "core/nmcdr_config.h"
#include "tensor/matrix_ops.h"

namespace nmcdr {

/// Heterogeneous graph encoder (§II.C, Eqs. 2-4): per layer,
///   u_g1 = ReLU( u W_hge  +  sum_{v in N_u} (1/|N_u|) (v W_hge + b_hge) )
/// i.e. a self message through the shared transform plus the Laplacian-
/// normalized neighbour aggregation, executed as one SpMM over the whole
/// domain.
///
/// With num_layers >= 2, layers alternate an item-side update (items
/// aggregate their users by the same Eq. 3/4 message form) before the
/// user-side update, so a 2-layer stack gives each user visibility into
/// user-item-user co-occurrence — the "any GNN kernel" generality the
/// paper notes under Eq. 3. Layer outputs are added residually to the
/// embeddings (the LightGCN/NGCF layer-sum convention) so the raw
/// user-item matching geometry survives the stack.
class HeteroGraphEncoder {
 public:
  HeteroGraphEncoder(ag::ParameterStore* store, const std::string& name,
                     int dim, int num_layers, Rng* rng,
                     GnnKernel kernel = GnnKernel::kVanilla);

  /// Computes the user representations u_g1 from the initial embeddings.
  /// `adj_ui` is NormalizedUserItemAdj() and `adj_iu` is
  /// NormalizedItemUserAdj() of the TRAIN graph.
  /// `user_neighbors` (per-user item lists) is required for the kGat
  /// kernel and ignored otherwise.
  ag::Tensor Forward(
      const ag::Tensor& users, const ag::Tensor& items,
      const std::shared_ptr<const CsrMatrix>& adj_ui,
      const std::shared_ptr<const CsrMatrix>& adj_iu,
      const std::shared_ptr<const std::vector<std::vector<int>>>&
          user_neighbors = nullptr) const;

  /// Spectral norm of the first user-side transform (W_a^1 = W_n^1 in the
  /// Eq. 31 stability bound).
  float FirstLayerSpectralNorm() const;

 private:
  std::vector<ag::Linear> user_layers_;
  std::vector<ag::Linear> item_layers_;  // empty entries for layer 0
  GnnKernel kernel_;
};

}  // namespace nmcdr

#endif  // NMCDR_CORE_HETERO_ENCODER_H_
