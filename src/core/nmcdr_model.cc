#include "core/nmcdr_model.h"

#include <algorithm>

#include "util/check.h"

namespace nmcdr {

NmcdrModel::NmcdrModel(const ScenarioView& view, const NmcdrConfig& config,
                       uint64_t seed, float learning_rate)
    : config_(config), view_(view), rng_(seed) {
  NMCDR_CHECK(view.scenario != nullptr);
  InitDomain(DomainSide::kZ, &z_, &rng_);
  InitDomain(DomainSide::kZbar, &zbar_, &rng_);
  z_.self_index = &view_.scenario->z_to_zbar;
  zbar_.self_index = &view_.scenario->zbar_to_z;
  if (config_.dynamic_companion_weights) {
    companion_log_vars_ = store_.Register("companion_log_vars", Matrix(1, 4));
  }
  optimizer_ = std::make_unique<ag::Adam>(&store_, learning_rate,
                                        /*beta1=*/0.9f,
                                        /*beta2=*/0.999f,
                                        /*eps=*/1e-8f,
                                        /*weight_decay=*/1e-4f);
}

void NmcdrModel::InitDomain(DomainSide side, DomainState* dom, Rng* rng) {
  const DomainData& data = view_.domain(side);
  const InteractionGraph& graph = view_.train_graph(side);
  const std::string prefix = side == DomainSide::kZ ? "z" : "zbar";
  const int d = config_.hidden_dim;

  dom->user_emb = store_.Register(
      prefix + ".user_emb",
      Matrix::Gaussian(data.num_users, d, rng, 0.f, 0.1f));
  dom->item_emb = store_.Register(
      prefix + ".item_emb",
      Matrix::Gaussian(data.num_items, d, rng, 0.f, 0.1f));
  dom->encoder = std::make_unique<HeteroGraphEncoder>(
      &store_, prefix, d, config_.hge_layers, rng, config_.gnn_kernel);
  dom->intra.reserve(config_.intra_inter_layers);
  dom->inter.reserve(config_.intra_inter_layers);
  for (int l = 0; l < config_.intra_inter_layers; ++l) {
    dom->intra.push_back(std::make_unique<IntraMatchingComponent>(
        &store_, prefix + ".intra" + std::to_string(l), d, rng,
        config_.gate_fusion, config_.shared_intra_transform));
    dom->inter.push_back(std::make_unique<InterMatchingComponent>(
        &store_, prefix + ".inter" + std::to_string(l), d, rng,
        config_.gate_fusion));
  }
  dom->complement.reserve(config_.complement_layers);
  for (int l = 0; l < config_.complement_layers; ++l) {
    dom->complement.push_back(std::make_unique<ComplementingComponent>(
        &store_, prefix + ".comp" + std::to_string(l), d, rng));
  }
  dom->prediction = std::make_unique<PredictionLayer>(
      &store_, prefix + ".pred", d, config_.mlp_hidden, rng);
  dom->w_cross =
      store_.Register(prefix + ".w_cross", Matrix::Xavier(d, d, rng));
  dom->adj_ui = graph.NormalizedUserItemAdj();
  dom->adj_iu = graph.NormalizedItemUserAdj();
  {
    auto neighbors = std::make_shared<std::vector<std::vector<int>>>(
        graph.num_users());
    for (int u = 0; u < graph.num_users(); ++u) {
      (*neighbors)[u] = graph.UserNeighbors(u);
    }
    dom->neighbors = neighbors;
  }
  dom->pools = BuildMatchingPools(graph, config_.k_head);
  dom->graph = &graph;
}

void NmcdrModel::ForwardBoth(Rng* rng, StageTensors* z, StageTensors* zbar,
                             bool force_candidate_refresh) {
  // Refresh the non-overlap pools (links are fixed per scenario, so this
  // could be cached; kept explicit for clarity and low cost).
  auto build_non_overlap = [](const std::vector<int>& self_index) {
    std::vector<int> pool;
    pool.reserve(self_index.size());
    for (size_t u = 0; u < self_index.size(); ++u) {
      if (self_index[u] < 0) pool.push_back(static_cast<int>(u));
    }
    return pool;
  };
  z_.non_overlap_pool = build_non_overlap(*z_.self_index);
  zbar_.non_overlap_pool = build_non_overlap(*zbar_.self_index);

  StageTensors* stages[2] = {z, zbar};
  DomainState* doms[2] = {&z_, &zbar_};

  // Stage g0/g1 per domain.
  for (int s = 0; s < 2; ++s) {
    DomainState& dom = *doms[s];
    stages[s]->g0 = dom.user_emb;
    stages[s]->g1 = dom.encoder->Forward(dom.user_emb, dom.item_emb,
                                         dom.adj_ui, dom.adj_iu,
                                         dom.neighbors);
  }

  // Stacked intra + inter blocks, advancing both domains in lockstep so
  // each inter block consumes the other domain's post-intra representation
  // of the same depth (Eq. 12 uses u_g2 of both domains).
  ag::Tensor h[2] = {stages[0]->g1, stages[1]->g1};
  for (int l = 0; l < config_.intra_inter_layers; ++l) {
    if (config_.use_intra) {
      for (int s = 0; s < 2; ++s) {
        DomainState& dom = *doms[s];
        const std::vector<int> heads =
            SamplePool(dom.pools.head_users, config_.matching_neighbors, rng);
        const std::vector<int> tails =
            SamplePool(dom.pools.tail_users, config_.matching_neighbors, rng);
        h[s] = dom.intra[l]->Forward(h[s], heads, tails);
      }
    }
    stages[0]->g2 = h[0];
    stages[1]->g2 = h[1];
    if (config_.use_inter) {
      ag::Tensor next[2];
      for (int s = 0; s < 2; ++s) {
        DomainState& dom = *doms[s];
        DomainState& other = *doms[1 - s];
        const std::vector<int> other_sample = SamplePool(
            other.non_overlap_pool, config_.matching_neighbors, rng);
        next[s] = dom.inter[l]->Forward(h[s], h[1 - s], *dom.self_index,
                                        other_sample, dom.w_cross,
                                        other.w_cross);
      }
      h[0] = next[0];
      h[1] = next[1];
    }
    stages[0]->g3 = h[0];
    stages[1]->g3 = h[1];
  }
  if (config_.intra_inter_layers == 0 ||
      (!config_.use_intra && !config_.use_inter)) {
    stages[0]->g2 = h[0];
    stages[1]->g2 = h[1];
    stages[0]->g3 = h[0];
    stages[1]->g3 = h[1];
  }

  // Intra node complementing (Eqs. 18-19). Candidate lists are refreshed
  // periodically rather than per step.
  const bool refresh_candidates =
      force_candidate_refresh ||
      steps_ % std::max(1, config_.complement_resample_every) == 0;
  for (int s = 0; s < 2; ++s) {
    DomainState& dom = *doms[s];
    if (config_.use_complement) {
      if (refresh_candidates || dom.complement_cache == nullptr) {
        dom.complement_cache = BuildComplementCandidates(
            *dom.graph, config_.complement_candidates,
            config_.complement_observed_only, rng);
      }
      for (int l = 0; l < config_.complement_layers; ++l) {
        h[s] = dom.complement[l]->Forward(h[s], dom.item_emb,
                                          dom.complement_cache);
      }
    }
    stages[s]->g4 = h[s];
  }
}

NmcdrModel::DomainLosses NmcdrModel::ComputeDomainLosses(
    const StageTensors& stages, const DomainState& dom,
    const LabeledBatch& batch) const {
  DomainLosses losses;
  if (batch.empty()) return losses;
  const ag::Tensor item_rows = ag::Embedding(dom.item_emb, batch.items);
  auto stage_loss = [&](const ag::Tensor& stage) {
    const ag::Tensor user_rows = ag::Embedding(stage, batch.users);
    return ag::BceWithLogits(dom.prediction->Forward(user_rows, item_rows),
                             batch.labels);
  };
  losses.cls = stage_loss(stages.g4);  // Eq. 23
  if (config_.use_companion) {
    // Eq. 22: the four companion stages share the prediction layer.
    const ag::Tensor* companion_stages[4] = {&stages.g0, &stages.g1,
                                             &stages.g2, &stages.g3};
    ag::Tensor total;
    for (int i = 0; i < 4; ++i) {
      ag::Tensor term;
      if (config_.dynamic_companion_weights) {
        // Uncertainty weighting: exp(-s_i) * L_i + s_i, s_i trainable.
        const ag::Tensor s_i = ag::SliceCols(companion_log_vars_, i, 1);
        term = ag::Add(ag::Hadamard(ag::Exp(ag::Scale(s_i, -1.f)),
                                    stage_loss(*companion_stages[i])),
                       s_i);
      } else {
        term = ag::Scale(stage_loss(*companion_stages[i]),
                         config_.companion_weights[i]);
      }
      total = total.defined() ? ag::Add(total, term) : term;
    }
    losses.companion = total;
  }
  return losses;
}

float NmcdrModel::TrainStep(const LabeledBatch& batch_z,
                            const LabeledBatch& batch_zbar) {
  if (batch_z.empty() && batch_zbar.empty()) return 0.f;
  StageTensors sz, szbar;
  ForwardBoth(&rng_, &sz, &szbar);

  const DomainLosses lz = ComputeDomainLosses(sz, z_, batch_z);
  const DomainLosses lzbar = ComputeDomainLosses(szbar, zbar_, batch_zbar);

  // Eq. 24: L = w5 CO_Z + w6 CO_Z̄ + w7 CLS_Z + w8 CLS_Z̄.
  ag::Tensor total;
  auto add_term = [&total](const ag::Tensor& t, float w) {
    if (!t.defined()) return;
    ag::Tensor term = ag::Scale(t, w);
    total = total.defined() ? ag::Add(total, term) : term;
  };
  add_term(lz.companion, config_.loss_weights[0]);
  add_term(lzbar.companion, config_.loss_weights[1]);
  add_term(lz.cls, config_.loss_weights[2]);
  add_term(lzbar.cls, config_.loss_weights[3]);
  NMCDR_CHECK(total.defined());

  const float loss_value = total.value().At(0, 0);
  ag::Backward(total);
  if (config_.grad_clip > 0.f) store_.ClipGradNorm(config_.grad_clip);
  optimizer_->Step();
  ++steps_;
  reps_dirty_ = true;
  return loss_value;
}

void NmcdrModel::RefreshEvalReps() {
  if (!reps_dirty_) return;
  ag::NoGradGuard no_grad;
  // Fixed seed: evaluation representations are deterministic given the
  // parameters, so repeated scoring is consistent within an evaluation.
  Rng eval_rng(0xE7A1ULL);
  StageTensors sz, szbar;
  ForwardBoth(&eval_rng, &sz, &szbar, /*force_candidate_refresh=*/true);
  cached_g4_z_ = sz.g4.value();
  cached_g4_zbar_ = szbar.g4.value();
  z_.complement_cache = nullptr;
  zbar_.complement_cache = nullptr;
  reps_dirty_ = false;
}

std::vector<float> NmcdrModel::Score(DomainSide side,
                                     const std::vector<int>& users,
                                     const std::vector<int>& items) {
  NMCDR_CHECK_EQ(users.size(), items.size());
  RefreshEvalReps();
  const Matrix& user_reps =
      side == DomainSide::kZ ? cached_g4_z_ : cached_g4_zbar_;
  const DomainState& dom = side == DomainSide::kZ ? z_ : zbar_;

  ag::NoGradGuard no_grad;
  ag::Tensor user_rows{GatherRows(user_reps, users)};
  ag::Tensor item_rows{GatherRows(dom.item_emb.value(), items)};
  const ag::Tensor logits = dom.prediction->Forward(user_rows, item_rows);
  std::vector<float> out(users.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = logits.value().At(static_cast<int>(i), 0);
  }
  return out;
}

bool NmcdrModel::FreezeDomain(DomainSide side, FrozenDomainState* out) {
  RefreshEvalReps();
  const DomainState& dom = side == DomainSide::kZ ? z_ : zbar_;
  out->user_reps = side == DomainSide::kZ ? cached_g4_z_ : cached_g4_zbar_;
  out->item_reps = dom.item_emb.value();
  out->head = dom.prediction->Freeze();
  return true;
}

NmcdrModel::StageReps NmcdrModel::ComputeStageReps(DomainSide side) {
  ag::NoGradGuard no_grad;
  Rng fixed_rng(20230101);
  StageTensors sz, szbar;
  ForwardBoth(&fixed_rng, &sz, &szbar, /*force_candidate_refresh=*/true);
  const StageTensors& s = side == DomainSide::kZ ? sz : szbar;
  return StageReps{s.g0.value(), s.g1.value(), s.g2.value(), s.g3.value(),
                   s.g4.value()};
}

float NmcdrModel::StabilityUpperBound(DomainSide side) const {
  const DomainState& dom = side == DomainSide::kZ ? z_ : zbar_;
  const InteractionGraph& graph = *dom.graph;
  // Eq. 31 with C_sf = C_sp = 1: ||W_a^3|| ( ||W_a^2|| ||W_a^1||
  //   + (sum_{v_j in N_u} 1/n_j)/(N-1) ||W_n^2|| ||W_n^1|| ),
  // averaged over users u. W^1 is the (shared) encoder transform, W^2 the
  // intra-matching head/tail transforms, W^3 the first prediction layer.
  const float w1 = dom.encoder->FirstLayerSpectralNorm();
  const float wa2 = dom.intra.empty() ? 1.f : dom.intra[0]->HeadSpectralNorm();
  const float wn2 = dom.intra.empty() ? 1.f : dom.intra[0]->TailSpectralNorm();
  const float wa3 = dom.prediction->FirstLayerSpectralNorm();
  const int n_users = graph.num_users();
  if (n_users <= 1) return 0.f;
  double mean_neighbor_term = 0.0;
  for (int u = 0; u < n_users; ++u) {
    double acc = 0.0;
    for (int v : graph.UserNeighbors(u)) {
      const int nj = graph.ItemDegree(v);
      if (nj > 0) acc += 1.0 / nj;
    }
    mean_neighbor_term += acc / (n_users - 1);
  }
  mean_neighbor_term /= n_users;
  return wa3 * (wa2 * w1 +
                static_cast<float>(mean_neighbor_term) * wn2 * w1);
}

}  // namespace nmcdr
