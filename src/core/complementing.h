#ifndef NMCDR_CORE_COMPLEMENTING_H_
#define NMCDR_CORE_COMPLEMENTING_H_

#include <memory>
#include <string>
#include <vector>

#include "autograd/nn.h"
#include "graph/interaction_graph.h"

namespace nmcdr {

/// Intra node complementing module (§II.E, Eqs. 18-19): per user, a
/// softmax "virtual link strength" over candidate items (Eq. 18) and a
/// residual update with the attention-weighted, transformed item mix
/// (Eq. 19), correcting under-represented (tail) user embeddings.
class ComplementingComponent {
 public:
  ComplementingComponent(ag::ParameterStore* store, const std::string& name,
                         int dim, Rng* rng);

  /// `candidates[i]` lists the item ids user i attends over (observed
  /// neighbours, optionally extended by sampled items; see
  /// NmcdrConfig::complement_observed_only).
  ag::Tensor Forward(
      const ag::Tensor& users, const ag::Tensor& items,
      const std::shared_ptr<const std::vector<std::vector<int>>>& candidates)
      const;

 private:
  ag::Linear ref_;
};

/// Builds the per-user candidate lists for the complementing attention:
/// the user's TRAIN neighbours plus (unless `observed_only`) `extra`
/// uniformly sampled non-interacted items — the "potential missing
/// interactions" the module is meant to recover.
std::shared_ptr<const std::vector<std::vector<int>>> BuildComplementCandidates(
    const InteractionGraph& train_graph, int extra, bool observed_only,
    Rng* rng);

}  // namespace nmcdr

#endif  // NMCDR_CORE_COMPLEMENTING_H_
