#ifndef NMCDR_UTIL_CSV_WRITER_H_
#define NMCDR_UTIL_CSV_WRITER_H_

#include <fstream>
#include <string>
#include <vector>

namespace nmcdr {

/// Minimal CSV writer; each bench writes its table next to the binary so the
/// series can be re-plotted outside this repo. Values containing commas or
/// quotes are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Check ok() before use.
  explicit CsvWriter(const std::string& path);

  /// True if the output file opened successfully.
  bool ok() const { return out_.good(); }

  /// Writes one row.
  void WriteRow(const std::vector<std::string>& cells);

 private:
  std::ofstream out_;
};

}  // namespace nmcdr

#endif  // NMCDR_UTIL_CSV_WRITER_H_
