#ifndef NMCDR_UTIL_FLAGS_H_
#define NMCDR_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

namespace nmcdr {

/// Minimal command-line flag parser for the CLI tool and examples.
/// Accepts `--name=value`, `--name value`, and bare `--name` (boolean
/// true); positional arguments are collected in order. Unknown flags are
/// kept (queryable) so callers can decide whether to reject them.
class FlagParser {
 public:
  /// Parses argv (argv[0] skipped). Later duplicates override earlier.
  FlagParser(int argc, const char* const* argv);

  /// True if `--name` was present in any form.
  bool Has(const std::string& name) const;

  /// String value of `--name`, or `default_value` when absent.
  std::string GetString(const std::string& name,
                        const std::string& default_value = "") const;

  /// Integer value; CHECK-fails if present but not parseable.
  int GetInt(const std::string& name, int default_value) const;

  /// Double value; CHECK-fails if present but not parseable.
  double GetDouble(const std::string& name, double default_value) const;

  /// Boolean: absent -> default; bare flag or "true"/"1" -> true;
  /// "false"/"0" -> false; anything else CHECK-fails.
  bool GetBool(const std::string& name, bool default_value) const;

  /// Comma-separated list value.
  std::vector<std::string> GetList(const std::string& name) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// All flag names seen, for unknown-flag validation.
  std::vector<std::string> FlagNames() const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace nmcdr

#endif  // NMCDR_UTIL_FLAGS_H_
