#ifndef NMCDR_UTIL_THREAD_POOL_H_
#define NMCDR_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace nmcdr {

/// The repo's single threading entry point: a fixed pool of workers behind
/// a task queue, plus the `ParallelFor` primitive every parallel kernel is
/// built on. Nothing outside src/util/thread_pool.* may construct
/// std::thread / std::async (enforced by the nmcdr_lint `banned-thread`
/// rule), so thread count, shutdown order, and sanitizer coverage are
/// decided in exactly one place.
///
/// `ParallelFor` uses deterministic static chunking: the chunk boundaries
/// are a pure function of (begin, end, grain, num_threads()), never of
/// timing or queue state. Kernels built on it write disjoint output
/// regions and keep the per-element floating-point operation order of the
/// serial code, so parallel results are bit-exact and independent of which
/// worker ran which chunk (see DESIGN.md §9).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 1). `num_threads` is the
  /// pool's parallelism: `ParallelFor` never splits a range into more
  /// chunks than this.
  explicit ThreadPool(int num_threads);

  /// Drains nothing: pending tasks are executed, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Tasks run so far (Submit tasks + ParallelFor chunks); for tests and
  /// stats.
  int64_t tasks_executed() const NMCDR_EXCLUDES(mu_);

  /// Enqueues a fire-and-forget task. The task must not throw (an escaped
  /// exception terminates the process) and must not block waiting on a
  /// condition another pool task will signal — ParallelFor from inside a
  /// task is safe (it runs inline), open-ended waits are not.
  void Submit(std::function<void()> task) NMCDR_EXCLUDES(mu_);

  /// Splits [begin, end) into at most num_threads() contiguous chunks of
  /// at least `grain` iterations each (sizes differ by at most one) and
  /// invokes `fn(chunk_begin, chunk_end)` for every chunk concurrently,
  /// returning once all chunks finished. Chunk boundaries are
  /// deterministic (see class comment). Runs inline on the calling thread
  /// when the range is a single chunk, num_threads() == 1, or the caller
  /// is itself a pool worker (re-entrancy never deadlocks). The first
  /// exception thrown by a chunk is rethrown on the calling thread after
  /// every chunk completed.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn)
      NMCDR_EXCLUDES(mu_);

  /// The process-wide shared pool, started lazily on first use and sized
  /// by SetSharedThreads() if called earlier, else the NMCDR_THREADS
  /// environment variable, else std::thread::hardware_concurrency().
  static ThreadPool* Shared();

  /// Overrides the shared pool's size. Only effective before the first
  /// Shared() call (the pool cannot be resized once its workers exist);
  /// returns false and changes nothing afterwards.
  static bool SetSharedThreads(int num_threads);

  /// The size Shared() has (if started) or would get (if not yet started).
  static int SharedThreads();

 private:
  void WorkerLoop() NMCDR_EXCLUDES(mu_);

  const int num_threads_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;  // GUARDED_BY(mu_)
  bool stopping_ = false;                    // GUARDED_BY(mu_)
  int64_t tasks_executed_ = 0;               // GUARDED_BY(mu_)
  std::vector<std::thread> workers_;
};

}  // namespace nmcdr

#endif  // NMCDR_UTIL_THREAD_POOL_H_
