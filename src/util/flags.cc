#include "util/flags.h"

#include <algorithm>
#include <cstdlib>

#include "util/check.h"

namespace nmcdr {

FlagParser::FlagParser(int argc, const char* const* argv) {
  positional_.reserve(argc > 0 ? argc - 1 : 0);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` unless the next token is another flag (then boolean).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "";
    }
  }
}

bool FlagParser::Has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? default_value : it->second;
}

int FlagParser::GetInt(const std::string& name, int default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  NMCDR_CHECK(end != nullptr && *end == '\0' && !it->second.empty());
  return static_cast<int>(v);
}

double FlagParser::GetDouble(const std::string& name,
                             double default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  NMCDR_CHECK(end != nullptr && *end == '\0' && !it->second.empty());
  return v;
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  const std::string& v = it->second;
  if (v.empty() || v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  NMCDR_CHECK(false);
  return default_value;
}

std::vector<std::string> FlagParser::GetList(const std::string& name) const {
  std::vector<std::string> out;
  const std::string value = GetString(name);
  // Upper bound: one element per comma plus the trailing token.
  out.reserve(std::count(value.begin(), value.end(), ',') + 1);
  std::string token;
  for (char c : value) {
    if (c == ',') {
      if (!token.empty()) out.push_back(token);
      token.clear();
    } else {
      token += c;
    }
  }
  if (!token.empty()) out.push_back(token);
  return out;
}

std::vector<std::string> FlagParser::FlagNames() const {
  std::vector<std::string> names;
  names.reserve(flags_.size());
  for (const auto& [name, value] : flags_) names.push_back(name);
  return names;
}

}  // namespace nmcdr
