#ifndef NMCDR_UTIL_CHECK_H_
#define NMCDR_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace nmcdr {
namespace internal_check {

/// Prints a fatal-check failure and aborts. Never returns.
[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* condition,
                                   const std::string& message) {
  std::fprintf(stderr, "[CHECK FAILED] %s:%d: %s %s\n", file, line, condition,
               message.c_str());
  std::abort();
}

/// Stringifies two operands for CHECK_XX failure messages.
template <typename A, typename B>
std::string FormatOperands(const A& a, const B& b) {
  std::ostringstream oss;
  oss << "(" << a << " vs. " << b << ")";
  return oss.str();
}

}  // namespace internal_check
}  // namespace nmcdr

/// Aborts with a diagnostic if `condition` is false. Active in all builds:
/// these guard programmer errors (bad shapes, out-of-range ids), which must
/// not silently corrupt results in Release benchmarks either.
#define NMCDR_CHECK(condition)                                          \
  do {                                                                  \
    if (!(condition)) {                                                 \
      ::nmcdr::internal_check::CheckFail(__FILE__, __LINE__,            \
                                         "CHECK(" #condition ")", "");  \
    }                                                                   \
  } while (0)

#define NMCDR_CHECK_OP(op, a, b)                                             \
  do {                                                                       \
    if (!((a)op(b))) {                                                       \
      ::nmcdr::internal_check::CheckFail(                                    \
          __FILE__, __LINE__, "CHECK(" #a " " #op " " #b ")",                \
          ::nmcdr::internal_check::FormatOperands((a), (b)));                \
    }                                                                        \
  } while (0)

#define NMCDR_CHECK_EQ(a, b) NMCDR_CHECK_OP(==, a, b)
#define NMCDR_CHECK_NE(a, b) NMCDR_CHECK_OP(!=, a, b)
#define NMCDR_CHECK_LT(a, b) NMCDR_CHECK_OP(<, a, b)
#define NMCDR_CHECK_LE(a, b) NMCDR_CHECK_OP(<=, a, b)
#define NMCDR_CHECK_GT(a, b) NMCDR_CHECK_OP(>, a, b)
#define NMCDR_CHECK_GE(a, b) NMCDR_CHECK_OP(>=, a, b)

#endif  // NMCDR_UTIL_CHECK_H_
