#ifndef NMCDR_UTIL_CHECK_H_
#define NMCDR_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace nmcdr {
namespace internal_check {

/// Prints a fatal-check failure and aborts. Never returns.
[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* condition,
                                   const std::string& message) {
  std::fprintf(stderr, "[CHECK FAILED] %s:%d: %s %s\n", file, line, condition,
               message.c_str());
  std::abort();
}

/// Stringifies two operands for CHECK_XX failure messages.
template <typename A, typename B>
std::string FormatOperands(const A& a, const B& b) {
  std::ostringstream oss;
  oss << "(" << a << " vs. " << b << ")";
  return oss.str();
}

}  // namespace internal_check
}  // namespace nmcdr

/// Aborts with a diagnostic if `condition` is false. Active in all builds:
/// these guard programmer errors (bad shapes, out-of-range ids), which must
/// not silently corrupt results in Release benchmarks either.
#define NMCDR_CHECK(condition)                                          \
  do {                                                                  \
    if (!(condition)) {                                                 \
      ::nmcdr::internal_check::CheckFail(__FILE__, __LINE__,            \
                                         "CHECK(" #condition ")", "");  \
    }                                                                   \
  } while (0)

#define NMCDR_CHECK_OP(op, a, b)                                             \
  do {                                                                       \
    if (!((a)op(b))) {                                                       \
      ::nmcdr::internal_check::CheckFail(                                    \
          __FILE__, __LINE__, "CHECK(" #a " " #op " " #b ")",                \
          ::nmcdr::internal_check::FormatOperands((a), (b)));                \
    }                                                                        \
  } while (0)

#define NMCDR_CHECK_EQ(a, b) NMCDR_CHECK_OP(==, a, b)
#define NMCDR_CHECK_NE(a, b) NMCDR_CHECK_OP(!=, a, b)
#define NMCDR_CHECK_LT(a, b) NMCDR_CHECK_OP(<, a, b)
#define NMCDR_CHECK_LE(a, b) NMCDR_CHECK_OP(<=, a, b)
#define NMCDR_CHECK_GT(a, b) NMCDR_CHECK_OP(>, a, b)
#define NMCDR_CHECK_GE(a, b) NMCDR_CHECK_OP(>=, a, b)

/// Debug-only variants: identical to NMCDR_CHECK* when the build defines
/// NMCDR_DEBUG_CHECKS (cmake -DNMCDR_DEBUG_CHECKS=ON), otherwise compiled
/// out entirely — the condition is not evaluated, so DCHECKs are free to
/// guard hot inner loops (per-row bounds, per-op shape re-derivations) that
/// would be too expensive to re-verify in Release benchmarks. Conditions
/// must therefore be side-effect free.
#ifdef NMCDR_DEBUG_CHECKS
#define NMCDR_DCHECK(condition) NMCDR_CHECK(condition)
#define NMCDR_DCHECK_OP(op, a, b) NMCDR_CHECK_OP(op, a, b)
#else
#define NMCDR_DCHECK(condition)       \
  do {                                \
    if (false) {                      \
      (void)(condition);              \
    }                                 \
  } while (0)
#define NMCDR_DCHECK_OP(op, a, b)     \
  do {                                \
    if (false) {                      \
      (void)((a)op(b));               \
    }                                 \
  } while (0)
#endif  // NMCDR_DEBUG_CHECKS

#define NMCDR_DCHECK_EQ(a, b) NMCDR_DCHECK_OP(==, a, b)
#define NMCDR_DCHECK_NE(a, b) NMCDR_DCHECK_OP(!=, a, b)
#define NMCDR_DCHECK_LT(a, b) NMCDR_DCHECK_OP(<, a, b)
#define NMCDR_DCHECK_LE(a, b) NMCDR_DCHECK_OP(<=, a, b)
#define NMCDR_DCHECK_GT(a, b) NMCDR_DCHECK_OP(>, a, b)
#define NMCDR_DCHECK_GE(a, b) NMCDR_DCHECK_OP(>=, a, b)

/// True when this translation unit was compiled with the debug invariant
/// layer; lets tests assert on the expected DCHECK behavior in both modes.
inline constexpr bool NmcdrDebugChecksEnabled() {
#ifdef NMCDR_DEBUG_CHECKS
  return true;
#else
  return false;
#endif
}

#endif  // NMCDR_UTIL_CHECK_H_
