#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <utility>

#include "util/check.h"

namespace nmcdr {
namespace {

/// Set while the current thread executes a pool task, so a ParallelFor
/// issued from inside a task runs inline instead of deadlocking on its own
/// pool.
thread_local bool tl_in_pool_worker = false;

/// Shared-pool startup state. `g_shared_started` flips exactly once, under
/// the magic-static initialization of Shared(); SetSharedThreads is
/// documented best-effort, so the benign race between a concurrent first
/// Shared() and SetSharedThreads needs no stronger ordering.
std::atomic<int> g_requested_threads{0};
std::atomic<bool> g_shared_started{false};

int SharedSizeFromEnvironment() {
  const int requested = g_requested_threads.load(std::memory_order_acquire);
  if (requested > 0) return requested;
  if (const char* env = std::getenv("NMCDR_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(num_threads_);
  for (int i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int64_t ThreadPool::tasks_executed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_executed_;
}

void ThreadPool::Submit(std::function<void()> task) {
  NMCDR_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    NMCDR_CHECK(!stopping_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  tl_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++tasks_executed_;
    }
    task();
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  grain = std::max<int64_t>(1, grain);
  // Deterministic static chunking: a pure function of (begin, end, grain,
  // num_threads()) so a given input always sees the same split.
  const int64_t chunks =
      std::min<int64_t>(num_threads_, std::max<int64_t>(1, n / grain));
  if (chunks <= 1 || tl_in_pool_worker) {
    fn(begin, end);
    return;
  }

  struct ForState {
    std::mutex mu;
    std::condition_variable done;
    int64_t remaining = 0;
    std::exception_ptr first_error;  // GUARDED_BY(mu)
  };
  ForState state;
  state.remaining = chunks;

  const int64_t base = n / chunks;
  const int64_t extra = n % chunks;  // first `extra` chunks get one more
  int64_t chunk_begin = begin;
  {
    std::lock_guard<std::mutex> lock(mu_);
    NMCDR_CHECK(!stopping_);
    for (int64_t c = 0; c < chunks; ++c) {
      const int64_t size = base + (c < extra ? 1 : 0);
      const int64_t chunk_end = chunk_begin + size;
      // NMCDR_LINT_ALLOW(reserve-before-growth): queue_ is a std::deque;
      // segmented growth is the point (no reallocation-copy to avoid).
      queue_.push_back([&state, &fn, chunk_begin, chunk_end] {
        try {
          fn(chunk_begin, chunk_end);
        } catch (...) {
          std::lock_guard<std::mutex> state_lock(state.mu);
          if (!state.first_error) state.first_error = std::current_exception();
        }
        std::lock_guard<std::mutex> state_lock(state.mu);
        if (--state.remaining == 0) state.done.notify_all();
      });
      chunk_begin = chunk_end;
    }
  }
  NMCDR_CHECK_EQ(chunk_begin, end);
  cv_.notify_all();

  std::unique_lock<std::mutex> lock(state.mu);
  state.done.wait(lock, [&state] { return state.remaining == 0; });
  if (state.first_error) std::rethrow_exception(state.first_error);
}

ThreadPool* ThreadPool::Shared() {
  static ThreadPool pool(SharedSizeFromEnvironment());
  g_shared_started.store(true, std::memory_order_release);
  return &pool;
}

bool ThreadPool::SetSharedThreads(int num_threads) {
  if (g_shared_started.load(std::memory_order_acquire)) return false;
  g_requested_threads.store(std::max(1, num_threads),
                            std::memory_order_release);
  return true;
}

int ThreadPool::SharedThreads() {
  if (g_shared_started.load(std::memory_order_acquire)) {
    return Shared()->num_threads();
  }
  return SharedSizeFromEnvironment();
}

}  // namespace nmcdr
