#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace nmcdr {

void TablePrinter::SetHeader(const std::vector<std::string>& header) {
  NMCDR_CHECK(!header.empty());
  header_ = header;
}

void TablePrinter::AddRow(const std::vector<std::string>& row) {
  NMCDR_CHECK(!header_.empty());
  NMCDR_CHECK_LE(row.size(), header_.size());
  Row r;
  r.cells = row;
  r.cells.resize(header_.size());
  rows_.push_back(std::move(r));
}

void TablePrinter::AddSeparator() {
  Row r;
  r.separator = true;
  rows_.push_back(std::move(r));
}

int TablePrinter::NumRows() const {
  int n = 0;
  for (const Row& r : rows_) {
    if (!r.separator) ++n;
  }
  return n;
}

std::string TablePrinter::ToString() const {
  const size_t cols = header_.size();
  std::vector<size_t> width(cols);
  for (size_t c = 0; c < cols; ++c) width[c] = header_[c].size();
  for (const Row& r : rows_) {
    if (r.separator) continue;
    for (size_t c = 0; c < cols; ++c) {
      width[c] = std::max(width[c], r.cells[c].size());
    }
  }

  auto emit_line = [&](std::ostringstream& oss,
                       const std::vector<std::string>& cells) {
    oss << "|";
    for (size_t c = 0; c < cols; ++c) {
      oss << " " << cells[c];
      oss << std::string(width[c] - cells[c].size(), ' ') << " |";
    }
    oss << "\n";
  };
  auto emit_separator = [&](std::ostringstream& oss) {
    oss << "+";
    for (size_t c = 0; c < cols; ++c) {
      oss << std::string(width[c] + 2, '-') << "+";
    }
    oss << "\n";
  };

  std::ostringstream oss;
  emit_separator(oss);
  emit_line(oss, header_);
  emit_separator(oss);
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i].separator) {
      // A trailing separator would duplicate the closing border.
      if (i + 1 < rows_.size()) emit_separator(oss);
    } else {
      emit_line(oss, rows_[i].cells);
    }
  }
  emit_separator(oss);
  return oss.str();
}

std::string FormatFloat(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace nmcdr
