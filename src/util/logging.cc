#include "util/logging.h"

#include <cstdlib>
#include <ctime>

namespace nmcdr {
namespace {

LogLevel* MutableMinLevel() {
  static LogLevel level = [] {
    if (const char* env = std::getenv("NMCDR_LOG_LEVEL")) {
      int v = std::atoi(env);
      if (v >= 0 && v <= 3) return static_cast<LogLevel>(v);
    }
    return LogLevel::kInfo;
  }();
  return &level;
}

char LevelChar(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return 'D';
    case LogLevel::kInfo:
      return 'I';
    case LogLevel::kWarning:
      return 'W';
    case LogLevel::kError:
      return 'E';
  }
  return '?';
}

}  // namespace

LogLevel MinLogLevel() { return *MutableMinLevel(); }

void SetMinLogLevel(LogLevel level) { *MutableMinLevel() = level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << LevelChar(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < MinLogLevel()) return;
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  std::fflush(stderr);
}

}  // namespace internal_logging
}  // namespace nmcdr
