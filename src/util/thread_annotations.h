#ifndef NMCDR_UTIL_THREAD_ANNOTATIONS_H_
#define NMCDR_UTIL_THREAD_ANNOTATIONS_H_

/// Thread-safety annotations for the static concurrency analyzer
/// (`nmcdr_lint --concurrency`, rule [thread-annotation] — see
/// tools/lint/lint.h). The macros expand to nothing: they exist so the
/// locking contract of a method is written where the method is declared
/// and is *checked*, tree-wide, by the lint pass instead of by code
/// review.
///
///   NMCDR_REQUIRES(mu)  The caller must hold `mu` (a std::mutex member
///                       of the same class). The analyzer verifies every
///                       resolved call site holds it and that the body
///                       does not re-lock it, and seeds the hold into the
///                       lock-order graph.
///   NMCDR_EXCLUDES(mu)  The method locks `mu` itself, so callers must
///                       NOT hold it (self-deadlock). The analyzer flags
///                       any resolved call site that holds `mu`.
///
/// Placement: between the declarator and the terminating ';' (or body):
///
///   bool TryReserveDrainerLocked(int queued) NMCDR_REQUIRES(mu_);
///   void Submit(std::function<void()> task) NMCDR_EXCLUDES(mu_);
///
/// Mutex members stay documented with `// GUARDED_BY(mu_)` comments (rule
/// [guarded-by]); these macros carry the per-method side of the contract.

#define NMCDR_REQUIRES(...)
#define NMCDR_EXCLUDES(...)

#endif  // NMCDR_UTIL_THREAD_ANNOTATIONS_H_
