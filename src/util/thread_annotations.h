#ifndef NMCDR_UTIL_THREAD_ANNOTATIONS_H_
#define NMCDR_UTIL_THREAD_ANNOTATIONS_H_

/// Thread-safety annotations for the static concurrency analyzer
/// (`nmcdr_lint --concurrency`, rule [thread-annotation] — see
/// tools/lint/lint.h). The macros expand to nothing: they exist so the
/// locking contract of a method is written where the method is declared
/// and is *checked*, tree-wide, by the lint pass instead of by code
/// review.
///
///   NMCDR_REQUIRES(mu)  The caller must hold `mu` (a std::mutex member
///                       of the same class). The analyzer verifies every
///                       resolved call site holds it and that the body
///                       does not re-lock it, and seeds the hold into the
///                       lock-order graph.
///   NMCDR_EXCLUDES(mu)  The method locks `mu` itself, so callers must
///                       NOT hold it (self-deadlock). The analyzer flags
///                       any resolved call site that holds `mu`.
///
/// Placement: between the declarator and the terminating ';' (or body):
///
///   bool TryReserveDrainerLocked(int queued) NMCDR_REQUIRES(mu_);
///   void Submit(std::function<void()> task) NMCDR_EXCLUDES(mu_);
///
/// Mutex members stay documented with `// GUARDED_BY(mu_)` comments (rule
/// [guarded-by]); these macros carry the per-method side of the contract.
///
/// Hot-path annotations for the static cost analyzer (`nmcdr_lint
/// --hotpath`, rules [hot-alloc] / [throw-hot] — see tools/lint/lint.h):
///
///   NMCDR_HOT   Declares a hot root: this function and everything
///               reachable from it through the resolved call graph is
///               steady-state request-path code and must not heap-allocate
///               (operator new, make_unique/make_shared, container growth,
///               std::string construction) nor throw / NMCDR_CHECK
///               (NMCDR_DCHECK stays legal). ThreadPool dispatch lambda
///               bodies are hot implicitly and need no annotation.
///   NMCDR_COLD  Prunes a function out of the hot closure even when it is
///               called from hot code: the function is excluded from the
///               steady-state zero-alloc invariant. Reserve this for
///               amortized capacity growth (scratch Prepare() methods) and
///               output materialization, where allocation happens O(1)
///               times, not per request.
///
/// Placement matches REQUIRES/EXCLUDES; free functions may be annotated
/// too (scoring kernels):
///
///   std::vector<Recommendation> TopKBatch(...) NMCDR_HOT;
///   void Prepare(int num_items, int block) NMCDR_COLD;

#define NMCDR_REQUIRES(...)
#define NMCDR_EXCLUDES(...)
#define NMCDR_HOT
#define NMCDR_COLD

#endif  // NMCDR_UTIL_THREAD_ANNOTATIONS_H_
