#ifndef NMCDR_UTIL_LOGGING_H_
#define NMCDR_UTIL_LOGGING_H_

#include <cstdio>
#include <sstream>
#include <string>

namespace nmcdr {

/// Log severities, ordered by importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Returns the process-wide minimum level that is actually emitted.
/// Defaults to kInfo; override with SetMinLogLevel or NMCDR_LOG_LEVEL env var
/// (0=debug .. 3=error) read on first use.
LogLevel MinLogLevel();

/// Sets the process-wide minimum emitted severity.
void SetMinLogLevel(LogLevel level);

namespace internal_logging {

/// Stream-style log sink that emits one line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a log statement below the active severity without evaluating
/// the streamed expressions' formatting.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace nmcdr

#define NMCDR_LOG_AT(level)                                              \
  (::nmcdr::MinLogLevel() > (level))                                     \
      ? void(0)                                                          \
      : void(::nmcdr::internal_logging::LogMessage((level), __FILE__,    \
                                                   __LINE__)             \
                 .stream())

// Stream-style logging:  LOG_INFO << "epoch " << e << " loss " << l;
#define LOG_DEBUG                                                      \
  ::nmcdr::internal_logging::LogMessage(::nmcdr::LogLevel::kDebug,     \
                                        __FILE__, __LINE__)            \
      .stream()
#define LOG_INFO                                                       \
  ::nmcdr::internal_logging::LogMessage(::nmcdr::LogLevel::kInfo,      \
                                        __FILE__, __LINE__)            \
      .stream()
#define LOG_WARNING                                                    \
  ::nmcdr::internal_logging::LogMessage(::nmcdr::LogLevel::kWarning,   \
                                        __FILE__, __LINE__)            \
      .stream()
#define LOG_ERROR                                                      \
  ::nmcdr::internal_logging::LogMessage(::nmcdr::LogLevel::kError,     \
                                        __FILE__, __LINE__)            \
      .stream()

#endif  // NMCDR_UTIL_LOGGING_H_
