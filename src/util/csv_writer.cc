#include "util/csv_writer.h"

namespace nmcdr {
namespace {

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n") != std::string::npos;
}

std::string Quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path) : out_(path) {}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ",";
    out_ << (NeedsQuoting(cells[i]) ? Quote(cells[i]) : cells[i]);
  }
  out_ << "\n";
}

}  // namespace nmcdr
