#ifndef NMCDR_UTIL_TABLE_PRINTER_H_
#define NMCDR_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace nmcdr {

/// Fixed-width ASCII table printer used by the benchmark harnesses to emit
/// paper-style result tables (models as rows, overlap ratios as columns).
///
/// Usage:
///   TablePrinter t;
///   t.SetHeader({"Method", "NDCG", "HR"});
///   t.AddRow({"NMCDR", "11.26", "21.58"});
///   std::cout << t.ToString();
class TablePrinter {
 public:
  /// Sets the column headers; defines the column count.
  void SetHeader(const std::vector<std::string>& header);

  /// Appends a row. Rows shorter than the header are right-padded with "".
  void AddRow(const std::vector<std::string>& row);

  /// Inserts a horizontal separator line at the current position.
  void AddSeparator();

  /// Renders the table with column-aligned cells.
  std::string ToString() const;

  /// Number of data rows added so far (separators excluded).
  int NumRows() const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Formats a double as a fixed-precision string, e.g. FormatFloat(9.2561, 2)
/// == "9.26". Used for metric cells reported in percent.
std::string FormatFloat(double value, int precision);

}  // namespace nmcdr

#endif  // NMCDR_UTIL_TABLE_PRINTER_H_
