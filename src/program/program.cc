#include "program/program.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/matrix_ops.h"
#include "util/check.h"

namespace nmcdr {
namespace prog {
namespace {

namespace k = ::nmcdr;

/// Role tables for the eltwise-chain matcher. A chain is a run of
/// consecutive instructions where each consumes the previous one's output
/// as its only use. Interior members are restricted to ops whose backward
/// needs neither their input nor their output value (pass / negate /
/// scale), so no intermediate ever has to be materialized; value-dependent
/// activations may only terminate a chain (their backward reads the final
/// output, which the fused node materializes).
bool IsChainLeader(ag::OpKind kind) {
  switch (kind) {
    case ag::OpKind::kAdd:
    case ag::OpKind::kSub:
    case ag::OpKind::kHadamard:
    case ag::OpKind::kScale:
    case ag::OpKind::kAddScalar:
    case ag::OpKind::kOneMinus:
    case ag::OpKind::kSoftplus:
      return true;
    default:
      return false;
  }
}

bool IsChainInterior(ag::OpKind kind) {
  switch (kind) {
    case ag::OpKind::kAdd:
    case ag::OpKind::kSub:
    case ag::OpKind::kScale:
    case ag::OpKind::kAddScalar:
    case ag::OpKind::kOneMinus:
      return true;
    default:
      return false;
  }
}

bool IsChainTailOnly(ag::OpKind kind) {
  switch (kind) {
    case ag::OpKind::kRelu:
    case ag::OpKind::kSigmoid:
    case ag::OpKind::kTanh:
    case ag::OpKind::kExp:
      return true;
    default:
      return false;
  }
}

bool IsBinaryChainOp(ag::OpKind kind) {
  return kind == ag::OpKind::kAdd || kind == ag::OpKind::kSub ||
         kind == ag::OpKind::kHadamard;
}

FusedAct EpilogueActFor(ag::OpKind kind) {
  switch (kind) {
    case ag::OpKind::kRelu:
      return FusedAct::kRelu;
    case ag::OpKind::kSigmoid:
      return FusedAct::kSigmoid;
    case ag::OpKind::kTanh:
      return FusedAct::kTanh;
    default:
      return FusedAct::kNone;
  }
}

/// Bitwise mirror of AccumulateGrad's normalization: every link between
/// two fused ops corresponds to an eager intermediate whose grad was
/// `zeros + g`, and IEEE 0+x is not always x (-0 becomes +0), so the
/// fused backward replays the same add.
Matrix NormalizeLinkGrad(const Matrix& g) {
  Matrix norm(g.rows(), g.cols());
  AxpyInto(g, 1.f, &norm);
  return norm;
}

/// Activation backward bodies, element-for-element identical to the eager
/// closures in autograd/ops.cc.
Matrix ActBackward(ag::OpKind kind, const Matrix& y, const Matrix& g) {
  Matrix da(g.rows(), g.cols());
  switch (kind) {
    case ag::OpKind::kRelu:
      for (int i = 0; i < da.size(); ++i) {
        da.data()[i] = y.data()[i] > 0.f ? g.data()[i] : 0.f;
      }
      break;
    case ag::OpKind::kSigmoid:
      for (int i = 0; i < da.size(); ++i) {
        const float yv = y.data()[i];
        da.data()[i] = g.data()[i] * yv * (1.f - yv);
      }
      break;
    case ag::OpKind::kTanh:
      for (int i = 0; i < da.size(); ++i) {
        const float yv = y.data()[i];
        da.data()[i] = g.data()[i] * (1.f - yv * yv);
      }
      break;
    case ag::OpKind::kExp:
      da = k::Hadamard(g, y);
      break;
    default:
      NMCDR_DCHECK(false);  // unreachable: callers pass activation kinds only
  }
  return da;
}

}  // namespace

bool FusionEnvEnabled() {
  const char* v = std::getenv("NMCDR_FUSION");
  if (v == nullptr) return true;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "false") == 0 ||
           std::strcmp(v, "off") == 0);
}

GraphProgram::GraphProgram() = default;
GraphProgram::~GraphProgram() = default;

// ---------------------------------------------------------------------------
// OpStreamHandler dispatch.

bool GraphProgram::OnOpEntry(ag::OpKind kind, const ag::Tensor* const* in,
                             int num_in, const float* scalars, int num_scalars,
                             ag::Tensor* out) {
  switch (mode_) {
    case Mode::kRecording:
      return RecordOpEntry(kind, in, num_in, scalars, num_scalars);
    case Mode::kReplaying:
      return ReplayOpEntry(kind, in, num_in, scalars, num_scalars, out);
    case Mode::kIdle:
      return false;
  }
  return false;
}

bool GraphProgram::OnSpMM(const std::shared_ptr<const CsrMatrix>& a,
                          const ag::Tensor& x, ag::Tensor* out) {
  switch (mode_) {
    case Mode::kRecording: {
      const ag::Tensor* ins[] = {&x};
      const bool handled = RecordOpEntry(ag::OpKind::kSpMM, ins, 1, nullptr, 0);
      if (pending_.valid) pending_.csr = a;
      return handled;
    }
    case Mode::kReplaying:
      return ReplaySpMM(a, x, out);
    case Mode::kIdle:
      return false;
  }
  return false;
}

void GraphProgram::OnNodeCreated(const char* op, const ag::Tensor& result,
                                 const std::vector<ag::Tensor>& parents) {
  (void)parents;
  // Replay ignores node creation entirely: eager ops were already
  // position-verified at entry, and intercepted results never pass through
  // MakeOpNode.
  if (mode_ == Mode::kRecording) RecordNodeCreated(op, result);
}

// ---------------------------------------------------------------------------
// Recording.

GraphProgram::RecordScope::RecordScope(GraphProgram* program)
    : program_(program),
      stream_(program != nullptr ? static_cast<ag::OpStreamHandler*>(program)
                                 : nullptr) {
  if (program_ == nullptr) return;
  NMCDR_CHECK(!program_->compiled_);
  program_->mode_ = Mode::kRecording;
  program_->instrs_.clear();
  program_->keepalive_.clear();
  program_->recorded_value_bytes_ = 0;
  program_->pending_ = Pending{};
}

GraphProgram::RecordScope::~RecordScope() {
  if (program_ != nullptr) program_->Compile();
}

bool GraphProgram::RecordOpEntry(ag::OpKind kind, const ag::Tensor* const* in,
                                 int num_in, const float* scalars,
                                 int num_scalars) {
  if (uncompilable_) return false;
  if (pending_.valid) {
    // An op entered while another is mid-flight: composite ops calling ops
    // re-enter pairwise, so this means an op shape we do not model.
    MarkUncompilable("nested op entry");
    return false;
  }
  if (num_in > 2) {
    MarkUncompilable("op arity above 2");
    return false;
  }
  pending_.valid = true;
  pending_.kind = kind;
  pending_.num_in = num_in;
  pending_.in_nodes[0] = num_in > 0 ? in[0]->raw() : nullptr;
  pending_.in_nodes[1] = num_in > 1 ? in[1]->raw() : nullptr;
  pending_.has_scalar = num_scalars > 0;
  pending_.scalar = num_scalars > 0 ? scalars[0] : 0.f;
  pending_.csr.reset();
  return false;  // always run the eager body while recording
}

void GraphProgram::RecordNodeCreated(const char* op, const ag::Tensor& result) {
  if (uncompilable_) return;
  if (!pending_.valid) {
    // MakeOpNode reached without an op-entry prologue: a custom op we
    // cannot verify positionally.
    MarkUncompilable("node created outside a known op");
    return;
  }
  if (std::strcmp(op, ag::OpKindName(pending_.kind)) != 0) {
    MarkUncompilable("op entry / node pairing mismatch");
    return;
  }
  Instr instr;
  instr.kind = pending_.kind;
  instr.rows = result.value().rows();
  instr.cols = result.value().cols();
  instr.num_in = pending_.num_in;
  instr.requires_grad = result.requires_grad();
  instr.has_scalar = pending_.has_scalar;
  instr.scalar = pending_.scalar;
  instr.in_nodes[0] = pending_.in_nodes[0];
  instr.in_nodes[1] = pending_.in_nodes[1];
  instr.out_node = result.raw();
  instr.csr = std::move(pending_.csr);
  instrs_.push_back(std::move(instr));
  // Pin the node so no later allocation can reuse its address and alias
  // the consumer analysis (released after Compile()).
  keepalive_.push_back(result);
  recorded_value_bytes_ +=
      static_cast<int64_t>(result.value().size()) * sizeof(float);
  pending_.valid = false;
}

void GraphProgram::MarkUncompilable(const char* why) {
  (void)why;
  uncompilable_ = true;
  pending_ = Pending{};
}

void GraphProgram::Compile() {
  mode_ = Mode::kIdle;
  if (pending_.valid) MarkUncompilable("op entry without node");
  keepalive_.clear();
  if (uncompilable_ || instrs_.empty()) {
    instrs_.clear();
    groups_.clear();
    return;
  }
  CompileGroups();
  // Reserve the replay-time scratch once so steady-state steps never grow
  // it: EltwiseStep slots for the longest chain, group bookkeeping slots.
  size_t max_chain = 0;
  for (const FusionGroup& g : groups_) {
    max_chain = std::max(max_chain, g.members.size());
  }
  eltwise_scratch_.reserve(max_chain);
  // Static gather plans for every adjacency op, built from the recorded
  // CSR operands (re-keyed at replay if the model swaps adjacencies).
  spmm_plans_.clear();
  spmm_plan_by_pc_.clear();
  spmm_plans_.reserve(instrs_.size());
  for (int pc = 0; pc < static_cast<int>(instrs_.size()); ++pc) {
    if (instrs_[pc].kind != ag::OpKind::kSpMM || instrs_[pc].csr == nullptr) {
      continue;
    }
    spmm_plan_by_pc_[pc] = static_cast<int>(spmm_plans_.size());
    spmm_plans_.push_back(std::make_shared<SpMMPlan>());
  }
  // The arena must hold one step's activations, gradients, and backward
  // temporaries; 3x the recorded forward footprint covers all three with
  // headroom, and the arena grows (and reports it) if estimation is short.
  arena_.Reserve(static_cast<size_t>(3 * recorded_value_bytes_) + (1u << 20));
  compiled_ = true;
}

void GraphProgram::CompileGroups() {
  groups_.clear();
  const int n = static_cast<int>(instrs_.size());
  // Per-occurrence consumer counts over record-time node identities.
  std::map<const void*, int> uses;
  for (const Instr& instr : instrs_) {
    for (int i = 0; i < instr.num_in; ++i) ++uses[instr.in_nodes[i]];
  }
  // True when instr `q` consumes instr `p`'s output as its only use,
  // exactly once, at argument `arg`.
  auto links_at = [&](int p, int q, int arg) {
    const void* out = instrs_[p].out_node;
    auto it = uses.find(out);
    if (it == uses.end() || it->second != 1) return false;
    if (arg >= instrs_[q].num_in || instrs_[q].in_nodes[arg] != out) {
      return false;
    }
    const int other = 1 - arg;
    if (other < instrs_[q].num_in && instrs_[q].in_nodes[other] == out) {
      return false;
    }
    return true;
  };
  auto chain_arg_of = [&](int p, int q) {
    if (links_at(p, q, 0)) return 0;
    if (links_at(p, q, 1)) return 1;
    return -1;
  };

  int pc = 0;
  while (pc < n) {
    // MatMul + bias + activation epilogue.
    if (instrs_[pc].kind == ag::OpKind::kMatMul) {
      FusionGroup g;
      g.kind = FusionGroup::Kind::kMatMulEpilogue;
      g.first_pc = pc;
      g.size = 1;
      int cur = pc;
      if (cur + 1 < n &&
          instrs_[cur + 1].kind == ag::OpKind::kAddRowBroadcast &&
          links_at(cur, cur + 1, 0)) {
        g.has_bias = true;
        ++g.size;
        ++cur;
      }
      if (cur + 1 < n &&
          EpilogueActFor(instrs_[cur + 1].kind) != FusedAct::kNone &&
          links_at(cur, cur + 1, 0)) {
        g.act = EpilogueActFor(instrs_[cur + 1].kind);
        ++g.size;
        ++cur;
      }
      // A bare MatMul (size 1) still forms a group: materialization routes
      // it through the planned GEMM kernels (forward FusedMatMulBiasActInto
      // with no epilogue, backward PlannedMatMulTrans{A,B}), which are
      // bit-exact with the eager kernels but register-blocked.
      const int gidx = static_cast<int>(groups_.size());
      for (int m = 0; m < g.size; ++m) {
        instrs_[g.first_pc + m].group = gidx;
        instrs_[g.first_pc + m].member = m;
      }
      groups_.push_back(std::move(g));
      pc = cur + 1;
      continue;
    }
    // Elementwise chain.
    if (IsChainLeader(instrs_[pc].kind)) {
      FusionGroup g;
      g.kind = FusionGroup::Kind::kEltwiseChain;
      g.first_pc = pc;
      ChainMember leader;
      leader.kind = instrs_[pc].kind;
      leader.chain_arg = -1;
      leader.has_side = IsBinaryChainOp(leader.kind);
      leader.has_scalar = instrs_[pc].has_scalar;
      g.members.push_back(leader);
      int cur = pc;
      while (cur + 1 < n) {
        const Instr& next = instrs_[cur + 1];
        const bool interior = IsChainInterior(next.kind);
        const bool tail_only = IsChainTailOnly(next.kind);
        if (!interior && !tail_only) break;
        const int arg = chain_arg_of(cur, cur + 1);
        if (arg < 0) break;
        ChainMember m;
        m.kind = next.kind;
        m.chain_arg = arg;
        m.has_side = IsBinaryChainOp(next.kind);
        m.has_scalar = next.has_scalar;
        g.members.push_back(m);
        ++cur;
        if (tail_only) break;
      }
      g.size = static_cast<int>(g.members.size());
      if (g.size >= 2) {
        const int gidx = static_cast<int>(groups_.size());
        for (int m = 0; m < g.size; ++m) {
          instrs_[g.first_pc + m].group = gidx;
          instrs_[g.first_pc + m].member = m;
        }
        groups_.push_back(std::move(g));
        pc = cur + 1;
        continue;
      }
    }
    ++pc;
  }
}

// ---------------------------------------------------------------------------
// Replay.

GraphProgram::ReplayScope::ReplayScope(GraphProgram* program)
    : program_(program),
      active_(program != nullptr && program->usable()),
      arena_(active_ ? &program->arena_ : nullptr),
      stream_(active_ ? static_cast<ag::OpStreamHandler*>(program) : nullptr) {
  if (active_) program_->BeginReplay();
}

GraphProgram::ReplayScope::~ReplayScope() {
  if (active_) program_->EndReplay();
}

bool GraphProgram::ReplayScope::replayed() const {
  return active_ && program_->step_ok_;
}

void GraphProgram::BeginReplay() {
  mode_ = Mode::kReplaying;
  pc_ = 0;
  step_ok_ = true;
  run_.Reset();
  arena_.ResetStep();
}

void GraphProgram::EndReplay() {
  mode_ = Mode::kIdle;
  if (run_.group != -1) {
    // The step ended with a group mid-flight: the model holds the pending
    // placeholder, so give it a real value before retiring.
    Die("step ended inside a fusion group");
  }
  if (step_ok_ && pc_ != static_cast<int>(instrs_.size())) {
    // The live step ran fewer ops than recorded; every executed op was
    // verified (numerics are fine) but the program no longer matches.
    step_ok_ = false;
    dead_ = true;
  }
  if (step_ok_) {
    ++replay_steps_;
  } else {
    ++fallback_steps_;
  }
}

void GraphProgram::Die(const char* why) {
  (void)why;
  if (run_.group != -1) {
    MaterializeGroup(run_.next_member, &run_.placeholder);
    run_.Reset();
  }
  step_ok_ = false;
  dead_ = true;
}

ag::Tensor GraphProgram::MakePlaceholder(int rows, int cols,
                                         bool requires_grad) {
  // ShapeOnly carries dimensions but no storage: any eager read of a
  // fused intermediate is a loud null-data failure instead of silent
  // garbage. Built directly (not via MakeOpNode) so no handler re-entry.
  return ag::Tensor(Matrix::ShapeOnly(rows, cols), requires_grad);
}

bool GraphProgram::ReplayOpEntry(ag::OpKind kind, const ag::Tensor* const* in,
                                 int num_in, const float* scalars,
                                 int num_scalars, ag::Tensor* out) {
  if (!step_ok_) return false;
  if (run_.group != -1) {
    return ContinueGroup(kind, in, num_in, scalars, num_scalars, out);
  }
  if (pc_ >= static_cast<int>(instrs_.size())) {
    Die("live step has more ops than the recording");
    return false;
  }
  const Instr& instr = instrs_[pc_];
  if (instr.kind != kind) {
    Die("op kind diverged from the recording");
    return false;
  }
  if (instr.group >= 0) {
    if (instr.member != 0) {
      Die("fused member reached without its leader");
      return false;
    }
    ++pc_;
    BeginGroup(instr.group, in, num_in, scalars, num_scalars, out);
    return true;
  }
  ++pc_;
  return false;  // verified; run the eager body
}

void GraphProgram::BeginGroup(int group_idx, const ag::Tensor* const* in,
                              int num_in, const float* scalars,
                              int num_scalars, ag::Tensor* out) {
  const FusionGroup& g = groups_[group_idx];
  run_.group = group_idx;
  run_.next_member = 1;
  run_.inputs.clear();
  run_.sides.clear();
  run_.scalars.clear();
  // Reserves are no-ops once warm (Reset() keeps capacity); they also mark
  // the appends below as the sanctioned amortized-growth pattern.
  run_.inputs.reserve(4);
  run_.sides.reserve(static_cast<size_t>(g.size));
  run_.scalars.reserve(static_cast<size_t>(g.size));
  for (int i = 0; i < num_in; ++i) run_.inputs.push_back(*in[i]);
  run_.sides.push_back(ag::Tensor());  // leader slot; sides start at 1
  run_.scalars.push_back(num_scalars > 0 ? scalars[0] : 0.f);
  int rows;
  int cols;
  if (g.kind == FusionGroup::Kind::kMatMulEpilogue) {
    rows = in[0]->rows();
    cols = in[1]->cols();
  } else {
    rows = in[0]->rows();
    cols = in[0]->cols();
  }
  if (g.size == 1) {
    // Single-op group (a bare MatMul): nothing to chain, materialize now.
    ag::Tensor result;
    MaterializeGroup(1, &result);
    run_.Reset();
    *out = result;
    return;
  }
  bool rg = false;
  for (int i = 0; i < num_in; ++i) rg = rg || in[i]->requires_grad();
  rg = rg && ag::GradEnabled();
  run_.placeholder = MakePlaceholder(rows, cols, rg);
  *out = run_.placeholder;
}

bool GraphProgram::ContinueGroup(ag::OpKind kind, const ag::Tensor* const* in,
                                 int num_in, const float* scalars,
                                 int num_scalars, ag::Tensor* out) {
  const FusionGroup& g = groups_[run_.group];
  const int j = run_.next_member;
  // Warm-capacity appends (BeginGroup reserved; reserve here is a no-op
  // that keeps the amortized pattern explicit in this function too).
  run_.inputs.reserve(4);
  run_.sides.reserve(static_cast<size_t>(g.size));
  run_.scalars.reserve(static_cast<size_t>(g.size));
  if (pc_ >= static_cast<int>(instrs_.size()) ||
      instrs_[pc_].group != run_.group || instrs_[pc_].member != j) {
    Die("group interrupted mid-flight");
    return false;
  }
  if (g.kind == FusionGroup::Kind::kMatMulEpilogue) {
    ag::OpKind expected;
    if (g.has_bias && j == 1) {
      expected = ag::OpKind::kAddRowBroadcast;
    } else {
      expected = g.act == FusedAct::kRelu      ? ag::OpKind::kRelu
                 : g.act == FusedAct::kSigmoid ? ag::OpKind::kSigmoid
                                               : ag::OpKind::kTanh;
    }
    if (kind != expected || num_in < 1 ||
        in[0]->raw() != run_.placeholder.raw()) {
      Die("epilogue link diverged");
      return false;
    }
    bool rg = run_.placeholder.requires_grad();
    if (kind == ag::OpKind::kAddRowBroadcast) {
      const ag::Tensor& bias = *in[1];
      if (bias.raw() == run_.placeholder.raw() ||
          !bias.value().has_storage()) {
        Die("epilogue bias is not materialized");
        return false;
      }
      run_.inputs.push_back(bias);
      rg = rg || bias.requires_grad();
    }
    rg = rg && ag::GradEnabled();
    ++pc_;
    ++run_.next_member;
    if (run_.next_member == g.size) {
      ag::Tensor result;
      MaterializeGroup(g.size, &result);
      run_.Reset();
      *out = result;
      return true;
    }
    run_.placeholder = MakePlaceholder(run_.placeholder.value().rows(),
                                       run_.placeholder.value().cols(), rg);
    *out = run_.placeholder;
    return true;
  }
  // Eltwise chain member.
  const ChainMember& m = g.members[j];
  if (kind != m.kind || m.chain_arg >= num_in ||
      in[m.chain_arg]->raw() != run_.placeholder.raw()) {
    Die("chain link diverged");
    return false;
  }
  ag::Tensor side;
  if (m.has_side) {
    side = *in[1 - m.chain_arg];
    if (side.raw() == run_.placeholder.raw() || !side.value().has_storage()) {
      Die("chain side input is not materialized");
      return false;
    }
  }
  run_.sides.push_back(side);
  run_.scalars.push_back(num_scalars > 0 ? scalars[0] : 0.f);
  bool rg = run_.placeholder.requires_grad() ||
            (side.defined() && side.requires_grad());
  rg = rg && ag::GradEnabled();
  ++pc_;
  ++run_.next_member;
  if (run_.next_member == g.size) {
    ag::Tensor result;
    MaterializeGroup(g.size, &result);
    run_.Reset();
    *out = result;
    return true;
  }
  run_.placeholder = MakePlaceholder(run_.placeholder.value().rows(),
                                     run_.placeholder.value().cols(), rg);
  *out = run_.placeholder;
  return true;
}

void GraphProgram::MaterializeGroup(int upto, ag::Tensor* target) {
  const FusionGroup& g = groups_[run_.group];
  const KernelBackend& backend = CurrentBackend();
  NMCDR_DCHECK_GE(upto, 1);

  if (g.kind == FusionGroup::Kind::kMatMulEpilogue) {
    const ag::Tensor a = run_.inputs[0];
    const ag::Tensor b = run_.inputs[1];
    const bool with_bias = g.has_bias && upto >= 2;
    const bool with_act =
        g.act != FusedAct::kNone && upto >= (g.has_bias ? 3 : 2);
    const ag::Tensor bias = with_bias ? run_.inputs[2] : ag::Tensor();
    const FusedAct act = with_act ? g.act : FusedAct::kNone;

    Matrix value(a.rows(), b.cols());
    {
      // program.cc is the dispatch site for the fused kernels (they have
      // no matrix_ops free-function dispatcher), so the obs probe lives
      // here.
      const obs::KernelScope scope(obs::Kernel::kFusedMatMulBiasAct,
                                   2ll * a.rows() * a.cols() * b.cols());
      backend.FusedMatMulBiasActInto(a.value(), b.value(),
                                     with_bias ? &bias.value() : nullptr, act,
                                     &value);
    }

    if (!target->defined()) {
      *target = ag::Tensor(Matrix::ShapeOnly(value.rows(), value.cols()));
    }
    ag::Node* node = target->raw();
    node->value = std::move(value);
    node->op = "Fused";
    bool rg = a.requires_grad() || b.requires_grad() ||
              (with_bias && bias.requires_grad());
    rg = rg && ag::GradEnabled();
    node->requires_grad = rg;
    if (!rg) return;
    auto& parents = node->parents;
    parents.clear();
    parents.reserve(3);
    parents.push_back(a.node());
    parents.push_back(b.node());
    if (with_bias) parents.push_back(bias.node());
    // Bitwise mirror of the eager backward sequence act' -> bias -> matmul,
    // with one 0+x link normalization per fused internal edge (matching
    // each eager intermediate's AccumulateGrad from its single consumer).
    node->backward = [a, b, bias, with_bias, act](ag::Node* self) {
      const Matrix* cur = &self->grad;
      Matrix da;
      Matrix norm_act;
      Matrix norm_bias;
      if (act != FusedAct::kNone) {
        const ag::OpKind act_kind = act == FusedAct::kRelu ? ag::OpKind::kRelu
                                    : act == FusedAct::kSigmoid
                                        ? ag::OpKind::kSigmoid
                                        : ag::OpKind::kTanh;
        da = ActBackward(act_kind, self->value, *cur);
        norm_act = NormalizeLinkGrad(da);
        cur = &norm_act;
      }
      if (with_bias) {
        bias.raw()->AccumulateGrad(k::ColSum(*cur));
        norm_bias = NormalizeLinkGrad(*cur);
        cur = &norm_bias;
      }
      // Planned (register-blocked) GEMMs: bit-exact with the eager
      // k::MatMulTransB / k::MatMulTransA calls, faster on the replay path.
      const KernelBackend& backend = CurrentBackend();
      {
        const obs::KernelScope scope(
            obs::Kernel::kPlannedMatMulTransB,
            2ll * cur->rows() * cur->cols() * b.value().rows());
        a.raw()->AccumulateGrad(backend.PlannedMatMulTransB(*cur, b.value()));
      }
      {
        const obs::KernelScope scope(
            obs::Kernel::kPlannedMatMulTransA,
            2ll * a.value().rows() * a.value().cols() * cur->cols());
        b.raw()->AccumulateGrad(backend.PlannedMatMulTransA(a.value(), *cur));
      }
    };
    return;
  }

  // Eltwise chain over members [0, upto). `members` points into groups_,
  // which is immutable after Compile() and outlives every step tape (see
  // the class lifetime note); the per-step sides/scalars move into the
  // backward closure below, so nothing here copies a vector.
  const ag::Tensor seed = run_.inputs[0];
  const ChainMember* members = g.members.data();
  if (members[0].has_side) run_.sides[0] = run_.inputs[1];

  eltwise_scratch_.clear();
  eltwise_scratch_.reserve(static_cast<size_t>(upto));
  for (int j = 0; j < upto; ++j) {
    EltwiseStep st;
    switch (members[j].kind) {
      case ag::OpKind::kAdd:
        st.op = EltwiseOp::kAddMat;
        st.side = run_.sides[j].value().data();
        break;
      case ag::OpKind::kSub:
        st.op = EltwiseOp::kSubMat;
        st.rhs = members[j].chain_arg == 1;
        st.side = run_.sides[j].value().data();
        break;
      case ag::OpKind::kHadamard:
        st.op = EltwiseOp::kMulMat;
        st.side = run_.sides[j].value().data();
        break;
      case ag::OpKind::kScale:
        st.op = EltwiseOp::kScale;
        st.scalar = run_.scalars[j];
        break;
      case ag::OpKind::kAddScalar:
        st.op = EltwiseOp::kAddScalar;
        st.scalar = run_.scalars[j];
        break;
      case ag::OpKind::kOneMinus:
        st.op = EltwiseOp::kOneMinus;
        break;
      case ag::OpKind::kSoftplus:
        st.op = EltwiseOp::kSoftplus;
        break;
      case ag::OpKind::kRelu:
        st.op = EltwiseOp::kRelu;
        break;
      case ag::OpKind::kSigmoid:
        st.op = EltwiseOp::kSigmoid;
        break;
      case ag::OpKind::kTanh:
        st.op = EltwiseOp::kTanh;
        break;
      case ag::OpKind::kExp:
        st.op = EltwiseOp::kExp;
        break;
      default:
        NMCDR_DCHECK(false);  // unreachable: the compiler admits these only
    }
    eltwise_scratch_.push_back(st);
  }

  Matrix value(seed.rows(), seed.cols());
  {
    const obs::KernelScope scope(
        obs::Kernel::kFusedEltwise,
        static_cast<int64_t>(seed.value().size()) * upto);
    backend.FusedEltwiseInto(seed.value(), eltwise_scratch_.data(), upto,
                             &value);
  }

  if (!target->defined()) {
    *target = ag::Tensor(Matrix::ShapeOnly(value.rows(), value.cols()));
  }
  ag::Node* node = target->raw();
  node->value = std::move(value);
  node->op = "Fused";
  bool rg = seed.requires_grad();
  for (const ag::Tensor& s : run_.sides) {
    rg = rg || (s.defined() && s.requires_grad());
  }
  rg = rg && ag::GradEnabled();
  node->requires_grad = rg;
  if (!rg) return;

  // Parent order mirrors the eager tape's DFS emission: the chain value at
  // arg0 appends the side after the deeper subtree, at arg1 prepends it —
  // so arg1 sides land up front in reverse member order, then the leader's
  // operands, then arg0 sides in member order.
  auto& parents = node->parents;
  parents.clear();
  parents.reserve(static_cast<size_t>(upto) + 1);
  for (int j = upto - 1; j >= 1; --j) {
    if (members[j].has_side && members[j].chain_arg == 1) {
      parents.push_back(run_.sides[j].node());
    }
  }
  parents.push_back(seed.node());
  if (members[0].has_side) parents.push_back(run_.sides[0].node());
  for (int j = 1; j < upto; ++j) {
    if (members[j].has_side && members[j].chain_arg == 0) {
      parents.push_back(run_.sides[j].node());
    }
  }

  const ag::Tensor leader_a = seed;
  const ag::Tensor leader_b = members[0].has_side ? run_.sides[0] : ag::Tensor();
  node->backward = [members, sides = std::move(run_.sides),
                    scalars = std::move(run_.scalars), leader_a, leader_b,
                    upto](ag::Node* self) {
    Matrix buf;
    const Matrix* cur = &self->grad;
    for (int j = upto - 1; j >= 1; --j) {
      const ChainMember& m = members[j];
      // Member backward: grad wrt the chain input + side accumulation,
      // each formula identical to the eager closure it replaces.
      switch (m.kind) {
        case ag::OpKind::kRelu:
        case ag::OpKind::kSigmoid:
        case ag::OpKind::kTanh:
        case ag::OpKind::kExp: {
          Matrix da = ActBackward(m.kind, self->value, *cur);
          buf = std::move(da);
          cur = &buf;
          break;
        }
        case ag::OpKind::kAdd:
          sides[j].raw()->AccumulateGrad(*cur);
          break;
        case ag::OpKind::kSub:
          if (m.chain_arg == 0) {
            sides[j].raw()->AccumulateGrad(k::Scale(*cur, -1.f));
          } else {
            sides[j].raw()->AccumulateGrad(*cur);
            Matrix neg = k::Scale(*cur, -1.f);
            buf = std::move(neg);
            cur = &buf;
          }
          break;
        case ag::OpKind::kScale: {
          Matrix scaled = k::Scale(*cur, scalars[j]);
          buf = std::move(scaled);
          cur = &buf;
          break;
        }
        case ag::OpKind::kAddScalar:
          break;
        case ag::OpKind::kOneMinus: {
          Matrix neg = k::Scale(*cur, -1.f);
          buf = std::move(neg);
          cur = &buf;
          break;
        }
        default:
          NMCDR_DCHECK(false);  // unreachable: compiler-admitted kinds only
      }
      // Crossing the link into member j-1's output: the eager intermediate
      // accumulated `zeros + g` there.
      Matrix norm = NormalizeLinkGrad(*cur);
      buf = std::move(norm);
      cur = &buf;
    }
    // Leader: gradients flow to the external inputs.
    switch (members[0].kind) {
      case ag::OpKind::kAdd:
        leader_a.raw()->AccumulateGrad(*cur);
        leader_b.raw()->AccumulateGrad(*cur);
        break;
      case ag::OpKind::kSub:
        leader_a.raw()->AccumulateGrad(*cur);
        leader_b.raw()->AccumulateGrad(k::Scale(*cur, -1.f));
        break;
      case ag::OpKind::kHadamard:
        leader_a.raw()->AccumulateGrad(k::Hadamard(*cur, leader_b.value()));
        leader_b.raw()->AccumulateGrad(k::Hadamard(*cur, leader_a.value()));
        break;
      case ag::OpKind::kScale:
        leader_a.raw()->AccumulateGrad(k::Scale(*cur, scalars[0]));
        break;
      case ag::OpKind::kAddScalar:
        leader_a.raw()->AccumulateGrad(*cur);
        break;
      case ag::OpKind::kOneMinus:
        leader_a.raw()->AccumulateGrad(k::Scale(*cur, -1.f));
        break;
      case ag::OpKind::kSoftplus: {
        Matrix sig = k::Sigmoid(leader_a.value());
        leader_a.raw()->AccumulateGrad(k::Hadamard(*cur, sig));
        break;
      }
      default:
        NMCDR_DCHECK(false);  // unreachable: compiler-admitted kinds only
    }
  };
}

std::shared_ptr<const GraphProgram::SpMMPlan> GraphProgram::PlanFor(
    int pc, const std::shared_ptr<const CsrMatrix>& a) {
  const int idx = spmm_plan_by_pc_.at(pc);
  if (spmm_plans_[idx]->csr_key == a.get()) return spmm_plans_[idx];
  return BuildPlan(idx, a);
}

std::shared_ptr<const GraphProgram::SpMMPlan> GraphProgram::BuildPlan(
    int idx, const std::shared_ptr<const CsrMatrix>& a) {
  // First use, or the model rebuilt its adjacency: (re)build the gather
  // form of A^T with a counting sort over (row, entry) ascending so each
  // output row's accumulation order matches MultiplyTransposed exactly. A
  // fresh plan object replaces the slot so closures on still-live tape
  // nodes keep the plan they captured.
  std::shared_ptr<SpMMPlan> plan = std::make_shared<SpMMPlan>();
  const CsrMatrix& csr = *a;
  const int cols = csr.cols();
  const int64_t nnz = csr.nnz();
  plan->cols = cols;
  plan->t_row_ptr.assign(static_cast<size_t>(cols) + 1, 0);
  plan->t_src_row.assign(static_cast<size_t>(nnz), 0);
  plan->t_val.assign(static_cast<size_t>(nnz), 0.f);
  const std::vector<int64_t>& row_ptr = csr.row_ptr();
  const std::vector<int>& col_idx = csr.col_idx();
  const std::vector<float>& values = csr.values();
  for (int64_t e = 0; e < nnz; ++e) ++plan->t_row_ptr[col_idx[e] + 1];
  for (int c = 0; c < cols; ++c) plan->t_row_ptr[c + 1] += plan->t_row_ptr[c];
  std::vector<int64_t> fill(plan->t_row_ptr.begin(), plan->t_row_ptr.end() - 1);
  for (int r = 0; r < csr.rows(); ++r) {
    for (int64_t e = row_ptr[r]; e < row_ptr[r + 1]; ++e) {
      const int64_t slot = fill[col_idx[e]]++;
      plan->t_src_row[slot] = r;
      plan->t_val[slot] = values[e];
    }
  }
  plan->csr_key = a.get();
  spmm_plans_[idx] = plan;
  return plan;
}

bool GraphProgram::ReplaySpMM(const std::shared_ptr<const CsrMatrix>& a,
                              const ag::Tensor& x, ag::Tensor* out) {
  if (!step_ok_) return false;
  if (run_.group != -1) {
    Die("adjacency op interrupted a fusion group");
    return false;
  }
  if (pc_ >= static_cast<int>(instrs_.size()) ||
      instrs_[pc_].kind != ag::OpKind::kSpMM) {
    Die("adjacency op diverged from the recording");
    return false;
  }
  std::shared_ptr<const SpMMPlan> plan = PlanFor(pc_, a);
  ++pc_;

  // Forward is the eager CSR kernel (already gather-form, bitwise by
  // construction); the plan accelerates backward.
  const bool rg = ag::GradEnabled() && x.requires_grad();
  ag::Tensor result(a->Multiply(x.value()), rg);
  ag::Node* node = result.raw();
  node->op = "SpMM";
  if (rg) {
    node->parents.assign(1, x.node());
    node->backward = [x, plan](ag::Node* self) {
      const Matrix& g = self->grad;
      Matrix dx(plan->cols, g.cols());
      for (int c = 0; c < plan->cols; ++c) {
        float* orow = dx.row(c);
        for (int64_t e = plan->t_row_ptr[c]; e < plan->t_row_ptr[c + 1]; ++e) {
          const float v = plan->t_val[e];
          const float* grow = g.row(plan->t_src_row[e]);
          for (int j = 0; j < g.cols(); ++j) orow[j] += v * grow[j];
        }
      }
      x.raw()->AccumulateGrad(dx);
    };
  }
  *out = result;
  return true;
}

// ---------------------------------------------------------------------------
// Introspection.

ProgramStats GraphProgram::stats() const {
  ProgramStats s;
  s.compiled = compiled_;
  s.uncompilable = uncompilable_;
  s.dead = dead_;
  s.instrs = static_cast<int>(instrs_.size());
  s.fusion_groups = static_cast<int>(groups_.size());
  for (const FusionGroup& g : groups_) s.fused_ops += g.size;
  s.spmm_plans = static_cast<int>(spmm_plans_.size());
  s.arena_reserved_bytes = static_cast<int64_t>(arena_.capacity_bytes());
  s.arena_peak_bytes = static_cast<int64_t>(arena_.peak_bytes());
  s.arena_growth_events = arena_.growth_events();
  s.replay_steps = replay_steps_;
  s.fallback_steps = fallback_steps_;
  return s;
}

std::map<std::string, int> GraphProgram::OpCounts() const {
  std::map<std::string, int> counts;
  for (const Instr& instr : instrs_) ++counts[ag::OpKindName(instr.kind)];
  return counts;
}

int64_t GraphProgram::TotalOutputElements() const {
  int64_t total = 0;
  for (const Instr& instr : instrs_) {
    total += static_cast<int64_t>(instr.rows) * instr.cols;
  }
  return total;
}

std::string GraphProgram::DescribeGroups() const {
  std::ostringstream os;
  for (const FusionGroup& g : groups_) {
    os << "pc " << g.first_pc << ": ";
    if (g.kind == FusionGroup::Kind::kMatMulEpilogue) {
      os << "MatMul";
      if (g.has_bias) os << "+Bias";
      if (g.act == FusedAct::kRelu) os << "+Relu";
      if (g.act == FusedAct::kSigmoid) os << "+Sigmoid";
      if (g.act == FusedAct::kTanh) os << "+Tanh";
    } else {
      for (int j = 0; j < g.size; ++j) {
        if (j > 0) os << "·";
        os << ag::OpKindName(g.members[j].kind);
      }
    }
    os << " (" << g.size << " ops)\n";
  }
  return os.str();
}

void GraphProgram::PublishMetrics() const {
  const ProgramStats s = stats();
  obs::MetricsRegistry& m = obs::MetricsRegistry::Global();
  m.GetGauge("program.instrs").Set(static_cast<double>(s.instrs));
  m.GetGauge("program.fusion_groups")
      .Set(static_cast<double>(s.fusion_groups));
  m.GetGauge("program.fused_ops").Set(static_cast<double>(s.fused_ops));
  m.GetGauge("program.spmm_plans").Set(static_cast<double>(s.spmm_plans));
  m.GetGauge("program.arena_reserved_bytes")
      .Set(static_cast<double>(s.arena_reserved_bytes));
  m.GetGauge("program.arena_peak_bytes")
      .Set(static_cast<double>(s.arena_peak_bytes));
  m.GetGauge("program.replay_steps").Set(static_cast<double>(s.replay_steps));
  m.GetGauge("program.fallback_steps")
      .Set(static_cast<double>(s.fallback_steps));
}

}  // namespace prog
}  // namespace nmcdr
